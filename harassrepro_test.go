package harassrepro

import (
	"context"
	"strings"
	"sync"
	"testing"
)

var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

func sharedStudy(t *testing.T) *Study {
	t.Helper()
	studyOnce.Do(func() {
		study, studyErr = Run(QuickConfig(7))
	})
	if studyErr != nil {
		t.Fatal(studyErr)
	}
	return study
}

func TestExperimentIDsComplete(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table9", "table10", "table11",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
		if ExperimentTitle(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("missing experiment %s", w)
		}
	}
	if ExperimentTitle("bogus") != "" {
		t.Error("bogus title should be empty")
	}
}

func TestStudyExperiments(t *testing.T) {
	s := sharedStudy(t)
	out, err := s.Experiment("table5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Reporting") || !strings.Contains(out, "Content Leakage") {
		t.Errorf("table5 incomplete:\n%s", out)
	}
	if _, err := s.Experiment("nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestStudyScoring(t *testing.T) {
	s := sharedStudy(t)
	// In-domain phrasing: the trained filters, like any text classifier,
	// are only calibrated for the distribution they were trained on.
	dox := "dropping her info now\nAddress: 99 Cedar Lane, Riverton, TX, 75001\nPhone: (212) 555-0188\nfb: jane.roe.422"
	cth := "we should mass-report his twitter and youtube, do not let up"
	benign := "the remaster looks worse than the original, change my mind"
	if s.ScoreDox(dox) <= s.ScoreDox(benign) {
		t.Error("dox should outscore benign")
	}
	if s.ScoreCTH(cth) <= s.ScoreCTH(benign) {
		t.Error("cth should outscore benign")
	}
	for _, plat := range []string{"boards", "pastes", "gab", "discord", "telegram"} {
		th := s.DoxThreshold(plat)
		if th < 0.3 || th > 1 {
			t.Errorf("dox threshold %s = %v", plat, th)
		}
	}
	if s.DoxThreshold("unknown-platform") != 0.5 || s.CTHThreshold("unknown") != 0.5 {
		t.Error("unknown platform should default to 0.5")
	}
}

func TestStudyDocuments(t *testing.T) {
	s := sharedStudy(t)
	for _, ds := range []string{"boards", "blogs", "chat", "gab", "pastes"} {
		docs := s.Documents(ds)
		if len(docs) == 0 {
			t.Errorf("no %s documents", ds)
		}
		if docs[0].Dataset != ds {
			t.Errorf("%s doc has dataset %s", ds, docs[0].Dataset)
		}
	}
	if s.Documents("bogus") != nil {
		t.Error("bogus dataset should return nil")
	}
	if len(s.AnnotatedDoxes()) == 0 || len(s.AnnotatedCTH()) == 0 {
		t.Error("annotated positives missing")
	}
}

func TestExtractPII(t *testing.T) {
	got := ExtractPII("reach him at j.doe@example.org or 212-555-0142")
	if len(got) != 2 {
		t.Fatalf("ExtractPII = %v", got)
	}
	types := PIITypes("ssn 219-09-9999 and fb: some.person")
	if len(types) != 2 || types[0] != "facebook" || types[1] != "ssn" {
		t.Errorf("PIITypes = %v", types)
	}
	if got := ExtractPII("nothing here"); got != nil {
		t.Errorf("benign ExtractPII = %v", got)
	}
}

func TestCategorizeAttack(t *testing.T) {
	subs := CategorizeAttack("we need to mass report his channel and raid the stream")
	if len(subs) < 2 {
		t.Fatalf("CategorizeAttack = %v", subs)
	}
	parents := AttackParents("we need to mass report his channel")
	if len(parents) != 1 || parents[0] != "Reporting" {
		t.Errorf("AttackParents = %v", parents)
	}
	if got := CategorizeAttack("nice weather today"); got != nil {
		t.Errorf("benign CategorizeAttack = %v", got)
	}
}

func TestHarmRisks(t *testing.T) {
	risks := HarmRisks("his address is 12 Oak Street and his boss should know, ssn 219-09-9999")
	want := map[string]bool{"Physical": true, "Economic / Identity": true, "Reputation": true}
	if len(risks) != len(want) {
		t.Fatalf("HarmRisks = %v", risks)
	}
	for _, r := range risks {
		if !want[r] {
			t.Errorf("unexpected risk %s", r)
		}
	}
}

func TestInferTargetGender(t *testing.T) {
	if InferTargetGender("report her account") != "female" {
		t.Error("female not inferred")
	}
	if InferTargetGender("report the account") != "unknown" {
		t.Error("unknown not inferred")
	}
}

func TestMatchesSeedQuery(t *testing.T) {
	if !MatchesSeedQuery("we should mass report him") {
		t.Error("seed query should match")
	}
	if MatchesSeedQuery("the weather is nice") {
		t.Error("seed query should not match")
	}
}

func TestTaxonomyAccessors(t *testing.T) {
	if got := len(TaxonomyParents()); got != 10 {
		t.Errorf("parents = %d", got)
	}
	if got := len(TaxonomySubcategories()); got != 29 {
		t.Errorf("subcategories = %d", got)
	}
	if ParentDefinition("Reporting") == "" {
		t.Error("Reporting definition missing")
	}
	if ParentDefinition("Nope") != "" {
		t.Error("bogus definition should be empty")
	}
}

func TestSaveModelsAndDetector(t *testing.T) {
	s := sharedStudy(t)
	dir := t.TempDir()
	if err := s.SaveModels(dir); err != nil {
		t.Fatal(err)
	}
	det, err := LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	cth := s.AnnotatedCTH()
	if len(cth) == 0 {
		t.Fatal("no confirmed CTH")
	}
	hits := 0
	for i := 0; i < 20 && i < len(cth); i++ {
		if det.ScoreCTH(cth[i].Text) > 0.5 {
			hits++
		}
	}
	if hits < 15 {
		t.Errorf("detector rescored only %d/20 confirmed CTH above 0.5", hits)
	}
	if len(det.Platforms()) == 0 {
		t.Error("detector has no platform thresholds")
	}
	if _, err := LoadDetector(t.TempDir()); err == nil {
		t.Error("loading an empty directory should fail")
	}
}

func TestDetectorScoreStream(t *testing.T) {
	s := sharedStudy(t)
	dir := t.TempDir()
	if err := s.SaveModels(dir); err != nil {
		t.Fatal(err)
	}
	det, err := LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	docs := []StreamDocument{
		{ID: "a", Text: "we need to mass-report his twitter and youtube, spread the word"},
		{ID: "b", Text: "anyone up for ranked tonight, patch notes are out"},
		{ID: "poison", Text: ""}, // empty text is quarantined, not fatal
		{ID: "c", Text: "DOX: Jane Roe / Address: 99 Cedar Lane, Riverton, TX, 75001 / Phone: (212) 555-0188"},
	}
	results, sum, err := det.ScoreStream(context.Background(), docs, StreamOptions{Workers: 2, Seed: 1, Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Processed != 4 || sum.Succeeded != 3 || sum.Quarantined != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("results out of input order at %d", i)
		}
	}
	if !results[2].Quarantined || results[2].FailedStage == "" || results[2].Err == "" {
		t.Fatalf("poison doc not quarantined with detail: %+v", results[2])
	}
	// Streaming scores match the sequential detector on short docs.
	if results[0].CTH != det.ScoreCTH(docs[0].Text) {
		t.Errorf("stream CTH %v != sequential %v", results[0].CTH, det.ScoreCTH(docs[0].Text))
	}
	if results[3].Dox <= results[1].Dox {
		t.Errorf("dox document scored %v, benign %v", results[3].Dox, results[1].Dox)
	}
	if len(results[3].PII) == 0 {
		t.Errorf("dox document has no PII annotation: %+v", results[3])
	}
	// Determinism: a second run yields identical scores.
	again, _, err := det.ScoreStream(context.Background(), docs, StreamOptions{Workers: 7, Seed: 1, Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i].CTH != again[i].CTH || results[i].Dox != again[i].Dox {
			t.Fatalf("doc %d scores differ across runs", i)
		}
	}
}
