package harassrepro

// Benchmark harness: one benchmark per paper table and figure. Each
// benchmark regenerates its artifact from a shared pipeline run (the
// pipeline itself is timed by BenchmarkPipelineEndToEnd). Run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"harassrepro/internal/features"
	"harassrepro/internal/pii"
	"harassrepro/internal/tokenize"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error
)

func benchPipeline(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = Run(QuickConfig(1))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

// benchExperiment times the regeneration of one experiment artifact.
func benchExperiment(b *testing.B, id string) {
	s := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Experiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkPipelineEndToEnd times the full reproduction pipeline
// (corpus generation, both classifier pipelines, thresholding and
// annotation) at quick scale.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(QuickConfig(uint64(i) + 100)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentsAll times reproducing every paper artifact from
// a completed run on the memoized artifact graph's concurrent
// scheduler — the cost of `-experiment all` after the pipeline itself.
func BenchmarkExperimentsAll(b *testing.B) {
	s := benchPipeline(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := s.Experiments(context.Background(), nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.ID, r.Err)
			}
		}
	}
}

func BenchmarkTable1RawDatasets(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkTable2TrainingSets(b *testing.B)          { benchExperiment(b, "table2") }
func BenchmarkTable3ClassifierPerformance(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4Thresholds(b *testing.B)            { benchExperiment(b, "table4") }
func BenchmarkTable5AttackTypes(b *testing.B)           { benchExperiment(b, "table5") }
func BenchmarkTable6PII(b *testing.B)                   { benchExperiment(b, "table6") }
func BenchmarkTable7HarmRisk(b *testing.B)              { benchExperiment(b, "table7") }
func BenchmarkTable8Blogs(b *testing.B)                 { benchExperiment(b, "table8") }
func BenchmarkTable9BlogTaxonomy(b *testing.B)          { benchExperiment(b, "table9") }
func BenchmarkTable10GenderTaxonomy(b *testing.B)       { benchExperiment(b, "table10") }
func BenchmarkTable11FullTaxonomy(b *testing.B)         { benchExperiment(b, "table11") }
func BenchmarkFigure1Pipeline(b *testing.B)             { benchExperiment(b, "fig1") }
func BenchmarkFigure2HarmOverlap(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFigure3AnnotationTask(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFigure4SeedQuery(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFigure5ThreadCDF(b *testing.B)            { benchExperiment(b, "fig5") }
func BenchmarkFigure6ThreadsByAttack(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkSection63Overlap(b *testing.B)            { benchExperiment(b, "overlap") }
func BenchmarkSection63Positions(b *testing.B)          { benchExperiment(b, "positions") }
func BenchmarkSection62CoOccurrence(b *testing.B)       { benchExperiment(b, "cooccur") }
func BenchmarkSection73RepeatedDoxes(b *testing.B)      { benchExperiment(b, "repeats") }
func BenchmarkSection53Agreement(b *testing.B)          { benchExperiment(b, "agreement") }
func BenchmarkSection71PIICoOccurrence(b *testing.B)    { benchExperiment(b, "piico") }
func BenchmarkSection62ChiSquare(b *testing.B)          { benchExperiment(b, "chisq") }
func BenchmarkSection63GenderResponse(b *testing.B)     { benchExperiment(b, "genderresp") }

// Ablation benches time the design-choice validations DESIGN.md calls
// out (§5.2 span strategies, §5.4 combined training, Table 4 chat split,
// §5.3 active learning, classifier family).
func BenchmarkAblationSpanStrategies(b *testing.B)    { benchExperiment(b, "ablate-span") }
func BenchmarkAblationCombinedTraining(b *testing.B)  { benchExperiment(b, "ablate-combined") }
func BenchmarkAblationChatSplit(b *testing.B)         { benchExperiment(b, "ablate-chatsplit") }
func BenchmarkAblationActiveLearning(b *testing.B)    { benchExperiment(b, "ablate-active") }
func BenchmarkAblationBaseline(b *testing.B)          { benchExperiment(b, "ablate-baseline") }
func BenchmarkCalibration(b *testing.B)               { benchExperiment(b, "calibration") }
func BenchmarkAblationCrawlCompleteness(b *testing.B) { benchExperiment(b, "ablate-crawl") }
func BenchmarkScoreDistributions(b *testing.B)        { benchExperiment(b, "scores") }

// BenchmarkScoreCTH times single-document scoring with the trained CTH
// classifier — the operation a platform integration would run per
// message.
func BenchmarkScoreCTH(b *testing.B) {
	s := benchPipeline(b)
	text := "we need to mass-report his twitter and youtube, spread the word"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreCTH(text)
	}
}

// BenchmarkScoreDox times single-document dox scoring.
func BenchmarkScoreDox(b *testing.B) {
	s := benchPipeline(b)
	text := "DOX: Jane Roe / Address: 99 Cedar Lane, Riverton, TX, 75001 / Phone: (212) 555-0188 / fb: jane.roe.42"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScoreDox(text)
	}
}

var (
	benchDetOnce sync.Once
	benchDet     *Detector
	benchDetErr  error
)

// benchDetector loads a detector from the shared pipeline's saved
// models, once per benchmark binary.
func benchDetector(b *testing.B) *Detector {
	b.Helper()
	s := benchPipeline(b)
	benchDetOnce.Do(func() {
		dir := b.TempDir()
		if benchDetErr = s.SaveModels(dir); benchDetErr != nil {
			return
		}
		benchDet, benchDetErr = LoadDetector(dir)
	})
	if benchDetErr != nil {
		b.Fatal(benchDetErr)
	}
	return benchDet
}

// benchStreamDocs builds a mixed scoring workload.
func benchStreamDocs(n int) []StreamDocument {
	texts := []string{
		"we need to mass-report his twitter and youtube, spread the word",
		"anyone up for ranked tonight, patch notes are out",
		"DOX: Jane Roe / Address: 99 Cedar Lane, Riverton, TX, 75001 / Phone: (212) 555-0188 / fb: jane.roe.42",
		"the new season drops friday, here is the patch rundown everyone asked for",
		"everyone flood her mentions until she deletes the channel",
	}
	docs := make([]StreamDocument, n)
	for i := range docs {
		docs[i] = StreamDocument{ID: fmt.Sprintf("b%04d", i), Text: texts[i%len(texts)]}
	}
	return docs
}

// BenchmarkScoreStreamSequential is the baseline: the same scoring
// workload run one document at a time on the plain detector API.
func BenchmarkScoreStreamSequential(b *testing.B) {
	det := benchDetector(b)
	docs := benchStreamDocs(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range docs {
			_ = det.ScoreCTH(d.Text)
			_ = det.ScoreDox(d.Text)
		}
	}
}

// BenchmarkScoreStream times the worker-pool streaming path over the
// identical workload — the baseline later perf PRs optimise against.
func BenchmarkScoreStream(b *testing.B) {
	det := benchDetector(b)
	docs := benchStreamDocs(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sum, err := det.ScoreStream(context.Background(), docs, StreamOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Succeeded != len(docs) {
			b.Fatalf("summary = %+v", sum)
		}
	}
}

// BenchmarkExtractPII times the 12-extractor PII pass on a dense dox.
func BenchmarkExtractPII(b *testing.B) {
	text := "John lives at 123 Maple Street, Fairview, OH, 44120, call (212) 555-0142, fb: john.t.99, email j@example.org, card 4111 1111 1111 1111, ssn 219-09-9999"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractPII(text)
	}
}

// BenchmarkCategorizeAttack times the taxonomy coder.
func BenchmarkCategorizeAttack(b *testing.B) {
	text := "get her phone number and address, then raid the stream and mass report her channel"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CategorizeAttack(text)
	}
}

// Hot-path micro-benchmark inputs: a short chat message (the common
// streamed case) and a long paste (the span-sampling case).
const (
	benchShortChat = "we need to mass-report his twitter and youtube, spread the word"
	benchCleanChat = "anyone up for ranked tonight, patch notes are out, new map is wild"
)

func benchLongPaste() string {
	var sb []byte
	for i := 0; i < 60; i++ {
		sb = append(sb, "the thread keeps growing and everyone is posting receipts about the drama again "...)
	}
	return string(sb)
}

// BenchmarkBasicTokenize times the reusable single-pass tokenizer on
// steady state (the scoring hot path holds one per goroutine).
func BenchmarkBasicTokenize(b *testing.B) {
	for _, c := range []struct{ name, text string }{
		{"short-chat", benchShortChat},
		{"long-paste", benchLongPaste()},
	} {
		b.Run(c.name, func(b *testing.B) {
			var bt tokenize.BasicTokenizer
			bt.Tokenize(c.text) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Tokenize(c.text)
			}
		})
	}
}

// BenchmarkFeaturize times steady-state hashing vectorization (inline
// FNV-1a over the token sequence into reusable scratch).
func BenchmarkFeaturize(b *testing.B) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 18, Bigrams: true})
	for _, c := range []struct{ name, text string }{
		{"short-chat", benchShortChat},
		{"long-paste", benchLongPaste()},
	} {
		b.Run(c.name, func(b *testing.B) {
			toks := tokenize.BasicTokenize(c.text)
			f := h.NewFeaturizer()
			f.Vectorize(toks) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Vectorize(toks)
			}
		})
	}
}

const benchDenseDox = "John lives at 123 Maple Street, Fairview, OH, 44120, call (212) 555-0142, fb: john.t.99, email j@example.org, card 4111 1111 1111 1111, ssn 219-09-9999"

// BenchmarkPIIExtract times the one-pass engine extraction: clean
// documents cost a single prefilter scan; the dense dox additionally
// pays the lazy DFA and the exact backtracker for the families its
// gate literals admit. The allocations measured here are the public
// []PIIMatch result; BenchmarkPIISession times the zero-alloc path.
func BenchmarkPIIExtract(b *testing.B) {
	for _, c := range []struct{ name, text string }{
		{"clean-short-chat", benchCleanChat},
		{"clean-long-paste", benchLongPaste()},
		{"dense-dox", benchDenseDox},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ExtractPII(c.text)
			}
		})
	}
}

// BenchmarkPIISession times the pooled zero-allocation session API the
// scoring workers use: spans alias the session arena, so steady state
// performs no heap allocations even on a dense dox.
func BenchmarkPIISession(b *testing.B) {
	for _, c := range []struct{ name, text string }{
		{"clean-short-chat", benchCleanChat},
		{"clean-long-paste", benchLongPaste()},
		{"dense-dox", benchDenseDox},
	} {
		b.Run(c.name, func(b *testing.B) {
			s := pii.NewSession()
			s.Extract(c.text) // warm arena, DFA cache, scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Extract(c.text)
			}
		})
	}
	// Parallel scaling: one session per goroutine; the engine's compiled
	// state (Teddy tables, programs, byte classes) is shared immutably.
	b.Run("dense-dox-parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			s := pii.NewSession()
			s.Extract(benchDenseDox)
			for pb.Next() {
				if len(s.Extract(benchDenseDox)) == 0 {
					b.Fatal("dense dox produced no spans")
				}
			}
		})
	})
}
