// Command benchstore measures the segmented corpus store end to end
// and writes BENCH_store.json: sequential and parallel scan throughput
// (MB/s and docs/sec), inverted-index lookup latency on both the mmap
// and the buffered ReadAt read path, incremental append throughput,
// a DefaultConfig-scale ingest+scan round trip, and the end-to-end
// cost of streaming the scoring pipeline's input from the store
// instead of from memory.
//
// Run via scripts/bench_store.sh. The store is built fresh in a temp
// directory from the quick-scale synthetic corpora (seed 1), so the
// numbers describe this machine and tree, not a committed baseline.
//
// Gate flags support the CI checks in scripts/check.sh:
//
//	-store-only    skip pipeline training and measure only the raw
//	               store entries (scan/lookup/append)
//	-gate-stream   exit non-zero if store-streamed ScoreStream
//	               throughput falls below 0.9x the in-memory run
//	               (the store must cost at most 10% on the hot path)
//	-gate-parallel exit non-zero if parallel scan falls below 2x the
//	               sequential scan on machines with >= 4 cores
//	               (loudly skipped on smaller machines, where segment
//	               parallelism has nothing to fan over)
//	-gate          all of the above
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	harassrepro "harassrepro"
	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
)

// streamGateMinRatio is the -gate-stream floor: store-streamed scoring
// must retain at least this fraction of the in-memory ScoreStream
// throughput measured in the same invocation.
const streamGateMinRatio = 0.9

// parallelGateMinSpeedup is the -gate-parallel floor: ScanParallel at
// GOMAXPROCS workers must beat the sequential Scan by at least this
// factor — but only on machines with parallelGateMinCPUs cores or
// more; below that the fan-out has nothing to run on and the gate
// skips loudly instead of failing on hardware.
const (
	parallelGateMinSpeedup = 2.0
	parallelGateMinCPUs    = 4
)

// metrics is one measured workload. MBPerSec is set only for entries
// that stream a known byte volume per op (the sequential scan).
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerDoc    float64 `json:"ns_per_doc"`
	DocsPerSec  float64 `json:"docs_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
}

// entry pairs a workload's measurement with an optional same-run
// reference (the in-memory scoring run for the stream-overhead ratio).
type entry struct {
	Name      string   `json:"name"`
	DocsPerOp int      `json:"docs_per_op"`
	Baseline  *metrics `json:"baseline,omitempty"`
	Current   metrics  `json:"current"`
	Speedup   float64  `json:"speedup_vs_baseline,omitempty"`
}

type report struct {
	Description string  `json:"description"`
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	StoreDocs   int     `json:"store_docs"`
	StoreBytes  int64   `json:"store_bytes"`
	Segments    int     `json:"segments"`
	Entries     []entry `json:"entries"`
}

func finish(m metrics, docsPerOp int, bytesPerOp int64) metrics {
	m.NsPerDoc = m.NsPerOp / float64(docsPerOp)
	if m.NsPerDoc > 0 {
		m.DocsPerSec = 1e9 / m.NsPerDoc
	}
	if bytesPerOp > 0 && m.NsPerOp > 0 {
		m.MBPerSec = float64(bytesPerOp) / (1 << 20) * 1e9 / m.NsPerOp
	}
	return m
}

// measure runs fn under the testing benchmark driver. streamedBytes is
// the byte volume fn reads per op (0 when not meaningful).
func measure(name string, docsPerOp int, streamedBytes int64, baseline *metrics, fn func(b *testing.B)) entry {
	fmt.Fprintf(os.Stderr, "benchstore: measuring %s...\n", name)
	r := testing.Benchmark(fn)
	cur := finish(metrics{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}, docsPerOp, streamedBytes)
	e := entry{Name: name, DocsPerOp: docsPerOp, Baseline: baseline, Current: cur}
	if baseline != nil && cur.NsPerOp > 0 {
		e.Speedup = baseline.NsPerOp / cur.NsPerOp
	}
	return e
}

// buildStore writes the quick-scale corpora (seed 1) into a fresh
// store under dir, exactly as `corpusgen -store` would.
func buildStore(dir string) (*store.Store, error) {
	cfg := harassrepro.QuickConfig(1)
	gen := corpus.NewGenerator(corpus.Config{
		Seed:          cfg.Seed,
		VolumeScale:   cfg.VolumeScale,
		PositiveScale: cfg.PositiveScale,
	})
	corpora := gen.Generate()
	blogs := gen.GenerateBlogs(corpus.DefaultBlogSpecs(cfg.BlogScale))
	s, err := store.Create(dir)
	if err != nil {
		return nil, err
	}
	if err := store.WriteCorpora(s, corpora, blogs, 0); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// gateStream enforces the streaming-overhead floor on the
// score-stream-store entry measured this run.
func gateStream(entries []entry) error {
	for _, e := range entries {
		if e.Name != "store/score-stream" {
			continue
		}
		if e.Speedup < streamGateMinRatio {
			return fmt.Errorf("store/score-stream throughput is %.2fx the in-memory run, gate requires >= %.2fx (store %.0f ns/op vs memory %.0f ns/op)",
				e.Speedup, streamGateMinRatio, e.Current.NsPerOp, e.Baseline.NsPerOp)
		}
		fmt.Fprintf(os.Stderr, "benchstore: stream gate ok: store-streamed scoring at %.2fx in-memory throughput (floor %.2fx)\n",
			e.Speedup, streamGateMinRatio)
		return nil
	}
	return fmt.Errorf("stream gate: no store/score-stream entry measured (ran with -store-only?)")
}

// gateParallel enforces the parallel-scan floor on the
// store/scan-parallel entry measured this run. On machines with fewer
// than parallelGateMinCPUs cores the gate skips: segment decode
// parallelism cannot beat sequential without cores to fan over.
func gateParallel(entries []entry) error {
	if n := runtime.NumCPU(); n < parallelGateMinCPUs {
		fmt.Fprintf(os.Stderr, "benchstore: PARALLEL GATE SKIPPED: %d CPUs on this machine, gate requires >= %d to demand a %.1fx speedup\n",
			n, parallelGateMinCPUs, parallelGateMinSpeedup)
		return nil
	}
	for _, e := range entries {
		if e.Name != "store/scan-parallel" {
			continue
		}
		if e.Speedup < parallelGateMinSpeedup {
			return fmt.Errorf("parallel scan is %.2fx the sequential scan, gate requires >= %.1fx on %d cores (parallel %.0f ns/op vs sequential %.0f ns/op)",
				e.Speedup, parallelGateMinSpeedup, runtime.NumCPU(), e.Current.NsPerOp, e.Baseline.NsPerOp)
		}
		fmt.Fprintf(os.Stderr, "benchstore: parallel gate ok: scan at %.2fx sequential throughput (floor %.1fx)\n",
			e.Speedup, parallelGateMinSpeedup)
		return nil
	}
	return fmt.Errorf("parallel gate: no store/scan-parallel entry measured")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchstore:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_store.json", "output file (empty: don't write)")
	storeOnly := flag.Bool("store-only", false, "measure only scan/lookup/append (no pipeline training)")
	gateStreamFlag := flag.Bool("gate-stream", false, "fail if store-streamed scoring drops below 0.9x in-memory throughput")
	gateParallelFlag := flag.Bool("gate-parallel", false, "fail if parallel scan drops below 2x sequential (skipped under 4 cores)")
	gateAll := flag.Bool("gate", false, "enforce every gate (-gate-stream and -gate-parallel)")
	flag.Parse()
	if *gateAll {
		*gateStreamFlag = true
		*gateParallelFlag = true
	}
	if *gateStreamFlag && *storeOnly {
		fatal(fmt.Errorf("-gate-stream needs the stream entries; drop -store-only"))
	}

	dir, err := os.MkdirTemp("", "benchstore")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Fprintln(os.Stderr, "benchstore: building quick-scale store (seed 1)...")
	s, err := buildStore(dir + "/corpus-store")
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	var storeBytes int64
	for _, si := range s.Segments() {
		storeBytes += si.SegBytes + si.IdxBytes
	}
	totalDocs := s.Docs()
	fmt.Fprintf(os.Stderr, "benchstore: store ready: %d docs, %d segments, %.1f MiB\n",
		totalDocs, len(s.Segments()), float64(storeBytes)/(1<<20))

	rep := report{
		Description: "Segmented corpus store benchmarks: sequential Scan over every committed segment (checksum + decode of each record) and ScanParallel at GOMAXPROCS workers (its baseline is the same run's sequential scan, so speedup_vs_baseline is the fan-out factor; the scripts/check.sh -gate-parallel floor demands >= 2x on machines with >= 4 cores and skips below), inverted-index Lookup (posting iteration only) and LookupDocs (posting iteration + point decode of each match) on both the default read path (mmap where available) and the buffered ReadAt fallback (store/lookup-docs-buffered, baselined against the mapped run), incremental Append of 1000-document batches (fsynced segment + index + manifest commit per op), a DefaultConfig-scale ingest + parallel-scan round trip, and the end-to-end streaming comparison — ScoreStream fed from a store Scan versus the same documents already in memory. The store is built fresh from the quick-scale synthetic corpora at seed 1, so entries describe this machine and tree. store/score-stream's baseline is the in-memory run from the same invocation: its speedup_vs_baseline is the direct streaming-overhead ratio and must stay >= 0.90 (<= 10% overhead, the scripts/check.sh gate).",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		StoreDocs:   totalDocs,
		StoreBytes:  storeBytes,
		Segments:    len(s.Segments()),
	}

	scanEntry := measure("store/scan", totalDocs, storeBytes, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := s.Scan(func(d *corpus.Document, _ store.DocRef) error {
				n++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != totalDocs {
				b.Fatalf("scan decoded %d docs, store has %d", n, totalDocs)
			}
		}
	})
	rep.Entries = append(rep.Entries, scanEntry)

	// Parallel scan: segments decode concurrently on GOMAXPROCS workers
	// while the consumer still observes store order. The baseline is the
	// sequential scan from this same run, so speedup_vs_baseline is the
	// direct fan-out factor (-gate-parallel's floor on >= 4 cores).
	scanCur := scanEntry.Current
	scanWorkers := runtime.GOMAXPROCS(0)
	rep.Entries = append(rep.Entries, measure("store/scan-parallel", totalDocs, storeBytes, &scanCur, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			err := s.ScanParallel(scanWorkers, func(d *corpus.Document, _ store.DocRef) error {
				n++
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != totalDocs {
				b.Fatalf("parallel scan decoded %d docs, store has %d", n, totalDocs)
			}
		}
	}))

	// Index lookups use a planted-attack token ("mass", from the
	// mass-reporting positives) so the posting lists are non-trivial but
	// far from full-store.
	const token = "mass"
	matches := 0
	s.Lookup(token, func(store.DocRef) bool { matches++; return true })
	if matches == 0 {
		fatal(fmt.Errorf("token %q has no matches in the benchmark store", token))
	}
	lookupDocsBench := func(target *store.Store) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				err := target.LookupDocs(token, func(d *corpus.Document, _ store.DocRef) error {
					n++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != matches {
					b.Fatalf("lookup-docs decoded %d matches, want %d", n, matches)
				}
			}
		}
	}
	rep.Entries = append(rep.Entries, measure("store/lookup", matches, 0, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			s.Lookup(token, func(store.DocRef) bool { n++; return true })
			if n != matches {
				b.Fatalf("lookup found %d matches, want %d", n, matches)
			}
		}
	}))
	lookupDocsEntry := measure("store/lookup-docs", matches, 0, nil, lookupDocsBench(s))
	rep.Entries = append(rep.Entries, lookupDocsEntry)

	// The same point lookups on the buffered ReadAt read path (the
	// portable fallback and the OpenOptions.NoMmap escape hatch): the
	// baseline is the default (mmap where available) run above, so
	// speedup_vs_baseline is the buffered-vs-mapped latency ratio.
	buffered, err := store.OpenWith(dir+"/corpus-store", store.OpenOptions{NoMmap: true})
	if err != nil {
		fatal(err)
	}
	defer buffered.Close()
	lookupDocsCur := lookupDocsEntry.Current
	rep.Entries = append(rep.Entries, measure("store/lookup-docs-buffered", matches, 0, &lookupDocsCur, lookupDocsBench(buffered)))

	// Incremental append: each op commits one 1000-document segment
	// (write + fsync of segment, index and manifest) into a growing
	// store, the `corpusgen -store -append` steady state.
	batch := make([]corpus.Document, 0, 1000)
	if err := s.Scan(func(d *corpus.Document, _ store.DocRef) error {
		if len(batch) < cap(batch) {
			batch = append(batch, *d)
		}
		return nil
	}); err != nil {
		fatal(err)
	}
	appendStore, err := store.Create(dir + "/append-store")
	if err != nil {
		fatal(err)
	}
	defer appendStore.Close()
	rep.Entries = append(rep.Entries, measure("store/append-1k", len(batch), 0, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := appendStore.Append(batch); err != nil {
				b.Fatal(err)
			}
		}
	}))

	if !*storeOnly {
		rep.Entries = append(rep.Entries, defaultScaleEntry(dir))
		rep.Entries = append(rep.Entries, streamEntries(s, totalDocs)...)
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	}
	printEntries(rep.Entries)
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchstore: wrote %s\n", *out)
	}
	if *gateStreamFlag {
		if err := gateStream(rep.Entries); err != nil {
			fatal(err)
		}
	}
	if *gateParallelFlag {
		if err := gateParallel(rep.Entries); err != nil {
			fatal(err)
		}
	}
}

// defaultScaleEntry measures the DefaultConfig-shape round trip: one
// op ingests the full default-scale corpora into a fresh store
// (fsynced segments, indexes and manifest commits at the
// DefaultSegmentDocs chunking) and parallel-scans every record back —
// the `corpusgen -store` + store-streamed-pipeline lifecycle at the
// paper's reproduction scale.
func defaultScaleEntry(scratch string) entry {
	fmt.Fprintln(os.Stderr, "benchstore: generating default-scale corpora (one-time setup)...")
	cfg := harassrepro.DefaultConfig(1)
	gen := corpus.NewGenerator(corpus.Config{
		Seed:          cfg.Seed,
		VolumeScale:   cfg.VolumeScale,
		PositiveScale: cfg.PositiveScale,
	})
	corpora := gen.Generate()
	blogs := gen.GenerateBlogs(corpus.DefaultBlogSpecs(cfg.BlogScale))
	workers := runtime.GOMAXPROCS(0)
	sdir := filepath.Join(scratch, "default-store")
	buildAndScan := func() (int, int64, error) {
		if err := os.RemoveAll(sdir); err != nil {
			return 0, 0, err
		}
		st, err := store.Create(sdir)
		if err != nil {
			return 0, 0, err
		}
		if err := store.WriteCorpora(st, corpora, blogs, 0); err != nil {
			st.Close()
			return 0, 0, err
		}
		var bytes int64
		for _, si := range st.Segments() {
			bytes += si.SegBytes + si.IdxBytes
		}
		n := 0
		if err := st.ScanParallel(workers, func(*corpus.Document, store.DocRef) error { n++; return nil }); err != nil {
			st.Close()
			return 0, 0, err
		}
		return n, bytes, st.Close()
	}
	// One untimed round trip learns the store's shape for the report.
	docs, bytes, err := buildAndScan()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchstore: default-scale store: %d docs, %.1f MiB\n", docs, float64(bytes)/(1<<20))
	return measure("store/default-ingest-scan", docs, bytes, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, _, err := buildAndScan()
			if err != nil {
				b.Fatal(err)
			}
			if n != docs {
				b.Fatalf("round trip scanned %d docs, want %d", n, docs)
			}
		}
	})
}

// streamEntries trains the quick-scale detector once and measures
// ScoreStream over the store's documents twice: fed from a slice
// already in memory, and fed from a fresh Scan per op. The delta is
// the full cost the store adds to the scoring hot path (open file
// reads, checksums, record decode, slice rebuild).
func streamEntries(s *store.Store, totalDocs int) []entry {
	fmt.Fprintln(os.Stderr, "benchstore: training quick-scale pipeline (one-time setup)...")
	study, err := harassrepro.Run(harassrepro.QuickConfig(1))
	if err != nil {
		fatal(err)
	}
	dir, err := os.MkdirTemp("", "benchstore-models")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := study.SaveModels(dir); err != nil {
		fatal(err)
	}
	det, err := harassrepro.LoadDetector(dir)
	if err != nil {
		fatal(err)
	}

	collect := func(docs []harassrepro.StreamDocument) []harassrepro.StreamDocument {
		docs = docs[:0]
		err := s.Scan(func(d *corpus.Document, _ store.DocRef) error {
			docs = append(docs, harassrepro.StreamDocument{ID: d.ID, Text: d.Text})
			return nil
		})
		if err != nil {
			fatal(err)
		}
		return docs
	}
	inMem := collect(make([]harassrepro.StreamDocument, 0, totalDocs))

	score := func(b *testing.B, docs []harassrepro.StreamDocument) {
		_, sum, err := det.ScoreStream(context.Background(), docs, harassrepro.StreamOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Succeeded != len(docs) {
			b.Fatalf("summary = %+v", sum)
		}
	}

	mem := measure("memory/score-stream", totalDocs, 0, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			score(b, inMem)
		}
	})
	memCur := mem.Current

	scratch := make([]harassrepro.StreamDocument, 0, totalDocs)
	fromStore := measure("store/score-stream", totalDocs, 0, &memCur, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = collect(scratch)
			score(b, scratch)
		}
	})
	return []entry{mem, fromStore}
}

func printEntries(entries []entry) {
	for _, e := range entries {
		line := fmt.Sprintf("%-24s %14.0f ns/op %10d B/op %8d allocs/op %14.0f docs/sec",
			e.Name, e.Current.NsPerOp, e.Current.BytesPerOp, e.Current.AllocsPerOp, e.Current.DocsPerSec)
		if e.Current.MBPerSec > 0 {
			line += fmt.Sprintf("   %.1f MB/s", e.Current.MBPerSec)
		}
		if e.Speedup > 0 {
			line += fmt.Sprintf("   %.2fx vs in-memory", e.Speedup)
		}
		fmt.Println(line)
	}
}
