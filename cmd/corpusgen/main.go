// Command corpusgen generates the synthetic platform corpora and writes
// them as JSON Lines, one document per line, for use by external tools
// — or into a persistent segmented corpus store.
//
// Usage:
//
//	corpusgen [-seed N] [-volume-scale N] [-positive-scale N]
//	          [-dataset boards|blogs|chat|gab|pastes|all] [-truth]
//	corpusgen -store DIR [-append] [-seg-docs N] [generation flags]
//	corpusgen -store DIR -ingest FILE [-seg-docs N]
//
// By default ground-truth labels are omitted (the filtering task's
// input); -truth includes them for evaluation tooling.
//
// With -store, the corpora are committed to the on-disk store at DIR
// (internal/corpus/store) instead of stdout: a one-shot build creates
// the store, -append adds the generated documents to an existing one
// as a new synthetic "day" (run with a different -seed), and -ingest
// appends external JSONL, quarantining malformed lines with their line
// number and byte offset. Pipelines stream from the store via
// harassrepro -store / core.Options.StorePath.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
)

type jsonDoc struct {
	ID          string `json:"id"`
	Dataset     string `json:"dataset"`
	Platform    string `json:"platform"`
	Domain      string `json:"domain"`
	ThreadID    string `json:"thread_id,omitempty"`
	PosInThread int    `json:"pos_in_thread,omitempty"`
	ThreadSize  int    `json:"thread_size,omitempty"`
	Author      string `json:"author"`
	Date        string `json:"date"`
	Text        string `json:"text"`
	IsCTH       *bool  `json:"is_cth,omitempty"`
	IsDox       *bool  `json:"is_dox,omitempty"`
}

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "random seed")
		volScale  = flag.Int("volume-scale", 10000, "divide Table 1 raw volumes by this factor")
		posScale  = flag.Int("positive-scale", 10, "divide planted positive volumes by this factor")
		blogScale = flag.Int("blog-scale", 10, "divide blog post volumes by this factor")
		dataset   = flag.String("dataset", "all", "data set to emit (boards|blogs|chat|gab|pastes|all)")
		truth     = flag.Bool("truth", false, "include ground-truth labels")
		storeDir  = flag.String("store", "", "write into the segmented corpus store at this directory instead of stdout")
		appendDay = flag.Bool("append", false, "with -store: append to an existing store instead of creating one")
		ingest    = flag.String("ingest", "", "with -store: append external JSONL from this file instead of generating")
		segDocs   = flag.Int("seg-docs", 0, "with -store: documents per segment (0 = default)")
	)
	flag.Parse()

	if *storeDir == "" && (*appendDay || *ingest != "" || *segDocs != 0) {
		fmt.Fprintln(os.Stderr, "corpusgen: -append/-ingest/-seg-docs require -store")
		os.Exit(2)
	}
	if *storeDir != "" {
		if err := runStore(*storeDir, *appendDay, *ingest, *segDocs, corpus.Config{
			Seed:          *seed,
			VolumeScale:   *volScale,
			PositiveScale: *posScale,
		}, *blogScale); err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	gen := corpus.NewGenerator(corpus.Config{
		Seed:          *seed,
		VolumeScale:   *volScale,
		PositiveScale: *posScale,
	})
	corpora := gen.Generate()
	corpora[corpus.Blogs] = gen.GenerateBlogs(corpus.DefaultBlogSpecs(*blogScale))

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)

	emit := func(c *corpus.Corpus) error {
		for i := range c.Docs {
			d := &c.Docs[i]
			jd := jsonDoc{
				ID: d.ID, Dataset: string(d.Dataset), Platform: string(d.Platform),
				Domain: d.Domain, ThreadID: d.ThreadID, PosInThread: d.PosInThread,
				ThreadSize: d.ThreadSize, Author: d.Author, Date: d.Date, Text: d.Text,
			}
			if *truth {
				jd.IsCTH = &d.Truth.IsCTH
				jd.IsDox = &d.Truth.IsDox
			}
			if err := enc.Encode(jd); err != nil {
				return err
			}
		}
		return nil
	}

	order := []corpus.Dataset{corpus.Boards, corpus.Blogs, corpus.Chat, corpus.Gab, corpus.Pastes}
	for _, ds := range order {
		if *dataset != "all" && *dataset != string(ds) {
			continue
		}
		c, ok := corpora[ds]
		if !ok {
			fmt.Fprintf(os.Stderr, "corpusgen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		if err := emit(c); err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			os.Exit(1)
		}
	}
}

// runStore is the -store write path: one-shot build, incremental
// append of a new synthetic day, or external JSONL ingest.
func runStore(dir string, appendDay bool, ingestPath string, segDocs int, cfg corpus.Config, blogScale int) error {
	var s *store.Store
	var err error
	if appendDay || ingestPath != "" {
		s, err = store.Open(dir)
	} else {
		s, err = store.Create(dir)
	}
	if err != nil {
		return err
	}
	defer s.Close()
	for _, torn := range s.Recovery().Torn {
		fmt.Fprintf(os.Stderr, "corpusgen: recovered torn segment %s: %d docs salvaged to quarantine/\n",
			torn.Name, torn.SalvagedDocs)
	}
	before := s.Docs()

	if ingestPath != "" {
		f, err := os.Open(ingestPath)
		if err != nil {
			return err
		}
		defer f.Close()
		added, bad, err := store.IngestJSONL(s, f, segDocs)
		if err != nil {
			return err
		}
		for _, le := range bad {
			fmt.Fprintf(os.Stderr, "corpusgen: quarantined %v\n", le)
		}
		fmt.Printf("store %s: ingested %d docs (%d lines quarantined), generation %d, %d segments, %d docs total\n",
			dir, added, len(bad), s.Generation(), len(s.Segments()), s.Docs())
		return nil
	}

	gen := corpus.NewGenerator(cfg)
	corpora := gen.Generate()
	blogs := gen.GenerateBlogs(corpus.DefaultBlogSpecs(blogScale))
	if err := store.WriteCorpora(s, corpora, blogs, segDocs); err != nil {
		return err
	}
	fmt.Printf("store %s: wrote %d docs (seed %d), generation %d, %d segments, %d docs total\n",
		dir, s.Docs()-before, cfg.Seed, s.Generation(), len(s.Segments()), s.Docs())
	return nil
}
