// Command corpusgen generates the synthetic platform corpora and writes
// them as JSON Lines, one document per line, for use by external tools.
//
// Usage:
//
//	corpusgen [-seed N] [-volume-scale N] [-positive-scale N]
//	          [-dataset boards|blogs|chat|gab|pastes|all] [-truth]
//
// By default ground-truth labels are omitted (the filtering task's
// input); -truth includes them for evaluation tooling.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"harassrepro/internal/corpus"
)

type jsonDoc struct {
	ID          string `json:"id"`
	Dataset     string `json:"dataset"`
	Platform    string `json:"platform"`
	Domain      string `json:"domain"`
	ThreadID    string `json:"thread_id,omitempty"`
	PosInThread int    `json:"pos_in_thread,omitempty"`
	ThreadSize  int    `json:"thread_size,omitempty"`
	Author      string `json:"author"`
	Date        string `json:"date"`
	Text        string `json:"text"`
	IsCTH       *bool  `json:"is_cth,omitempty"`
	IsDox       *bool  `json:"is_dox,omitempty"`
}

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "random seed")
		volScale = flag.Int("volume-scale", 10000, "divide Table 1 raw volumes by this factor")
		posScale = flag.Int("positive-scale", 10, "divide planted positive volumes by this factor")
		dataset  = flag.String("dataset", "all", "data set to emit (boards|blogs|chat|gab|pastes|all)")
		truth    = flag.Bool("truth", false, "include ground-truth labels")
	)
	flag.Parse()

	gen := corpus.NewGenerator(corpus.Config{
		Seed:          *seed,
		VolumeScale:   *volScale,
		PositiveScale: *posScale,
	})
	corpora := gen.Generate()
	corpora[corpus.Blogs] = gen.GenerateBlogs(corpus.DefaultBlogSpecs(10))

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)

	emit := func(c *corpus.Corpus) error {
		for i := range c.Docs {
			d := &c.Docs[i]
			jd := jsonDoc{
				ID: d.ID, Dataset: string(d.Dataset), Platform: string(d.Platform),
				Domain: d.Domain, ThreadID: d.ThreadID, PosInThread: d.PosInThread,
				ThreadSize: d.ThreadSize, Author: d.Author, Date: d.Date, Text: d.Text,
			}
			if *truth {
				jd.IsCTH = &d.Truth.IsCTH
				jd.IsDox = &d.Truth.IsDox
			}
			if err := enc.Encode(jd); err != nil {
				return err
			}
		}
		return nil
	}

	order := []corpus.Dataset{corpus.Boards, corpus.Blogs, corpus.Chat, corpus.Gab, corpus.Pastes}
	for _, ds := range order {
		if *dataset != "all" && *dataset != string(ds) {
			continue
		}
		c, ok := corpora[ds]
		if !ok {
			fmt.Fprintf(os.Stderr, "corpusgen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		if err := emit(c); err != nil {
			fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
			os.Exit(1)
		}
	}
}
