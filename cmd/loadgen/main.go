// Command loadgen drives a running harassd with concurrent scoring
// clients and reports throughput and latency percentiles as JSON — the
// load half of scripts/bench_serve.sh.
//
// Each client loops for -duration POSTing single-document score
// requests (and, every -batch-every requests when set, a JSONL batch of
// -batch-docs documents) drawn from a built-in rotation of harassing,
// doxing and benign texts. 429 responses are counted as shed, not
// errors: shedding under overload is the service behaving as designed.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8712 [-clients 64] [-duration 10s]
//	        [-batch-every 0] [-batch-docs 16] [-out FILE]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// sampleTexts rotates through the content classes the detector
// distinguishes so scoring work resembles real traffic rather than one
// cached document.
var sampleTexts = []string{
	"we should mass report his channel until it gets banned",
	"dropping her address 99 cedar lane and her email jane.roe@example.com",
	"anyone up for ranked tonight, the patch notes are out",
	"everyone go spam his twitch chat right now",
	"found his phone number 555-0147, do what you want with it",
	"the weather in the city has been unusually warm this week",
	"raid her stream at 8pm, bring everyone from the server",
	"post his workplace and boss's email so people can complain",
	"just finished reading a great book about distributed systems",
	"keep reporting her videos until the account is gone",
}

var samplePlatforms = []string{"boards", "discord", "telegram", "gab", "pastes"}

// result is one request's outcome.
type result struct {
	code    int
	err     bool
	latency time.Duration
}

// report is the JSON document loadgen emits.
type report struct {
	Addr          string  `json:"addr"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Shed429       int     `json:"shed_429"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"latency_p50_ms"`
	P95Ms         float64 `json:"latency_p95_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8712", "harassd address (host:port)")
		clients    = flag.Int("clients", 64, "concurrent clients")
		duration   = flag.Duration("duration", 10*time.Second, "load duration")
		batchEvery = flag.Int("batch-every", 0, "send a batch request every N requests per client (0 = singles only)")
		batchDocs  = flag.Int("batch-docs", 16, "documents per batch request")
		out        = flag.String("out", "", "write the JSON report to this file as well as stdout")
	)
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	httpc := &http.Client{Timeout: 1 * time.Minute}

	var (
		mu      sync.Mutex
		results []result
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			local := make([]result, 0, 1024)
			for n := 0; time.Now().Before(deadline); n++ {
				var body []byte
				url := base + "/v1/score"
				if *batchEvery > 0 && n%*batchEvery == *batchEvery-1 {
					url = base + "/v1/score/batch"
					body = batchBody(client, n, *batchDocs)
				} else {
					body = singleBody(client, n)
				}
				t0 := time.Now()
				resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					local = append(local, result{err: true, latency: lat})
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, result{code: resp.StatusCode, latency: lat})
			}
			mu.Lock()
			results = append(results, local...)
			mu.Unlock()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, *addr, *clients, elapsed)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if rep.Requests == 0 || rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		os.Exit(1)
	}
}

func singleBody(client, n int) []byte {
	doc := map[string]string{
		"id":       fmt.Sprintf("load-%d-%d", client, n),
		"platform": samplePlatforms[(client+n)%len(samplePlatforms)],
		"text":     sampleTexts[(client*7+n)%len(sampleTexts)],
	}
	b, _ := json.Marshal(doc)
	return b
}

func batchBody(client, n, docs int) []byte {
	var buf bytes.Buffer
	for i := 0; i < docs; i++ {
		buf.Write(singleBody(client, n*docs+i))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func summarize(results []result, addr string, clients int, elapsed time.Duration) report {
	rep := report{
		Addr:        addr,
		Clients:     clients,
		DurationSec: elapsed.Seconds(),
		Requests:    len(results),
	}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		switch {
		case r.err:
			rep.Errors++
		case r.code == http.StatusOK:
			rep.OK++
			lats = append(lats, r.latency)
		case r.code == http.StatusTooManyRequests:
			rep.Shed429++
		default:
			rep.Errors++
		}
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(lats)-1))
			return float64(lats[idx].Microseconds()) / 1000
		}
		rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	}
	return rep
}
