// Command loadgen drives a running harassd with concurrent scoring
// clients and reports throughput and latency percentiles as JSON — the
// load half of scripts/bench_serve.sh.
//
// Each client loops for -duration POSTing single-document score
// requests (and, every -batch-every requests when set, a JSONL batch of
// -batch-docs documents) drawn from a built-in rotation of harassing,
// doxing and benign texts. 429 and 503 responses are counted as shed,
// not errors — shedding under overload and refusing during a shard
// incident are the service behaving as designed — and the client
// honours their Retry-After hint, backing off (capped by -max-backoff)
// before its next request. After the run the server's /metrics.json is
// scraped (best-effort) so the summary reports how many documents the
// self-healing layer re-homed or failed and how many shard generations
// restarted during the run.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8712 [-clients 64] [-duration 10s]
//	        [-batch-every 0] [-batch-docs 16] [-max-backoff 5s]
//	        [-fail-on-errors] [-out FILE]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// sampleTexts rotates through the content classes the detector
// distinguishes so scoring work resembles real traffic rather than one
// cached document.
var sampleTexts = []string{
	"we should mass report his channel until it gets banned",
	"dropping her address 99 cedar lane and her email jane.roe@example.com",
	"anyone up for ranked tonight, the patch notes are out",
	"everyone go spam his twitch chat right now",
	"found his phone number 555-0147, do what you want with it",
	"the weather in the city has been unusually warm this week",
	"raid her stream at 8pm, bring everyone from the server",
	"post his workplace and boss's email so people can complain",
	"just finished reading a great book about distributed systems",
	"keep reporting her videos until the account is gone",
}

var samplePlatforms = []string{"boards", "discord", "telegram", "gab", "pastes"}

// result is one request's outcome.
type result struct {
	code    int
	err     bool
	latency time.Duration
}

// report is the JSON document loadgen emits.
type report struct {
	Addr          string  `json:"addr"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Shed429       int     `json:"shed_429"`
	Shed503       int     `json:"shed_503"`
	BackoffWaits  int     `json:"backoff_waits"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"latency_p50_ms"`
	P95Ms         float64 `json:"latency_p95_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
	// Self-healing counters scraped from the server's /metrics.json
	// after the run (zero when the server exposes no metrics).
	Redispatched     int `json:"redispatched_docs"`
	RedispatchFailed int `json:"redispatch_failed_docs"`
	ShardRestarts    int `json:"shard_restarts"`
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8712", "harassd address (host:port)")
		clients      = flag.Int("clients", 64, "concurrent clients")
		duration     = flag.Duration("duration", 10*time.Second, "load duration")
		batchEvery   = flag.Int("batch-every", 0, "send a batch request every N requests per client (0 = singles only)")
		batchDocs    = flag.Int("batch-docs", 16, "documents per batch request")
		maxBackoff   = flag.Duration("max-backoff", 5*time.Second, "cap on the Retry-After backoff honoured after 429/503")
		failOnErrors = flag.Bool("fail-on-errors", false, "exit non-zero if any request errored (shed 429/503 are not errors)")
		out          = flag.String("out", "", "write the JSON report to this file as well as stdout")
	)
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	httpc := &http.Client{Timeout: 1 * time.Minute}

	var (
		mu       sync.Mutex
		results  []result
		backoffs int
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			local := make([]result, 0, 1024)
			waits := 0
			for n := 0; time.Now().Before(deadline); n++ {
				var body []byte
				url := base + "/v1/score"
				if *batchEvery > 0 && n%*batchEvery == *batchEvery-1 {
					url = base + "/v1/score/batch"
					body = batchBody(client, n, *batchDocs)
				} else {
					body = singleBody(client, n)
				}
				t0 := time.Now()
				resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					local = append(local, result{err: true, latency: lat})
					continue
				}
				retryAfter := resp.Header.Get("Retry-After")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, result{code: resp.StatusCode, latency: lat})
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					if d := backoffFor(retryAfter, *maxBackoff); d > 0 {
						// Honour the server's hint, but never sleep past
						// the run deadline.
						if remain := time.Until(deadline); d > remain {
							d = remain
						}
						if d > 0 {
							waits++
							time.Sleep(d)
						}
					}
				}
			}
			mu.Lock()
			results = append(results, local...)
			backoffs += waits
			mu.Unlock()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, *addr, *clients, elapsed)
	rep.BackoffWaits = backoffs
	scrapeHealing(httpc, base, &rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if rep.Requests == 0 || rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		os.Exit(1)
	}
	if *failOnErrors && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests errored\n", rep.Errors)
		os.Exit(1)
	}
}

// backoffFor converts a Retry-After header (delta-seconds form) into a
// sleep, capped by max. A missing or unparseable header falls back to
// a short fixed pause so a misconfigured server still gets relief.
func backoffFor(header string, max time.Duration) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > max {
		d = max
	}
	return d
}

// metricsSnapshot mirrors the /metrics.json wire shape (obs.Snapshot).
// Value is left raw: the registry encodes NaN/Inf gauges as strings,
// and one odd value must not abort the whole scrape.
type metricsSnapshot struct {
	Metrics []struct {
		Name  string          `json:"name"`
		Value json.RawMessage `json:"value"`
	} `json:"metrics"`
}

// scrapeHealing reads the server's self-healing counters after the run.
// Best-effort: a server without -metrics (404) leaves the fields zero.
func scrapeHealing(httpc *http.Client, base string, rep *report) {
	resp, err := httpc.Get(base + "/metrics.json")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap); err != nil {
		return
	}
	for _, m := range snap.Metrics {
		var v float64
		if m.Value == nil || json.Unmarshal(m.Value, &v) != nil {
			continue
		}
		switch m.Name {
		case "serve_redispatch_total":
			rep.Redispatched += int(v)
		case "serve_redispatch_failed_total":
			rep.RedispatchFailed += int(v)
		case "serve_shard_restarts_total": // summed across shard labels
			rep.ShardRestarts += int(v)
		}
	}
}

func singleBody(client, n int) []byte {
	doc := map[string]string{
		"id":       fmt.Sprintf("load-%d-%d", client, n),
		"platform": samplePlatforms[(client+n)%len(samplePlatforms)],
		"text":     sampleTexts[(client*7+n)%len(sampleTexts)],
	}
	b, _ := json.Marshal(doc)
	return b
}

func batchBody(client, n, docs int) []byte {
	var buf bytes.Buffer
	for i := 0; i < docs; i++ {
		buf.Write(singleBody(client, n*docs+i))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func summarize(results []result, addr string, clients int, elapsed time.Duration) report {
	rep := report{
		Addr:        addr,
		Clients:     clients,
		DurationSec: elapsed.Seconds(),
		Requests:    len(results),
	}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		switch {
		case r.err:
			rep.Errors++
		case r.code == http.StatusOK:
			rep.OK++
			lats = append(lats, r.latency)
		case r.code == http.StatusTooManyRequests:
			rep.Shed429++
		case r.code == http.StatusServiceUnavailable:
			rep.Shed503++
		default:
			rep.Errors++
		}
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(lats)-1))
			return float64(lats[idx].Microseconds()) / 1000
		}
		rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	}
	return rep
}
