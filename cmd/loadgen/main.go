// Command loadgen drives a running harassd with concurrent scoring
// clients and reports throughput and latency percentiles as JSON — the
// load half of scripts/bench_serve.sh.
//
// Each client loops for -duration POSTing single-document score
// requests (and, every -batch-every requests when set, a JSONL batch of
// -batch-docs documents) drawn from a built-in rotation of harassing,
// doxing and benign texts. 429 and 503 responses are counted as shed,
// not errors — shedding under overload and refusing during a shard
// incident are the service behaving as designed — and the client
// honours their Retry-After hint, backing off (capped by -max-backoff)
// before its next request. After the run the server's /metrics.json is
// scraped (best-effort) so the summary reports how many documents the
// self-healing layer re-homed or failed and how many shard generations
// restarted during the run.
//
// Every single-document 200 carries the X-Model-Generation header;
// loadgen tracks the generations it was served by and counts
// transitions (a hot-swap under load shows up as one transition per
// client that straddled it), logging each transition to stderr and
// listing the generation set in the summary. With -feedback-every N
// each client also POSTs a labelled feedback batch to /v1/feedback
// every N requests — the live-annotation traffic that feeds the
// retrain loop.
//
// -requests N bounds the whole run to a fixed request budget shared
// across clients (whichever of the budget and -duration is hit first
// ends the run) so certification scripts can assert exact accounting
// over a known request count.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8712 [-clients 64] [-duration 10s]
//	        [-requests 0] [-batch-every 0] [-batch-docs 16]
//	        [-feedback-every 0] [-feedback-docs 8] [-max-backoff 5s]
//	        [-fail-on-errors] [-out FILE]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// sampleTexts rotates through the content classes the detector
// distinguishes so scoring work resembles real traffic rather than one
// cached document.
var sampleTexts = []string{
	"we should mass report his channel until it gets banned",
	"dropping her address 99 cedar lane and her email jane.roe@example.com",
	"anyone up for ranked tonight, the patch notes are out",
	"everyone go spam his twitch chat right now",
	"found his phone number 555-0147, do what you want with it",
	"the weather in the city has been unusually warm this week",
	"raid her stream at 8pm, bring everyone from the server",
	"post his workplace and boss's email so people can complain",
	"just finished reading a great book about distributed systems",
	"keep reporting her videos until the account is gone",
}

var samplePlatforms = []string{"boards", "discord", "telegram", "gab", "pastes"}

// result is one request's outcome.
type result struct {
	code    int
	err     bool
	latency time.Duration
}

// harassingText reports whether sampleTexts[i] is one of the
// incitement/doxing rotations (the labels feedback batches carry).
func harassingText(i int) bool {
	switch i % len(sampleTexts) {
	case 2, 5, 8:
		return false
	}
	return true
}

// report is the JSON document loadgen emits.
type report struct {
	Addr          string  `json:"addr"`
	Clients       int     `json:"clients"`
	DurationSec   float64 `json:"duration_sec"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Shed429       int     `json:"shed_429"`
	Shed503       int     `json:"shed_503"`
	BackoffWaits  int     `json:"backoff_waits"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"latency_p50_ms"`
	P95Ms         float64 `json:"latency_p95_ms"`
	P99Ms         float64 `json:"latency_p99_ms"`
	// Model lifecycle: the generations that served this run's single
	// 200s (X-Model-Generation) and how many times a client observed
	// the generation change mid-run — a hot-swap under load.
	FeedbackAccepted      int      `json:"feedback_accepted"`
	ModelGenerations      []uint64 `json:"model_generations,omitempty"`
	GenerationTransitions int      `json:"generation_transitions"`
	// Self-healing counters scraped from the server's /metrics.json
	// after the run (zero when the server exposes no metrics).
	Redispatched     int `json:"redispatched_docs"`
	RedispatchFailed int `json:"redispatch_failed_docs"`
	ShardRestarts    int `json:"shard_restarts"`
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8712", "harassd address (host:port)")
		clients      = flag.Int("clients", 64, "concurrent clients")
		duration     = flag.Duration("duration", 10*time.Second, "load duration")
		requests     = flag.Int("requests", 0, "total request budget across all clients (0 = -duration bound only)")
		batchEvery   = flag.Int("batch-every", 0, "send a batch request every N requests per client (0 = singles only)")
		batchDocs    = flag.Int("batch-docs", 16, "documents per batch request")
		fbEvery      = flag.Int("feedback-every", 0, "POST a labelled feedback batch every N requests per client (0 = none)")
		fbDocs       = flag.Int("feedback-docs", 8, "labelled documents per feedback batch")
		maxBackoff   = flag.Duration("max-backoff", 5*time.Second, "cap on the Retry-After backoff honoured after 429/503")
		failOnErrors = flag.Bool("fail-on-errors", false, "exit non-zero if any request errored (shed 429/503 are not errors)")
		out          = flag.String("out", "", "write the JSON report to this file as well as stdout")
	)
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	httpc := &http.Client{Timeout: 1 * time.Minute}

	var (
		mu          sync.Mutex
		results     []result
		backoffs    int
		transitions int
		gens        = make(map[uint64]bool)
	)
	deadline := time.Now().Add(*duration)
	var issued atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			local := make([]result, 0, 1024)
			waits := 0
			myTransitions := 0
			myGens := make(map[uint64]bool)
			lastGen := uint64(0)
			for n := 0; time.Now().Before(deadline); n++ {
				if *requests > 0 && issued.Add(1) > int64(*requests) {
					break
				}
				var body []byte
				url := base + "/v1/score"
				single := true
				switch {
				case *fbEvery > 0 && n%*fbEvery == *fbEvery-1:
					url = base + "/v1/feedback"
					body = feedbackBody(client, n, *fbDocs)
					single = false
				case *batchEvery > 0 && n%*batchEvery == *batchEvery-1:
					url = base + "/v1/score/batch"
					body = batchBody(client, n, *batchDocs)
					single = false
				default:
					body = singleBody(client, n)
				}
				t0 := time.Now()
				resp, err := httpc.Post(url, "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					local = append(local, result{err: true, latency: lat})
					continue
				}
				retryAfter := resp.Header.Get("Retry-After")
				if single && resp.StatusCode == http.StatusOK {
					if g, perr := strconv.ParseUint(resp.Header.Get("X-Model-Generation"), 10, 64); perr == nil && g > 0 {
						myGens[g] = true
						if lastGen != 0 && g != lastGen {
							myTransitions++
							fmt.Fprintf(os.Stderr, "loadgen: client %d: model generation %d -> %d\n", client, lastGen, g)
						}
						lastGen = g
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				local = append(local, result{code: resp.StatusCode, latency: lat})
				if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
					if d := backoffFor(retryAfter, *maxBackoff); d > 0 {
						// Honour the server's hint, but never sleep past
						// the run deadline.
						if remain := time.Until(deadline); d > remain {
							d = remain
						}
						if d > 0 {
							waits++
							time.Sleep(d)
						}
					}
				}
			}
			mu.Lock()
			results = append(results, local...)
			backoffs += waits
			transitions += myTransitions
			for g := range myGens {
				gens[g] = true
			}
			mu.Unlock()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarize(results, *addr, *clients, elapsed)
	rep.BackoffWaits = backoffs
	rep.GenerationTransitions = transitions
	for g := range gens {
		rep.ModelGenerations = append(rep.ModelGenerations, g)
	}
	sort.Slice(rep.ModelGenerations, func(i, j int) bool { return rep.ModelGenerations[i] < rep.ModelGenerations[j] })
	if len(rep.ModelGenerations) > 1 {
		fmt.Fprintf(os.Stderr, "loadgen: served by model generations %v (%d transitions observed)\n",
			rep.ModelGenerations, transitions)
	}
	scrapeHealing(httpc, base, &rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	if rep.Requests == 0 || rep.OK == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		os.Exit(1)
	}
	if *failOnErrors && rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests errored\n", rep.Errors)
		os.Exit(1)
	}
}

// backoffFor converts a Retry-After header (delta-seconds form) into a
// sleep, capped by max. A missing or unparseable header falls back to
// a short fixed pause so a misconfigured server still gets relief.
func backoffFor(header string, max time.Duration) time.Duration {
	d := 100 * time.Millisecond
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > max {
		d = max
	}
	return d
}

// metricsSnapshot mirrors the /metrics.json wire shape (obs.Snapshot).
// Value is left raw: the registry encodes NaN/Inf gauges as strings,
// and one odd value must not abort the whole scrape.
type metricsSnapshot struct {
	Metrics []struct {
		Name  string          `json:"name"`
		Value json.RawMessage `json:"value"`
	} `json:"metrics"`
}

// scrapeHealing reads the server's self-healing counters after the run.
// Best-effort: a server without -metrics (404) leaves the fields zero.
func scrapeHealing(httpc *http.Client, base string, rep *report) {
	resp, err := httpc.Get(base + "/metrics.json")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var snap metricsSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap); err != nil {
		return
	}
	for _, m := range snap.Metrics {
		var v float64
		if m.Value == nil || json.Unmarshal(m.Value, &v) != nil {
			continue
		}
		switch m.Name {
		case "serve_redispatch_total":
			rep.Redispatched += int(v)
		case "serve_redispatch_failed_total":
			rep.RedispatchFailed += int(v)
		case "serve_shard_restarts_total": // summed across shard labels
			rep.ShardRestarts += int(v)
		}
	}
}

func singleBody(client, n int) []byte {
	doc := map[string]string{
		"id":       fmt.Sprintf("load-%d-%d", client, n),
		"platform": samplePlatforms[(client+n)%len(samplePlatforms)],
		"text":     sampleTexts[(client*7+n)%len(sampleTexts)],
	}
	b, _ := json.Marshal(doc)
	return b
}

func batchBody(client, n, docs int) []byte {
	var buf bytes.Buffer
	for i := 0; i < docs; i++ {
		buf.Write(singleBody(client, n*docs+i))
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// feedbackBody builds one /v1/feedback batch: the sample rotation with
// its ground-truth labels, the live-annotation stream a deployment
// would feed back from its moderators.
func feedbackBody(client, n, docs int) []byte {
	type item struct {
		ID       string `json:"id"`
		Platform string `json:"platform"`
		Text     string `json:"text"`
		Task     string `json:"task"`
		Label    bool   `json:"label"`
	}
	items := make([]item, 0, docs)
	for i := 0; i < docs; i++ {
		k := client*13 + n*docs + i
		items = append(items, item{
			ID:       fmt.Sprintf("fb-%d-%d-%d", client, n, i),
			Platform: samplePlatforms[k%len(samplePlatforms)],
			Text:     fmt.Sprintf("%s (report %d)", sampleTexts[k%len(sampleTexts)], k),
			Task:     "cth",
			Label:    harassingText(k),
		})
	}
	b, _ := json.Marshal(items)
	return b
}

func summarize(results []result, addr string, clients int, elapsed time.Duration) report {
	rep := report{
		Addr:        addr,
		Clients:     clients,
		DurationSec: elapsed.Seconds(),
		Requests:    len(results),
	}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		switch {
		case r.err:
			rep.Errors++
		case r.code == http.StatusOK:
			rep.OK++
			lats = append(lats, r.latency)
		case r.code == http.StatusAccepted:
			// Feedback batches: accepted live annotations, not scores.
			rep.FeedbackAccepted++
		case r.code == http.StatusTooManyRequests:
			rep.Shed429++
		case r.code == http.StatusServiceUnavailable:
			rep.Shed503++
		default:
			rep.Errors++
		}
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			idx := int(p * float64(len(lats)-1))
			return float64(lats[idx].Microseconds()) / 1000
		}
		rep.P50Ms, rep.P95Ms, rep.P99Ms = pct(0.50), pct(0.95), pct(0.99)
	}
	return rep
}
