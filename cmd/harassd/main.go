// Command harassd is the production scoring service: the paper's
// filtering classifiers (call-to-harassment, doxing), PII extraction
// and attack-taxonomy coding served over HTTP, the way platforms
// consume moderation classifiers as an online endpoint.
//
// Endpoints:
//
//	POST /v1/score        score one document: {"id","platform","text"}
//	POST /v1/score/batch  JSONL (lenient; bad lines quarantined and
//	                      reported per line) or a JSON array
//	POST /v1/feedback     operator-labelled documents feeding the
//	                      retrain loop (with -registry)
//	GET  /v1/admin/*      model lifecycle control: GET models, POST
//	                      retrain/promote/rollback/swap/shadow (with
//	                      -registry)
//	GET  /healthz         process liveness + active model generation
//	GET  /readyz          admission readiness (503 while draining)
//	GET  /metrics         Prometheus text format (same mux)
//	GET  /metrics.json    JSON metrics snapshot
//	GET  /debug/pprof/*   live profiling
//
// Requests are routed onto -shards independent supervised scoring
// shards, each with its own bounded queue and detector stream: a shard
// that panics or stalls is killed and restarted under backoff, its
// in-flight documents re-dispatched exactly once to a healthy shard (or
// answered 503 + Retry-After), and a per-shard circuit breaker routes
// traffic around a shard that keeps dying. /readyz reports 503 when a
// quorum of shards is down. Overload is shed with 429 + Retry-After
// (bounded in-flight requests and per-shard queue depth, never an
// unbounded goroutine pile-up), and SIGINT/SIGTERM triggers a graceful
// drain: stop admitting, finish every accepted request, then exit 0.
// If -drain-timeout expires first, the abandoned in-flight requests are
// counted, logged, and the process exits non-zero.
//
// -chaos enables the seeded serve-layer fault plan (shard panics, hard
// stalls, latency spikes) for self-healing certification, e.g.
// -chaos "seed=7,panic=0.02,stall=0.004,spike=0.05,spike-ms=20".
//
// With -models the classifiers are loaded from a directory written by
// `harassrepro -save-models`; otherwise they are trained at startup by
// running the pipeline at -scale.
//
// With -registry the detector becomes a versioned, hot-swappable
// artifact: the directory holds committed model generations
// (gen-XXXXXXXX dirs under a fsync'd MANIFEST), the active generation
// is served on boot (training only when the registry is empty), and
// the feedback/retrain/shadow/promote lifecycle is exposed on
// /v1/feedback and /v1/admin. -auto-retrain retrains in the background
// once enough feedback buffers; -shadow-rate sets the live-traffic
// fraction a committed candidate shadow-scores before promotion.
// -replay-store points retrains at a segmented corpus store (corpusgen
// -store) so each round's training seed also replays historical
// documents at store scan speed; -replay-limit caps how many.
//
// Usage:
//
//	harassd [-addr :8712] [-models DIR] [-scale quick|default] [-seed N]
//	        [-registry DIR] [-shadow-rate F] [-auto-retrain]
//	        [-replay-store DIR] [-replay-limit N]
//	        [-shards N] [-workers N] [-max-inflight N] [-queue-depth N]
//	        [-max-batch-docs N] [-request-timeout D] [-drain-timeout D]
//	        [-chaos PLAN] [-no-annotate] [-metrics]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/lifecycle"
	"harassrepro/internal/obs"
	"harassrepro/internal/registry"
	"harassrepro/internal/resilience/chaos"
	"harassrepro/internal/serve"
)

// fail prints a one-line diagnostic and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harassd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		addr           = flag.String("addr", ":8712", "listen address (\":0\" picks a free port)")
		models         = flag.String("models", "", "load pretrained classifiers from this directory (see harassrepro -save-models) instead of training")
		scale          = flag.String("scale", "quick", "training corpus scale when -models is unset: quick or default")
		registryDir    = flag.String("registry", "", "versioned model registry directory: serve the active generation and enable /v1/feedback + /v1/admin")
		shadowRate     = flag.Float64("shadow-rate", 0.25, "live-traffic fraction a retrained candidate shadow-scores (with -registry)")
		autoRetrain    = flag.Bool("auto-retrain", false, "retrain in the background once enough feedback buffers (with -registry)")
		replayStore    = flag.String("replay-store", "", "segmented corpus store whose historical documents augment every retrain (with -registry)")
		replayLimit    = flag.Int("replay-limit", 0, "cap on replayed store documents per retrain (0 = default 256)")
		seed           = flag.Uint64("seed", 1, "training and span-sampling seed")
		shards         = flag.Int("shards", 0, "independent supervised scoring shards (0 = min(GOMAXPROCS, 8))")
		workers        = flag.Int("workers", 0, "scoring worker pool size, divided across shards (0 = GOMAXPROCS)")
		maxInFlight    = flag.Int("max-inflight", 256, "maximum concurrently admitted score requests")
		queueDepth     = flag.Int("queue-depth", 1024, "maximum admitted-but-unscored documents across all requests")
		maxBatchDocs   = flag.Int("max-batch-docs", 4096, "maximum documents in one batch request")
		maxBodyBytes   = flag.Int64("max-body-bytes", 32<<20, "maximum request body size")
		maxLineBytes   = flag.Int("max-line-bytes", 1<<20, "maximum JSONL line length in a batch body")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request scoring deadline")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound after SIGINT/SIGTERM")
		chaosPlan      = flag.String("chaos", "", "seeded serve-layer fault plan, e.g. \"seed=7,panic=0.02,stall=0.004,spike=0.05,spike-ms=20,shards=0,max-faults=40\"")
		noAnnotate     = flag.Bool("no-annotate", false, "skip the PII and taxonomy annotation stages")
		metrics        = flag.Bool("metrics", false, "print a JSON metrics snapshot to stderr on exit")
	)
	flag.Parse()

	if *replayStore != "" && *registryDir == "" {
		fail("-replay-store requires -registry")
	}

	faults, err := chaos.ParseServePlan(*chaosPlan)
	if err != nil {
		fail("%v", err)
	}
	if faults != nil {
		fmt.Fprintf(os.Stderr, "harassd: CHAOS ENABLED: %s\n", *chaosPlan)
	}

	reg := obs.NewRegistry()

	// buildDetector loads (-models) or trains (-scale) the classifiers;
	// with -registry it only runs when the registry has no committed
	// generation yet.
	buildDetector := func() (*core.Detector, error) {
		if *models != "" {
			d, err := core.LoadDetector(*models)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "harassd: loaded classifiers from %s\n", *models)
			return d, nil
		}
		var cfg core.Config
		switch *scale {
		case "quick":
			cfg = core.QuickConfig(*seed)
		case "default":
			cfg = core.DefaultConfig(*seed)
		default:
			return nil, fmt.Errorf("unknown scale %q (want quick or default)", *scale)
		}
		fmt.Fprintf(os.Stderr, "harassd: training filtering classifiers (seed %d, scale %s)...\n", *seed, *scale)
		t0 := time.Now()
		p, err := core.RunWithOptions(cfg, core.Options{Workers: *workers})
		if err != nil {
			return nil, fmt.Errorf("training: %w", err)
		}
		fmt.Fprintf(os.Stderr, "harassd: classifiers ready in %v\n", time.Since(t0).Round(time.Millisecond))
		return p.Detector(), nil
	}

	var mdl *serve.Model
	var mgr *lifecycle.Manager
	if *registryDir != "" {
		mreg, err := registry.OpenOrCreate(*registryDir)
		if err != nil {
			fail("%v", err)
		}
		if rec := mreg.Recovery(); len(rec.Quarantined) > 0 || len(rec.Orphans) > 0 {
			fmt.Fprintf(os.Stderr, "harassd: registry recovery: quarantined generations %v, swept orphans %v\n",
				rec.Quarantined, rec.Orphans)
		}
		mdl, _, err = lifecycle.BootModel(mreg, *seed, buildDetector)
		if err != nil {
			fail("%v", err)
		}
		mgr, err = lifecycle.New(lifecycle.Config{
			Registry:        mreg,
			Seed:            *seed,
			AutoRetrain:     *autoRetrain,
			ShadowRate:      *shadowRate,
			ReplayStorePath: *replayStore,
			ReplayLimit:     *replayLimit,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "harassd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fail("%v", err)
		}
	} else {
		det, err := buildDetector()
		if err != nil {
			fail("%v", err)
		}
		mdl = &serve.Model{Backend: det, Generation: 1, Seed: *seed, Thresholds: det}
	}

	cfg := serve.Config{
		Model:          mdl,
		Shards:         *shards,
		Workers:        *workers,
		Seed:           *seed,
		Annotate:       !*noAnnotate,
		MaxInFlight:    *maxInFlight,
		QueueDepth:     *queueDepth,
		MaxBatchDocs:   *maxBatchDocs,
		MaxBodyBytes:   *maxBodyBytes,
		MaxLineBytes:   *maxLineBytes,
		RequestTimeout: *requestTimeout,
		Metrics:        reg,
	}
	if faults != nil {
		cfg.Faults = faults
	}
	if mgr != nil {
		cfg.Feedback = mgr
		cfg.Admin = mgr
	}
	srv := serve.New(cfg)
	if mgr != nil {
		mgr.Bind(srv)
	}
	if err := srv.Start(*addr); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "harassd: serving model generation %d (seed %d)\n", mdl.Generation, mdl.Seed)
	fmt.Fprintf(os.Stderr, "harassd: listening on http://%s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintf(os.Stderr, "harassd: draining (bound %v)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(dctx)
	if *metrics {
		fmt.Fprintln(os.Stderr, "metrics snapshot:")
		if werr := reg.WriteJSON(os.Stderr); werr != nil {
			fail("writing metrics: %v", werr)
		}
	}
	if err != nil {
		// The drain bound expired: report exactly what was abandoned so
		// operators can audit the loss, and exit non-zero.
		reqs, docs := srv.Abandoned()
		fail("drain: %v (abandoned %d in-flight requests, %d unscored documents)", err, reqs, docs)
	}
	fmt.Fprintln(os.Stderr, "harassd: drained cleanly")
}
