// Command harassd is the production scoring service: the paper's
// filtering classifiers (call-to-harassment, doxing), PII extraction
// and attack-taxonomy coding served over HTTP, the way platforms
// consume moderation classifiers as an online endpoint.
//
// Endpoints:
//
//	POST /v1/score        score one document: {"id","platform","text"}
//	POST /v1/score/batch  JSONL (lenient; bad lines quarantined and
//	                      reported per line) or a JSON array
//	GET  /healthz         process liveness
//	GET  /readyz          admission readiness (503 while draining)
//	GET  /metrics         Prometheus text format (same mux)
//	GET  /metrics.json    JSON metrics snapshot
//	GET  /debug/pprof/*   live profiling
//
// Requests are routed onto -shards independent supervised scoring
// shards, each with its own bounded queue and detector stream: a shard
// that panics or stalls is killed and restarted under backoff, its
// in-flight documents re-dispatched exactly once to a healthy shard (or
// answered 503 + Retry-After), and a per-shard circuit breaker routes
// traffic around a shard that keeps dying. /readyz reports 503 when a
// quorum of shards is down. Overload is shed with 429 + Retry-After
// (bounded in-flight requests and per-shard queue depth, never an
// unbounded goroutine pile-up), and SIGINT/SIGTERM triggers a graceful
// drain: stop admitting, finish every accepted request, then exit 0.
// If -drain-timeout expires first, the abandoned in-flight requests are
// counted, logged, and the process exits non-zero.
//
// -chaos enables the seeded serve-layer fault plan (shard panics, hard
// stalls, latency spikes) for self-healing certification, e.g.
// -chaos "seed=7,panic=0.02,stall=0.004,spike=0.05,spike-ms=20".
//
// With -models the classifiers are loaded from a directory written by
// `harassrepro -save-models`; otherwise they are trained at startup by
// running the pipeline at -scale.
//
// Usage:
//
//	harassd [-addr :8712] [-models DIR] [-scale quick|default] [-seed N]
//	        [-shards N] [-workers N] [-max-inflight N] [-queue-depth N]
//	        [-max-batch-docs N] [-request-timeout D] [-drain-timeout D]
//	        [-chaos PLAN] [-no-annotate] [-metrics]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/resilience/chaos"
	"harassrepro/internal/serve"
)

// fail prints a one-line diagnostic and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harassd: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		addr           = flag.String("addr", ":8712", "listen address (\":0\" picks a free port)")
		models         = flag.String("models", "", "load pretrained classifiers from this directory (see harassrepro -save-models) instead of training")
		scale          = flag.String("scale", "quick", "training corpus scale when -models is unset: quick or default")
		seed           = flag.Uint64("seed", 1, "training and span-sampling seed")
		shards         = flag.Int("shards", 0, "independent supervised scoring shards (0 = min(GOMAXPROCS, 8))")
		workers        = flag.Int("workers", 0, "scoring worker pool size, divided across shards (0 = GOMAXPROCS)")
		maxInFlight    = flag.Int("max-inflight", 256, "maximum concurrently admitted score requests")
		queueDepth     = flag.Int("queue-depth", 1024, "maximum admitted-but-unscored documents across all requests")
		maxBatchDocs   = flag.Int("max-batch-docs", 4096, "maximum documents in one batch request")
		maxBodyBytes   = flag.Int64("max-body-bytes", 32<<20, "maximum request body size")
		maxLineBytes   = flag.Int("max-line-bytes", 1<<20, "maximum JSONL line length in a batch body")
		requestTimeout = flag.Duration("request-timeout", 30*time.Second, "per-request scoring deadline")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound after SIGINT/SIGTERM")
		chaosPlan      = flag.String("chaos", "", "seeded serve-layer fault plan, e.g. \"seed=7,panic=0.02,stall=0.004,spike=0.05,spike-ms=20,shards=0,max-faults=40\"")
		noAnnotate     = flag.Bool("no-annotate", false, "skip the PII and taxonomy annotation stages")
		metrics        = flag.Bool("metrics", false, "print a JSON metrics snapshot to stderr on exit")
	)
	flag.Parse()

	faults, err := chaos.ParseServePlan(*chaosPlan)
	if err != nil {
		fail("%v", err)
	}
	if faults != nil {
		fmt.Fprintf(os.Stderr, "harassd: CHAOS ENABLED: %s\n", *chaosPlan)
	}

	reg := obs.NewRegistry()

	var det *core.Detector
	if *models != "" {
		d, err := core.LoadDetector(*models)
		if err != nil {
			fail("%v", err)
		}
		det = d
		fmt.Fprintf(os.Stderr, "harassd: loaded classifiers from %s\n", *models)
	} else {
		var cfg core.Config
		switch *scale {
		case "quick":
			cfg = core.QuickConfig(*seed)
		case "default":
			cfg = core.DefaultConfig(*seed)
		default:
			fail("unknown scale %q (want quick or default)", *scale)
		}
		fmt.Fprintf(os.Stderr, "harassd: training filtering classifiers (seed %d, scale %s)...\n", *seed, *scale)
		t0 := time.Now()
		p, err := core.RunWithOptions(cfg, core.Options{Workers: *workers})
		if err != nil {
			fail("training: %v", err)
		}
		det = p.Detector()
		fmt.Fprintf(os.Stderr, "harassd: classifiers ready in %v\n", time.Since(t0).Round(time.Millisecond))
	}

	cfg := serve.Config{
		Backend:        det,
		Shards:         *shards,
		Workers:        *workers,
		Seed:           *seed,
		Annotate:       !*noAnnotate,
		MaxInFlight:    *maxInFlight,
		QueueDepth:     *queueDepth,
		MaxBatchDocs:   *maxBatchDocs,
		MaxBodyBytes:   *maxBodyBytes,
		MaxLineBytes:   *maxLineBytes,
		RequestTimeout: *requestTimeout,
		Metrics:        reg,
	}
	if faults != nil {
		cfg.Faults = faults
	}
	srv := serve.New(cfg)
	if err := srv.Start(*addr); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "harassd: listening on http://%s\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default signal handling: a second signal kills hard

	fmt.Fprintf(os.Stderr, "harassd: draining (bound %v)...\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(dctx)
	if *metrics {
		fmt.Fprintln(os.Stderr, "metrics snapshot:")
		if werr := reg.WriteJSON(os.Stderr); werr != nil {
			fail("writing metrics: %v", werr)
		}
	}
	if err != nil {
		// The drain bound expired: report exactly what was abandoned so
		// operators can audit the loss, and exit non-zero.
		reqs, docs := srv.Abandoned()
		fail("drain: %v (abandoned %d in-flight requests, %d unscored documents)", err, reqs, docs)
	}
	fmt.Fprintln(os.Stderr, "harassd: drained cleanly")
}
