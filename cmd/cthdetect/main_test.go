package main

// End-to-end acceptance test: build the real binary, stream lines
// through it with -metrics, and reconcile the JSON metrics snapshot on
// stderr against the run summary — processed must equal ok + degraded +
// dead-lettered, and the per-stage counters must match the input.

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"harassrepro/internal/corpus/store"
	"harassrepro/internal/obs"
)

var summaryRe = regexp.MustCompile(`processed=(\d+) succeeded=(\d+) degraded=(\d+) quarantined=(\d+)`)

// TestTokenQuerySyntax pins the -token surface syntax the flag help
// promises: AND on commas, OR on |, -term exclusion, and the error
// cases (pure negation, negation inside an OR group).
func TestTokenQuerySyntax(t *testing.T) {
	for _, spec := range []string{
		"mass",
		"mass,report",
		" mass , report ,",
		"dataset:boards, raid",
		"mass|raid,report",
		"mass,-paste",
	} {
		if q, err := store.ParseQuery(spec); err != nil || q == nil {
			t.Fatalf("ParseQuery(%q) = %v, %v", spec, q, err)
		}
	}
	for _, spec := range []string{"", ",,", "-paste", "mass|-raid"} {
		if _, err := store.ParseQuery(spec); err == nil {
			t.Fatalf("ParseQuery(%q) succeeded, want error", spec)
		}
	}
}

func TestMetricsSnapshotReconcilesWithSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the binary")
	}
	bin := filepath.Join(t.TempDir(), "cthdetect")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cthdetect: %v\n%s", err, out)
	}

	// 6 well-formed lines plus one oversized line that -max-doc-bytes
	// must dead-letter in the validate stage.
	lines := []string{
		"we should mass report his channel",
		"dropping her address 99 cedar lane and email jane.roe@example.com",
		"anyone up for ranked tonight",
		"post his info everywhere, make him regret it",
		"find her on twitter: janeroe and instagram: jane.roe",
		"meet at the usual place",
		strings.Repeat("a", 300),
	}
	const wantDead = 1
	wantProcessed := len(lines)

	cmd := exec.Command(bin, "-rules-only", "-metrics", "-max-doc-bytes", "128")
	cmd.Stdin = strings.NewReader(strings.Join(lines, "\n") + "\n")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("cthdetect failed: %v\nstderr:\n%s", err, stderr.String())
	}

	// Parse the summary line.
	m := summaryRe.FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no summary line in stderr:\n%s", stderr.String())
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	processed, succeeded, degraded, quarantined := atoi(m[1]), atoi(m[2]), atoi(m[3]), atoi(m[4])
	if processed != wantProcessed || quarantined != wantDead {
		t.Fatalf("summary processed=%d quarantined=%d, want %d and %d\nstderr:\n%s",
			processed, quarantined, wantProcessed, wantDead, stderr.String())
	}

	// Parse the JSON snapshot after the marker.
	_, rest, ok := strings.Cut(stderr.String(), "metrics snapshot:\n")
	if !ok {
		t.Fatalf("no metrics snapshot marker in stderr:\n%s", stderr.String())
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(rest), &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v\n%s", err, rest)
	}

	cv := func(name string, labels ...obs.Label) int {
		return int(snap.CounterValue(name, labels...))
	}
	// The acceptance identity: processed = ok + degraded + dead-lettered.
	ok_, deg, quar := cv("pipeline_items_total", obs.L("status", "ok")),
		cv("pipeline_items_total", obs.L("status", "degraded")),
		cv("pipeline_items_total", obs.L("status", "quarantined"))
	if ok_+deg+quar != processed {
		t.Errorf("items_total ok(%d)+degraded(%d)+quarantined(%d) != processed %d", ok_, deg, quar, processed)
	}
	if quar != quarantined || deg != degraded || ok_ != succeeded-degraded {
		t.Errorf("items_total %d/%d/%d disagrees with summary %d/%d/%d",
			ok_, deg, quar, succeeded-degraded, degraded, quarantined)
	}
	// Every line enters validate; only survivors reach annotate.
	for _, c := range []struct {
		name, stage string
		want        int
	}{
		{"pipeline_stage_attempts_total", "validate", wantProcessed},
		{"pipeline_stage_failures_total", "validate", wantDead},
		{"pipeline_stage_attempts_total", "annotate", wantProcessed - wantDead},
		{"pipeline_stage_failures_total", "annotate", 0},
	} {
		if got := cv(c.name, obs.L("stage", c.stage)); got != c.want {
			t.Errorf("%s{stage=%q} = %d, want %d", c.name, c.stage, got, c.want)
		}
	}
	// The PII extractor scanned exactly the annotated lines, and the
	// corpus's address/email/twitter families matched.
	if got := cv("pii_docs_scanned_total"); got != wantProcessed-wantDead {
		t.Errorf("pii_docs_scanned_total = %d, want %d", got, wantProcessed-wantDead)
	}
	for _, family := range []string{"address", "email", "twitter"} {
		if cv("pii_family_matches_total", obs.L("family", family)) == 0 {
			t.Errorf("pii_family_matches_total{family=%q} = 0, want > 0", family)
		}
	}
	// Stdout reports the quarantined line.
	if !strings.Contains(stdout.String(), "QUARANTINED (validate") {
		t.Errorf("stdout lacks the quarantine report:\n%s", stdout.String())
	}
}
