// Command cthdetect scores text for calls to harassment and doxes. Each
// line on stdin is treated as one document; the tool prints the trained
// classifiers' scores, the rule-based taxonomy coding, and whether the
// Figure 4 seed query matches.
//
// Lines are processed on the fault-tolerant streaming runtime: a
// document that panics a stage or fails repeatedly is quarantined to a
// dead-letter record and reported in the final
// processed/succeeded/quarantined summary instead of killing the run.
//
// The classifiers are trained at startup by running the quick-scale
// pipeline over generated corpora (tens of seconds); the taxonomy and
// seed-query columns need no training.
//
// With -metrics, a JSON metrics snapshot (per-stage attempt/retry
// counters, latency histograms, scratch-pool and PII-prefilter
// instruments) is printed to stderr after the summary; -metrics-addr
// additionally serves the live registry at /metrics (Prometheus text
// format) and the net/http/pprof profiling endpoints for the duration
// of the run. -max-doc-bytes rejects oversized lines into the
// dead-letter summary instead of scoring them.
//
// With -store, documents are streamed from a segmented corpus store
// (built by corpusgen -store) instead of stdin — one segment at a time,
// so memory stays bounded; -scan-workers N decodes segments in
// parallel through the store's mmap readers (output order is identical
// at any count). -token restricts the stream to the store's
// inverted-index matches with boolean syntax: comma-separated clauses
// AND, |-separated alternatives within a clause OR, and a -term clause
// excludes matches — e.g. -token "dataset:boards,raid" or
// -token "dox|doxx,-paste".
//
// Usage:
//
//	echo "we should mass report his channel" | cthdetect [-seed N] [-rules-only] [-workers N] [-metrics] [-metrics-addr :9090] [-max-doc-bytes N]
//	cthdetect -store DIR [-scan-workers N] [-token "dox|doxx,-paste"] [-rules-only] ...
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"harassrepro"
	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
	"harassrepro/internal/obs"
	"harassrepro/internal/obs/obshttp"
	"harassrepro/internal/pii"
	"harassrepro/internal/resilience"
)

// row is one stdin line flowing through the streaming runtime.
type row struct {
	Text      string
	HasScores bool
	CTH, Dox  float64
	SeedQuery bool
	Attacks   []string
	PII       []string
}

// metricsSrv is the -metrics-addr endpoint; exit drains it on every
// exit path (fail included) so an in-flight scrape is never hard-reset.
var metricsSrv *obshttp.Server

// exit drains the metrics server, then terminates with code.
func exit(code int) {
	if metricsSrv != nil {
		metricsSrv.CloseTimeout(2 * time.Second) //nolint:errcheck // best-effort drain on exit
	}
	os.Exit(code)
}

// fail prints a one-line diagnostic and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cthdetect: "+format+"\n", args...)
	exit(1)
}

func main() {
	// A stray panic must surface as a one-line diagnostic, not a
	// stack trace.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()

	var (
		seed        = flag.Uint64("seed", 1, "training seed")
		rulesOnly   = flag.Bool("rules-only", false, "skip classifier training; taxonomy and query only")
		models      = flag.String("models", "", "load pretrained classifiers from this directory (see harassrepro -save-models) instead of training")
		explain     = flag.Int("explain", 0, "with -models: print the top-N n-grams driving each CTH score")
		workers     = flag.Int("workers", 0, "streaming worker pool size (0 = GOMAXPROCS)")
		metrics     = flag.Bool("metrics", false, "print a JSON metrics snapshot to stderr after the run")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address during the run")
		maxDocBytes = flag.Int("max-doc-bytes", 0, "dead-letter lines longer than this many bytes (0 = no limit)")
		storeDir    = flag.String("store", "", "stream documents from the segmented corpus store at this directory instead of stdin")
		storeToken  = flag.String("token", "", "with -store: score only inverted-index matches; clauses AND on commas, OR on |, -term excludes")
		scanWorkers = flag.Int("scan-workers", 0, "with -store: segment decode parallelism for full scans (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	if *storeToken != "" && *storeDir == "" {
		fail("-token requires -store")
	}
	if *scanWorkers != 0 && *storeDir == "" {
		fail("-scan-workers requires -store")
	}

	var reg *obs.Registry
	if *metrics || *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	if *metricsAddr != "" {
		srv, err := obshttp.Serve(*metricsAddr, reg)
		if err != nil {
			fail("metrics server: %v", err)
		}
		metricsSrv = srv
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr())
	}

	type scorer interface {
		ScoreCTH(string) float64
		ScoreDox(string) float64
	}
	var sc scorer
	var det *harassrepro.Detector
	switch {
	case *rulesOnly:
	case *models != "":
		d, err := harassrepro.LoadDetector(*models)
		if err != nil {
			fail("%v", err)
		}
		det = d
		sc = d
		fmt.Fprintf(os.Stderr, "loaded classifiers from %s\n", *models)
	default:
		fmt.Fprintln(os.Stderr, "training filtering classifiers (quick scale)...")
		study, err := harassrepro.Run(harassrepro.QuickConfig(*seed))
		if err != nil {
			fail("%v", err)
		}
		sc = study
		fmt.Fprintln(os.Stderr, "ready")
	}

	// Stage pipeline: classifier scoring is required (quarantine on
	// permanent failure); the rule-based annotations degrade instead.
	// The public Detector's sequential scoring advances a shared
	// span-sampling stream, so the scoring stage is serialised for it;
	// short CLI lines never consume that stream, keeping output
	// deterministic either way.
	var scoreMu chMutex
	if det != nil {
		scoreMu = make(chMutex, 1)
	}
	ext := pii.NewExtractor()
	if reg != nil {
		ext.SetMetrics(reg)
	}
	var stages []resilience.Stage[row]
	if *maxDocBytes > 0 {
		limit := *maxDocBytes
		stages = append(stages, resilience.Stage[row]{
			Name: "validate",
			Fn: func(_ context.Context, _ int, r *row) error {
				if len(r.Text) > limit {
					return resilience.Permanent(fmt.Errorf("document is %d bytes, limit %d", len(r.Text), limit))
				}
				return nil
			},
		})
	}
	if sc != nil {
		stages = append(stages, resilience.Stage[row]{
			Name:      "score",
			Transient: true,
			Fn: func(_ context.Context, _ int, r *row) error {
				if strings.TrimSpace(r.Text) == "" {
					return resilience.Permanent(fmt.Errorf("blank document"))
				}
				scoreMu.lock()
				defer scoreMu.unlock()
				r.CTH = sc.ScoreCTH(r.Text)
				r.Dox = sc.ScoreDox(r.Text)
				r.HasScores = true
				return nil
			},
		})
	}
	stages = append(stages, resilience.Stage[row]{
		Name:       "annotate",
		Transient:  true,
		Degradable: true,
		Fn: func(_ context.Context, _ int, r *row) error {
			r.SeedQuery = harassrepro.MatchesSeedQuery(r.Text)
			r.Attacks = harassrepro.AttackParents(r.Text)
			var types []string
			for _, t := range ext.Types(r.Text) {
				types = append(types, string(t))
			}
			r.PII = types
			return nil
		},
	})
	runner := resilience.NewRunner(resilience.Config[row]{
		Workers: *workers,
		Seed:    *seed,
		Ordered: true,
		Describe: func(r *row) string {
			if len(r.Text) > 40 {
				return r.Text[:40] + "..."
			}
			return r.Text
		},
		Metrics: reg,
	}, stages...)

	in := make(chan row)
	scanErr := make(chan error, 1)
	go func() {
		defer close(in)
		if *storeDir != "" {
			scanErr <- feedFromStore(*storeDir, *storeToken, *scanWorkers, in)
			return
		}
		scan := bufio.NewScanner(os.Stdin)
		scan.Buffer(make([]byte, 1<<20), 1<<20)
		for scan.Scan() {
			if line := scan.Text(); strings.TrimSpace(line) != "" {
				in <- row{Text: line}
			}
		}
		scanErr <- scan.Err()
	}()

	var results []resilience.Result[row]
	for res := range runner.Process(context.Background(), in) {
		results = append(results, res)
		r := res.Item
		if res.Status == resilience.StatusQuarantined {
			fmt.Printf("QUARANTINED (%s after %d attempts): %v\n",
				res.Dead.Stage, res.Dead.Attempts, res.Dead.Err)
			continue
		}
		if r.HasScores {
			fmt.Printf("cth=%.3f dox=%.3f ", r.CTH, r.Dox)
		}
		fmt.Printf("seed-query=%v", r.SeedQuery)
		if len(r.Attacks) > 0 {
			fmt.Printf(" attacks=%v", r.Attacks)
		}
		if len(r.PII) > 0 {
			fmt.Printf(" pii=%v", r.PII)
		}
		if len(res.Degraded) > 0 {
			fmt.Printf(" degraded=%v", res.Degraded)
		}
		fmt.Println()
		if det != nil && *explain > 0 {
			for _, w := range det.ExplainCTH(r.Text, *explain) {
				fmt.Printf("    %+.3f  %s\n", w.Weight, w.NGram)
			}
		}
	}

	sum := resilience.Summarize(results)
	fmt.Fprintln(os.Stderr, sum)
	for _, dl := range sum.DeadLetters {
		fmt.Fprintf(os.Stderr, "  dead-letter %s\n", dl)
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "metrics snapshot:")
		if err := reg.WriteJSON(os.Stderr); err != nil {
			fail("writing metrics: %v", err)
		}
	}
	if err := <-scanErr; err != nil {
		fail("reading input: %v", err)
	}
	exit(0)
}

// feedFromStore streams document texts out of a segmented corpus store
// — the whole store in commit order (segments decoded in parallel when
// scanWorkers allows; delivery order is store order regardless), or
// just the documents matching the boolean token query (posting bitmaps
// combined per segment, see store.ParseQuery). Documents are decoded
// one segment at a time, so memory stays bounded regardless of store
// size.
func feedFromStore(dir, token string, scanWorkers int, in chan<- row) error {
	s, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer s.Close()
	for _, torn := range s.Recovery().Torn {
		fmt.Fprintf(os.Stderr, "cthdetect: store recovered torn segment %s (%d docs salvaged)\n",
			torn.Name, torn.SalvagedDocs)
	}
	emit := func(d *corpus.Document, _ store.DocRef) error {
		if strings.TrimSpace(d.Text) != "" {
			in <- row{Text: d.Text}
		}
		return nil
	}
	if strings.TrimSpace(token) != "" {
		q, err := store.ParseQuery(token)
		if err != nil {
			return err
		}
		return s.LookupQueryDocs(q, emit)
	}
	return s.ScanParallel(scanWorkers, emit)
}

// chMutex is a channel-based optional mutex: the zero value (nil) is a
// no-op, a 1-buffered channel is a lock.
type chMutex chan struct{}

func (m chMutex) lock() {
	if m != nil {
		m <- struct{}{}
	}
}
func (m chMutex) unlock() {
	if m != nil {
		<-m
	}
}
