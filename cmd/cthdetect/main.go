// Command cthdetect scores text for calls to harassment and doxes. Each
// line on stdin is treated as one document; the tool prints the trained
// classifiers' scores, the rule-based taxonomy coding, and whether the
// Figure 4 seed query matches.
//
// The classifiers are trained at startup by running the quick-scale
// pipeline over generated corpora (tens of seconds); the taxonomy and
// seed-query columns need no training.
//
// Usage:
//
//	echo "we should mass report his channel" | cthdetect [-seed N] [-rules-only]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"harassrepro"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "training seed")
		rulesOnly = flag.Bool("rules-only", false, "skip classifier training; taxonomy and query only")
		models    = flag.String("models", "", "load pretrained classifiers from this directory (see harassrepro -save-models) instead of training")
		explain   = flag.Int("explain", 0, "with -models: print the top-N n-grams driving each CTH score")
	)
	flag.Parse()

	type scorer interface {
		ScoreCTH(string) float64
		ScoreDox(string) float64
	}
	var sc scorer
	var det *harassrepro.Detector
	switch {
	case *rulesOnly:
	case *models != "":
		d, err := harassrepro.LoadDetector(*models)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cthdetect: %v\n", err)
			os.Exit(1)
		}
		det = d
		sc = d
		fmt.Fprintf(os.Stderr, "loaded classifiers from %s\n", *models)
	default:
		fmt.Fprintln(os.Stderr, "training filtering classifiers (quick scale)...")
		study, err := harassrepro.Run(harassrepro.QuickConfig(*seed))
		if err != nil {
			fmt.Fprintf(os.Stderr, "cthdetect: %v\n", err)
			os.Exit(1)
		}
		sc = study
		fmt.Fprintln(os.Stderr, "ready")
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for in.Scan() {
		line := in.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if sc != nil {
			fmt.Printf("cth=%.3f dox=%.3f ", sc.ScoreCTH(line), sc.ScoreDox(line))
		}
		fmt.Printf("seed-query=%v", harassrepro.MatchesSeedQuery(line))
		if attacks := harassrepro.AttackParents(line); len(attacks) > 0 {
			fmt.Printf(" attacks=%v", attacks)
		}
		if piiTypes := harassrepro.PIITypes(line); len(piiTypes) > 0 {
			fmt.Printf(" pii=%v", piiTypes)
		}
		fmt.Println()
		if det != nil && *explain > 0 {
			for _, w := range det.ExplainCTH(line, *explain) {
				fmt.Printf("    %+.3f  %s\n", w.Weight, w.NGram)
			}
		}
	}
	if err := in.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "cthdetect: %v\n", err)
		os.Exit(1)
	}
}
