// Command benchpipeline measures what the artifact-graph refactor buys:
// it times `-scale quick -experiment all` twice — once with derived
// artifacts recomputed per caller (the pre-graph monolith's behavior,
// via the graph's NoMemo mode) and once memoized — and writes wall
// times, per-stage cache-hit counts and speedups to BENCH_pipeline.json.
// The committed pre-refactor baseline (measured on the monolith itself,
// before the incremental trainer and pooled vectorizer landed) is
// embedded for the cross-commit comparison.
//
// Usage:
//
//	benchpipeline [-seed 1] [-reps 3] [-out BENCH_pipeline.json]
//
// Each configuration runs -reps times and the fastest pass is recorded
// (best-of-N damps scheduler noise on small containers).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
)

// baseline is the pre-refactor monolith's timing at quick scale,
// seed 1, on the reference machine (sequential Run + sequential
// `-experiment all`), measured at the commit named below.
var baseline = timing{
	RunSeconds:         5.7,
	ExperimentsSeconds: 2.8,
	TotalSeconds:       8.5,
}

const baselineCommit = "7c7560c"

type timing struct {
	RunSeconds         float64 `json:"run_seconds"`
	ExperimentsSeconds float64 `json:"experiments_seconds"`
	TotalSeconds       float64 `json:"total_seconds"`
}

type stageStat struct {
	Name     string `json:"name"`
	Computes uint64 `json:"computes"`
	Hits     uint64 `json:"hits"`
}

type benchReport struct {
	Bench             string      `json:"bench"`
	Seed              uint64      `json:"seed"`
	Scale             string      `json:"scale"`
	BaselineCommit    string      `json:"baseline_commit"`
	Baseline          timing      `json:"baseline"`
	NoMemo            timing      `json:"nomemo"`
	Memoized          timing      `json:"memoized"`
	Stages            []stageStat `json:"stages"`
	SpeedupVsBaseline float64     `json:"speedup_vs_baseline"`
	SpeedupVsNoMemo   float64     `json:"speedup_vs_nomemo"`
}

// measure runs the pipeline and all experiments under the given
// options, returning the split wall times.
func measure(opts core.Options, seed uint64, workers int) (timing, *core.Pipeline, error) {
	start := time.Now()
	p, err := core.RunWithOptions(core.QuickConfig(seed), opts)
	if err != nil {
		return timing{}, nil, err
	}
	runDone := time.Now()
	results, err := p.RunExperiments(context.Background(), nil, workers)
	if err != nil {
		return timing{}, nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return timing{}, nil, fmt.Errorf("experiment %s: %w", r.ID, r.Err)
		}
	}
	end := time.Now()
	return timing{
		RunSeconds:         runDone.Sub(start).Seconds(),
		ExperimentsSeconds: end.Sub(runDone).Seconds(),
		TotalSeconds:       end.Sub(start).Seconds(),
	}, p, nil
}

// measureBest repeats measure and keeps the fastest total (and the
// pipeline from that pass, for stage stats).
func measureBest(opts core.Options, seed uint64, workers, reps int) (timing, *core.Pipeline, error) {
	var best timing
	var bestP *core.Pipeline
	for i := 0; i < reps; i++ {
		tm, p, err := measure(opts, seed, workers)
		if err != nil {
			return timing{}, nil, err
		}
		if bestP == nil || tm.TotalSeconds < best.TotalSeconds {
			best, bestP = tm, p
		}
	}
	return best, bestP, nil
}

func main() {
	var (
		seed = flag.Uint64("seed", 1, "pipeline seed")
		reps = flag.Int("reps", 3, "passes per configuration; fastest is recorded")
		out  = flag.String("out", "BENCH_pipeline.json", "output JSON path")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchpipeline: "+format+"\n", args...)
		os.Exit(1)
	}

	// Recompute-per-caller pass: the monolith's shape (sequential
	// experiments, derived artifacts rebuilt on every use).
	fmt.Fprintf(os.Stderr, "pass 1/2: recompute-per-caller (monolith emulation), best of %d...\n", *reps)
	noMemo, _, err := measureBest(core.Options{Workers: 1, NoMemo: true}, *seed, 1, *reps)
	if err != nil {
		fail("nomemo pass: %v", err)
	}

	// Memoized graph pass, as `harassrepro -scale quick -experiment
	// all` runs it.
	fmt.Fprintf(os.Stderr, "pass 2/2: memoized artifact graph, best of %d...\n", *reps)
	reg := obs.NewRegistry()
	memo, p, err := measureBest(core.Options{Metrics: reg}, *seed, 0, *reps)
	if err != nil {
		fail("memoized pass: %v", err)
	}

	rep := benchReport{
		Bench:             "harassrepro -scale quick -experiment all",
		Seed:              *seed,
		Scale:             "quick",
		BaselineCommit:    baselineCommit,
		Baseline:          baseline,
		NoMemo:            noMemo,
		Memoized:          memo,
		SpeedupVsBaseline: baseline.TotalSeconds / memo.TotalSeconds,
		SpeedupVsNoMemo:   noMemo.TotalSeconds / memo.TotalSeconds,
	}
	for _, st := range p.Graph().Stats() {
		rep.Stages = append(rep.Stages, stageStat{Name: st.Name, Computes: st.Computes, Hits: st.Hits})
	}

	f, err := os.Create(*out)
	if err != nil {
		fail("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fail("encoding: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("%v", err)
	}

	fmt.Fprintf(os.Stderr, "baseline (commit %s): %.2fs   nomemo: %.2fs   memoized: %.2fs\n",
		baselineCommit, baseline.TotalSeconds, noMemo.TotalSeconds, memo.TotalSeconds)
	fmt.Fprintf(os.Stderr, "speedup vs baseline: %.2fx   vs recompute-per-caller: %.2fx\n",
		rep.SpeedupVsBaseline, rep.SpeedupVsNoMemo)
	if rep.SpeedupVsBaseline < 1.5 {
		fmt.Fprintf(os.Stderr, "WARNING: speedup vs baseline below 1.5x target\n")
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
