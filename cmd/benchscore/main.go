// Command benchscore measures the scoring hot path end to end and
// writes BENCH_scoring.json: ns/doc, bytes/op, allocs/op and docs/sec
// for tokenization, featurization, PII extraction and the streaming
// ScoreStream path, next to the pre-optimisation baseline those numbers
// are compared against.
//
// Run via scripts/bench.sh. The baseline figures were measured on this
// machine at the pre-optimisation tree (commit 28507bb, the seed the
// speedup claims are made against) with the same workloads.
//
// Two flags support the CI gate in scripts/check.sh:
//
//	-pii-only   skip pipeline training and measure only the PII
//	            entries (fast enough to run on every check)
//	-gate-pii   exit non-zero if pii/dense-dox falls below 3x the
//	            pre-engine figure (58581.56 ns/op, the regex-cascade
//	            number the one-pass engine replaced)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	harassrepro "harassrepro"
	"harassrepro/internal/core"
	"harassrepro/internal/features"
	"harassrepro/internal/obs"
	"harassrepro/internal/pii"
	"harassrepro/internal/tokenize"
)

const (
	shortChat = "we need to mass-report his twitter and youtube, spread the word"
	cleanChat = "anyone up for ranked tonight, patch notes are out, new map is wild"
	denseDox  = "John lives at 123 Maple Street, Fairview, OH, 44120, call (212) 555-0142, fb: john.t.99, email j@example.org, card 4111 1111 1111 1111, ssn 219-09-9999"
)

// piiGateBaselineNs is the pii/dense-dox figure of the regex-cascade
// path the one-pass engine replaced; -gate-pii fails the run if the
// current measurement is less than piiGateMinSpeedup times faster.
const (
	piiGateBaselineNs = 58581.56
	piiGateMinSpeedup = 3.0
)

// metrics is one measured workload.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	NsPerDoc    float64 `json:"ns_per_doc"`
	DocsPerSec  float64 `json:"docs_per_sec"`
}

// entry pairs a workload's current measurement with its committed
// pre-optimisation baseline (when one was measured).
type entry struct {
	Name       string   `json:"name"`
	DocsPerOp  int      `json:"docs_per_op"`
	GOMAXPROCS int      `json:"gomaxprocs,omitempty"` // only when it differs from the report's
	Baseline   *metrics `json:"baseline,omitempty"`
	Current    metrics  `json:"current"`
	Speedup    float64  `json:"speedup_vs_baseline,omitempty"`
}

type report struct {
	Description    string  `json:"description"`
	BaselineCommit string  `json:"baseline_commit"`
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Entries        []entry `json:"entries"`
}

// baselineMetrics fills the derived fields from raw ns/op numbers.
func baselineMetrics(nsPerOp float64, bytesPerOp, allocsPerOp int64, docsPerOp int) *metrics {
	m := finish(metrics{NsPerOp: nsPerOp, BytesPerOp: bytesPerOp, AllocsPerOp: allocsPerOp}, docsPerOp)
	return &m
}

func finish(m metrics, docsPerOp int) metrics {
	m.NsPerDoc = m.NsPerOp / float64(docsPerOp)
	if m.NsPerDoc > 0 {
		m.DocsPerSec = 1e9 / m.NsPerDoc
	}
	return m
}

// measure runs fn under the testing benchmark driver.
func measure(name string, docsPerOp int, baseline *metrics, fn func(b *testing.B)) entry {
	fmt.Fprintf(os.Stderr, "benchscore: measuring %s...\n", name)
	r := testing.Benchmark(fn)
	cur := finish(metrics{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}, docsPerOp)
	e := entry{Name: name, DocsPerOp: docsPerOp, Baseline: baseline, Current: cur}
	if baseline != nil && cur.NsPerOp > 0 {
		e.Speedup = baseline.NsPerOp / cur.NsPerOp
	}
	return e
}

// piiEntries measures the PII extraction workloads on the pooled
// zero-allocation session path (the same API the scoring workers hit).
// Baselines are the pre-prefilter regex cascade at 28507bb, measured
// with identical inputs on this machine.
func piiEntries() []entry {
	session := pii.NewSession()
	session.Extract(denseDox) // warm arena, DFA cache, scratch
	entries := []entry{
		// Baseline: unconditional 12-family regex cascade on a clean chat
		// message at 28507bb (43510 ns/op; the cascade allocated nothing
		// on documents with no matches).
		measure("pii/clean-chat", 1, baselineMetrics(43510, 0, 0, 1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(session.Extract(cleanChat)) != 0 {
					b.Fatal("clean chat produced spans")
				}
			}
		}),
		// Baseline: BenchmarkExtractPII at 28507bb (91274 ns/op, 40
		// allocs/op) — the dense dox paid for every regex family.
		measure("pii/dense-dox", 1, baselineMetrics(91274, 3112, 40, 1), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(session.Extract(denseDox)) == 0 {
					b.Fatal("dense dox produced no spans")
				}
			}
		}),
	}
	// Parallel scaling: the same dense dox across 4 procs with one
	// session per goroutine — the engine shares only immutable compiled
	// state, so throughput should scale with procs.
	prev := runtime.GOMAXPROCS(4)
	par := measure("pii/dense-dox-p4", 1, nil, func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			s := pii.NewSession()
			s.Extract(denseDox)
			for pb.Next() {
				if len(s.Extract(denseDox)) == 0 {
					b.Fatal("dense dox produced no spans")
				}
			}
		})
	})
	runtime.GOMAXPROCS(prev)
	par.GOMAXPROCS = 4
	entries = append(entries, par)
	return entries
}

// gatePII enforces the dense-dox floor: the one-pass engine must stay
// at least piiGateMinSpeedup faster than the regex cascade it replaced.
func gatePII(entries []entry) error {
	for _, e := range entries {
		if e.Name != "pii/dense-dox" {
			continue
		}
		limit := piiGateBaselineNs / piiGateMinSpeedup
		if e.Current.NsPerOp > limit {
			return fmt.Errorf("pii/dense-dox = %.0f ns/op, gate requires <= %.0f ns/op (%.1fx vs %.0f ns/op pre-engine)",
				e.Current.NsPerOp, limit, piiGateMinSpeedup, piiGateBaselineNs)
		}
		if e.Current.AllocsPerOp != 0 {
			return fmt.Errorf("pii/dense-dox = %d allocs/op, gate requires 0", e.Current.AllocsPerOp)
		}
		fmt.Fprintf(os.Stderr, "benchscore: pii gate ok: %.0f ns/op (%.1fx vs pre-engine), %d allocs/op\n",
			e.Current.NsPerOp, piiGateBaselineNs/e.Current.NsPerOp, e.Current.AllocsPerOp)
		return nil
	}
	return fmt.Errorf("pii gate: no pii/dense-dox entry measured")
}

func main() {
	out := flag.String("out", "BENCH_scoring.json", "output file (empty: don't write)")
	piiOnly := flag.Bool("pii-only", false, "measure only the PII entries (no pipeline training)")
	gate := flag.Bool("gate-pii", false, "fail if pii/dense-dox regresses below the committed floor")
	flag.Parse()

	// Serial entries are comparable across runs only at a fixed proc
	// count; the parallel entry overrides its own.
	runtime.GOMAXPROCS(1)

	if *piiOnly {
		entries := piiEntries()
		printEntries(entries)
		if *gate {
			if err := gatePII(entries); err != nil {
				fmt.Fprintln(os.Stderr, "benchscore:", err)
				os.Exit(1)
			}
		}
		return
	}

	fmt.Fprintln(os.Stderr, "benchscore: training quick-scale pipeline (one-time setup)...")
	study, err := harassrepro.Run(harassrepro.QuickConfig(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscore:", err)
		os.Exit(1)
	}
	dir, err := os.MkdirTemp("", "benchscore")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscore:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	if err := study.SaveModels(dir); err != nil {
		fmt.Fprintln(os.Stderr, "benchscore:", err)
		os.Exit(1)
	}
	det, err := harassrepro.LoadDetector(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscore:", err)
		os.Exit(1)
	}
	coreDet, err := core.LoadDetector(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchscore:", err)
		os.Exit(1)
	}

	docs := streamDocs(256)
	coreDocs := make([]core.StreamDoc, len(docs))
	for i, d := range docs {
		coreDocs[i] = core.StreamDoc{ID: d.ID, Text: d.Text}
	}
	hasher := features.NewHasher(features.HasherConfig{Buckets: 1 << 18, Bigrams: true})
	toks := append([]string(nil), tokenize.BasicTokenize(shortChat)...)

	rep := report{
		Description:    "Scoring hot-path benchmarks: steady-state tokenize/featurize/pii plus the end-to-end streaming ScoreStream workload (256 mixed documents), with and without obs metrics attached. PII entries run on the pooled zero-allocation session API of the one-pass engine (Teddy prefilter + lazy DFA + exact backtracker), the same path the scoring workers use; pii/dense-dox-p4 is the identical workload across GOMAXPROCS=4 with one session per goroutine. Baselines were measured at the pre-optimisation tree with identical workloads on this machine; -1 marks baseline fields that were not recorded. The score-stream-metrics entry's baseline is the uninstrumented score-stream run from the same invocation, so its speedup_vs_baseline is the direct instrumentation-overhead ratio (>= 0.98 means <= 2% overhead).",
		BaselineCommit: "28507bb",
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Entries: []entry{
			// Baseline: per-call tokenizer at 28507bb (split/alloc per doc).
			measure("tokenize/short-chat", 1, baselineMetrics(1517, 608, 19, 1), func(b *testing.B) {
				var bt tokenize.BasicTokenizer
				bt.Tokenize(shortChat)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bt.Tokenize(shortChat)
				}
			}),
			// Baseline: map-building vectorizer at 28507bb.
			measure("featurize/short-chat", 1, baselineMetrics(4643, 1328, 9, 1), func(b *testing.B) {
				f := hasher.NewFeaturizer()
				f.Vectorize(toks)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					f.Vectorize(toks)
				}
			}),
		},
	}
	rep.Entries = append(rep.Entries, piiEntries()...)
	rep.Entries = append(rep.Entries,
		// Baseline: BenchmarkScoreStreamSequential at 28507bb (only
		// ns/op was recorded; -1 marks fields not measured then).
		measure("score-sequential/256-docs", 256, baselineMetrics(12669616, -1, -1, 256), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, d := range docs {
					_ = det.ScoreCTH(d.Text)
					_ = det.ScoreDox(d.Text)
				}
			}
		}),
	)

	// Baseline: BenchmarkScoreStream at 28507bb — the headline
	// end-to-end number the earlier optimisation PR's >=3x claim is
	// made against.
	plain := measure("score-stream/256-docs", 256, baselineMetrics(14237979, 3751296, 84912, 256), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sum, err := det.ScoreStream(context.Background(), docs, harassrepro.StreamOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Succeeded != len(docs) {
				b.Fatalf("summary = %+v", sum)
			}
		}
	})
	rep.Entries = append(rep.Entries, plain)

	// Same workload with an obs.Registry attached: full counter set plus
	// the 1-in-8 sampled phase timings. Its baseline is the uninstrumented
	// run just measured, so speedup_vs_baseline reads as the overhead
	// ratio and must stay >= 0.98 (<= 2% instrumentation cost).
	plainCur := plain.Current
	reg := obs.NewRegistry()
	rep.Entries = append(rep.Entries, measure("score-stream-metrics/256-docs", 256, &plainCur, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sum, err := coreDet.ScoreBatch(context.Background(), coreDocs, core.StreamOptions{Seed: 1, Metrics: reg})
			if err != nil {
				b.Fatal(err)
			}
			if sum.Succeeded != len(coreDocs) {
				b.Fatalf("summary = %+v", sum)
			}
		}
	}))

	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchscore:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchscore:", err)
			os.Exit(1)
		}
	}
	printEntries(rep.Entries)
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchscore: wrote %s\n", *out)
	}
	if *gate {
		if err := gatePII(rep.Entries); err != nil {
			fmt.Fprintln(os.Stderr, "benchscore:", err)
			os.Exit(1)
		}
	}
}

func printEntries(entries []entry) {
	for _, e := range entries {
		line := fmt.Sprintf("%-28s %12.0f ns/op %8d B/op %6d allocs/op %14.0f docs/sec",
			e.Name, e.Current.NsPerOp, e.Current.BytesPerOp, e.Current.AllocsPerOp, e.Current.DocsPerSec)
		if e.Speedup > 0 {
			line += fmt.Sprintf("   %.2fx vs baseline", e.Speedup)
		}
		fmt.Println(line)
	}
}

func streamDocs(n int) []harassrepro.StreamDocument {
	texts := []string{
		"we need to mass-report his twitter and youtube, spread the word",
		"anyone up for ranked tonight, patch notes are out",
		"DOX: Jane Roe / Address: 99 Cedar Lane, Riverton, TX, 75001 / Phone: (212) 555-0188 / fb: jane.roe.42",
		"the new season drops friday, here is the patch rundown everyone asked for",
		"everyone flood her mentions until she deletes the channel",
	}
	docs := make([]harassrepro.StreamDocument, n)
	for i := range docs {
		docs[i] = harassrepro.StreamDocument{ID: fmt.Sprintf("b%04d", i), Text: texts[i%len(texts)]}
	}
	return docs
}
