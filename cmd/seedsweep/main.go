// Command seedsweep runs the reproduction pipeline across multiple seeds
// and reports the mean, standard deviation and per-seed values of the
// paper's headline metrics — quantifying how stable each finding is
// under corpus resampling, which the paper (with one observed dataset)
// could not measure.
//
// Seeds run concurrently on a bounded pool (-workers); each seed is an
// independent pipeline run, so the report is identical at any worker
// count and rows stay in seed order.
//
// Usage:
//
//	seedsweep [-n 5] [-scale quick|default] [-start-seed 1] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"harassrepro/internal/core"
)

func main() {
	var (
		n         = flag.Int("n", 5, "number of seeds to sweep")
		scale     = flag.String("scale", "quick", "corpus scale: quick or default")
		startSeed = flag.Uint64("start-seed", 1, "first seed; subsequent runs use start-seed+1, +2, ...")
		workers   = flag.Int("workers", 0, "concurrent seed runs (0 = GOMAXPROCS)")
	)
	flag.Parse()

	var base core.Config
	switch *scale {
	case "quick":
		base = core.QuickConfig(0)
	case "default":
		base = core.DefaultConfig(0)
	default:
		fmt.Fprintf(os.Stderr, "seedsweep: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	seeds := make([]uint64, *n)
	for i := range seeds {
		seeds[i] = *startSeed + uint64(i)
	}

	fmt.Fprintf(os.Stderr, "sweeping %d seeds at %s scale...\n", *n, *scale)
	start := time.Now()
	metrics, err := core.RunSweepParallel(context.Background(), base, seeds, *workers)
	if err != nil {
		// Failed seeds are reported together; surviving seeds still render.
		fmt.Fprintf(os.Stderr, "seedsweep: %v\n", err)
	}
	if len(metrics) > 0 {
		fmt.Fprintf(os.Stderr, "done in %v\n\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(core.RenderSweep(metrics))
	}
	if err != nil {
		os.Exit(1)
	}
}
