// Command piiscan extracts PII from text on stdin with the paper's 12
// precision-tuned extractors (§5.6) and reports the target's harm-risk
// profile (Table 7) and likely gender (pronoun heuristic).
//
// By default the whole of stdin is one document. With -stream, each
// line is one document, processed on the fault-tolerant streaming
// runtime: a document that panics or repeatedly fails a stage is
// quarantined and counted in the final
// processed/succeeded/quarantined summary instead of aborting the run.
//
// Usage:
//
//	piiscan [-json] < document.txt
//	piiscan -stream [-json] [-workers N] < documents.txt
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"harassrepro"
	"harassrepro/internal/resilience"
)

// fail prints a one-line diagnostic and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "piiscan: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	// A stray panic must surface as a one-line diagnostic, not a
	// stack trace.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()

	var (
		jsonOut = flag.Bool("json", false, "emit JSON instead of text")
		stream  = flag.Bool("stream", false, "treat each stdin line as one document (fault-tolerant streaming)")
		workers = flag.Int("workers", 0, "with -stream: worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *stream {
		runStream(*jsonOut, *workers)
		return
	}

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail("reading stdin: %v", err)
	}
	report(string(data), *jsonOut)
}

// scan is one document's extracted profile.
type scan struct {
	Text   string                 `json:"-"`
	PII    []harassrepro.PIIMatch `json:"pii"`
	Risks  []string               `json:"harm_risks"`
	Gender string                 `json:"likely_target_gender"`
}

func analyze(s *scan) {
	s.PII = harassrepro.ExtractPII(s.Text)
	s.Risks = harassrepro.HarmRisks(s.Text)
	s.Gender = harassrepro.InferTargetGender(s.Text)
}

// report handles the single-document mode.
func report(text string, jsonOut bool) {
	s := scan{Text: text}
	analyze(&s)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fail("%v", err)
		}
		return
	}
	printScan(&s)
}

func printScan(s *scan) {
	if len(s.PII) == 0 {
		fmt.Println("no PII detected")
	} else {
		fmt.Printf("PII (%d):\n", len(s.PII))
		for _, m := range s.PII {
			fmt.Printf("  %-10s %s\n", m.Type, m.Value)
		}
	}
	if len(s.Risks) > 0 {
		fmt.Printf("harm risks: %v\n", s.Risks)
	}
	fmt.Printf("likely target gender: %s\n", s.Gender)
}

// runStream processes one document per line on the resilience runtime.
func runStream(jsonOut bool, workers int) {
	runner := resilience.NewRunner(resilience.Config[scan]{
		Workers: workers,
		Ordered: true,
		Describe: func(s *scan) string {
			if len(s.Text) > 40 {
				return s.Text[:40] + "..."
			}
			return s.Text
		},
	}, resilience.Stage[scan]{
		Name:      "extract",
		Transient: true,
		Fn: func(_ context.Context, _ int, s *scan) error {
			analyze(s)
			return nil
		},
	})

	in := make(chan scan)
	scanErr := make(chan error, 1)
	go func() {
		defer close(in)
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if line := sc.Text(); strings.TrimSpace(line) != "" {
				in <- scan{Text: line}
			}
		}
		scanErr <- sc.Err()
	}()

	enc := json.NewEncoder(os.Stdout)
	var results []resilience.Result[scan]
	for res := range runner.Process(context.Background(), in) {
		results = append(results, res)
		if res.Status == resilience.StatusQuarantined {
			fmt.Printf("QUARANTINED (%s after %d attempts): %v\n",
				res.Dead.Stage, res.Dead.Attempts, res.Dead.Err)
			continue
		}
		if jsonOut {
			if err := enc.Encode(res.Item); err != nil {
				fail("%v", err)
			}
			continue
		}
		s := res.Item
		var types []string
		for _, m := range s.PII {
			types = append(types, m.Type)
		}
		fmt.Printf("pii=%v risks=%v gender=%s\n", types, s.Risks, s.Gender)
	}

	sum := resilience.Summarize(results)
	fmt.Fprintln(os.Stderr, sum)
	for _, dl := range sum.DeadLetters {
		fmt.Fprintf(os.Stderr, "  dead-letter %s\n", dl)
	}
	if err := <-scanErr; err != nil {
		fail("reading stdin: %v", err)
	}
}
