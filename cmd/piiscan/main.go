// Command piiscan extracts PII from text on stdin with the paper's 12
// precision-tuned extractors (§5.6) and reports the target's harm-risk
// profile (Table 7) and likely gender (pronoun heuristic).
//
// Usage:
//
//	piiscan [-json] < document.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"harassrepro"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit JSON instead of text")
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "piiscan: %v\n", err)
		os.Exit(1)
	}
	text := string(data)

	matches := harassrepro.ExtractPII(text)
	risks := harassrepro.HarmRisks(text)
	gender := harassrepro.InferTargetGender(text)

	if *jsonOut {
		out := struct {
			PII    []harassrepro.PIIMatch `json:"pii"`
			Risks  []string               `json:"harm_risks"`
			Gender string                 `json:"likely_target_gender"`
		}{matches, risks, gender}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "piiscan: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if len(matches) == 0 {
		fmt.Println("no PII detected")
	} else {
		fmt.Printf("PII (%d):\n", len(matches))
		for _, m := range matches {
			fmt.Printf("  %-10s %s\n", m.Type, m.Value)
		}
	}
	if len(risks) > 0 {
		fmt.Printf("harm risks: %v\n", risks)
	}
	fmt.Printf("likely target gender: %s\n", gender)
}
