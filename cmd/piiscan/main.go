// Command piiscan extracts PII from text on stdin with the paper's 12
// precision-tuned extractors (§5.6) and reports the target's harm-risk
// profile (Table 7) and likely gender (pronoun heuristic).
//
// By default the whole of stdin is one document. With -stream, each
// line is one document, processed on the fault-tolerant streaming
// runtime: a document that panics or repeatedly fails a stage is
// quarantined and counted in the final
// processed/succeeded/quarantined summary instead of aborting the run.
//
// With -metrics, a JSON metrics snapshot (PII prefilter pass/reject
// counts, per-family regex activations, and — in stream mode — the
// runner's per-stage counters) is printed to stderr after the run;
// -metrics-addr serves the live registry at /metrics plus the
// net/http/pprof endpoints while the scan runs.
//
// With -store, documents are streamed from a segmented corpus store
// (built by corpusgen -store) instead of stdin, one segment at a time;
// -scan-workers N decodes segments in parallel through the store's
// mmap readers (output order is identical at any count). -token
// restricts the stream to the store's inverted-index matches with
// boolean syntax: comma-separated clauses AND, |-separated
// alternatives OR, and a -term clause excludes — so
// -token "paste,email|phone" scans paste documents with an email or a
// phone number. -store implies -stream.
//
// Usage:
//
//	piiscan [-json] [-metrics] < document.txt
//	piiscan -stream [-json] [-workers N] [-metrics] [-metrics-addr :9090] < documents.txt
//	piiscan -store DIR [-scan-workers N] [-token "paste,email|phone"] [-json] [-workers N]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"harassrepro"
	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
	"harassrepro/internal/gender"
	"harassrepro/internal/harm"
	"harassrepro/internal/obs"
	"harassrepro/internal/obs/obshttp"
	"harassrepro/internal/pii"
	"harassrepro/internal/resilience"
)

// metricsSrv is the -metrics-addr endpoint; exit drains it on every
// exit path (fail included) so an in-flight scrape is never hard-reset.
var metricsSrv *obshttp.Server

// exit drains the metrics server, then terminates with code.
func exit(code int) {
	if metricsSrv != nil {
		metricsSrv.CloseTimeout(2 * time.Second) //nolint:errcheck // best-effort drain on exit
	}
	os.Exit(code)
}

// fail prints a one-line diagnostic and exits non-zero.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "piiscan: "+format+"\n", args...)
	exit(1)
}

func main() {
	// A stray panic must surface as a one-line diagnostic, not a
	// stack trace.
	defer func() {
		if r := recover(); r != nil {
			fail("internal error: %v", r)
		}
	}()

	var (
		jsonOut     = flag.Bool("json", false, "emit JSON instead of text")
		stream      = flag.Bool("stream", false, "treat each stdin line as one document (fault-tolerant streaming)")
		workers     = flag.Int("workers", 0, "with -stream: worker pool size (0 = GOMAXPROCS)")
		metrics     = flag.Bool("metrics", false, "print a JSON metrics snapshot to stderr after the run")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address during the run")
		storeDir    = flag.String("store", "", "stream documents from the segmented corpus store at this directory instead of stdin (implies -stream)")
		storeToken  = flag.String("token", "", "with -store: scan only inverted-index matches; clauses AND on commas, OR on |, -term excludes")
		scanWorkers = flag.Int("scan-workers", 0, "with -store: segment decode parallelism for full scans (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	if *storeToken != "" && *storeDir == "" {
		fail("-token requires -store")
	}
	if *scanWorkers != 0 && *storeDir == "" {
		fail("-scan-workers requires -store")
	}
	if *storeDir != "" {
		*stream = true
	}

	var reg *obs.Registry
	if *metrics || *metricsAddr != "" {
		reg = obs.NewRegistry()
		extractor.SetMetrics(reg)
	}
	if *metricsAddr != "" {
		srv, err := obshttp.Serve(*metricsAddr, reg)
		if err != nil {
			fail("metrics server: %v", err)
		}
		metricsSrv = srv
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr())
	}

	if *stream {
		runStream(*jsonOut, *workers, reg, *storeDir, *storeToken, *scanWorkers)
		dumpMetrics(*metrics, reg)
		exit(0)
	}

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail("reading stdin: %v", err)
	}
	report(string(data), *jsonOut)
	dumpMetrics(*metrics, reg)
	exit(0)
}

// dumpMetrics prints the final snapshot to stderr behind the marker the
// tests parse for.
func dumpMetrics(enabled bool, reg *obs.Registry) {
	if !enabled {
		return
	}
	fmt.Fprintln(os.Stderr, "metrics snapshot:")
	if err := reg.WriteJSON(os.Stderr); err != nil {
		fail("writing metrics: %v", err)
	}
}

// scan is one document's extracted profile.
type scan struct {
	Text   string                 `json:"-"`
	PII    []harassrepro.PIIMatch `json:"pii"`
	Risks  []string               `json:"harm_risks"`
	Gender string                 `json:"likely_target_gender"`
}

// extractor is the process-wide PII extractor; -metrics attaches a
// registry to it before any document is scanned.
var extractor = pii.NewExtractor()

func analyze(s *scan) {
	matches := extractor.Extract(s.Text)
	var types []pii.Type
	seen := map[pii.Type]bool{}
	for _, m := range matches {
		s.PII = append(s.PII, harassrepro.PIIMatch{Type: string(m.Type), Value: m.Value})
		if !seen[m.Type] {
			seen[m.Type] = true
		}
	}
	// Table 6 order, one scan: derive the type set from the matches
	// instead of a second Extract pass.
	for _, t := range pii.AllTypes() {
		if seen[t] {
			types = append(types, t)
		}
	}
	for _, r := range harm.Profile(types, s.Text) {
		s.Risks = append(s.Risks, string(r))
	}
	s.Gender = string(gender.Infer(s.Text))
}

// report handles the single-document mode.
func report(text string, jsonOut bool) {
	s := scan{Text: text}
	analyze(&s)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fail("%v", err)
		}
		return
	}
	printScan(&s)
}

func printScan(s *scan) {
	if len(s.PII) == 0 {
		fmt.Println("no PII detected")
	} else {
		fmt.Printf("PII (%d):\n", len(s.PII))
		for _, m := range s.PII {
			fmt.Printf("  %-10s %s\n", m.Type, m.Value)
		}
	}
	if len(s.Risks) > 0 {
		fmt.Printf("harm risks: %v\n", s.Risks)
	}
	fmt.Printf("likely target gender: %s\n", s.Gender)
}

// runStream processes one document per line (or per store record) on
// the resilience runtime.
func runStream(jsonOut bool, workers int, reg *obs.Registry, storeDir, storeToken string, scanWorkers int) {
	runner := resilience.NewRunner(resilience.Config[scan]{
		Workers: workers,
		Ordered: true,
		Describe: func(s *scan) string {
			if len(s.Text) > 40 {
				return s.Text[:40] + "..."
			}
			return s.Text
		},
		Metrics: reg,
	}, resilience.Stage[scan]{
		Name:      "extract",
		Transient: true,
		Fn: func(_ context.Context, _ int, s *scan) error {
			analyze(s)
			return nil
		},
	})

	in := make(chan scan)
	scanErr := make(chan error, 1)
	go func() {
		defer close(in)
		if storeDir != "" {
			scanErr <- feedFromStore(storeDir, storeToken, scanWorkers, in)
			return
		}
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if line := sc.Text(); strings.TrimSpace(line) != "" {
				in <- scan{Text: line}
			}
		}
		scanErr <- sc.Err()
	}()

	enc := json.NewEncoder(os.Stdout)
	var results []resilience.Result[scan]
	for res := range runner.Process(context.Background(), in) {
		results = append(results, res)
		if res.Status == resilience.StatusQuarantined {
			fmt.Printf("QUARANTINED (%s after %d attempts): %v\n",
				res.Dead.Stage, res.Dead.Attempts, res.Dead.Err)
			continue
		}
		if jsonOut {
			if err := enc.Encode(res.Item); err != nil {
				fail("%v", err)
			}
			continue
		}
		s := res.Item
		var types []string
		for _, m := range s.PII {
			types = append(types, m.Type)
		}
		fmt.Printf("pii=%v risks=%v gender=%s\n", types, s.Risks, s.Gender)
	}

	sum := resilience.Summarize(results)
	fmt.Fprintln(os.Stderr, sum)
	for _, dl := range sum.DeadLetters {
		fmt.Fprintf(os.Stderr, "  dead-letter %s\n", dl)
	}
	if err := <-scanErr; err != nil {
		fail("reading input: %v", err)
	}
}

// feedFromStore streams document texts out of a segmented corpus
// store, whole (segments decoded in parallel when scanWorkers allows;
// delivery order is store order regardless) or restricted to the
// boolean token query's matches (posting bitmaps combined per segment,
// see store.ParseQuery), decoding one segment at a time so memory
// stays bounded.
func feedFromStore(dir, token string, scanWorkers int, in chan<- scan) error {
	s, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer s.Close()
	for _, torn := range s.Recovery().Torn {
		fmt.Fprintf(os.Stderr, "piiscan: store recovered torn segment %s (%d docs salvaged)\n",
			torn.Name, torn.SalvagedDocs)
	}
	emit := func(d *corpus.Document, _ store.DocRef) error {
		if strings.TrimSpace(d.Text) != "" {
			in <- scan{Text: d.Text}
		}
		return nil
	}
	if strings.TrimSpace(token) != "" {
		q, err := store.ParseQuery(token)
		if err != nil {
			return err
		}
		return s.LookupQueryDocs(q, emit)
	}
	return s.ScanParallel(scanWorkers, emit)
}
