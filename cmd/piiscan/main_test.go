package main

import (
	"testing"

	"harassrepro/internal/corpus/store"
)

// TestTokenQuerySyntax pins the -token surface syntax the flag help
// promises: AND on commas, OR on |, -term exclusion, and the error
// cases (pure negation, negation inside an OR group).
func TestTokenQuerySyntax(t *testing.T) {
	for _, spec := range []string{
		"paste",
		"paste,email",
		" paste , email ,",
		"platform:gab, dox",
		"email|phone,paste",
		"paste,-email",
	} {
		if q, err := store.ParseQuery(spec); err != nil || q == nil {
			t.Fatalf("ParseQuery(%q) = %v, %v", spec, q, err)
		}
	}
	for _, spec := range []string{"", ",,", "-paste", "email|-phone"} {
		if _, err := store.ParseQuery(spec); err == nil {
			t.Fatalf("ParseQuery(%q) succeeded, want error", spec)
		}
	}
}
