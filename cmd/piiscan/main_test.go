package main

import "testing"

func TestSplitTokens(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"paste", []string{"paste"}},
		{"paste,email", []string{"paste", "email"}},
		{" paste , email ,", []string{"paste", "email"}},
		{",,", nil},
		{"platform:gab, dox", []string{"platform:gab", "dox"}},
	}
	for _, c := range cases {
		got := splitTokens(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("splitTokens(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitTokens(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
