// Command harassrepro runs the full reproduction pipeline and prints the
// paper's tables and figures.
//
// Usage:
//
//	harassrepro [-seed N] [-scale quick|default] [-experiment id|all]
//	            [-workers N] [-metrics] [-metrics-addr :9090] [-list]
//	            [-store DIR]
//
// With -store, the corpora are streamed from a segmented corpus store
// (built by corpusgen -store with matching seed and scales) instead of
// generated in memory; outputs are byte-identical to the generate path.
//
// With -experiment all (the default) every registered experiment is
// reproduced in paper order. The pipeline runs on a memoized artifact
// graph: shared intermediates are computed exactly once and independent
// stages/experiments are scheduled concurrently (-workers bounds the
// pool), with byte-identical output at any worker count. A failing
// experiment no longer aborts the run — the rest still execute and the
// failures are reported together at the end (non-zero exit).
//
// With -metrics, a JSON metrics snapshot (per-stage compute/cache-hit
// counters and compute latency, plus scheduler instruments) is printed
// to stderr after the run; -metrics-addr additionally serves the live
// registry at /metrics (Prometheus text format) and /debug/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/obs"
	"harassrepro/internal/obs/obshttp"
)

// metricsSrv is the -metrics-addr endpoint; exit drains it on every
// exit path (fatalf included) so an in-flight scrape is never
// hard-reset when the run ends or an experiment fails.
var metricsSrv *obshttp.Server

// exit drains the metrics server, then terminates with code.
func exit(code int) {
	if metricsSrv != nil {
		metricsSrv.CloseTimeout(2 * time.Second) //nolint:errcheck // best-effort drain on exit
	}
	os.Exit(code)
}

// fatalf prints a one-line diagnostic and exits non-zero.
func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "harassrepro: "+format+"\n", args...)
	exit(1)
}

func main() {
	var (
		seed        = flag.Uint64("seed", 1, "random seed for the reproduction")
		scale       = flag.String("scale", "default", "corpus scale: quick or default")
		experiment  = flag.String("experiment", "all", "experiment ID to run, or 'all'")
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		saveModels  = flag.String("save-models", "", "directory to save trained classifiers (vocab + weights + thresholds)")
		outDir      = flag.String("out", "", "also write each experiment's output to <out>/<id>.txt")
		workers     = flag.Int("workers", 0, "worker pool size for stage/experiment scheduling (0 = GOMAXPROCS)")
		metrics     = flag.Bool("metrics", false, "print a JSON metrics snapshot to stderr after the run")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address during the run")
		storeDir    = flag.String("store", "", "stream corpora from the segmented corpus store at this directory (built by corpusgen -store) instead of generating them")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var cfg core.Config
	switch *scale {
	case "quick":
		cfg = core.QuickConfig(*seed)
	case "default":
		cfg = core.DefaultConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "harassrepro: unknown scale %q (want quick or default)\n", *scale)
		exit(2)
	}

	var reg *obs.Registry
	if *metrics || *metricsAddr != "" {
		reg = obs.NewRegistry()
	}
	if *metricsAddr != "" {
		srv, err := obshttp.Serve(*metricsAddr, reg)
		if err != nil {
			fatalf("metrics server: %v", err)
		}
		metricsSrv = srv
		fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr())
	}

	fmt.Fprintf(os.Stderr, "running pipeline (seed %d, scale %s)...\n", *seed, *scale)
	start := time.Now()
	p, err := core.RunWithOptions(cfg, core.Options{Workers: *workers, Metrics: reg, StorePath: *storeDir})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "pipeline complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	if *saveModels != "" {
		if err := p.SaveModels(*saveModels); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "saved classifiers to %s\n", *saveModels)
	}

	var ids []string // nil means all
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	results, err := p.RunExperiments(context.Background(), ids, *workers)
	if err != nil {
		fatalf("%v", err)
	}
	var failed []core.ExperimentResult
	for _, r := range results {
		if r.Err != nil {
			failed = append(failed, r)
			continue
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(r.Output)
		if *outDir != "" {
			path := filepath.Join(*outDir, r.ID+".txt")
			if err := os.WriteFile(path, []byte(r.Output+"\n"), 0o644); err != nil {
				fatalf("%v", err)
			}
		}
	}
	if reg != nil {
		stages := p.Graph().Stats()
		fmt.Fprintf(os.Stderr, "artifact graph (%d stages):\n", len(stages))
		for _, st := range stages {
			fmt.Fprintf(os.Stderr, "  %-18s computes=%d hits=%d\n", st.Name, st.Computes, st.Hits)
		}
	}
	if *metrics {
		fmt.Fprintln(os.Stderr, "metrics snapshot:")
		if err := reg.WriteJSON(os.Stderr); err != nil {
			fatalf("writing metrics: %v", err)
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "harassrepro: %d experiment(s) failed:\n", len(failed))
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", r.ID, r.Err)
		}
		exit(1)
	}
	exit(0)
}
