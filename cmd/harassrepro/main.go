// Command harassrepro runs the full reproduction pipeline and prints the
// paper's tables and figures.
//
// Usage:
//
//	harassrepro [-seed N] [-scale quick|default] [-experiment id|all] [-list]
//
// With -experiment all (the default) every registered experiment is
// reproduced in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"harassrepro"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "random seed for the reproduction")
		scale      = flag.String("scale", "default", "corpus scale: quick or default")
		experiment = flag.String("experiment", "all", "experiment ID to run, or 'all'")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		saveModels = flag.String("save-models", "", "directory to save trained classifiers (vocab + weights + thresholds)")
		outDir     = flag.String("out", "", "also write each experiment's output to <out>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, id := range harassrepro.ExperimentIDs() {
			fmt.Printf("%-12s %s\n", id, harassrepro.ExperimentTitle(id))
		}
		return
	}

	var cfg harassrepro.Config
	switch *scale {
	case "quick":
		cfg = harassrepro.QuickConfig(*seed)
	case "default":
		cfg = harassrepro.DefaultConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "harassrepro: unknown scale %q (want quick or default)\n", *scale)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "running pipeline (seed %d, scale %s)...\n", *seed, *scale)
	start := time.Now()
	study, err := harassrepro.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harassrepro: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pipeline complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	if *saveModels != "" {
		if err := study.SaveModels(*saveModels); err != nil {
			fmt.Fprintf(os.Stderr, "harassrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "saved classifiers to %s\n", *saveModels)
	}

	ids := harassrepro.ExperimentIDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "harassrepro: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		out, err := study.Experiment(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "harassrepro: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, []byte(out+"\n"), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "harassrepro: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
