// Command analyze runs the paper's rule-based characterizations over an
// external corpus supplied as JSON Lines on stdin (the format
// cmd/corpusgen emits: one {"text": ...} object per line; platform and
// thread fields optional). No classifier training is involved — the
// taxonomy coder, PII extractors, harm-risk mapping, gender heuristic
// and seed query run directly, optionally joined by pretrained
// classifiers via -models.
//
// Usage:
//
//	corpusgen | analyze
//	analyze -models trained/ < mycorpus.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"harassrepro"
	"harassrepro/internal/corpus"
	"harassrepro/internal/gender"
	"harassrepro/internal/report"
	"harassrepro/internal/taxonomy"
)

func main() {
	var (
		models    = flag.String("models", "", "optionally score with pretrained classifiers from this directory")
		threshold = flag.Float64("threshold", 0.5, "classifier flagging threshold when -models is set")
	)
	flag.Parse()

	docs, err := corpus.ReadJSONL(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "analyze: no documents on stdin")
		os.Exit(1)
	}

	var det *harassrepro.Detector
	if *models != "" {
		det, err = harassrepro.LoadDetector(*models)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
	}

	cat := taxonomy.NewCategorizer()
	var (
		cthDocs, doxDocs, piiDocs int
		labels                    []taxonomy.Label
		genderCounts              = map[gender.Gender]int{}
		piiCounts                 = map[string]int{}
		riskCounts                = map[string]int{}
	)
	for i := range docs {
		text := docs[i].Text
		label := cat.Categorize(text)
		flagged := !label.Empty()
		if det != nil {
			flagged = flagged || det.ScoreCTH(text) > *threshold
		}
		if flagged {
			cthDocs++
			if label.Empty() {
				label = taxonomy.NewLabel(taxonomy.SubGeneric)
			}
			labels = append(labels, label)
			genderCounts[gender.Infer(text)]++
		}
		types := harassrepro.PIITypes(text)
		if len(types) > 0 {
			piiDocs++
			for _, ty := range types {
				piiCounts[ty]++
			}
			isDox := len(types) >= 2
			if det != nil {
				isDox = det.ScoreDox(text) > *threshold
			}
			if isDox {
				doxDocs++
				for _, r := range harassrepro.HarmRisks(text) {
					riskCounts[r]++
				}
			}
		}
	}

	fmt.Printf("documents: %d\n", len(docs))
	fmt.Printf("flagged as calls to harassment: %d (%.2f%%)\n", cthDocs, 100*float64(cthDocs)/float64(len(docs)))
	fmt.Printf("documents with PII: %d; likely doxes: %d\n\n", piiDocs, doxDocs)

	if len(labels) > 0 {
		dist := taxonomy.NewDistribution(labels)
		t := report.NewTable("Attack types among flagged documents", "Attack Type", "Share")
		for _, p := range taxonomy.Parents() {
			if dist.ParentHits[p] > 0 {
				t.AddRow(string(p), report.Pct(dist.ParentHits[p], dist.Total))
			}
		}
		fmt.Println(t.String())
		fmt.Printf("Inferred target gender: unknown %d / female %d / male %d\n\n",
			genderCounts[gender.Unknown], genderCounts[gender.Female], genderCounts[gender.Male])
	}
	if len(piiCounts) > 0 {
		t := report.NewTable("PII types found", "Type", "Documents")
		for _, ty := range []string{"address", "card", "email", "facebook", "instagram", "phone", "ssn", "twitter", "youtube"} {
			if piiCounts[ty] > 0 {
				t.AddRow(ty, fmt.Sprintf("%d", piiCounts[ty]))
			}
		}
		fmt.Println(t.String())
	}
	if len(riskCounts) > 0 {
		t := report.NewTable("Harm risks among likely doxes", "Risk", "Documents")
		for _, r := range []string{"Physical", "Economic / Identity", "Online", "Reputation"} {
			if riskCounts[r] > 0 {
				t.AddRow(r, fmt.Sprintf("%d", riskCounts[r]))
			}
		}
		fmt.Println(t.String())
	}
}
