// Package harassrepro is a self-contained Go reproduction of "A
// Large-Scale Characterization of Online Incitements to Harassment
// Across Platforms" (IMC '21): the paper's call-to-harassment and doxing
// filtering pipelines, every substrate they depend on (synthetic
// multi-platform corpora, a WordPiece + linear-classifier NLP stack,
// simulated annotation workforces, active learning, threshold selection,
// PII extraction, the attack-type taxonomy, thread/harm/repeated-dox
// analyses), and a benchmark harness regenerating every table and figure
// in the paper's evaluation.
//
// Two API layers are exposed:
//
//   - Study: an end-to-end pipeline run over generated corpora, from
//     which every paper experiment can be reproduced and whose trained
//     classifiers score new text.
//   - Stateless analysis helpers (ExtractPII, CategorizeAttack,
//     HarmRisks, InferTargetGender, MatchesSeedQuery) that work on any
//     text without running the pipeline.
//
// All corpus data is synthetic; see DESIGN.md for the substitution map
// between the paper's proprietary resources and this reproduction.
package harassrepro

import (
	"context"

	"harassrepro/internal/annotate"
	"harassrepro/internal/core"
	"harassrepro/internal/corpus"
	"harassrepro/internal/gender"
	"harassrepro/internal/harm"
	"harassrepro/internal/pii"
	"harassrepro/internal/query"
	"harassrepro/internal/resilience"
	"harassrepro/internal/taxonomy"
)

// Config controls a full reproduction run; the zero value is filled with
// defaults by Run. See DefaultConfig and QuickConfig.
type Config = core.Config

// DefaultConfig returns the standard reproduction scale (volume 1:10,000
// of the paper's corpora, positives 1:10).
func DefaultConfig(seed uint64) Config { return core.DefaultConfig(seed) }

// QuickConfig returns a reduced scale suitable for tests and fast runs.
func QuickConfig(seed uint64) Config { return core.QuickConfig(seed) }

// Study is a completed end-to-end pipeline run.
type Study struct {
	pipe *core.Pipeline
}

// Run generates the corpora and executes both filtering pipelines.
func Run(cfg Config) (*Study, error) {
	return RunWithOptions(cfg, StudyOptions{})
}

// StudyOptions tune how a run is scheduled; the zero value reproduces
// Run's defaults. Outputs are identical at every setting — the pipeline
// is built on a memoized artifact graph whose stages derive randomness
// from pure per-stage rng splits, so concurrency never changes results.
type StudyOptions struct {
	// Workers bounds the worker pool for pipeline-stage scheduling.
	// 0 means GOMAXPROCS.
	Workers int
}

// RunWithOptions is Run with scheduling options.
func RunWithOptions(cfg Config, opts StudyOptions) (*Study, error) {
	p, err := core.RunWithOptions(cfg, core.Options{Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	return &Study{pipe: p}, nil
}

// ExperimentResult is one experiment's outcome from Experiments.
type ExperimentResult struct {
	ID     string
	Title  string
	Output string // rendered title + body, as Experiment returns
	Err    error  // non-nil when this experiment failed; others still ran
}

// Experiments reproduces the named paper artifacts (all of them when
// ids is empty) concurrently on a bounded pool, sharing memoized
// intermediates. A failing experiment is isolated and reported in its
// result's Err; the rest still run. Results are in input order and
// byte-identical to sequential Experiment calls. The returned error is
// non-nil only for run-level failures (context cancellation).
func (s *Study) Experiments(ctx context.Context, ids []string, workers int) ([]ExperimentResult, error) {
	res, err := s.pipe.RunExperiments(ctx, ids, workers)
	if err != nil {
		return nil, err
	}
	out := make([]ExperimentResult, len(res))
	for i, r := range res {
		out[i] = ExperimentResult{ID: r.ID, Title: r.Title, Output: r.Output, Err: r.Err}
	}
	return out, nil
}

// ExperimentIDs lists the reproducible paper artifacts in paper order
// (table1..table11, fig1..fig6, plus in-text analyses).
func ExperimentIDs() []string {
	var out []string
	for _, e := range core.Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// ExperimentTitle returns the human-readable title for an experiment ID,
// or "" if unknown.
func ExperimentTitle(id string) string {
	for _, e := range core.Experiments() {
		if e.ID == id {
			return e.Title
		}
	}
	return ""
}

// Experiment reproduces one paper artifact by ID and returns its
// rendered text form.
func (s *Study) Experiment(id string) (string, error) {
	return s.pipe.RunExperiment(id)
}

// ScoreDox returns the doxing classifier's positive-class probability
// for text.
func (s *Study) ScoreDox(text string) float64 {
	return s.pipe.ScoreText(annotate.TaskDox, text)
}

// ScoreCTH returns the call-to-harassment classifier's positive-class
// probability for text.
func (s *Study) ScoreCTH(text string) float64 {
	return s.pipe.ScoreText(annotate.TaskCTH, text)
}

// DoxThreshold returns the selected detection threshold for a platform
// ("boards", "discord", "telegram", "gab", "pastes"), or 0.5 if unknown.
func (s *Study) DoxThreshold(platform string) float64 {
	if r, ok := s.pipe.Dox.Results[corpus.Platform(platform)]; ok {
		return r.Threshold
	}
	return 0.5
}

// CTHThreshold returns the selected CTH threshold for a platform, or 0.5
// if unknown.
func (s *Study) CTHThreshold(platform string) float64 {
	if r, ok := s.pipe.CTH.Results[corpus.Platform(platform)]; ok {
		return r.Threshold
	}
	return 0.5
}

// Document is a public view of one generated corpus document.
type Document struct {
	ID          string
	Dataset     string
	Platform    string
	Domain      string
	ThreadID    string
	PosInThread int
	ThreadSize  int
	Date        string
	Text        string
}

func publicDoc(d *corpus.Document) Document {
	return Document{
		ID:          d.ID,
		Dataset:     string(d.Dataset),
		Platform:    string(d.Platform),
		Domain:      d.Domain,
		ThreadID:    d.ThreadID,
		PosInThread: d.PosInThread,
		ThreadSize:  d.ThreadSize,
		Date:        d.Date,
		Text:        d.Text,
	}
}

// Documents returns the generated documents of one data set ("boards",
// "blogs", "chat", "gab", "pastes").
func (s *Study) Documents(dataset string) []Document {
	var src *corpus.Corpus
	if dataset == string(corpus.Blogs) {
		src = s.pipe.Blogs
	} else {
		src = s.pipe.Corpora[corpus.Dataset(dataset)]
	}
	if src == nil {
		return nil
	}
	out := make([]Document, src.Len())
	for i := range src.Docs {
		out[i] = publicDoc(&src.Docs[i])
	}
	return out
}

// AnnotatedDoxes returns the expert-confirmed doxes discovered by the
// pipeline.
func (s *Study) AnnotatedDoxes() []Document {
	return publicDocs(s.pipe.Dox.AllPositives())
}

// AnnotatedCTH returns the expert-confirmed calls to harassment
// discovered by the pipeline.
func (s *Study) AnnotatedCTH() []Document {
	return publicDocs(s.pipe.CTH.AllPositives())
}

func publicDocs(docs []*corpus.Document) []Document {
	out := make([]Document, len(docs))
	for i, d := range docs {
		out[i] = publicDoc(d)
	}
	return out
}

// SaveModels writes the study's trained classifiers, WordPiece
// vocabulary and per-platform thresholds into dir — the paper's
// "open-source the classifiers" release artifact, containing weights and
// configuration only, never corpus text or PII.
func (s *Study) SaveModels(dir string) error {
	return s.pipe.SaveModels(dir)
}

// Detector scores text with classifiers previously saved by SaveModels,
// without corpora or pipeline state — the deployable artifact for
// platforms.
type Detector struct {
	d *core.Detector
}

// LoadDetector reads a model directory written by SaveModels.
func LoadDetector(dir string) (*Detector, error) {
	d, err := core.LoadDetector(dir)
	if err != nil {
		return nil, err
	}
	return &Detector{d: d}, nil
}

// ScoreDox returns the doxing classifier's positive probability.
func (d *Detector) ScoreDox(text string) float64 { return d.d.ScoreDox(text) }

// ScoreCTH returns the call-to-harassment classifier's positive
// probability.
func (d *Detector) ScoreCTH(text string) float64 { return d.d.ScoreCTH(text) }

// DoxThreshold returns the saved detection threshold for a platform.
func (d *Detector) DoxThreshold(platform string) float64 { return d.d.DoxThreshold(platform) }

// CTHThreshold returns the saved CTH threshold for a platform.
func (d *Detector) CTHThreshold(platform string) float64 { return d.d.CTHThreshold(platform) }

// Platforms lists the platforms with saved thresholds.
func (d *Detector) Platforms() []string { return d.d.Platforms() }

// StreamDocument is one input document for fault-tolerant streaming
// scoring. Only Text is required.
type StreamDocument struct {
	ID       string
	Platform string
	Text     string
}

// StreamOptions configures ScoreStream.
type StreamOptions struct {
	// Workers bounds the concurrent scoring pool; 0 means GOMAXPROCS.
	Workers int
	// Seed makes the run deterministic: same seed, same scores,
	// regardless of worker count or transient failures.
	Seed uint64
	// MaxAttempts bounds retries of transiently failing stages per
	// document; 0 means the default (4).
	MaxAttempts int
	// Annotate additionally runs the PII and attack-taxonomy coders
	// per document; if those stages fail permanently the document is
	// still emitted with the annotation marked degraded.
	Annotate bool
}

// StreamResult is one scored document from ScoreStream.
type StreamResult struct {
	// Index is the document's position in the input.
	Index int
	ID    string
	// CTH / Dox are the classifiers' positive-class probabilities
	// (zero when the document was quarantined before scoring).
	CTH float64
	Dox float64
	// PII / Attacks / SeedQuery are filled when Annotate was set.
	PII       []string
	Attacks   []string
	SeedQuery bool
	// Degraded names annotation stages that failed permanently but
	// were tolerated.
	Degraded []string
	// Quarantined marks a document isolated to the dead-letter queue;
	// FailedStage, Attempts and Err describe the failure.
	Quarantined bool
	FailedStage string
	Attempts    int
	Err         string
}

// StreamSummary aggregates a streaming run.
type StreamSummary struct {
	Processed   int
	Succeeded   int
	Degraded    int
	Quarantined int
}

// ScoreStream scores documents concurrently on the fault-tolerant
// runtime: per-document panics and transient failures are isolated,
// retried with seeded backoff, and — if permanent — quarantined to the
// returned dead-letter records instead of aborting the run. Results
// are in input order. err is non-nil only when ctx was cancelled.
func (d *Detector) ScoreStream(ctx context.Context, docs []StreamDocument, opts StreamOptions) ([]StreamResult, StreamSummary, error) {
	in := make([]core.StreamDoc, len(docs))
	for i, sd := range docs {
		in[i] = core.StreamDoc{ID: sd.ID, Platform: sd.Platform, Text: sd.Text}
	}
	results, sum, err := d.d.ScoreBatch(ctx, in, core.StreamOptions{
		Workers:  opts.Workers,
		Seed:     opts.Seed,
		Retry:    resilience.RetryPolicy{MaxAttempts: opts.MaxAttempts},
		Annotate: opts.Annotate,
	})
	out := make([]StreamResult, len(results))
	for i, r := range results {
		sr := StreamResult{
			Index:     r.Index,
			ID:        r.Item.ID,
			CTH:       r.Item.CTH,
			Dox:       r.Item.Dox,
			PII:       r.Item.PII,
			Attacks:   r.Item.Attacks,
			SeedQuery: r.Item.SeedQuery,
			Degraded:  r.Degraded,
		}
		if r.Dead != nil {
			sr.Quarantined = true
			sr.FailedStage = r.Dead.Stage
			sr.Attempts = r.Dead.Attempts
			sr.Err = r.Dead.Err.Error()
		}
		out[i] = sr
	}
	return out, StreamSummary{
		Processed:   sum.Processed,
		Succeeded:   sum.Succeeded,
		Degraded:    sum.Degraded,
		Quarantined: sum.Quarantined,
	}, err
}

// NGramWeight is one n-gram's contribution to a classifier decision.
type NGramWeight struct {
	NGram  string
	Weight float64
}

// ExplainCTH attributes the CTH classifier's decision on text to the
// text's own n-grams, most influential first (linear-model attribution).
func (d *Detector) ExplainCTH(text string, topK int) []NGramWeight {
	var out []NGramWeight
	for _, w := range d.d.ExplainCTH(text, topK) {
		out = append(out, NGramWeight{NGram: w.NGram, Weight: w.Weight})
	}
	return out
}

// ExplainDox attributes the doxing classifier's decision on text to the
// text's own n-grams.
func (d *Detector) ExplainDox(text string, topK int) []NGramWeight {
	var out []NGramWeight
	for _, w := range d.d.ExplainDox(text, topK) {
		out = append(out, NGramWeight{NGram: w.NGram, Weight: w.Weight})
	}
	return out
}

// --- Stateless analysis helpers ---

// PIIMatch is one extracted PII instance.
type PIIMatch struct {
	Type  string
	Value string
}

var sharedExtractor = pii.NewExtractor()

// ExtractPII returns all PII found in text using the paper's 12
// precision-tuned extractors (§5.6).
func ExtractPII(text string) []PIIMatch {
	var out []PIIMatch
	for _, m := range sharedExtractor.Extract(text) {
		out = append(out, PIIMatch{Type: string(m.Type), Value: m.Value})
	}
	return out
}

// PIITypes returns the distinct PII types present in text, in Table 6
// order.
func PIITypes(text string) []string {
	var out []string
	for _, t := range sharedExtractor.Types(text) {
		out = append(out, string(t))
	}
	return out
}

var sharedCategorizer = taxonomy.NewCategorizer()

// CategorizeAttack codes text into the paper's attack-type taxonomy,
// returning subcategory names (Table 11 rows). Empty means no attack
// cues were found.
func CategorizeAttack(text string) []string {
	var out []string
	for _, s := range sharedCategorizer.Categorize(text).Subs() {
		out = append(out, string(s))
	}
	return out
}

// AttackParents codes text and returns the parent attack types (Table 5
// rows).
func AttackParents(text string) []string {
	var out []string
	for _, p := range sharedCategorizer.Categorize(text).Parents() {
		out = append(out, string(p))
	}
	return out
}

// HarmRisks returns the harm-risk categories (Table 7) indicated by the
// PII and reputation signals in text.
func HarmRisks(text string) []string {
	risks := harm.Profile(sharedExtractor.Types(text), text)
	var out []string
	for _, r := range risks {
		out = append(out, string(r))
	}
	return out
}

// InferTargetGender applies the paper's pronoun-group heuristic (§5.6):
// "male", "female" or "unknown".
func InferTargetGender(text string) string {
	return string(gender.Infer(text))
}

// MatchesSeedQuery reports whether text matches the paper's Figure 4
// mobilizing-language seed query (with the attack-term clause).
func MatchesSeedQuery(text string) bool {
	return query.WithAttackTerms(query.Figure4()).Match(text)
}

// TaxonomyParents lists the 10 parent attack types.
func TaxonomyParents() []string {
	var out []string
	for _, p := range taxonomy.Parents() {
		out = append(out, string(p))
	}
	return out
}

// TaxonomySubcategories lists the taxonomy's subcategory attack types in
// Table 11 order (28 subcategories plus the Generic parent marker).
func TaxonomySubcategories() []string {
	var out []string
	for _, s := range taxonomy.Subs() {
		out = append(out, string(s))
	}
	return out
}

// ParentDefinition returns the paper's §6.1.1 definition for a parent
// attack type name, or "".
func ParentDefinition(parent string) string {
	return taxonomy.Parent(parent).Definition()
}
