// Trends: longitudinal analysis of calls to harassment — the research
// direction §9.2 proposes ("Longitudinal analysis of calls to harassment
// could provide insights into new attack types"). The confirmed CTH are
// bucketed by year and platform, attack-mix shifts are reported, and the
// trained classifiers are exported as the paper's open-source release
// artifact for downstream deployments.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"harassrepro"
)

func main() {
	study, err := harassrepro.Run(harassrepro.QuickConfig(31))
	if err != nil {
		log.Fatal(err)
	}

	// Bucket confirmed CTH by year and leading attack type.
	type key struct {
		year   string
		attack string
	}
	counts := map[key]int{}
	years := map[string]int{}
	for _, doc := range study.AnnotatedCTH() {
		year := doc.Date[:4]
		years[year]++
		attacks := harassrepro.AttackParents(doc.Text)
		if len(attacks) == 0 {
			attacks = []string{"Generic"}
		}
		for _, a := range attacks {
			counts[key{year, a}]++
		}
	}

	var yearList []string
	for y := range years {
		yearList = append(yearList, y)
	}
	sort.Strings(yearList)

	fmt.Println("confirmed calls to harassment per year (top attack types):")
	for _, y := range yearList {
		if years[y] < 5 {
			continue
		}
		type av struct {
			attack string
			n      int
		}
		var tops []av
		for _, a := range harassrepro.TaxonomyParents() {
			if n := counts[key{y, a}]; n > 0 {
				tops = append(tops, av{a, n})
			}
		}
		sort.Slice(tops, func(i, j int) bool { return tops[i].n > tops[j].n })
		if len(tops) > 3 {
			tops = tops[:3]
		}
		fmt.Printf("  %s: %3d total |", y, years[y])
		for _, t := range tops {
			fmt.Printf(" %s %d;", t.attack, t.n)
		}
		fmt.Println()
	}

	// Export the classifiers — the deployable artifact.
	dir, err := os.MkdirTemp("", "harassrepro-models-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := study.SaveModels(dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassifiers exported to %s (vocab.txt, dox.model, cth.model, meta.json)\n", dir)

	// Reload and sanity-check the exported detector.
	det, err := harassrepro.LoadDetector(dir)
	if err != nil {
		log.Fatal(err)
	}
	sample := "we need to mass-report her twitter and youtube"
	fmt.Printf("reloaded detector: cth(%q) = %.3f\n", sample, det.ScoreCTH(sample))
	fmt.Printf("platform thresholds: ")
	for _, p := range det.Platforms() {
		fmt.Printf("%s=%.2f ", p, det.CTHThreshold(p))
	}
	fmt.Println()
}
