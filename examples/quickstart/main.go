// Quickstart: run the reproduction pipeline at quick scale and print the
// paper's headline artifacts — the pipeline flow (Figure 1), the parent
// attack-type breakdown (Table 5), and the classifier scores for a few
// sample messages.
package main

import (
	"fmt"
	"log"

	"harassrepro"
)

func main() {
	study, err := harassrepro.Run(harassrepro.QuickConfig(42))
	if err != nil {
		log.Fatal(err)
	}

	for _, id := range []string{"fig1", "table5"} {
		out, err := study.Experiment(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	fmt.Println("Scoring sample messages:")
	samples := []string{
		"we should mass-report her twitter and youtube, spread the word",
		"DOX: John Example / Address: 42 Cedar Lane, Riverton, TX, 75001 / Phone: (212) 555-0147",
		"anyone up for ranked tonight?",
	}
	for _, s := range samples {
		fmt.Printf("  cth=%.3f dox=%.3f attacks=%v  %q\n",
			study.ScoreCTH(s), study.ScoreDox(s), harassrepro.AttackParents(s), s)
	}
}
