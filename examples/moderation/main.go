// Moderation: triage an incoming message stream the way a platform
// trust-and-safety queue would, using the trained filtering classifiers
// plus the rule-based taxonomy. Messages are scored against the
// platform's selected threshold (Table 4), enriched with attack types,
// PII exposure and harm risks, and printed as a prioritized queue —
// the paper's suggested use of the open-sourced classifiers by online
// platforms (§9.2).
package main

import (
	"fmt"
	"log"
	"sort"

	"harassrepro"
)

type queued struct {
	text     string
	cthScore float64
	doxScore float64
	attacks  []string
	pii      []string
	risks    []string
}

func (q queued) priority() float64 {
	p := q.cthScore
	if q.doxScore > p {
		p = q.doxScore
	}
	// PII exposure escalates.
	return p + 0.1*float64(len(q.pii))
}

func main() {
	study, err := harassrepro.Run(harassrepro.QuickConfig(7))
	if err != nil {
		log.Fatal(err)
	}

	// Simulated incoming stream for a chat platform.
	stream := []string{
		"gg everyone, same time tomorrow",
		"we need to mass report his channel until it's taken down",
		"dropping her info now: 88 Willow Court, Fairview, OH, 44122, phone (440) 555-0133",
		"lets raid with all six of us in the dungeon tonight",
		"everyone should email her boss at the county library with the screenshots",
		"new emotes just dropped check them out",
		"post FB and Twitter accounts so we can spam him with hate",
	}

	cthT := study.CTHThreshold("discord")
	doxT := study.DoxThreshold("discord")
	fmt.Printf("platform thresholds: cth=%.3f dox=%.3f\n\n", cthT, doxT)

	var queue []queued
	for _, msg := range stream {
		q := queued{
			text:     msg,
			cthScore: study.ScoreCTH(msg),
			doxScore: study.ScoreDox(msg),
			attacks:  harassrepro.AttackParents(msg),
			pii:      harassrepro.PIITypes(msg),
			risks:    harassrepro.HarmRisks(msg),
		}
		if q.cthScore > cthT || q.doxScore > doxT || len(q.attacks) > 0 {
			queue = append(queue, q)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].priority() > queue[j].priority() })

	fmt.Printf("moderation queue (%d of %d messages flagged):\n", len(queue), len(stream))
	for i, q := range queue {
		fmt.Printf("%d. [cth %.2f | dox %.2f]", i+1, q.cthScore, q.doxScore)
		if len(q.attacks) > 0 {
			fmt.Printf(" attacks=%v", q.attacks)
		}
		if len(q.pii) > 0 {
			fmt.Printf(" pii=%v risks=%v", q.pii, q.risks)
		}
		fmt.Printf("\n   %q\n", q.text)
	}
}
