// Threadwatch: board-thread escalation analysis. The paper found calls
// to harassment rarely open a thread (3.7%) and instead appear
// throughout (§6.3) — "threads tend to devolve into calls to
// harassment" — so moderation that only screens first posts misses most
// coordinated harassment. This example reproduces that analysis over the
// generated boards corpus and flags the threads that escalated.
package main

import (
	"fmt"
	"log"
	"sort"

	"harassrepro"
)

func main() {
	study, err := harassrepro.Run(harassrepro.QuickConfig(23))
	if err != nil {
		log.Fatal(err)
	}

	// Position and overlap analyses (the §6.3 / §7.4 artifacts).
	for _, id := range []string{"positions", "overlap", "fig5"} {
		out, err := study.Experiment(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}

	// Flag escalated threads: confirmed CTH beyond the first post.
	type escalation struct {
		threadID string
		pos      int
		size     int
		attacks  []string
	}
	var escalated []escalation
	for _, doc := range study.AnnotatedCTH() {
		if doc.Platform != "boards" || doc.PosInThread == 0 {
			continue
		}
		escalated = append(escalated, escalation{
			threadID: doc.ThreadID,
			pos:      doc.PosInThread,
			size:     doc.ThreadSize,
			attacks:  harassrepro.AttackParents(doc.Text),
		})
	}
	sort.Slice(escalated, func(i, j int) bool {
		return escalated[i].threadID < escalated[j].threadID
	})

	fmt.Printf("threads that escalated mid-conversation: %d\n", len(escalated))
	show := escalated
	if len(show) > 8 {
		show = show[:8]
	}
	for _, e := range show {
		fmt.Printf("  %s: incitement at post %d of %d  attacks=%v\n", e.threadID, e.pos+1, e.size, e.attacks)
	}
	fmt.Println("\nfirst-post-only screening would have missed every one of these.")
}
