// Threatintel: cross-platform repeated-dox intelligence. The pipeline's
// above-threshold dox sets are linked by shared social-media PII (§7.3)
// to surface repeatedly-targeted individuals, and each cluster is
// profiled with the harm-risk taxonomy — the workflow the paper suggests
// for anti-harassment groups monitoring emerging attack trends (§9.2).
package main

import (
	"fmt"
	"log"
	"sort"

	"harassrepro"
)

func main() {
	study, err := harassrepro.Run(harassrepro.QuickConfig(11))
	if err != nil {
		log.Fatal(err)
	}

	// Group confirmed doxes by their social-media handles.
	type cluster struct {
		handleKey string
		docs      []harassrepro.Document
		risks     map[string]bool
		datasets  map[string]bool
	}
	clusters := map[string]*cluster{}
	for _, doc := range study.AnnotatedDoxes() {
		for _, m := range harassrepro.ExtractPII(doc.Text) {
			switch m.Type {
			case "facebook", "twitter", "instagram", "youtube":
			default:
				continue
			}
			key := m.Type + ":" + m.Value
			c, ok := clusters[key]
			if !ok {
				c = &cluster{handleKey: key, risks: map[string]bool{}, datasets: map[string]bool{}}
				clusters[key] = c
			}
			c.docs = append(c.docs, doc)
			c.datasets[doc.Dataset] = true
			for _, r := range harassrepro.HarmRisks(doc.Text) {
				c.risks[r] = true
			}
		}
	}

	// Keep repeat targets only.
	var repeats []*cluster
	for _, c := range clusters {
		if len(c.docs) > 1 {
			repeats = append(repeats, c)
		}
	}
	sort.Slice(repeats, func(i, j int) bool {
		if len(repeats[i].docs) != len(repeats[j].docs) {
			return len(repeats[i].docs) > len(repeats[j].docs)
		}
		return repeats[i].handleKey < repeats[j].handleKey
	})

	fmt.Printf("confirmed doxes: %d; repeat-target clusters: %d\n\n", len(study.AnnotatedDoxes()), len(repeats))
	show := repeats
	if len(show) > 10 {
		show = show[:10]
	}
	for _, c := range show {
		var datasets, risks []string
		for d := range c.datasets {
			datasets = append(datasets, d)
		}
		for r := range c.risks {
			risks = append(risks, r)
		}
		sort.Strings(datasets)
		sort.Strings(risks)
		fmt.Printf("target handle %-45s doxes=%d datasets=%v risks=%v\n",
			c.handleKey, len(c.docs), datasets, risks)
	}

	// The aggregate §7.3 view.
	out, err := study.Experiment("repeats")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n" + out)
}
