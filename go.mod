module harassrepro

go 1.22
