// Package threads implements the paper's board-thread analyses: where in
// a thread calls to harassment and doxes originate (§6.3, §7.4), which
// attack types draw significantly larger responses (pairwise t-tests on
// log thread sizes with Benjamini–Hochberg correction), the thread-size
// CDFs of Figures 5 and 6, and the co-occurrence of calls to harassment
// and doxes within threads.
package threads

import (
	"sort"

	"harassrepro/internal/stats"
	"harassrepro/internal/taxonomy"
)

// Post is one board post with its thread coordinates and labels.
type Post struct {
	ThreadID   string
	Pos        int // 0-based position within the thread
	ThreadSize int
	IsCTH      bool
	IsDox      bool
	Label      taxonomy.Label // taxonomy coding when IsCTH
}

// PositionSummary reports where in threads a class of posts appears.
type PositionSummary struct {
	N          int
	FirstCount int
	LastCount  int
	FirstShare float64
	LastShare  float64
	// Median/Mean/StdDev are over 1-based positions, matching the
	// paper's "median, mean and standard deviation for thread position
	// was 70th, 145th and 263 places".
	Median float64
	Mean   float64
	StdDev float64
}

// Positions summarises thread positions of the posts selected by sel.
func Positions(posts []Post, sel func(*Post) bool) PositionSummary {
	var ps PositionSummary
	var positions []float64
	for i := range posts {
		p := &posts[i]
		if !sel(p) {
			continue
		}
		ps.N++
		if p.Pos == 0 {
			ps.FirstCount++
		}
		if p.Pos == p.ThreadSize-1 {
			ps.LastCount++
		}
		positions = append(positions, float64(p.Pos+1))
	}
	if ps.N > 0 {
		ps.FirstShare = float64(ps.FirstCount) / float64(ps.N)
		ps.LastShare = float64(ps.LastCount) / float64(ps.N)
		s := stats.Summarize(positions)
		ps.Median, ps.Mean, ps.StdDev = s.Median, s.Mean, s.StdDev
	}
	return ps
}

// ResponseSizes returns, for the posts selected by sel, the number of
// messages in the thread after each selected post (the paper defines
// "responses to calls to harassment as all messages in a thread after
// the call to harassment").
func ResponseSizes(posts []Post, sel func(*Post) bool) []float64 {
	var out []float64
	for i := range posts {
		p := &posts[i]
		if sel(p) {
			out = append(out, float64(p.ThreadSize-p.Pos-1))
		}
	}
	return out
}

// ThreadSizes returns the distinct thread sizes of the posts selected by
// sel (one entry per selected post, matching the paper's per-post CDF of
// Figure 5).
func ThreadSizes(posts []Post, sel func(*Post) bool) []float64 {
	var out []float64
	for i := range posts {
		p := &posts[i]
		if sel(p) {
			out = append(out, float64(p.ThreadSize))
		}
	}
	return out
}

// AttackResponse is one attack type's response-size comparison against
// the baseline (one row of the §6.3 analysis / one box of Figure 6).
type AttackResponse struct {
	Attack taxonomy.Parent
	N      int
	// Sizes are the thread sizes of single-category CTH of this type.
	Sizes []float64
	// T and RawP are the Welch t statistic and two-sided p-value of the
	// log-size comparison against the baseline.
	T    float64
	RawP float64
	// AdjustedP and Significant apply Benjamini–Hochberg at the error
	// rate passed to CompareResponses.
	AdjustedP   float64
	Significant bool
	// Excluded marks categories skipped for insufficient samples (the
	// paper excluded Lockout and Surveillance with 2 examples each).
	Excluded bool
}

// CompareResponses runs the §6.3 analysis: for each parent attack type,
// the thread sizes of CTH labelled with exactly that single category are
// t-tested (on logs) against the baseline thread sizes, with BH
// correction at rate q (the paper used q = 0.1). Categories with fewer
// than minSamples single-category posts are excluded.
func CompareResponses(cthPosts []Post, baselineSizes []float64, q float64, minSamples int) []AttackResponse {
	if minSamples <= 0 {
		minSamples = 5
	}
	if q <= 0 {
		q = 0.1
	}
	baseLog := stats.Log(baselineSizes)

	var rows []AttackResponse
	for _, parent := range taxonomy.Parents() {
		row := AttackResponse{Attack: parent}
		// Only single-category CTH ensure independence of samples.
		for i := range cthPosts {
			p := &cthPosts[i]
			if !p.IsCTH || p.Label.ParentCount() != 1 || !p.Label.HasParent(parent) {
				continue
			}
			row.Sizes = append(row.Sizes, float64(p.ThreadSize))
		}
		row.N = len(row.Sizes)
		if row.N < minSamples {
			row.Excluded = true
			rows = append(rows, row)
			continue
		}
		res, err := stats.WelchTTest(stats.Log(row.Sizes), baseLog)
		if err != nil {
			row.Excluded = true
			rows = append(rows, row)
			continue
		}
		row.T = res.T
		row.RawP = res.P
		rows = append(rows, row)
	}

	// BH over the included rows.
	var pvals []float64
	var idx []int
	for i, r := range rows {
		if !r.Excluded {
			pvals = append(pvals, r.RawP)
			idx = append(idx, i)
		}
	}
	if len(pvals) > 0 {
		for j, res := range stats.BenjaminiHochberg(pvals, q) {
			rows[idx[j]].AdjustedP = res.Adjusted
			rows[idx[j]].Significant = res.Rejected
		}
	}
	return rows
}

// OverlapStats reports CTH/dox co-membership in threads (§6.3).
type OverlapStats struct {
	CTHDocs int
	DoxDocs int
	// CTHWithDoxInThread counts CTH posts whose thread also contains a
	// dox (2,620 of 30,685 = 8.53% in the paper).
	CTHWithDoxInThread int
	// DoxWithCTHInThread counts dox posts whose thread also contains a
	// CTH (17.85% in the paper).
	DoxWithCTHInThread int
	// BothInOnePost counts posts that are simultaneously a dox and a
	// CTH (95 posts in the paper).
	BothInOnePost int

	CTHShare float64
	DoxShare float64
}

// Overlap computes CTH/dox thread co-occurrence over board posts. As in
// the paper, a CTH document "contains a dox" when its thread holds a dox
// document (a dual dox+CTH post counts for its own thread).
func Overlap(posts []Post) OverlapStats {
	threadDox := map[string]int{}
	threadCTH := map[string]int{}
	for i := range posts {
		p := &posts[i]
		if p.IsCTH {
			threadCTH[p.ThreadID]++
		}
		if p.IsDox {
			threadDox[p.ThreadID]++
		}
	}
	var st OverlapStats
	for i := range posts {
		p := &posts[i]
		if p.IsCTH {
			st.CTHDocs++
			if threadDox[p.ThreadID] > 0 {
				st.CTHWithDoxInThread++
			}
		}
		if p.IsDox {
			st.DoxDocs++
			if threadCTH[p.ThreadID] > 0 {
				st.DoxWithCTHInThread++
			}
		}
		if p.IsCTH && p.IsDox {
			st.BothInOnePost++
		}
	}
	if st.CTHDocs > 0 {
		st.CTHShare = float64(st.CTHWithDoxInThread) / float64(st.CTHDocs)
	}
	if st.DoxDocs > 0 {
		st.DoxShare = float64(st.DoxWithCTHInThread) / float64(st.DoxDocs)
	}
	return st
}

// RandomThreadRates estimates the probability that a random thread
// contains a CTH (and a dox), the baseline the paper compares overlap
// against ("0.20% and 0.10% respectively").
func RandomThreadRates(posts []Post) (cthRate, doxRate float64) {
	threads := map[string][2]bool{}
	for i := range posts {
		p := &posts[i]
		cur := threads[p.ThreadID]
		if p.IsCTH {
			cur[0] = true
		}
		if p.IsDox {
			cur[1] = true
		}
		threads[p.ThreadID] = cur
	}
	if len(threads) == 0 {
		return 0, 0
	}
	var cth, dox int
	// Deterministic iteration for stable floats.
	ids := make([]string, 0, len(threads))
	for id := range threads {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if threads[id][0] {
			cth++
		}
		if threads[id][1] {
			dox++
		}
	}
	n := float64(len(threads))
	return float64(cth) / n, float64(dox) / n
}
