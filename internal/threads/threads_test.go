package threads

import (
	"fmt"
	"math"
	"testing"

	"harassrepro/internal/randx"
	"harassrepro/internal/taxonomy"
)

// buildThread appends a thread of the given size to posts, with CTH at
// cthPositions and doxes at doxPositions.
func buildThread(posts []Post, id string, size int, cthPos map[int]taxonomy.Label, doxPos map[int]bool) []Post {
	for i := 0; i < size; i++ {
		p := Post{ThreadID: id, Pos: i, ThreadSize: size}
		if label, ok := cthPos[i]; ok {
			p.IsCTH = true
			p.Label = label
		}
		if doxPos[i] {
			p.IsDox = true
		}
		posts = append(posts, p)
	}
	return posts
}

func TestPositions(t *testing.T) {
	var posts []Post
	label := taxonomy.NewLabel(taxonomy.SubRaiding)
	posts = buildThread(posts, "t1", 10, map[int]taxonomy.Label{0: label}, nil) // first
	posts = buildThread(posts, "t2", 10, map[int]taxonomy.Label{9: label}, nil) // last
	posts = buildThread(posts, "t3", 10, map[int]taxonomy.Label{4: label}, nil) // interior
	ps := Positions(posts, func(p *Post) bool { return p.IsCTH })
	if ps.N != 3 {
		t.Fatalf("N = %d", ps.N)
	}
	if ps.FirstCount != 1 || ps.LastCount != 1 {
		t.Errorf("first/last = %d/%d", ps.FirstCount, ps.LastCount)
	}
	if !almost(ps.FirstShare, 1.0/3) || !almost(ps.LastShare, 1.0/3) {
		t.Errorf("shares = %v/%v", ps.FirstShare, ps.LastShare)
	}
	// Positions 1-based: 1, 10, 5 -> median 5, mean 16/3.
	if ps.Median != 5 || !almost(ps.Mean, 16.0/3) {
		t.Errorf("median/mean = %v/%v", ps.Median, ps.Mean)
	}
}

func TestPositionsEmpty(t *testing.T) {
	ps := Positions(nil, func(p *Post) bool { return true })
	if ps.N != 0 || ps.FirstShare != 0 {
		t.Errorf("empty summary = %+v", ps)
	}
}

func TestResponseSizes(t *testing.T) {
	var posts []Post
	label := taxonomy.NewLabel(taxonomy.SubRaiding)
	posts = buildThread(posts, "t1", 10, map[int]taxonomy.Label{3: label}, nil)
	sizes := ResponseSizes(posts, func(p *Post) bool { return p.IsCTH })
	if len(sizes) != 1 || sizes[0] != 6 {
		t.Errorf("response sizes = %v, want [6]", sizes)
	}
}

func TestThreadSizes(t *testing.T) {
	var posts []Post
	label := taxonomy.NewLabel(taxonomy.SubRaiding)
	posts = buildThread(posts, "t1", 7, map[int]taxonomy.Label{1: label}, nil)
	posts = buildThread(posts, "t2", 3, nil, map[int]bool{0: true})
	got := ThreadSizes(posts, func(p *Post) bool { return p.IsCTH })
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("CTH thread sizes = %v", got)
	}
}

func TestCompareResponsesDetectsBoost(t *testing.T) {
	rng := randx.New(1)
	var posts []Post
	toxic := taxonomy.NewLabel(taxonomy.SubHateSpeech)
	raid := taxonomy.NewLabel(taxonomy.SubRaiding)
	var baseline []float64
	// Baseline threads: size ~20. Toxic threads: size ~60.
	for i := 0; i < 120; i++ {
		baseSize := 10 + rng.Intn(20)
		baseline = append(baseline, float64(baseSize))
		posts = buildThread(posts, fmt.Sprintf("toxic-%d", i), 40+rng.Intn(50), map[int]taxonomy.Label{1: toxic}, nil)
		posts = buildThread(posts, fmt.Sprintf("raid-%d", i), 10+rng.Intn(20), map[int]taxonomy.Label{1: raid}, nil)
	}
	rows := CompareResponses(posts, baseline, 0.1, 5)
	byAttack := map[taxonomy.Parent]AttackResponse{}
	for _, r := range rows {
		byAttack[r.Attack] = r
	}
	tox := byAttack[taxonomy.ToxicContent]
	if tox.Excluded {
		t.Fatal("toxic content excluded")
	}
	if !tox.Significant || tox.T <= 0 {
		t.Errorf("toxic content not significantly larger: %+v", tox)
	}
	ovr := byAttack[taxonomy.Overloading]
	if ovr.Excluded {
		t.Fatal("overloading excluded")
	}
	if ovr.Significant && ovr.T > 2 {
		t.Errorf("raiding should not show a large positive effect: %+v", ovr)
	}
	// Categories with no samples are excluded (paper excluded Lockout
	// and Surveillance).
	if !byAttack[taxonomy.Lockout].Excluded {
		t.Error("lockout with zero samples should be excluded")
	}
}

func TestCompareResponsesSingleCategoryOnly(t *testing.T) {
	var posts []Post
	multi := taxonomy.NewLabel(taxonomy.SubRaiding, taxonomy.SubMassFlagging)
	posts = buildThread(posts, "m", 30, map[int]taxonomy.Label{1: multi}, nil)
	rows := CompareResponses(posts, []float64{10, 12, 14, 16, 18, 20}, 0.1, 1)
	for _, r := range rows {
		if r.N != 0 {
			t.Errorf("multi-category CTH included in %s analysis", r.Attack)
		}
	}
}

func TestOverlap(t *testing.T) {
	var posts []Post
	label := taxonomy.NewLabel(taxonomy.SubDoxing)
	// Thread A: CTH + dox. Thread B: CTH only. Thread C: dox only.
	posts = buildThread(posts, "A", 10, map[int]taxonomy.Label{2: label}, map[int]bool{5: true})
	posts = buildThread(posts, "B", 10, map[int]taxonomy.Label{3: label}, nil)
	posts = buildThread(posts, "C", 10, nil, map[int]bool{1: true})
	st := Overlap(posts)
	if st.CTHDocs != 2 || st.DoxDocs != 2 {
		t.Fatalf("docs = %d/%d", st.CTHDocs, st.DoxDocs)
	}
	if st.CTHWithDoxInThread != 1 || st.DoxWithCTHInThread != 1 {
		t.Errorf("overlap = %d/%d", st.CTHWithDoxInThread, st.DoxWithCTHInThread)
	}
	if !almost(st.CTHShare, 0.5) || !almost(st.DoxShare, 0.5) {
		t.Errorf("shares = %v/%v", st.CTHShare, st.DoxShare)
	}
	if st.BothInOnePost != 0 {
		t.Errorf("BothInOnePost = %d", st.BothInOnePost)
	}
}

func TestOverlapDualPost(t *testing.T) {
	var posts []Post
	label := taxonomy.NewLabel(taxonomy.SubDoxing)
	posts = buildThread(posts, "D", 5, map[int]taxonomy.Label{2: label}, map[int]bool{2: true})
	st := Overlap(posts)
	if st.BothInOnePost != 1 {
		t.Errorf("BothInOnePost = %d, want 1", st.BothInOnePost)
	}
}

func TestRandomThreadRates(t *testing.T) {
	var posts []Post
	label := taxonomy.NewLabel(taxonomy.SubRaiding)
	posts = buildThread(posts, "1", 5, map[int]taxonomy.Label{0: label}, nil)
	for i := 2; i <= 10; i++ {
		posts = buildThread(posts, fmt.Sprintf("%d", i), 5, nil, nil)
	}
	cthRate, doxRate := RandomThreadRates(posts)
	if !almost(cthRate, 0.1) || doxRate != 0 {
		t.Errorf("rates = %v/%v", cthRate, doxRate)
	}
	c0, d0 := RandomThreadRates(nil)
	if c0 != 0 || d0 != 0 {
		t.Error("empty rates should be 0")
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
