package obs

// Snapshot encoders: a Prometheus text-format writer for scraping and a
// JSON writer for the CLI tools' final reports. Both render from the
// same Snapshot, so a scraped series and a printed report can never
// disagree about a value.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Float is a float64 whose JSON form survives NaN and infinities
// (encoding/json rejects them): non-finite values are encoded as the
// strings "NaN", "+Inf" and "-Inf", matching the Prometheus text
// spelling.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both the numeric
// and the string spellings.
func (f *Float) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	case `"+Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteProm writes the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// name, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WriteProm(w io.Writer) error {
	return writeProm(w, r.Snapshot())
}

func writeProm(w io.Writer, s Snapshot) error {
	var sb strings.Builder
	prev := ""
	for _, m := range s.Metrics {
		if m.Name != prev {
			prev = m.Name
			if m.Help != "" {
				fmt.Fprintf(&sb, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
			}
			fmt.Fprintf(&sb, "# TYPE %s %s\n", m.Name, m.Kind)
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				sb.WriteString(m.Name)
				sb.WriteString("_bucket")
				writeLabels(&sb, m.Labels, Label{Name: "le", Value: b.LE})
				fmt.Fprintf(&sb, " %d\n", b.Count)
			}
			sb.WriteString(m.Name)
			sb.WriteString("_sum")
			writeLabels(&sb, m.Labels)
			fmt.Fprintf(&sb, " %d\n", m.Sum)
			sb.WriteString(m.Name)
			sb.WriteString("_count")
			writeLabels(&sb, m.Labels)
			fmt.Fprintf(&sb, " %d\n", m.Count)
		default:
			sb.WriteString(m.Name)
			writeLabels(&sb, m.Labels)
			sb.WriteByte(' ')
			var v float64
			if m.Value != nil {
				v = float64(*m.Value)
			}
			sb.WriteString(formatValue(v))
			sb.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// formatValue renders a sample value; non-finite values use the text
// format's NaN/+Inf/-Inf spellings.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeLabels(sb *strings.Builder, labels []Label, extra ...Label) {
	if len(labels)+len(extra) == 0 {
		return
	}
	sb.WriteByte('{')
	first := true
	for _, l := range append(append([]Label(nil), labels...), extra...) {
		if !first {
			sb.WriteByte(',')
		}
		first = false
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(v[i])
		}
	}
	return sb.String()
}

// escapeHelp escapes HELP text: backslash and newline only (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
