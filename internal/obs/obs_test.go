package obs

import (
	"math"
	"testing"

	"harassrepro/internal/testutil"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "requests", L("route", "a"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.NewGauge("temp", "temperature")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge should hold +Inf, got %v", g.Value())
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "x", L("k", "v"))
	b := r.NewCounter("x_total", "ignored on re-registration", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.NewCounter("x_total", "x", L("k", "w"))
	if a == other {
		t.Fatal("different label values must be distinct instruments")
	}

	h1 := r.NewHistogram("lat", "latency", []int64{1, 2, 3})
	h2 := r.NewHistogram("lat", "latency", []int64{9, 99})
	if h1 != h2 {
		t.Fatal("histogram re-registration must return the original")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter's key must panic")
		}
	}()
	r.NewGauge("x_total", "x", L("k", "v"))
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_ns", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{-5, 0, 10, 11, 100, 500, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	if got := h.Count(); got != 9 {
		t.Fatalf("count = %d, want 9", got)
	}
	wantSum := int64(-5 + 0 + 10 + 11 + 100 + 500 + 1000 + 1001 + 1<<40)
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %d, want %d", got, wantSum)
	}
	// Bucket occupancy: (-inf,10] = 3, (10,100] = 2, (100,1000] = 2, +Inf = 2.
	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestDefaultBucketLayouts(t *testing.T) {
	for name, bounds := range map[string][]int64{"duration": DurationBuckets(), "size": SizeBuckets()} {
		if len(bounds) == 0 {
			t.Fatalf("%s buckets empty", name)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s buckets not strictly increasing at %d: %v", name, i, bounds)
			}
		}
	}
}

func TestSnapshotFind(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("b_total", "b").Add(2)
	r.NewCounter("a_total", "a", L("stage", "x")).Add(7)
	s := r.Snapshot()
	if len(s.Metrics) != 2 || s.Metrics[0].Name != "a_total" {
		t.Fatalf("snapshot not sorted by name: %+v", s.Metrics)
	}
	if got := s.CounterValue("a_total", L("stage", "x")); got != 7 {
		t.Fatalf("CounterValue = %v, want 7", got)
	}
	if got := s.CounterValue("missing_total"); got != 0 {
		t.Fatalf("missing counter = %v, want 0", got)
	}
	if _, ok := s.Find("a_total", L("stage", "y")); ok {
		t.Fatal("Find must not match different label values")
	}
}

func TestTracerDeterministicSampling(t *testing.T) {
	a := NewTracer(42, 0.25, 16)
	b := NewTracer(42, 0.25, 16)
	sampled := 0
	for i := 0; i < 1000; i++ {
		if a.Sampled(i) != b.Sampled(i) {
			t.Fatalf("sampling diverged at %d for equal seeds", i)
		}
		if a.Sampled(i) {
			sampled++
		}
	}
	if sampled < 150 || sampled > 350 {
		t.Fatalf("sampled %d of 1000 at rate 0.25", sampled)
	}
	c := NewTracer(43, 0.25, 16)
	diff := 0
	for i := 0; i < 1000; i++ {
		if a.Sampled(i) != c.Sampled(i) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical sample sets")
	}
	var nilTracer *Tracer
	if nilTracer.Sampled(0) {
		t.Fatal("nil tracer must sample nothing")
	}
	nilTracer.Record(0, "x", 1) // must not panic
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(1, 1, 4)
	for i := 0; i < 10; i++ {
		tr.Record(i, "stage", int64(i))
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	got := tr.Timings()
	if len(got) != 4 {
		t.Fatalf("retained %d, want 4", len(got))
	}
	for i, st := range got {
		if st.Doc != 6+i {
			t.Fatalf("ring order wrong: %+v", got)
		}
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 || slow[0].Nanos != 9 || slow[1].Nanos != 8 {
		t.Fatalf("slowest = %+v", slow)
	}
}

// TestMetricAllocs gates the hot-path mutations at zero allocations:
// the whole point of pre-registered handles is that observing never
// touches the heap.
func TestMetricAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	g := r.NewGauge("g", "g")
	h := r.NewHistogram("h_ns", "h", DurationBuckets())
	tr := NewTracer(7, 0.5, 64)
	tr.Record(0, "warm", 1)
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(3.5)
		g.Add(1)
		h.Observe(12345)
		if tr.Sampled(3) {
			tr.Record(3, "stage", 777)
		}
	}); n > 0 {
		t.Errorf("hot-path mutations allocate %v per op, want 0", n)
	}
}
