package obs

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzHistogramBucketIndex is the differential fuzz target for the
// histogram bucket-boundary math: on arbitrary (bounds, value) pairs
// the linear-scan bucketIndex must agree with a sort.Search reference
// and satisfy the bucket invariants the encoders rely on (cumulative
// monotonicity comes for free once placement is right).
//
// raw encodes the bounds as consecutive big-endian int64s; the fuzzer
// mutates byte order, duplicates and signs freely, and the target
// normalises to the strictly-increasing form NewHistogram enforces.
func FuzzHistogramBucketIndex(f *testing.F) {
	seed := func(vals []int64, v int64) {
		raw := make([]byte, 8*len(vals))
		for i, b := range vals {
			binary.BigEndian.PutUint64(raw[8*i:], uint64(b))
		}
		f.Add(raw, v)
	}
	seed([]int64{0}, 0)
	seed([]int64{10, 100, 1000}, 100)      // exact boundary hit
	seed([]int64{10, 100, 1000}, 101)      // just past a boundary
	seed([]int64{-5, 0, 5}, -6)            // below the lowest bound
	seed([]int64{1 << 62}, 1<<62+1)        // overflow bucket near the top
	seed(DurationBuckets(), 1500)          // the production layout
	seed([]int64{-1 << 63, 1<<63 - 1}, -1) // extreme int64 bounds
	seed([]int64{7, 7, 3}, 7)              // duplicates and disorder in raw form

	f.Fuzz(func(t *testing.T, raw []byte, v int64) {
		var bounds []int64
		for i := 0; i+8 <= len(raw) && len(bounds) < 64; i += 8 {
			bounds = append(bounds, int64(binary.BigEndian.Uint64(raw[i:])))
		}
		// Normalise to the strictly-increasing form the constructor
		// enforces.
		sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
		dst := bounds[:0]
		for i, b := range bounds {
			if i == 0 || b != dst[len(dst)-1] {
				dst = append(dst, b)
			}
		}
		bounds = dst
		if len(bounds) == 0 {
			return
		}

		i := bucketIndex(bounds, v)
		if i < 0 || i > len(bounds) {
			t.Fatalf("bucketIndex(%v, %d) = %d out of range", bounds, v, i)
		}
		if i < len(bounds) && v > bounds[i] {
			t.Fatalf("bucketIndex(%v, %d) = %d but v > bounds[i]", bounds, v, i)
		}
		if i > 0 && v <= bounds[i-1] {
			t.Fatalf("bucketIndex(%v, %d) = %d but v <= bounds[i-1]", bounds, v, i)
		}
		ref := sort.Search(len(bounds), func(j int) bool { return bounds[j] >= v })
		if i != ref {
			t.Fatalf("bucketIndex(%v, %d) = %d, sort.Search reference = %d", bounds, v, i, ref)
		}

		// End to end through a histogram: the observation must land in
		// exactly one bucket and cumulative counts must be monotone.
		r := NewRegistry()
		hist := r.NewHistogram("fuzz_ns", "fuzz", bounds)
		hist.Observe(v)
		if got := hist.Count(); got != 1 {
			t.Fatalf("count after one observation = %d", got)
		}
		s := r.Snapshot()
		m, ok := s.Find("fuzz_ns")
		if !ok {
			t.Fatal("histogram missing from snapshot")
		}
		var prev uint64
		for j, b := range m.Buckets {
			if b.Count < prev {
				t.Fatalf("cumulative counts not monotone at bucket %d: %+v", j, m.Buckets)
			}
			prev = b.Count
		}
		if m.Buckets[len(m.Buckets)-1].Count != 1 {
			t.Fatalf("+Inf bucket = %d, want 1", m.Buckets[len(m.Buckets)-1].Count)
		}
	})
}
