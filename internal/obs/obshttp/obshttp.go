// Package obshttp exposes an obs.Registry over HTTP for the CLI tools'
// -metrics-addr flag and the harassd scoring service: GET /metrics
// serves the Prometheus text format, GET /metrics.json the JSON
// snapshot, and the standard net/http/pprof endpoints are mounted under
// /debug/pprof/ so a long scoring run can be profiled in place. It
// lives in its own package so the metrics core stays free of any
// net/http linkage.
package obshttp

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"harassrepro/internal/obs"
)

// Handler returns the metrics-and-pprof mux over reg.
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint: Handler(reg) bound to a
// listener and served on a background goroutine until Close. Unlike a
// bare listener close, Close drains in-flight scrapes gracefully, so a
// Prometheus poll racing process exit sees a complete response instead
// of a reset connection.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine returns
}

// NewServer wraps h in an http.Server with the package's slowloris-safe
// timeouts: a client must deliver its request header within 10s and the
// whole request within 1m, responses (including long pprof profiles)
// must complete within 5m, and idle keep-alive connections are reaped
// after 2m. A long-lived process serving /metrics needs these bounds —
// without them one stalled scrape connection is held forever.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// Serve binds addr (":0" picks a free port) and serves Handler(reg) in
// the background until Close.
func Serve(addr string, reg *obs.Registry) (*Server, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler is Serve with a caller-supplied handler (typically
// Handler(reg) wrapped in extra routes).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: NewServer(h), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	}()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting connections and gracefully drains in-flight
// requests, bounded by ctx: on expiry the remaining connections are
// force-closed. It returns the shutdown error (nil when every in-flight
// request completed). Safe to call more than once.
func (s *Server) Close(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close() //nolint:errcheck // force-close after deadline
	}
	<-s.done
	return err
}

// CloseTimeout is Close with a fresh deadline of d, for exit paths that
// have no context to hand.
func (s *Server) CloseTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Close(ctx)
}
