// Package obshttp exposes an obs.Registry over HTTP for the CLI tools'
// -metrics-addr flag: GET /metrics serves the Prometheus text format,
// GET /metrics.json the JSON snapshot, and the standard net/http/pprof
// endpoints are mounted under /debug/pprof/ so a long scoring run can
// be profiled in place. It lives in its own package so the metrics core
// stays free of any net/http linkage.
package obshttp

import (
	"net"
	"net/http"
	"net/http/pprof"

	"harassrepro/internal/obs"
)

// Handler returns the metrics-and-pprof mux over reg.
func Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (":0" picks a free port) and serves Handler(reg) on
// a background goroutine for the life of the process. The returned
// listener reports the bound address; closing it stops the server.
func Serve(addr string, reg *obs.Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(reg)}
	go srv.Serve(ln) //nolint:errcheck // Serve returns when ln closes
	return ln, nil
}
