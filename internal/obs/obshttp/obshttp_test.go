package obshttp

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harassrepro/internal/obs"
)

func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.NewCounter("pipeline_items_total", "items", obs.L("status", "ok")).Add(7)
	r.NewHistogram("stage_latency_ns", "latency", []int64{1000}, obs.L("stage", "score")).Observe(500)
	return r
}

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestHandlerServesPromAndJSON(t *testing.T) {
	srv := httptest.NewServer(Handler(testRegistry()))
	defer srv.Close()

	body, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		`pipeline_items_total{status="ok"} 7`,
		`stage_latency_ns_bucket{stage="score",le="1000"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, resp = get(t, srv, "/metrics.json")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not a snapshot: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Errorf("snapshot has %d metrics, want 2", len(snap.Metrics))
	}

	body, resp = get(t, srv, "/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	s, err := Serve("127.0.0.1:0", testRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer s.CloseTimeout(2 * time.Second)
	resp, err := http.Get("http://" + s.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "pipeline_items_total") {
		t.Errorf("served metrics missing counter:\n%s", body)
	}
	if s.srv.ReadHeaderTimeout == 0 || s.srv.WriteTimeout == 0 {
		t.Error("server is missing slowloris timeouts")
	}
}

func TestCloseDrainsInFlightScrape(t *testing.T) {
	// A scrape racing Close must receive its complete response: Close is
	// a graceful drain, not a listener hard-abort.
	reg := testRegistry()
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		reg.WriteProm(w) //nolint:errcheck
	}))
	s, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr().String() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{body: string(body), err: err}
	}()

	<-started
	closed := make(chan error, 1)
	go func() { closed <- s.CloseTimeout(5 * time.Second) }()
	// Give Close a moment to begin shutting down, then let the handler
	// finish writing.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-closed; err != nil {
		t.Fatalf("Close = %v, want clean drain", err)
	}
	sc := <-got
	if sc.err != nil {
		t.Fatalf("in-flight scrape aborted: %v", sc.err)
	}
	if !strings.Contains(sc.body, "pipeline_items_total") {
		t.Errorf("drained scrape incomplete:\n%s", sc.body)
	}

	// Repeated Close is safe, and the port is released.
	if err := s.CloseTimeout(time.Second); err != nil {
		t.Errorf("second Close = %v", err)
	}
	if _, err := http.Get("http://" + s.Addr().String() + "/metrics"); err == nil {
		t.Error("server still accepting after Close")
	}
}
