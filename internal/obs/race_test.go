package obs

// Concurrency hammer tests, run under -race in scripts/check.sh: many
// writers mutating shared instruments while a reader snapshots, then an
// exact-total check once the writers have joined. The registry's
// correctness claim is precisely this pair: concurrent mutation is
// always safe, and quiescent reads are exact.

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryConcurrentMutationVsSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("hammer_total", "hammer")
	g := r.NewGauge("hammer_gauge", "hammer")
	h := r.NewHistogram("hammer_ns", "hammer", []int64{10, 100, 1000})

	const (
		writers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Reader: snapshot and encode continuously while writers run.
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			if len(s.Metrics) != 3 {
				t.Errorf("snapshot saw %d metrics, want 3", len(s.Metrics))
				return
			}
			var sb strings.Builder
			if err := writeProm(&sb, s); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 2000))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	if got := c.Value(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := g.Value(); got != float64(writers*perG) {
		t.Errorf("gauge = %v, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	var wantSum int64
	for i := 0; i < perG; i++ {
		wantSum += int64(i % 2000)
	}
	wantSum *= writers
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %d, want %d", got, wantSum)
	}
}

func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	counters := make([]*Counter, writers)
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			// Every goroutine registers the same instrument and a
			// private one, then mutates both.
			shared := r.NewCounter("shared_total", "shared")
			counters[w] = shared
			own := r.NewCounter("own_total", "own", L("w", string(rune('a'+w))))
			for i := 0; i < 1000; i++ {
				shared.Inc()
				own.Inc()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < writers; w++ {
		if counters[w] != counters[0] {
			t.Fatal("concurrent registration returned distinct instruments for one key")
		}
	}
	if got := counters[0].Value(); got != writers*1000 {
		t.Errorf("shared counter = %d, want %d", got, writers*1000)
	}
	s := r.Snapshot()
	if len(s.Metrics) != writers+1 {
		t.Errorf("snapshot has %d metrics, want %d", len(s.Metrics), writers+1)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(11, 1, 128)
	const writers = 8
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if tr.Sampled(i) {
					tr.Record(i, "stage", int64(i))
				}
				_ = tr.Timings()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != writers*1000 {
		t.Errorf("tracer total = %d, want %d", got, writers*1000)
	}
	if got := len(tr.Timings()); got != 128 {
		t.Errorf("retained %d timings, want full ring of 128", got)
	}
}
