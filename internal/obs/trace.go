package obs

import (
	"sort"
	"sync"

	"harassrepro/internal/randx"
)

// StageTiming is one recorded stage execution of one sampled document.
type StageTiming struct {
	// Doc is the document's index in the input stream.
	Doc int `json:"doc"`
	// Stage is the pipeline stage name.
	Stage string `json:"stage"`
	// Nanos is the measured stage duration.
	Nanos int64 `json:"nanos"`
}

// Tracer keeps a ring buffer of recent per-document stage timings for a
// deterministically sampled subset of documents. Whether a document is
// sampled is a pure function of (seed, document index) — the same
// derivation discipline as retry jitter and chaos injection — so the
// sampled set is identical across runs, worker counts and injected
// faults, and a trace from a chaotic run can be diffed against the same
// documents in a clean run.
//
// Sampled is lock-free and allocation-free, so the hot path pays one
// hash per (stage, document) to learn that a document is not sampled.
// Record takes a mutex, but only sampled documents reach it.
type Tracer struct {
	rate float64
	base randx.Source

	mu    sync.Mutex
	ring  []StageTiming
	next  int
	total uint64
}

// NewTracer returns a tracer sampling documents with probability rate,
// keeping the most recent capacity timings. rate <= 0 disables
// sampling; capacity <= 0 defaults to 256.
func NewTracer(seed uint64, rate float64, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		rate: rate,
		base: *randx.New(seed).Split("trace"),
		ring: make([]StageTiming, 0, capacity),
	}
}

// Sampled reports whether the document at index is in the sampled set.
// Safe for concurrent use; nil-safe (a nil tracer samples nothing).
func (t *Tracer) Sampled(index int) bool {
	if t == nil || t.rate <= 0 {
		return false
	}
	rng := t.base.SplitNVal("doc", index)
	return rng.Float64() < t.rate
}

// Record stores one stage timing, evicting the oldest entry once the
// ring is full. Callers should gate on Sampled; Record itself does not
// re-check. Nil-safe no-op.
func (t *Tracer) Record(index int, stage string, nanos int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, StageTiming{Doc: index, Stage: stage, Nanos: nanos})
	} else {
		t.ring[t.next] = StageTiming{Doc: index, Stage: stage, Nanos: nanos}
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many timings were recorded over the tracer's
// lifetime (including evicted ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Timings returns a copy of the retained timings, oldest first.
func (t *Tracer) Timings() []StageTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageTiming, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Slowest returns up to n retained timings sorted by descending
// duration — the "what was slow recently" view the CLI report prints.
func (t *Tracer) Slowest(n int) []StageTiming {
	out := t.Timings()
	sort.Slice(out, func(i, j int) bool { return out[i].Nanos > out[j].Nanos })
	if n < len(out) {
		out = out[:n]
	}
	return out
}
