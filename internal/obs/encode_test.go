package obs

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with one of everything, with fixed
// values, shared by the JSON golden test and the text-encoder tests.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.NewCounter("pipeline_items_total", "items completed, by outcome", L("status", "ok")).Add(40)
	r.NewCounter("pipeline_items_total", "items completed, by outcome", L("status", "quarantined")).Add(2)
	r.NewGauge("pipeline_last_run_docs_per_sec", "throughput of the last completed run").Set(1234.5)
	h := r.NewHistogram("stage_latency_ns", "per-attempt stage latency", []int64{1000, 10000, 100000}, L("stage", "score-cth"))
	for _, v := range []int64{500, 1500, 1500, 50000, 2000000} {
		h.Observe(v)
	}
	return r
}

func TestSnapshotJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	golden := filepath.Join("testdata", "snapshot.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("JSON snapshot drifted from golden file (run with UPDATE_GOLDEN=1 to refresh):\n%s", got)
	}
}

func TestWritePromTable(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Registry
		want  []string // every line must appear in the output
		exact string   // when non-empty, the output must equal this
	}{
		{
			name:  "empty registry",
			build: NewRegistry,
			exact: "",
		},
		{
			name: "counter with escaped label",
			build: func() *Registry {
				r := NewRegistry()
				r.NewCounter("hits_total", "hits", L("path", "a\\b\"c\nd")).Add(3)
				return r
			},
			want: []string{
				"# HELP hits_total hits",
				"# TYPE hits_total counter",
				`hits_total{path="a\\b\"c\nd"} 3`,
			},
		},
		{
			name: "help with newline and backslash",
			build: func() *Registry {
				r := NewRegistry()
				r.NewCounter("x_total", "line1\nline2 \\ slash").Inc()
				return r
			},
			want: []string{`# HELP x_total line1\nline2 \\ slash`},
		},
		{
			name: "gauge NaN and infinities",
			build: func() *Registry {
				r := NewRegistry()
				r.NewGauge("g_nan", "n").Set(math.NaN())
				r.NewGauge("g_pinf", "p").Set(math.Inf(1))
				r.NewGauge("g_ninf", "m").Set(math.Inf(-1))
				return r
			},
			want: []string{"g_nan NaN", "g_pinf +Inf", "g_ninf -Inf"},
		},
		{
			name: "histogram cumulative buckets",
			build: func() *Registry {
				r := NewRegistry()
				h := r.NewHistogram("lat_ns", "latency", []int64{10, 100}, L("stage", "s"))
				for _, v := range []int64{5, 50, 5000} {
					h.Observe(v)
				}
				return r
			},
			want: []string{
				"# TYPE lat_ns histogram",
				`lat_ns_bucket{stage="s",le="10"} 1`,
				`lat_ns_bucket{stage="s",le="100"} 2`,
				`lat_ns_bucket{stage="s",le="+Inf"} 3`,
				`lat_ns_sum{stage="s"} 5055`,
				`lat_ns_count{stage="s"} 3`,
			},
		},
		{
			name: "one header per metric name across label sets",
			build: func() *Registry {
				r := NewRegistry()
				r.NewCounter("multi_total", "m", L("k", "a")).Add(1)
				r.NewCounter("multi_total", "m", L("k", "b")).Add(2)
				return r
			},
			exact: "# HELP multi_total m\n# TYPE multi_total counter\n" +
				"multi_total{k=\"a\"} 1\nmulti_total{k=\"b\"} 2\n",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if err := c.build().WriteProm(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if c.exact != "" || len(c.want) == 0 {
				if out != c.exact {
					t.Fatalf("output = %q, want %q", out, c.exact)
				}
				return
			}
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

func TestFloatJSONRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -3, math.NaN(), math.Inf(1), math.Inf(-1)} {
		in := Float(v)
		data, err := in.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var out Float
		if err := out.UnmarshalJSON(data); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(float64(out)) {
				t.Fatalf("NaN round-tripped to %v", out)
			}
			continue
		}
		if float64(out) != v {
			t.Fatalf("%v round-tripped to %v via %s", v, out, data)
		}
	}
}
