// Package obs is the observability core for the streaming measurement
// pipeline: allocation-free counters, gauges and fixed-bucket
// histograms behind a snapshot-on-read registry, plus a deterministic
// stage tracer (trace.go) and Prometheus/JSON encoders (encode.go).
//
// The paper's measurement system is judged by what it can account
// for — per-platform volumes, filter hit rates, queue health — and a
// production deployment of the reproduction needs the same
// introspection without perturbing the hot path it observes. Every
// mutation here is a single atomic operation on a pre-registered
// handle: registration (NewCounter, NewHistogram, ...) allocates and
// takes a lock exactly once, after which Inc/Add/Set/Observe are
// lock-free and allocation-free and safe for any number of concurrent
// writers. Snapshot reads the atomics into plain values without
// stopping writers; totals read after all writers have finished are
// exact (the race tests pin this).
//
// The package depends only on the standard library and randx (for the
// tracer's seeded sampling); it must never grow a dependency on the
// pipeline packages it observes.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Name: "stage", Value: "score-cth"}.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is
// usable, but counters obtained from a Registry are what Snapshot and
// the encoders see.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down (stored as IEEE bits in a
// uint64). NaN and infinities are representable; the encoders render
// them per Prometheus conventions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v with a CAS loop.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram over int64 observations
// (typically nanoseconds or byte sizes). Bounds are inclusive upper
// bounds in strictly increasing order; one implicit overflow bucket
// (+Inf) follows the last bound. Observe is lock-free: one atomic add
// into the bucket and one into the running sum.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketIndex(h.bounds, v)].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketIndex returns the index of the bucket v falls into: the first
// bound >= v, or len(bounds) for the overflow bucket. bounds must be
// strictly increasing. Linear scan: bucket lists are short (tens of
// entries) and the loop is branch-predictable, which beats binary
// search at this size; the fuzz target holds it equal to the
// sort.Search reference on arbitrary bounds.
func bucketIndex(bounds []int64, v int64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// DurationBuckets is the default latency bucket layout in nanoseconds:
// 1µs to 10s in 1-2-5 steps — wide enough for a regex stage and a
// retried remote call alike.
func DurationBuckets() []int64 {
	var out []int64
	for _, scale := range []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9} {
		out = append(out, scale, 2*scale, 5*scale)
	}
	return append(out, 1e10)
}

// SizeBuckets is the default size bucket layout: 64 bytes to 16MB in
// powers of four.
func SizeBuckets() []int64 {
	var out []int64
	for b := int64(64); b <= 16<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (m *metric) kind() string {
	switch {
	case m.c != nil:
		return "counter"
	case m.g != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds registered metrics. Registration is idempotent: asking
// for the same (name, labels) again returns the same instrument, so
// independent subsystems can share a registry without coordination.
// Asking for the same key as a different kind panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	order []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*metric{}}
}

// key builds the registration key. Label order is significant by
// design: callers register each metric from one place.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte(0xff)
		sb.WriteString(l.Name)
		sb.WriteByte(0xfe)
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func (r *Registry) register(name, help string, labels []Label, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := key(name, labels)
	if m, ok := r.byKey[k]; ok {
		return m
	}
	m := build()
	m.name, m.help = name, help
	m.labels = append([]Label(nil), labels...)
	r.byKey[k] = m
	r.order = append(r.order, m)
	return m
}

// NewCounter registers (or returns the existing) counter.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, labels, func() *metric { return &metric{c: &Counter{}} })
	if m.c == nil {
		panic(fmt.Sprintf("obs: %s already registered as a %s", name, m.kind()))
	}
	return m.c
}

// NewGauge registers (or returns the existing) gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, labels, func() *metric { return &metric{g: &Gauge{}} })
	if m.g == nil {
		panic(fmt.Sprintf("obs: %s already registered as a %s", name, m.kind()))
	}
	return m.g
}

// NewHistogram registers (or returns the existing) histogram with the
// given inclusive upper bounds, which must be strictly increasing and
// non-empty. A re-registration ignores the passed bounds and returns
// the original instrument.
func (r *Registry) NewHistogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	m := r.register(name, help, labels, func() *metric {
		if len(bounds) == 0 {
			panic("obs: histogram " + name + " needs at least one bucket bound")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %s bounds not strictly increasing at %d", name, i))
			}
		}
		h := &Histogram{bounds: append([]int64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		return &metric{h: h}
	})
	if m.h == nil {
		panic(fmt.Sprintf("obs: %s already registered as a %s", name, m.kind()))
	}
	return m.h
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the inclusive upper bound as a decimal string, or "+Inf"
	// for the overflow bucket.
	LE string `json:"le"`
	// Count is the cumulative count of observations <= LE.
	Count uint64 `json:"count"`
}

// Metric is one instrument's state in a snapshot.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Help    string   `json:"help,omitempty"`
	Labels  []Label  `json:"labels,omitempty"`
	Value   *Float   `json:"value,omitempty"` // counter, gauge
	Count   uint64   `json:"count,omitempty"` // histogram
	Sum     int64    `json:"sum,omitempty"`   // histogram
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time read of a registry, sorted by metric name
// then labels for deterministic output.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot reads every registered instrument. Writers are not stopped:
// values read while writers are active may lag each other by in-flight
// operations, but a snapshot taken after all writers finished is exact.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()

	out := Snapshot{Metrics: make([]Metric, 0, len(metrics))}
	for _, m := range metrics {
		ms := Metric{Name: m.name, Kind: m.kind(), Help: m.help, Labels: m.labels}
		switch {
		case m.c != nil:
			v := Float(m.c.Value())
			ms.Value = &v
		case m.g != nil:
			v := Float(m.g.Value())
			ms.Value = &v
		case m.h != nil:
			var cum uint64
			for i := range m.h.counts {
				cum += m.h.counts[i].Load()
				le := "+Inf"
				if i < len(m.h.bounds) {
					le = fmt.Sprintf("%d", m.h.bounds[i])
				}
				ms.Buckets = append(ms.Buckets, Bucket{LE: le, Count: cum})
			}
			ms.Count = cum
			ms.Sum = m.h.Sum()
		}
		out.Metrics = append(out.Metrics, ms)
	}
	sort.SliceStable(out.Metrics, func(i, j int) bool {
		a, b := out.Metrics[i], out.Metrics[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return labelString(a.Labels) < labelString(b.Labels)
	})
	return out
}

func labelString(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(',')
	}
	return sb.String()
}

func matchLabels(have []Label, want []Label) bool {
	if len(have) != len(want) {
		return false
	}
	for i := range have {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}

// Find returns the snapshot entry for (name, labels), if present.
func (s Snapshot) Find(name string, labels ...Label) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && matchLabels(m.Labels, labels) {
			return m, true
		}
	}
	return Metric{}, false
}

// CounterValue returns the value of a counter (or gauge) in the
// snapshot, or 0 when absent — convenient for reconciliation checks
// where an unregistered counter means zero events.
func (s Snapshot) CounterValue(name string, labels ...Label) float64 {
	m, ok := s.Find(name, labels...)
	if !ok || m.Value == nil {
		return 0
	}
	return float64(*m.Value)
}
