// Package query implements the conjunctive keyword-query engine used to
// bootstrap the call-to-harassment annotation pool (§5.1). It evaluates
// SQL-like queries of the form used in Figure 4: a disjunctive clause of
// mobilizing-language phrases AND a disjunctive subclause of in-group
// versus target language, each term matched case-insensitively against
// the document body (the REGEXP_CONTAINS(LOWER(body), '\Q...\E')
// semantics of the original BigQuery query: literal substring matching
// over the lowercased text).
package query

import (
	"strings"
)

// Clause is a disjunction of literal phrases: it matches a document when
// any phrase occurs as a substring of the lowercased body.
type Clause []string

// Match reports whether the clause matches the lowercased body.
func (c Clause) Match(lowerBody string) bool {
	for _, phrase := range c {
		if strings.Contains(lowerBody, strings.ToLower(phrase)) {
			return true
		}
	}
	return false
}

// Query is a conjunction of clauses: a document matches when every
// clause matches.
type Query struct {
	Clauses []Clause
}

// Match reports whether the document body matches the query. The body is
// padded with a leading space so that the Figure 4 phrases' leading-space
// word anchors also match at the start of a document.
func (q Query) Match(body string) bool {
	lower := " " + strings.ToLower(body)
	for _, c := range q.Clauses {
		if !c.Match(lower) {
			return false
		}
	}
	return len(q.Clauses) > 0
}

// Select returns the indices of the bodies matching the query, in order.
func (q Query) Select(bodies []string) []int {
	var out []int
	for i, b := range bodies {
		if q.Match(b) {
			out = append(out, i)
		}
	}
	return out
}

// Figure4 returns the exact seed query from the paper's appendix: a
// mobilizing-language clause AND an in-group-versus-target subclause.
func Figure4() Query {
	return Query{Clauses: []Clause{
		{ // First clause: contains mobilizing language.
			" we need to", " we should", " lets", " we have", " we will", " we",
		},
		{ // Subclause: in-group mobilizing language vs target.
			" them", " him", " her", " all", " entire",
		},
	}}
}

// WithAttackTerms narrows a query with a third clause of call-to-
// harassment terms ("a clause for specific text related to calls to
// harassment, such as 'doxxing', 'raiding', and 'reporting'", §5.1).
func WithAttackTerms(q Query, terms ...string) Query {
	if len(terms) == 0 {
		terms = []string{"dox", "raid", "report", "spam", "flag", "brigade", "swat"}
	}
	out := Query{Clauses: append([]Clause(nil), q.Clauses...)}
	out.Clauses = append(out.Clauses, Clause(terms))
	return out
}
