package query

import (
	"reflect"
	"testing"

	"harassrepro/internal/corpus"
	"harassrepro/internal/randx"
	"harassrepro/internal/synth"
	"harassrepro/internal/taxonomy"
)

func TestClauseMatch(t *testing.T) {
	c := Clause{"we should", "lets"}
	if !c.Match("i think we should go") {
		t.Error("clause should match")
	}
	if c.Match("nothing here") {
		t.Error("clause should not match")
	}
	if (Clause{}).Match("anything") {
		t.Error("empty clause matches nothing")
	}
}

func TestQueryConjunction(t *testing.T) {
	q := Query{Clauses: []Clause{{"alpha"}, {"beta"}}}
	if !q.Match("alpha and beta") {
		t.Error("both clauses present should match")
	}
	if q.Match("alpha only") || q.Match("beta only") {
		t.Error("single clause should not match")
	}
	if (Query{}).Match("anything") {
		t.Error("empty query matches nothing")
	}
}

func TestQueryCaseInsensitive(t *testing.T) {
	q := Query{Clauses: []Clause{{"We Should"}}}
	if !q.Match("WE SHOULD ALL GO") {
		t.Error("matching must be case-insensitive")
	}
}

func TestSelect(t *testing.T) {
	q := Query{Clauses: []Clause{{"x"}}}
	got := q.Select([]string{"has x", "nope", "x again"})
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Select = %v", got)
	}
	if got := q.Select(nil); got != nil {
		t.Errorf("empty Select = %v", got)
	}
}

func TestFigure4MatchesPaperExample(t *testing.T) {
	q := Figure4()
	positives := []string{
		"I think we should report him to the platform",
		"ok so we need to find them all",
		"soon we will get her address",
	}
	for _, p := range positives {
		if !q.Match(p) {
			t.Errorf("Figure4 should match %q", p)
		}
	}
	negatives := []string{
		"the weather is nice today",
		"report generated successfully", // no mobilizing clause, no pronoun
	}
	for _, n := range negatives {
		if q.Match(n) {
			t.Errorf("Figure4 should not match %q", n)
		}
	}
}

func TestFigure4RecallOnGeneratedCTH(t *testing.T) {
	// The seed query must recall a substantial share of generated calls
	// to harassment — that is its role in the pipeline (it seeds the
	// first annotation round; the paper ran it over the board data).
	// Neutral-pronoun incitements ("them/their") hit the query's
	// subclause; male-possessive-only texts ("his") are an authentic
	// blind spot of the verbatim Figure 4 clauses.
	rng := randx.New(3)
	hits, total := 0, 300
	for i := 0; i < total; i++ {
		p := synth.NewPersona(rng.SplitN("p", i))
		text := synth.CTH(p, []taxonomy.Sub{taxonomy.SubReportingMisc}, synth.NeutralPronouns, rng)
		if Figure4().Match(text) {
			hits++
		}
	}
	if hits < total*3/4 {
		t.Errorf("Figure4 recalled %d/%d neutral-pronoun CTH", hits, total)
	}
}

func TestFigure4PrecisionIsImperfect(t *testing.T) {
	// The query is recall-oriented: benign mobilizing chatter also
	// matches (that is why the pool then gets annotated). Confirm it is
	// not a classifier: some benign texts match.
	q := Figure4()
	if !q.Match("we should all get lunch, tell them to meet at noon") {
		t.Error("benign mobilizing text should match the recall-oriented query")
	}
}

func TestWithAttackTerms(t *testing.T) {
	q := WithAttackTerms(Figure4())
	if !q.Match("we should mass report him today") {
		t.Error("attack-term query should match reporting CTH")
	}
	if q.Match("we should all get lunch, tell them to meet at noon") {
		t.Error("attack-term clause should filter benign mobilizing chatter")
	}
	custom := WithAttackTerms(Figure4(), "zoombomb")
	if !custom.Match("ok we will zoombomb her lecture") {
		t.Error("custom attack term should match")
	}
	if custom.Match("we should report him") {
		t.Error("custom term query should not match other attacks")
	}
}

func TestQueryOverGeneratedCorpus(t *testing.T) {
	g := corpus.NewGenerator(corpus.Config{Seed: 5, VolumeScale: 100_000, PositiveScale: 50})
	boards := g.Generate()[corpus.Boards]
	q := Figure4()
	narrow := WithAttackTerms(Figure4())
	var matchedCTH, totalCTH, matchedBenign, totalBenign, narrowBenign int
	for i := range boards.Docs {
		d := &boards.Docs[i]
		m := q.Match(d.Text)
		if d.Truth.IsCTH {
			totalCTH++
			if m {
				matchedCTH++
			}
		} else {
			totalBenign++
			if m {
				matchedBenign++
			}
			if narrow.Match(d.Text) {
				narrowBenign++
			}
		}
	}
	if totalCTH == 0 {
		t.Fatal("no CTH generated")
	}
	// The seed query is recall-oriented but imperfect (it misses, e.g.,
	// male-possessive-only texts, as the verbatim Figure 4 clauses do).
	if matchedCTH*3 < totalCTH {
		t.Errorf("query recall too low: %d/%d", matchedCTH, totalCTH)
	}
	if matchedBenign*2 > totalBenign {
		t.Errorf("query matched too much benign text: %d/%d", matchedBenign, totalBenign)
	}
	// The attack-term variant still matches some benign mobilizing
	// chatter: the seed pool needs negative examples to annotate (the
	// paper's pool was 947 positive / 424 negative).
	if narrowBenign == 0 {
		t.Error("attack-term query matched no benign text; seed pool would have no negatives")
	}
}

func BenchmarkFigure4(b *testing.B) {
	q := WithAttackTerms(Figure4())
	body := "this one has been asking for it. we need to mass-report his twitter and youtube. spread the word"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Match(body)
	}
}
