// Package graph is a memoized artifact graph for deterministic
// pipelines. Each pipeline stage is a named node with declared
// dependencies and a compute function; the first Get computes the
// artifact (resolving dependencies recursively) and every later Get —
// from any goroutine — returns the memoized result. Concurrent callers
// of an in-flight node block on its latch rather than recomputing, so
// each artifact is computed exactly once per graph no matter how many
// stages or experiments declare it as an input.
//
// Determinism contract: a node's compute function must derive all of
// its randomness from a pure randx split keyed by the stage name (never
// a shared sequential rng), so its output is a function of the graph
// key (stage, seed, config fingerprint) alone. Under that discipline
// memoization and concurrent scheduling are unobservable in outputs.
//
// Scheduling is delegated to resilience.Runner (bounded workers, panic
// isolation, dead-letter reporting): Prefetch fans independent nodes
// out across the pool while dependency order is enforced by the nodes'
// own latches. Per-stage obs metrics record computes (cache misses),
// hits, and compute latency.
package graph

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
)

// Config configures a Graph.
type Config struct {
	// Seed is the pipeline seed; part of every node's memoization key.
	Seed uint64
	// Fingerprint identifies the pipeline configuration (use
	// Fingerprint); part of every node's memoization key.
	Fingerprint string
	// Metrics, if set, receives graph_stage_computes_total,
	// graph_stage_hits_total and graph_stage_compute_ns per stage.
	Metrics *obs.Registry
	// Workers bounds Prefetch's worker pool. 0 means GOMAXPROCS.
	Workers int
	// NoMemo disables memoization for nodes registered with
	// RegisterDerived: every Get recomputes them, reproducing the
	// pre-graph monolith's recompute-per-caller behavior for
	// benchmarking. Nodes registered with Register stay memoized (the
	// monolith computed those exactly once per run too). Concurrent use
	// is not supported in this mode.
	NoMemo bool
}

// Fingerprint returns a short stable hash of the value's %+v rendering,
// for use as a Config.Fingerprint over flat config structs.
func Fingerprint(v any) string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range []byte(fmt.Sprintf("%+v", v)) {
		h ^= uint64(b)
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

type nodeState int

const (
	idle nodeState = iota
	running
	done
)

// node is one registered stage.
type node struct {
	name    string
	deps    []string
	fn      func() (any, error)
	derived bool

	mu    sync.Mutex
	state nodeState
	latch chan struct{} // closed when state becomes done
	val   any
	err   error

	computes uint64 // cache misses (fn invocations), guarded by mu
	hits     uint64 // memoized Gets, guarded by mu

	mComputes *obs.Counter
	mHits     *obs.Counter
	mLatency  *obs.Histogram
}

// Graph is a set of registered nodes. Registration is not safe for
// concurrent use; Get and Prefetch are.
type Graph struct {
	cfg   Config
	nodes map[string]*node
	order []string // registration order (topological by construction)
}

// New returns an empty graph.
func New(cfg Config) *Graph {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Graph{cfg: cfg, nodes: map[string]*node{}}
}

// Register adds a named node. Dependencies must already be registered —
// the rule that keeps the graph acyclic by construction — and names
// must be unique; violations panic, since registration happens in
// static pipeline-definition code.
func (g *Graph) Register(name string, deps []string, fn func() (any, error)) {
	g.register(name, deps, fn, false)
}

// RegisterDerived registers a node like Register, but marks it as a
// derived artifact — one the monolithic pipeline recomputed in every
// caller. Config.NoMemo disables memoization for derived nodes only,
// restoring that behavior for before/after benchmarking; a NoMemo Get
// of a derived node also skips declared-dependency resolution (its
// dependencies are pipeline stages the run already materialized).
func (g *Graph) RegisterDerived(name string, deps []string, fn func() (any, error)) {
	g.register(name, deps, fn, true)
}

func (g *Graph) register(name string, deps []string, fn func() (any, error), derived bool) {
	if _, ok := g.nodes[name]; ok {
		panic(fmt.Sprintf("graph: duplicate node %q", name))
	}
	for _, d := range deps {
		if _, ok := g.nodes[d]; !ok {
			panic(fmt.Sprintf("graph: node %q depends on unregistered %q", name, d))
		}
	}
	n := &node{name: name, deps: append([]string(nil), deps...), fn: fn, derived: derived, latch: make(chan struct{})}
	if r := g.cfg.Metrics; r != nil {
		lbl := obs.L("stage", name)
		n.mComputes = r.NewCounter("graph_stage_computes_total", "artifact computations (cache misses) per stage", lbl)
		n.mHits = r.NewCounter("graph_stage_hits_total", "memoized artifact reads per stage", lbl)
		n.mLatency = r.NewHistogram("graph_stage_compute_ns", "artifact compute latency", obs.DurationBuckets(), lbl)
	}
	g.nodes[name] = n
	g.order = append(g.order, name)
}

// Key returns the node's deterministic memoization key:
// name@seed+config-fingerprint. Two graphs agree on a key exactly when
// the node would compute the identical artifact.
func (g *Graph) Key(name string) string {
	return fmt.Sprintf("%s@%d+%s", name, g.cfg.Seed, g.cfg.Fingerprint)
}

// Nodes returns all node names in registration (topological) order.
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.order...)
}

// Get returns the node's artifact, computing it on first use. If
// another goroutine is already computing the node, Get blocks until
// that computation finishes and returns its memoized result — waiting
// only ever targets an actively running computation, so bounded worker
// pools calling into Get cannot deadlock. A compute panic is captured
// as the node's memoized error (every waiter sees it; nothing hangs).
func (g *Graph) Get(name string) (any, error) {
	n := g.nodes[name]
	if n == nil {
		return nil, fmt.Errorf("graph: unknown node %q", name)
	}
	if g.cfg.NoMemo && n.derived {
		n.mu.Lock()
		n.computes++
		n.mu.Unlock()
		return g.computeNode(n)
	}
	n.mu.Lock()
	switch n.state {
	case done:
		n.hits++
		n.mu.Unlock()
		if n.mHits != nil {
			n.mHits.Inc()
		}
		return n.val, n.err
	case running:
		n.hits++
		n.mu.Unlock()
		if n.mHits != nil {
			n.mHits.Inc()
		}
		<-n.latch
		return n.val, n.err
	}
	n.state = running
	n.computes++
	n.mu.Unlock()

	val, err := g.runNode(n)

	n.mu.Lock()
	n.val, n.err = val, err
	n.state = done
	n.mu.Unlock()
	close(n.latch)
	return val, err
}

// runNode resolves the node's declared dependencies (each a memoized
// Get, so a fn may rely on its inputs being materialized even if it
// never calls Get itself), then invokes the compute function with
// panic capture and latency metrics.
func (g *Graph) runNode(n *node) (val any, err error) {
	if err := g.resolveDeps(n); err != nil {
		return nil, err
	}
	return g.computeNode(n)
}

// computeNode invokes fn without dependency resolution (the NoMemo
// derived path, where dependencies are already materialized).
func (g *Graph) computeNode(n *node) (val any, err error) {
	start := time.Now()
	defer func() {
		if n.mLatency != nil {
			n.mLatency.Observe(time.Since(start).Nanoseconds())
		}
		if r := recover(); r != nil {
			err = fmt.Errorf("graph: stage %s panicked: %v", n.name, r)
		}
	}()
	if n.mComputes != nil {
		n.mComputes.Inc()
	}
	return n.fn()
}

// GetAs returns the node's artifact asserted to type T.
func GetAs[T any](g *Graph, name string) (T, error) {
	v, err := g.Get(name)
	if err != nil {
		var zero T
		return zero, err
	}
	t, ok := v.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("graph: node %q holds %T, not %T", name, v, zero)
	}
	return t, nil
}

// StageStat is one node's cache accounting.
type StageStat struct {
	Name     string
	Computes uint64 // fn invocations (cache misses)
	Hits     uint64 // memoized reads
}

// Stats returns per-node compute/hit counts in registration order.
func (g *Graph) Stats() []StageStat {
	out := make([]StageStat, 0, len(g.order))
	for _, name := range g.order {
		n := g.nodes[name]
		n.mu.Lock()
		out = append(out, StageStat{Name: name, Computes: n.computes, Hits: n.hits})
		n.mu.Unlock()
	}
	return out
}

// resolveDeps materializes the node's declared dependencies (each a
// memoized Get), failing on the first dependency error.
func (g *Graph) resolveDeps(n *node) error {
	for _, d := range n.deps {
		if _, err := g.Get(d); err != nil {
			return fmt.Errorf("graph: %s: dependency %s: %w", n.name, d, err)
		}
	}
	return nil
}

// Prefetch computes the named nodes (all registered nodes when none
// are given) concurrently on a resilience.Runner: bounded workers,
// panic isolation, one dead letter per failing node instead of an
// aborted run. Dependency order needs no scheduling — a worker that
// reaches a node whose dependency is mid-compute blocks on that node's
// latch, and one that arrives first computes it inline. Returns a
// combined *Errors when any node failed.
func (g *Graph) Prefetch(ctx context.Context, names ...string) error {
	if len(names) == 0 {
		names = g.order
	}
	r := resilience.NewRunner[string](resilience.Config[string]{
		Workers:  g.cfg.Workers,
		Seed:     g.cfg.Seed,
		Metrics:  g.cfg.Metrics,
		Describe: func(s *string) string { return *s },
	}, resilience.Stage[string]{
		Name: "graph-compute",
		Fn: func(ctx context.Context, _ int, name *string) error {
			_, err := g.Get(*name)
			return err
		},
	})
	results, _, err := r.RunSlice(ctx, names)
	if err != nil {
		return err
	}
	failed := map[string]error{}
	for _, res := range results {
		if res.Dead != nil {
			failed[res.Item] = res.Dead.Err
		}
	}
	if len(failed) > 0 {
		return &Errors{Failed: failed}
	}
	return nil
}

// Errors aggregates per-node failures from a Prefetch.
type Errors struct {
	Failed map[string]error
}

// Error lists the failed nodes in sorted order.
func (e *Errors) Error() string {
	names := make([]string, 0, len(e.Failed))
	for n := range e.Failed {
		names = append(names, n)
	}
	sort.Strings(names)
	msg := fmt.Sprintf("graph: %d stage(s) failed:", len(names))
	for _, n := range names {
		msg += fmt.Sprintf("\n  %s: %v", n, e.Failed[n])
	}
	return msg
}
