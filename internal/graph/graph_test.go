package graph

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"harassrepro/internal/obs"
)

func TestMemoizedOnce(t *testing.T) {
	g := New(Config{Seed: 1})
	var calls atomic.Int64
	g.Register("a", nil, func() (any, error) {
		calls.Add(1)
		return 42, nil
	})
	for i := 0; i < 5; i++ {
		v, err := g.Get("a")
		if err != nil || v.(int) != 42 {
			t.Fatalf("get %d: %v, %v", i, v, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("computed %d times, want 1", calls.Load())
	}
	st := g.Stats()
	if len(st) != 1 || st[0].Computes != 1 || st[0].Hits != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDependencyResolution(t *testing.T) {
	g := New(Config{})
	var order []string
	var mu sync.Mutex
	mark := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	g.Register("base", nil, func() (any, error) { mark("base"); return 1, nil })
	g.Register("mid", []string{"base"}, func() (any, error) {
		mark("mid")
		v, err := GetAs[int](g, "base")
		return v + 1, err
	})
	g.Register("top", []string{"mid"}, func() (any, error) {
		mark("top")
		v, err := GetAs[int](g, "mid")
		return v + 1, err
	})
	v, err := GetAs[int](g, "top")
	if err != nil || v != 3 {
		t.Fatalf("top = %v, %v", v, err)
	}
	want := []string{"base", "mid", "top"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("compute order %v, want %v", order, want)
	}
}

func TestConcurrentGetComputesOnce(t *testing.T) {
	g := New(Config{})
	var calls atomic.Int64
	release := make(chan struct{})
	g.Register("slow", nil, func() (any, error) {
		calls.Add(1)
		<-release
		return "done", nil
	})
	var wg sync.WaitGroup
	results := make([]string, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := GetAs[string](g, "slow")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("computed %d times under contention, want 1", calls.Load())
	}
	for i, r := range results {
		if r != "done" {
			t.Fatalf("goroutine %d saw %q", i, r)
		}
	}
}

func TestErrorMemoized(t *testing.T) {
	g := New(Config{})
	var calls atomic.Int64
	boom := errors.New("boom")
	g.Register("bad", nil, func() (any, error) {
		calls.Add(1)
		return nil, boom
	})
	g.Register("dependent", []string{"bad"}, func() (any, error) { return 1, nil })
	for i := 0; i < 3; i++ {
		if _, err := g.Get("bad"); !errors.Is(err, boom) {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("failing node computed %d times, want 1", calls.Load())
	}
	// Dependents see the dependency's failure, wrapped with both names.
	_, err := g.Get("dependent")
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("dependent error = %v", err)
	}
	if !strings.Contains(err.Error(), "dependent") || !strings.Contains(err.Error(), "bad") {
		t.Errorf("error lacks node names: %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	g := New(Config{})
	g.Register("explode", nil, func() (any, error) { panic("kaboom") })
	_, err := g.Get("explode")
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", err)
	}
	// Memoized: later Gets see the same error without re-running.
	_, err2 := g.Get("explode")
	if err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("panic error not memoized: %v", err2)
	}
}

func TestRegisterValidation(t *testing.T) {
	g := New(Config{})
	g.Register("a", nil, func() (any, error) { return nil, nil })
	for name, reg := range map[string]func(){
		"duplicate":   func() { g.Register("a", nil, nil) },
		"unknown-dep": func() { g.Register("b", []string{"nope"}, nil) },
		"forward-ref": func() { g.Register("c", []string{"d"}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", name)
				}
			}()
			reg()
		}()
	}
	if _, err := g.Get("missing"); err == nil {
		t.Error("Get of unknown node should error")
	}
}

func TestNoMemoRecomputesDerivedOnly(t *testing.T) {
	g := New(Config{NoMemo: true})
	var stageCalls, derivedCalls atomic.Int64
	g.Register("stage", nil, func() (any, error) { stageCalls.Add(1); return 1, nil })
	g.RegisterDerived("derived", []string{"stage"}, func() (any, error) { derivedCalls.Add(1); return 2, nil })
	for i := 0; i < 3; i++ {
		if _, err := g.Get("stage"); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Get("derived"); err != nil {
			t.Fatal(err)
		}
	}
	if stageCalls.Load() != 1 {
		t.Errorf("NoMemo recomputed a regular stage %d times, want 1", stageCalls.Load())
	}
	if derivedCalls.Load() != 3 {
		t.Errorf("NoMemo computed derived node %d times, want 3", derivedCalls.Load())
	}
}

func TestPrefetchParallelAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := New(Config{Seed: 7, Fingerprint: "test", Metrics: reg, Workers: 4})
	var calls atomic.Int64
	g.Register("root", nil, func() (any, error) { calls.Add(1); return 0, nil })
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("leaf-%d", i)
		g.Register(name, []string{"root"}, func() (any, error) {
			calls.Add(1)
			_, err := g.Get("root")
			return name, err
		})
	}
	if err := g.Prefetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 7 {
		t.Errorf("computed %d times, want 7 (each node exactly once)", calls.Load())
	}
	snap := reg.Snapshot()
	if v := snap.CounterValue("graph_stage_computes_total", obs.L("stage", "root")); v != 1 {
		t.Errorf("root computes = %v, want 1", v)
	}
	// Six leaves each read root after (or while) something computed it.
	if v := snap.CounterValue("graph_stage_hits_total", obs.L("stage", "root")); v < 6 {
		t.Errorf("root hits = %v, want >= 6", v)
	}
	if m, ok := snap.Find("graph_stage_compute_ns", obs.L("stage", "root")); !ok || m.Count != 1 {
		t.Errorf("root latency histogram: %+v, %v", m, ok)
	}
}

func TestPrefetchCombinedErrors(t *testing.T) {
	g := New(Config{Workers: 2})
	g.Register("ok", nil, func() (any, error) { return 1, nil })
	g.Register("bad-1", nil, func() (any, error) { return nil, errors.New("first") })
	g.Register("bad-2", nil, func() (any, error) { panic("second") })
	err := g.Prefetch(context.Background())
	var ge *Errors
	if !errors.As(err, &ge) {
		t.Fatalf("want *Errors, got %v", err)
	}
	if len(ge.Failed) != 2 {
		t.Fatalf("failed = %v", ge.Failed)
	}
	msg := ge.Error()
	if !strings.Contains(msg, "bad-1") || !strings.Contains(msg, "bad-2") ||
		!strings.Contains(msg, "first") || !strings.Contains(msg, "second") {
		t.Errorf("combined error missing detail:\n%s", msg)
	}
	// The healthy node still computed.
	if v, err := GetAs[int](g, "ok"); err != nil || v != 1 {
		t.Errorf("ok = %v, %v", v, err)
	}
}

func TestKeyAndFingerprint(t *testing.T) {
	f1 := Fingerprint(struct{ A, B int }{1, 2})
	f2 := Fingerprint(struct{ A, B int }{1, 2})
	f3 := Fingerprint(struct{ A, B int }{1, 3})
	if f1 != f2 {
		t.Error("fingerprint not stable")
	}
	if f1 == f3 {
		t.Error("fingerprint ignores values")
	}
	g := New(Config{Seed: 9, Fingerprint: f1})
	g.Register("n", nil, func() (any, error) { return nil, nil })
	if want := "n@9+" + f1; g.Key("n") != want {
		t.Errorf("key = %q, want %q", g.Key("n"), want)
	}
}

func TestGetAsTypeMismatch(t *testing.T) {
	g := New(Config{})
	g.Register("s", nil, func() (any, error) { return "str", nil })
	if _, err := GetAs[int](g, "s"); err == nil || !strings.Contains(err.Error(), "holds") {
		t.Fatalf("type mismatch not reported: %v", err)
	}
}
