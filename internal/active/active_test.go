package active

import (
	"fmt"
	"testing"

	"harassrepro/internal/annotate"
	"harassrepro/internal/features"
	"harassrepro/internal/model"
	"harassrepro/internal/randx"
	"harassrepro/internal/synth"
	"harassrepro/internal/taxonomy"
)

// buildPool generates a pool of vectorized CTH/benign documents.
func buildPool(n int, posRate float64, seed uint64, h *features.Hasher) []Instance {
	rng := randx.New(seed)
	out := make([]Instance, 0, n)
	for i := 0; i < n; i++ {
		var text string
		truth := rng.Bool(posRate)
		if truth {
			p := synth.NewPersona(rng.SplitN("p", i))
			text = synth.CTH(p, []taxonomy.Sub{taxonomy.SubMassFlagging, taxonomy.SubRaiding}[i%2:i%2+1], synth.GenderedPronouns, rng)
		} else {
			text = synth.Benign(synth.FlavorBoard, rng)
		}
		out = append(out, Instance{
			ID:    fmt.Sprintf("pool-%05d", i),
			X:     h.Vectorize(tokens(text)),
			Truth: truth,
		})
	}
	return out
}

func tokens(text string) []string {
	var toks []string
	word := ""
	for _, r := range text {
		if r == ' ' || r == '\n' || r == '.' || r == ',' {
			if word != "" {
				toks = append(toks, word)
				word = ""
			}
			continue
		}
		word += string(r)
	}
	if word != "" {
		toks = append(toks, word)
	}
	return toks
}

func seedExamples(pool []Instance, n int) []model.Example {
	var out []model.Example
	var pos, neg int
	for _, inst := range pool {
		if inst.Truth && pos < n/2 {
			out = append(out, model.Example{X: inst.X, Y: true})
			pos++
		} else if !inst.Truth && neg < n/2 {
			out = append(out, model.Example{X: inst.X, Y: false})
			neg++
		}
		if pos+neg >= n {
			break
		}
	}
	return out
}

func TestRunImprovesAUC(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 15})
	pool := buildPool(3000, 0.08, 1, h)
	seed := seedExamples(pool, 40)
	annRng := randx.New(2)
	annotators := annotate.NewPool(annotate.CrowdConfig(annotate.TaskCTH), annRng)

	res, err := Run(seed, pool, annotators, Config{
		Bins: 10, PerBin: 30, Iterations: 2,
		Model: model.LogRegConfig{Buckets: 1 << 15, Epochs: 4, Seed: 3},
		Seed:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history length = %d", len(res.History))
	}
	if res.History[0].AUC < 0.7 {
		t.Errorf("first-iteration AUC = %v, seed training failed", res.History[0].AUC)
	}
	// Labelled set grows each iteration.
	if res.History[1].TrainSize <= res.History[0].TrainSize {
		t.Error("training set did not grow")
	}
	// Final model separates the pool well.
	scores := make([]float64, len(pool))
	truths := make([]bool, len(pool))
	for i := range pool {
		scores[i] = res.Model.Score(pool[i].X)
		truths[i] = pool[i].Truth
	}
	if auc := model.AUCROC(scores, truths); auc < 0.9 {
		t.Errorf("final AUC = %v", auc)
	}
}

func TestRunSamplesAcrossBins(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 15})
	pool := buildPool(2000, 0.1, 5, h)
	seed := seedExamples(pool, 40)
	annotators := annotate.NewPool(annotate.ExpertConfig(annotate.TaskCTH), randx.New(6))
	res, err := Run(seed, pool, annotators, Config{
		Bins: 10, PerBin: 20, Iterations: 1,
		Model: model.LogRegConfig{Buckets: 1 << 15, Epochs: 3, Seed: 7},
		Seed:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 10 bins and 20 per bin, at most 200 sampled; some bins may be
	// sparse but several must contribute.
	if res.History[0].Sampled < 50 || res.History[0].Sampled > 200 {
		t.Errorf("sampled = %d", res.History[0].Sampled)
	}
	// Stratified sampling should pull in positives (high-score bins).
	if res.History[0].NewPositives == 0 {
		t.Error("no positives sampled from high-score bins")
	}
}

func TestRunErrors(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 12})
	annotators := annotate.NewPool(annotate.ExpertConfig(annotate.TaskCTH), randx.New(9))
	pool := buildPool(50, 0.2, 10, h)
	if _, err := Run(nil, pool, annotators, Config{}); err != model.ErrNoTrainingData {
		t.Errorf("missing seed: err = %v", err)
	}
	seed := seedExamples(pool, 10)
	if _, err := Run(seed, nil, annotators, Config{}); err != ErrEmptyPool {
		t.Errorf("empty pool: err = %v", err)
	}
}

func TestRunDeterministic(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 14})
	run := func() Result {
		pool := buildPool(800, 0.1, 11, h)
		seed := seedExamples(pool, 30)
		annotators := annotate.NewPool(annotate.CrowdConfig(annotate.TaskCTH), randx.New(12))
		res, err := Run(seed, pool, annotators, Config{
			PerBin: 15, Iterations: 2,
			Model: model.LogRegConfig{Buckets: 1 << 14, Epochs: 2, Seed: 13},
			Seed:  14,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Labelled) != len(b.Labelled) {
		t.Fatal("labelled sizes differ")
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history %d differs: %+v vs %+v", i, a.History[i], b.History[i])
		}
	}
}

func TestStrategies(t *testing.T) {
	h := features.NewHasher(features.HasherConfig{Buckets: 1 << 15})
	pool := buildPool(2500, 0.08, 51, h)
	seed := seedExamples(pool, 40)

	results := map[Strategy]Result{}
	for _, strat := range []Strategy{StrategyStratified, StrategyUncertainty, StrategyRandom} {
		annotators := annotate.NewPool(annotate.CrowdConfig(annotate.TaskCTH), randx.New(52))
		res, err := Run(seed, pool, annotators, Config{
			Strategy: strat, Bins: 10, PerBin: 15, Iterations: 2,
			Model: model.LogRegConfig{Buckets: 1 << 15, Epochs: 3, Seed: 53},
			Seed:  54,
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		results[strat] = res
	}
	positives := func(r Result) int {
		n := 0
		for _, ex := range r.Labelled[len(seed):] {
			if ex.Y {
				n++
			}
		}
		return n
	}
	// Informed strategies surface more positives than random on an
	// imbalanced pool.
	if positives(results[StrategyStratified]) <= positives(results[StrategyRandom]) {
		t.Errorf("stratified %d <= random %d positives",
			positives(results[StrategyStratified]), positives(results[StrategyRandom]))
	}
	// All strategies respect the same per-iteration budget.
	for strat, res := range results {
		for _, h := range res.History {
			if h.Sampled > 10*15 {
				t.Errorf("%v iteration sampled %d > budget", strat, h.Sampled)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyStratified.String() != "stratified" ||
		StrategyUncertainty.String() != "uncertainty" ||
		StrategyRandom.String() != "random" {
		t.Error("strategy names wrong")
	}
}
