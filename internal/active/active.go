// Package active implements the paper's active-learning loop (§5.3): a
// cyclical process that trains a fine-tuned classifier on the labelled
// data so far, predicts the entire pool, stratifies the predictions into
// ten equal score ranges between 0.0 and 1.0, samples evenly from each
// range, sends the sample to crowd annotators, folds the new labels into
// the training set, and repeats (the paper ran two iterations per data
// set per task).
package active

import (
	"errors"
	"sort"

	"harassrepro/internal/annotate"
	"harassrepro/internal/features"
	"harassrepro/internal/model"
	"harassrepro/internal/randx"
)

// ErrEmptyPool is returned when Run is called without a prediction pool.
var ErrEmptyPool = errors.New("active: empty instance pool")

// Instance is one unlabelled pool document.
type Instance struct {
	ID string
	X  features.Vector
	// Truth is the hidden ground-truth label, visible only to the
	// simulated annotators.
	Truth bool
}

// Strategy selects how the loop picks documents to annotate each
// iteration.
type Strategy int

const (
	// StrategyStratified is the paper's approach: segment predictions
	// into equal score ranges and sample evenly from each (§5.3).
	StrategyStratified Strategy = iota
	// StrategyUncertainty annotates the documents the classifier is
	// least sure about (scores nearest 0.5) — the classic
	// uncertainty-sampling alternative.
	StrategyUncertainty
	// StrategyRandom annotates a uniform random sample — the control.
	StrategyRandom
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyUncertainty:
		return "uncertainty"
	case StrategyRandom:
		return "random"
	default:
		return "stratified"
	}
}

// Config controls the loop.
type Config struct {
	// Strategy selects the sampling approach. Defaults to
	// StrategyStratified (the paper's).
	Strategy Strategy
	// Bins is the number of score strata. Defaults to 10 (the paper
	// "segmented the predicted data into 10 ranges between 0.0 and 1.0").
	Bins int
	// PerBin is the number of documents sampled from each stratum per
	// iteration. Defaults to 50.
	PerBin int
	// Iterations is the number of sample-annotate-retrain cycles.
	// Defaults to 2 (the paper repeated the process twice per data set).
	Iterations int
	// Model configures the underlying classifier training.
	Model model.LogRegConfig
	// Seed drives sampling.
	Seed uint64
	// Progress, when set, observes each iteration's stats as they are
	// produced — the hook live retrain pipelines use to stream
	// training progress into logs and metrics. It must not retain the
	// stats beyond the call.
	Progress func(IterationStats)
}

func (c *Config) fillDefaults() {
	if c.Bins <= 0 {
		c.Bins = 10
	}
	if c.PerBin <= 0 {
		c.PerBin = 50
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
}

// IterationStats records one loop iteration.
type IterationStats struct {
	Iteration    int
	TrainSize    int
	Sampled      int
	NewPositives int
	// AUC is measured against the pool's hidden ground truth, standing
	// in for the paper's withheld evaluation annotations.
	AUC float64
}

// Result is the outcome of the loop.
type Result struct {
	Model    *model.LogReg
	Labelled []model.Example
	// PoolIndices is parallel to Labelled: the pool index each example
	// came from, or -1 for seed examples. It lets callers trace labels
	// back to documents (e.g. for the §5.3 spot-check review).
	PoolIndices []int
	History     []IterationStats
}

// Run executes the active-learning loop: seed examples bootstrap the
// first classifier; each iteration stratified-samples the pool, has the
// annotator pool label the sample, and retrains.
func Run(seed []model.Example, pool []Instance, annotators *annotate.Pool, cfg Config) (Result, error) {
	cfg.fillDefaults()
	if len(pool) == 0 {
		return Result{}, ErrEmptyPool
	}
	if len(seed) == 0 {
		return Result{}, model.ErrNoTrainingData
	}
	rng := randx.New(cfg.Seed).Split("active")

	labelled := append([]model.Example(nil), seed...)
	poolIndices := make([]int, len(seed))
	for i := range poolIndices {
		poolIndices[i] = -1
	}
	taken := map[int]bool{} // pool indices already annotated
	var history []IterationStats
	var m *model.LogReg
	var err error

	for iter := 1; iter <= cfg.Iterations; iter++ {
		m, err = model.TrainLogReg(labelled, cfg.Model)
		if err != nil {
			return Result{}, err
		}

		// Predict the entire pool.
		scores := make([]float64, len(pool))
		truths := make([]bool, len(pool))
		for i := range pool {
			scores[i] = m.Score(pool[i].X)
			truths[i] = pool[i].Truth
		}

		sampleIdx := sample(cfg, scores, taken, rng)
		sort.Ints(sampleIdx)

		// Crowd-annotate the sample.
		items := make([]annotate.Item, len(sampleIdx))
		for j, i := range sampleIdx {
			items[j] = annotate.Item{ID: pool[i].ID, Truth: pool[i].Truth}
		}
		decisions, _, err := annotators.Annotate(items)
		if err != nil {
			return Result{}, err
		}
		newPos := 0
		for j, d := range decisions {
			i := sampleIdx[j]
			taken[i] = true
			labelled = append(labelled, model.Example{X: pool[i].X, Y: d.Label})
			poolIndices = append(poolIndices, i)
			if d.Label {
				newPos++
			}
		}
		history = append(history, IterationStats{
			Iteration:    iter,
			TrainSize:    len(labelled),
			Sampled:      len(sampleIdx),
			NewPositives: newPos,
			AUC:          model.AUCROC(scores, truths),
		})
		if cfg.Progress != nil {
			cfg.Progress(history[len(history)-1])
		}
	}

	// Final retrain on everything gathered.
	m, err = model.TrainLogReg(labelled, cfg.Model)
	if err != nil {
		return Result{}, err
	}
	return Result{Model: m, Labelled: labelled, PoolIndices: poolIndices, History: history}, nil
}

// sample selects the iteration's annotation candidates per the strategy.
// The per-iteration budget is Bins*PerBin for every strategy, so regimes
// are comparable.
func sample(cfg Config, scores []float64, taken map[int]bool, rng *randx.Source) []int {
	budget := cfg.Bins * cfg.PerBin
	var avail []int
	for i := range scores {
		if !taken[i] {
			avail = append(avail, i)
		}
	}
	switch cfg.Strategy {
	case StrategyUncertainty:
		// Closest to the decision boundary first.
		sort.Slice(avail, func(a, b int) bool {
			da := scores[avail[a]] - 0.5
			if da < 0 {
				da = -da
			}
			db := scores[avail[b]] - 0.5
			if db < 0 {
				db = -db
			}
			if da != db {
				return da < db
			}
			return avail[a] < avail[b]
		})
		if len(avail) > budget {
			avail = avail[:budget]
		}
		return avail
	case StrategyRandom:
		randx.Shuffle(rng, avail)
		if len(avail) > budget {
			avail = avail[:budget]
		}
		return avail
	default: // StrategyStratified
		bins := make([][]int, cfg.Bins)
		for _, i := range avail {
			b := int(scores[i] * float64(cfg.Bins))
			if b >= cfg.Bins {
				b = cfg.Bins - 1
			}
			bins[b] = append(bins[b], i)
		}
		var out []int
		for _, bin := range bins {
			idx := append([]int(nil), bin...)
			randx.Shuffle(rng, idx)
			n := cfg.PerBin
			if n > len(idx) {
				n = len(idx)
			}
			out = append(out, idx[:n]...)
		}
		return out
	}
}
