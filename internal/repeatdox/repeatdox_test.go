package repeatdox

import (
	"testing"

	"harassrepro/internal/corpus"
	"harassrepro/internal/pii"
)

func handle(t pii.Type, v string) pii.Match { return pii.Match{Type: t, Value: v} }

func TestLinkBySharedHandle(t *testing.T) {
	records := []Record{
		{ID: "a", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Twitter, "target1")}},
		{ID: "b", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Twitter, "target1"), handle(pii.Facebook, "t1.fb")}},
		{ID: "c", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Facebook, "t1.fb")}}, // transitive via b
		{ID: "d", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Twitter, "other")}},
		{ID: "e", Dataset: corpus.Boards, Handles: nil},
	}
	groups, st := Link(records)
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	if len(groups[0].RecordIDs) != 3 {
		t.Errorf("group size = %d, want 3 (transitive closure)", len(groups[0].RecordIDs))
	}
	if st.Repeated != 3 || st.TotalDoxes != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.SameDatasetShare != 1 {
		t.Errorf("same-dataset share = %v", st.SameDatasetShare)
	}
}

func TestLinkCrossDataset(t *testing.T) {
	records := []Record{
		{ID: "a", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.YouTube, "ch1")}},
		{ID: "b", Dataset: corpus.Boards, Handles: []pii.Match{handle(pii.YouTube, "ch1")}},
	}
	groups, st := Link(records)
	if len(groups) != 1 || !groups[0].CrossDataset() {
		t.Fatalf("cross-dataset group not detected: %+v", groups)
	}
	if st.CrossDatasetDoxes != 2 || st.SameDatasetShare != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkSameTypeDifferentValueNotLinked(t *testing.T) {
	records := []Record{
		{ID: "a", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Twitter, "x")}},
		{ID: "b", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Twitter, "y")}},
	}
	groups, st := Link(records)
	if len(groups) != 0 || st.Repeated != 0 {
		t.Errorf("distinct handles linked: %+v", groups)
	}
}

func TestLinkSameValueDifferentTypeNotLinked(t *testing.T) {
	// A Twitter handle "name" and an Instagram handle "name" are
	// different identities; linking is per (type, value).
	records := []Record{
		{ID: "a", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Twitter, "name")}},
		{ID: "b", Dataset: corpus.Pastes, Handles: []pii.Match{handle(pii.Instagram, "name")}},
	}
	groups, _ := Link(records)
	if len(groups) != 0 {
		t.Errorf("cross-type values linked: %+v", groups)
	}
}

func TestLinkEmpty(t *testing.T) {
	groups, st := Link(nil)
	if groups != nil || st.TotalDoxes != 0 || st.RepeatedShare != 0 {
		t.Errorf("empty link = %v %+v", groups, st)
	}
}

func TestRecordFromText(t *testing.T) {
	ex := pii.NewExtractor()
	text := "dox: twitter: @target_one fb: target.one phone 212-555-0142"
	r := RecordFromText("doc1", corpus.Gab, text, ex)
	if r.ID != "doc1" || r.Dataset != corpus.Gab {
		t.Errorf("record = %+v", r)
	}
	// Phone is not an OSN handle; only twitter + facebook linkable.
	if len(r.Handles) != 2 {
		t.Errorf("handles = %v, want 2 OSN handles", r.Handles)
	}
	for _, h := range r.Handles {
		if h.Type == pii.Phone {
			t.Error("phone included as linkable handle")
		}
	}
}

func TestLinkOnGeneratedCorpus(t *testing.T) {
	// End-to-end: generated corpora must exhibit the §7.3 structure
	// when linked purely from extracted text (no ground truth).
	g := corpus.NewGenerator(corpus.Config{Seed: 3, VolumeScale: 20_000, PositiveScale: 10})
	corpora := g.Generate()
	ex := pii.NewExtractor()
	var records []Record
	for ds, c := range corpora {
		for i := range c.Docs {
			d := &c.Docs[i]
			if !d.Truth.IsDox {
				continue
			}
			rec := RecordFromText(d.ID, ds, d.Text, ex)
			if len(rec.Handles) > 0 {
				records = append(records, rec)
			}
		}
	}
	if len(records) < 200 {
		t.Fatalf("too few linkable doxes: %d", len(records))
	}
	_, st := Link(records)
	if st.Repeated == 0 {
		t.Fatal("no repeated doxes found")
	}
	// Most repeats on pastes, few cross-dataset (paper: 89.64%, 250 of
	// 14,587).
	if st.ByDataset[corpus.Pastes]*2 < st.Repeated {
		t.Errorf("pastes repeats %d of %d; pastes should dominate", st.ByDataset[corpus.Pastes], st.Repeated)
	}
	if st.SameDatasetShare < 0.85 {
		t.Errorf("same-dataset share = %v, want > 0.85", st.SameDatasetShare)
	}
}
