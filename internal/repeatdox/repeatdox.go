// Package repeatdox implements the paper's repeated-dox analysis (§7.3):
// doxes that likely target the same person are linked by shared online
// social network profile PII (Facebook, YouTube, Twitter, Instagram
// handles), "the most reliable method of linking multiple doxes that
// were likely about the same target".
package repeatdox

import (
	"sort"

	"harassrepro/internal/corpus"
	"harassrepro/internal/pii"
)

// osnTypes are the PII types used for linking.
var osnTypes = map[pii.Type]bool{
	pii.Facebook:  true,
	pii.YouTube:   true,
	pii.Twitter:   true,
	pii.Instagram: true,
}

// Record is one dox document's linkable identity material.
type Record struct {
	ID      string
	Dataset corpus.Dataset
	// Handles are the extracted OSN PII matches.
	Handles []pii.Match
}

// RecordFromText builds a Record by extracting OSN PII from dox text.
func RecordFromText(id string, ds corpus.Dataset, text string, ex *pii.Extractor) Record {
	r := Record{ID: id, Dataset: ds}
	for _, m := range ex.Extract(text) {
		if osnTypes[m.Type] {
			r.Handles = append(r.Handles, m)
		}
	}
	return r
}

// Group is a set of doxes linked by shared OSN handles (transitively).
type Group struct {
	RecordIDs []string
	Datasets  []corpus.Dataset // aligned with RecordIDs
}

// CrossDataset reports whether the group spans more than one data set.
func (g Group) CrossDataset() bool {
	if len(g.Datasets) == 0 {
		return false
	}
	first := g.Datasets[0]
	for _, d := range g.Datasets[1:] {
		if d != first {
			return true
		}
	}
	return false
}

// Stats summarises the repeated-dox landscape (§7.3's findings).
type Stats struct {
	TotalDoxes int
	// Repeated counts doxes in groups of size >= 2 (14,587 of 70,820,
	// 20.1%, in the paper).
	Repeated      int
	RepeatedShare float64
	// SameDatasetShare is the fraction of repeated doxes in groups that
	// stay within one data set (98% in the paper).
	SameDatasetShare float64
	// CrossDatasetDoxes counts repeated doxes in cross-data-set groups
	// (250 in the paper).
	CrossDatasetDoxes int
	// ByDataset counts repeated doxes per data set (89.64% pastes in
	// the paper).
	ByDataset map[corpus.Dataset]int
	Groups    int
}

// Link groups records by shared OSN handles using union-find and returns
// the groups with at least two records, plus summary statistics.
func Link(records []Record) ([]Group, Stats) {
	parent := make([]int, len(records))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}

	// Index records by handle.
	byHandle := map[pii.Match][]int{}
	for i, r := range records {
		for _, h := range r.Handles {
			byHandle[h] = append(byHandle[h], i)
		}
	}
	for _, idxs := range byHandle {
		for _, other := range idxs[1:] {
			union(idxs[0], other)
		}
	}

	members := map[int][]int{}
	for i := range records {
		root := find(i)
		members[root] = append(members[root], i)
	}

	// Deterministic group order.
	roots := make([]int, 0, len(members))
	for root := range members {
		roots = append(roots, root)
	}
	sort.Ints(roots)

	var groups []Group
	st := Stats{TotalDoxes: len(records), ByDataset: map[corpus.Dataset]int{}}
	sameDataset := 0
	for _, root := range roots {
		idxs := members[root]
		if len(idxs) < 2 {
			continue
		}
		g := Group{}
		for _, i := range idxs {
			g.RecordIDs = append(g.RecordIDs, records[i].ID)
			g.Datasets = append(g.Datasets, records[i].Dataset)
		}
		groups = append(groups, g)
		st.Groups++
		st.Repeated += len(idxs)
		if g.CrossDataset() {
			st.CrossDatasetDoxes += len(idxs)
		} else {
			sameDataset += len(idxs)
		}
		for _, d := range g.Datasets {
			st.ByDataset[d]++
		}
	}
	if st.TotalDoxes > 0 {
		st.RepeatedShare = float64(st.Repeated) / float64(st.TotalDoxes)
	}
	if st.Repeated > 0 {
		st.SameDatasetShare = float64(sameDataset) / float64(st.Repeated)
	}
	return groups, st
}
