// Package report renders the reproduction's tables and figures as
// aligned plain text (the form the benchmark harness prints) and CSV.
// ASCII CDF and distribution plots stand in for the paper's Figures 5
// and 6.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with quoted cells.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Pct renders a count as the paper's "12.34% (123)" cell format.
func Pct(count, total int) string {
	if total == 0 {
		return "0.00% (0)"
	}
	return fmt.Sprintf("%.2f%% (%d)", 100*float64(count)/float64(total), count)
}

// F renders a float with 2 decimals; NaN renders as "-".
func F(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// F3 renders a float with 3 decimals; NaN renders as "-".
func F3(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// CDFSeries is one line of a CDF plot.
type CDFSeries struct {
	Name string
	Xs   []float64 // sorted sample values
	Ps   []float64 // cumulative probabilities at Xs
}

// RenderCDF draws an ASCII CDF plot on a log-scaled x axis (matching
// Figure 5's log-scale thread-size axis), with one glyph per series.
func RenderCDF(title string, series []CDFSeries, width, height int) string {
	if width <= 10 {
		width = 72
	}
	if height <= 4 {
		height = 20
	}
	// Establish x range across series (log scale).
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, x := range s.Xs {
			if x < 1 {
				x = 1
			}
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
		}
	}
	if math.IsInf(minX, 1) || maxX <= minX {
		return title + "\n(no data)\n"
	}
	logMin, logMax := math.Log10(minX), math.Log10(maxX)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	for si, s := range series {
		glyph := glyphs[si%len(glyphs)]
		for i, x := range s.Xs {
			if x < 1 {
				x = 1
			}
			col := int((math.Log10(x) - logMin) / (logMax - logMin) * float64(width-1))
			row := height - 1 - int(s.Ps[i]*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = glyph
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		p := 1 - float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%5.0f%% |%s\n", p*100, string(row))
	}
	fmt.Fprintf(&b, "       +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-10.0f%*s\n", minX, width-10, fmt.Sprintf("%.0f (log x)", maxX))
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// BoxStats are the quantile statistics behind one box of Figure 6.
type BoxStats struct {
	Name   string
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// RenderBoxes renders per-category distribution summaries as an aligned
// table (the textual equivalent of Figure 6's box plots).
func RenderBoxes(title string, boxes []BoxStats) string {
	t := NewTable(title, "Category", "N", "Min", "Q1", "Median", "Q3", "Max")
	for _, bx := range boxes {
		t.AddRow(bx.Name, fmt.Sprintf("%d", bx.N), F(bx.Min), F(bx.Q1), F(bx.Median), F(bx.Q3), F(bx.Max))
	}
	return t.String()
}

// VennRow is one row of the Figure 2 overlap visualisation.
type VennRow struct {
	Risk  string
	Cells []bool // one per combination column
	Total int
}

// RenderVenn renders the Figure 2-style combination matrix: columns are
// risk combinations (with their counts), rows are risk categories, and
// filled cells mark membership.
func RenderVenn(title string, combos []string, counts []int, rows []VennRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	colW := 6
	fmt.Fprintf(&b, "%-22s", "sizes:")
	for _, c := range counts {
		fmt.Fprintf(&b, "%*d", colW, c)
	}
	fmt.Fprintf(&b, "  | total\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-22s", row.Risk)
		for _, filled := range row.Cells {
			mark := "."
			if filled {
				mark = "#"
			}
			fmt.Fprintf(&b, "%*s", colW, mark)
		}
		fmt.Fprintf(&b, "  | %d\n", row.Total)
	}
	fmt.Fprintf(&b, "%-22s", "combination:")
	for i := range combos {
		fmt.Fprintf(&b, "%*d", colW, i+1)
	}
	b.WriteString("\n")
	for i, c := range combos {
		fmt.Fprintf(&b, "  %2d: %s\n", i+1, c)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// RenderHistogram draws an ASCII histogram of values in [0, 1] with the
// given number of equal-width bins (used for classifier score
// distributions). Bar lengths are scaled to maxBar characters.
func RenderHistogram(title string, values []float64, bins, maxBar int) string {
	if bins <= 0 {
		bins = 10
	}
	if maxBar <= 0 {
		maxBar = 40
	}
	counts := make([]int, bins)
	for _, v := range values {
		b := int(v * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	peak := 1
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, len(values))
	for i, c := range counts {
		bar := c * maxBar / peak
		fmt.Fprintf(&b, "  [%.1f,%.1f) %6d %s\n",
			float64(i)/float64(bins), float64(i+1)/float64(bins), c, strings.Repeat("#", bar))
	}
	return b.String()
}
