package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "A", "Bee", "C")
	tb.AddRow("1", "2", "3")
	tb.AddRow("longcell", "x") // short row padded
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, headers, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: header A starts where 1 and longcell start.
	if !strings.HasPrefix(lines[1], "A") || !strings.HasPrefix(lines[3], "1") {
		t.Errorf("alignment broken:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `with"quote`)
	csv := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"with\"\"quote\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 4); got != "25.00% (1)" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(3, 0); got != "0.00% (0)" {
		t.Errorf("Pct zero total = %q", got)
	}
}

func TestFloatFormatting(t *testing.T) {
	if F(1.234) != "1.23" || F3(1.2345) != "1.234" {
		t.Error("float formats wrong")
	}
	if F(math.NaN()) != "-" || F3(math.NaN()) != "-" {
		t.Error("NaN should render as -")
	}
}

func TestRenderCDF(t *testing.T) {
	series := []CDFSeries{
		{Name: "CTH", Xs: []float64{1, 10, 100, 1000}, Ps: []float64{0.25, 0.5, 0.75, 1}},
		{Name: "Baseline", Xs: []float64{1, 5, 50, 500}, Ps: []float64{0.3, 0.6, 0.9, 1}},
	}
	out := RenderCDF("Figure 5", series, 60, 12)
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "CTH") || !strings.Contains(out, "Baseline") {
		t.Errorf("CDF output incomplete:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series glyphs missing")
	}
	if !strings.Contains(out, "100%") {
		t.Error("y axis missing")
	}
}

func TestRenderCDFEmpty(t *testing.T) {
	out := RenderCDF("Empty", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty CDF = %q", out)
	}
}

func TestRenderBoxes(t *testing.T) {
	out := RenderBoxes("Figure 6", []BoxStats{
		{Name: "Report.", N: 100, Min: 1, Q1: 5, Median: 20, Q3: 80, Max: 900},
	})
	if !strings.Contains(out, "Report.") || !strings.Contains(out, "20.00") {
		t.Errorf("boxes output:\n%s", out)
	}
}

func TestRenderVenn(t *testing.T) {
	out := RenderVenn("Figure 2",
		[]string{"Online", "Online+Physical"},
		[]int{100, 50},
		[]VennRow{
			{Risk: "Online", Cells: []bool{true, true}, Total: 150},
			{Risk: "Physical", Cells: []bool{false, true}, Total: 50},
		})
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "#") || !strings.Contains(out, "| 150") {
		t.Errorf("venn output:\n%s", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("A Title", "name", "value")
	tb.AddRow("pipe|cell", "1")
	tb.AddRow("short") // padded
	md := tb.Markdown()
	if !strings.Contains(md, "**A Title**") {
		t.Error("title missing")
	}
	if !strings.Contains(md, "| name | value |") {
		t.Errorf("header row malformed:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Error("separator row missing")
	}
	if !strings.Contains(md, `pipe\|cell`) {
		t.Error("pipe not escaped")
	}
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	last := lines[len(lines)-1]
	if strings.Count(last, "|") != 3 {
		t.Errorf("short row not padded: %q", last)
	}
}
