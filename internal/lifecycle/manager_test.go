package lifecycle

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"harassrepro/internal/core"
	"harassrepro/internal/features"
	"harassrepro/internal/model"
	"harassrepro/internal/registry"
	"harassrepro/internal/serve"
	"harassrepro/internal/tokenize"
)

// tinySave writes a complete, LoadDetector-loadable model directory
// without training a pipeline (mirrors the registry package's test
// fixture): a micro vocabulary plus two 16-bucket classifiers.
func tinySave(t testing.TB, seed uint64) func(dir string) error {
	t.Helper()
	vocab := tokenize.Train([]string{
		"mass report this channel now",
		"dropping her home address tonight",
		"everyone raid the stream",
		"post his dox in the thread",
	}, tokenize.TrainerConfig{VocabSize: 64})
	examples := make([]model.Example, 0, 8)
	for i := 0; i < 8; i++ {
		examples = append(examples, model.Example{
			X: features.Vector{Indices: []uint32{uint32(i % 16), uint32((i + 3) % 16)}, Values: []float64{1, 1}},
			Y: (uint64(i)+seed)%3 == 0,
		})
	}
	dox, err := model.TrainLogReg(examples, model.LogRegConfig{Buckets: 16, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cth, err := model.TrainLogReg(examples, model.LogRegConfig{Buckets: 16, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return func(dir string) error {
		if err := vocab.SaveFile(filepath.Join(dir, "vocab.txt")); err != nil {
			return err
		}
		if err := dox.SaveFile(filepath.Join(dir, "dox.model")); err != nil {
			return err
		}
		if err := cth.SaveFile(filepath.Join(dir, "cth.model")); err != nil {
			return err
		}
		meta := `{"version":1,"buckets":16,"dox_text_len":512,"cth_text_len":128,
"dox_thresholds":{"boards":0.9},"cth_thresholds":{"boards":0.8}}`
		return os.WriteFile(filepath.Join(dir, "meta.json"), []byte(meta), 0o644)
	}
}

// bootRegistry creates a registry with one committed, activated
// generation.
func bootRegistry(t *testing.T) *registry.Registry {
	t.Helper()
	reg, err := registry.Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gen, err := reg.Commit(registry.Entry{Seed: 1, Source: "train"}, tinySave(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Activate(gen); err != nil {
		t.Fatal(err)
	}
	return reg
}

// adminPost posts a JSON body to the manager's admin mux directly.
func adminPost(t *testing.T, m *Manager, path, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestBootModelTrainsOnceThenLoads(t *testing.T) {
	dir := t.TempDir()
	reg, err := registry.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	trained := 0
	train := func() (*core.Detector, error) {
		trained++
		// Materialise a tiny model via a scratch dir and load it back:
		// the boot path only needs a Save-able detector.
		scratch := filepath.Join(dir, "scratch")
		if err := os.MkdirAll(scratch, 0o755); err != nil {
			return nil, err
		}
		if err := tinySave(t, 5)(scratch); err != nil {
			return nil, err
		}
		return core.LoadDetector(scratch)
	}

	mdl, _, err := BootModel(reg, 5, train)
	if err != nil {
		t.Fatal(err)
	}
	if trained != 1 || mdl.Generation != 1 || reg.Active() != 1 {
		t.Fatalf("first boot: trained=%d gen=%d active=%d", trained, mdl.Generation, reg.Active())
	}

	// Reopen: the committed generation is served without retraining.
	reg2, err := registry.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mdl2, _, err := BootModel(reg2, 5, train)
	if err != nil {
		t.Fatal(err)
	}
	if trained != 1 || mdl2.Generation != 1 {
		t.Fatalf("second boot: trained=%d gen=%d, want load not train", trained, mdl2.Generation)
	}
	if mdl2.Thresholds == nil || mdl2.Thresholds.CTHThreshold("boards") != 0.8 {
		t.Errorf("boot model thresholds not wired: %+v", mdl2.Thresholds)
	}
}

func TestLifecycleRetrainPromoteRollback(t *testing.T) {
	reg := bootRegistry(t)
	mgr, err := New(Config{
		Registry:      reg,
		Seed:          9,
		ShadowRate:    1.0,
		MinShadowDocs: 4,
		MaxFlipRate:   1.0, // divergence gates wide open: this test
		MaxMeanDelta:  1.0, // exercises the mechanics, not the tuning
	})
	if err != nil {
		t.Fatal(err)
	}
	mdl, _, err := BootModel(reg, 9, nil) // active exists: train unused
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{
		Model:    mdl,
		Shards:   2,
		Workers:  2,
		Feedback: mgr,
		Admin:    mgr,
	})
	mgr.Bind(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()

	// No candidate yet: promote refuses, retrain refuses without
	// feedback.
	if code, body := adminPost(t, mgr, "/promote", ""); code != http.StatusConflict {
		t.Fatalf("promote without candidate = %d %s", code, body)
	}
	if code, body := adminPost(t, mgr, "/retrain", ""); code != http.StatusConflict {
		t.Fatalf("retrain without feedback = %d %s", code, body)
	}

	// Feed 24 CTH labels through the public endpoint.
	var fb []serve.FeedbackItem
	texts := []string{
		"everyone mass report this account now",
		"dropping the mods home address tonight",
		"raid her stream until she quits",
		"just sharing a recipe for banana bread",
		"great game last night honestly",
		"post his work address in the thread",
	}
	for i := 0; i < 24; i++ {
		fb = append(fb, serve.FeedbackItem{
			ID:       fmt.Sprintf("fb-%d", i),
			Platform: "boards",
			Text:     fmt.Sprintf("%s (case %d)", texts[i%len(texts)], i),
			Task:     "cth",
			Label:    i%len(texts) < 3,
		})
	}
	payload, _ := json.Marshal(fb)
	resp, err := ts.Client().Post(ts.URL+"/v1/feedback", "application/json", strings.NewReader(string(payload)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("feedback = %d", resp.StatusCode)
	}
	if got := mgr.FeedbackBuffered(); got != 24 {
		t.Fatalf("buffered = %d, want 24", got)
	}

	// Retrain: commits generation 2 and starts shadowing it.
	code, body := adminPost(t, mgr, "/retrain", "")
	if code != http.StatusOK {
		t.Fatalf("retrain = %d %s", code, body)
	}
	var rr struct {
		Generation uint64 `json:"generation"`
		Feedback   int    `json:"feedback"`
	}
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Generation != 2 || rr.Feedback != 24 {
		t.Fatalf("retrain result = %+v", rr)
	}
	if reg.Active() != 1 {
		t.Fatalf("retrain must not activate: active = %d", reg.Active())
	}
	if mgr.FeedbackBuffered() != 0 {
		t.Errorf("feedback buffer not drained: %d", mgr.FeedbackBuffered())
	}

	// Premature promote: shadow sample too small.
	if code, body := adminPost(t, mgr, "/promote", ""); code != http.StatusPreconditionFailed {
		t.Fatalf("ungated promote = %d %s, want 412", code, body)
	}

	// Drive traffic until the candidate has shadow-scored the minimum.
	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 8; i++ {
			r, err := ts.Client().Post(ts.URL+"/v1/score", "application/json",
				strings.NewReader(fmt.Sprintf(`{"platform":"boards","text":"shadow driver %d"}`, i)))
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
		}
		if st, ok := srv.ShadowStats(); ok && st.Docs >= 4 {
			break
		}
		if time.Now().After(deadline) {
			st, ok := srv.ShadowStats()
			t.Fatalf("shadow never reached 4 docs: %+v ok=%v", st, ok)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// GET /models reflects candidate + shadow.
	req := httptest.NewRequest(http.MethodGet, "/models", nil)
	rec := httptest.NewRecorder()
	mgr.ServeHTTP(rec, req)
	var view modelsView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Active != 1 || view.Candidate != 2 || len(view.Entries) != 2 || view.Shadow == nil {
		t.Fatalf("models view = %+v", view)
	}

	// Promote: gates pass (wide open), registry activates, fleet swaps.
	code, body = adminPost(t, mgr, "/promote", "")
	if code != http.StatusOK {
		t.Fatalf("promote = %d %s", code, body)
	}
	if reg.Active() != 2 || reg.Previous() != 1 {
		t.Fatalf("registry after promote: active %d previous %d", reg.Active(), reg.Previous())
	}
	if got := srv.ActiveModel().Generation; got != 2 {
		t.Fatalf("serving generation = %d, want 2", got)
	}
	if _, ok := srv.ShadowStats(); ok {
		t.Error("shadow still running after promote")
	}

	// Rollback: registry and fleet return to generation 1.
	code, body = adminPost(t, mgr, "/rollback", "")
	if code != http.StatusOK {
		t.Fatalf("rollback = %d %s", code, body)
	}
	if reg.Active() != 1 {
		t.Fatalf("active after rollback = %d", reg.Active())
	}
	if got := srv.ActiveModel().Generation; got != 1 {
		t.Fatalf("serving generation after rollback = %d, want 1", got)
	}

	// Manual swap back onto generation 2.
	code, body = adminPost(t, mgr, "/swap", `{"generation":2}`)
	if code != http.StatusOK {
		t.Fatalf("swap = %d %s", code, body)
	}
	if srv.ActiveModel().Generation != 2 || reg.Active() != 2 {
		t.Fatalf("after swap: serving %d registry %d", srv.ActiveModel().Generation, reg.Active())
	}
	if code, _ := adminPost(t, mgr, "/swap", `{"generation":99}`); code != http.StatusNotFound {
		t.Errorf("swap to unknown generation = %d, want 404", code)
	}

	// Shadow control: start and clear by hand.
	code, body = adminPost(t, mgr, "/shadow", `{"generation":1,"rate":0.5}`)
	if code != http.StatusOK {
		t.Fatalf("shadow start = %d %s", code, body)
	}
	if st, ok := srv.ShadowStats(); !ok || st.Generation != 1 {
		t.Fatalf("shadow stats = %+v ok=%v", st, ok)
	}
	if code, _ := adminPost(t, mgr, "/shadow", `{"clear":true}`); code != http.StatusOK {
		t.Fatal("shadow clear failed")
	}
	if _, ok := srv.ShadowStats(); ok {
		t.Error("shadow survives clear")
	}
}

func TestAutoRetrainTriggersInBackground(t *testing.T) {
	reg := bootRegistry(t)
	mgr, err := New(Config{Registry: reg, Seed: 3, AutoRetrain: true, MinFeedback: 12})
	if err != nil {
		t.Fatal(err)
	}
	// No serving fleet bound: the retrain still commits a candidate.
	var fb []serve.FeedbackItem
	for i := 0; i < 12; i++ {
		fb = append(fb, serve.FeedbackItem{
			Platform: "boards",
			Text:     fmt.Sprintf("mass report wave %d participants", i),
			Task:     "cth",
			Label:    i%4 == 0,
		})
	}
	if err := mgr.AddFeedback(fb); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for len(reg.Entries()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-retrain never committed: entries %+v", reg.Entries())
		}
		time.Sleep(20 * time.Millisecond)
	}
	e, ok := reg.Entry(2)
	if !ok || e.Source != "retrain" {
		t.Fatalf("entry 2 = %+v ok=%v", e, ok)
	}
	if reg.Active() != 1 {
		t.Errorf("auto-retrain must not activate: active = %d", reg.Active())
	}
}
