// Package lifecycle wires the model registry, the feedback-driven
// retrain pipeline and the serving layer's hot-swap into one control
// loop: operator feedback accumulates (POST /v1/feedback → AddFeedback),
// a retrain produces a committed candidate generation, the candidate
// shadow-scores a deterministic sample of live traffic, and promotion
// swaps the fleet onto it only when the divergence gates pass — with
// rollback one POST away. The Manager is both the serve.FeedbackSink
// and the /v1/admin handler harassd mounts.
//
// Admin surface (mounted under /v1/admin, prefix stripped):
//
//	GET  /models    registry state: active/previous/entries, shadow stats
//	POST /retrain   consume buffered feedback, commit a candidate
//	                generation, start shadow-scoring it
//	POST /promote   gate on shadow divergence (min docs, flip rate, mean
//	                delta; ?force=1 overrides), activate in the registry
//	                and hot-swap the fleet
//	POST /rollback  registry rollback to the previous generation and
//	                hot-swap back
//	POST /swap      {"generation":N} activate + hot-swap a specific
//	                committed generation
//	POST /shadow    {"generation":N,"rate":0.5} start shadowing a
//	                committed generation, or {"clear":true} to stop
package lifecycle

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"harassrepro/internal/annotate"
	"harassrepro/internal/core"
	"harassrepro/internal/corpus/store"
	"harassrepro/internal/registry"
	"harassrepro/internal/serve"
)

// Config configures a Manager. Zero-valued gates pick conservative
// defaults.
type Config struct {
	// Registry is the on-disk model store. Required.
	Registry *registry.Registry
	// Seed drives retrain determinism (one split per generation).
	Seed uint64
	// MinFeedback is the buffered-feedback threshold for AutoRetrain
	// and the minimum batch POST /retrain accepts. Default 8.
	MinFeedback int
	// AutoRetrain starts a retrain in the background whenever the
	// feedback buffer reaches MinFeedback.
	AutoRetrain bool
	// ShadowRate is the live-traffic fraction a committed candidate
	// shadow-scores. Default 0.25.
	ShadowRate float64
	// MinShadowDocs is the promotion gate's minimum shadow sample.
	// Default 32.
	MinShadowDocs uint64
	// MaxFlipRate is the promotion gate's maximum label-flip fraction.
	// Default 0.2.
	MaxFlipRate float64
	// MaxMeanDelta is the promotion gate's maximum mean absolute score
	// delta. Default 0.25.
	MaxMeanDelta float64
	// SwapTimeout bounds one fleet rotation. Default 30s.
	SwapTimeout time.Duration
	// ReplayStorePath, when set, names a segmented corpus store whose
	// historical documents augment every retrain's training seed
	// (registry.RetrainConfig.ReplayStore). The store is opened per
	// retrain round, so segments appended between rounds are replayed.
	ReplayStorePath string
	// ReplayLimit caps the replayed examples per round (default 256).
	ReplayLimit int
	// Logf, when set, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.MinFeedback <= 0 {
		c.MinFeedback = 8
	}
	if c.ShadowRate <= 0 {
		c.ShadowRate = 0.25
	}
	if c.MinShadowDocs == 0 {
		c.MinShadowDocs = 32
	}
	if c.MaxFlipRate <= 0 {
		c.MaxFlipRate = 0.2
	}
	if c.MaxMeanDelta <= 0 {
		c.MaxMeanDelta = 0.25
	}
	if c.SwapTimeout <= 0 {
		c.SwapTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Manager is the model-lifecycle control loop. It is safe for
// concurrent use; retrains are single-flight.
type Manager struct {
	cfg Config
	reg *registry.Registry
	mux *http.ServeMux

	srv *serve.Server // bound serving fleet (nil until Bind)

	mu         sync.Mutex
	fb         []registry.Feedback
	retraining bool
	candidate  uint64 // generation currently shadow-scoring, 0 if none
	retrains   uint64
}

// New builds a Manager over an opened registry.
func New(cfg Config) (*Manager, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("lifecycle: nil registry")
	}
	cfg.fillDefaults()
	m := &Manager{cfg: cfg, reg: cfg.Registry}
	m.mux = http.NewServeMux()
	m.mux.HandleFunc("GET /models", m.handleModels)
	m.mux.HandleFunc("POST /retrain", m.handleRetrain)
	m.mux.HandleFunc("POST /promote", m.handlePromote)
	m.mux.HandleFunc("POST /rollback", m.handleRollback)
	m.mux.HandleFunc("POST /swap", m.handleSwap)
	m.mux.HandleFunc("POST /shadow", m.handleShadow)
	return m, nil
}

// Bind attaches the serving fleet the Manager swaps and shadows.
func (m *Manager) Bind(srv *serve.Server) { m.srv = srv }

// ServeHTTP is the admin surface (mount under /v1/admin with the
// prefix stripped).
func (m *Manager) ServeHTTP(w http.ResponseWriter, r *http.Request) { m.mux.ServeHTTP(w, r) }

// model wraps a committed generation as a serving handle.
func (m *Manager) model(gen uint64) (*serve.Model, error) {
	det, err := m.reg.Load(gen)
	if err != nil {
		return nil, err
	}
	var seed uint64
	if e, ok := m.reg.Entry(gen); ok {
		seed = e.Seed
	}
	return &serve.Model{Backend: det, Generation: gen, Seed: seed, Thresholds: det}, nil
}

// AddFeedback implements serve.FeedbackSink: buffer the batch and,
// with AutoRetrain, kick a background retrain once the buffer reaches
// MinFeedback. Never blocks on training.
func (m *Manager) AddFeedback(items []serve.FeedbackItem) error {
	m.mu.Lock()
	for _, it := range items {
		m.fb = append(m.fb, toFeedback(it))
	}
	n := len(m.fb)
	kick := m.cfg.AutoRetrain && n >= m.cfg.MinFeedback && !m.retraining
	if kick {
		m.retraining = true
	}
	m.mu.Unlock()
	if kick {
		go func() {
			if _, _, err := m.retrain(true); err != nil {
				m.cfg.Logf("lifecycle: auto-retrain: %v", err)
			}
		}()
	}
	return nil
}

// FeedbackBuffered reports the number of items awaiting a retrain.
func (m *Manager) FeedbackBuffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.fb)
}

// toFeedback converts the wire item to the retrain pipeline's form.
func toFeedback(it serve.FeedbackItem) registry.Feedback {
	task := annotate.TaskCTH
	switch it.Task {
	case "dox", string(annotate.TaskDox):
		task = annotate.TaskDox
	}
	return registry.Feedback{ID: it.ID, Platform: it.Platform, Text: it.Text, Task: task, Label: it.Label}
}

// retrain consumes the feedback buffer, commits the candidate
// generation and starts shadow-scoring it. locked=true means the
// caller already claimed the single-flight slot.
func (m *Manager) retrain(locked bool) (uint64, registry.RetrainResult, error) {
	m.mu.Lock()
	if !locked {
		if m.retraining {
			m.mu.Unlock()
			return 0, registry.RetrainResult{}, fmt.Errorf("lifecycle: retrain already running")
		}
		m.retraining = true
	}
	fb := m.fb
	m.fb = nil
	round := m.retrains
	m.retrains++
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.retraining = false
		m.mu.Unlock()
	}()

	restore := func() {
		m.mu.Lock()
		m.fb = append(fb, m.fb...)
		m.mu.Unlock()
	}
	if len(fb) == 0 {
		restore()
		return 0, registry.RetrainResult{}, fmt.Errorf("lifecycle: no feedback buffered")
	}
	base, baseGen, err := m.reg.LoadActive()
	if err != nil {
		restore()
		return 0, registry.RetrainResult{}, fmt.Errorf("lifecycle: loading active model: %w", err)
	}
	rcfg := registry.RetrainConfig{Seed: m.cfg.Seed + round, ReplayLimit: m.cfg.ReplayLimit}
	if m.cfg.ReplayStorePath != "" {
		st, err := store.Open(m.cfg.ReplayStorePath)
		if err != nil {
			restore()
			return 0, registry.RetrainResult{}, fmt.Errorf("lifecycle: opening replay store: %w", err)
		}
		defer st.Close()
		rcfg.ReplayStore = st
	}
	cand, res, err := registry.Retrain(base, fb, rcfg)
	if err != nil {
		restore()
		return 0, registry.RetrainResult{}, fmt.Errorf("lifecycle: retrain: %w", err)
	}
	note := fmt.Sprintf("base gen %d, %d feedback items, task %s", baseGen, res.Feedback, res.Task)
	if res.Replayed > 0 {
		note += fmt.Sprintf(", %d replayed from store", res.Replayed)
	}
	gen, err := m.reg.Commit(registry.Entry{
		Seed:   m.cfg.Seed + round,
		Source: "retrain",
		Note:   note,
	}, cand.Save)
	if err != nil {
		restore()
		return 0, registry.RetrainResult{}, fmt.Errorf("lifecycle: committing candidate: %w", err)
	}
	m.cfg.Logf("lifecycle: committed candidate generation %d (%d feedback items, task %s)", gen, res.Feedback, res.Task)

	if m.srv != nil {
		mdl := &serve.Model{Backend: cand, Generation: gen, Seed: m.cfg.Seed + round, Thresholds: cand}
		if err := m.srv.SetShadow(mdl, m.cfg.ShadowRate); err != nil {
			return gen, res, fmt.Errorf("lifecycle: starting shadow for generation %d: %w", gen, err)
		}
		m.mu.Lock()
		m.candidate = gen
		m.mu.Unlock()
		m.cfg.Logf("lifecycle: shadow-scoring generation %d at rate %.2f", gen, m.cfg.ShadowRate)
	}
	return gen, res, nil
}

// gate checks the shadow divergence ledger against the promotion
// thresholds; a non-nil error names the failing gate.
func (m *Manager) gate(st serve.ShadowStats, ok bool) error {
	if !ok {
		return fmt.Errorf("no shadow run active")
	}
	if st.Docs < m.cfg.MinShadowDocs {
		return fmt.Errorf("shadow sample too small: %d docs < %d", st.Docs, m.cfg.MinShadowDocs)
	}
	if flipRate := float64(st.LabelFlips) / float64(st.Docs); flipRate > m.cfg.MaxFlipRate {
		return fmt.Errorf("label-flip rate %.3f > %.3f", flipRate, m.cfg.MaxFlipRate)
	}
	if st.MeanDelta > m.cfg.MaxMeanDelta {
		return fmt.Errorf("mean score delta %.4f > %.4f", st.MeanDelta, m.cfg.MaxMeanDelta)
	}
	return nil
}

// promote activates gen in the registry and hot-swaps the fleet onto
// it, returning the swap latency.
func (m *Manager) promote(gen uint64) (time.Duration, error) {
	mdl, err := m.model(gen)
	if err != nil {
		return 0, fmt.Errorf("lifecycle: loading generation %d: %w", gen, err)
	}
	if err := m.reg.Activate(gen); err != nil {
		return 0, fmt.Errorf("lifecycle: activating generation %d: %w", gen, err)
	}
	if m.srv == nil {
		return 0, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.SwapTimeout)
	defer cancel()
	t0 := time.Now()
	if err := m.srv.SwapModel(ctx, mdl); err != nil {
		return 0, fmt.Errorf("lifecycle: swapping to generation %d: %w", gen, err)
	}
	return time.Since(t0), nil
}

// --- admin handlers ---

type modelsView struct {
	Active    uint64             `json:"active"`
	Previous  uint64             `json:"previous,omitempty"`
	Candidate uint64             `json:"candidate,omitempty"`
	Entries   []registry.Entry   `json:"entries"`
	Shadow    *serve.ShadowStats `json:"shadow,omitempty"`
	Buffered  int                `json:"feedback_buffered"`
}

func (m *Manager) handleModels(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	view := modelsView{Candidate: m.candidate, Buffered: len(m.fb)}
	m.mu.Unlock()
	view.Active = m.reg.Active()
	view.Previous = m.reg.Previous()
	view.Entries = m.reg.Entries()
	if m.srv != nil {
		if st, ok := m.srv.ShadowStats(); ok {
			view.Shadow = &st
		}
	}
	writeJSON(w, http.StatusOK, view)
}

func (m *Manager) handleRetrain(w http.ResponseWriter, _ *http.Request) {
	gen, res, err := m.retrain(false)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"task":       res.Task,
		"feedback":   res.Feedback,
		"replayed":   res.Replayed,
		"labelled":   res.Labelled,
		"thresholds": res.Thresholds,
	})
}

func (m *Manager) handlePromote(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	gen := m.candidate
	m.mu.Unlock()
	if gen == 0 {
		writeErr(w, http.StatusConflict, fmt.Errorf("no candidate generation (retrain first)"))
		return
	}
	force := r.URL.Query().Get("force") == "1"
	var st serve.ShadowStats
	var ok bool
	if m.srv != nil {
		st, ok = m.srv.ShadowStats()
	}
	if !force {
		if err := m.gate(st, ok); err != nil {
			writeErr(w, http.StatusPreconditionFailed, fmt.Errorf("promotion gate: %w", err))
			return
		}
	}
	d, err := m.promote(gen)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if m.srv != nil {
		m.srv.ClearShadow()
	}
	m.mu.Lock()
	m.candidate = 0
	m.mu.Unlock()
	m.cfg.Logf("lifecycle: promoted generation %d (swap %v, shadow docs %d, flips %d)", gen, d, st.Docs, st.LabelFlips)
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"swap_ns":    d.Nanoseconds(),
		"forced":     force,
		"shadow":     st,
	})
}

func (m *Manager) handleRollback(w http.ResponseWriter, _ *http.Request) {
	gen, err := m.reg.Rollback()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	mdl, err := m.model(gen)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	var d time.Duration
	if m.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), m.cfg.SwapTimeout)
		defer cancel()
		t0 := time.Now()
		if err := m.srv.SwapModel(ctx, mdl); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		d = time.Since(t0)
	}
	m.cfg.Logf("lifecycle: rolled back to generation %d (swap %v)", gen, d)
	writeJSON(w, http.StatusOK, map[string]any{"generation": gen, "swap_ns": d.Nanoseconds()})
}

func (m *Manager) handleSwap(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Generation uint64 `json:"generation"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := m.reg.Entry(req.Generation); !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no committed generation %d", req.Generation))
		return
	}
	d, err := m.promote(req.Generation)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	m.cfg.Logf("lifecycle: swapped to generation %d (swap %v)", req.Generation, d)
	writeJSON(w, http.StatusOK, map[string]any{"generation": req.Generation, "swap_ns": d.Nanoseconds()})
}

func (m *Manager) handleShadow(w http.ResponseWriter, r *http.Request) {
	if m.srv == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("no serving fleet bound"))
		return
	}
	var req struct {
		Generation uint64  `json:"generation"`
		Rate       float64 `json:"rate"`
		Clear      bool    `json:"clear"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Clear {
		m.srv.ClearShadow()
		m.mu.Lock()
		m.candidate = 0
		m.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"cleared": true})
		return
	}
	mdl, err := m.model(req.Generation)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	rate := req.Rate
	if rate <= 0 {
		rate = m.cfg.ShadowRate
	}
	if err := m.srv.SetShadow(mdl, rate); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	m.mu.Lock()
	m.candidate = req.Generation
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"generation": req.Generation, "rate": rate})
}

// BootModel loads or trains the serving model for harassd startup: the
// registry's active generation when one exists, otherwise the detector
// produced by train is committed and activated as generation 1.
func BootModel(reg *registry.Registry, seed uint64, train func() (*core.Detector, error)) (*serve.Model, *core.Detector, error) {
	if gen := reg.Active(); gen != 0 {
		det, err := reg.Load(gen)
		if err != nil {
			return nil, nil, err
		}
		var s uint64
		if e, ok := reg.Entry(gen); ok {
			s = e.Seed
		}
		return &serve.Model{Backend: det, Generation: gen, Seed: s, Thresholds: det}, det, nil
	}
	det, err := train()
	if err != nil {
		return nil, nil, err
	}
	gen, err := reg.Commit(registry.Entry{Seed: seed, Source: "train", Note: "boot-time training"}, det.Save)
	if err != nil {
		return nil, nil, err
	}
	if err := reg.Activate(gen); err != nil {
		return nil, nil, err
	}
	return &serve.Model{Backend: det, Generation: gen, Seed: seed, Thresholds: det}, det, nil
}

func decodeBody(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if len(body) == 0 {
		return fmt.Errorf("empty body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("invalid JSON: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
