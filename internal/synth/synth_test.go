package synth

import (
	"strings"
	"testing"

	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/randx"
	"harassrepro/internal/taxonomy"
)

func TestPersonaDeterministic(t *testing.T) {
	a := NewPersona(randx.New(5))
	b := NewPersona(randx.New(5))
	if a != b {
		t.Fatal("personas differ for identical seeds")
	}
	c := NewPersona(randx.New(6))
	if a == c {
		t.Fatal("personas identical for different seeds")
	}
}

func TestPersonaPIIExtractable(t *testing.T) {
	// Every PII field a persona carries must be recoverable by the PII
	// extractors when rendered into a dox; this ties the generator and
	// the extraction pipeline together.
	ex := pii.NewExtractor()
	rng := randx.New(7)
	for i := 0; i < 50; i++ {
		p := NewPersona(rng.SplitN("persona", i))
		dox := Dox(p, pii.AllTypes(), DoxStylePaste, rng)
		got := map[pii.Type]bool{}
		for _, ty := range ex.Types(dox) {
			got[ty] = true
		}
		for _, want := range pii.AllTypes() {
			if !got[want] {
				t.Fatalf("persona %d: %s not extracted from dox:\n%s", i, want, dox)
			}
		}
	}
}

func TestPersonaPhoneIsFictional(t *testing.T) {
	rng := randx.New(9)
	for i := 0; i < 100; i++ {
		p := NewPersona(rng)
		if p.Phone[3:6] != "555" {
			t.Fatalf("phone %s not in fictional 555 exchange", p.Phone)
		}
		if len(p.Phone) != 10 {
			t.Fatalf("phone %s wrong length", p.Phone)
		}
	}
}

func TestPersonaGenderSplit(t *testing.T) {
	rng := randx.New(11)
	var m, f int
	for i := 0; i < 3000; i++ {
		switch NewPersona(rng).Gender {
		case gender.Male:
			m++
		case gender.Female:
			f++
		}
	}
	ratio := float64(m) / float64(f)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("male:female ratio = %v, want ~2", ratio)
	}
}

func TestDoxStyles(t *testing.T) {
	rng := randx.New(13)
	p := NewPersona(rng)
	types := []pii.Type{pii.Address, pii.Phone}
	for _, style := range []DoxStyle{DoxStylePaste, DoxStyleBoard, DoxStyleChat, DoxStyleMicro} {
		text := Dox(p, types, style, rng)
		if !strings.Contains(text, p.StreetAddress) {
			t.Errorf("style %d: address missing:\n%s", style, text)
		}
		if !strings.Contains(text, p.Phone[0:3]) {
			t.Errorf("style %d: phone missing:\n%s", style, text)
		}
	}
	// Paste style is the long form.
	long := Dox(p, pii.AllTypes(), DoxStylePaste, rng)
	short := Dox(p, []pii.Type{pii.Email}, DoxStyleBoard, rng)
	if len(long) <= len(short) {
		t.Error("paste dox not longer than board dox")
	}
}

func TestDoxOnlyRequestedPII(t *testing.T) {
	ex := pii.NewExtractor()
	rng := randx.New(15)
	p := NewPersona(rng)
	text := Dox(p, []pii.Type{pii.Email}, DoxStyleChat, rng)
	for _, ty := range ex.Types(text) {
		if ty != pii.Email {
			t.Errorf("unrequested PII type %s in dox:\n%s", ty, text)
		}
	}
}

func TestCTHCategorizerRecovery(t *testing.T) {
	// Generated incitements must be recoverable by the taxonomy
	// categorizer: for each subcategory, the planted label should be
	// recovered (at the parent level) in the overwhelming majority of
	// renderings.
	cat := taxonomy.NewCategorizer()
	rng := randx.New(17)
	for _, sub := range taxonomy.Subs() {
		hits := 0
		const n = 40
		for i := 0; i < n; i++ {
			p := NewPersona(rng.SplitN(string(sub), i))
			mode := GenderedPronouns
			if i%3 == 0 {
				mode = NeutralPronouns
			}
			text := CTH(p, []taxonomy.Sub{sub}, mode, rng)
			if cat.Categorize(text).HasParent(sub.Parent()) {
				hits++
			}
		}
		if hits < n*9/10 {
			t.Errorf("subcategory %q recovered only %d/%d", sub, hits, n)
		}
	}
}

func TestCTHGenderRecovery(t *testing.T) {
	rng := randx.New(19)
	misses := 0
	const n = 200
	for i := 0; i < n; i++ {
		p := NewPersona(rng.SplitN("g", i))
		text := CTH(p, []taxonomy.Sub{taxonomy.SubMassFlagging, taxonomy.SubRaiding}, GenderedPronouns, rng)
		if got := gender.Infer(text); got != p.Gender {
			misses++
		}
	}
	// Some templates legitimately carry no pronouns; the bulk must match.
	if misses > n/4 {
		t.Errorf("gendered CTH inferred wrong/unknown gender %d/%d times", misses, n)
	}
}

func TestCTHNeutralPronounsUndetectable(t *testing.T) {
	rng := randx.New(21)
	for i := 0; i < 100; i++ {
		p := NewPersona(rng.SplitN("n", i))
		text := CTH(p, []taxonomy.Sub{taxonomy.SubReportingMisc}, NeutralPronouns, rng)
		if got := gender.Infer(text); got != gender.Unknown {
			t.Fatalf("neutral CTH %q inferred %v", text, got)
		}
	}
}

func TestCTHMultiLabel(t *testing.T) {
	cat := taxonomy.NewCategorizer()
	rng := randx.New(23)
	p := NewPersona(rng)
	text := CTH(p, []taxonomy.Sub{taxonomy.SubDoxing, taxonomy.SubRaiding}, GenderedPronouns, rng)
	label := cat.Categorize(text)
	if !label.HasParent(taxonomy.ContentLeakage) || !label.HasParent(taxonomy.Overloading) {
		t.Errorf("multi-label CTH coded as %v:\n%s", label.Subs(), text)
	}
}

func TestBenignFlavors(t *testing.T) {
	rng := randx.New(25)
	for _, f := range []Flavor{FlavorBoard, FlavorChat, FlavorMicro, FlavorPaste, FlavorBlog} {
		text := Benign(f, rng)
		if text == "" {
			t.Errorf("flavor %d produced empty text", f)
		}
	}
	// Pastes are long-form on average.
	var pasteLen, chatLen int
	for i := 0; i < 200; i++ {
		pasteLen += len(Benign(FlavorPaste, rng))
		chatLen += len(Benign(FlavorChat, rng))
	}
	if pasteLen <= chatLen {
		t.Error("paste flavor not longer than chat flavor on average")
	}
}

func TestBenignMostlyUncategorized(t *testing.T) {
	// Benign chatter must rarely trip the taxonomy categorizer; hard
	// negatives are designed to fool the *classifier*, not the coder.
	cat := taxonomy.NewCategorizer()
	rng := randx.New(27)
	fp := 0
	const n = 500
	for i := 0; i < n; i++ {
		if !cat.Categorize(Benign(FlavorBoard, rng)).Empty() {
			fp++
		}
	}
	if fp > n/50 {
		t.Errorf("benign text categorized as attack %d/%d times", fp, n)
	}
}

func TestBenignNoPII(t *testing.T) {
	ex := pii.NewExtractor()
	rng := randx.New(29)
	for _, f := range []Flavor{FlavorBoard, FlavorChat, FlavorMicro, FlavorBlog} {
		for i := 0; i < 100; i++ {
			text := Benign(f, rng)
			if got := ex.Extract(text); len(got) != 0 {
				t.Fatalf("benign flavor %d leaked PII %v in %q", f, got, text)
			}
		}
	}
}

func TestMobilizerMatchesFigure4Vocabulary(t *testing.T) {
	rng := randx.New(31)
	fig4 := []string{"we need to", "we should", "lets", "we have", "we will", "we", "everyone", "all"}
	for i := 0; i < 50; i++ {
		m := Mobilizer(rng)
		found := false
		for _, q := range fig4 {
			if strings.Contains(m, q) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("mobilizer %q matches no Figure 4 clause", m)
		}
	}
}

func TestSyntheticUsername(t *testing.T) {
	rng := randx.New(33)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		u := SyntheticUsername(rng)
		if u == "" || strings.Contains(u, " ") {
			t.Fatalf("bad username %q", u)
		}
		seen[u] = true
	}
	if len(seen) < 50 {
		t.Errorf("usernames not diverse: %d distinct of 100", len(seen))
	}
}

func TestThreadReplyNonEmpty(t *testing.T) {
	rng := randx.New(35)
	for i := 0; i < 100; i++ {
		if ThreadReply(rng) == "" {
			t.Fatal("empty thread reply")
		}
	}
}

func BenchmarkNewPersona(b *testing.B) {
	rng := randx.New(1)
	for i := 0; i < b.N; i++ {
		NewPersona(rng)
	}
}

func BenchmarkCTH(b *testing.B) {
	rng := randx.New(1)
	p := NewPersona(rng)
	subs := []taxonomy.Sub{taxonomy.SubMassFlagging}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CTH(p, subs, GenderedPronouns, rng)
	}
}

func BenchmarkDox(b *testing.B) {
	rng := randx.New(1)
	p := NewPersona(rng)
	types := pii.AllTypes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dox(p, types, DoxStylePaste, rng)
	}
}
