package synth

import (
	"fmt"
	"strings"

	"harassrepro/internal/pii"
	"harassrepro/internal/randx"
	"harassrepro/internal/taxonomy"
)

// PronounMode controls how generated incitement text refers to its target.
// The paper could resolve gendered pronouns for only ~57% of calls to
// harassment (Table 10); NeutralPronouns generates the unresolvable rest.
type PronounMode int

const (
	// GenderedPronouns uses the persona's he/him/his or she/her/her set.
	GenderedPronouns PronounMode = iota
	// NeutralPronouns uses they/them/their, leaving target gender
	// undetectable by the pronoun heuristic.
	NeutralPronouns
)

// pronouns returns (subject, object, possessive) for the persona under
// the given mode.
func pronounsFor(p Persona, mode PronounMode) (subj, obj, poss string) {
	if mode == NeutralPronouns {
		return "they", "them", "their"
	}
	return p.Pronouns()
}

// mobilizers are the mobilizing-language openers that both the Figure 4
// seed query and real calls to harassment share.
var mobilizers = []string{
	"we need to", "we should", "lets", "we have to", "we will", "everyone should", "all of us need to",
}

// Mobilizer returns a random mobilizing-language opener.
func Mobilizer(rng *randx.Source) string { return randx.Pick(rng, mobilizers) }

// cthTemplate renders one incitement sentence for a subcategory. The
// phrasing embeds the cue vocabulary the taxonomy categorizer codes on,
// exactly as real incitements carry the attack vocabulary the paper's
// coders keyed on.
type cthTemplate func(p Persona, subj, obj, poss string, rng *randx.Source) string

var cthTemplates = map[taxonomy.Sub][]cthTemplate{
	taxonomy.SubDoxing: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s %s must be harassed, get %s phone number and address", Mobilizer(rng), p.FullName(), poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s find %s real name and post the dox here", Mobilizer(rng), poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s drop %s info, someone has the dox already", Mobilizer(rng), poss)
		},
	},
	taxonomy.SubLeakedChats: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s went through the leaked discord logs, %s is in there, match the usernames from the leaked logs", p.FirstName, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s comb the leaked chat logs and build a profile on %s", Mobilizer(rng), obj)
		},
	},
	taxonomy.SubNonConsensual: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s post %s private photos everywhere %s goes online", Mobilizer(rng), poss, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("someone leak %s nudes, %s deserves it", poss, subj)
		},
	},
	taxonomy.SubOutingDeadnaming: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s out %s as a member of that group to everyone %s knows", Mobilizer(rng), obj, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("use the old deadname everywhere so %s can't hide", subj)
		},
	},
	taxonomy.SubDoxPropagation: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s spread the dox to every board before it gets deleted", Mobilizer(rng))
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("repost the dox on %s, mirror it everywhere", randx.Pick(rng, []string{"every channel", "all the threads", "the other servers"}))
		},
	},
	taxonomy.SubContentLeakMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s dig up %s info and leak everything about %s", Mobilizer(rng), poss, obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s leak everything about %s, start with the old forum posts", Mobilizer(rng), obj)
		},
	},
	taxonomy.SubImpersonatedProfiles: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s make fake accounts pretending to be %s and post garbage", Mobilizer(rng), p.FullName())
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s impersonate %s on every platform until people hate %s", Mobilizer(rng), obj, obj)
		},
	},
	taxonomy.SubSyntheticPorn: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("make deep fakes of porn with %s. send them to all %s friends and parents and family", obj, poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s make deepfake nudes of %s and post them where %s works", Mobilizer(rng), obj, subj)
		},
	},
	taxonomy.SubImpersonationMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s pose as %s and ruin the meetup", Mobilizer(rng), obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("someone should pretend to be %s on the forum and make %s look unhinged", obj, obj)
		},
	},
	taxonomy.SubAccountLockout: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("physh %s emails and find any info to blackmail with", poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s hack %s account and lock %s out of it for good", Mobilizer(rng), poss, obj)
		},
	},
	taxonomy.SubLockoutMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s get into %s phone, there has to be something on it", Mobilizer(rng), poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s break into %s computer while %s is streaming", Mobilizer(rng), poss, subj)
		},
	},
	taxonomy.SubNegativeRatings: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s leave one star reviews on %s shop until %s closes", Mobilizer(rng), poss, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("review bomb %s business page, downvote everything", poss)
		},
	},
	taxonomy.SubRaiding: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s raid %s stream tonight, bring everyone", Mobilizer(rng), poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s flood the comments on every video %s posts", Mobilizer(rng), subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("organize a brigade against %s channel", poss)
		},
	},
	taxonomy.SubSpamming: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("post FB and Twitter accounts so we can spam %s with hate", obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s spam %s inbox from burner accounts", Mobilizer(rng), poss)
		},
	},
	taxonomy.SubOverloadingMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s flood %s with notifications day and night", Mobilizer(rng), obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s bury %s in messages until the phone is useless", Mobilizer(rng), obj)
		},
	},
	taxonomy.SubHashtagHijacking: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s hijack the hashtag %s started and drown it in our posts", Mobilizer(rng), subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("use #%sExposed on twitter to derail %s campaign tag", p.LastName, poss)
		},
	},
	taxonomy.SubPublicOpinionMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s push the narrative that %s faked the whole thing", Mobilizer(rng), subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s spread the story that %s was never there, make it stick", Mobilizer(rng), subj)
		},
	},
	taxonomy.SubFalseReporting: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s call the cops on %s, say there are weapons in the house", Mobilizer(rng), obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s report %s to %s employer and the irs at the same time", Mobilizer(rng), obj, poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("file a false report with cps about %s kids", poss)
		},
	},
	taxonomy.SubMassFlagging: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s mass-report %s twitter and youtube", Mobilizer(rng), poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s mass flag every video until the channel is gone", Mobilizer(rng))
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s get %s account banned, report %s channel until it's taken down", Mobilizer(rng), poss, poss)
		},
	},
	taxonomy.SubReportingMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s report %s wherever %s shows up", Mobilizer(rng), obj, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s report %s on every site, one of them will stick", Mobilizer(rng), obj)
		},
	},
	taxonomy.SubReputationPrivate: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s email %s boss at %s with the screenshots", Mobilizer(rng), poss, p.Employer)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("send the pics to %s %s so the family knows what %s is", poss, p.FamilyMember, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s contact %s landlord and %s school about this", Mobilizer(rng), poss, poss)
		},
	},
	taxonomy.SubReputationPublic: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s expose %s publicly, post flyers about %s around %s", Mobilizer(rng), obj, obj, p.City)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("let the whole neighbourhood know who %s is, %s should not get to hide", subj, subj)
		},
	},
	taxonomy.SubReputationMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s ruin %s reputation for good, %s deserves ostracism", Mobilizer(rng), poss, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s destroy %s name in this scene, nobody should work with %s again", Mobilizer(rng), poss, obj)
		},
	},
	taxonomy.SubStalkingTracking: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("we should find all their yachts and stick trackers to them. and track them on gps")
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s follow %s after work and post %s whereabouts daily", Mobilizer(rng), obj, poss)
		},
	},
	taxonomy.SubSurveillanceMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s keep tabs on %s and log everything %s does", Mobilizer(rng), obj, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s watch %s every move and post updates here", Mobilizer(rng), poss)
		},
	},
	taxonomy.SubHateSpeech: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s message %s with racial slurs until %s quits", Mobilizer(rng), obj, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("fill %s mentions with hate speech, every single day", poss)
		},
	},
	taxonomy.SubUnwantedExplicit: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s send %s explicit images from throwaways nonstop", Mobilizer(rng), obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s send %s gore until %s stops posting", Mobilizer(rng), obj, subj)
		},
	},
	taxonomy.SubToxicMisc: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("send %s bleach and tell %s %s's trash and you'd rather a bad one than this", obj, obj, subj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("tell %s %s is worthless in every reply until %s logs off", obj, subj, subj)
		},
	},
	taxonomy.SubGeneric: {
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s bully %s off the internet entirely", Mobilizer(rng), obj)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s go after %s, make %s life hell", Mobilizer(rng), obj, poss)
		},
		func(p Persona, subj, obj, poss string, rng *randx.Source) string {
			return fmt.Sprintf("%s blackmail %s with whatever we can find", Mobilizer(rng), obj)
		},
	},
}

// CTH renders a call-to-harassment message inciting the given attack
// subcategories against the persona, with the requested pronoun mode.
// The output is one message combining one sentence per subcategory, plus
// optional surrounding chatter.
func CTH(p Persona, subs []taxonomy.Sub, mode PronounMode, rng *randx.Source) string {
	subj, obj, poss := pronounsFor(p, mode)
	var parts []string
	if rng.Bool(0.4) {
		parts = append(parts, randx.Pick(rng, cthLeadIns))
	}
	for _, s := range subs {
		bank := cthTemplates[s]
		if len(bank) == 0 {
			continue
		}
		parts = append(parts, randx.Pick(rng, bank)(p, subj, obj, poss, rng))
	}
	if rng.Bool(0.3) {
		parts = append(parts, randx.Pick(rng, cthOutros))
	}
	return strings.Join(parts, ". ")
}

var cthLeadIns = []string{
	"this one has been asking for it",
	"you all saw what happened in the other thread",
	"time to do something about this",
	"heads up about the person from yesterday",
}

var cthOutros = []string{
	"screenshot everything before it gets wiped",
	"spread the word",
	"do not let up",
	"post results in this thread",
}

// DoxStyle selects the rendering format of a generated dox.
type DoxStyle int

const (
	// DoxStylePaste is the long-form structured paste-site dox: header,
	// narration, labelled PII block, often an invitation for more info.
	DoxStylePaste DoxStyle = iota
	// DoxStyleBoard is the short image-board form: a couple of lines
	// with partial PII.
	DoxStyleBoard
	// DoxStyleChat is the chat drop: PII lines pasted into a channel.
	DoxStyleChat
	// DoxStyleMicro is the microblog form: compact, handle-centric.
	DoxStyleMicro
)

// Dox renders a dox of the persona exposing exactly the given PII types,
// in the given style. The narration uses gendered pronouns (the paper
// could associate pronouns with the target in 94.3% of sampled doxes).
func Dox(p Persona, types []pii.Type, style DoxStyle, rng *randx.Source) string {
	subj, _, poss := p.Pronouns()
	fields := piiLines(p, types)
	// Short-form styles expose employer/family occasionally too (the
	// Table 7 Reputation signal), at a lower rate than pastes.
	repTail := ""
	if rng.Bool(0.2) {
		repTail = " works at " + p.Employer
	}
	switch style {
	case DoxStyleBoard:
		lead := fmt.Sprintf("found %s. this is %s: %s%s", randx.Pick(rng, []string{"the guy", "the account owner", "the admin", "the poster"}), p.FullName(), strings.Join(fields, " / "), repTail)
		return lead
	case DoxStyleChat:
		return fmt.Sprintf("dropping %s info now%s\n%s", poss, repTail, strings.Join(fields, "\n"))
	case DoxStyleMicro:
		return fmt.Sprintf("know who %s is: %s.%s %s", subj, p.FullName(), repTail, strings.Join(fields, " "))
	default: // DoxStylePaste
		var b strings.Builder
		fmt.Fprintf(&b, "======== DOX: %s ========\n", strings.ToUpper(p.FullName()))
		fmt.Fprintf(&b, "%s has been running %s mouth online for months. ", p.FirstName, poss)
		fmt.Fprintf(&b, "everything below is confirmed. %s lives in %s.\n\n", subj, p.City)
		for _, f := range fields {
			fmt.Fprintf(&b, "%s\n", f)
		}
		// Reputation-relevant exposure (employer / family), the Table 7
		// "Reputation" risk signal the paper annotated manually; present
		// in a substantial minority of doxes (~29% carry the risk).
		if rng.Bool(0.35) {
			if rng.Bool(0.5) {
				fmt.Fprintf(&b, "works at %s\n", p.Employer)
			} else {
				fmt.Fprintf(&b, "%s %s lives in the same town, ask around\n", poss, p.FamilyMember)
			}
		}
		if rng.Bool(0.5) {
			b.WriteString("\nmore info welcome, post what you have\n")
		}
		return b.String()
	}
}

// piiLines renders the labelled PII block for the requested types.
func piiLines(p Persona, types []pii.Type) []string {
	var out []string
	for _, t := range types {
		switch t {
		case pii.Address:
			out = append(out, "Address: "+p.FullAddress())
		case pii.CreditCard:
			out = append(out, "Card: "+p.Card)
		case pii.Email:
			out = append(out, "Email: "+p.Email)
		case pii.Facebook:
			out = append(out, "fb: "+p.FacebookHandle)
		case pii.Instagram:
			out = append(out, "instagram: "+p.InstagramHandle)
		case pii.Phone:
			out = append(out, "Phone: "+p.FormattedPhone())
		case pii.SSN:
			out = append(out, "SSN: "+p.SSN)
		case pii.Twitter:
			out = append(out, "twitter: @"+p.TwitterHandle)
		case pii.YouTube:
			out = append(out, "https://youtube.com/c/"+p.YouTubeHandle)
		}
	}
	return out
}
