// Package synth generates the synthetic entities and message text that
// substitute for the paper's proprietary platform crawls (DESIGN.md §1).
//
// All values are fictional by construction: names come from synthetic
// component lists, phone numbers use the reserved 555-01xx fictional
// exchange block, SSNs are drawn from shapes that pass format validation
// but are stamped from a synthetic generator, credit-card numbers are
// Luhn-valid numbers in test-only prefixes, and street addresses combine
// invented street names with generic suffixes. No real individual's data
// is used or reproduced.
package synth

import (
	"fmt"

	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/randx"
)

var (
	maleFirstNames = []string{
		"victor", "marcus", "dorian", "felix", "anton", "casper", "lyle",
		"roland", "silas", "tobias", "emmett", "hollis", "ivor", "lucian",
		"nestor", "orson", "percy", "quentin", "rufus", "stellan",
	}
	femaleFirstNames = []string{
		"mira", "celeste", "odette", "tamsin", "ingrid", "lenora", "saskia",
		"petra", "rosalind", "vesper", "wilhelmina", "xanthe", "yolanda",
		"zelda", "annika", "bryony", "cordelia", "delphine", "elspeth", "freya",
	}
	lastNames = []string{
		"ashgrove", "blackwood", "crestfall", "dunmore", "everhart",
		"fennimore", "grimsby", "holloway", "ironside", "jasperton",
		"kingsley", "larkspur", "mossbank", "northgate", "oakhurst",
		"pembrook", "quillfeather", "ravenscroft", "silverton", "thornbury",
	}
	streetNames = []string{
		"maple", "oak", "cedar", "willow", "birch", "aspen", "juniper",
		"magnolia", "sycamore", "hawthorn", "alder", "chestnut", "dogwood",
		"elm", "foxglove", "garland", "heather", "ivy", "laurel", "meadow",
	}
	streetSuffixes = []string{
		"Street", "Avenue", "Road", "Boulevard", "Drive", "Lane", "Court", "Way", "Place", "Terrace",
	}
	cities = []string{
		"Fairview", "Riverton", "Lakewood", "Milbrook", "Cedarburg",
		"Ashford", "Brookhaven", "Claremont", "Dunwich", "Eastvale",
	}
	states = []string{"OH", "IL", "TX", "CA", "NY", "PA", "GA", "NC", "MI", "WA"}

	emailDomains = []string{
		"mailnest.example", "postbox.example", "inboxly.example",
		"quickmail.example", "webletter.example",
	}
	employers = []string{
		"the hardware store downtown", "Lakeside Logistics", "the regional hospital",
		"Fairview Middle School", "the county library", "Northgate Insurance",
		"the car dealership on route 9", "Brookhaven Foods",
	}
	familyMembers = []string{"mother", "father", "sister", "brother", "wife", "husband", "cousin", "uncle"}
)

// Persona is a synthetic harassment target with a full set of fictional
// PII, the raw material for generated doxes and calls to harassment.
type Persona struct {
	FirstName string
	LastName  string
	Gender    gender.Gender // Male or Female

	StreetAddress string // "123 Maple Street"
	City          string
	State         string
	Zip           string

	Phone string // digits only, NANP-valid fictional 555-01xx number
	SSN   string // AAA-GG-SSSS, format-valid synthetic
	Email string
	Card  string // Luhn-valid test-prefix card number

	FacebookHandle  string
	InstagramHandle string
	TwitterHandle   string
	YouTubeHandle   string

	Employer     string
	FamilyMember string
}

// FullName returns "first last".
func (p Persona) FullName() string { return p.FirstName + " " + p.LastName }

// FullAddress returns the complete mailing address.
func (p Persona) FullAddress() string {
	return fmt.Sprintf("%s, %s, %s, %s", p.StreetAddress, p.City, p.State, p.Zip)
}

// FormattedPhone returns the phone in (AAA) BBB-CCCC form.
func (p Persona) FormattedPhone() string {
	return fmt.Sprintf("(%s) %s-%s", p.Phone[:3], p.Phone[3:6], p.Phone[6:])
}

// Pronouns returns the (subject, object, possessive) pronouns for the
// persona's gender.
func (p Persona) Pronouns() (subj, obj, poss string) {
	if p.Gender == gender.Female {
		return "she", "her", "her"
	}
	return "he", "him", "his"
}

// NewPersona generates a persona from the random source. The gender split
// follows the paper's observed CTH target ratio (roughly 2:1 male:female
// among gender-resolvable targets, Table 10).
func NewPersona(rng *randx.Source) Persona {
	p := Persona{}
	if rng.Bool(2.0 / 3.0) {
		p.Gender = gender.Male
		p.FirstName = randx.Pick(rng, maleFirstNames)
	} else {
		p.Gender = gender.Female
		p.FirstName = randx.Pick(rng, femaleFirstNames)
	}
	p.LastName = randx.Pick(rng, lastNames)

	p.StreetAddress = fmt.Sprintf("%d %s %s",
		rng.IntRange(1, 9999),
		capitalize(randx.Pick(rng, streetNames)),
		randx.Pick(rng, streetSuffixes))
	p.City = randx.Pick(rng, cities)
	p.State = randx.Pick(rng, states)
	p.Zip = fmt.Sprintf("%05d", rng.IntRange(10000, 99899))

	// Reserved fictional exchange: AAA-555-01XX.
	p.Phone = fmt.Sprintf("%d%02d555%04d", rng.IntRange(2, 9), rng.IntRange(12, 99), 100+rng.Intn(100))
	p.SSN = synthSSN(rng)
	p.Email = fmt.Sprintf("%s.%s%d@%s", p.FirstName, p.LastName, rng.IntRange(1, 99), randx.Pick(rng, emailDomains))
	p.Card = synthCard(rng)

	// Handles carry numeric discriminators so distinct personas do not
	// collide (colliding handles would spuriously link unrelated doxes
	// in the §7.3 repeated-dox analysis).
	disc := rng.IntRange(10, 99999)
	base := p.FirstName + "." + p.LastName
	p.FacebookHandle = fmt.Sprintf("%s.%d", base, disc)
	p.InstagramHandle = fmt.Sprintf("%s_%s_%d", p.FirstName, p.LastName, disc)
	// Twitter usernames are at most 15 characters.
	tw := p.LastName
	if len(tw) > 8 {
		tw = tw[:8]
	}
	p.TwitterHandle = fmt.Sprintf("%s_%s%d", p.FirstName[:1], tw, disc)
	p.YouTubeHandle = fmt.Sprintf("%s%s%dvlogs", p.FirstName, p.LastName, disc)

	p.Employer = randx.Pick(rng, employers)
	p.FamilyMember = randx.Pick(rng, familyMembers)
	return p
}

// synthSSN returns a format-valid synthetic SSN avoiding SSA-invalid
// ranges (area 000/666/9xx, group 00, serial 0000).
func synthSSN(rng *randx.Source) string {
	area := rng.IntRange(100, 665)
	if area == 666 {
		area = 667
	}
	group := rng.IntRange(1, 99)
	serial := rng.IntRange(1, 9999)
	return fmt.Sprintf("%03d-%02d-%04d", area, group, serial)
}

// cardPrefixes are test-only IIN prefixes per network (the classic
// public test-number prefixes).
var cardPrefixes = []struct {
	prefix string
	length int
}{
	{"411111", 16}, // Visa test range
	{"555555", 16}, // Mastercard test range
	{"378282", 15}, // Amex test range
	{"601111", 16}, // Discover test range
}

// synthCard returns a Luhn-valid fictional card number in a test prefix.
func synthCard(rng *randx.Source) string {
	cp := randx.Pick(rng, cardPrefixes)
	payload := cp.prefix
	for len(payload) < cp.length-1 {
		payload += fmt.Sprintf("%d", rng.Intn(10))
	}
	return payload + string(pii.LuhnChecksumDigit(payload))
}
