package synth

import (
	"fmt"
	"strings"

	"harassrepro/internal/randx"
)

// Flavor selects the register of benign chatter, roughly matching each
// platform type's typical content.
type Flavor int

const (
	// FlavorBoard is image-board thread chatter.
	FlavorBoard Flavor = iota
	// FlavorChat is instant-message chatter.
	FlavorChat
	// FlavorMicro is short microblog posts.
	FlavorMicro
	// FlavorPaste is long-form paste content (code, configs, lists).
	FlavorPaste
	// FlavorBlog is long-form blog prose.
	FlavorBlog
)

var boardChatter = []string{
	"new thread for the weekly game night, post your usernames",
	"the remaster looks worse than the original, change my mind",
	"anyone archive the old thread before it 404d",
	"this board has been slow all week",
	"sauce on that image from the last thread?",
	"rolling for the character poll, dubs decides",
	"the mods deleted my thread again for no reason",
	"best arc of the season so far, discuss",
}

var chatChatter = []string{
	"anyone up for ranked tonight",
	"the server icon update looks great",
	"can a mod pin the schedule message",
	"voice chat at 9 as usual?",
	"lol did you see the clip from yesterday",
	"new emotes just dropped check them out",
	"patch notes are out, nerfs everywhere",
	"gg everyone, same time tomorrow",
}

var microChatter = []string{
	"coffee first, opinions later",
	"the debate last night was something else",
	"new post up on the blog, link in bio",
	"traffic on the bridge again, every single day",
	"reading an excellent book about naval history",
	"the market is wild this week",
	"sunset from the office window, no filter",
	"hot take: the sequel was better",
}

var pasteSnippets = []string{
	"#!/bin/sh\nset -e\nmake build\nmake test\necho done",
	"server {\n  listen 8080;\n  location / { return 200; }\n}",
	"TODO list:\n- fix the parser\n- write docs\n- release v2",
	"SELECT id, name FROM users WHERE active = 1 ORDER BY name;",
	"def main():\n    print('hello world')\n\nif __name__ == '__main__':\n    main()",
	"recipe: two cups flour, one cup water, pinch of salt, bake at 200",
	"error log:\nconnection reset by peer\nretrying in 5s\nconnected",
	"shopping: milk, eggs, bread, coffee, apples, rice",
}

var blogProse = []string{
	"This week's roundup covers the usual local developments and a few notes from readers.",
	"The council meeting ran long, but the zoning question was finally settled.",
	"Our movement grows when we write, organize, and publish; this site exists for that work.",
	"A reader sent in photographs from the weekend march downtown.",
	"We will continue documenting these events as they unfold, as we have for years.",
}

// hardNegatives are benign messages that share surface features with
// calls to harassment (mobilizing language, pronouns, reporting verbs).
// They are the paper's observed false-positive shapes, most notably
// "encouraging the crowd to contact their local elected representative".
var hardNegatives = []string{
	"we need to contact our local elected representative about the zoning bill",
	"we should all go vote this weekend, bring a friend",
	"lets organize the charity stream for saturday, everyone bring ideas",
	"we need to report the outage to the provider, ticket is open",
	"we should get him a card, he is retiring on friday",
	"we will raid the dungeon at 8, need two healers",
	"we have to flag the broken posts for the mods so they can fix the formatting",
	"i reported my own comment by accident, ignore that",
	"we need to spam refresh until tickets go on sale lol",
	"call your representative and tell them to vote no on the bill",
	"we should report all of them to the tournament desk so everyone gets seeded",
	"we need to flag all of the duplicate tickets and report each to the helpdesk",
	"lets raid with all six of us in the dungeon tonight, bring them potions",
}

// Benign returns one benign message in the given flavor. With probability
// hardNegativeRate it instead returns a hard negative that superficially
// resembles mobilizing language.
func Benign(flavor Flavor, rng *randx.Source) string {
	const hardNegativeRate = 0.08
	if rng.Bool(hardNegativeRate) {
		return randx.Pick(rng, hardNegatives)
	}
	switch flavor {
	case FlavorChat:
		return randx.Pick(rng, chatChatter)
	case FlavorMicro:
		return randx.Pick(rng, microChatter)
	case FlavorPaste:
		// Pastes are long-form: stitch several snippets together.
		n := 1 + rng.Intn(4)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = randx.Pick(rng, pasteSnippets)
		}
		return strings.Join(parts, "\n\n")
	case FlavorBlog:
		n := 2 + rng.Intn(4)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = randx.Pick(rng, blogProse)
		}
		return strings.Join(parts, " ")
	default:
		return randx.Pick(rng, boardChatter)
	}
}

// ThreadReply returns a short in-thread reply message (board replies to
// an existing conversation).
func ThreadReply(rng *randx.Source) string {
	replies := []string{
		"this", "based", "lurk more", "checked", "source?", "bump",
		"screenshotted", "old news", "kek", "fake and gay", "saved",
		"same thread every week", "who cares", "more please", "archive it",
	}
	if rng.Bool(0.6) {
		return randx.Pick(rng, replies)
	}
	return Benign(FlavorBoard, rng)
}

// capitalize upper-cases the first letter of s (ASCII-safe for our
// synthetic street names).
func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// SyntheticUsername produces a pseudo-anonymous poster handle.
func SyntheticUsername(rng *randx.Source) string {
	adjectives := []string{"grim", "silent", "rusty", "pale", "lone", "odd", "swift", "dull"}
	nouns := []string{"falcon", "anvil", "cipher", "lantern", "badger", "comet", "mole", "crow"}
	return fmt.Sprintf("%s_%s%d", randx.Pick(rng, adjectives), randx.Pick(rng, nouns), rng.Intn(1000))
}
