package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveModelsLoadDetector(t *testing.T) {
	p := sharedPipeline(t)
	dir := t.TempDir()
	if err := p.SaveModels(dir); err != nil {
		t.Fatal(err)
	}
	// All four artifacts exist.
	for _, f := range []string{vocabFile, doxFile, cthFile, metaFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("artifact %s: %v", f, err)
		}
	}
	det, err := LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded detector agrees with the live pipeline on confirmed
	// positives (exact scores can differ only by span randomness on
	// long docs; short docs are deterministic).
	for _, d := range p.CTH.AllPositives()[:10] {
		live := p.Dox.Model.Score(p.vectorize(d.Text, p.Dox.TextLen, p.rng.Split("cmp")))
		loaded := det.ScoreDox(d.Text)
		if math.Abs(live-loaded) > 0.2 {
			t.Errorf("scores diverge: live %.3f loaded %.3f", live, loaded)
		}
	}
	// CTH positives score higher than benign text via the detector.
	cthScore := det.ScoreCTH(p.CTH.AllPositives()[0].Text)
	benign := det.ScoreCTH("anyone up for ranked tonight, patch notes are out")
	if cthScore <= benign {
		t.Errorf("detector CTH %.3f <= benign %.3f", cthScore, benign)
	}
	// Thresholds present for the task platforms.
	if len(det.Platforms()) == 0 {
		t.Error("no platforms in metadata")
	}
	for _, plat := range det.Platforms() {
		if th := det.DoxThreshold(plat); th <= 0 || th > 1 {
			t.Errorf("threshold %s = %v", plat, th)
		}
	}
	if det.DoxThreshold("bogus") != 0.5 || det.CTHThreshold("bogus") != 0.5 {
		t.Error("unknown platform should default to 0.5")
	}
}

func TestPipelineDetectorMatchesSaveLoadRoundTrip(t *testing.T) {
	// Pipeline.Detector() (the in-process construction harassd uses
	// when training at startup) must be score-identical to a detector
	// persisted with SaveModels and loaded back: same weights, same
	// metadata, same span-sampling stream.
	p := sharedPipeline(t)
	direct := p.Detector()
	dir := t.TempDir()
	if err := p.SaveModels(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"we should mass report his channel",
		"dropping her address 99 cedar lane and email jane.roe@example.com",
		"anyone up for ranked tonight",
	}
	// Include a long document so the shared span-sampling stream is
	// actually consumed, then a short one to catch stream divergence.
	long := ""
	for i := 0; i < 200; i++ {
		long += "target lives at 12 oak street and posts every night "
	}
	texts = append(texts, long, "post his info everywhere")
	for i, text := range texts {
		if dc, lc := direct.ScoreCTH(text), loaded.ScoreCTH(text); dc != lc {
			t.Errorf("doc %d: cth %v (direct) != %v (loaded)", i, dc, lc)
		}
		if dd, ld := direct.ScoreDox(text), loaded.ScoreDox(text); dd != ld {
			t.Errorf("doc %d: dox %v (direct) != %v (loaded)", i, dd, ld)
		}
	}
	if got, want := direct.Platforms(), loaded.Platforms(); len(got) != len(want) {
		t.Errorf("platforms %v != %v", got, want)
	}
	for _, plat := range loaded.Platforms() {
		if direct.DoxThreshold(plat) != loaded.DoxThreshold(plat) ||
			direct.CTHThreshold(plat) != loaded.CTHThreshold(plat) {
			t.Errorf("thresholds diverge for %s", plat)
		}
	}
}

func TestLoadDetectorErrors(t *testing.T) {
	if _, err := LoadDetector(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
	// Corrupt metadata.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, metaFile), []byte("not json"), 0o644)
	if _, err := LoadDetector(dir); err == nil {
		t.Error("corrupt metadata should error")
	}
	// Wrong version.
	os.WriteFile(filepath.Join(dir, metaFile), []byte(`{"version":99}`), 0o644)
	if _, err := LoadDetector(dir); err == nil {
		t.Error("unsupported version should error")
	}
}

func TestDetectorExplain(t *testing.T) {
	p := sharedPipeline(t)
	dir := t.TempDir()
	if err := p.SaveModels(dir); err != nil {
		t.Fatal(err)
	}
	det, err := LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	text := "we need to mass-report his twitter and youtube"
	tw := det.ExplainCTH(text, 5)
	if len(tw) == 0 || len(tw) > 5 {
		t.Fatalf("explanation size = %d", len(tw))
	}
	// The top contributions for a positively scored CTH should sum
	// positive when the score is above 0.5.
	if det.ScoreCTH(text) > 0.5 {
		sum := 0.0
		for _, w := range det.ExplainCTH(text, 0) {
			sum += w.Weight
		}
		if sum <= 0 {
			t.Errorf("positive decision but attribution sum = %v", sum)
		}
	}
	if got := det.ExplainDox("dropping her info now Address: 99 Cedar Lane", 3); len(got) == 0 {
		t.Error("dox explanation empty")
	}
}
