package core

import (
	"context"
	"fmt"

	"harassrepro/internal/obs"
	"harassrepro/internal/pii"
	"harassrepro/internal/query"
	"harassrepro/internal/randx"
	"harassrepro/internal/resilience"
	"harassrepro/internal/taxonomy"
)

// The paper's deployment surface scored live multi-platform feeds,
// where a single malformed or pathological document must never stall
// the stream. ScoreStream is that surface for the reproduction: it
// runs the detector's scoring plus the rule-based annotations on the
// resilience runtime — bounded worker pool, per-document panic
// isolation, retry with seeded jitter, dead-letter quarantine — while
// keeping scores bit-identical to a sequential run for a given seed.

// StreamDoc is one document flowing through the streaming scoring
// path: input fields (ID, Platform, Text) plus the annotations the
// stages fill in.
type StreamDoc struct {
	ID       string
	Platform string
	Text     string

	// CTH / Dox are the classifiers' positive-class probabilities.
	CTH float64
	Dox float64
	// PII / Attacks are the rule-based annotations (degradable: they
	// may be missing when their stage failed permanently, in which
	// case Result.Degraded names the stage).
	PII     []string
	Attacks []string
	// SeedQuery reports the Figure 4 mobilizing-language seed query.
	SeedQuery bool
}

// StreamOptions configures ScoreStream.
type StreamOptions struct {
	// Workers bounds the scoring pool. 0 means GOMAXPROCS.
	Workers int
	// Seed drives span sampling and retry jitter: two runs with the
	// same seed over the same stream produce identical scores for
	// every non-quarantined document, regardless of worker count or
	// injected faults.
	Seed uint64
	// Retry is the transient-failure policy.
	Retry resilience.RetryPolicy
	// Ordered makes results arrive in input order.
	Ordered bool
	// Annotate adds the PII and taxonomy/seed-query stages (both
	// degradable) after scoring.
	Annotate bool
	// StageWrap, if set, wraps every stage before the runner is
	// built — the hook the chaos harness uses to inject faults.
	StageWrap func(resilience.Stage[StreamDoc]) resilience.Stage[StreamDoc]
	// Metrics, if set, receives the runner's per-stage counters and
	// latency histograms plus the scoring instruments (scratch-pool
	// traffic, sampled phase timings, PII prefilter counters). Scores
	// are bit-identical with or without it.
	Metrics *obs.Registry
	// Trace, if set, records per-stage timings for a seeded-deterministic
	// sample of documents.
	Trace *obs.Tracer
}

var (
	streamExtractor   = pii.NewExtractor()
	streamCategorizer = taxonomy.NewCategorizer()
	streamSeedQuery   = query.WithAttackTerms(query.Figure4())
)

// streamStages builds the stage pipeline for streaming scoring.
func (d *Detector) streamStages(opts StreamOptions) []resilience.Stage[StreamDoc] {
	// Per-document scoring randomness is derived from (seed, stage,
	// index), never from the detector's shared stream: retries and
	// scheduling cannot perturb it. The per-stage splits are hoisted out
	// of the per-document closures and the per-document child stream is
	// derived by value (SplitNVal), keeping the hot path allocation-free
	// while producing the same child states as Split().SplitN().
	base := randx.New(opts.Seed)
	cthBase := base.Split("score-cth")
	doxBase := base.Split("score-dox")
	// With a registry the stages route through the instrumented paths;
	// both consume randomness identically, so scores do not change.
	var sm *scoreMetrics
	ext := streamExtractor
	if opts.Metrics != nil {
		sm = newScoreMetrics(opts.Metrics, opts.Seed)
		ext = pii.NewExtractor()
		ext.SetMetrics(opts.Metrics)
	}
	stages := []resilience.Stage[StreamDoc]{
		{
			Name:      "score-cth",
			Transient: true,
			Fn: func(_ context.Context, index int, sd *StreamDoc) error {
				if sd.Text == "" {
					return resilience.Permanent(fmt.Errorf("empty document text"))
				}
				rng := cthBase.SplitNVal("doc", index)
				if sm != nil {
					sd.CTH = d.scoreObs(d.cth, taskCTH, sd.Text, d.meta.CTHTextLen, &rng, sm, index)
				} else {
					sd.CTH = d.scoreCTHWith(sd.Text, &rng)
				}
				return nil
			},
		},
		{
			Name:      "score-dox",
			Transient: true,
			Fn: func(_ context.Context, index int, sd *StreamDoc) error {
				rng := doxBase.SplitNVal("doc", index)
				if sm != nil {
					sd.Dox = d.scoreObs(d.dox, taskDox, sd.Text, d.meta.DoxTextLen, &rng, sm, index)
				} else {
					sd.Dox = d.scoreDoxWith(sd.Text, &rng)
				}
				return nil
			},
		},
	}
	if opts.Annotate {
		stages = append(stages,
			resilience.Stage[StreamDoc]{
				Name:       "pii",
				Transient:  true,
				Degradable: true,
				Fn: func(_ context.Context, _ int, sd *StreamDoc) error {
					// At most one entry per PII type: the scratch array keeps
					// the engine call allocation-free; only documents that
					// actually contain PII pay for the []string.
					var scratch [9]pii.Type
					var types []string
					for _, t := range ext.AppendTypes(scratch[:0], sd.Text) {
						types = append(types, string(t))
					}
					sd.PII = types
					return nil
				},
			},
			resilience.Stage[StreamDoc]{
				Name:       "taxonomy",
				Transient:  true,
				Degradable: true,
				Fn: func(_ context.Context, _ int, sd *StreamDoc) error {
					var subs []string
					for _, s := range streamCategorizer.Categorize(sd.Text).Subs() {
						subs = append(subs, string(s))
					}
					sd.Attacks = subs
					sd.SeedQuery = streamSeedQuery.Match(sd.Text)
					return nil
				},
			},
		)
	}
	if opts.StageWrap != nil {
		for i := range stages {
			stages[i] = opts.StageWrap(stages[i])
		}
	}
	return stages
}

// streamRunner builds the resilience runner for the given options.
func (d *Detector) streamRunner(opts StreamOptions) *resilience.Runner[StreamDoc] {
	return resilience.NewRunner(resilience.Config[StreamDoc]{
		Workers:  opts.Workers,
		Seed:     opts.Seed,
		Retry:    opts.Retry,
		Ordered:  opts.Ordered,
		Describe: func(sd *StreamDoc) string { return sd.ID },
		Metrics:  opts.Metrics,
		Tracer:   opts.Trace,
	}, d.streamStages(opts)...)
}

// ScoreStream scores documents from in on a fault-tolerant worker
// pool. The returned channel must be drained until closed; each result
// carries the scored document, its degradation marks, or its
// dead-letter record. Cancel ctx to stop early.
func (d *Detector) ScoreStream(ctx context.Context, in <-chan StreamDoc, opts StreamOptions) <-chan resilience.Result[StreamDoc] {
	return d.streamRunner(opts).Process(ctx, in)
}

// ScoreBatch is the slice convenience over ScoreStream: results come
// back in input order together with the run summary.
func (d *Detector) ScoreBatch(ctx context.Context, docs []StreamDoc, opts StreamOptions) ([]resilience.Result[StreamDoc], resilience.Summary, error) {
	return d.streamRunner(opts).RunSlice(ctx, docs)
}
