package core

// Scoring instrumentation. When StreamOptions.Metrics is set, the
// stream stages report scratch-pool traffic (always-on: one atomic per
// score) and a tokenize/featurize/model phase breakdown on a
// deterministically sampled subset of documents. The sample decision is
// a pure function of (seed, doc index) — the same documents are timed
// on every run and at every worker count — and only sampled documents
// pay the extra clock reads, which keeps the steady-state overhead of
// an instrumented run within the ≤2% budget BENCH_scoring.json records.
//
// Instrumentation never touches the span-sampling randomness: the
// phase-sample stream is split under its own "phase-sample" label, so
// scores stay bit-identical with metrics on or off (golden-tested).

import (
	"time"

	"harassrepro/internal/model"
	"harassrepro/internal/obs"
	"harassrepro/internal/randx"
)

// phaseSampleRate is the fraction of documents whose per-phase scoring
// timings are recorded.
const phaseSampleRate = 1.0 / 8

// Task and phase indexes into scoreMetrics.phase.
const (
	taskCTH = iota
	taskDox
)

const (
	phaseTokenize = iota
	phaseFeaturize
	phaseModel
)

var (
	taskNames  = [...]string{taskCTH: "cth", taskDox: "dox"}
	phaseNames = [...]string{phaseTokenize: "tokenize", phaseFeaturize: "featurize", phaseModel: "model"}
)

// scoreMetrics holds the pre-resolved scoring instruments for one
// streaming run.
type scoreMetrics struct {
	poolGets    *obs.Counter
	poolMisses  *obs.Counter
	sampledDocs *obs.Counter
	phase       [2][3]*obs.Histogram // [task][phase]
	sampleBase  *randx.Source
}

// newScoreMetrics registers (or re-resolves) the scoring instruments on
// reg and derives the phase-sampling stream from seed.
func newScoreMetrics(reg *obs.Registry, seed uint64) *scoreMetrics {
	sm := &scoreMetrics{
		poolGets: reg.NewCounter("score_pool_gets_total",
			"scorer scratch checkouts from the pool"),
		poolMisses: reg.NewCounter("score_pool_misses_total",
			"scorer scratch constructed because the pool was empty"),
		sampledDocs: reg.NewCounter("score_phase_sampled_total",
			"score calls with per-phase timings recorded"),
		sampleBase: randx.New(seed).Split("phase-sample"),
	}
	for t, task := range taskNames {
		for p, phase := range phaseNames {
			sm.phase[t][p] = reg.NewHistogram("score_phase_ns",
				"sampled per-phase scoring latency", obs.DurationBuckets(),
				obs.L("task", task), obs.L("phase", phase))
		}
	}
	return sm
}

// sampled reports whether the document at index has its phase timings
// recorded. Pure function of (seed, index); allocation-free.
func (sm *scoreMetrics) sampled(index int) bool {
	rng := sm.sampleBase.SplitNVal("doc", index)
	return rng.Float64() < phaseSampleRate
}

// scoreObs is scoreWith plus instrumentation: pool-traffic counters on
// every call, and a tokenize/featurize/model timing breakdown when the
// document is sampled. The rng consumption is identical to scoreWith,
// so the score is bit-identical to the uninstrumented path.
func (d *Detector) scoreObs(m *model.LogReg, task int, text string, maxLen int, rng *randx.Source, sm *scoreMetrics, index int) float64 {
	sc := d.scorers.Get().(*scorer)
	sm.poolGets.Inc()
	if sc.fresh {
		sc.fresh = false
		sm.poolMisses.Inc()
	}
	if !sm.sampled(index) {
		score := m.Score(d.vectorizeWith(sc, text, maxLen, rng))
		d.scorers.Put(sc)
		return score
	}
	sm.sampledDocs.Inc()
	t0 := time.Now()
	toks := sc.sess.Tokenize(text)
	t1 := time.Now()
	vec := d.featurizeToks(sc, toks, maxLen, rng)
	t2 := time.Now()
	score := m.Score(vec)
	t3 := time.Now()
	sm.phase[task][phaseTokenize].Observe(t1.Sub(t0).Nanoseconds())
	sm.phase[task][phaseFeaturize].Observe(t2.Sub(t1).Nanoseconds())
	sm.phase[task][phaseModel].Observe(t3.Sub(t2).Nanoseconds())
	d.scorers.Put(sc)
	return score
}
