package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Hardening suite: LoadDetector over corrupt, truncated and
// partially-written model directories must always return a descriptive
// error — never panic, nil-deref or hand back a broken detector.

// validMeta is a metadata file consistent with tiny valid models.
const validMeta = `{"version":1,"buckets":16,"dox_text_len":512,"cth_text_len":128,
"dox_thresholds":{"boards":0.9},"cth_thresholds":{"boards":0.8}}`

// writeDir creates a model directory with the given file contents.
func writeDir(t *testing.T, files map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// loadMustFail asserts LoadDetector errors without panicking.
func loadMustFail(t *testing.T, dir, label string) error {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: LoadDetector panicked: %v", label, r)
		}
	}()
	d, err := LoadDetector(dir)
	if err == nil {
		t.Fatalf("%s: LoadDetector accepted a corrupt directory (detector %v)", label, d != nil)
	}
	if err.Error() == "" {
		t.Fatalf("%s: empty error message", label)
	}
	return err
}

func TestLoadDetectorGarbageDirectories(t *testing.T) {
	garbage := []byte("\x00\xff\x13garbage bytes not a model\x00\x01")
	cases := map[string]map[string][]byte{
		"missing everything": {},
		"meta only":          {metaFile: []byte(validMeta)},
		"all empty files": {
			metaFile: {}, vocabFile: {}, doxFile: {}, cthFile: {},
		},
		"all garbage": {
			metaFile: garbage, vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
		"valid meta, garbage models": {
			metaFile: []byte(validMeta), vocabFile: []byte("hello\nworld\n"),
			doxFile: garbage, cthFile: garbage,
		},
		"valid meta, empty models": {
			metaFile: []byte(validMeta), vocabFile: []byte("hello\nworld\n"),
			doxFile: {}, cthFile: {},
		},
		"empty vocabulary": {
			metaFile: []byte(validMeta), vocabFile: {}, doxFile: garbage, cthFile: garbage,
		},
		"truncated meta": {
			metaFile: []byte(validMeta[:len(validMeta)/2]), vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
		"meta zero buckets": {
			metaFile: []byte(`{"version":1,"buckets":0,"dox_text_len":512,"cth_text_len":128}`), vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
		"meta negative span length": {
			metaFile: []byte(`{"version":1,"buckets":16,"dox_text_len":-5,"cth_text_len":128}`), vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
		"meta threshold out of range": {
			metaFile: []byte(`{"version":1,"buckets":16,"dox_text_len":512,"cth_text_len":128,"dox_thresholds":{"boards":7.5}}`), vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
		"meta null json": {
			metaFile: []byte(`null`), vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
		"meta empty object": {
			metaFile: []byte(`{}`), vocabFile: garbage, doxFile: garbage, cthFile: garbage,
		},
	}
	for label, files := range cases {
		loadMustFail(t, writeDir(t, files), label)
	}
}

func TestLoadDetectorEmptyVocabularyNamed(t *testing.T) {
	// An empty vocab would tokenize everything to [UNK] and silently
	// produce meaningless scores; the error must name the artifact.
	garbage := []byte("\x00garbage\x01")
	dir := writeDir(t, map[string][]byte{
		metaFile: []byte(validMeta), vocabFile: []byte("\n\n\n"),
		doxFile: garbage, cthFile: garbage,
	})
	err := loadMustFail(t, dir, "blank-lines vocabulary")
	if !strings.Contains(err.Error(), vocabFile) {
		t.Errorf("error does not name %s: %v", vocabFile, err)
	}
}

func TestValidateModelDirNamesEveryMissingFile(t *testing.T) {
	// The up-front check must enumerate every absent artifact in one
	// error, not fail piecemeal on the first open.
	cases := []struct {
		label   string
		present map[string][]byte
		missing []string
	}{
		{"empty dir", map[string][]byte{}, []string{vocabFile, doxFile, cthFile, metaFile}},
		{"meta only", map[string][]byte{metaFile: []byte(validMeta)}, []string{vocabFile, doxFile, cthFile}},
		{"models missing", map[string][]byte{metaFile: []byte(validMeta), vocabFile: []byte("a\nb\n")}, []string{doxFile, cthFile}},
		{"one model missing", map[string][]byte{metaFile: []byte(validMeta), vocabFile: []byte("a\nb\n"), doxFile: []byte("x")}, []string{cthFile}},
	}
	for _, tc := range cases {
		dir := writeDir(t, tc.present)
		err := ValidateModelDir(dir)
		if err == nil {
			t.Fatalf("%s: ValidateModelDir accepted an incomplete directory", tc.label)
		}
		for _, name := range tc.missing {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("%s: error does not name missing %s: %v", tc.label, name, err)
			}
		}
		for name := range tc.present {
			if strings.Contains(err.Error(), name) {
				t.Errorf("%s: error names present file %s: %v", tc.label, name, err)
			}
		}
		// LoadDetector must surface the same up-front diagnosis.
		if lerr := loadMustFail(t, dir, tc.label); !strings.Contains(lerr.Error(), tc.missing[0]) {
			t.Errorf("%s: LoadDetector error does not name %s: %v", tc.label, tc.missing[0], lerr)
		}
	}
	if err := ValidateModelDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("ValidateModelDir accepted a missing directory")
	}
}

func TestLoadDetectorTruncatedModels(t *testing.T) {
	// Build one real model directory, then truncate each artifact in
	// turn: every truncation must be caught at load time.
	p := sharedPipeline(t)
	src := t.TempDir()
	if err := p.SaveModels(src); err != nil {
		t.Fatal(err)
	}
	for _, victim := range []string{metaFile, doxFile, cthFile} {
		dir := t.TempDir()
		for _, f := range []string{metaFile, vocabFile, doxFile, cthFile} {
			data, err := os.ReadFile(filepath.Join(src, f))
			if err != nil {
				t.Fatal(err)
			}
			if f == victim {
				data = data[:len(data)/3]
			}
			if err := os.WriteFile(filepath.Join(dir, f), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		loadMustFail(t, dir, "truncated "+victim)
	}
}

func TestLoadDetectorMismatchedModels(t *testing.T) {
	// Models trained at a different feature-space size than the
	// metadata claims: a partially-overwritten release directory.
	p := sharedPipeline(t)
	src := t.TempDir()
	if err := p.SaveModels(src); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(src, metaFile))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"buckets": 65536`, `"buckets": 1024`, 1)
	if tampered == string(data) {
		t.Skip("meta bucket count not in expected form")
	}
	if err := os.WriteFile(filepath.Join(src, metaFile), []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	err = loadMustFail(t, src, "bucket mismatch")
	if !strings.Contains(err.Error(), "buckets") {
		t.Errorf("error does not mention buckets: %v", err)
	}
}
