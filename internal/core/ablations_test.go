package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestSpanStrategyAblation(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.SpanStrategyAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"random-no-overlap", "begin-end", "overlapping", "random-length", "Best by AUC"} {
		if !strings.Contains(out, want) {
			t.Errorf("span ablation missing %q:\n%s", want, out)
		}
	}
}

func TestCombinedTrainingAblation(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.CombinedTrainingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "boards") || !strings.Contains(out, "Combined training") {
		t.Errorf("combined ablation incomplete:\n%s", out)
	}
	// The paper's finding: combined training should win on most
	// platforms (sparse-positive platforms cannot train alone).
	// Extract the "N/M platforms" fragment.
	idx := strings.Index(out, "beats individual on ")
	if idx < 0 {
		t.Fatalf("missing summary line:\n%s", out)
	}
	frag := out[idx+len("beats individual on "):]
	var n, m int
	if _, err := fmt.Sscanf(frag, "%d/%d", &n, &m); err != nil {
		t.Fatalf("cannot parse summary %q", frag)
	}
	if n*2 < m {
		t.Errorf("combined training won only %d/%d platforms", n, m)
	}
}

func TestChatSplitAblation(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.ChatSplitAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Unified chat") || !strings.Contains(out, "Split (Discord/Telegram)") {
		t.Errorf("chat split ablation incomplete:\n%s", out)
	}
}

func TestActiveLearningAblation(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.ActiveLearningAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stratified", "uncertainty", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("AL ablation missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineClassifierAblation(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.BaselineClassifierAblation()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "logistic regression") || !strings.Contains(out, "naive Bayes") {
		t.Errorf("baseline ablation incomplete:\n%s", out)
	}
}

func TestPIICoOccurrenceReport(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.PIICoOccurrenceReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Facebook -> email") || !strings.Contains(out, "address") {
		t.Errorf("PII co-occurrence incomplete:\n%s", out)
	}
}

func TestChiSquareReport(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.ChiSquareReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Mass Flagging", "Boards vs Chat", "significant"} {
		if !strings.Contains(out, want) {
			t.Errorf("chi-square report missing %q:\n%s", want, out)
		}
	}
}

func TestGenderResponseReport(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.GenderResponseReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "male vs female") || !strings.Contains(out, "baseline") {
		t.Errorf("gender response report incomplete:\n%s", out)
	}
}
