package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"harassrepro/internal/corpus"
	"harassrepro/internal/obs"
	"harassrepro/internal/resilience"
	"harassrepro/internal/resilience/chaos"
)

// Chaos suite: proves the streaming scoring path completes with
// bounded, predictable loss under injected faults, and that fault
// handling never perturbs the scores of surviving documents.

var (
	detOnce sync.Once
	det     *Detector
	detErr  error
)

// sharedDetector saves the shared pipeline's models and loads them as
// a Detector, once per test binary.
func sharedDetector(t *testing.T) *Detector {
	t.Helper()
	detOnce.Do(func() {
		p := sharedPipeline(t)
		dir := t.TempDir()
		if detErr = p.SaveModels(dir); detErr != nil {
			return
		}
		det, detErr = LoadDetector(dir)
	})
	if detErr != nil {
		t.Fatal(detErr)
	}
	return det
}

// streamCorpus converts a slice of the QuickConfig boards corpus into
// stream documents.
func streamCorpus(t *testing.T, n int) []StreamDoc {
	t.Helper()
	p := sharedPipeline(t)
	c := p.Corpora[corpus.Boards]
	if c == nil || c.Len() == 0 {
		t.Fatal("no boards corpus")
	}
	if n > c.Len() {
		n = c.Len()
	}
	docs := make([]StreamDoc, n)
	for i := 0; i < n; i++ {
		d := &c.Docs[i]
		docs[i] = StreamDoc{ID: d.ID, Platform: string(d.Platform), Text: d.Text}
	}
	return docs
}

func streamRetry() resilience.RetryPolicy {
	return resilience.RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Microsecond, MaxDelay: 200 * time.Microsecond}
}

// TestScoreStreamChaos is the acceptance chaos test: 5% injected
// transient stage failures and 1% injected panics over a QuickConfig
// corpus stream. The run must complete, quarantine exactly the
// permanently-failing (poison) documents, and produce scores identical
// to a fault-free run for every non-quarantined document.
func TestScoreStreamChaos(t *testing.T) {
	det := sharedDetector(t)
	docs := streamCorpus(t, 300)
	opts := StreamOptions{Workers: 4, Seed: 11, Retry: streamRetry(), Annotate: true}

	clean, cleanSum, err := det.ScoreBatch(context.Background(), docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cleanSum.Quarantined != 0 || cleanSum.Succeeded != len(docs) {
		t.Fatalf("fault-free run lost documents: %v", cleanSum)
	}

	chaosCfg := chaos.Config{Seed: 23, TransientRate: 0.05, PanicRate: 0.01, PermanentRate: 0.02}
	chaosOpts := opts
	chaosOpts.Metrics = obs.NewRegistry()
	chaosOpts.StageWrap = func(st resilience.Stage[StreamDoc]) resilience.Stage[StreamDoc] {
		return chaos.Wrap(st, chaosCfg)
	}
	faulty, faultySum, err := det.ScoreBatch(context.Background(), docs, chaosOpts)
	if err != nil {
		t.Fatal(err)
	}

	// The expected quarantine set: documents poisoned in either
	// required scoring stage. Poisoning a degradable stage (pii,
	// taxonomy) must degrade, not quarantine.
	poison := map[int]bool{}
	for _, stage := range []string{"score-cth", "score-dox"} {
		for _, i := range chaos.PoisonIndexes(chaosCfg, stage, len(docs)) {
			poison[i] = true
		}
	}
	if len(poison) == 0 {
		t.Fatal("chaos seed produced no poison documents; test would be vacuous")
	}
	if faultySum.Quarantined != len(poison) {
		t.Fatalf("quarantined %d documents, want exactly the %d poison ones\n%v",
			faultySum.Quarantined, len(poison), faultySum.DeadLetters)
	}
	if faultySum.Processed != len(docs) {
		t.Fatalf("chaotic run did not complete: %v", faultySum)
	}

	degradedPoison := map[int]bool{}
	for _, stage := range []string{"pii", "taxonomy"} {
		for _, i := range chaos.PoisonIndexes(chaosCfg, stage, len(docs)) {
			degradedPoison[i] = true
		}
	}

	for i := range docs {
		c, f := clean[i], faulty[i]
		if c.Index != i || f.Index != i {
			t.Fatalf("results not in input order at %d", i)
		}
		if poison[i] {
			if f.Status != resilience.StatusQuarantined || f.Dead == nil {
				t.Fatalf("poison doc %d not quarantined: %+v", i, f)
			}
			if f.Dead.ID != docs[i].ID {
				t.Fatalf("dead letter for %d names %q, want %q", i, f.Dead.ID, docs[i].ID)
			}
			continue
		}
		if f.Status == resilience.StatusQuarantined {
			t.Fatalf("non-poison doc %d quarantined: %v", i, f.Dead)
		}
		// Score identity: fault handling must not perturb results.
		if f.Item.CTH != c.Item.CTH || f.Item.Dox != c.Item.Dox {
			t.Fatalf("doc %d scores diverged under chaos: cth %v vs %v, dox %v vs %v",
				i, f.Item.CTH, c.Item.CTH, f.Item.Dox, c.Item.Dox)
		}
		if degradedPoison[i] {
			if f.Status != resilience.StatusDegraded {
				t.Fatalf("doc %d with poisoned annotation stage not degraded: %+v", i, f.Status)
			}
		} else {
			if fmt.Sprint(f.Item.PII) != fmt.Sprint(c.Item.PII) || fmt.Sprint(f.Item.Attacks) != fmt.Sprint(c.Item.Attacks) {
				t.Fatalf("doc %d annotations diverged under chaos", i)
			}
		}
	}

	// Reconcile the obs counters against the chaos plan. The poison sets
	// determine every failure and item-status total exactly; the
	// transient/panic mix only shifts how attempts split into retries,
	// which the errors == retries + failures identity still pins down.
	s := chaosOpts.Metrics.Snapshot()
	cv := func(name, stage string) int {
		return int(s.CounterValue(name, obs.L("stage", stage)))
	}
	poisonCTH := chaos.PoisonIndexes(chaosCfg, "score-cth", len(docs))
	poisonDoxOnly := 0
	for _, i := range chaos.PoisonIndexes(chaosCfg, "score-dox", len(docs)) {
		if !contains(poisonCTH, i) {
			poisonDoxOnly++
		}
	}
	annotFailures := map[string]int{}
	for _, stage := range []string{"pii", "taxonomy"} {
		for _, i := range chaos.PoisonIndexes(chaosCfg, stage, len(docs)) {
			if !poison[i] { // quarantined docs never reach the annotation stages
				annotFailures[stage]++
			}
		}
	}
	wantFailures := map[string]int{
		"score-cth": len(poisonCTH),
		"score-dox": poisonDoxOnly,
		"pii":       annotFailures["pii"],
		"taxonomy":  annotFailures["taxonomy"],
	}
	// Documents entering each stage: everything reaches score-cth; docs
	// quarantined there never reach score-dox; quarantined docs skip the
	// degradable annotation stages (degraded ones continue).
	wantEntered := map[string]int{
		"score-cth": len(docs),
		"score-dox": len(docs) - len(poisonCTH),
		"pii":       len(docs) - len(poison),
		"taxonomy":  len(docs) - len(poison),
	}
	for _, stage := range []string{"score-cth", "score-dox", "pii", "taxonomy"} {
		attempts := cv("pipeline_stage_attempts_total", stage)
		retries := cv("pipeline_stage_retries_total", stage)
		errs := cv("pipeline_stage_errors_total", stage)
		panics := cv("pipeline_stage_panics_total", stage)
		failures := cv("pipeline_stage_failures_total", stage)
		if got, want := attempts-retries, wantEntered[stage]; got != want {
			t.Errorf("stage %s: attempts-retries = %d, want %d entering docs", stage, got, want)
		}
		if failures != wantFailures[stage] {
			t.Errorf("stage %s: failures = %d, want %d from the poison plan", stage, failures, wantFailures[stage])
		}
		// Without cancellation every failed attempt is either retried or
		// the permanent failure.
		if errs != retries+failures {
			t.Errorf("stage %s: errors %d != retries %d + failures %d", stage, errs, retries, failures)
		}
		if panics > errs {
			t.Errorf("stage %s: panics %d > errors %d", stage, panics, errs)
		}
		// Every poison doc burns the full retry budget at its fatal stage.
		if m, ok := s.Find("pipeline_stage_latency_ns", obs.L("stage", stage)); !ok || int(m.Count) != attempts {
			t.Errorf("stage %s: latency histogram count %d != attempts %d", stage, m.Count, attempts)
		}
	}
	for _, dl := range faultySum.DeadLetters {
		if dl.Attempts != streamRetry().MaxAttempts {
			t.Errorf("dead letter %v burned %d attempts, want the full budget %d",
				dl.ID, dl.Attempts, streamRetry().MaxAttempts)
		}
	}
	// Item-status totals reconcile with the run summary.
	iv := func(status string) int {
		return int(s.CounterValue("pipeline_items_total", obs.L("status", status)))
	}
	// Summary.Succeeded includes degraded docs; items_total{ok} does not.
	if iv("ok") != faultySum.Succeeded-faultySum.Degraded || iv("degraded") != faultySum.Degraded || iv("quarantined") != faultySum.Quarantined {
		t.Errorf("items_total ok/degraded/quarantined = %d/%d/%d, summary %d/%d/%d",
			iv("ok"), iv("degraded"), iv("quarantined"),
			faultySum.Succeeded-faultySum.Degraded, faultySum.Degraded, faultySum.Quarantined)
	}
	if iv("ok")+iv("degraded")+iv("quarantined") != faultySum.Processed {
		t.Errorf("sum of items_total != Processed %d", faultySum.Processed)
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestScoreStreamDeterministicAcrossWorkers: same seed, different
// worker counts, identical scores.
func TestScoreStreamDeterministicAcrossWorkers(t *testing.T) {
	det := sharedDetector(t)
	docs := streamCorpus(t, 120)
	run := func(workers int) []resilience.Result[StreamDoc] {
		res, _, err := det.ScoreBatch(context.Background(),
			docs, StreamOptions{Workers: workers, Seed: 7, Retry: streamRetry()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for i := range a {
		if a[i].Item.CTH != b[i].Item.CTH || a[i].Item.Dox != b[i].Item.Dox {
			t.Fatalf("doc %d scores differ across worker counts", i)
		}
	}
}

// TestScoreStreamMatchesSequentialScores: the streaming path agrees
// with the detector's plain sequential scoring on short documents
// (where span sampling never consumes randomness, both paths are
// exactly the classifier's deterministic output).
func TestScoreStreamMatchesSequentialScores(t *testing.T) {
	det := sharedDetector(t)
	texts := []string{
		"we need to mass-report his twitter and youtube, spread the word",
		"anyone up for ranked tonight, patch notes are out",
		"DOX: Jane Roe / Address: 99 Cedar Lane, Riverton, TX, 75001",
	}
	var docs []StreamDoc
	for i, txt := range texts {
		docs = append(docs, StreamDoc{ID: fmt.Sprintf("t%d", i), Text: txt})
	}
	res, sum, err := det.ScoreBatch(context.Background(), docs, StreamOptions{Workers: 2, Seed: 1, Retry: streamRetry()})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Succeeded != len(docs) {
		t.Fatalf("summary = %v", sum)
	}
	for i, txt := range texts {
		if got, want := res[i].Item.CTH, det.ScoreCTH(txt); got != want {
			t.Errorf("doc %d CTH stream %v != sequential %v", i, got, want)
		}
		if got, want := res[i].Item.Dox, det.ScoreDox(txt); got != want {
			t.Errorf("doc %d Dox stream %v != sequential %v", i, got, want)
		}
	}
}

// TestScoreStreamEmptyTextQuarantined: an empty document is a poison
// document (Permanent error), quarantined on the first attempt.
func TestScoreStreamEmptyTextQuarantined(t *testing.T) {
	det := sharedDetector(t)
	docs := []StreamDoc{
		{ID: "ok", Text: "hello there"},
		{ID: "empty", Text: ""},
	}
	res, sum, err := det.ScoreBatch(context.Background(), docs, StreamOptions{Workers: 2, Seed: 1, Retry: streamRetry()})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 1 || sum.Succeeded != 1 {
		t.Fatalf("summary = %v", sum)
	}
	if res[1].Dead == nil || res[1].Dead.Attempts != 1 || res[1].Dead.Stage != "score-cth" {
		t.Fatalf("empty doc dead letter = %+v", res[1].Dead)
	}
}

// TestScoreStreamChannelOrdered drives the channel form end to end.
func TestScoreStreamChannelOrdered(t *testing.T) {
	det := sharedDetector(t)
	docs := streamCorpus(t, 80)
	in := make(chan StreamDoc)
	go func() {
		defer close(in)
		for _, d := range docs {
			in <- d
		}
	}()
	out := det.ScoreStream(context.Background(), in,
		StreamOptions{Workers: 4, Seed: 3, Retry: streamRetry(), Ordered: true, Annotate: true})
	n := 0
	for res := range out {
		if res.Index != n {
			t.Fatalf("out of order: got %d want %d", res.Index, n)
		}
		n++
	}
	if n != len(docs) {
		t.Fatalf("stream emitted %d of %d", n, len(docs))
	}
}

// TestScoreStreamLatencyDeadline: latency spikes beyond the per-stage
// deadline are cut, retried and absorbed.
func TestScoreStreamLatencyDeadline(t *testing.T) {
	det := sharedDetector(t)
	docs := streamCorpus(t, 60)
	opts := StreamOptions{Workers: 4, Seed: 5, Retry: streamRetry()}
	clean, _, err := det.ScoreBatch(context.Background(), docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	chaosCfg := chaos.Config{Seed: 31, LatencyRate: 0.2, Latency: 100 * time.Millisecond}
	opts.StageWrap = func(st resilience.Stage[StreamDoc]) resilience.Stage[StreamDoc] {
		st.Timeout = 10 * time.Millisecond
		return chaos.Wrap(st, chaosCfg)
	}
	faulty, sum, err := det.ScoreBatch(context.Background(), docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Quarantined != 0 || sum.Succeeded != len(docs) {
		t.Fatalf("latency spikes caused loss: %v", sum)
	}
	for i := range docs {
		if faulty[i].Item.CTH != clean[i].Item.CTH {
			t.Fatalf("doc %d score changed under latency injection", i)
		}
	}
}
