package core

// Instrumented-streaming tests: metrics must never change scores,
// annotations or ordering (golden equivalence against the uninstrumented
// run), counter totals must be exact and identical at every worker
// count, and the instrumented hot path must stay allocation-free.

import (
	"context"
	"testing"

	"harassrepro/internal/obs"
	"harassrepro/internal/randx"
	"harassrepro/internal/resilience"
	"harassrepro/internal/testutil"
)

// metricsOpts returns golden StreamOptions with a fresh registry and
// tracer attached.
func metricsOpts(workers int) (StreamOptions, *obs.Registry, *obs.Tracer) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(42, 0.25, 256)
	return StreamOptions{
		Workers: workers, Seed: 42, Ordered: true, Annotate: true,
		Metrics: reg, Trace: tr,
	}, reg, tr
}

// TestScoreStreamMetricsDoNotChangeResults is the golden equivalence
// gate: the same batch with and without instrumentation produces
// bit-identical scores, identical annotations and identical ordering.
func TestScoreStreamMetricsDoNotChangeResults(t *testing.T) {
	det := testDetector(t)
	docs := goldenStreamDocs()
	plain, plainSum, err := det.ScoreBatch(context.Background(), docs, StreamOptions{
		Workers: 4, Seed: 42, Ordered: true, Annotate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts, _, _ := metricsOpts(4)
	instr, instrSum, err := det.ScoreBatch(context.Background(), docs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(instr) != len(plain) {
		t.Fatalf("instrumented run: %d results, plain run: %d", len(instr), len(plain))
	}
	if instrSum.Processed != plainSum.Processed || instrSum.Quarantined != plainSum.Quarantined {
		t.Fatalf("summaries diverge: %v vs %v", instrSum, plainSum)
	}
	for i := range plain {
		p, q := plain[i], instr[i]
		if p.Index != q.Index || p.Status != q.Status {
			t.Fatalf("doc %d: envelope diverges: %+v vs %+v", i, p, q)
		}
		if p.Item.CTH != q.Item.CTH || p.Item.Dox != q.Item.Dox {
			t.Errorf("doc %s: scores diverge with metrics: (%v,%v) vs (%v,%v)",
				p.Item.ID, p.Item.CTH, p.Item.Dox, q.Item.CTH, q.Item.Dox)
		}
		if len(p.Item.PII) != len(q.Item.PII) || len(p.Item.Attacks) != len(q.Item.Attacks) {
			t.Errorf("doc %s: annotations diverge with metrics", p.Item.ID)
		}
		for j := range p.Item.PII {
			if p.Item.PII[j] != q.Item.PII[j] {
				t.Errorf("doc %s: PII[%d] %q vs %q", p.Item.ID, j, p.Item.PII[j], q.Item.PII[j])
			}
		}
	}
}

// TestScoreStreamMetricsWorkerInvariance runs the instrumented batch at
// workers 1, 4 and 16 and requires bit-identical scores plus exactly
// equal aggregate counter totals: every total is a pure function of the
// input, never of scheduling.
func TestScoreStreamMetricsWorkerInvariance(t *testing.T) {
	det := testDetector(t)
	docs := goldenStreamDocs()
	n := uint64(len(docs))

	// The sampled-doc set is fixed by the seed, so its size is too.
	var sampledDocs uint64
	sampleProbe := newScoreMetrics(obs.NewRegistry(), 42)
	for i := range docs {
		if sampleProbe.sampled(i) {
			sampledDocs++
		}
	}
	if sampledDocs == 0 || sampledDocs == n {
		t.Fatalf("degenerate sample size %d of %d: test would prove nothing", sampledDocs, n)
	}

	var baseline []resilience.Result[StreamDoc]
	var baseSnap obs.Snapshot
	for _, workers := range []int{1, 4, 16} {
		opts, reg, tr := metricsOpts(workers)
		results, sum, err := det.ScoreBatch(context.Background(), docs, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Processed != len(docs) || sum.Quarantined != 0 {
			t.Fatalf("workers=%d: summary %v", workers, sum)
		}
		s := reg.Snapshot()

		// Exact totals, independent of worker count.
		cv := s.CounterValue
		checks := []struct {
			name string
			got  float64
			want uint64
			l    []obs.Label
		}{
			{"pipeline_items_total ok", cv("pipeline_items_total", obs.L("status", "ok")), n, nil},
			{"attempts score-cth", cv("pipeline_stage_attempts_total", obs.L("stage", "score-cth")), n, nil},
			{"attempts score-dox", cv("pipeline_stage_attempts_total", obs.L("stage", "score-dox")), n, nil},
			{"attempts pii", cv("pipeline_stage_attempts_total", obs.L("stage", "pii")), n, nil},
			{"attempts taxonomy", cv("pipeline_stage_attempts_total", obs.L("stage", "taxonomy")), n, nil},
			{"retries score-cth", cv("pipeline_stage_retries_total", obs.L("stage", "score-cth")), 0, nil},
			{"pool gets", cv("score_pool_gets_total"), 2 * n, nil},
			{"phase sampled", cv("score_phase_sampled_total"), 2 * sampledDocs, nil},
			{"pii scanned", cv("pii_docs_scanned_total"), n, nil},
		}
		for _, c := range checks {
			if uint64(c.got) != c.want {
				t.Errorf("workers=%d: %s = %v, want %d", workers, c.name, c.got, c.want)
			}
		}
		// Each task's phase histograms saw exactly the sampled docs.
		for _, task := range []string{"cth", "dox"} {
			for _, phase := range []string{"tokenize", "featurize", "model"} {
				m, ok := s.Find("score_phase_ns", obs.L("task", task), obs.L("phase", phase))
				if !ok || m.Count != sampledDocs {
					t.Errorf("workers=%d: score_phase_ns{%s,%s} count = %v, want %d",
						workers, task, phase, m.Count, sampledDocs)
				}
			}
		}
		// Pool misses are bounded by concurrency, never exceed gets.
		if miss, gets := cv("score_pool_misses_total"), cv("score_pool_gets_total"); miss > gets {
			t.Errorf("workers=%d: pool misses %v > gets %v", workers, miss, gets)
		}
		// The tracer sampled the same documents regardless of workers.
		if total := tr.Total(); total == 0 {
			t.Errorf("workers=%d: tracer recorded nothing at rate 0.25", workers)
		}

		if baseline == nil {
			baseline, baseSnap = results, s
			continue
		}
		for i, r := range results {
			b := baseline[i]
			if r.Item.CTH != b.Item.CTH || r.Item.Dox != b.Item.Dox {
				t.Errorf("workers=%d doc %s: scores (%v,%v) != baseline (%v,%v)",
					workers, r.Item.ID, r.Item.CTH, r.Item.Dox, b.Item.CTH, b.Item.Dox)
			}
		}
		// Cross-worker counter equality for the deterministic series
		// (latency histograms and pool misses legitimately vary).
		for _, name := range []string{
			"pipeline_stage_attempts_total", "pipeline_stage_retries_total",
			"pipeline_stage_failures_total", "score_phase_sampled_total",
			"pii_docs_scanned_total", "pii_docs_clean_total",
		} {
			for _, m := range baseSnap.Metrics {
				if m.Name != name {
					continue
				}
				if got := s.CounterValue(name, m.Labels...); m.Value == nil || got != float64(*m.Value) {
					t.Errorf("workers=%d: %s%v = %v, baseline %v", workers, name, m.Labels, got, m.Value)
				}
			}
		}
	}
}

// TestScoreStreamMetricsReconcilePII cross-checks the PII counters
// against the documents: every doc is scanned once per attempt, and the
// clean count plus admitted-anything count covers the corpus.
func TestScoreStreamMetricsReconcilePII(t *testing.T) {
	det := testDetector(t)
	docs := goldenStreamDocs()
	opts, reg, _ := metricsOpts(4)
	if _, _, err := det.ScoreBatch(context.Background(), docs, opts); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	scanned := s.CounterValue("pii_docs_scanned_total")
	clean := s.CounterValue("pii_docs_clean_total")
	if scanned != float64(len(docs)) {
		t.Errorf("pii scanned = %v, want %d", scanned, len(docs))
	}
	if clean >= scanned {
		t.Errorf("clean = %v of %v scanned: corpus contains PII-bearing docs", clean, scanned)
	}
	// The dox-bearing document must have admitted (at least) the
	// address, email and phone families with matches.
	for _, family := range []string{"address", "email", "phone"} {
		if v := s.CounterValue("pii_family_matches_total", obs.L("family", family)); v == 0 {
			t.Errorf("pii_family_matches_total{family=%q} = 0, want > 0", family)
		}
	}
}

// TestScoreObsAllocFree gates the instrumented scoring hot path at zero
// allocations per op — for unsampled documents and for sampled ones.
func TestScoreObsAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	det := testDetector(t)
	sm := newScoreMetrics(obs.NewRegistry(), 42)
	text := "we need to mass-report his twitter and youtube, spread the word"

	// Find one unsampled and one sampled index.
	unsampled, sampled := -1, -1
	for i := 0; i < 10000 && (unsampled < 0 || sampled < 0); i++ {
		if sm.sampled(i) {
			if sampled < 0 {
				sampled = i
			}
		} else if unsampled < 0 {
			unsampled = i
		}
	}
	if unsampled < 0 || sampled < 0 {
		t.Fatal("could not find both a sampled and an unsampled index")
	}

	base := randx.New(42).Split("score-cth")
	for _, tc := range []struct {
		name  string
		index int
	}{
		{"unsampled", unsampled},
		{"sampled", sampled},
	} {
		rng := base.SplitNVal("doc", tc.index)
		det.scoreObs(det.cth, taskCTH, text, det.meta.CTHTextLen, &rng, sm, tc.index) // warm scratch
		if n := testing.AllocsPerRun(200, func() {
			r := base.SplitNVal("doc", tc.index)
			det.scoreObs(det.cth, taskCTH, text, det.meta.CTHTextLen, &r, sm, tc.index)
		}); n > 0 {
			t.Errorf("scoreObs (%s doc) allocates %v per op, want 0", tc.name, n)
		}
	}
}

// BenchmarkScoreBatchMetrics keeps the instrumented end-to-end stream
// in the benchmark smoke run; cmd/benchscore measures the same shape
// against the uninstrumented stream to record the overhead ratio.
func BenchmarkScoreBatchMetrics(b *testing.B) {
	det := testDetector(b)
	docs := goldenStreamDocs()
	reg := obs.NewRegistry()
	opts := StreamOptions{Seed: 42, Metrics: reg}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.ScoreBatch(context.Background(), docs, opts); err != nil {
			b.Fatal(err)
		}
	}
}
