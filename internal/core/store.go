package core

import (
	"fmt"

	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
)

// Store-backed corpus loading. When Options.StorePath names a
// segmented corpus store (built by corpusgen -store), the pipeline
// streams its input from disk instead of regenerating it from the
// seed: StageCorpora becomes one store.Scan that groups documents by
// dataset, and StageBlogs hands over the blogs corpus that scan set
// aside. The store was written in the generator's emit order, so the
// loaded corpora are element-for-element identical to what Generate /
// GenerateBlogs would have produced — which is what keeps every
// downstream output byte-identical (pinned by golden_store_test.go).

// loadStoreCorpora opens the store and streams every document into
// per-dataset corpora, returning the blogs corpus separately (it is a
// distinct pipeline stage, not part of the machine-filtered map).
// workers > 1 decodes segments in parallel (store.ScanParallel); the
// delivery order — and therefore every corpus — is identical at any
// worker count.
func loadStoreCorpora(dir string, workers int) (map[corpus.Dataset]*corpus.Corpus, *corpus.Corpus, error) {
	s, err := store.Open(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("core: corpus store: %w", err)
	}
	defer s.Close()
	byDS := make(map[corpus.Dataset]*corpus.Corpus)
	for _, ds := range corpus.Datasets() {
		byDS[ds] = &corpus.Corpus{Dataset: ds}
	}
	err = s.ScanParallel(workers, func(d *corpus.Document, _ store.DocRef) error {
		c := byDS[d.Dataset]
		if c == nil {
			c = &corpus.Corpus{Dataset: d.Dataset}
			byDS[d.Dataset] = c
		}
		c.Docs = append(c.Docs, *d)
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: corpus store: %w", err)
	}
	blogs := byDS[corpus.Blogs]
	delete(byDS, corpus.Blogs)
	return byDS, blogs, nil
}

// storeFingerprint is the graph fingerprint input for store-backed
// runs: the manifest generation joins the config, so cached artifacts
// invalidate exactly when segments are appended to the store.
type storeFingerprint struct {
	Config     Config
	StorePath  string
	Generation uint64
}

// probeStoreGeneration reads the store's manifest generation without
// opening or verifying the store (that happens inside StageCorpora).
func probeStoreGeneration(dir string) (uint64, error) {
	gen, _, err := store.ReadManifest(dir)
	if err != nil {
		return 0, fmt.Errorf("core: corpus store: %w", err)
	}
	return gen, nil
}
