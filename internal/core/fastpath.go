package core

// The detector's zero-allocation scoring fast path. Every score used
// to pay for a ToLower copy, per-word Builder churn, a fresh token
// slice, per-n-gram hash objects and a fresh counts map — ~350 heap
// allocations per streamed document. A scorer bundles the reusable
// scratch (WordPiece session, featurizer, span-merge buffer) and a
// sync.Pool hands one to each concurrent scoring goroutine, so
// steady-state scoring allocates nothing and produces bit-identical
// scores (golden-tested against the legacy composition at multiple
// worker counts).

import (
	"harassrepro/internal/features"
	"harassrepro/internal/model"
	"harassrepro/internal/randx"
	"harassrepro/internal/tokenize"
)

// scorer is the per-goroutine scratch for one in-flight score.
type scorer struct {
	sess   *tokenize.Session
	feat   *features.Featurizer
	merged []string // span-merge scratch for long documents
	// fresh marks a scorer straight out of the pool's New — the
	// instrumented path counts it as a pool miss, then clears it.
	fresh bool
}

// initScorerPool builds the detector's scorer pool; called once by
// LoadDetector after tok and hasher are set.
func (d *Detector) initScorerPool() {
	d.scorers.New = func() any {
		return &scorer{sess: d.tok.NewSession(), feat: d.hasher.NewFeaturizer(), fresh: true}
	}
}

// vectorizeWith mirrors the legacy text-to-vector transform on the
// scorer's scratch: tokenize, then featurize.
//
// The returned vector aliases the scorer's scratch: consume it before
// releasing the scorer.
func (d *Detector) vectorizeWith(sc *scorer, text string, maxLen int, rng *randx.Source) features.Vector {
	return d.featurizeToks(sc, sc.sess.Tokenize(text), maxLen, rng)
}

// featurizeToks turns an already-tokenized document into a feature
// vector. Documents at or under the span length skip the Spans
// machinery entirely (Spans would return the token slice unchanged
// without consuming rng); longer documents keep the exact legacy
// chunk-shuffle-merge sequence so span sampling stays bit-reproducible.
func (d *Detector) featurizeToks(sc *scorer, toks []string, maxLen int, rng *randx.Source) features.Vector {
	return sc.featurize(toks, maxLen, rng)
}

// featurize is featurizeToks on the scorer's own scratch, shared by the
// detector's streaming path and the pipeline's pooled vectorize.
func (sc *scorer) featurize(toks []string, maxLen int, rng *randx.Source) features.Vector {
	if len(toks) <= maxLen {
		return sc.feat.Vectorize(toks)
	}
	spans := tokenize.Spans(toks, maxLen, 2, tokenize.SpanRandomNoOverlap, rng)
	if len(spans) == 1 {
		return sc.feat.Vectorize(spans[0])
	}
	sc.merged = sc.merged[:0]
	for _, s := range spans {
		sc.merged = append(sc.merged, s...)
	}
	return sc.feat.Vectorize(sc.merged)
}

// scoreWith runs one classifier over text on pooled scratch.
func (d *Detector) scoreWith(m *model.LogReg, text string, maxLen int, rng *randx.Source) float64 {
	sc := d.scorers.Get().(*scorer)
	score := m.Score(d.vectorizeWith(sc, text, maxLen, rng))
	d.scorers.Put(sc)
	return score
}
