package core

// Golden snapshots of every experiment's rendered output at quick scale,
// captured from the pre-graph monolithic pipeline. The artifact-graph
// refactor (memoization, parallel scheduling, pooled vectorization, the
// incremental WordPiece trainer) must keep every byte of these outputs
// intact: each stage derives its rng from a pure split keyed by stage
// name, so decomposing or reordering the computation is observable only
// through these fixtures.
//
// Regenerate with: go test ./internal/core -run TestGoldenExperimentOutputs -update

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"harassrepro/internal/testutil"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

// goldenSeeds returns the seeds pinned by fixtures. Under the race
// detector only seed 1 runs: the point there is catching races, and the
// extra full pipeline runs are slow with instrumentation on.
func goldenSeeds() []uint64 {
	if testutil.RaceEnabled {
		return []uint64{1}
	}
	return []uint64{1, 7, 42}
}

// goldenPipeline returns a pipeline for the seed, reusing the shared
// seed-1 pipeline every other test already pays for.
func goldenPipeline(t *testing.T, seed uint64) *Pipeline {
	t.Helper()
	if seed == 1 {
		return sharedPipeline(t)
	}
	p, err := Run(QuickConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func checkGolden(t *testing.T, path string, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: output diverged from pre-refactor monolith\n--- want ---\n%s\n--- got ---\n%s",
			filepath.Base(path), want, got)
	}
}

func TestGoldenExperimentOutputs(t *testing.T) {
	for _, seed := range goldenSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := goldenPipeline(t, seed)
			dir := filepath.Join("testdata", "golden", fmt.Sprintf("seed%d", seed))
			for _, e := range Experiments() {
				out, err := p.RunExperiment(e.ID)
				if err != nil {
					t.Fatalf("%s: %v", e.ID, err)
				}
				checkGolden(t, filepath.Join(dir, e.ID+".txt"), out)
			}
			checkGolden(t, filepath.Join(dir, "sweep-metrics.txt"),
				fmt.Sprintf("%+v\n", p.CollectMetrics()))
		})
	}
}
