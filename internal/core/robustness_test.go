package core

import (
	"strings"
	"testing"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
)

// TestTinyScalePipeline runs the full pipeline at an extreme volume
// scale: corpora shrink to a few hundred documents per platform, yet
// every stage must complete and every experiment must render.
func TestTinyScalePipeline(t *testing.T) {
	p, err := Run(Config{
		Seed:          99,
		VolumeScale:   400_000,
		PositiveScale: 100,
		BlogScale:     50,
		Buckets:       1 << 14,
		Epochs:        2,
		ActivePerBin:  5,
		AnnotationCap: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		if _, err := e.Run(p); err != nil {
			t.Errorf("experiment %s at tiny scale: %v", e.ID, err)
		}
	}
	// Positives exist despite the extreme scale (floors apply).
	if p.Dox.TotalTruePositives() == 0 || p.CTH.TotalTruePositives() == 0 {
		t.Errorf("tiny scale lost all positives: dox %d, cth %d",
			p.Dox.TotalTruePositives(), p.CTH.TotalTruePositives())
	}
}

// TestMismatchedScales stresses the corpus budget floor: many positives,
// very small volume.
func TestMismatchedScales(t *testing.T) {
	g := corpus.NewGenerator(corpus.Config{Seed: 7, VolumeScale: 1_000_000, PositiveScale: 5})
	boards := g.Generate()[corpus.Boards]
	cth, dox := boards.CountTrue()
	// Quotas must be met (the generator grows the budget).
	if cth < 3500 || dox < 1800 {
		t.Errorf("quotas unmet at mismatched scales: cth=%d dox=%d", cth, dox)
	}
	// Thread structure must remain intact.
	threads := map[string]int{}
	for i := range boards.Docs {
		threads[boards.Docs[i].ThreadID]++
	}
	for id, n := range threads {
		first := -1
		for i := range boards.Docs {
			if boards.Docs[i].ThreadID == id {
				first = i
				break
			}
		}
		if boards.Docs[first].ThreadSize != n {
			t.Fatalf("thread %s: size field %d != actual %d", id, boards.Docs[first].ThreadSize, n)
		}
	}
}

// TestPipelineDeterminism verifies that two identical Run calls produce
// identical headline numbers.
func TestPipelineDeterminism(t *testing.T) {
	cfg := Config{Seed: 123, VolumeScale: 200_000, PositiveScale: 50, Buckets: 1 << 14, Epochs: 2, ActivePerBin: 5, AnnotationCap: 50}
	p1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Dox.TotalTruePositives() != p2.Dox.TotalTruePositives() {
		t.Errorf("dox TP differ: %d vs %d", p1.Dox.TotalTruePositives(), p2.Dox.TotalTruePositives())
	}
	if p1.CTH.TotalTruePositives() != p2.CTH.TotalTruePositives() {
		t.Errorf("cth TP differ: %d vs %d", p1.CTH.TotalTruePositives(), p2.CTH.TotalTruePositives())
	}
	if p1.Dox.Eval.Positive.F1 != p2.Dox.Eval.Positive.F1 {
		t.Errorf("dox F1 differ: %v vs %v", p1.Dox.Eval.Positive.F1, p2.Dox.Eval.Positive.F1)
	}
	for _, plat := range taskPlatforms(annotate.TaskCTH) {
		if p1.CTH.Results[plat].Threshold != p2.CTH.Results[plat].Threshold {
			t.Errorf("%s thresholds differ", plat)
		}
	}
}

// TestSweepMetricsAndRender exercises the cross-seed sweep machinery on
// the shared pipeline plus one fresh seed.
func TestSweepMetricsAndRender(t *testing.T) {
	p := sharedPipeline(t)
	m := p.CollectMetrics()
	if m.DoxF1 <= 0 || m.CTHF1 <= 0 {
		t.Errorf("metrics missing F1: %+v", m)
	}
	if m.ReportingShare < 0.3 || m.ReportingShare > 0.8 {
		t.Errorf("reporting share = %v", m.ReportingShare)
	}
	out := RenderSweep([]SweepMetrics{m, m})
	for _, want := range []string{"mean", "sd", "paper", "Reporting %"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep render missing %q:\n%s", want, out)
		}
	}
}
