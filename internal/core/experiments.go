package core

import (
	"fmt"
	"sort"
	"strings"

	"harassrepro/internal/annotate"
	"harassrepro/internal/blogs"
	"harassrepro/internal/corpus"
	"harassrepro/internal/gender"
	"harassrepro/internal/harm"
	"harassrepro/internal/pii"
	"harassrepro/internal/query"
	"harassrepro/internal/randx"
	"harassrepro/internal/repeatdox"
	"harassrepro/internal/report"
	"harassrepro/internal/stats"
	"harassrepro/internal/taxonomy"
	"harassrepro/internal/threads"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(p *Pipeline) (string, error)
}

// Experiments returns the registry of all table/figure reproductions in
// paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: Raw data sets", (*Pipeline).Table1},
		{"table2", "Table 2: Annotated training data per task", (*Pipeline).Table2Report},
		{"table3", "Table 3: Classifier performance", (*Pipeline).Table3},
		{"table4", "Table 4: Threshold evaluation per task and data set", (*Pipeline).Table4},
		{"table5", "Table 5: CTH parent attack types per data set", (*Pipeline).Table5},
		{"table6", "Table 6: PII in doxes per data set", (*Pipeline).Table6},
		{"table7", "Table 7: Harm-risk taxonomy", (*Pipeline).Table7},
		{"table8", "Table 8: Blog analysis overview", (*Pipeline).Table8},
		{"table9", "Table 9: Taxonomy of attacks in blogs", (*Pipeline).Table9},
		{"table10", "Table 10: Full taxonomy by target gender", (*Pipeline).Table10},
		{"table11", "Table 11: Full taxonomy by data set", (*Pipeline).Table11},
		{"fig1", "Figure 1: Pipeline document counts", (*Pipeline).Figure1},
		{"fig2", "Figure 2: Harm-risk overlap", (*Pipeline).Figure2},
		{"fig3", "Figure 3: Annotation task template", (*Pipeline).Figure3},
		{"fig4", "Figure 4: Seed query evaluation", (*Pipeline).Figure4},
		{"fig5", "Figure 5: Thread-size CDF, CTH vs baseline", (*Pipeline).Figure5},
		{"fig6", "Figure 6: Thread sizes per attack type", (*Pipeline).Figure6},
		{"overlap", "§6.3: CTH/dox thread overlap", (*Pipeline).OverlapReport},
		{"positions", "§6.3/§7.4: positions in threads", (*Pipeline).PositionsReport},
		{"cooccur", "§6.2: attack-type co-occurrence", (*Pipeline).CoOccurrenceReport},
		{"repeats", "§7.3: repeated doxes", (*Pipeline).RepeatedDoxReport},
		{"agreement", "§5.3: annotation agreement", (*Pipeline).AgreementReport},
		{"piico", "§7.1: PII co-occurrence in doxes", (*Pipeline).PIICoOccurrenceReport},
		{"chisq", "§6.2: chi-square tests on reporting subcategories", (*Pipeline).ChiSquareReport},
		{"genderresp", "§6.3: response sizes by target gender", (*Pipeline).GenderResponseReport},
		{"ablate-span", "Ablation §5.2: long-document span strategies", (*Pipeline).SpanStrategyAblation},
		{"ablate-combined", "Ablation §5.4: combined vs per-data-set training", (*Pipeline).CombinedTrainingAblation},
		{"ablate-chatsplit", "Ablation Table 4: unified vs split chat thresholds", (*Pipeline).ChatSplitAblation},
		{"ablate-active", "Ablation §5.3: active learning vs random sampling", (*Pipeline).ActiveLearningAblation},
		{"ablate-baseline", "Ablation: logistic regression vs naive Bayes", (*Pipeline).BaselineClassifierAblation},
		{"calibration", "Classifier probability calibration", (*Pipeline).CalibrationExperiment},
		{"ablate-crawl", "Ablation §4: crawl completeness vs repeated-dox measurement", (*Pipeline).CrawlCompletenessAblation},
		{"scores", "Classifier score distributions", (*Pipeline).ScoreDistributionReport},
	}
}

// RunExperiment executes one experiment by ID.
func (p *Pipeline) RunExperiment(id string) (string, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			out, err := e.Run(p)
			if err != nil {
				return "", err
			}
			return e.Title + "\n\n" + out, nil
		}
	}
	return "", fmt.Errorf("core: unknown experiment %q", id)
}

// Table1 reports the raw data set volumes and date ranges at the run's
// scale alongside the paper's full-scale values.
func (p *Pipeline) Table1() (string, error) {
	t := report.NewTable("", "Data set", "Posts/Messages (generated)", "Paper full scale", "Min Date", "Max Date")
	for _, ds := range corpus.Datasets() {
		n := 0
		if ds == corpus.Blogs {
			n = p.Blogs.Len()
		} else if c, ok := p.Corpora[ds]; ok {
			n = c.Len()
		}
		r := corpus.DatasetDates[ds]
		t.AddRow(string(ds), fmt.Sprintf("%d", n), fmt.Sprintf("%d", corpus.RawSizes[ds]), r[0], r[1])
	}
	t.AddRow("", "", "", "", "")
	return t.String() + fmt.Sprintf("VolumeScale 1:%d, PositiveScale 1:%d\n", p.Config.VolumeScale, p.Config.PositiveScale), nil
}

// Table2Report reports annotated training set sizes per task/data set.
func (p *Pipeline) Table2Report() (string, error) {
	t := report.NewTable("", "Data set", "Dox Pos", "Dox Neg", "CTH Pos", "CTH Neg")
	var dp, dn, cp, cn int
	for _, ds := range []corpus.Dataset{corpus.Boards, corpus.Chat, corpus.Gab, corpus.Pastes} {
		d := p.Dox.Table2[ds]
		c := p.CTH.Table2[ds]
		cthPos, cthNeg := fmt.Sprintf("%d", c.Pos), fmt.Sprintf("%d", c.Neg)
		if ds == corpus.Pastes {
			cthPos, cthNeg = "-", "-" // the CTH task does not apply to pastes
		}
		t.AddRow(string(ds), fmt.Sprintf("%d", d.Pos), fmt.Sprintf("%d", d.Neg), cthPos, cthNeg)
		dp += d.Pos
		dn += d.Neg
		cp += c.Pos
		cn += c.Neg
	}
	t.AddRow("Total", fmt.Sprintf("%d", dp), fmt.Sprintf("%d", dn), fmt.Sprintf("%d", cp), fmt.Sprintf("%d", cn))
	return t.String(), nil
}

// Table3 reports classifier performance per task and label.
func (p *Pipeline) Table3() (string, error) {
	t := report.NewTable("", "Classifier", "Text length", "Label", "F1", "Precision", "Recall")
	add := func(run *TaskRun, name string) {
		rep := run.Eval
		for _, lm := range []struct {
			label string
			f1    float64
			prec  float64
			rec   float64
		}{
			{rep.Positive.Label, rep.Positive.F1, rep.Positive.Precision, rep.Positive.Recall},
			{rep.Negative.Label, rep.Negative.F1, rep.Negative.Precision, rep.Negative.Recall},
			{"Weighted Avg.", rep.WeightedAvg.F1, rep.WeightedAvg.Precision, rep.WeightedAvg.Recall},
			{"Macro Avg.", rep.MacroAvg.F1, rep.MacroAvg.Precision, rep.MacroAvg.Recall},
		} {
			t.AddRow(name, fmt.Sprintf("%d", run.TextLen), lm.label, report.F(lm.f1), report.F(lm.prec), report.F(lm.rec))
		}
		t.AddRow(name, "", "AUC-ROC", report.F3(rep.AUC), "", "")
	}
	add(p.Dox, "Doxing")
	add(p.CTH, "Call to harassment")
	return t.String(), nil
}

// Table4 reports the threshold evaluation rows.
func (p *Pipeline) Table4() (string, error) {
	t := report.NewTable("", "Classifier", "Data set", "Threshold t", "Nr > threshold", "Nr. annotated", "True Positive")
	add := func(run *TaskRun, name string, plats []corpus.Platform) {
		total := PlatformResult{}
		for _, plat := range plats {
			r := run.Results[plat]
			if r == nil {
				continue
			}
			star := ""
			if r.AnnotatedAll {
				star = "*"
			}
			t.AddRow(name, string(plat), report.F3(r.Threshold),
				fmt.Sprintf("%d", r.AboveThreshold),
				star+fmt.Sprintf("%d", r.Annotated),
				fmt.Sprintf("%d", r.TruePositives))
			total.AboveThreshold += r.AboveThreshold
			total.Annotated += r.Annotated
			total.TruePositives += r.TruePositives
		}
		t.AddRow(name, "Total", "-",
			fmt.Sprintf("%d", total.AboveThreshold),
			fmt.Sprintf("%d", total.Annotated),
			fmt.Sprintf("%d", total.TruePositives))
	}
	add(p.Dox, "Doxing", []corpus.Platform{corpus.PlatformBoards, corpus.PlatformDiscord, corpus.PlatformGab, corpus.PlatformPastes, corpus.PlatformTelegram})
	add(p.CTH, "Call to harassment", []corpus.Platform{corpus.PlatformBoards, corpus.PlatformGab, corpus.PlatformDiscord, corpus.PlatformTelegram})
	return t.String() + "* every document above the threshold was annotated\n", nil
}

// computeCodedCTH codes the annotated CTH positives with the taxonomy
// categorizer, grouped per Table 5 column. Compute body for the
// coded-cth artifact; use the codedCTH accessor (artifacts.go).
func (p *Pipeline) computeCodedCTH() map[string][]taxonomy.Label {
	cat := taxonomy.NewCategorizer()
	out := map[string][]taxonomy.Label{}
	for plat, r := range p.CTH.Results {
		col := columnFor(plat)
		for _, d := range r.Positives {
			label := cat.Categorize(d.Text)
			if label.Empty() {
				label = taxonomy.NewLabel(taxonomy.SubGeneric)
			}
			out[col] = append(out[col], label)
		}
	}
	return out
}

// columnFor maps a platform to its Table 5/11 column.
func columnFor(plat corpus.Platform) string {
	switch plat {
	case corpus.PlatformDiscord, corpus.PlatformTelegram:
		return "Chat"
	case corpus.PlatformGab:
		return "Gab"
	default:
		return "Boards"
	}
}

// Table5 reports parent attack types per data set.
func (p *Pipeline) Table5() (string, error) {
	coded := p.codedCTH()
	cols := []string{"Boards", "Chat", "Gab"}
	t := report.NewTable("", "Attack Type", "Boards", "Chat", "Gab")
	dists := map[string]taxonomy.Distribution{}
	header := []string{"Size"}
	for _, c := range cols {
		dists[c] = taxonomy.NewDistribution(coded[c])
		header = append(header, fmt.Sprintf("%d", len(coded[c])))
	}
	t.AddRow(header...)
	for _, parent := range taxonomy.Parents() {
		row := []string{string(parent)}
		for _, c := range cols {
			d := dists[c]
			row = append(row, report.Pct(d.ParentHits[parent], d.Total))
		}
		t.AddRow(row...)
	}
	return t.String() + "Columns do not sum to 100%: a CTH can include multiple attack types.\n", nil
}

// Table11 reports the full subcategory taxonomy per data set.
func (p *Pipeline) Table11() (string, error) {
	coded := p.codedCTH()
	cols := []string{"Boards", "Chat", "Gab"}
	t := report.NewTable("", "Attack Type", "Boards", "Chat", "Gab")
	dists := map[string]taxonomy.Distribution{}
	header := []string{"Size"}
	for _, c := range cols {
		dists[c] = taxonomy.NewDistribution(coded[c])
		header = append(header, fmt.Sprintf("%d", len(coded[c])))
	}
	t.AddRow(header...)
	for _, sub := range taxonomy.Subs() {
		row := []string{string(sub)}
		for _, c := range cols {
			d := dists[c]
			row = append(row, report.Pct(d.SubHits[sub], d.Total))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Table10 reports the full taxonomy per inferred target gender.
func (p *Pipeline) Table10() (string, error) {
	cat := taxonomy.NewCategorizer()
	byGender := map[gender.Gender][]taxonomy.Label{}
	for _, d := range p.CTH.AllPositives() {
		label := cat.Categorize(d.Text)
		if label.Empty() {
			label = taxonomy.NewLabel(taxonomy.SubGeneric)
		}
		g := gender.Infer(d.Text)
		byGender[g] = append(byGender[g], label)
	}
	t := report.NewTable("", "Attack Type", "Unknown", "Female", "Male")
	dists := map[gender.Gender]taxonomy.Distribution{}
	header := []string{"Size"}
	for _, g := range gender.All() {
		dists[g] = taxonomy.NewDistribution(byGender[g])
		header = append(header, fmt.Sprintf("%d", len(byGender[g])))
	}
	t.AddRow(header...)
	for _, sub := range taxonomy.Subs() {
		row := []string{string(sub)}
		for _, g := range gender.All() {
			d := dists[g]
			row = append(row, report.Pct(d.SubHits[sub], d.Total))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// computeDoxPIIByColumn extracts PII from the annotated dox positives
// per Table 6 column. Compute body for the dox-pii artifact; use the
// doxPIIByColumn accessor (artifacts.go).
func (p *Pipeline) computeDoxPIIByColumn() doxPII {
	ex := pii.NewExtractor()
	types := map[string][][]pii.Type{}
	docs := map[string][]*corpus.Document{}
	for plat, r := range p.Dox.Results {
		col := columnFor(plat)
		if plat == corpus.PlatformPastes {
			col = "Paste"
		}
		for _, d := range r.Positives {
			types[col] = append(types[col], ex.Types(d.Text))
			docs[col] = append(docs[col], d)
		}
	}
	return doxPII{types: types, docs: docs}
}

// Table6 reports PII prevalence in doxes per data set.
func (p *Pipeline) Table6() (string, error) {
	byCol, _ := p.doxPIIByColumn()
	cols := []string{"Boards", "Chat", "Gab", "Paste"}
	t := report.NewTable("", "PII", "Boards", "Chat", "Gab", "Paste")
	header := []string{"Size"}
	for _, c := range cols {
		header = append(header, fmt.Sprintf("%d", len(byCol[c])))
	}
	t.AddRow(header...)
	for _, ty := range pii.AllTypes() {
		row := []string{string(ty)}
		for _, c := range cols {
			count := 0
			for _, ts := range byCol[c] {
				for _, got := range ts {
					if got == ty {
						count++
						break
					}
				}
			}
			row = append(row, report.Pct(count, len(byCol[c])))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// Table7 reports the harm-risk taxonomy mapping.
func (p *Pipeline) Table7() (string, error) {
	t := report.NewTable("", "Harm Risk", "PII")
	t.AddRow("Online", "Email, Instagram, Facebook, Twitter, YouTube")
	t.AddRow("Physical", "Address, Zip Code")
	t.AddRow("Economic / Identity", "Email, Credit card number, SSN")
	t.AddRow("Reputation*", "Family member names, place of employment")
	return t.String() + "* detected via the manual-annotation stand-in (employment/family mentions)\n", nil
}

// Figure2 computes harm-risk overlap over annotated doxes.
func (p *Pipeline) Figure2() (string, error) {
	_, docsByCol := p.doxPIIByColumn()
	ex := pii.NewExtractor()
	var perDox [][]harm.Risk
	var pastesAllRisks, allRisks int
	for col, docs := range docsByCol {
		for _, d := range docs {
			risks := harm.Profile(ex.Types(d.Text), d.Text)
			perDox = append(perDox, risks)
			if len(risks) == len(harm.Risks()) {
				allRisks++
				if col == "Paste" {
					pastesAllRisks++
				}
			}
		}
	}
	ov := harm.ComputeOverlap(perDox)

	// Per-platform no-risk shares (§7.2 notes that more than 50% of
	// Discord doxes carried no harm-risk indicator).
	noRiskByCol := map[string]string{}
	for col, docs := range docsByCol {
		none := 0
		for _, d := range docs {
			if len(harm.Profile(ex.Types(d.Text), d.Text)) == 0 {
				none++
			}
		}
		if len(docs) > 0 {
			noRiskByCol[col] = fmt.Sprintf("%.0f%%", 100*float64(none)/float64(len(docs)))
		}
	}

	maxCols := 15
	combos := ov.Combinations
	if len(combos) > maxCols {
		combos = combos[:maxCols]
	}
	var names []string
	var counts []int
	for _, c := range combos {
		names = append(names, c.Key())
		counts = append(counts, c.Count)
	}
	var rows []report.VennRow
	for _, r := range harm.Risks() {
		row := report.VennRow{Risk: string(r), Total: ov.Totals[r]}
		for _, c := range combos {
			member := false
			for _, cr := range c.Risks {
				if cr == r {
					member = true
				}
			}
			row.Cells = append(row.Cells, member)
		}
		rows = append(rows, row)
	}
	out := report.RenderVenn("", names, counts, rows)
	out += fmt.Sprintf("\nDoxes: %d; no risk indicators: %d (%.1f%%)\n", ov.Doxes, ov.NoRisk, 100*float64(ov.NoRisk)/float64(max(1, ov.Doxes)))
	var cols []string
	for c := range noRiskByCol {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	out += "No-risk share per data set (paper: >50% on Discord):"
	for _, c := range cols {
		out += fmt.Sprintf(" %s %s;", c, noRiskByCol[c])
	}
	out += "\n"
	out += fmt.Sprintf("All four risks: %d (%.1f%%), of which pastes: %.0f%%\n",
		allRisks, 100*float64(allRisks)/float64(max(1, ov.Doxes)),
		100*float64(pastesAllRisks)/float64(max(1, allRisks)))
	return out, nil
}

// Figure3 renders the annotation task templates.
func (p *Pipeline) Figure3() (string, error) {
	return annotate.TaskTemplate(annotate.TaskDox) + "\n" + annotate.TaskTemplate(annotate.TaskCTH), nil
}

// Figure4 evaluates the seed query over the boards corpus.
func (p *Pipeline) Figure4() (string, error) {
	boards := p.Corpora[corpus.Boards]
	q := query.WithAttackTerms(query.Figure4())
	var matched, matchedCTH, totalCTH int
	for i := range boards.Docs {
		d := &boards.Docs[i]
		m := q.Match(d.Text)
		if m {
			matched++
		}
		if d.Truth.IsCTH {
			totalCTH++
			if m {
				matchedCTH++
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Seed query: mobilizing-language clause AND in/outgroup subclause AND attack terms\n")
	fmt.Fprintf(&b, "Boards documents: %d; matched: %d\n", boards.Len(), matched)
	fmt.Fprintf(&b, "True CTH recalled: %d / %d (%.1f%%)\n", matchedCTH, totalCTH, 100*float64(matchedCTH)/float64(max(1, totalCTH)))
	fmt.Fprintf(&b, "Match precision vs ground truth: %.1f%%\n", 100*float64(matchedCTH)/float64(max(1, matched)))
	return b.String(), nil
}

// computeBoardPosts adapts the boards corpus to the thread-analysis
// model, using the classifier-above-threshold positives (as §6.3 does)
// for CTH and dox flags. Compute body for the board-posts artifact; use
// the boardPosts accessor (artifacts.go).
func (p *Pipeline) computeBoardPosts() []threads.Post {
	cat := taxonomy.NewCategorizer()
	cthIDs := map[string]bool{}
	for _, d := range p.CTH.Results[corpus.PlatformBoards].Positives {
		cthIDs[d.ID] = true
	}
	doxIDs := map[string]bool{}
	for _, d := range p.Dox.Results[corpus.PlatformBoards].Positives {
		doxIDs[d.ID] = true
	}
	boards := p.Corpora[corpus.Boards]
	posts := make([]threads.Post, 0, boards.Len())
	for i := range boards.Docs {
		d := &boards.Docs[i]
		post := threads.Post{
			ThreadID:   d.ThreadID,
			Pos:        d.PosInThread,
			ThreadSize: d.ThreadSize,
			IsCTH:      cthIDs[d.ID],
			IsDox:      doxIDs[d.ID],
		}
		if post.IsCTH {
			label := cat.Categorize(d.Text)
			if label.Empty() {
				label = taxonomy.NewLabel(taxonomy.SubGeneric)
			}
			post.Label = label
		}
		posts = append(posts, post)
	}
	return posts
}

// baselineSizes samples thread sizes of random non-positive board posts
// (the paper's 5,000-random-post baseline, "manually verified that they
// did not contain any calls to harassment"). Threads containing
// toxic-content CTH are excluded: at the paper's scale (positives are
// <0.01% of posts) a random post essentially never lands in one of those
// rare boosted threads, whereas at this reproduction's density they
// would dominate the upper tail and confound every other comparison.
func (p *Pipeline) baselineSizes(posts []threads.Post) []float64 {
	rng := p.rng.Split("baseline")
	toxicThread := map[string]bool{}
	for i := range posts {
		if posts[i].IsCTH && posts[i].Label.HasParent(taxonomy.ToxicContent) {
			toxicThread[posts[i].ThreadID] = true
		}
	}
	var candidates []float64
	for i := range posts {
		q := &posts[i]
		if !q.IsCTH && !q.IsDox && !toxicThread[q.ThreadID] {
			candidates = append(candidates, float64(q.ThreadSize))
		}
	}
	randx.Shuffle(rng, candidates)
	if len(candidates) > 5000 {
		candidates = candidates[:5000]
	}
	return candidates
}

// Figure5 renders the thread-size CDF of CTH threads vs the baseline.
func (p *Pipeline) Figure5() (string, error) {
	posts := p.boardPosts()
	cthSizes := threads.ThreadSizes(posts, func(q *threads.Post) bool { return q.IsCTH })
	base := p.baselineSizes(posts)
	cthX, cthP := stats.NewECDF(cthSizes).Points()
	baseX, baseP := stats.NewECDF(base).Points()
	out := report.RenderCDF("Thread size CDF (log x)", []report.CDFSeries{
		{Name: fmt.Sprintf("CTH threads (n=%d)", len(cthSizes)), Xs: cthX, Ps: cthP},
		{Name: fmt.Sprintf("Random baseline (n=%d)", len(base)), Xs: baseX, Ps: baseP},
	}, 72, 18)
	return out, nil
}

// Figure6 renders per-attack-type thread-size distributions plus the
// significance tests of §6.3.
func (p *Pipeline) Figure6() (string, error) {
	posts := p.boardPosts()
	base := p.baselineSizes(posts)
	var cthPosts []threads.Post
	for _, q := range posts {
		if q.IsCTH {
			cthPosts = append(cthPosts, q)
		}
	}
	rows := threads.CompareResponses(cthPosts, base, 0.1, 5)
	var boxes []report.BoxStats
	for _, r := range rows {
		if r.Excluded {
			continue
		}
		boxes = append(boxes, report.BoxStats{
			Name: string(r.Attack), N: r.N,
			Min:    stats.Quantile(r.Sizes, 0),
			Q1:     stats.Quantile(r.Sizes, 0.25),
			Median: stats.Quantile(r.Sizes, 0.5),
			Q3:     stats.Quantile(r.Sizes, 0.75),
			Max:    stats.Quantile(r.Sizes, 1),
		})
	}
	boxes = append(boxes, report.BoxStats{
		Name: "Baseline", N: len(base),
		Min:    stats.Quantile(base, 0),
		Q1:     stats.Quantile(base, 0.25),
		Median: stats.Quantile(base, 0.5),
		Q3:     stats.Quantile(base, 0.75),
		Max:    stats.Quantile(base, 1),
	})
	out := report.RenderBoxes("Thread sizes per attack type", boxes)
	tt := report.NewTable("\nLog-size Welch t-tests vs baseline (BH-corrected, q=0.1)",
		"Attack Type", "N", "t", "raw p", "adj p", "significant")
	for _, r := range rows {
		if r.Excluded {
			tt.AddRow(string(r.Attack), fmt.Sprintf("%d", r.N), "-", "-", "-", "excluded")
			continue
		}
		tt.AddRow(string(r.Attack), fmt.Sprintf("%d", r.N), report.F3(r.T), report.F3(r.RawP), report.F3(r.AdjustedP), fmt.Sprintf("%v", r.Significant))
	}
	return out + tt.String(), nil
}

// computeAboveThresholdBoardPosts adapts the boards corpus to the
// thread model using the complete above-threshold sets for CTH/dox
// flags — §6.3's overlap analysis explicitly uses "all calls to
// harassment and doxes above the threshold", not the smaller annotated
// sets. Compute body for the above-board-posts artifact.
func (p *Pipeline) computeAboveThresholdBoardPosts() []threads.Post {
	cthIDs := map[string]bool{}
	for _, d := range p.CTH.Results[corpus.PlatformBoards].Above {
		cthIDs[d.ID] = true
	}
	doxIDs := map[string]bool{}
	for _, d := range p.Dox.Results[corpus.PlatformBoards].Above {
		doxIDs[d.ID] = true
	}
	boards := p.Corpora[corpus.Boards]
	posts := make([]threads.Post, 0, boards.Len())
	for i := range boards.Docs {
		d := &boards.Docs[i]
		posts = append(posts, threads.Post{
			ThreadID:   d.ThreadID,
			Pos:        d.PosInThread,
			ThreadSize: d.ThreadSize,
			IsCTH:      cthIDs[d.ID],
			IsDox:      doxIDs[d.ID],
		})
	}
	return posts
}

// OverlapReport reports the §6.3 thread overlap statistics.
func (p *Pipeline) OverlapReport() (string, error) {
	posts := p.aboveThresholdBoardPosts()
	ov := threads.Overlap(posts)
	cthRate, doxRate := threads.RandomThreadRates(posts)
	var b strings.Builder
	fmt.Fprintf(&b, "CTH docs sharing a thread with a dox: %d / %d (%.2f%%; paper 8.53%%)\n",
		ov.CTHWithDoxInThread, ov.CTHDocs, 100*ov.CTHShare)
	fmt.Fprintf(&b, "Dox docs sharing a thread with a CTH: %d / %d (%.2f%%; paper 17.85%%)\n",
		ov.DoxWithCTHInThread, ov.DoxDocs, 100*ov.DoxShare)
	fmt.Fprintf(&b, "Posts that are both dox and CTH: %d (paper: 95)\n", ov.BothInOnePost)
	fmt.Fprintf(&b, "Random thread contains CTH: %.2f%%; dox: %.2f%% (paper 0.20%% / 0.10%%)\n",
		100*cthRate, 100*doxRate)
	return b.String(), nil
}

// PositionsReport reports where CTH and doxes sit within threads.
func (p *Pipeline) PositionsReport() (string, error) {
	posts := p.boardPosts()
	cth := threads.Positions(posts, func(q *threads.Post) bool { return q.IsCTH })
	dox := threads.Positions(posts, func(q *threads.Post) bool { return q.IsDox })
	t := report.NewTable("", "Class", "N", "First %", "Last %", "Median pos", "Mean pos", "StdDev")
	t.AddRow("CTH", fmt.Sprintf("%d", cth.N),
		report.F(100*cth.FirstShare), report.F(100*cth.LastShare),
		report.F(cth.Median), report.F(cth.Mean), report.F(cth.StdDev))
	t.AddRow("Dox", fmt.Sprintf("%d", dox.N),
		report.F(100*dox.FirstShare), report.F(100*dox.LastShare),
		report.F(dox.Median), report.F(dox.Mean), report.F(dox.StdDev))
	return t.String() + "Paper: CTH 3.7% first / 2.7% last; dox 9.7% first / 2.7% last.\n", nil
}

// CoOccurrenceReport reports §6.2 attack-type co-occurrence.
func (p *Pipeline) CoOccurrenceReport() (string, error) {
	cat := taxonomy.NewCategorizer()
	var labels []taxonomy.Label
	for _, d := range p.CTH.AllPositives() {
		label := cat.Categorize(d.Text)
		if label.Empty() {
			label = taxonomy.NewLabel(taxonomy.SubGeneric)
		}
		labels = append(labels, label)
	}
	dist := taxonomy.NewDistribution(labels)
	co := taxonomy.NewCoOccurrence(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "Annotated CTH: %d\n", co.Total)
	fmt.Fprintf(&b, "Multi-attack-type: %d (%.1f%%; paper 13%%)\n", co.MultiType, 100*float64(co.MultiType)/float64(max(1, co.Total)))
	for _, k := range []int{2, 3, 4} {
		fmt.Fprintf(&b, "  %d types: %d\n", k, co.BySize[k])
	}
	fmt.Fprintf(&b, "Surveillance also content leakage: %.0f%% (paper 64%%)\n",
		100*co.ConditionalShare(taxonomy.Surveillance, taxonomy.ContentLeakage, dist))
	fmt.Fprintf(&b, "Impersonation also public-opinion manipulation: %.0f%% (paper 30%%)\n",
		100*co.ConditionalShare(taxonomy.Impersonation, taxonomy.PublicOpinion, dist))
	return b.String(), nil
}

// computeRepeatedDoxStats links the complete above-threshold dox sets
// by shared OSN PII (§7.3). Compute body for the repeat-dox artifact;
// use the RepeatedDoxStats accessor (artifacts.go).
func (p *Pipeline) computeRepeatedDoxStats() repeatdox.Stats {
	ex := pii.NewExtractor()
	var records []repeatdox.Record
	var plats []string
	for plat := range p.Dox.Results {
		plats = append(plats, string(plat))
	}
	sort.Strings(plats)
	for _, ps := range plats {
		r := p.Dox.Results[corpus.Platform(ps)]
		for _, d := range r.Above {
			rec := repeatdox.RecordFromText(d.ID, d.Dataset, d.Text, ex)
			if len(rec.Handles) > 0 {
				records = append(records, rec)
			}
		}
	}
	_, st := repeatdox.Link(records)
	return st
}

// RepeatedDoxReport reports §7.3 repeated-dox statistics over the full
// above-threshold dox sets.
func (p *Pipeline) RepeatedDoxReport() (string, error) {
	st := p.RepeatedDoxStats()
	var b strings.Builder
	fmt.Fprintf(&b, "Linkable doxes (with OSN PII): %d\n", st.TotalDoxes)
	fmt.Fprintf(&b, "Repeated doxes: %d (%.1f%%; paper 20.1%%)\n", st.Repeated, 100*st.RepeatedShare)
	fmt.Fprintf(&b, "Same-data-set repeats: %.1f%% (paper 98%%)\n", 100*st.SameDatasetShare)
	var dss []string
	for ds := range st.ByDataset {
		dss = append(dss, string(ds))
	}
	sort.Strings(dss)
	for _, ds := range dss {
		fmt.Fprintf(&b, "  %s: %d\n", ds, st.ByDataset[corpus.Dataset(ds)])
	}
	return b.String(), nil
}

// AgreementReport reports §5.3 annotation agreement per task.
func (p *Pipeline) AgreementReport() (string, error) {
	t := report.NewTable("", "Task", "Kappa", "Band", "Disagreement", "Paper kappa", "Paper disagreement")
	t.AddRow("Doxing", report.F3(p.Dox.CrowdStats.Kappa), p.Dox.CrowdStats.KappaBand,
		report.F(100*p.Dox.CrowdStats.DisagreementRate)+"%", "0.519", "3.94%")
	t.AddRow("CTH", report.F3(p.CTH.CrowdStats.Kappa), p.CTH.CrowdStats.KappaBand,
		report.F(100*p.CTH.CrowdStats.DisagreementRate)+"%", "0.350", "18.66%")
	out := t.String()
	out += "\nSpot-check of delivered crowd labels (sample accuracy / positives reviewed / overturned):\n"
	out += fmt.Sprintf("  doxing: %.2f / %d / %d\n", p.Dox.SpotCheck.SampledAccuracy, p.Dox.SpotCheck.PositivesReviewed, p.Dox.SpotCheck.PositivesOverturned)
	out += fmt.Sprintf("  CTH:    %.2f / %d / %d\n", p.CTH.SpotCheck.SampledAccuracy, p.CTH.SpotCheck.PositivesReviewed, p.CTH.SpotCheck.PositivesOverturned)
	return out, nil
}

// Figure1 prints the pipeline flow counts.
func (p *Pipeline) Figure1() (string, error) {
	var b strings.Builder
	raw := 0
	for _, ds := range []corpus.Dataset{corpus.Boards, corpus.Chat, corpus.Gab, corpus.Pastes} {
		raw += p.Corpora[ds].Len()
	}
	fmt.Fprintf(&b, "1. Raw data sets:              %d documents (boards %d, chat %d, gab %d, pastes %d)\n",
		raw, p.Corpora[corpus.Boards].Len(), p.Corpora[corpus.Chat].Len(), p.Corpora[corpus.Gab].Len(), p.Corpora[corpus.Pastes].Len())
	fmt.Fprintf(&b, "2. Initial annotations:        dox seed %d, CTH seed %d\n", p.Dox.SeedSize, p.CTH.SeedSize)
	fmt.Fprintf(&b, "3. Trained models:             dox span %d, CTH span %d\n", p.Dox.TextLen, p.CTH.TextLen)
	fmt.Fprintf(&b, "4. Annotated training data:    dox %d, CTH %d\n", p.Dox.LabelledSize, p.CTH.LabelledSize)
	doxAbove, cthAbove := 0, 0
	doxAnn, cthAnn := 0, 0
	for _, r := range p.Dox.Results {
		doxAbove += r.AboveThreshold
		doxAnn += r.Annotated
	}
	for _, r := range p.CTH.Results {
		cthAbove += r.AboveThreshold
		cthAnn += r.Annotated
	}
	fmt.Fprintf(&b, "5. Thresholded data:           dox %d, CTH %d above threshold\n", doxAbove, cthAbove)
	fmt.Fprintf(&b, "6. Sampled and annotated:      dox %d, CTH %d\n", doxAnn, cthAnn)
	fmt.Fprintf(&b, "7. True positives:             dox %d, CTH %d (total %d)\n",
		p.Dox.TotalTruePositives(), p.CTH.TotalTruePositives(),
		p.Dox.TotalTruePositives()+p.CTH.TotalTruePositives())
	return b.String(), nil
}

// Table8 runs the blog analysis.
func (p *Pipeline) Table8() (string, error) {
	experts := annotate.NewPool(annotate.ExpertConfig(annotate.TaskDox), p.rng.Split("blog-experts"))
	reports, err := blogs.Analyze(p.Blogs, experts, p.rng.Split("blog-rng"))
	if err != nil {
		return "", err
	}
	t := report.NewTable("", "Blog", "Total posts", "Relevant posts", "Actual doxes (% relevant)", "Keyword-missed doxes")
	for _, r := range reports {
		t.AddRow(r.Blog, fmt.Sprintf("%d", r.TotalPosts), fmt.Sprintf("%d", r.RelevantPosts),
			fmt.Sprintf("%d (%.1f%%)", r.ActualDoxes, 100*r.DoxRate),
			fmt.Sprintf("%d of %d true doxes", r.MissedByKeywords, r.TrueDoxes))
	}
	return t.String(), nil
}

// Table9 renders the blog attack-profile taxonomy, with the generated
// corpus verification shares.
func (p *Pipeline) Table9() (string, error) {
	var b strings.Builder
	for _, profile := range blogs.Table9() {
		fmt.Fprintf(&b, "%s\n", profile.Family)
		for _, section := range profile.Order {
			fmt.Fprintf(&b, "  %s\n", section)
			for _, item := range profile.Sections[section] {
				fmt.Fprintf(&b, "    - %s\n", item)
			}
		}
	}
	b.WriteString("\nGenerated-corpus profile match rates:\n")
	shares := blogs.VerifyProfiles(p.Blogs)
	var names []string
	for n := range shares {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %s: %.0f%%\n", n, 100*shares[n])
	}
	return b.String(), nil
}
