package core

// Golden equivalence tests for the pooled zero-allocation scoring path.
// referenceVectorize is a verbatim copy of the legacy Detector.vectorize
// (fresh tokenizer output, fresh merge slice, allocating
// Hasher.Vectorize); every fast-path score must match it bit for bit,
// and streamed batches must be bit-identical at every worker count.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"harassrepro/internal/features"
	"harassrepro/internal/randx"
	"harassrepro/internal/resilience"
	"harassrepro/internal/testutil"
	"harassrepro/internal/tokenize"
)

// referenceVectorize is the legacy Detector.vectorize.
func referenceVectorize(d *Detector, text string, maxLen int, rng *randx.Source) features.Vector {
	toks := d.tok.Tokenize(text)
	spans := tokenize.Spans(toks, maxLen, 2, tokenize.SpanRandomNoOverlap, rng)
	if len(spans) == 1 {
		return d.hasher.Vectorize(spans[0])
	}
	var merged []string
	for _, s := range spans {
		merged = append(merged, s...)
	}
	return d.hasher.Vectorize(merged)
}

// testDetector saves the shared pipeline's models and loads them back.
func testDetector(t testing.TB) *Detector {
	t.Helper()
	p := sharedPipeline(t)
	dir := t.TempDir()
	if err := p.SaveModels(dir); err != nil {
		t.Fatal(err)
	}
	det, err := LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// goldenStreamDocs mixes short chat messages, PII-bearing text, long
// pastes (forcing the span-sampling branch), unicode and junk.
func goldenStreamDocs() []StreamDoc {
	docs := []StreamDoc{
		{ID: "chat-1", Platform: "discord", Text: "we need to mass-report his twitter and youtube, spread the word"},
		{ID: "chat-2", Platform: "telegram", Text: "anyone up for ranked tonight, patch notes are out"},
		{ID: "dox-1", Platform: "pastes", Text: "dropping her info now Address: 99 Cedar Lane, phone 555-867-5309, jane.roe@example.com"},
		{ID: "uni-1", Platform: "gab", Text: "İstanbul STRASSE ﬂuent ſtreet Kelvin K"},
		{ID: "junk-1", Platform: "boards", Text: "a\xffb\xfe invalid \xc3( bytes"},
		{ID: "long-1", Platform: "pastes", Text: strings.Repeat("target lives at 12 oak street and posts on twitter dot com every night ", 40)},
	}
	for i := 0; i < 40; i++ {
		docs = append(docs, StreamDoc{
			ID:       fmt.Sprintf("fill-%d", i),
			Platform: "discord",
			Text:     fmt.Sprintf("message %d: report this account before it spreads %d", i, i*i),
		})
	}
	return docs
}

// TestScoreWithMatchesLegacyComposition pins the fast scoring path to
// the legacy tokenizer/hasher composition, including the long-document
// span branch: same text, same rng state, same score bits.
func TestScoreWithMatchesLegacyComposition(t *testing.T) {
	det := testDetector(t)
	for _, doc := range goldenStreamDocs() {
		for name, maxLen := range map[string]int{"dox": det.meta.DoxTextLen, "cth": det.meta.CTHTextLen} {
			m := det.dox
			if name == "cth" {
				m = det.cth
			}
			fastRng := randx.New(7).Split(doc.ID)
			legacyRng := randx.New(7).Split(doc.ID)
			fast := det.scoreWith(m, doc.Text, maxLen, fastRng)
			legacy := m.Score(referenceVectorize(det, doc.Text, maxLen, legacyRng))
			if fast != legacy {
				t.Errorf("%s score for %s: fast %v, legacy %v", name, doc.ID, fast, legacy)
			}
		}
	}
}

// TestScoreBatchWorkerCountInvariance runs the same batch at several
// worker counts and requires bit-identical scores everywhere — the
// determinism contract the pooled scratch must not break.
func TestScoreBatchWorkerCountInvariance(t *testing.T) {
	det := testDetector(t)
	docs := goldenStreamDocs()
	var baseline []resilience.Result[StreamDoc]
	for _, workers := range []int{1, 2, 8} {
		results, _, err := det.ScoreBatch(context.Background(), docs, StreamOptions{
			Workers: workers, Seed: 42, Ordered: true, Annotate: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(docs) {
			t.Fatalf("workers=%d: %d results for %d docs", workers, len(results), len(docs))
		}
		if workers == 1 {
			baseline = results
			continue
		}
		for i, r := range results {
			b := baseline[i]
			if r.Item.CTH != b.Item.CTH || r.Item.Dox != b.Item.Dox {
				t.Errorf("workers=%d doc %s: scores (%v, %v) != 1-worker (%v, %v)",
					workers, r.Item.ID, r.Item.CTH, r.Item.Dox, b.Item.CTH, b.Item.Dox)
			}
		}
	}
	// And the streamed scores match the legacy composition with the
	// stream's own rng derivation.
	base := randx.New(42)
	cthBase := base.Split("score-cth")
	doxBase := base.Split("score-dox")
	for i, r := range baseline {
		cthRng := cthBase.SplitNVal("doc", i)
		doxRng := doxBase.SplitNVal("doc", i)
		wantCTH := det.cth.Score(referenceVectorize(det, docs[i].Text, det.meta.CTHTextLen, &cthRng))
		wantDox := det.dox.Score(referenceVectorize(det, docs[i].Text, det.meta.DoxTextLen, &doxRng))
		if r.Item.CTH != wantCTH || r.Item.Dox != wantDox {
			t.Errorf("doc %s: streamed (%v, %v) != legacy (%v, %v)",
				r.Item.ID, r.Item.CTH, r.Item.Dox, wantCTH, wantDox)
		}
	}
}

// TestScoreStreamSteadyStateAllocs bounds per-document allocations on
// the streaming path. The scoring itself is allocation-free; the small
// remaining budget covers the runner's per-item bookkeeping (result
// envelope, channel send) — far below the ~350 allocations per document
// the legacy path paid.
func TestScoreStreamSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	det := testDetector(t)
	text := "we need to mass-report his twitter and youtube, spread the word"
	rng := randx.New(3)
	det.scoreCTHWith(text, rng) // warm pooled scratch
	if n := testing.AllocsPerRun(200, func() {
		det.scoreCTHWith(text, rng)
	}); n > 0 {
		t.Errorf("scoreCTHWith allocates %v per op, want 0", n)
	}
}
