package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harassrepro/internal/obs"
	"harassrepro/internal/testutil"
)

// allStageNames lists every registered graph node.
func allStageNames() []string {
	return []string{
		StageCorpora, StageBlogs, StageTokenizer, StageHasher,
		StageTaskDox, StageTaskCTH,
		ArtifactCodedCTH, ArtifactDoxPII, ArtifactBoardPosts,
		ArtifactAboveBoardPosts, ArtifactRepeatDox,
	}
}

// TestArtifactGraphParallelAll is the refactor's central claim, checked
// end to end: running every experiment concurrently on the memoized
// graph (a) produces byte-identical output to the pre-refactor
// sequential monolith (the golden fixtures), and (b) computes every
// stage and shared intermediate exactly once, asserted via obs
// counters. Run under -race this also exercises the graph's
// latch-based publication between experiment goroutines.
func TestArtifactGraphParallelAll(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := RunWithOptions(QuickConfig(1), Options{Workers: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	results, err := p.RunExperiments(context.Background(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Fatalf("got %d results, want %d", len(results), len(Experiments()))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden", "seed1", r.ID+".txt"))
		if err != nil {
			t.Fatalf("missing fixture for %s: %v", r.ID, err)
		}
		if r.Output != string(want) {
			t.Errorf("%s: parallel output diverged from sequential golden", r.ID)
		}
	}

	// CollectMetrics consumes the same derived artifacts again (it is
	// the sweep's per-seed summary); still no recomputation.
	_ = p.CollectMetrics()

	snap := reg.Snapshot()
	for _, stage := range allStageNames() {
		if v := snap.CounterValue("graph_stage_computes_total", obs.L("stage", stage)); v != 1 {
			t.Errorf("stage %s computed %v times, want exactly 1", stage, v)
		}
	}
	// The memoization must have been exercised, not vacuous: every
	// derived artifact has at least two consumers across the
	// experiments and CollectMetrics, so each reports cache hits.
	for _, stage := range []string{
		ArtifactCodedCTH, ArtifactDoxPII, ArtifactBoardPosts,
		ArtifactAboveBoardPosts, ArtifactRepeatDox,
	} {
		if v := snap.CounterValue("graph_stage_hits_total", obs.L("stage", stage)); v < 1 {
			t.Errorf("artifact %s: %v cache hits, want >= 1 (shared by several consumers)", stage, v)
		}
	}
}

// TestRunExperimentsIsolatesFailures: one bad experiment must not
// abort the batch — the rest still run and the failure is carried in
// its own result.
func TestRunExperimentsIsolatesFailures(t *testing.T) {
	p := sharedPipeline(t)
	results, err := p.RunExperiments(context.Background(), []string{"table1", "no-such-exp", "table2"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "no-such-exp") {
		t.Errorf("bad experiment error = %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("%s failed alongside bad experiment: %v", results[i].ID, results[i].Err)
		}
		if results[i].Output == "" {
			t.Errorf("%s produced no output", results[i].ID)
		}
	}
	if results[0].ID != "table1" || results[2].ID != "table2" {
		t.Errorf("results out of input order: %q, %q", results[0].ID, results[2].ID)
	}
}

// TestSweepParallelMatchesSequential: the sweep's per-seed metrics and
// rendered report are identical at any worker count, in seed order.
func TestSweepParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("4 pipeline runs; skipped in -short")
	}
	if testutil.RaceEnabled {
		// Seeds are fully independent pipelines (no shared state to
		// race on); TestArtifactGraphParallelAll covers the shared
		// graph under race. Four instrumented runs aren't worth it.
		t.Skip("skipped under -race: seeds share no state")
	}
	base := QuickConfig(0)
	seeds := []uint64{1, 2}
	seq, err := RunSweep(base, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSweepParallel(context.Background(), base, seeds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", par), fmt.Sprintf("%+v", seq); got != want {
		t.Errorf("parallel sweep metrics diverged\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if got, want := RenderSweep(par), RenderSweep(seq); got != want {
		t.Errorf("rendered sweep diverged\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
	}
}
