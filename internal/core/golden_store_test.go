package core

// Store-vs-memory golden equivalence. A pipeline streaming its corpora
// from the segmented corpus store must reproduce the in-memory run's
// outputs byte for byte: same fixtures, every pinned seed, across
// worker counts. This is the contract that makes the store a drop-in
// input path rather than a second pipeline to validate.

import (
	"fmt"
	"path/filepath"
	"testing"

	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
)

// buildGoldenStore writes the store a `corpusgen -store` run would
// produce for the quick config at the given seed: Generate then
// GenerateBlogs (the generator's rng stream order), committed in the
// fixed Table 1 dataset order.
func buildGoldenStore(t *testing.T, seed uint64) string {
	t.Helper()
	cfg := QuickConfig(seed)
	cfg.fillDefaults()
	gen := corpus.NewGenerator(corpus.Config{
		Seed:          cfg.Seed,
		VolumeScale:   cfg.VolumeScale,
		PositiveScale: cfg.PositiveScale,
	})
	corpora := gen.Generate()
	blogs := gen.GenerateBlogs(corpus.DefaultBlogSpecs(cfg.BlogScale))

	dir := filepath.Join(t.TempDir(), "corpus-store")
	s, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := store.WriteCorpora(s, corpora, blogs, 0); err != nil {
		t.Fatal(err)
	}
	return dir
}

// storeWorkerCounts are the scheduling widths the equivalence holds
// under (outputs must not depend on stage parallelism).
var storeWorkerCounts = []int{1, 4, 16}

func TestGoldenStoreStreamedOutputs(t *testing.T) {
	for _, seed := range goldenSeeds() {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := buildGoldenStore(t, seed)
			fixtures := filepath.Join("testdata", "golden", fmt.Sprintf("seed%d", seed))
			for _, workers := range storeWorkerCounts {
				workers := workers
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					p, err := RunWithOptions(QuickConfig(seed), Options{StorePath: dir, Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if p.Gen != nil {
						t.Fatal("store-backed run constructed a generator")
					}
					for _, e := range Experiments() {
						out, err := p.RunExperiment(e.ID)
						if err != nil {
							t.Fatalf("%s: %v", e.ID, err)
						}
						checkGoldenStore(t, filepath.Join(fixtures, e.ID+".txt"), out)
					}
				})
			}
		})
	}
}

// checkGoldenStore compares against an existing fixture; unlike
// checkGolden it never rewrites fixtures (the in-memory run owns them —
// this test asserts the store path matches it, so regenerating from
// the store side would mask a divergence).
func checkGoldenStore(t *testing.T, path string, got string) {
	t.Helper()
	if *updateGolden {
		t.Skip("fixtures are owned by TestGoldenExperimentOutputs -update")
	}
	checkGolden(t, path, got)
}

// TestStoreGenerationInvalidatesMemoKeys pins the cache-coherence
// contract: appending a segment bumps the manifest generation, and
// every graph key must change with it so memoized artifacts from the
// previous store contents cannot be served.
func TestStoreGenerationInvalidatesMemoKeys(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus-store")
	s, err := store.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	day1 := []corpus.Document{{
		ID: "d1", Dataset: corpus.Boards, Platform: corpus.PlatformBoards,
		Text: "day one post",
	}}
	if _, err := s.Append(day1); err != nil {
		t.Fatal(err)
	}

	keyAt := func() string {
		cfg := QuickConfig(1)
		p := &Pipeline{Config: cfg}
		p.Config.fillDefaults()
		gen, err := probeStoreGeneration(dir)
		if err != nil {
			t.Fatal(err)
		}
		p.initGraph(Options{StorePath: dir}, gen)
		return p.Graph().Key(StageTaskCTH)
	}

	k1 := keyAt()
	k1again := keyAt()
	if k1 != k1again {
		t.Fatalf("key unstable without appends: %q vs %q", k1, k1again)
	}
	day2 := []corpus.Document{{
		ID: "d2", Dataset: corpus.Boards, Platform: corpus.PlatformBoards,
		Text: "day two post",
	}}
	if _, err := s.Append(day2); err != nil {
		t.Fatal(err)
	}
	k2 := keyAt()
	if k2 == k1 {
		t.Fatalf("memo key unchanged after append: %q", k2)
	}

	// Store-backed and generate-backed runs must also never share keys.
	p := &Pipeline{Config: QuickConfig(1)}
	p.Config.fillDefaults()
	p.initGraph(Options{}, 0)
	if mem := p.Graph().Key(StageTaskCTH); mem == k1 || mem == k2 {
		t.Fatalf("in-memory key collides with store-backed key: %q", mem)
	}
}
