package core

import (
	"fmt"
	"strings"

	"harassrepro/internal/active"
	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/gender"
	"harassrepro/internal/model"
	"harassrepro/internal/pii"
	"harassrepro/internal/randx"
	"harassrepro/internal/repeatdox"
	"harassrepro/internal/report"
	"harassrepro/internal/stats"
	"harassrepro/internal/taxonomy"
	"harassrepro/internal/threshold"
	"harassrepro/internal/tokenize"
)

// Ablations validates the design decisions the paper reports making:
// the long-document span strategy (§5.2), combined versus per-data-set
// training (§5.4), the chat threshold split (Table 4), and active
// learning versus random sampling (§5.3). Each returns a rendered
// comparison; all are registered as experiments and benchmarked.

// splitExamples builds expert-labelled train/test splits from a
// platform's documents for a task.
func (p *Pipeline) splitExamples(task annotate.Task, plat corpus.Platform, trainN, testN int, rng *randx.Source) (train, test []struct {
	doc   *corpus.Document
	label bool
}) {
	experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("experts"))
	docs := p.docsFor(plat)
	order := shuffledIndices(len(docs), rng.Split("order"))

	// Stratify: positives are scarce; take up to 1/3 positives.
	var pos, neg []*corpus.Document
	for _, i := range order {
		d := docs[i]
		if truth(task, d) {
			pos = append(pos, d)
		} else {
			neg = append(neg, d)
		}
	}
	// Split the scarce positives proportionally between train and test
	// so sparse platforms still have evaluable test sets.
	trainShare := float64(trainN) / float64(trainN+testN)
	posTrain := int(float64(len(pos)) * trainShare)
	take := func(n, posQuota int) []*corpus.Document {
		var out []*corpus.Document
		np := n / 3
		if np > posQuota {
			np = posQuota
		}
		if np > len(pos) {
			np = len(pos)
		}
		out = append(out, pos[:np]...)
		pos = pos[np:]
		nn := n - np
		if nn > len(neg) {
			nn = len(neg)
		}
		out = append(out, neg[:nn]...)
		neg = neg[nn:]
		return out
	}
	trainDocs := take(trainN, posTrain)
	testDocs := take(testN, len(pos))

	label := func(docs []*corpus.Document) []struct {
		doc   *corpus.Document
		label bool
	} {
		items := make([]annotate.Item, len(docs))
		for i, d := range docs {
			items[i] = annotate.Item{ID: d.ID, Truth: truth(task, d)}
		}
		decisions, _, err := experts.Annotate(items)
		out := make([]struct {
			doc   *corpus.Document
			label bool
		}, len(docs))
		for i, d := range docs {
			out[i].doc = d
			if err == nil {
				out[i].label = decisions[i].Label
			} else {
				out[i].label = truth(task, d)
			}
		}
		return out
	}
	return label(trainDocs), label(testDocs)
}

// SpanStrategyAblation reproduces the §5.2 comparison of long-document
// reduction strategies on the doxing task over pastes (the long-form
// data set): random spans without overlap (the paper's choice),
// begin+end spans, overlapping spans, and random-length spans.
func (p *Pipeline) SpanStrategyAblation() (string, error) {
	rng := p.rng.Split("span-ablation")
	train, test := p.splitExamples(annotate.TaskDox, corpus.PlatformPastes, 900, 400, rng)

	// A short span budget makes the reduction strategy matter: pastes
	// run to hundreds of tokens.
	const maxLen = 48
	strategies := []tokenize.SpanStrategy{
		tokenize.SpanRandomNoOverlap, tokenize.SpanBeginEnd,
		tokenize.SpanOverlapping, tokenize.SpanRandomLength,
	}
	t := report.NewTable("", "Strategy", "AUC", "F1 (dox)", "Precision", "Recall")
	type result struct {
		strategy string
		auc      float64
	}
	var results []result
	for _, strat := range strategies {
		vrng := rng.Split("vec-" + strat.String())
		toExamples := func(items []struct {
			doc   *corpus.Document
			label bool
		}) []model.Example {
			out := make([]model.Example, len(items))
			for i, it := range items {
				toks := p.Tokenizer.Tokenize(it.doc.Text)
				spans := tokenize.Spans(toks, maxLen, 2, strat, vrng)
				var merged []string
				for _, s := range spans {
					merged = append(merged, s...)
				}
				out[i] = model.Example{X: p.Hasher.Vectorize(merged), Y: it.label}
			}
			return out
		}
		trainEx := toExamples(train)
		testEx := toExamples(test)
		m, err := model.TrainLogReg(trainEx, model.LogRegConfig{
			Buckets: p.Config.Buckets, Epochs: p.Config.Epochs, Seed: p.Config.Seed ^ 0xab1,
		})
		if err != nil {
			return "", err
		}
		rep := model.Evaluate(m, testEx, 0.5, "Dox", "No Dox")
		t.AddRow(strat.String(), report.F3(rep.AUC), report.F(rep.Positive.F1), report.F(rep.Positive.Precision), report.F(rep.Positive.Recall))
		results = append(results, result{strat.String(), rep.AUC})
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.auc > best.auc {
			best = r
		}
	}
	return t.String() + fmt.Sprintf("Best by AUC: %s (paper chose random-no-overlap)\n", best.strategy), nil
}

// CombinedTrainingAblation reproduces the §5.4 comparison: a CTH
// classifier trained on combined multi-platform data versus classifiers
// trained on each data set individually ("the model had poorer
// performance when training on individual data sets as compared to
// using combined data" — driven by the sparsity of positives).
func (p *Pipeline) CombinedTrainingAblation() (string, error) {
	rng := p.rng.Split("combined-ablation")
	task := annotate.TaskCTH
	plats := taskPlatforms(task)

	type split struct {
		train []model.Example
		test  []model.Example
	}
	splits := map[corpus.Platform]*split{}
	for _, plat := range plats {
		train, test := p.splitExamples(task, plat, 400, 250, rng.Split(string(plat)))
		s := &split{}
		vrng := rng.Split("vec-" + string(plat))
		for _, it := range train {
			s.train = append(s.train, model.Example{X: p.vectorize(it.doc.Text, p.CTH.TextLen, vrng), Y: it.label})
		}
		for _, it := range test {
			s.test = append(s.test, model.Example{X: p.vectorize(it.doc.Text, p.CTH.TextLen, vrng), Y: it.label})
		}
		splits[plat] = s
	}

	// Concatenate in platform order: SGD is order-sensitive, so map
	// iteration here would make the combined model nondeterministic.
	var combined []model.Example
	for _, plat := range plats {
		combined = append(combined, splits[plat].train...)
	}
	cfg := model.LogRegConfig{Buckets: p.Config.Buckets, Epochs: p.Config.Epochs, Seed: p.Config.Seed ^ 0xab2, ClassWeightPositive: 3}
	combinedModel, err := model.TrainLogReg(combined, cfg)
	if err != nil {
		return "", err
	}

	t := report.NewTable("", "Eval platform", "Combined-trained F1", "Individually-trained F1")
	var combBetter, total int
	for _, plat := range plats {
		s := splits[plat]
		indiv, err := model.TrainLogReg(s.train, cfg)
		if err != nil {
			return "", err
		}
		cRep := model.Evaluate(combinedModel, s.test, 0.5, "CTH", "No CTH")
		iRep := model.Evaluate(indiv, s.test, 0.5, "CTH", "No CTH")
		t.AddRow(string(plat), report.F(cRep.Positive.F1), report.F(iRep.Positive.F1))
		total++
		if cRep.Positive.F1 >= iRep.Positive.F1 {
			combBetter++
		}
	}
	return t.String() + fmt.Sprintf("Combined training matches or beats individual on %d/%d platforms (paper: combined better)\n", combBetter, total), nil
}

// ChatSplitAblation reproduces Table 4's ⋄ decision: thresholding the
// chat data set as one unit versus splitting it into Discord and
// Telegram with separate thresholds ("in order to improve performance").
func (p *Pipeline) ChatSplitAblation() (string, error) {
	rng := p.rng.Split("chatsplit-ablation")
	task := annotate.TaskCTH
	run := p.CTH
	experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("experts"))

	score := func(plat corpus.Platform) []threshold.ScoredDoc {
		vrng := rng.Split("vec-" + string(plat))
		docs := p.docsFor(plat)
		out := make([]threshold.ScoredDoc, len(docs))
		for i, d := range docs {
			out[i] = threshold.ScoredDoc{ID: d.ID, Score: run.Model.Score(p.vectorize(d.Text, run.TextLen, vrng)), Truth: truth(task, d)}
		}
		return out
	}
	discord := score(corpus.PlatformDiscord)
	telegram := score(corpus.PlatformTelegram)
	unified := append(append([]threshold.ScoredDoc{}, discord...), telegram...)

	cfg := threshold.Config{Ladder: selectionLadder, TargetPrecision: 0.6, SampleSize: 150, Seed: p.Config.Seed ^ 0xab3}
	selU, err := threshold.Select(unified, experts, cfg)
	if err != nil {
		return "", err
	}
	selD, err := threshold.Select(discord, experts, cfg)
	if err != nil {
		return "", err
	}
	selT, err := threshold.Select(telegram, experts, cfg)
	if err != nil {
		return "", err
	}

	// True positives captured above each selection.
	capture := func(docs []threshold.ScoredDoc, t float64) (tp, above int) {
		for _, d := range docs {
			if d.Score > t {
				above++
				if d.Truth {
					tp++
				}
			}
		}
		return tp, above
	}
	tpU, aboveU := capture(unified, selU.Threshold)
	tpD, aboveD := capture(discord, selD.Threshold)
	tpT, aboveT := capture(telegram, selT.Threshold)

	t := report.NewTable("", "Regime", "Threshold(s)", "Above", "True positives", "Precision")
	t.AddRow("Unified chat", report.F3(selU.Threshold), fmt.Sprintf("%d", aboveU), fmt.Sprintf("%d", tpU), report.F(float64(tpU)/float64(max(1, aboveU))))
	t.AddRow("Split (Discord/Telegram)", report.F3(selD.Threshold)+" / "+report.F3(selT.Threshold),
		fmt.Sprintf("%d", aboveD+aboveT), fmt.Sprintf("%d", tpD+tpT),
		report.F(float64(tpD+tpT)/float64(max(1, aboveD+aboveT))))
	return t.String() + "Paper: separate per-platform thresholds improved performance (Table 4's split chat rows)\n", nil
}

// ActiveLearningAblation compares the §5.3 stratified active-learning
// loop against uncertainty sampling and uniform random annotation at the
// same labelling budget.
func (p *Pipeline) ActiveLearningAblation() (string, error) {
	rng := p.rng.Split("al-ablation")
	task := annotate.TaskCTH
	platDocs := map[corpus.Platform][]*corpus.Document{}
	for _, plat := range taskPlatforms(task) {
		platDocs[plat] = p.docsFor(plat)
	}
	pool, _ := p.buildPool(task, platDocs, p.CTH.TextLen, rng.Split("pool"))
	seed, _, err := p.seedAnnotations(task, platDocs, rng.Split("seed"))
	if err != nil {
		return "", err
	}
	seedEx := seed[p.CTH.TextLen]

	auc := func(m *model.LogReg) float64 {
		scores := make([]float64, len(pool))
		truths := make([]bool, len(pool))
		for i := range pool {
			scores[i] = m.Score(pool[i].X)
			truths[i] = pool[i].Truth
		}
		return model.AUCROC(scores, truths)
	}

	t := report.NewTable("", "Sampling", "Annotations", "Positives found", "Final AUC")
	for _, strat := range []active.Strategy{active.StrategyStratified, active.StrategyUncertainty, active.StrategyRandom} {
		crowd := annotate.NewPool(annotate.CrowdConfig(task), rng.Split("crowd-"+strat.String()))
		res, err := active.Run(seedEx, pool, crowd, active.Config{
			Strategy: strat,
			PerBin:   p.Config.ActivePerBin, Iterations: 2,
			Model: model.LogRegConfig{Buckets: p.Config.Buckets, Epochs: p.Config.Epochs, Seed: p.Config.Seed ^ 0xab4, ClassWeightPositive: 3},
			Seed:  p.Config.Seed ^ 0xab5,
		})
		if err != nil {
			return "", err
		}
		pos := 0
		for _, ex := range res.Labelled[len(seedEx):] {
			if ex.Y {
				pos++
			}
		}
		t.AddRow(strat.String(), fmt.Sprintf("%d", len(res.Labelled)-len(seedEx)),
			fmt.Sprintf("%d", pos), report.F3(auc(res.Model)))
	}
	return t.String() + "Stratified sampling (the paper's §5.3 loop) surfaces more positives per annotation than random; uncertainty sampling concentrates near the boundary.\n", nil
}

// BaselineClassifierAblation compares the main logistic-regression filter
// with the multinomial naive Bayes baseline on both tasks.
func (p *Pipeline) BaselineClassifierAblation() (string, error) {
	rng := p.rng.Split("nb-ablation")
	t := report.NewTable("", "Task", "Classifier", "AUC", "F1 (positive)")
	for _, task := range []annotate.Task{annotate.TaskDox, annotate.TaskCTH} {
		run := p.Dox
		srcPlat := corpus.PlatformPastes
		if task == annotate.TaskCTH {
			run = p.CTH
			srcPlat = corpus.PlatformBoards
		}
		train, test := p.splitExamples(task, srcPlat, 800, 400, rng.Split(string(task)))
		vrng := rng.Split("vec-" + string(task))
		toEx := func(items []struct {
			doc   *corpus.Document
			label bool
		}) []model.Example {
			out := make([]model.Example, len(items))
			for i, it := range items {
				out[i] = model.Example{X: p.vectorize(it.doc.Text, run.TextLen, vrng), Y: it.label}
			}
			return out
		}
		trainEx, testEx := toEx(train), toEx(test)
		lr, err := model.TrainLogReg(trainEx, model.LogRegConfig{Buckets: p.Config.Buckets, Epochs: p.Config.Epochs, Seed: p.Config.Seed ^ 0xab6})
		if err != nil {
			return "", err
		}
		nb, err := model.TrainNaiveBayes(trainEx, p.Config.Buckets)
		if err != nil {
			return "", err
		}
		lrRep := model.Evaluate(lr, testEx, 0.5, "pos", "neg")
		nbRep := model.Evaluate(nb, testEx, 0.5, "pos", "neg")
		t.AddRow(string(task), "logistic regression", report.F3(lrRep.AUC), report.F(lrRep.Positive.F1))
		t.AddRow(string(task), "naive Bayes", report.F3(nbRep.AUC), report.F(nbRep.Positive.F1))
	}
	return t.String(), nil
}

// CrawlCompletenessAblation probes the §4 caveat that the paste crawls
// "are assumed to be incomplete" (old pastes are only reachable by
// random ID): the §7.3 repeated-dox measurement is recomputed under
// simulated crawl coverage levels, quantifying how much of the
// repeated-dox structure an incomplete crawl destroys (both halves of a
// repeat pair must be crawled for the pair to be linkable).
func (p *Pipeline) CrawlCompletenessAblation() (string, error) {
	ex := pii.NewExtractor()
	full := p.Dox.Results[corpus.PlatformPastes]
	if full == nil || len(full.Above) == 0 {
		return "", fmt.Errorf("no pastes dox results")
	}
	t := report.NewTable("", "Crawl coverage", "Doxes crawled", "Linkable", "Repeated", "Repeated share")
	for _, coverage := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		rng := p.rng.Split(fmt.Sprintf("crawl-%.1f", coverage))
		var records []repeatdox.Record
		crawled := 0
		for _, d := range full.Above {
			if !rng.Bool(coverage) {
				continue
			}
			crawled++
			rec := repeatdox.RecordFromText(d.ID, d.Dataset, d.Text, ex)
			if len(rec.Handles) > 0 {
				records = append(records, rec)
			}
		}
		_, st := repeatdox.Link(records)
		t.AddRow(fmt.Sprintf("%.0f%%", 100*coverage), fmt.Sprintf("%d", crawled),
			fmt.Sprintf("%d", st.TotalDoxes), fmt.Sprintf("%d", st.Repeated),
			report.F(100*st.RepeatedShare)+"%")
	}
	return t.String() + "Repeat pairs need both posts crawled: measured repeat share falls roughly linearly with coverage, so the paper's 20.1% is a lower bound on the true rate.\n", nil
}

// ScoreDistributionReport renders the classifier score histograms over a
// platform's full corpus — the distribution the 10-bin active-learning
// strata and the §5.5 threshold ladder operate on.
func (p *Pipeline) ScoreDistributionReport() (string, error) {
	rng := p.rng.Split("scoredist")
	var b strings.Builder
	for _, spec := range []struct {
		task annotate.Task
		run  *TaskRun
		plat corpus.Platform
	}{
		{annotate.TaskDox, p.Dox, corpus.PlatformPastes},
		{annotate.TaskCTH, p.CTH, corpus.PlatformBoards},
	} {
		docs := p.docsFor(spec.plat)
		// Sample for speed at large scales.
		order := shuffledIndices(len(docs), rng.Split("s-"+string(spec.task)))
		if len(order) > 4000 {
			order = order[:4000]
		}
		var posScores, negScores []float64
		vrng := rng.Split("vec-" + string(spec.task))
		for _, i := range order {
			d := docs[i]
			s := spec.run.Model.Score(p.vectorize(d.Text, spec.run.TextLen, vrng))
			if truth(spec.task, d) {
				posScores = append(posScores, s)
			} else {
				negScores = append(negScores, s)
			}
		}
		fmt.Fprintf(&b, "%s scores on %s (sample of %d):\n", spec.task, spec.plat, len(order))
		b.WriteString(report.RenderHistogram("  true positives", posScores, 10, 40))
		b.WriteString(report.RenderHistogram("  true negatives", negScores, 10, 40))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// CalibrationExperiment measures how well calibrated both filtering
// classifiers' probabilities are. The §5.5 threshold-selection procedure
// treats scores as probabilities; this report (reliability bins, ECE,
// Brier score) quantifies the assumption.
func (p *Pipeline) CalibrationExperiment() (string, error) {
	rng := p.rng.Split("calibration")
	t := report.NewTable("", "Task", "ECE", "Brier", "Predictions in top bin", "Top-bin positive rate")
	for _, task := range []annotate.Task{annotate.TaskDox, annotate.TaskCTH} {
		run := p.Dox
		srcPlat := corpus.PlatformPastes
		if task == annotate.TaskCTH {
			run = p.CTH
			srcPlat = corpus.PlatformBoards
		}
		_, test := p.splitExamples(task, srcPlat, 200, 600, rng.Split(string(task)))
		vrng := rng.Split("vec-" + string(task))
		examples := make([]model.Example, len(test))
		for i, it := range test {
			examples[i] = model.Example{X: p.vectorize(it.doc.Text, run.TextLen, vrng), Y: it.label}
		}
		rep := model.Calibrate(run.Model, examples, 10)
		top := rep.Bins[len(rep.Bins)-1]
		t.AddRow(string(task), report.F3(rep.ECE), report.F3(rep.Brier),
			fmt.Sprintf("%d", top.Count), report.F(top.FractionPositive))
	}
	return t.String() + "Scores feed the §5.5 threshold search, which assumes probability-like behaviour.\n", nil
}

// PIICoOccurrenceReport reproduces the §7.1 analysis of which PII types
// co-occur within doxes ("street addresses, phone numbers and email
// addresses co-occurred with all other types of PII more than 35% of the
// time"; Facebook predicts richer contact PII than other OSN profiles).
func (p *Pipeline) PIICoOccurrenceReport() (string, error) {
	ex := pii.NewExtractor()
	var perDox []map[pii.Type]bool
	for _, d := range p.Dox.AllPositives() {
		set := map[pii.Type]bool{}
		for _, ty := range ex.Types(d.Text) {
			set[ty] = true
		}
		if len(set) > 0 {
			perDox = append(perDox, set)
		}
	}
	counts := map[pii.Type]int{}
	joint := map[[2]pii.Type]int{}
	for _, set := range perDox {
		for a := range set {
			counts[a]++
			for b := range set {
				if a != b {
					joint[[2]pii.Type{a, b}]++
				}
			}
		}
	}
	cond := func(a, b pii.Type) float64 {
		if counts[a] == 0 {
			return 0
		}
		return float64(joint[[2]pii.Type{a, b}]) / float64(counts[a])
	}
	t := report.NewTable("P(col | row) over annotated doxes", append([]string{"PII"}, typeNames()...)...)
	for _, a := range pii.AllTypes() {
		row := []string{string(a)}
		for _, b := range pii.AllTypes() {
			if a == b {
				row = append(row, "-")
			} else {
				row = append(row, report.F(cond(a, b)))
			}
		}
		t.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nFacebook -> email %.0f%%, phone %.0f%%, address %.0f%% (paper: 39%%, 25%%, 24%%)\n",
		100*cond(pii.Facebook, pii.Email), 100*cond(pii.Facebook, pii.Phone), 100*cond(pii.Facebook, pii.Address))
	fmt.Fprintf(&b, "YouTube -> email %.0f%%; Twitter -> email %.0f%% (paper: <15%% and <20%%)\n",
		100*cond(pii.YouTube, pii.Email), 100*cond(pii.Twitter, pii.Email))
	return b.String(), nil
}

func typeNames() []string {
	var out []string
	for _, t := range pii.AllTypes() {
		out = append(out, string(t))
	}
	return out
}

// ChiSquareReport reproduces the §6.2 significance testing: one-way
// chi-square tests comparing the reporting-subcategory distributions
// across data sets, corrected with Benjamini-Hochberg ("nearly all
// differences were statistically significant (p < 0.01)"; the only
// non-significant comparison was misc. reporting between Chat and
// Boards).
func (p *Pipeline) ChiSquareReport() (string, error) {
	coded := p.codedCTH()
	cols := []string{"Boards", "Chat", "Gab"}
	dists := map[string]taxonomy.Distribution{}
	for _, c := range cols {
		dists[c] = taxonomy.NewDistribution(coded[c])
	}
	subs := []taxonomy.Sub{taxonomy.SubFalseReporting, taxonomy.SubMassFlagging, taxonomy.SubReportingMisc}

	type row struct {
		sub   taxonomy.Sub
		pair  string
		chi   float64
		p     float64
		valid bool
	}
	var rows []row
	var pvals []float64
	pairs := [][2]string{{"Boards", "Chat"}, {"Boards", "Gab"}, {"Chat", "Gab"}}
	for _, sub := range subs {
		for _, pair := range pairs {
			a, b := dists[pair[0]], dists[pair[1]]
			// Observed counts scaled to shares of each data set's total,
			// tested for equal proportions via a 2x2 contingency table:
			// [has sub, lacks sub] x [data set].
			table := [][]float64{
				{float64(a.SubHits[sub]), float64(a.Total - a.SubHits[sub])},
				{float64(b.SubHits[sub]), float64(b.Total - b.SubHits[sub])},
			}
			res, err := stats.ChiSquareIndependence(table)
			r := row{sub: sub, pair: pair[0] + " vs " + pair[1]}
			if err == nil {
				r.chi, r.p, r.valid = res.Statistic, res.P, true
				pvals = append(pvals, res.P)
			}
			rows = append(rows, r)
		}
	}
	bh := stats.BenjaminiHochberg(pvals, 0.1)
	t := report.NewTable("", "Reporting subcategory", "Comparison", "chi2", "raw p", "significant (BH)")
	bi := 0
	for _, r := range rows {
		if !r.valid {
			t.AddRow(string(r.sub), r.pair, "-", "-", "-")
			continue
		}
		t.AddRow(string(r.sub), r.pair, report.F(r.chi), report.F3(r.p), fmt.Sprintf("%v", bh[bi].Rejected))
		bi++
	}
	return t.String() + "Paper: nearly all comparisons significant at p < 0.01; misc. reporting Boards-vs-Chat was not.\n", nil
}

// GenderResponseReport reproduces §6.3's gender comparison: response
// sizes to calls to harassment compared across inferred target genders
// and against the baseline; the paper found no statistically significant
// difference.
func (p *Pipeline) GenderResponseReport() (string, error) {
	posts := p.boardPosts()
	base := p.baselineSizes(posts)

	// Attach inferred gender to board CTH posts.
	genderOf := map[string]gender.Gender{}
	for _, d := range p.CTH.Results[corpus.PlatformBoards].Positives {
		genderOf[d.ThreadID+fmt.Sprint(d.PosInThread)] = gender.Infer(d.Text)
	}
	sizesByGender := map[gender.Gender][]float64{}
	for i := range posts {
		q := &posts[i]
		if !q.IsCTH {
			continue
		}
		g, ok := genderOf[q.ThreadID+fmt.Sprint(q.Pos)]
		if !ok {
			continue
		}
		sizesByGender[g] = append(sizesByGender[g], float64(q.ThreadSize))
	}

	t := report.NewTable("", "Comparison", "N1", "N2", "t", "p", "significant at 0.01")
	addTest := func(name string, a, b []float64) {
		res, err := stats.WelchTTest(stats.Log(a), stats.Log(b))
		if err != nil {
			t.AddRow(name, fmt.Sprintf("%d", len(a)), fmt.Sprintf("%d", len(b)), "-", "-", "insufficient")
			return
		}
		t.AddRow(name, fmt.Sprintf("%d", len(a)), fmt.Sprintf("%d", len(b)),
			report.F3(res.T), report.F3(res.P), fmt.Sprintf("%v", res.P < 0.01))
	}
	addTest("male vs female", sizesByGender[gender.Male], sizesByGender[gender.Female])
	addTest("male vs baseline", sizesByGender[gender.Male], base)
	addTest("female vs baseline", sizesByGender[gender.Female], base)
	addTest("unknown vs baseline", sizesByGender[gender.Unknown], base)
	return t.String() + "Paper: no statistically significant difference between genders or against the baseline.\n", nil
}
