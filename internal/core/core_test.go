package core

import (
	"strings"
	"sync"
	"testing"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/taxonomy"
)

var (
	pipeOnce sync.Once
	pipe     *Pipeline
	pipeErr  error
)

// sharedPipeline runs the quick-scale pipeline once for all tests.
func sharedPipeline(t testing.TB) *Pipeline {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = Run(QuickConfig(1))
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe
}

func TestPipelineRuns(t *testing.T) {
	p := sharedPipeline(t)
	if p.Dox == nil || p.CTH == nil {
		t.Fatal("task runs missing")
	}
	if p.Dox.Model == nil || p.CTH.Model == nil {
		t.Fatal("models missing")
	}
}

func TestClassifierQuality(t *testing.T) {
	p := sharedPipeline(t)
	// Both filters must separate well on held-out data; the dox task is
	// the easier one (Table 3's gap).
	if p.Dox.Eval.AUC < 0.9 {
		t.Errorf("dox AUC = %.3f", p.Dox.Eval.AUC)
	}
	if p.CTH.Eval.AUC < 0.85 {
		t.Errorf("cth AUC = %.3f", p.CTH.Eval.AUC)
	}
	if p.Dox.Eval.Positive.F1 < 0.7 || p.CTH.Eval.Positive.F1 < 0.6 {
		t.Errorf("positive F1: dox %.3f cth %.3f", p.Dox.Eval.Positive.F1, p.CTH.Eval.Positive.F1)
	}
}

func TestSpanLengthSelection(t *testing.T) {
	p := sharedPipeline(t)
	// The sweep covers both candidate lengths for each task.
	if len(p.Dox.EvalByLen) != 2 || len(p.CTH.EvalByLen) != 2 {
		t.Fatalf("sweep sizes: dox %d cth %d", len(p.Dox.EvalByLen), len(p.CTH.EvalByLen))
	}
	// Chosen lengths are among the candidates.
	if p.Dox.TextLen != 128 && p.Dox.TextLen != 512 {
		t.Errorf("dox text length = %d", p.Dox.TextLen)
	}
}

func TestTable4Shape(t *testing.T) {
	p := sharedPipeline(t)
	// Every task platform has a row with confirmed positives.
	for _, plat := range taskPlatforms(annotate.TaskDox) {
		r := p.Dox.Results[plat]
		if r == nil {
			t.Fatalf("no dox result for %s", plat)
		}
		if r.TruePositives == 0 {
			t.Errorf("dox %s: no true positives", plat)
		}
		if r.Annotated > r.AboveThreshold {
			t.Errorf("dox %s: annotated %d > above %d", plat, r.Annotated, r.AboveThreshold)
		}
		if len(r.Positives) != r.TruePositives {
			t.Errorf("dox %s: positives slice mismatch", plat)
		}
	}
	// The CTH task excludes pastes.
	if _, ok := p.CTH.Results[corpus.PlatformPastes]; ok {
		t.Error("CTH has a pastes row")
	}
	// Pastes dominates the dox above-threshold volume (Table 4).
	if p.Dox.Results[corpus.PlatformPastes].AboveThreshold <= p.Dox.Results[corpus.PlatformGab].AboveThreshold {
		t.Error("pastes should dominate dox volume")
	}
}

func TestHeadlineReportingShare(t *testing.T) {
	p := sharedPipeline(t)
	// The paper's headline: over 50% of CTH include reporting.
	cat := taxonomy.NewCategorizer()
	var labels []taxonomy.Label
	for _, d := range p.CTH.AllPositives() {
		l := cat.Categorize(d.Text)
		if l.Empty() {
			l = taxonomy.NewLabel(taxonomy.SubGeneric)
		}
		labels = append(labels, l)
	}
	dist := taxonomy.NewDistribution(labels)
	share := dist.ParentShare(taxonomy.Reporting)
	if share < 0.40 {
		t.Errorf("reporting share = %.3f, want > 0.40 (paper 51%%)", share)
	}
	// Mass flagging is the most prevalent subcategory overall.
	best := taxonomy.SubMassFlagging
	for _, s := range taxonomy.Subs() {
		if dist.SubHits[s] > dist.SubHits[best] {
			best = s
		}
	}
	if best != taxonomy.SubMassFlagging && best != taxonomy.SubFalseReporting && best != taxonomy.SubReportingMisc && best != taxonomy.SubDoxing {
		t.Errorf("most prevalent subcategory = %s", best)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	p := sharedPipeline(t)
	for _, e := range Experiments() {
		out, err := e.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if strings.TrimSpace(out) == "" {
			t.Errorf("%s produced empty output", e.ID)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	p := sharedPipeline(t)
	if _, err := p.RunExperiment("nope"); err == nil {
		t.Fatal("unknown experiment should error")
	}
	out, err := p.RunExperiment("table7")
	if err != nil || !strings.Contains(out, "Harm Risk") {
		t.Errorf("table7 = %q, %v", out, err)
	}
}

func TestScoreText(t *testing.T) {
	p := sharedPipeline(t)
	doxText := "DOX: John Target\nAddress: 123 Maple Street, Fairview, OH, 44120\nPhone: (212) 555-0142\nEmail: j@t.example"
	benign := "anyone up for ranked tonight, patch notes are out"
	if p.ScoreText(annotate.TaskDox, doxText) <= p.ScoreText(annotate.TaskDox, benign) {
		t.Error("dox text should outscore benign text")
	}
	cthText := "we need to mass-report her twitter and youtube, spread the word"
	if p.ScoreText(annotate.TaskCTH, cthText) <= p.ScoreText(annotate.TaskCTH, benign) {
		t.Error("CTH text should outscore benign text")
	}
}

func TestOverlapShapeMatchesPaper(t *testing.T) {
	p := sharedPipeline(t)
	out, err := p.OverlapReport()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "paper 8.53%") {
		t.Errorf("overlap report missing context:\n%s", out)
	}
}

func TestAgreementBands(t *testing.T) {
	p := sharedPipeline(t)
	// CTH annotation must be the harder task (lower chance-corrected
	// agreement), the paper's core §5.3 observation. Raw disagreement is
	// prevalence-confounded at small scales (the quick-scale dox pool is
	// positive-heavy), so only kappa carries the ordering claim here.
	if p.CTH.CrowdStats.Kappa >= p.Dox.CrowdStats.Kappa {
		t.Errorf("cth kappa %.3f >= dox kappa %.3f", p.CTH.CrowdStats.Kappa, p.Dox.CrowdStats.Kappa)
	}
	if p.CTH.CrowdStats.DisagreementRate <= 0 || p.Dox.CrowdStats.DisagreementRate <= 0 {
		t.Error("disagreement rates should be non-zero for noisy crowd pools")
	}
}

func TestRepeatedDoxStats(t *testing.T) {
	p := sharedPipeline(t)
	st := p.RepeatedDoxStats()
	if st.TotalDoxes == 0 {
		t.Fatal("no linkable doxes")
	}
	if st.Repeated == 0 {
		t.Error("no repeated doxes")
	}
	if st.SameDatasetShare < 0.8 {
		t.Errorf("same-dataset share = %.3f", st.SameDatasetShare)
	}
}
