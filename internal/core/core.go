// Package core orchestrates the paper's two filtering pipelines
// (Figure 1) end to end over the generated corpora: seed annotation,
// classifier training with active learning, full-corpus prediction,
// per-platform threshold selection, and expert annotation of the
// above-threshold sets. The annotated outputs feed every downstream
// analysis; the experiment registry (experiments.go) regenerates each of
// the paper's tables and figures from them.
package core

import (
	"context"
	"errors"
	"sort"
	"sync"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/features"
	"harassrepro/internal/graph"
	"harassrepro/internal/model"
	"harassrepro/internal/randx"
	"harassrepro/internal/tokenize"
)

// Config controls a full pipeline run.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// VolumeScale / PositiveScale are passed to the corpus generator.
	VolumeScale   int
	PositiveScale int
	// BlogScale divides blog post volumes (The Torch stays full-scale).
	BlogScale int
	// Buckets is the hashed feature space size.
	Buckets uint32
	// Epochs for classifier training.
	Epochs int
	// DoxTextLen / CTHTextLen are the span lengths (in tokens) for the
	// two classifiers (the paper's best: 512 for doxing, 128 for CTH).
	DoxTextLen int
	CTHTextLen int
	// VocabSize for WordPiece training.
	VocabSize int
	// ActivePerBin is the per-stratum sample size for active learning.
	ActivePerBin int
	// AnnotationCap bounds per-platform expert annotation of
	// above-threshold documents (the paper annotated up to ~3,300 per
	// cell; scaled down by default).
	AnnotationCap int
}

func (c *Config) fillDefaults() {
	if c.VolumeScale <= 0 {
		c.VolumeScale = 10_000
	}
	if c.PositiveScale <= 0 {
		c.PositiveScale = 10
	}
	if c.BlogScale <= 0 {
		c.BlogScale = 10
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 17
	}
	if c.Epochs <= 0 {
		c.Epochs = 6
	}
	if c.DoxTextLen <= 0 {
		c.DoxTextLen = 512
	}
	if c.CTHTextLen <= 0 {
		c.CTHTextLen = 128
	}
	if c.VocabSize <= 0 {
		c.VocabSize = 3000
	}
	if c.ActivePerBin <= 0 {
		c.ActivePerBin = 40
	}
	if c.AnnotationCap <= 0 {
		c.AnnotationCap = 400
	}
}

// DefaultConfig returns the default reproduction configuration
// (VolumeScale 1:10,000, PositiveScale 1:10).
func DefaultConfig(seed uint64) Config {
	c := Config{Seed: seed}
	c.fillDefaults()
	return c
}

// QuickConfig returns a smaller configuration for tests and fast runs.
func QuickConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		VolumeScale:   40_000,
		PositiveScale: 20,
		BlogScale:     20,
		Buckets:       1 << 16,
		Epochs:        4,
		ActivePerBin:  20,
		AnnotationCap: 250,
	}
}

// PlatformResult is one row of Table 4.
type PlatformResult struct {
	Platform       corpus.Platform
	Threshold      float64
	AboveThreshold int
	// AnnotatedAll reports whether every above-threshold document was
	// annotated (Table 4's * rows).
	AnnotatedAll  bool
	Annotated     int
	TruePositives int
	// Positives are the expert-confirmed positive documents.
	Positives []*corpus.Document
	// Above holds every document scoring above the selected threshold
	// (the "complete predicted set" the paper uses for the repeated-dox
	// analysis, §7.3).
	Above []*corpus.Document
}

// TaskRun is the outcome of one task's pipeline.
type TaskRun struct {
	Task  annotate.Task
	Model *model.LogReg
	// TextLen is the span length chosen by hyperparameter optimisation.
	TextLen int
	// Eval is the Table 3-style held-out evaluation at the chosen
	// length; EvalByLen holds the sweep.
	Eval      model.Report
	EvalByLen map[int]model.Report
	// Seeded/Labelled track training-set growth; Table2 counts per
	// data set.
	SeedSize     int
	LabelledSize int
	Table2       map[corpus.Dataset]struct{ Pos, Neg int }
	// CrowdStats are the crowd annotation agreement statistics.
	CrowdStats annotate.Stats
	// SpotCheck is the §5.3 quality pass over delivered crowd labels.
	SpotCheck annotate.SpotCheckResult
	// Results holds the Table 4 rows, keyed by platform.
	Results map[corpus.Platform]*PlatformResult
}

// TotalTruePositives sums confirmed positives across platforms.
func (t *TaskRun) TotalTruePositives() int {
	n := 0
	for _, r := range t.Results {
		n += r.TruePositives
	}
	return n
}

// AllPositives returns every confirmed positive document, ordered by
// platform then document ID.
func (t *TaskRun) AllPositives() []*corpus.Document {
	var out []*corpus.Document
	var plats []string
	for p := range t.Results {
		plats = append(plats, string(p))
	}
	sort.Strings(plats)
	for _, p := range plats {
		out = append(out, t.Results[corpus.Platform(p)].Positives...)
	}
	return out
}

// Pipeline is a completed end-to-end run.
type Pipeline struct {
	Config  Config
	Gen     *corpus.Generator
	Corpora map[corpus.Dataset]*corpus.Corpus
	Blogs   *corpus.Corpus

	Tokenizer *tokenize.Tokenizer
	Hasher    *features.Hasher

	Dox *TaskRun
	CTH *TaskRun

	rng *randx.Source
	// scorers pools tokenize/featurize scratch for vectorize; safe for
	// concurrent use once Tokenizer and Hasher are set.
	scorers sync.Pool
	// g is the run's memoized artifact graph (artifacts.go); opts are
	// the scheduling options the run was started with.
	g    *graph.Graph
	opts Options
}

// Run executes the full reproduction pipeline with default options.
func Run(cfg Config) (*Pipeline, error) {
	return RunWithOptions(cfg, Options{})
}

// RunWithOptions executes the full reproduction pipeline on the
// artifact graph: every stage is computed exactly once, independent
// stages are scheduled concurrently on a bounded pool, and outputs are
// byte-identical to the sequential monolith for a given seed/config
// (each stage owns a pure rng split keyed by its name).
func RunWithOptions(cfg Config, opts Options) (*Pipeline, error) {
	cfg.fillDefaults()
	p := &Pipeline{
		Config: cfg,
		rng:    randx.New(cfg.Seed).Split("core"),
		opts:   opts,
	}
	var storeGen uint64
	if opts.StorePath != "" {
		var err error
		if storeGen, err = probeStoreGeneration(opts.StorePath); err != nil {
			return nil, err
		}
	}
	p.initGraph(opts, storeGen)

	// Materialize the run's terminal stages; the graph pulls in their
	// dependencies (corpora, tokenizer, hasher) exactly once each.
	if err := p.g.Prefetch(context.Background(), StageBlogs, StageTaskDox, StageTaskCTH); err != nil {
		var ge *graph.Errors
		if errors.As(err, &ge) {
			// Preserve the monolith's error shape: report the first
			// failing stage's wrapped error in a stable order.
			for _, name := range []string{StageCorpora, StageBlogs, StageTokenizer, StageHasher, StageTaskDox, StageTaskCTH} {
				if ferr, ok := ge.Failed[name]; ok {
					return nil, ferr
				}
			}
		}
		return nil, err
	}
	return p, nil
}

// trainTokenizer learns the WordPiece vocabulary from a sample of all
// corpora ("pre-training" in the paper's transformer stack; here the
// sub-word vocabulary is the transferable artifact).
func (p *Pipeline) trainTokenizer() {
	rng := p.rng.Split("vocab")
	var sample []string
	for _, ds := range corpus.Datasets() {
		c, ok := p.Corpora[ds]
		if !ok {
			continue
		}
		n := 800
		if n > c.Len() {
			n = c.Len()
		}
		for i := 0; i < n; i++ {
			sample = append(sample, c.Docs[rng.Intn(c.Len())].Text)
		}
	}
	vocab := tokenize.Train(sample, tokenize.TrainerConfig{VocabSize: p.Config.VocabSize})
	p.Tokenizer = tokenize.NewTokenizer(vocab)
}

// vectorize converts document text to the model input vector at the
// given span length: tokens are reduced with the paper's
// random-no-overlap strategy and the spans' features are pooled. It
// runs on pooled scratch (bit-identical to the legacy tokenizer/hasher
// composition — see fastpath_test.go) and returns an owned vector,
// since callers store vectors in training examples that outlive the
// scratch.
func (p *Pipeline) vectorize(text string, maxLen int, rng *randx.Source) features.Vector {
	sc, _ := p.scorers.Get().(*scorer)
	if sc == nil {
		sc = &scorer{sess: p.Tokenizer.NewSession(), feat: p.Hasher.NewFeaturizer()}
	}
	v := sc.featurize(sc.sess.Tokenize(text), maxLen, rng)
	out := features.Vector{
		Indices: append([]uint32(nil), v.Indices...),
		Values:  append([]float64(nil), v.Values...),
	}
	p.scorers.Put(sc)
	return out
}

// taskPlatforms returns the platforms a task covers: the CTH task
// excludes pastes (Table 2).
func taskPlatforms(task annotate.Task) []corpus.Platform {
	if task == annotate.TaskCTH {
		return []corpus.Platform{corpus.PlatformBoards, corpus.PlatformDiscord, corpus.PlatformTelegram, corpus.PlatformGab}
	}
	return []corpus.Platform{corpus.PlatformBoards, corpus.PlatformDiscord, corpus.PlatformTelegram, corpus.PlatformGab, corpus.PlatformPastes}
}

// truth returns the ground-truth label of a document for a task.
func truth(task annotate.Task, d *corpus.Document) bool {
	if task == annotate.TaskCTH {
		return d.Truth.IsCTH
	}
	return d.Truth.IsDox
}

// docsFor returns all documents on the given platform.
func (p *Pipeline) docsFor(plat corpus.Platform) []*corpus.Document {
	c := p.Corpora[plat.Dataset()]
	if c == nil {
		return nil
	}
	return c.Filter(func(d *corpus.Document) bool { return d.Platform == plat })
}

// ScoreText scores arbitrary text with a task's trained classifier,
// the surface the detection CLI and examples build on.
func (p *Pipeline) ScoreText(task annotate.Task, text string) float64 {
	run := p.Dox
	maxLen := p.Dox.TextLen
	if task == annotate.TaskCTH {
		run = p.CTH
		maxLen = p.CTH.TextLen
	}
	rng := p.rng.Split("score")
	return run.Model.Score(p.vectorize(text, maxLen, rng))
}

// selectionLadder returns the threshold ladder used in Table 4's search.
var selectionLadder = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.935, 0.96, 0.98}
