package core

// The pipeline's artifact graph. Figure 1's steps and the analyses
// layered on them form a DAG of expensive intermediates; this file
// names each one as a graph node with declared dependencies so a run
// computes every artifact exactly once, schedules independent stages
// concurrently, and exposes cache/latency metrics per stage. Every
// node derives its randomness from a pure randx split keyed by its
// stage name, which is what makes memoization and concurrent
// scheduling byte-invisible in the outputs (pinned by golden_test.go).

import (
	"context"
	"fmt"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/features"
	"harassrepro/internal/graph"
	"harassrepro/internal/obs"
	"harassrepro/internal/pii"
	"harassrepro/internal/repeatdox"
	"harassrepro/internal/resilience"
	"harassrepro/internal/taxonomy"
	"harassrepro/internal/threads"
)

// Options tune how a pipeline run is scheduled and observed; zero
// values reproduce Run's defaults. Outputs are identical at every
// setting — only wall time and instrumentation change.
type Options struct {
	// Workers bounds the worker pool for stage and experiment
	// scheduling. 0 means GOMAXPROCS.
	Workers int
	// Metrics, if set, receives per-stage graph counters/latency
	// histograms plus the scheduling runner's own metrics.
	Metrics *obs.Registry
	// NoMemo recomputes derived artifacts on every use (the pre-graph
	// monolith's behavior), for before/after benchmarking.
	NoMemo bool
	// StorePath, if set, streams the corpora and blogs from the
	// segmented corpus store at that directory (built by corpusgen
	// -store) instead of generating them from the seed. The store's
	// manifest generation is folded into the graph fingerprint, so
	// memoized artifacts invalidate when segments are appended. Outputs
	// are byte-identical to the in-memory run for a store written from
	// the same seed and scales (pinned by golden_store_test.go).
	StorePath string
}

// Pipeline stage and artifact node names.
const (
	StageCorpora   = "corpora"
	StageBlogs     = "blogs"
	StageTokenizer = "tokenizer"
	StageHasher    = "hasher"
	StageTaskDox   = "task-dox"
	StageTaskCTH   = "task-cth"

	ArtifactCodedCTH        = "coded-cth"
	ArtifactDoxPII          = "dox-pii"
	ArtifactBoardPosts      = "board-posts"
	ArtifactAboveBoardPosts = "above-board-posts"
	ArtifactRepeatDox       = "repeat-dox"
)

// doxPII bundles doxPIIByColumn's two parallel maps as one artifact.
type doxPII struct {
	types map[string][][]pii.Type
	docs  map[string][]*corpus.Document
}

// initGraph registers every pipeline stage and derived artifact.
// Stage functions assign the Pipeline's exported fields; the graph's
// latches give readers the necessary happens-before edges. storeGen is
// the corpus store's manifest generation for store-backed runs (zero
// and unused otherwise).
func (p *Pipeline) initGraph(opts Options, storeGen uint64) {
	fp := graph.Fingerprint(p.Config)
	if opts.StorePath != "" {
		fp = graph.Fingerprint(storeFingerprint{Config: p.Config, StorePath: opts.StorePath, Generation: storeGen})
	}
	p.g = graph.New(graph.Config{
		Seed:        p.Config.Seed,
		Fingerprint: fp,
		Metrics:     opts.Metrics,
		Workers:     opts.Workers,
		NoMemo:      opts.NoMemo,
	})
	g := p.g

	// Step 1 (Figure 1): raw data sets. In the generate path blogs
	// consume the generator's rng stream after the main corpora, so they
	// depend on it; in the store path one Scan loads everything and
	// StageBlogs hands over what the scan set aside.
	if opts.StorePath != "" {
		var storeBlogs *corpus.Corpus
		g.Register(StageCorpora, nil, func() (any, error) {
			var err error
			p.Corpora, storeBlogs, err = loadStoreCorpora(opts.StorePath, opts.Workers)
			if err != nil {
				return nil, err
			}
			return p.Corpora, nil
		})
		g.Register(StageBlogs, []string{StageCorpora}, func() (any, error) {
			p.Blogs = storeBlogs
			return p.Blogs, nil
		})
	} else {
		g.Register(StageCorpora, nil, func() (any, error) {
			p.Gen = corpus.NewGenerator(corpus.Config{
				Seed:          p.Config.Seed,
				VolumeScale:   p.Config.VolumeScale,
				PositiveScale: p.Config.PositiveScale,
			})
			p.Corpora = p.Gen.Generate()
			return p.Corpora, nil
		})
		g.Register(StageBlogs, []string{StageCorpora}, func() (any, error) {
			p.Blogs = p.Gen.GenerateBlogs(corpus.DefaultBlogSpecs(p.Config.BlogScale))
			return p.Blogs, nil
		})
	}

	// Shared text stack: WordPiece vocabulary trained on a corpus
	// sample, hashed n-gram features.
	g.Register(StageTokenizer, []string{StageCorpora}, func() (any, error) {
		p.trainTokenizer()
		return p.Tokenizer, nil
	})
	g.Register(StageHasher, nil, func() (any, error) {
		p.Hasher = features.NewHasher(features.HasherConfig{Buckets: p.Config.Buckets, Bigrams: true})
		return p.Hasher, nil
	})

	// Steps 2-7 per task.
	textStack := []string{StageCorpora, StageTokenizer, StageHasher}
	g.Register(StageTaskDox, textStack, func() (any, error) {
		run, err := p.runTask(annotate.TaskDox)
		if err != nil {
			return nil, fmt.Errorf("dox pipeline: %w", err)
		}
		p.Dox = run
		return run, nil
	})
	g.Register(StageTaskCTH, textStack, func() (any, error) {
		run, err := p.runTask(annotate.TaskCTH)
		if err != nil {
			return nil, fmt.Errorf("cth pipeline: %w", err)
		}
		p.CTH = run
		return run, nil
	})

	// Derived artifacts shared by several experiments. The monolith
	// recomputed these in every caller; here each is computed once.
	g.RegisterDerived(ArtifactCodedCTH, []string{StageTaskCTH}, func() (any, error) {
		return p.computeCodedCTH(), nil
	})
	g.RegisterDerived(ArtifactDoxPII, []string{StageTaskDox}, func() (any, error) {
		return p.computeDoxPIIByColumn(), nil
	})
	g.RegisterDerived(ArtifactBoardPosts, []string{StageTaskDox, StageTaskCTH}, func() (any, error) {
		return p.computeBoardPosts(), nil
	})
	g.RegisterDerived(ArtifactAboveBoardPosts, []string{StageTaskDox, StageTaskCTH}, func() (any, error) {
		return p.computeAboveThresholdBoardPosts(), nil
	})
	g.RegisterDerived(ArtifactRepeatDox, []string{StageTaskDox}, func() (any, error) {
		return p.computeRepeatedDoxStats(), nil
	})
}

// Graph exposes the run's artifact graph (stage stats, keys, direct
// Gets) for tooling and tests.
func (p *Pipeline) Graph() *graph.Graph { return p.g }

// mustArtifact fetches a memoized artifact. Artifact compute functions
// cannot fail and their task dependencies were materialized by Run, so
// an error here is a programming bug; panicking keeps the dozens of
// accessor call sites clean, and experiment scheduling isolates panics.
func mustArtifact[T any](p *Pipeline, name string) T {
	v, err := graph.GetAs[T](p.g, name)
	if err != nil {
		panic(fmt.Sprintf("core: artifact %s: %v", name, err))
	}
	return v
}

// codedCTH returns the taxonomy-coded annotated CTH positives, grouped
// per Table 5 column. Memoized: coded once, shared by every consumer.
func (p *Pipeline) codedCTH() map[string][]taxonomy.Label {
	return mustArtifact[map[string][]taxonomy.Label](p, ArtifactCodedCTH)
}

// doxPIIByColumn returns PII extracted from the annotated dox
// positives per Table 6 column. Memoized.
func (p *Pipeline) doxPIIByColumn() (map[string][][]pii.Type, map[string][]*corpus.Document) {
	a := mustArtifact[doxPII](p, ArtifactDoxPII)
	return a.types, a.docs
}

// boardPosts returns the boards corpus adapted to the thread-analysis
// model (annotated positives for CTH/dox flags). Memoized; treat the
// returned slice as read-only.
func (p *Pipeline) boardPosts() []threads.Post {
	return mustArtifact[[]threads.Post](p, ArtifactBoardPosts)
}

// aboveThresholdBoardPosts is boardPosts with the complete
// above-threshold sets for flags (§6.3). Memoized; read-only.
func (p *Pipeline) aboveThresholdBoardPosts() []threads.Post {
	return mustArtifact[[]threads.Post](p, ArtifactAboveBoardPosts)
}

// RepeatedDoxStats links the complete above-threshold dox sets by
// shared OSN PII (§7.3). Memoized.
func (p *Pipeline) RepeatedDoxStats() repeatdox.Stats {
	return mustArtifact[repeatdox.Stats](p, ArtifactRepeatDox)
}

// ExperimentResult is one experiment's outcome from RunExperiments.
type ExperimentResult struct {
	ID     string
	Title  string
	Output string // title + rendered output, as RunExperiment returns
	Err    error
}

// RunExperiments executes the given experiments (all of them when ids
// is empty) concurrently on a bounded worker pool. Shared artifacts
// are memoized on the graph, so concurrent experiments block briefly
// on in-flight intermediates instead of recomputing them, and outputs
// are byte-identical to sequential execution (each experiment derives
// its randomness from pure per-experiment rng splits).
//
// A failing or panicking experiment is quarantined by the runner and
// reported in its result's Err; the remaining experiments still run.
// Results are returned in input order. The error is non-nil only for
// run-level failures (context cancellation), not per-experiment ones.
func (p *Pipeline) RunExperiments(ctx context.Context, ids []string, workers int) ([]ExperimentResult, error) {
	byID := map[string]Experiment{}
	var all []string
	for _, e := range Experiments() {
		byID[e.ID] = e
		all = append(all, e.ID)
	}
	if len(ids) == 0 {
		ids = all
	}
	items := make([]ExperimentResult, len(ids))
	for i, id := range ids {
		items[i] = ExperimentResult{ID: id}
	}
	r := resilience.NewRunner[ExperimentResult](resilience.Config[ExperimentResult]{
		Workers:  workers,
		Seed:     p.Config.Seed,
		Metrics:  p.opts.Metrics,
		Describe: func(e *ExperimentResult) string { return e.ID },
	}, resilience.Stage[ExperimentResult]{
		Name: "experiment",
		Fn: func(ctx context.Context, _ int, it *ExperimentResult) error {
			e, ok := byID[it.ID]
			if !ok {
				return fmt.Errorf("core: unknown experiment %q", it.ID)
			}
			it.Title = e.Title
			out, err := e.Run(p)
			if err != nil {
				return err
			}
			it.Output = e.Title + "\n\n" + out
			return nil
		},
	})
	results, _, err := r.RunSlice(ctx, items)
	if err != nil {
		return nil, err
	}
	out := make([]ExperimentResult, len(ids))
	for _, res := range results {
		er := res.Item
		if res.Dead != nil {
			er.Err = res.Dead.Err
		}
		out[res.Index] = er
	}
	return out, nil
}

// RunSweepParallel runs the pipeline once per seed concurrently (one
// graph per seed) and returns per-seed metrics in seed order, so
// RenderSweep output is deterministic regardless of completion order.
// Failed seeds are reported in one combined error; successful seeds
// still return their metrics.
func RunSweepParallel(ctx context.Context, base Config, seeds []uint64, workers int) ([]SweepMetrics, error) {
	type seedRun struct {
		seed uint64
		m    SweepMetrics
	}
	items := make([]seedRun, len(seeds))
	for i, s := range seeds {
		items[i] = seedRun{seed: s}
	}
	r := resilience.NewRunner[seedRun](resilience.Config[seedRun]{
		Workers:  workers,
		Seed:     base.Seed,
		Describe: func(it *seedRun) string { return fmt.Sprintf("seed-%d", it.seed) },
	}, resilience.Stage[seedRun]{
		Name: "pipeline",
		Fn: func(ctx context.Context, _ int, it *seedRun) error {
			cfg := base
			cfg.Seed = it.seed
			// Inner stage scheduling stays sequential: the sweep's own
			// pool is the parallelism budget.
			p, err := RunWithOptions(cfg, Options{Workers: 1})
			if err != nil {
				return err
			}
			it.m = p.CollectMetrics()
			return nil
		},
	})
	results, sum, err := r.RunSlice(ctx, items)
	if err != nil {
		return nil, err
	}
	var out []SweepMetrics
	for _, res := range results {
		if res.Dead == nil {
			out = append(out, res.Item.m)
		}
	}
	if len(sum.DeadLetters) > 0 {
		msg := fmt.Sprintf("sweep: %d seed(s) failed:", len(sum.DeadLetters))
		for _, d := range sum.DeadLetters {
			msg += fmt.Sprintf("\n  seed %d: %v", seeds[d.Index], d.Err)
		}
		return out, fmt.Errorf("%s", msg)
	}
	return out, nil
}
