package core

import (
	"context"
	"fmt"

	"harassrepro/internal/report"
	"harassrepro/internal/stats"
	"harassrepro/internal/taxonomy"
	"harassrepro/internal/threads"
)

// SweepMetrics are one pipeline run's headline numbers, extracted for
// cross-seed variance reporting. The paper observed a single dataset;
// the reproduction can quantify how stable each finding is under
// resampling.
type SweepMetrics struct {
	Seed uint64

	DoxF1  float64
	CTHF1  float64
	DoxAUC float64
	CTHAUC float64

	// ReportingShare is the share of annotated CTH including a
	// reporting attack (the paper's >50% headline).
	ReportingShare float64
	// OverlapShare is the §6.3 CTH-in-dox-thread share (~8.5%).
	OverlapShare float64
	// RepeatedShare is the §7.3 repeated-dox share (~20%).
	RepeatedShare float64
	// DoxKappa / CTHKappa are the crowd agreement statistics.
	DoxKappa float64
	CTHKappa float64
	// ToxicSignificant reports whether toxic content was the response
	// t-test's significant category (§6.3).
	ToxicSignificant bool
	// OtherSignificant counts other attack types flagged significant
	// (the paper found none).
	OtherSignificant int
}

// CollectMetrics extracts SweepMetrics from a completed pipeline.
func (p *Pipeline) CollectMetrics() SweepMetrics {
	m := SweepMetrics{
		Seed:     p.Config.Seed,
		DoxF1:    p.Dox.Eval.Positive.F1,
		CTHF1:    p.CTH.Eval.Positive.F1,
		DoxAUC:   p.Dox.Eval.AUC,
		CTHAUC:   p.CTH.Eval.AUC,
		DoxKappa: p.Dox.CrowdStats.Kappa,
		CTHKappa: p.CTH.CrowdStats.Kappa,
	}

	cat := taxonomy.NewCategorizer()
	var labels []taxonomy.Label
	for _, d := range p.CTH.AllPositives() {
		l := cat.Categorize(d.Text)
		if l.Empty() {
			l = taxonomy.NewLabel(taxonomy.SubGeneric)
		}
		labels = append(labels, l)
	}
	dist := taxonomy.NewDistribution(labels)
	m.ReportingShare = dist.ParentShare(taxonomy.Reporting)

	ov := threads.Overlap(p.aboveThresholdBoardPosts())
	m.OverlapShare = ov.CTHShare

	m.RepeatedShare = p.RepeatedDoxStats().RepeatedShare

	posts := p.boardPosts()
	base := p.baselineSizes(posts)
	var cthPosts []threads.Post
	for _, q := range posts {
		if q.IsCTH {
			cthPosts = append(cthPosts, q)
		}
	}
	for _, r := range threads.CompareResponses(cthPosts, base, 0.1, 5) {
		if r.Excluded || !r.Significant {
			continue
		}
		if r.Attack == taxonomy.ToxicContent && r.T > 0 {
			m.ToxicSignificant = true
		} else {
			m.OtherSignificant++
		}
	}
	return m
}

// RunSweep executes the pipeline once per seed (all other configuration
// shared) and returns the per-seed metrics in seed order. It is the
// sequential (workers=1) form of RunSweepParallel; per-seed outputs are
// identical at any worker count.
func RunSweep(base Config, seeds []uint64) ([]SweepMetrics, error) {
	return RunSweepParallel(context.Background(), base, seeds, 1)
}

// RenderSweep formats per-seed metrics with mean and standard deviation
// rows, plus the paper's reference values.
func RenderSweep(ms []SweepMetrics) string {
	t := report.NewTable("", "Seed", "Dox F1", "CTH F1", "Reporting %", "Overlap %", "Repeats %", "Dox κ", "CTH κ", "Toxic sig", "Other sig")
	var f1d, f1c, rep, ovl, rpt, kd, kc []float64
	toxicCount := 0
	for _, m := range ms {
		t.AddRow(fmt.Sprintf("%d", m.Seed), report.F(m.DoxF1), report.F(m.CTHF1),
			report.F(100*m.ReportingShare), report.F(100*m.OverlapShare), report.F(100*m.RepeatedShare),
			report.F3(m.DoxKappa), report.F3(m.CTHKappa),
			fmt.Sprintf("%v", m.ToxicSignificant), fmt.Sprintf("%d", m.OtherSignificant))
		f1d = append(f1d, m.DoxF1)
		f1c = append(f1c, m.CTHF1)
		rep = append(rep, 100*m.ReportingShare)
		ovl = append(ovl, 100*m.OverlapShare)
		rpt = append(rpt, 100*m.RepeatedShare)
		kd = append(kd, m.DoxKappa)
		kc = append(kc, m.CTHKappa)
		if m.ToxicSignificant {
			toxicCount++
		}
	}
	t.AddRow("mean", report.F(stats.Mean(f1d)), report.F(stats.Mean(f1c)),
		report.F(stats.Mean(rep)), report.F(stats.Mean(ovl)), report.F(stats.Mean(rpt)),
		report.F3(stats.Mean(kd)), report.F3(stats.Mean(kc)),
		fmt.Sprintf("%d/%d", toxicCount, len(ms)), "")
	t.AddRow("sd", report.F(stats.StdDev(f1d)), report.F(stats.StdDev(f1c)),
		report.F(stats.StdDev(rep)), report.F(stats.StdDev(ovl)), report.F(stats.StdDev(rpt)),
		report.F3(stats.StdDev(kd)), report.F3(stats.StdDev(kc)), "", "")
	t.AddRow("paper", "0.76", "0.63", "51", "8.53", "20.1", "0.519", "0.350", "yes", "0")
	return t.String()
}
