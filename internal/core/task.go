package core

import (
	"fmt"
	"sort"

	"harassrepro/internal/active"
	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/model"
	"harassrepro/internal/query"
	"harassrepro/internal/randx"
	"harassrepro/internal/threshold"
)

// instanceRef ties a pool instance back to its document and platform.
type instanceRef struct {
	doc  *corpus.Document
	plat corpus.Platform
}

// runTask executes steps 2-7 of Figure 1 for one task.
func (p *Pipeline) runTask(task annotate.Task) (*TaskRun, error) {
	rng := p.rng.Split("task-" + string(task))
	run := &TaskRun{
		Task:      task,
		Table2:    map[corpus.Dataset]struct{ Pos, Neg int }{},
		EvalByLen: map[int]model.Report{},
		Results:   map[corpus.Platform]*PlatformResult{},
	}

	// Gather the task's documents per platform.
	platDocs := map[corpus.Platform][]*corpus.Document{}
	for _, plat := range taskPlatforms(task) {
		platDocs[plat] = p.docsFor(plat)
	}

	// Hyperparameter candidates: the span-length sweep of §5.4.
	lengths := []int{p.Config.CTHTextLen, p.Config.DoxTextLen}
	if lengths[0] == lengths[1] {
		lengths = lengths[:1]
	}

	// Step 2: initial annotations.
	seedExamples, seedByDS, err := p.seedAnnotations(task, platDocs, rng)
	if err != nil {
		return nil, err
	}
	run.SeedSize = len(seedExamples[lengths[0]])
	for ds, pn := range seedByDS {
		run.Table2[ds] = pn
	}

	// Held-out evaluation set (expert-labelled), used for the
	// hyperparameter sweep and Table 3.
	evalItems := p.buildEvalSet(task, platDocs, rng)

	// Steps 3-4: train with active learning, per candidate length;
	// pick the best by held-out macro F1 (AUC tiebreak).
	crowd := annotate.NewPool(annotate.CrowdConfig(task), rng.Split("crowd"))
	bestLen := lengths[0]
	var bestRun active.Result
	bestScore := -1.0
	for _, maxLen := range lengths {
		pool, _ := p.buildPool(task, platDocs, maxLen, rng.Split(fmt.Sprintf("pool-%d", maxLen)))
		res, err := active.Run(seedExamples[maxLen], pool, crowd, active.Config{
			PerBin:     p.Config.ActivePerBin,
			Iterations: 2,
			Model: model.LogRegConfig{
				Buckets:             p.Config.Buckets,
				Epochs:              p.Config.Epochs,
				Seed:                p.Config.Seed ^ uint64(maxLen),
				ClassWeightPositive: 3,
			},
			Seed: p.Config.Seed ^ 0x5eed ^ uint64(maxLen),
		})
		if err != nil {
			return nil, fmt.Errorf("active learning (len %d): %w", maxLen, err)
		}
		rep := p.evaluate(res.Model, evalItems, maxLen, task)
		run.EvalByLen[maxLen] = rep
		score := rep.MacroAvg.F1
		// Prefer the task's default length (512 dox / 128 CTH, the
		// paper's optimised values) on near-ties: the synthetic corpus
		// often cannot distinguish span lengths this closely.
		const tieEps = 0.025
		preferred := maxLen == p.Config.DoxTextLen
		if task == annotate.TaskCTH {
			preferred = maxLen == p.Config.CTHTextLen
		}
		better := score > bestScore+tieEps ||
			(score > bestScore-tieEps && preferred)
		if bestScore < 0 || better {
			if score > bestScore {
				bestScore = score
			}
			bestLen = maxLen
			bestRun = res
		}
	}
	run.TextLen = bestLen
	run.Model = bestRun.Model
	run.LabelledSize = len(bestRun.Labelled)
	run.Eval = run.EvalByLen[bestLen]
	run.CrowdStats = p.measureCrowdStats(task, platDocs, rng.Split("crowd-stats"))

	// §5.3 quality pass over the delivered crowd annotations: a random
	// spot-check sample plus an author review of every positive label.
	// Corrections feed a final retrain.
	if err := p.spotCheckAndRetrain(task, run, &bestRun, platDocs, rng.Split("spotcheck")); err != nil {
		return nil, fmt.Errorf("spot check: %w", err)
	}

	// Fold crowd-annotated counts into Table 2 using the final pool
	// sample sizes (crowd labels beyond the seed).
	p.countCrowdAnnotations(run, bestRun, seedExamples[bestLen], task, platDocs, bestLen)

	// Steps 5-7: predict every platform, select thresholds, expert
	// annotation of above-threshold sets.
	experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("experts"))
	for _, plat := range taskPlatforms(task) {
		result, err := p.thresholdAndAnnotate(task, plat, platDocs[plat], run, experts, rng.Split("thr-"+string(plat)))
		if err != nil {
			return nil, fmt.Errorf("platform %s: %w", plat, err)
		}
		run.Results[plat] = result
	}
	return run, nil
}

// seedAnnotations builds the initial labelled sets (§5.1), vectorized at
// every candidate span length. For doxing, the seed mirrors the Snyder
// et al. annotations (pastes positives + negatives, plus doxbin-style
// positives); for CTH, the Figure 4 query over boards feeds an expert
// annotation pass.
func (p *Pipeline) seedAnnotations(task annotate.Task, platDocs map[corpus.Platform][]*corpus.Document, rng *randx.Source) (map[int][]model.Example, map[corpus.Dataset]struct{ Pos, Neg int }, error) {
	byDS := map[corpus.Dataset]struct{ Pos, Neg int }{}
	lengths := []int{p.Config.CTHTextLen, p.Config.DoxTextLen}
	out := map[int][]model.Example{}

	experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("seed-experts"))

	var seedDocs []*corpus.Document
	if task == annotate.TaskDox {
		// Positives and negatives from pastes, scaled from the paper's
		// 1,227 / 10,387 split.
		pastes := platDocs[corpus.PlatformPastes]
		wantPos := scaleCount(1227, p.Config.PositiveScale, 30)
		wantNeg := scaleCount(10387, p.Config.PositiveScale, 200)
		var pos, neg int
		idx := rng.Split("shuffle")
		order := shuffledIndices(len(pastes), idx)
		for _, i := range order {
			d := pastes[i]
			if d.Truth.IsDox && pos < wantPos {
				seedDocs = append(seedDocs, d)
				pos++
			} else if !d.Truth.IsDox && neg < wantNeg {
				seedDocs = append(seedDocs, d)
				neg++
			}
			if pos >= wantPos && neg >= wantNeg {
				break
			}
		}
	} else {
		// Figure 4 query over the boards (the paper ran it on 4chan,
		// 8chan and 8kun).
		q := query.WithAttackTerms(query.Figure4())
		boards := platDocs[corpus.PlatformBoards]
		cap := scaleCount(1371, p.Config.PositiveScale, 150)
		order := shuffledIndices(len(boards), rng.Split("q-shuffle"))
		for _, i := range order {
			d := boards[i]
			if q.Match(d.Text) {
				seedDocs = append(seedDocs, d)
				if len(seedDocs) >= cap {
					break
				}
			}
		}
		// The query alone may under-fill the positive side at small
		// scales; backfill with a few more board docs for a workable
		// cold start.
		if len(seedDocs) < 40 {
			for _, i := range order {
				d := boards[i]
				if len(seedDocs) >= 80 {
					break
				}
				seedDocs = append(seedDocs, d)
			}
		}
	}

	// Expert annotation of the seed pool.
	items := make([]annotate.Item, len(seedDocs))
	for i, d := range seedDocs {
		items[i] = annotate.Item{ID: d.ID, Truth: truth(task, d)}
	}
	decisions, _, err := experts.Annotate(items)
	if err != nil {
		return nil, nil, err
	}
	for _, maxLen := range lengths {
		vrng := rng.Split(fmt.Sprintf("vec-%d", maxLen))
		examples := make([]model.Example, len(seedDocs))
		for i, d := range seedDocs {
			examples[i] = model.Example{
				X: p.vectorize(d.Text, maxLen, vrng),
				Y: decisions[i].Label,
			}
		}
		out[maxLen] = examples
	}
	for i, d := range seedDocs {
		pn := byDS[d.Dataset]
		if decisions[i].Label {
			pn.Pos++
		} else {
			pn.Neg++
		}
		byDS[d.Dataset] = pn
	}
	return out, byDS, nil
}

// buildPool vectorizes a task's documents into an active-learning pool.
func (p *Pipeline) buildPool(task annotate.Task, platDocs map[corpus.Platform][]*corpus.Document, maxLen int, rng *randx.Source) ([]active.Instance, map[string]instanceRef) {
	var pool []active.Instance
	refs := map[string]instanceRef{}
	for _, plat := range taskPlatforms(task) {
		for _, d := range platDocs[plat] {
			pool = append(pool, active.Instance{
				ID:    d.ID,
				X:     p.vectorize(d.Text, maxLen, rng),
				Truth: truth(task, d),
			})
			refs[d.ID] = instanceRef{doc: d, plat: plat}
		}
	}
	return pool, refs
}

// buildEvalSet expert-labels a stratified held-out sample used for the
// hyperparameter sweep and Table 3 (standing in for the paper's withheld
// evaluation annotations).
func (p *Pipeline) buildEvalSet(task annotate.Task, platDocs map[corpus.Platform][]*corpus.Document, rng *randx.Source) []evalItem {
	experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("eval-experts"))
	var docs []*corpus.Document
	var pos, neg int
	wantPos, wantNeg := 150, 850
	for _, plat := range taskPlatforms(task) {
		all := platDocs[plat]
		order := shuffledIndices(len(all), rng.Split("eval-"+string(plat)))
		for _, i := range order {
			d := all[i]
			if truth(task, d) && pos < wantPos {
				docs = append(docs, d)
				pos++
			} else if !truth(task, d) && neg < wantNeg {
				docs = append(docs, d)
				neg++
			}
		}
	}
	items := make([]annotate.Item, len(docs))
	for i, d := range docs {
		items[i] = annotate.Item{ID: d.ID, Truth: truth(task, d)}
	}
	decisions, _, err := experts.Annotate(items)
	if err != nil {
		return nil
	}
	out := make([]evalItem, len(docs))
	for i, d := range docs {
		out[i] = evalItem{doc: d, label: decisions[i].Label}
	}
	return out
}

type evalItem struct {
	doc   *corpus.Document
	label bool
}

// evaluate produces the Table 3-style report for a model at a span
// length over the held-out set.
func (p *Pipeline) evaluate(m *model.LogReg, items []evalItem, maxLen int, task annotate.Task) model.Report {
	rng := p.rng.Split(fmt.Sprintf("evalvec-%s-%d", task, maxLen))
	examples := make([]model.Example, len(items))
	for i, it := range items {
		examples[i] = model.Example{X: p.vectorize(it.doc.Text, maxLen, rng), Y: it.label}
	}
	posLabel, negLabel := "Dox", "No Dox"
	if task == annotate.TaskCTH {
		posLabel, negLabel = "CTH", "No CTH"
	}
	return model.Evaluate(m, examples, 0.5, posLabel, negLabel)
}

// countCrowdAnnotations attributes the crowd-annotated training examples
// (everything beyond the seed) to data sets for Table 2. The active
// learner does not return per-example document IDs, so the attribution
// follows the task's platform document mix, which is what stratified
// sampling converges to.
func (p *Pipeline) countCrowdAnnotations(run *TaskRun, res active.Result, seed []model.Example, task annotate.Task, platDocs map[corpus.Platform][]*corpus.Document, maxLen int) {
	extra := len(res.Labelled) - len(seed)
	if extra <= 0 {
		return
	}
	totalDocs := 0
	for _, plat := range taskPlatforms(task) {
		totalDocs += len(platDocs[plat])
	}
	if totalDocs == 0 {
		return
	}
	extraPos := 0
	for _, ex := range res.Labelled[len(seed):] {
		if ex.Y {
			extraPos++
		}
	}
	for _, plat := range taskPlatforms(task) {
		ds := plat.Dataset()
		share := float64(len(platDocs[plat])) / float64(totalDocs)
		pn := run.Table2[ds]
		pn.Pos += int(float64(extraPos) * share)
		pn.Neg += int(float64(extra-extraPos) * share)
		run.Table2[ds] = pn
	}
	run.LabelledSize = len(res.Labelled)
}

// thresholdAndAnnotate runs §5.5 threshold selection for one platform
// and expert-annotates the above-threshold set (all of it when small,
// else a sample), producing a Table 4 row.
func (p *Pipeline) thresholdAndAnnotate(task annotate.Task, plat corpus.Platform, docs []*corpus.Document, run *TaskRun, experts *annotate.Pool, rng *randx.Source) (*PlatformResult, error) {
	vrng := rng.Split("vec")
	scored := make([]threshold.ScoredDoc, len(docs))
	for i, d := range docs {
		scored[i] = threshold.ScoredDoc{
			ID:    d.ID,
			Score: run.Model.Score(p.vectorize(d.Text, run.TextLen, vrng)),
			Truth: truth(task, d),
		}
	}
	sel, err := threshold.Select(scored, experts, threshold.Config{
		Ladder:          selectionLadder,
		TargetPrecision: 0.6,
		SampleSize:      150,
		Seed:            p.Config.Seed ^ uint64(len(docs)),
	})
	if err == threshold.ErrNoCandidates {
		return &PlatformResult{Platform: plat, Threshold: 0.5}, nil
	}
	if err != nil {
		return nil, err
	}

	// Collect above-threshold documents.
	byID := map[string]*corpus.Document{}
	for _, d := range docs {
		byID[d.ID] = d
	}
	var above []*corpus.Document
	for _, sd := range scored {
		if sd.Score > sel.Threshold {
			above = append(above, byID[sd.ID])
		}
	}
	sort.Slice(above, func(i, j int) bool { return above[i].ID < above[j].ID })

	result := &PlatformResult{
		Platform:       plat,
		Threshold:      sel.Threshold,
		AboveThreshold: len(above),
		Above:          above,
	}
	sample := above
	if len(sample) > p.Config.AnnotationCap {
		cp := append([]*corpus.Document(nil), above...)
		shuffleDocs(cp, rng.Split("sample"))
		sample = cp[:p.Config.AnnotationCap]
	} else {
		result.AnnotatedAll = true
	}
	items := make([]annotate.Item, len(sample))
	for i, d := range sample {
		items[i] = annotate.Item{ID: d.ID, Truth: truth(task, d)}
	}
	decisions, _, err := experts.Annotate(items)
	if err != nil {
		return nil, err
	}
	result.Annotated = len(items)
	for i, d := range sample {
		if decisions[i].Label {
			result.TruePositives++
			result.Positives = append(result.Positives, d)
		}
	}
	return result, nil
}

// spotCheckAndRetrain runs annotate.SpotCheck over the crowd-labelled
// portion of the training set (tracing examples back to documents via
// the active learner's pool indices), applies the author-review
// corrections, and retrains the task model when labels changed.
func (p *Pipeline) spotCheckAndRetrain(task annotate.Task, run *TaskRun, res *active.Result, platDocs map[corpus.Platform][]*corpus.Document, rng *randx.Source) error {
	// Pool document order matches buildPool: platforms in task order.
	var poolDocs []*corpus.Document
	for _, plat := range taskPlatforms(task) {
		poolDocs = append(poolDocs, platDocs[plat]...)
	}
	var items []annotate.Item
	var decisions []annotate.Decision
	var exIdx []int
	for k, pi := range res.PoolIndices {
		if pi < 0 || pi >= len(poolDocs) {
			continue
		}
		d := poolDocs[pi]
		items = append(items, annotate.Item{ID: d.ID, Truth: truth(task, d)})
		decisions = append(decisions, annotate.Decision{ID: d.ID, Label: res.Labelled[k].Y})
		exIdx = append(exIdx, k)
	}
	if len(items) == 0 {
		return nil
	}
	experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("experts"))
	sc, err := annotate.SpotCheck(items, decisions, experts, 200, rng.Split("sample"))
	if err != nil {
		return err
	}
	run.SpotCheck = sc
	changed := false
	for j, k := range exIdx {
		if res.Labelled[k].Y != decisions[j].Label {
			res.Labelled[k].Y = decisions[j].Label
			changed = true
		}
	}
	if changed {
		m, err := model.TrainLogReg(res.Labelled, model.LogRegConfig{
			Buckets:             p.Config.Buckets,
			Epochs:              p.Config.Epochs,
			Seed:                p.Config.Seed ^ uint64(run.TextLen) ^ 0x5c,
			ClassWeightPositive: 3,
		})
		if err != nil {
			return err
		}
		res.Model = m
		run.Model = m
	}
	return nil
}

// measureCrowdStats reproduces the §5.3 agreement measurement: a fresh
// crowd pool annotates a representative mixed sample of the task's
// documents, and Cohen's kappa plus the raw disagreement rate are
// computed over the first two raters.
func (p *Pipeline) measureCrowdStats(task annotate.Task, platDocs map[corpus.Platform][]*corpus.Document, rng *randx.Source) annotate.Stats {
	crowd := annotate.NewPool(annotate.CrowdConfig(task), rng.Split("pool"))
	// Sample proportionally to platform volume so the pool prevalence
	// matches the task's true base rate (the statistic the paper's
	// agreement numbers were measured at).
	total := 0
	for _, plat := range taskPlatforms(task) {
		total += len(platDocs[plat])
	}
	const sampleSize = 8000
	var items []annotate.Item
	for _, plat := range taskPlatforms(task) {
		docs := platDocs[plat]
		n := len(docs) * sampleSize / max(1, total)
		order := shuffledIndices(len(docs), rng.Split("mix-"+string(plat)))
		if n > len(order) {
			n = len(order)
		}
		for _, i := range order[:n] {
			items = append(items, annotate.Item{ID: docs[i].ID, Truth: truth(task, docs[i])})
		}
	}
	_, st, err := crowd.Annotate(items)
	if err != nil {
		return annotate.Stats{}
	}
	return st
}

// scaleCount divides a paper full-scale count by the positive scale,
// with a floor.
func scaleCount(full, scale, floor int) int {
	v := full / scale
	if v < floor {
		return floor
	}
	return v
}

func shuffledIndices(n int, rng *randx.Source) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	randx.Shuffle(rng, idx)
	return idx
}

func shuffleDocs(docs []*corpus.Document, rng *randx.Source) {
	randx.Shuffle(rng, docs)
}
