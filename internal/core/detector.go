package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"harassrepro/internal/annotate"
	"harassrepro/internal/corpus"
	"harassrepro/internal/features"
	"harassrepro/internal/model"
	"harassrepro/internal/randx"
	"harassrepro/internal/tokenize"
)

// The paper open-sources its trained classifiers so platforms can deploy
// them without access to training data ("we will open-source the
// classifiers discussed in this analysis... We will not provide PII or
// actual training data"). SaveModels/LoadDetector are that release
// artifact: a directory holding the WordPiece vocabulary, both
// classifier weight files, and a metadata file with span lengths,
// feature-space size and the per-platform detection thresholds of
// Table 4 — no corpus text.

const (
	vocabFile = "vocab.txt"
	doxFile   = "dox.model"
	cthFile   = "cth.model"
	metaFile  = "meta.json"
)

// detectorMeta is the serialised detector configuration.
type detectorMeta struct {
	Version       int                `json:"version"`
	Buckets       uint32             `json:"buckets"`
	DoxTextLen    int                `json:"dox_text_len"`
	CTHTextLen    int                `json:"cth_text_len"`
	DoxThresholds map[string]float64 `json:"dox_thresholds"`
	CTHThresholds map[string]float64 `json:"cth_thresholds"`
}

// validate rejects metadata whose values would break scoring (zero
// feature space, non-positive span lengths, thresholds outside (0, 1]):
// the partially-written-file failure modes a crashed SaveModels leaves
// behind.
func (m *detectorMeta) validate() error {
	if m.Buckets == 0 {
		return fmt.Errorf("buckets must be positive")
	}
	if m.DoxTextLen <= 0 || m.CTHTextLen <= 0 {
		return fmt.Errorf("span lengths must be positive (dox %d, cth %d)", m.DoxTextLen, m.CTHTextLen)
	}
	for name, ths := range map[string]map[string]float64{"dox": m.DoxThresholds, "cth": m.CTHThresholds} {
		for plat, th := range ths {
			if th <= 0 || th > 1 {
				return fmt.Errorf("%s threshold for %q out of range: %v", name, plat, th)
			}
		}
	}
	return nil
}

// SaveModels writes the trained filtering classifiers and their
// configuration into dir (created if needed).
func (p *Pipeline) SaveModels(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: save models: %w", err)
	}
	if err := p.Tokenizer.Vocab().SaveFile(filepath.Join(dir, vocabFile)); err != nil {
		return err
	}
	if err := p.Dox.Model.SaveFile(filepath.Join(dir, doxFile)); err != nil {
		return err
	}
	if err := p.CTH.Model.SaveFile(filepath.Join(dir, cthFile)); err != nil {
		return err
	}
	meta := detectorMeta{
		Version:       1,
		Buckets:       p.Config.Buckets,
		DoxTextLen:    p.Dox.TextLen,
		CTHTextLen:    p.CTH.TextLen,
		DoxThresholds: map[string]float64{},
		CTHThresholds: map[string]float64{},
	}
	for plat, r := range p.Dox.Results {
		meta.DoxThresholds[string(plat)] = r.Threshold
	}
	for plat, r := range p.CTH.Results {
		meta.CTHThresholds[string(plat)] = r.Threshold
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return fmt.Errorf("core: save models: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), data, 0o644); err != nil {
		return fmt.Errorf("core: save models: %w", err)
	}
	return nil
}

// Detector builds the deployable detector directly from the trained
// pipeline, without the SaveModels/LoadDetector disk round-trip —
// what a serving process that trains at startup (cmd/harassd without
// -models) uses. Scores are identical to a detector loaded from a
// SaveModels directory of the same pipeline.
func (p *Pipeline) Detector() *Detector {
	meta := detectorMeta{
		Version:       1,
		Buckets:       p.Config.Buckets,
		DoxTextLen:    p.Dox.TextLen,
		CTHTextLen:    p.CTH.TextLen,
		DoxThresholds: map[string]float64{},
		CTHThresholds: map[string]float64{},
	}
	for plat, r := range p.Dox.Results {
		meta.DoxThresholds[string(plat)] = r.Threshold
	}
	for plat, r := range p.CTH.Results {
		meta.CTHThresholds[string(plat)] = r.Threshold
	}
	d := &Detector{
		tok:    p.Tokenizer,
		hasher: features.NewHasher(features.HasherConfig{Buckets: p.Config.Buckets, Bigrams: true}),
		dox:    p.Dox.Model,
		cth:    p.CTH.Model,
		meta:   meta,
		rng:    randx.New(1).Split("detector"),
	}
	d.initScorerPool()
	return d
}

// Detector scores text with previously saved classifiers, without the
// corpora or any pipeline state — the deployable artifact.
type Detector struct {
	tok    *tokenize.Tokenizer
	hasher *features.Hasher
	dox    *model.LogReg
	cth    *model.LogReg
	meta   detectorMeta
	rng    *randx.Source
	// scorers pools the per-goroutine scoring scratch (WordPiece
	// session + featurizer) so steady-state scoring is allocation-free.
	scorers sync.Pool
}

// ModelFiles lists the files a complete SaveModels directory holds.
func ModelFiles() []string {
	return []string{vocabFile, doxFile, cthFile, metaFile}
}

// ValidateModelDir checks up front that dir holds every model artifact
// a detector needs, reporting all absent files in one error rather
// than failing late on the first open. A missing directory is its own
// error; an unreadable-but-present file is left for LoadDetector's
// per-artifact diagnostics.
func ValidateModelDir(dir string) error {
	if fi, err := os.Stat(dir); err != nil {
		return fmt.Errorf("core: model dir %s: %w", dir, err)
	} else if !fi.IsDir() {
		return fmt.Errorf("core: model dir %s: not a directory", dir)
	}
	var missing []string
	for _, name := range ModelFiles() {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("core: model dir %s: missing %s", dir, strings.Join(missing, ", "))
	}
	return nil
}

// LoadDetector reads a directory written by SaveModels. A corrupt,
// truncated or partially-written model directory always yields a
// descriptive error naming the offending artifact, never a panic or a
// silently broken detector.
func LoadDetector(dir string) (*Detector, error) {
	if err := ValidateModelDir(dir); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("core: load detector: %w", err)
	}
	var meta detectorMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("core: load detector: %s: %w", metaFile, err)
	}
	if meta.Version != 1 {
		return nil, fmt.Errorf("core: load detector: unsupported version %d", meta.Version)
	}
	if err := meta.validate(); err != nil {
		return nil, fmt.Errorf("core: load detector: %s: %w", metaFile, err)
	}
	vocab, err := tokenize.LoadVocabFile(filepath.Join(dir, vocabFile))
	if err != nil {
		return nil, err
	}
	if vocab.Size() == 0 {
		return nil, fmt.Errorf("core: load detector: %s: vocabulary is empty", vocabFile)
	}
	dox, err := model.LoadLogRegFile(filepath.Join(dir, doxFile))
	if err != nil {
		return nil, err
	}
	cth, err := model.LoadLogRegFile(filepath.Join(dir, cthFile))
	if err != nil {
		return nil, err
	}
	if dox.Buckets() != meta.Buckets || cth.Buckets() != meta.Buckets {
		return nil, fmt.Errorf("core: load detector: model buckets do not match metadata (%d)", meta.Buckets)
	}
	d := &Detector{
		tok:    tokenize.NewTokenizer(vocab),
		hasher: features.NewHasher(features.HasherConfig{Buckets: meta.Buckets, Bigrams: true}),
		dox:    dox,
		cth:    cth,
		meta:   meta,
		rng:    randx.New(1).Split("detector"),
	}
	d.initScorerPool()
	return d, nil
}

// ScoreDox returns the doxing classifier's positive probability.
// Not safe for concurrent use (it advances the detector's internal
// span-sampling stream); use ScoreStream for concurrent scoring.
func (d *Detector) ScoreDox(text string) float64 {
	return d.scoreWith(d.dox, text, d.meta.DoxTextLen, d.rng)
}

// ScoreCTH returns the call-to-harassment classifier's positive
// probability. Not safe for concurrent use; see ScoreDox.
func (d *Detector) ScoreCTH(text string) float64 {
	return d.scoreWith(d.cth, text, d.meta.CTHTextLen, d.rng)
}

// scoreDoxWith scores with an explicit span-sampling source.
func (d *Detector) scoreDoxWith(text string, rng *randx.Source) float64 {
	return d.scoreWith(d.dox, text, d.meta.DoxTextLen, rng)
}

// scoreCTHWith scores with an explicit span-sampling source.
func (d *Detector) scoreCTHWith(text string, rng *randx.Source) float64 {
	return d.scoreWith(d.cth, text, d.meta.CTHTextLen, rng)
}

// Score scores text for the given task.
func (d *Detector) Score(task annotate.Task, text string) float64 {
	if task == annotate.TaskCTH {
		return d.ScoreCTH(text)
	}
	return d.ScoreDox(text)
}

// DoxThreshold returns the saved Table 4 threshold for a platform, or
// 0.5 when the platform is unknown.
func (d *Detector) DoxThreshold(platform string) float64 {
	if t, ok := d.meta.DoxThresholds[platform]; ok {
		return t
	}
	return 0.5
}

// CTHThreshold returns the saved CTH threshold for a platform, or 0.5.
func (d *Detector) CTHThreshold(platform string) float64 {
	if t, ok := d.meta.CTHThresholds[platform]; ok {
		return t
	}
	return 0.5
}

// ExplainCTH attributes the CTH classifier's decision on text to its
// n-grams (top-k by absolute weight). Spans are not applied: explanation
// considers the full token sequence.
func (d *Detector) ExplainCTH(text string, topK int) []model.TokenWeight {
	return model.Explain(d.cth, d.hasher, d.tok.Tokenize(text), topK)
}

// ExplainDox attributes the doxing classifier's decision on text to its
// n-grams.
func (d *Detector) ExplainDox(text string, topK int) []model.TokenWeight {
	return model.Explain(d.dox, d.hasher, d.tok.Tokenize(text), topK)
}

// Save writes the detector back into dir in SaveModels layout, so a
// retrained detector built in memory (Retrained) can be committed to a
// registry generation without a full pipeline behind it.
func (d *Detector) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: save detector: %w", err)
	}
	if err := d.tok.Vocab().SaveFile(filepath.Join(dir, vocabFile)); err != nil {
		return err
	}
	if err := d.dox.SaveFile(filepath.Join(dir, doxFile)); err != nil {
		return err
	}
	if err := d.cth.SaveFile(filepath.Join(dir, cthFile)); err != nil {
		return err
	}
	data, err := json.MarshalIndent(d.meta, "", "  ")
	if err != nil {
		return fmt.Errorf("core: save detector: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, metaFile), data, 0o644); err != nil {
		return fmt.Errorf("core: save detector: %w", err)
	}
	return nil
}

// Retrained returns a new detector that replaces one task's classifier
// (and optionally its per-platform thresholds) while sharing the
// vocabulary and feature space with the receiver. The new model must
// live in the same hashed feature space; thresholds outside (0, 1] are
// rejected. The receiver is not modified.
func (d *Detector) Retrained(task annotate.Task, m *model.LogReg, thresholds map[string]float64) (*Detector, error) {
	if m == nil {
		return nil, fmt.Errorf("core: retrained: nil model")
	}
	if m.Buckets() != d.meta.Buckets {
		return nil, fmt.Errorf("core: retrained: model buckets %d do not match detector feature space %d", m.Buckets(), d.meta.Buckets)
	}
	meta := d.meta
	meta.DoxThresholds = copyThresholds(d.meta.DoxThresholds)
	meta.CTHThresholds = copyThresholds(d.meta.CTHThresholds)
	nd := &Detector{
		tok:    d.tok,
		hasher: d.hasher,
		dox:    d.dox,
		cth:    d.cth,
		meta:   meta,
		rng:    randx.New(1).Split("detector"),
	}
	target := nd.meta.DoxThresholds
	if task == annotate.TaskCTH {
		nd.cth = m
		target = nd.meta.CTHThresholds
	} else {
		nd.dox = m
	}
	for plat, th := range thresholds {
		if th <= 0 || th > 1 {
			return nil, fmt.Errorf("core: retrained: threshold for %q out of range: %v", plat, th)
		}
		target[plat] = th
	}
	nd.initScorerPool()
	return nd, nil
}

func copyThresholds(in map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// VectorizeTask converts text into the model input vector for a task's
// span length on pooled scratch, returning an owned vector that
// outlives the scratch — the surface the retrain pipeline uses to
// build training examples in the deployed detector's feature space.
func (d *Detector) VectorizeTask(task annotate.Task, text string, rng *randx.Source) features.Vector {
	maxLen := d.meta.DoxTextLen
	if task == annotate.TaskCTH {
		maxLen = d.meta.CTHTextLen
	}
	sc := d.scorers.Get().(*scorer)
	v := d.vectorizeWith(sc, text, maxLen, rng)
	out := features.Vector{
		Indices: append([]uint32(nil), v.Indices...),
		Values:  append([]float64(nil), v.Values...),
	}
	d.scorers.Put(sc)
	return out
}

// Buckets reports the hashed feature-space size the classifiers share.
func (d *Detector) Buckets() uint32 { return d.meta.Buckets }

// TaskThresholds returns a copy of a task's per-platform thresholds.
func (d *Detector) TaskThresholds(task annotate.Task) map[string]float64 {
	if task == annotate.TaskCTH {
		return copyThresholds(d.meta.CTHThresholds)
	}
	return copyThresholds(d.meta.DoxThresholds)
}

// TaskModel returns the task's classifier (shared, read-only).
func (d *Detector) TaskModel(task annotate.Task) *model.LogReg {
	if task == annotate.TaskCTH {
		return d.cth
	}
	return d.dox
}

// Platforms lists the platforms with saved thresholds.
func (d *Detector) Platforms() []string {
	seen := map[string]bool{}
	for k := range d.meta.DoxThresholds {
		seen[k] = true
	}
	for k := range d.meta.CTHThresholds {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for _, plat := range []corpus.Platform{corpus.PlatformBoards, corpus.PlatformDiscord, corpus.PlatformTelegram, corpus.PlatformGab, corpus.PlatformPastes} {
		if seen[string(plat)] {
			out = append(out, string(plat))
		}
	}
	return out
}
