// Package store is the persistent segmented corpus store: an on-disk,
// append-only document collection that outlives the process that built
// it, so corpora are generated (or ingested) once and every downstream
// consumer streams from disk instead of regenerating from seeds.
//
// Layout: a store directory holds numbered segments, each an immutable
// pair of files — seg-NNNNNNNN.seg (length-prefixed, checksummed,
// 8-byte-aligned records; segment.go) and seg-NNNNNNNN.idx (record
// offset table plus an inverted index of roaring-style posting bitmaps,
// built at write time; index.go, bitmap.go) — plus MANIFEST.json, the
// single commit point. An append writes both segment files, then
// atomically renames a new manifest over the old one; a segment exists
// exactly when the manifest references it.
//
// Durability and recovery: a crash mid-append leaves segment files the
// manifest never committed. Open detects them (and any truncated or
// bit-flipped tail inside them, via the per-record checksums), salvages
// the intact record prefix into quarantine/<segment>.salvaged.jsonl,
// moves the torn files aside, and reports it all in the RecoveryReport
// — after which re-appending the same batch produces a store
// byte-identical to one that never crashed (the codec is
// deterministic). Committed segments are size-verified on Open and
// checksum-verified on every read; damage there is reported as a
// *CorruptError, never a silent short read.
//
// Reads go through per-segment readers bounded to the manifest's
// committed extent (reader.go): a read-only mmap where the platform has
// one, a ReadAt fallback elsewhere. Because readers never see past
// SegBytes, scans and lookups are safe concurrently with a live
// appender — the in-progress tail of the next commit is invisible.
// Scan streams in store order; ScanParallel (parallel.go) decodes
// segments concurrently and merges back to store order; Lookup* answer
// token queries from the posting bitmaps, including OR/NOT boolean
// combinations (query.go).
//
// The manifest generation counter increments on every commit; pipeline
// memoization keys incorporate it, so cached artifacts invalidate when
// segments are appended (see core.Options.StorePath).
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"harassrepro/internal/corpus"
)

const (
	manifestName  = "MANIFEST.json"
	quarantineDir = "quarantine"
	segSuffix     = ".seg"
	idxSuffix     = ".idx"

	// DefaultSegmentDocs is AppendAll's per-segment chunk size: large
	// enough that per-segment overhead vanishes, small enough that a
	// Scan never materializes more than one bounded segment at a time.
	DefaultSegmentDocs = 8192
)

// SegmentInfo is one committed segment's manifest entry. The byte
// sizes pin the exact committed extent of both files; the record count
// is what Scan verifies it decoded.
type SegmentInfo struct {
	Name     string `json:"name"`
	Docs     uint32 `json:"docs"`
	SegBytes int64  `json:"seg_bytes"`
	IdxBytes int64  `json:"idx_bytes"`
}

// manifest is the store's commit record.
type manifest struct {
	Version    int           `json:"version"`
	Generation uint64        `json:"generation"`
	Segments   []SegmentInfo `json:"segments"`
}

// TornSegment describes one quarantined (uncommitted) segment found
// during Open.
type TornSegment struct {
	// Name is the segment's base name (seg-NNNNNNNN).
	Name string
	// SalvagedDocs is how many intact records preceded the tear; their
	// decoded documents are written to quarantine/<Name>.salvaged.jsonl.
	SalvagedDocs int
	// Cause is the decode failure at the tear point (empty when the
	// file ended cleanly but was never committed).
	Cause string
	// Files lists the quarantined file names (relative to quarantine/).
	Files []string
}

// RecoveryReport summarizes what Open found and repaired.
type RecoveryReport struct {
	Torn []TornSegment
}

// CorruptError reports damage inside a committed segment — unlike a
// torn tail, this is data the manifest promised was durable.
type CorruptError struct {
	Segment string
	Offset  int64
	Err     error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: committed segment %s corrupt at byte %d: %v", e.Segment, e.Offset, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// DocRef locates one document: segment position in manifest order and
// record ordinal within it.
type DocRef struct {
	Segment int
	Ordinal uint32
}

// Store is an open corpus store. One goroutine may append at a time;
// reads (Scan, ScanParallel, Lookup*, Doc) are safe concurrently with
// each other and with the appender — a reader only ever sees segments
// the manifest had committed when the read began.
type Store struct {
	dir      string
	recovery RecoveryReport
	noMmap   bool

	// mu guards the committed view (man, indexes), the reader cache,
	// and the closed flag. Readers snapshot the slices under mu and
	// then work lock-free: Append publishes a fresh Segments slice and
	// only ever appends to indexes/readers, so a snapshot's prefix is
	// immutable.
	mu      sync.Mutex
	man     manifest
	indexes []*segIndex
	readers []*segHandle
	closed  bool
}

// OpenOptions tunes how a store is opened.
type OpenOptions struct {
	// NoMmap forces the portable ReadAt segment readers even where
	// mmap is available — the escape hatch for odd filesystems and the
	// control arm of the mmap-vs-buffered benchmarks.
	NoMmap bool
}

// Create initializes an empty store in dir (created if missing). It
// fails if dir already holds a store.
func Create(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a store", dir)
	}
	s := &Store{dir: dir, man: manifest{Version: version}}
	if err := s.commitManifest(s.man); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads the store in dir, verifying committed segments and
// quarantining any torn uncommitted ones (see RecoveryReport).
func Open(dir string) (*Store, error) {
	return OpenWith(dir, OpenOptions{})
}

// OpenWith is Open with options.
func OpenWith(dir string, opt OpenOptions) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, noMmap: opt.NoMmap}
	if err := json.Unmarshal(data, &s.man); err != nil {
		return nil, fmt.Errorf("store: %s: manifest: %w", dir, err)
	}
	if s.man.Version != version {
		return nil, fmt.Errorf("store: %s: manifest version %d, want %d", dir, s.man.Version, version)
	}
	// A stale MANIFEST.json.tmp is the residue of a commit whose rename
	// never happened; the real manifest just loaded is the truth, so
	// drop the leftover rather than letting it linger as a pseudo-file.
	if err := os.Remove(filepath.Join(dir, manifestName+".tmp")); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: %s: removing stale manifest tmp: %w", dir, err)
	}
	committed := map[string]bool{}
	for _, si := range s.man.Segments {
		committed[si.Name] = true
		if err := s.verifySegment(si); err != nil {
			return nil, err
		}
	}
	s.readers = make([]*segHandle, len(s.man.Segments))
	if err := s.quarantineOrphans(committed); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadManifest returns the store's generation and segment listing
// without verifying or loading anything — the cheap probe pipeline
// fingerprinting uses.
func ReadManifest(dir string) (generation uint64, segments []SegmentInfo, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return 0, nil, fmt.Errorf("store: %s: manifest: %w", dir, err)
	}
	return m.Generation, m.Segments, nil
}

// verifySegment checks a committed segment's files: exact sizes per
// the manifest and a checksum-valid index (which also yields the
// loaded index). Record payloads are checksum-verified on read.
func (s *Store) verifySegment(si SegmentInfo) error {
	segPath := filepath.Join(s.dir, si.Name+segSuffix)
	st, err := os.Stat(segPath)
	if err != nil {
		return &CorruptError{Segment: si.Name, Err: err}
	}
	if st.Size() != si.SegBytes {
		return &CorruptError{Segment: si.Name, Offset: min(st.Size(), si.SegBytes),
			Err: fmt.Errorf("segment file is %d bytes, manifest committed %d", st.Size(), si.SegBytes)}
	}
	idxData, err := os.ReadFile(filepath.Join(s.dir, si.Name+idxSuffix))
	if err != nil {
		return &CorruptError{Segment: si.Name, Err: err}
	}
	if int64(len(idxData)) != si.IdxBytes {
		return &CorruptError{Segment: si.Name,
			Err: fmt.Errorf("index file is %d bytes, manifest committed %d", len(idxData), si.IdxBytes)}
	}
	ix, err := decodeIndex(idxData)
	if err != nil {
		return &CorruptError{Segment: si.Name, Err: err}
	}
	if uint32(len(ix.offsets)) != si.Docs {
		return &CorruptError{Segment: si.Name,
			Err: fmt.Errorf("index holds %d records, manifest committed %d", len(ix.offsets), si.Docs)}
	}
	s.indexes = append(s.indexes, ix)
	return nil
}

// quarantineOrphans finds segment files the manifest never committed —
// the torn tail of a crashed append — salvages their intact record
// prefixes, and moves the files into quarantine/.
func (s *Store) quarantineOrphans(committed map[string]bool) error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	orphans := map[string][]string{} // base name → files
	for _, e := range entries {
		name := e.Name()
		base, ok := strings.CutSuffix(name, segSuffix)
		if !ok {
			base, ok = strings.CutSuffix(name, idxSuffix)
		}
		if !ok || committed[base] {
			continue
		}
		orphans[base] = append(orphans[base], name)
	}
	if len(orphans) == 0 {
		return nil
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	bases := make([]string, 0, len(orphans))
	for b := range orphans {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		torn := TornSegment{Name: base}
		segPath := filepath.Join(s.dir, base+segSuffix)
		if data, err := os.ReadFile(segPath); err == nil {
			docs, cause := salvageRecords(data)
			torn.SalvagedDocs = len(docs)
			if cause != nil {
				torn.Cause = cause.Error()
			}
			if len(docs) > 0 {
				f, err := os.Create(filepath.Join(qdir, base+".salvaged.jsonl"))
				if err != nil {
					return fmt.Errorf("store: quarantine: %w", err)
				}
				werr := corpus.WriteJSONL(f, docs, true)
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					return fmt.Errorf("store: quarantine: %w", werr)
				}
				torn.Files = append(torn.Files, base+".salvaged.jsonl")
			}
		}
		sort.Strings(orphans[base])
		for _, name := range orphans[base] {
			if err := os.Rename(filepath.Join(s.dir, name), filepath.Join(qdir, name)); err != nil {
				return fmt.Errorf("store: quarantine: %w", err)
			}
			torn.Files = append(torn.Files, name)
		}
		s.recovery.Torn = append(s.recovery.Torn, torn)
	}
	return nil
}

// salvageRecords decodes the intact record prefix of a torn segment
// file, returning the documents that fully landed and the decode
// failure at the tear point (nil if the file ended cleanly).
func salvageRecords(data []byte) ([]corpus.Document, error) {
	if err := checkSegHeader(data); err != nil {
		return nil, err
	}
	var docs []corpus.Document
	pos := segHeaderSz
	for pos < len(data) {
		payload, n, err := decodeRecord(data[pos:])
		if err != nil {
			return docs, fmt.Errorf("record %d at byte %d: %w", len(docs), pos, err)
		}
		d, err := decodeDoc(payload)
		if err != nil {
			return docs, fmt.Errorf("record %d at byte %d: %w", len(docs), pos, err)
		}
		docs = append(docs, d)
		pos += n
	}
	return docs, nil
}

// Recovery returns what Open salvaged and quarantined.
func (s *Store) Recovery() RecoveryReport { return s.recovery }

// Generation returns the manifest generation: it increments on every
// committed append, so it changes exactly when the store's contents do.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Generation
}

// Segments returns the committed segment listing in manifest order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.man.Segments...)
}

// Docs returns the total committed document count.
func (s *Store) Docs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, si := range s.man.Segments {
		n += int(si.Docs)
	}
	return n
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// snapshot returns the committed view at one instant: parallel slice
// prefixes of segments and their loaded indexes. The returned slices
// are never mutated (Append publishes fresh or strictly-appended
// slices), so the caller reads them without the lock.
func (s *Store) snapshot() ([]SegmentInfo, []*segIndex, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, ErrClosed
	}
	return s.man.Segments, s.indexes, nil
}

// acquireReader returns a referenced handle on segment segIdx's
// reader, opening (and caching) it on first use. The caller must
// release the handle when its last slice is dead; the mapping stays
// valid until then even if Close runs in between.
func (s *Store) acquireReader(segIdx int, si SegmentInfo) (*segHandle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if h := s.readers[segIdx]; h != nil && h.acquire() {
		return h, nil
	}
	rd, err := openSegReader(filepath.Join(s.dir, si.Name+segSuffix), si.SegBytes, s.noMmap)
	if err != nil {
		return nil, &CorruptError{Segment: si.Name, Err: err}
	}
	h := newSegHandle(rd)
	h.refs.Add(1) // the caller's reference, on top of the cache's
	s.readers[segIdx] = h
	return h, nil
}

// Close releases every cached segment reader. In-flight reads that
// already acquired a handle finish safely — the last reference out,
// theirs or ours, unmaps — and subsequent reads and appends fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	readers := s.readers
	s.readers = nil
	s.mu.Unlock()
	var first error
	for _, h := range readers {
		if h == nil {
			continue
		}
		if err := h.release(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Append commits docs as one new segment: segment and index files are
// written and synced first, then the manifest rename makes them
// durable. On any error before the rename the store is unchanged (the
// partial files are exactly what Open quarantines). Readers running
// concurrently see the new segment only after the commit publishes.
func (s *Store) Append(docs []corpus.Document) (SegmentInfo, error) {
	if len(docs) == 0 {
		return SegmentInfo{}, errors.New("store: append of zero documents")
	}
	if len(docs) > 1<<31 {
		return SegmentInfo{}, fmt.Errorf("store: append of %d documents exceeds segment capacity", len(docs))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SegmentInfo{}, ErrClosed
	}
	cur := s.man
	s.mu.Unlock()
	name := fmt.Sprintf("seg-%08d", len(cur.Segments)+1)

	ib := newIndexBuilder()
	seg := segHeader()
	var payload []byte
	for i := range docs {
		ib.add(&docs[i], uint64(len(seg)))
		payload = encodeDoc(payload[:0], &docs[i])
		seg = appendRecord(seg, payload)
	}
	idx := ib.encode()

	if err := writeFileSync(filepath.Join(s.dir, name+segSuffix), seg); err != nil {
		return SegmentInfo{}, fmt.Errorf("store: append: %w", err)
	}
	if err := writeFileSync(filepath.Join(s.dir, name+idxSuffix), idx); err != nil {
		return SegmentInfo{}, fmt.Errorf("store: append: %w", err)
	}

	si := SegmentInfo{Name: name, Docs: uint32(len(docs)), SegBytes: int64(len(seg)), IdxBytes: int64(len(idx))}
	man := cur
	man.Segments = append(append([]SegmentInfo(nil), cur.Segments...), si)
	man.Generation++
	if err := s.commitManifest(man); err != nil {
		return SegmentInfo{}, err
	}
	ix, err := decodeIndex(idx)
	if err != nil { // cannot happen: we just encoded it
		return SegmentInfo{}, fmt.Errorf("store: append: %w", err)
	}
	s.mu.Lock()
	s.man = man
	s.indexes = append(s.indexes, ix)
	s.readers = append(s.readers, nil)
	s.mu.Unlock()
	return si, nil
}

// AppendAll commits docs as a run of segments of at most perSeg
// documents each (DefaultSegmentDocs when perSeg <= 0).
func (s *Store) AppendAll(docs []corpus.Document, perSeg int) error {
	if perSeg <= 0 {
		perSeg = DefaultSegmentDocs
	}
	for len(docs) > 0 {
		n := min(perSeg, len(docs))
		if _, err := s.Append(docs[:n]); err != nil {
			return err
		}
		docs = docs[n:]
	}
	return nil
}

// WriteCorpora appends the generated corpora to s in the fixed Table 1
// emit order (boards, blogs, chat, gab, pastes), chunked into segments
// of perSeg documents. Scanning the store then yields every dataset's
// documents in exactly the order the in-memory generator produced
// them — the invariant the store-vs-memory golden equivalence rests on.
func WriteCorpora(s *Store, corpora map[corpus.Dataset]*corpus.Corpus, blogs *corpus.Corpus, perSeg int) error {
	for _, ds := range []corpus.Dataset{corpus.Boards, corpus.Blogs, corpus.Chat, corpus.Gab, corpus.Pastes} {
		c := corpora[ds]
		if ds == corpus.Blogs && blogs != nil {
			c = blogs
		}
		if c == nil || len(c.Docs) == 0 {
			continue
		}
		if err := s.AppendAll(c.Docs, perSeg); err != nil {
			return fmt.Errorf("store: writing %s: %w", ds, err)
		}
	}
	return nil
}

// commitManifest atomically replaces the manifest with man. A failed
// rename removes the temp file so no half-commit residue survives.
func (s *Store) commitManifest(man manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort; Open also sweeps stale tmps
		return fmt.Errorf("store: manifest: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir best-effort fsyncs a directory so renames are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync() //nolint:errcheck // advisory on platforms without dir fsync
		d.Close()
	}
}

// scanSegment decodes committed segment segIdx in record order,
// invoking fn per document. The read is bounded to si.SegBytes — bytes
// a live appender may have written past the committed extent are never
// seen — and the decode must consume exactly that extent, or the
// segment is reported corrupt.
func (s *Store) scanSegment(segIdx int, si SegmentInfo, fn func(d *corpus.Document, ref DocRef) error) error {
	h, err := s.acquireReader(segIdx, si)
	if err != nil {
		return err
	}
	defer h.release() //nolint:errcheck // close error surfaces on Store.Close
	data, err := h.rd.slice(0, si.SegBytes)
	if err != nil {
		return &CorruptError{Segment: si.Name, Err: err}
	}
	if err := checkSegHeader(data); err != nil {
		return &CorruptError{Segment: si.Name, Err: err}
	}
	pos := segHeaderSz
	for ord := uint32(0); ord < si.Docs; ord++ {
		payload, n, err := decodeRecord(data[pos:])
		if err != nil {
			return &CorruptError{Segment: si.Name, Offset: int64(pos), Err: err}
		}
		d, err := decodeDoc(payload)
		if err != nil {
			return &CorruptError{Segment: si.Name, Offset: int64(pos), Err: err}
		}
		pos += n
		if err := fn(&d, DocRef{Segment: segIdx, Ordinal: ord}); err != nil {
			return err
		}
	}
	if int64(pos) != si.SegBytes {
		return &CorruptError{Segment: si.Name, Offset: int64(pos),
			Err: fmt.Errorf("%d bytes beyond the last committed record", si.SegBytes-int64(pos))}
	}
	return nil
}

// Scan streams every committed document in store order (segment order,
// then record order), invoking fn with the decoded document and its
// ref. Documents are decoded lazily from each segment's reader — a
// consumer holds at most one segment in memory, never the corpus. fn
// errors abort the scan; record damage surfaces as a *CorruptError.
func (s *Store) Scan(fn func(d *corpus.Document, ref DocRef) error) error {
	segs, _, err := s.snapshot()
	if err != nil {
		return err
	}
	for segIdx, si := range segs {
		if err := s.scanSegment(segIdx, si, fn); err != nil {
			return err
		}
	}
	return nil
}

// Lookup iterates the refs of every document whose index terms include
// token (see tokenizeText for the text terms; "dataset:boards"-style
// field terms also work), in store order. fn returns false to stop.
func (s *Store) Lookup(token string, fn func(ref DocRef) bool) {
	token = NormalizeToken(token)
	_, indexes, err := s.snapshot()
	if err != nil {
		return
	}
	for segIdx, ix := range indexes {
		bm := ix.lookup(token)
		if bm == nil {
			continue
		}
		stop := false
		bm.Iterate(func(ord uint32) bool {
			if !fn(DocRef{Segment: segIdx, Ordinal: ord}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// LookupDocs is Lookup plus document fetch: fn receives each matching
// document in store order. A fetch failure is wrapped with lookup
// context but keeps its chain — errors.As still surfaces the
// *CorruptError — while an error from fn is returned unchanged.
func (s *Store) LookupDocs(token string, fn func(d *corpus.Document, ref DocRef) error) error {
	var ferr error
	s.Lookup(token, func(ref DocRef) bool {
		d, err := s.Doc(ref)
		if err != nil {
			ferr = fmt.Errorf("store: lookup %q: fetching segment %d record %d: %w", token, ref.Segment, ref.Ordinal, err)
			return false
		}
		if err := fn(&d, ref); err != nil {
			ferr = err
			return false
		}
		return true
	})
	return ferr
}

// LookupAll iterates the refs of every document whose index terms
// include every token in tokens (AND semantics), in store order. The
// intersection runs per segment over the posting bitmaps — rarest
// posting first so the working set only ever shrinks — and never
// decodes a document. Zero tokens match nothing; one token degrades to
// Lookup. fn returns false to stop.
func (s *Store) LookupAll(tokens []string, fn func(ref DocRef) bool) {
	if len(tokens) == 0 {
		return
	}
	norm := make([]string, len(tokens))
	for i, tok := range tokens {
		norm[i] = NormalizeToken(tok)
	}
	_, indexes, err := s.snapshot()
	if err != nil {
		return
	}
	for segIdx, ix := range indexes {
		postings := make([]*Bitmap, len(norm))
		missing := false
		for i, tok := range norm {
			if postings[i] = ix.lookup(tok); postings[i] == nil {
				missing = true
				break
			}
		}
		if missing {
			continue
		}
		sort.Slice(postings, func(i, j int) bool {
			return postings[i].Cardinality() < postings[j].Cardinality()
		})
		bm := postings[0]
		for _, p := range postings[1:] {
			bm = bm.And(p)
			if len(bm.containers) == 0 {
				break
			}
		}
		stop := false
		bm.Iterate(func(ord uint32) bool {
			if !fn(DocRef{Segment: segIdx, Ordinal: ord}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// LookupAllDocs is LookupAll plus document fetch: fn receives each
// document matching every token, in store order. Fetch failures are
// wrapped like LookupDocs (errors.As still finds the *CorruptError);
// fn errors come back unchanged.
func (s *Store) LookupAllDocs(tokens []string, fn func(d *corpus.Document, ref DocRef) error) error {
	var ferr error
	s.LookupAll(tokens, func(ref DocRef) bool {
		d, err := s.Doc(ref)
		if err != nil {
			ferr = fmt.Errorf("store: lookup %q: fetching segment %d record %d: %w",
				strings.Join(tokens, ","), ref.Segment, ref.Ordinal, err)
			return false
		}
		if err := fn(&d, ref); err != nil {
			ferr = err
			return false
		}
		return true
	})
	return ferr
}

// Doc random-accesses one document through the segment's offset table.
// The record bytes come straight from the segment reader (zero copies
// on the mmap path); the decoded document owns its strings, so it
// stays valid after Close.
func (s *Store) Doc(ref DocRef) (corpus.Document, error) {
	segs, indexes, err := s.snapshot()
	if err != nil {
		return corpus.Document{}, err
	}
	if ref.Segment < 0 || ref.Segment >= len(segs) {
		return corpus.Document{}, fmt.Errorf("store: no segment %d", ref.Segment)
	}
	si := segs[ref.Segment]
	ix := indexes[ref.Segment]
	if ref.Ordinal >= uint32(len(ix.offsets)) {
		return corpus.Document{}, fmt.Errorf("store: segment %s has no record %d", si.Name, ref.Ordinal)
	}
	off := int64(ix.offsets[ref.Ordinal])
	end := si.SegBytes
	if int(ref.Ordinal)+1 < len(ix.offsets) {
		end = int64(ix.offsets[ref.Ordinal+1])
	}
	if off < segHeaderSz || end <= off || end > si.SegBytes {
		return corpus.Document{}, &CorruptError{Segment: si.Name, Offset: off,
			Err: errors.New("index offset outside the committed segment")}
	}
	h, err := s.acquireReader(ref.Segment, si)
	if err != nil {
		return corpus.Document{}, err
	}
	defer h.release() //nolint:errcheck // close error surfaces on Store.Close
	buf, err := h.rd.slice(off, end-off)
	if err != nil {
		return corpus.Document{}, &CorruptError{Segment: si.Name, Offset: off, Err: err}
	}
	payload, _, err := decodeRecord(buf)
	if err != nil {
		return corpus.Document{}, &CorruptError{Segment: si.Name, Offset: off, Err: err}
	}
	d, err := decodeDoc(payload)
	if err != nil {
		return corpus.Document{}, &CorruptError{Segment: si.Name, Offset: off, Err: err}
	}
	return d, nil
}

// IsNotExist reports whether err means dir held no store.
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
