package store

import (
	"context"
	"runtime"

	"harassrepro/internal/corpus"
	"harassrepro/internal/resilience"
)

// ScanParallel is Scan with segment-level parallelism: up to workers
// segments decode concurrently on the resilience pool while fn still
// observes every document sequentially, in exact store order (segment
// order, then record order) — the byte-identical-output contract of
// Scan holds at any worker count.
//
// Failures stay isolated per segment: a corrupt segment's
// *CorruptError surfaces through the runner's quarantine (never a
// panic taking down sibling decodes), and because results merge in
// order, every document of every earlier segment is delivered to fn
// before the error returns. An error from fn cancels the remaining
// decodes and is returned unchanged.
//
// workers <= 0 means GOMAXPROCS; workers == 1 (or a single segment)
// runs the sequential path.
func (s *Store) ScanParallel(workers int, fn func(d *corpus.Document, ref DocRef) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	segs, _, err := s.snapshot()
	if err != nil {
		return err
	}
	if workers == 1 || len(segs) <= 1 {
		for segIdx, si := range segs {
			if err := s.scanSegment(segIdx, si, fn); err != nil {
				return err
			}
		}
		return nil
	}

	// One work item per segment; the decode stage materializes the
	// segment's documents and the ordered consumer below replays them
	// to fn in store order. The stage is not Transient: committed
	// corruption never heals on retry, so the first failure quarantines
	// the segment with the raw *CorruptError intact.
	type segBatch struct {
		seg  int
		docs []corpus.Document
	}
	runner := resilience.NewRunner(resilience.Config[segBatch]{
		Workers: workers,
		Ordered: true,
	}, resilience.Stage[segBatch]{
		Name: "decode-segment",
		Fn: func(_ context.Context, _ int, b *segBatch) error {
			si := segs[b.seg]
			docs := make([]corpus.Document, 0, si.Docs)
			err := s.scanSegment(b.seg, si, func(d *corpus.Document, _ DocRef) error {
				docs = append(docs, *d)
				return nil
			})
			if err != nil {
				return err
			}
			b.docs = docs
			return nil
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan segBatch)
	go func() {
		defer close(in)
		for i := range segs {
			select {
			case in <- segBatch{seg: i}:
			case <-ctx.Done():
				return
			}
		}
	}()

	var ferr error
	for res := range runner.Process(ctx, in) {
		if ferr != nil {
			continue // drain until closed; the runner requires it
		}
		if res.Status == resilience.StatusQuarantined {
			ferr = res.Dead.Err
			cancel()
			continue
		}
		b := res.Item
		for i := range b.docs {
			if err := fn(&b.docs[i], DocRef{Segment: b.seg, Ordinal: uint32(i)}); err != nil {
				ferr = err
				cancel()
				break
			}
		}
	}
	return ferr
}
