package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"harassrepro/internal/corpus"
)

// naiveAnd intersects via Contains, the trivially-correct oracle.
func naiveAnd(a, b *Bitmap) []uint32 {
	var out []uint32
	a.Iterate(func(v uint32) bool {
		if b.Contains(v) {
			out = append(out, v)
		}
		return true
	})
	return out
}

func values(b *Bitmap) []uint32 {
	var out []uint32
	b.Iterate(func(v uint32) bool {
		out = append(out, v)
		return true
	})
	return out
}

// TestBitmapAndDifferential crosses sparse (array) and dense (bitmap)
// containers in every pairing — array∩array, array∩bitmap,
// bitmap∩bitmap — plus disjoint key ranges, and checks And against the
// Contains oracle.
func TestBitmapAndDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	build := func(n int, span, offset uint32) *Bitmap {
		b := &Bitmap{}
		for i := 0; i < n; i++ {
			b.Add(offset + rng.Uint32()%span)
		}
		return b
	}
	cases := []struct {
		name string
		a, b *Bitmap
	}{
		{"array-array", build(500, 1<<17, 0), build(500, 1<<17, 0)},
		{"array-bitmap", build(500, 1<<16, 0), build(20000, 1<<16, 0)},
		{"bitmap-array", build(20000, 1<<16, 0), build(500, 1<<16, 0)},
		{"bitmap-bitmap", build(20000, 1<<16, 0), build(20000, 1<<16, 0)},
		{"disjoint-keys", build(500, 1<<16, 0), build(500, 1<<16, 1<<20)},
		{"empty-side", build(500, 1<<16, 0), &Bitmap{}},
		{"multi-container", build(3000, 1<<19, 0), build(3000, 1<<19, 1<<16)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := naiveAnd(tc.a, tc.b)
			got := values(tc.a.And(tc.b))
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("And: got %d values, want %d", len(got), len(want))
			}
			// Commutes.
			rev := values(tc.b.And(tc.a))
			if !reflect.DeepEqual(want, rev) {
				t.Fatalf("And is not commutative: %d vs %d values", len(rev), len(want))
			}
			// Operands untouched.
			if c := tc.a.Cardinality(); len(values(tc.a)) != c {
				t.Fatalf("left operand mutated")
			}
			// Result supports Contains (container invariants hold).
			res := tc.a.And(tc.b)
			for _, v := range want {
				if !res.Contains(v) {
					t.Fatalf("result missing %d", v)
				}
			}
		})
	}
	if got := values((&Bitmap{}).And(nil)); got != nil {
		t.Fatalf("nil And = %v, want empty", got)
	}
}

// TestBitmapAndDenseResultStaysDense checks the container kind of the
// intersection: two dense containers overlapping in > arrayMax values
// must stay a bitmap container; a small overlap must collapse to an
// array container.
func TestBitmapAndDenseResultStaysDense(t *testing.T) {
	a, b := &Bitmap{}, &Bitmap{}
	for v := uint32(0); v < 10000; v++ {
		a.Add(v)
		b.Add(v + 2000) // overlap [2000,10000) = 8000 > arrayMax
	}
	res := a.And(b)
	if n := res.Cardinality(); n != 8000 {
		t.Fatalf("dense overlap cardinality = %d, want 8000", n)
	}
	if res.containers[0].bits == nil {
		t.Fatal("8000-value intersection collapsed to an array container")
	}
	// Shift the overlap below the threshold: must come back as array.
	c := &Bitmap{}
	for v := uint32(9000); v < 19000; v++ {
		c.Add(v)
	}
	res = a.And(c) // overlap [9000,10000) = 1000 <= arrayMax
	if n := res.Cardinality(); n != 1000 {
		t.Fatalf("sparse overlap cardinality = %d, want 1000", n)
	}
	if res.containers[0].bits != nil {
		t.Fatal("1000-value intersection kept a bitmap container")
	}
}

// TestLookupAllMatchesNaiveScan differentially tests multi-token AND
// lookup: for token pairs and triples drawn from the corpus, LookupAll
// must return exactly the refs a full scan + retokenize finds in every
// posting list.
func TestLookupAllMatchesNaiveScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// The default testDocs text already repeats "report" and "channel"
	// everywhere, so the interesting overrides use tokens that appear
	// nowhere else.
	docs := testDocs(12, "la-")
	docs[2].Text = "flagging brigade incoming tonight"
	docs[5].Text = "brigade mustering tonight"
	docs[8].Text = "flagging the mods tonight"
	docs[9].Text = "unrelated pastoral interlude"
	if err := s.AppendAll(docs, 4); err != nil { // several segments
		t.Fatal(err)
	}

	// Oracle: per-doc token sets via scan.
	type docTokens struct {
		ref  DocRef
		toks map[string]bool
	}
	var scanned []docTokens
	if err := s.Scan(func(d *corpus.Document, ref DocRef) error {
		toks := map[string]bool{}
		indexTokens(d, func(tok string) { toks[tok] = true })
		scanned = append(scanned, docTokens{ref, toks})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	oracle := func(tokens ...string) []DocRef {
		var refs []DocRef
		for _, dt := range scanned {
			all := true
			for _, tok := range tokens {
				if !dt.toks[NormalizeToken(tok)] {
					all = false
					break
				}
			}
			if all {
				refs = append(refs, dt.ref)
			}
		}
		return refs
	}
	lookupAll := func(tokens ...string) []DocRef {
		var refs []DocRef
		s.LookupAll(tokens, func(ref DocRef) bool {
			refs = append(refs, ref)
			return true
		})
		return refs
	}

	queries := [][]string{
		{"flagging", "tonight"},            // docs 2 and 8, across segments
		{"brigade", "tonight"},             // docs 2 and 5
		{"flagging", "brigade", "tonight"}, // only doc 2
		{"TONIGHT", "Flagging"},            // case folding
		{"dataset:boards", "brigade"},      // field term AND text term
		{"channel"},                        // single token degrades to Lookup
		{"channel", "no-such-token-q9z"},   // absent token kills everything
		{"pastoral", "interlude"},
	}
	for _, q := range queries {
		want, got := oracle(q...), lookupAll(q...)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("LookupAll(%v) = %v, want %v", q, got, want)
		}
	}
	// Sanity: the interesting queries actually match something.
	if len(lookupAll("flagging", "brigade", "tonight")) != 1 {
		t.Fatal("triple-AND query should match exactly doc 2")
	}
	if len(lookupAll("flagging", "tonight")) != 2 {
		t.Fatal("flagging AND tonight should span segments")
	}

	// Zero tokens match nothing.
	s.LookupAll(nil, func(DocRef) bool {
		t.Fatal("LookupAll(nil) produced a ref")
		return false
	})
	// Early stop.
	n := 0
	s.LookupAll([]string{"channel"}, func(DocRef) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d refs, want 1", n)
	}

	// LookupAllDocs fetches the matching documents in store order.
	var ids []string
	if err := s.LookupAllDocs([]string{"flagging", "tonight"}, func(d *corpus.Document, _ DocRef) error {
		ids = append(ids, d.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{docs[2].ID, docs[8].ID}) {
		t.Fatalf("LookupAllDocs ids = %v", ids)
	}
	// Callback errors propagate.
	boom := fmt.Errorf("boom")
	if err := s.LookupAllDocs([]string{"channel"}, func(*corpus.Document, DocRef) error {
		return boom
	}); err != boom {
		t.Fatalf("LookupAllDocs error = %v, want boom", err)
	}
}
