package store

import (
	"fmt"
	"reflect"
	"testing"

	"harassrepro/internal/corpus"
)

func TestParseQuery(t *testing.T) {
	good := []struct {
		spec, rendered string
	}{
		{"mass", "mass"},
		{"mass,report", "mass,report"},
		{" mass , report ,", "mass,report"},
		{"dox|doxx", "dox|doxx"},
		{"dataset:gab,dox|doxx,-paste", "dataset:gab,dox|doxx,-paste"},
		{"Mass|RAID, report", "mass|raid,report"}, // case folds like the index
		{"mass,-paste,-email", "mass,-paste,-email"},
	}
	for _, tc := range good {
		q, err := ParseQuery(tc.spec)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", tc.spec, err)
		}
		if got := q.String(); got != tc.rendered {
			t.Fatalf("ParseQuery(%q).String() = %q, want %q", tc.spec, got, tc.rendered)
		}
	}
	bad := []string{
		"",       // no terms at all
		",, ,",   // only empty clauses
		"-paste", // pure negation matches the whole store
		"-a,-b",  // still pure negation
		"a|-b",   // negation inside an OR group
		"a| |b",  // empty OR alternative
		"mass,|", // empty alternatives
	}
	for _, spec := range bad {
		if q, err := ParseQuery(spec); err == nil {
			t.Fatalf("ParseQuery(%q) = %v, want error", spec, q)
		}
	}
}

// TestLookupQueryMatchesNaiveScan differentially tests the boolean
// query evaluator: for each query, LookupQuery must return exactly the
// refs a full scan + retokenize + literal clause evaluation finds.
func TestLookupQueryMatchesNaiveScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	docs := testDocs(12, "q-")
	docs[2].Text = "flagging brigade incoming tonight"
	docs[5].Text = "brigade mustering tonight"
	docs[8].Text = "flagging the mods tonight"
	docs[9].Text = "unrelated pastoral interlude"
	if err := s.AppendAll(docs, 4); err != nil { // several segments
		t.Fatal(err)
	}

	// Oracle: per-doc token sets via scan, then literal AND/OR/NOT.
	type docTokens struct {
		ref  DocRef
		toks map[string]bool
	}
	var scanned []docTokens
	if err := s.Scan(func(d *corpus.Document, ref DocRef) error {
		toks := map[string]bool{}
		indexTokens(d, func(tok string) { toks[tok] = true })
		scanned = append(scanned, docTokens{ref, toks})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	oracle := func(q *Query) []DocRef {
		var refs []DocRef
		for _, dt := range scanned {
			match := true
			for _, clause := range q.clauses {
				any := false
				for _, alt := range clause {
					if dt.toks[alt] {
						any = true
						break
					}
				}
				if !any {
					match = false
					break
				}
			}
			for _, tok := range q.not {
				if dt.toks[tok] {
					match = false
					break
				}
			}
			if match {
				refs = append(refs, dt.ref)
			}
		}
		return refs
	}
	lookup := func(q *Query) []DocRef {
		var refs []DocRef
		s.LookupQuery(q, func(ref DocRef) bool {
			refs = append(refs, ref)
			return true
		})
		return refs
	}

	specs := []string{
		"flagging,tonight",                // plain AND, spans segments
		"flagging|brigade",                // OR across docs
		"flagging|brigade,tonight",        // OR under AND
		"tonight,-brigade",                // NOT trims the AND result
		"channel,-tonight",                // NOT over an everywhere-token
		"dataset:boards,flagging|brigade", // field term with an OR clause
		"channel,no-such-token-q9z",       // absent AND term kills all
		"no-such-a|no-such-b,channel",     // fully-absent OR clause
		"report,-channel",                 // NOT excludes everything
		"pastoral|interlude,-flagging",
	}
	matched := 0
	for _, spec := range specs {
		q, err := ParseQuery(spec)
		if err != nil {
			t.Fatalf("ParseQuery(%q): %v", spec, err)
		}
		want, got := oracle(q), lookup(q)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("LookupQuery(%q) = %v, want %v", spec, got, want)
		}
		matched += len(want)
	}
	if matched == 0 {
		t.Fatal("no query matched anything; the differential is vacuous")
	}
	// Sanity-pin the interesting shapes.
	mustParse := func(spec string) *Query {
		q, err := ParseQuery(spec)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	if n := len(lookup(mustParse("flagging|brigade,tonight"))); n != 3 {
		t.Fatalf("OR-under-AND matched %d docs, want 3", n)
	}
	if n := len(lookup(mustParse("tonight,-brigade"))); n != 1 {
		t.Fatalf("NOT-trimmed query matched %d docs, want 1", n)
	}

	// Early stop.
	n := 0
	s.LookupQuery(mustParse("channel"), func(DocRef) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d refs, want 1", n)
	}

	// LookupQueryDocs fetches the matching documents in store order.
	var ids []string
	if err := s.LookupQueryDocs(mustParse("flagging|brigade,tonight"), func(d *corpus.Document, _ DocRef) error {
		ids = append(ids, d.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{docs[2].ID, docs[5].ID, docs[8].ID}) {
		t.Fatalf("LookupQueryDocs ids = %v", ids)
	}
	// Callback errors propagate unchanged.
	boom := fmt.Errorf("boom")
	if err := s.LookupQueryDocs(mustParse("channel"), func(*corpus.Document, DocRef) error {
		return boom
	}); err != boom {
		t.Fatalf("LookupQueryDocs error = %v, want boom", err)
	}
}
