//go:build !unix

package store

// openMmapReader on platforms without a memory-map syscall surface:
// always defer to the portable ReadAt fallback.
func openMmapReader(path string, committed int64) (segReader, error) {
	return nil, errNoMmap
}
