package store

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"sort"
	"testing"

	"harassrepro/internal/corpus"
)

// FuzzSegmentDecode throws arbitrary bytes at the record and document
// decoders. The invariants under test:
//
//   - decodeRecord/decodeDoc never panic and never read past the input
//     (the decoders are bounds-checked; any violation panics and fails
//     the fuzzer);
//   - consumed stays within the input and records report their true
//     aligned size;
//   - anything a decode accepts re-encodes to the identical bytes
//     (decode∘encode is the identity on valid inputs), so the decoder
//     accepts only the canonical serialization.
func FuzzSegmentDecode(f *testing.F) {
	// Seed with real encodings so the fuzzer starts at the format's
	// surface rather than random noise.
	for _, d := range testDocs(3, "fz-") {
		payload := encodeDoc(nil, &d)
		f.Add(appendRecord(segHeader(), payload))
		f.Add(payload)
	}
	f.Add([]byte(segMagic))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Record framing: walk records the way Scan does.
		pos := 0
		if checkSegHeader(data) == nil {
			pos = segHeaderSz
		}
		for pos < len(data) {
			payload, consumed, err := decodeRecord(data[pos:])
			if err != nil {
				break
			}
			if consumed <= 0 || consumed > len(data)-pos {
				t.Fatalf("decodeRecord consumed %d of %d bytes", consumed, len(data)-pos)
			}
			if len(payload) > consumed-recHeaderSz {
				t.Fatalf("payload %d bytes from a %d-byte record", len(payload), consumed)
			}
			// A valid record re-frames to the identical bytes.
			if refrained := appendRecord(nil, payload); !bytes.Equal(refrained, data[pos:pos+consumed]) {
				t.Fatalf("record at %d does not round-trip", pos)
			}
			pos += consumed
		}

		// Document codec: any accepted payload must round-trip exactly.
		d, err := decodeDoc(data)
		if err != nil {
			return
		}
		re := encodeDoc(nil, &d)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded doc re-encodes to %d bytes, input was %d", len(re), len(data))
		}
		d2, err := decodeDoc(re)
		if err != nil {
			t.Fatalf("re-encoded doc fails decode: %v", err)
		}
		if d.ID != d2.ID || d.Text != d2.Text ||
			!reflect.DeepEqual(d.Truth.CTHLabel.Subs(), d2.Truth.CTHLabel.Subs()) {
			t.Fatal("decode∘encode∘decode drifted")
		}
	})
}

// FuzzPostingIterator differentially tests the roaring bitmap against
// the naive oracle a posting list abstracts: a sorted, de-duplicated
// []uint32. The fuzzer drives both through the same inserts, then
// checks Iterate order, Contains, Cardinality, and that the serialized
// form round-trips bit-equal — across the array/bitmap container
// boundary (values are folded to force dense containers sometimes).
func FuzzPostingIterator(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 0, 2, 255, 255}, uint16(1))
	f.Add(bytes.Repeat([]byte{7, 3}, 400), uint16(3))
	f.Add([]byte{}, uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, span uint16) {
		// Derive inserts from the fuzz bytes. A small span folds values
		// into few containers, pushing arrays past arrayMax into bitmap
		// containers; a large span scatters across many sparse arrays.
		// Bounded so one exec stays fast and the engine explores widely.
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		vals := make([]uint32, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			v := uint32(binary.LittleEndian.Uint16(data[i:]))
			if span > 0 {
				v |= uint32(data[i]%byte(span%8+1)) << 16
			}
			vals = append(vals, v)
		}

		var bm Bitmap
		oracle := map[uint32]bool{}
		for _, v := range vals {
			bm.Add(v)
			oracle[v] = true
		}

		want := make([]uint32, 0, len(oracle))
		for v := range oracle {
			want = append(want, v)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

		var got []uint32
		bm.Iterate(func(v uint32) bool {
			got = append(got, v)
			return true
		})
		if !reflect.DeepEqual(want, got) && !(len(want) == 0 && len(got) == 0) {
			t.Fatalf("Iterate: want %d values, got %d", len(want), len(got))
		}
		if bm.Cardinality() != len(want) {
			t.Fatalf("Cardinality = %d, want %d", bm.Cardinality(), len(want))
		}
		for _, v := range vals {
			if !bm.Contains(v) {
				t.Fatalf("Contains(%d) = false after Add", v)
			}
		}
		// Early-stop contract.
		if len(want) > 1 {
			n := 0
			bm.Iterate(func(uint32) bool { n++; return n < 2 })
			if n != 2 {
				t.Fatalf("Iterate ran %d steps after stop", n)
			}
		}

		// Serialization round-trip: decode(encode(bm)) iterates
		// identically and re-encodes to the same bytes.
		enc := bm.appendTo(nil)
		dec, consumed, err := decodeBitmap(enc)
		if err != nil {
			t.Fatalf("decodeBitmap of own encoding: %v", err)
		}
		if consumed != len(enc) {
			t.Fatalf("decodeBitmap consumed %d of %d bytes", consumed, len(enc))
		}
		var got2 []uint32
		dec.Iterate(func(v uint32) bool {
			got2 = append(got2, v)
			return true
		})
		if !reflect.DeepEqual(got, got2) {
			t.Fatal("decoded bitmap iterates differently")
		}
		if re := dec.appendTo(nil); !bytes.Equal(enc, re) {
			t.Fatal("bitmap serialization does not round-trip")
		}

		// Arbitrary bytes into decodeBitmap must never panic or
		// over-read (it reports consumed <= len).
		if dm, n, err := decodeBitmap(data); err == nil {
			if n > len(data) {
				t.Fatalf("decodeBitmap consumed %d of %d", n, len(data))
			}
			if re := dm.appendTo(nil); !bytes.Equal(re, data[:n]) {
				t.Fatal("accepted non-canonical bitmap serialization")
			}
		}
	})
}

// TestSegmentWalkRoundTrip pins the encode→frame→decode path the fuzz
// seeds rely on: a segment built from known docs walks back to exactly
// those docs.
func TestSegmentWalkRoundTrip(t *testing.T) {
	docs := testDocs(4, "seed-")
	seg := segHeader()
	for i := range docs {
		seg = appendRecord(seg, encodeDoc(nil, &docs[i]))
	}
	var out []corpus.Document
	pos := segHeaderSz
	for pos < len(seg) {
		payload, n, err := decodeRecord(seg[pos:])
		if err != nil {
			t.Fatal(err)
		}
		d, err := decodeDoc(payload)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
		pos += n
	}
	if pos != len(seg) {
		t.Fatalf("walked %d of %d bytes", pos, len(seg))
	}
	docsEqual(t, docs, out)
}
