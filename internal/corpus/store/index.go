package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"harassrepro/internal/corpus"
)

// The inverted index: one sidecar .idx file per segment, built at
// write time from the exact bytes being appended. It holds the
// record-offset table (ordinal → byte offset in the .seg file, the
// random-access path Doc uses) and a sorted token table mapping each
// token to a roaring-style posting bitmap over record ordinals.
//
//	header (16 bytes): magic "HRCSIDX1" | version uint32 | docCount uint32
//	offsets:           docCount × uint64 (record header offsets)
//	tokenCount uint32
//	per token, sorted:  uvarint len | bytes | bitmap (bitmap.go framing)
//	footer:            crc32c(everything above) uint32
//
// The trailing whole-file checksum makes a torn index from a crashed
// append detectable with one read; Open quarantines the segment pair
// rather than trusting a half-written token table.

// indexTokens produces the index terms for one document: the text's
// word tokens plus dataset/platform/domain field terms (the latter make
// Lookup usable as a cheap metadata filter without a scan).
func indexTokens(d *corpus.Document, emit func(string)) {
	tokenizeText(d.Text, emit)
	emit("dataset:" + string(d.Dataset))
	emit("platform:" + string(d.Platform))
	if d.Domain != "" {
		emit("domain:" + d.Domain)
	}
}

// tokenizeText splits text into lowercase tokens: ASCII letters/digits
// fold and join, any non-ASCII byte joins as-is (UTF-8 sequences stay
// whole), everything else separates. Deterministic and allocation-light;
// this is the index's notion of a word, shared by writer and Lookup.
func tokenizeText(text string, emit func(string)) {
	start := -1
	var buf []byte
	flush := func(end int) {
		if start < 0 {
			return
		}
		buf = appendFoldedToken(buf[:0], text[start:end])
		emit(string(buf))
		start = -1
	}
	for i := 0; i < len(text); i++ {
		c := text[i]
		isTok := c >= 0x80 || c == '_' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if isTok && start < 0 {
			start = i
		} else if !isTok {
			flush(i)
		}
	}
	flush(len(text))
}

// appendFoldedToken lower-cases ASCII letters into buf.
func appendFoldedToken(buf []byte, tok string) []byte {
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf = append(buf, c)
	}
	return buf
}

// NormalizeToken canonicalizes a query term the way the index writer
// canonicalized document tokens (ASCII lower-casing).
func NormalizeToken(tok string) string {
	return string(appendFoldedToken(nil, tok))
}

// segIndex is one segment's loaded index.
type segIndex struct {
	offsets []uint64 // record ordinal → byte offset of record header
	tokens  []string // sorted
	posting []*Bitmap
}

// lookup returns the posting bitmap for a (normalized) token.
func (ix *segIndex) lookup(tok string) *Bitmap {
	i := sort.SearchStrings(ix.tokens, tok)
	if i < len(ix.tokens) && ix.tokens[i] == tok {
		return ix.posting[i]
	}
	return nil
}

// indexBuilder accumulates postings while a segment is written.
type indexBuilder struct {
	offsets []uint64
	posting map[string]*Bitmap
	scratch map[string]bool
}

func newIndexBuilder() *indexBuilder {
	return &indexBuilder{posting: map[string]*Bitmap{}, scratch: map[string]bool{}}
}

// add indexes one document at the given record offset.
func (ib *indexBuilder) add(d *corpus.Document, offset uint64) {
	ordinal := uint32(len(ib.offsets))
	ib.offsets = append(ib.offsets, offset)
	// Dedupe per document so each token is added once per ordinal.
	for t := range ib.scratch {
		delete(ib.scratch, t)
	}
	indexTokens(d, func(tok string) { ib.scratch[tok] = true })
	for tok := range ib.scratch {
		bm := ib.posting[tok]
		if bm == nil {
			bm = &Bitmap{}
			ib.posting[tok] = bm
		}
		bm.Add(ordinal)
	}
}

// encode renders the complete .idx file contents.
func (ib *indexBuilder) encode() []byte {
	buf := make([]byte, 0, 16+8*len(ib.offsets))
	buf = append(buf, idxMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ib.offsets)))
	for _, off := range ib.offsets {
		buf = binary.LittleEndian.AppendUint64(buf, off)
	}
	tokens := make([]string, 0, len(ib.posting))
	for tok := range ib.posting {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tokens)))
	for _, tok := range tokens {
		buf = binary.AppendUvarint(buf, uint64(len(tok)))
		buf = append(buf, tok...)
		buf = ib.posting[tok].appendTo(buf)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// decodeIndex parses and verifies a complete .idx file.
func decodeIndex(b []byte) (*segIndex, error) {
	if len(b) < 16+4 {
		return nil, fmt.Errorf("store: index file truncated (%d bytes)", len(b))
	}
	body, foot := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, castagnoli) != foot {
		return nil, fmt.Errorf("store: index checksum mismatch")
	}
	if string(body[:8]) != idxMagic {
		return nil, fmt.Errorf("store: bad index magic")
	}
	if v := binary.LittleEndian.Uint32(body[8:]); v != version {
		return nil, fmt.Errorf("store: index version %d, want %d", v, version)
	}
	docs := int(binary.LittleEndian.Uint32(body[12:]))
	pos := 16
	if len(body)-pos < 8*docs {
		return nil, fmt.Errorf("store: index offset table truncated")
	}
	ix := &segIndex{offsets: make([]uint64, docs)}
	for i := range ix.offsets {
		ix.offsets[i] = binary.LittleEndian.Uint64(body[pos+8*i:])
	}
	pos += 8 * docs
	if len(body)-pos < 4 {
		return nil, fmt.Errorf("store: index token count truncated")
	}
	nTok := int(binary.LittleEndian.Uint32(body[pos:]))
	pos += 4
	ix.tokens = make([]string, 0, min(nTok, len(body)-pos))
	ix.posting = make([]*Bitmap, 0, cap(ix.tokens))
	for i := 0; i < nTok; i++ {
		n, sz := binary.Uvarint(body[pos:])
		if sz <= 0 || n > uint64(len(body)-pos-sz) {
			return nil, fmt.Errorf("store: index token %d truncated", i)
		}
		pos += sz
		tok := string(body[pos : pos+int(n)])
		pos += int(n)
		if i > 0 && tok <= ix.tokens[i-1] {
			return nil, fmt.Errorf("store: index tokens out of order")
		}
		bm, consumed, err := decodeBitmap(body[pos:])
		if err != nil {
			return nil, fmt.Errorf("store: index token %q: %w", tok, err)
		}
		pos += consumed
		ix.tokens = append(ix.tokens, tok)
		ix.posting = append(ix.posting, bm)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("store: %d trailing index bytes", len(body)-pos)
	}
	return ix, nil
}
