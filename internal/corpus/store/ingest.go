package store

import (
	"io"

	"harassrepro/internal/corpus"
)

// IngestJSONL appends external JSONL documents to the store, reading
// leniently: malformed and oversized lines are quarantined as
// corpus.LineErrors — each carrying the line number and byte offset of
// the damage — while every well-formed document is committed. added is
// the number of documents appended; err is non-nil only for input I/O
// or store write failures (in which case nothing from this call was
// committed beyond the segments already appended).
func IngestJSONL(s *Store, r io.Reader, perSeg int) (added int, bad []corpus.LineError, err error) {
	docs, bad, err := corpus.ReadJSONLLenient(r)
	if err != nil {
		return 0, bad, err
	}
	if len(docs) == 0 {
		return 0, bad, nil
	}
	if err := s.AppendAll(docs, perSeg); err != nil {
		return 0, bad, err
	}
	return len(docs), bad, nil
}
