package store

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"harassrepro/internal/corpus"
	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/taxonomy"
)

// testDocs returns a small deterministic batch exercising every field,
// including ground truth.
func testDocs(n int, prefix string) []corpus.Document {
	docs := make([]corpus.Document, n)
	for i := range docs {
		docs[i] = corpus.Document{
			ID:          prefix + string(rune('a'+i%26)),
			Dataset:     corpus.Boards,
			Platform:    corpus.PlatformBoards,
			Domain:      "board-01.example",
			ThreadID:    "t-1",
			PosInThread: i,
			ThreadSize:  n,
			Author:      "anon123",
			Date:        "2020-08-01",
			Text:        "we should Mass-Report his channel, спасибо #42",
		}
		if i%3 == 0 {
			docs[i].Truth = corpus.GroundTruth{
				IsCTH:        true,
				CTHLabel:     taxonomy.NewLabel(taxonomy.SubDoxing, taxonomy.SubRaiding),
				TargetID:     i,
				TargetGender: gender.Female,
			}
		}
		if i%4 == 0 {
			docs[i].Truth.IsDox = true
			docs[i].Truth.DoxPII = []pii.Type{pii.Phone, pii.Email}
		}
	}
	return docs
}

// docsEqual compares documents including ground truth. Labels compare
// by canonical sub list, since Label holds an unexported map.
func docsEqual(t *testing.T, want, got []corpus.Document) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("doc count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if !reflect.DeepEqual(w.Truth.CTHLabel.Subs(), g.Truth.CTHLabel.Subs()) {
			t.Fatalf("doc %d: label want %v, got %v", i, w.Truth.CTHLabel.Subs(), g.Truth.CTHLabel.Subs())
		}
		w.Truth.CTHLabel, g.Truth.CTHLabel = taxonomy.Label{}, taxonomy.Label{}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("doc %d:\nwant %+v\ngot  %+v", i, w, g)
		}
	}
}

func scanAll(t *testing.T, s *Store) []corpus.Document {
	t.Helper()
	var out []corpus.Document
	if err := s.Scan(func(d *corpus.Document, _ DocRef) error {
		out = append(out, *d)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := testDocs(7, "b1-")
	batch2 := testDocs(5, "b2-")
	if _, err := s.Append(batch1); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("generation after first append = %d", g)
	}
	if _, err := s.Append(batch2); err != nil {
		t.Fatal(err)
	}
	want := append(append([]corpus.Document(nil), batch1...), batch2...)
	docsEqual(t, want, scanAll(t, s))

	// Reopen: same contents, same generation, no recovery events.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if g := r.Generation(); g != 2 {
		t.Fatalf("generation after reopen = %d", g)
	}
	if len(r.Recovery().Torn) != 0 {
		t.Fatalf("unexpected recovery: %+v", r.Recovery())
	}
	docsEqual(t, want, scanAll(t, r))
	if r.Docs() != len(want) {
		t.Fatalf("Docs() = %d, want %d", r.Docs(), len(want))
	}
}

func TestStoreDocRandomAccess(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	docs := testDocs(9, "ra-")
	if err := s.AppendAll(docs, 4); err != nil { // 3 segments: 4+4+1
		t.Fatal(err)
	}
	if got := len(s.Segments()); got != 3 {
		t.Fatalf("segments = %d, want 3", got)
	}
	var refs []DocRef
	if err := s.Scan(func(_ *corpus.Document, ref DocRef) error {
		refs = append(refs, ref)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ref := range refs {
		d, err := s.Doc(ref)
		if err != nil {
			t.Fatalf("Doc(%+v): %v", ref, err)
		}
		if d.ID != docs[i].ID {
			t.Fatalf("Doc(%+v).ID = %q, want %q", ref, d.ID, docs[i].ID)
		}
	}
	if _, err := s.Doc(DocRef{Segment: 99}); err == nil {
		t.Fatal("out-of-range segment succeeded")
	}
	if _, err := s.Doc(DocRef{Segment: 0, Ordinal: 99}); err == nil {
		t.Fatal("out-of-range ordinal succeeded")
	}
}

// TestLookupMatchesNaiveScan differentially tests the inverted index:
// for every token of every document, Lookup must return exactly the
// refs a full scan + retokenize finds.
func TestLookupMatchesNaiveScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	docs := testDocs(10, "lk-")
	docs[2].Text = "totally unique pangram xylophone"
	docs[7].Text = "xylophone duet tonight"
	if err := s.AppendAll(docs, 3); err != nil {
		t.Fatal(err)
	}

	// Oracle: token → refs via scan.
	oracle := map[string][]DocRef{}
	if err := s.Scan(func(d *corpus.Document, ref DocRef) error {
		seen := map[string]bool{}
		indexTokens(d, func(tok string) {
			if !seen[tok] {
				seen[tok] = true
				oracle[tok] = append(oracle[tok], ref)
			}
		})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(oracle) == 0 {
		t.Fatal("oracle found no tokens")
	}
	for tok, want := range oracle {
		var got []DocRef
		s.Lookup(tok, func(ref DocRef) bool {
			got = append(got, ref)
			return true
		})
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("Lookup(%q) = %v, want %v", tok, got, want)
		}
	}
	// Case folding: queries arrive in any case.
	var upper, lower int
	s.Lookup("XYLOPHONE", func(DocRef) bool { upper++; return true })
	s.Lookup("xylophone", func(DocRef) bool { lower++; return true })
	if upper != 2 || lower != 2 {
		t.Fatalf("xylophone lookups = %d/%d, want 2/2", upper, lower)
	}
	// Absent token.
	s.Lookup("definitely-not-a-token-q9z", func(DocRef) bool {
		t.Fatal("absent token produced a ref")
		return false
	})
	// LookupDocs fetches the right documents.
	var ids []string
	if err := s.LookupDocs("xylophone", func(d *corpus.Document, _ DocRef) error {
		ids = append(ids, d.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{docs[2].ID, docs[7].ID}) {
		t.Fatalf("LookupDocs ids = %v", ids)
	}
}

func TestFieldTermLookup(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	docs := testDocs(6, "ft-")
	docs[3].Platform = corpus.PlatformGab
	docs[3].Dataset = corpus.Gab
	if err := s.AppendAll(docs, 0); err != nil {
		t.Fatal(err)
	}
	n := 0
	s.Lookup("platform:gab", func(ref DocRef) bool { n++; return true })
	if n != 1 {
		t.Fatalf("platform:gab matches = %d, want 1", n)
	}
	n = 0
	s.Lookup("dataset:boards", func(ref DocRef) bool { n++; return true })
	if n != 5 {
		t.Fatalf("dataset:boards matches = %d, want 5", n)
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir); err == nil {
		t.Fatal("second Create succeeded")
	}
}

func TestOpenMissingStore(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "nope"))
	if err == nil || !IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

func TestReadManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testDocs(3, "rm-")); err != nil {
		t.Fatal(err)
	}
	gen, segs, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || len(segs) != 1 || segs[0].Docs != 3 {
		t.Fatalf("ReadManifest = gen %d, segs %+v", gen, segs)
	}
}

func TestIngestJSONL(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	in := `{"text":"first ingested doc","platform":"gab"}` + "\n" +
		`{broken json` + "\n" +
		`{"text":"second ingested doc"}` + "\n"
	added, bad, err := IngestJSONL(s, strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	if len(bad) != 1 || bad[0].Line != 2 || bad[0].Offset != 47 {
		t.Fatalf("bad = %+v, want line 2 at byte 47", bad)
	}
	got := scanAll(t, s)
	if len(got) != 2 || got[0].Text != "first ingested doc" {
		t.Fatalf("store holds %+v", got)
	}
	// Ingested docs are indexed like generated ones.
	n := 0
	s.Lookup("ingested", func(DocRef) bool { n++; return true })
	if n != 2 {
		t.Fatalf("ingested token matches = %d, want 2", n)
	}
}

// TestAppendDeterminism pins the byte-identity property everything
// else builds on: the same documents appended the same way produce
// identical files.
func TestAppendDeterminism(t *testing.T) {
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		s, err := Create(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AppendAll(testDocs(11, "det-"), 4); err != nil {
			t.Fatal(err)
		}
	}
	compareStoreDirs(t, dirs[0], dirs[1])
}
