//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapReader maps the committed extent of a segment file read-only.
// slice returns views straight into the mapping — zero copies between
// the page cache and the decoder. The fd is closed immediately after
// mapping (the mapping outlives it); close munmaps.
type mmapReader struct {
	data []byte
}

// openMmapReader maps exactly committed bytes of path. The file may be
// longer on disk (an in-progress append tail); those bytes are simply
// not mapped. Mapping failures that look environmental (a filesystem
// without mmap) report errNoMmap so the caller falls back.
func openMmapReader(path string, committed int64) (segReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < committed {
		return nil, fmt.Errorf("segment file is %d bytes, manifest committed %d", st.Size(), committed)
	}
	if committed <= 0 || committed > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("cannot map %d bytes", committed)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(committed), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errNoMmap, err)
	}
	return &mmapReader{data: data}, nil
}

func (r *mmapReader) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(r.data)) {
		return nil, fmt.Errorf("read [%d,%d) outside the committed %d bytes", off, off+n, len(r.data))
	}
	return r.data[off : off+n : off+n], nil
}

func (r *mmapReader) close() error {
	openReaderCount.Add(-1)
	data := r.data
	r.data = nil
	return syscall.Munmap(data)
}
