package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"harassrepro/internal/corpus"
)

// openArms runs f once per reader implementation: the default (mmap
// where the platform has one) and the forced ReadAt fallback. Every
// read-path property must hold identically on both.
func openArms(t *testing.T, f func(t *testing.T, opt OpenOptions)) {
	t.Helper()
	for _, arm := range []struct {
		name string
		opt  OpenOptions
	}{
		{"default", OpenOptions{}},
		{"nommap", OpenOptions{NoMmap: true}},
	} {
		t.Run(arm.name, func(t *testing.T) { f(t, arm.opt) })
	}
}

// TestScanParallelMatchesScan is the store-order contract: at any
// worker count, on either reader implementation, ScanParallel delivers
// exactly the documents and refs the sequential Scan does, in the same
// order.
func TestScanParallelMatchesScan(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(53, "sp-")
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(docs, 7); err != nil { // 8 segments: 7×7+4
		t.Fatal(err)
	}
	s.Close()

	type step struct {
		d   corpus.Document
		ref DocRef
	}
	collect := func(t *testing.T, scan func(func(*corpus.Document, DocRef) error) error) []step {
		t.Helper()
		var out []step
		if err := scan(func(d *corpus.Document, ref DocRef) error {
			out = append(out, step{*d, ref})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}

	openArms(t, func(t *testing.T, opt OpenOptions) {
		r, err := OpenWith(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		want := collect(t, r.Scan)
		if len(want) != len(docs) {
			t.Fatalf("sequential scan saw %d docs, want %d", len(want), len(docs))
		}
		for _, workers := range []int{1, 4, 16} {
			got := collect(t, func(fn func(*corpus.Document, DocRef) error) error {
				return r.ScanParallel(workers, fn)
			})
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d docs, want %d", workers, len(got), len(want))
			}
			for i := range want {
				if got[i].ref != want[i].ref {
					t.Fatalf("workers=%d: ref[%d] = %+v, want %+v", workers, i, got[i].ref, want[i].ref)
				}
			}
			wd := make([]corpus.Document, len(want))
			gd := make([]corpus.Document, len(got))
			for i := range want {
				wd[i], gd[i] = want[i].d, got[i].d
			}
			docsEqual(t, wd, gd)
		}
	})
}

// TestScanParallelCorruptSegmentIsolated: a corrupt segment fails its
// own decode, but every document of every earlier segment is still
// delivered — in order — before the *CorruptError surfaces.
func TestScanParallelCorruptSegmentIsolated(t *testing.T) {
	dir := t.TempDir()
	batches := [][]corpus.Document{
		testDocs(4, "a-"), testDocs(4, "b-"), testDocs(4, "c-"), testDocs(4, "d-"),
	}
	buildStore(t, dir, batches...).Close()
	// Flip a byte mid-segment-3; sizes still match, so damage surfaces
	// on read, not on Open.
	path := filepath.Join(dir, "seg-00000003"+segSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got []string
	err = s.ScanParallel(4, func(d *corpus.Document, _ DocRef) error {
		got = append(got, d.ID)
		return nil
	})
	var ce *CorruptError
	if err == nil || !errors.As(err, &ce) || ce.Segment != "seg-00000003" {
		t.Fatalf("scan err = %v, want CorruptError in seg-00000003", err)
	}
	var want []string
	for _, d := range append(append([]corpus.Document(nil), batches[0]...), batches[1]...) {
		want = append(want, d.ID)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("delivered %d docs before the error, want the full first two segments (%d)", len(got), len(want))
	}
}

// TestScanParallelFnErrorStopsEarly: an fn error comes back unchanged
// and the documents delivered before it are a store-order prefix.
func TestScanParallelFnErrorStopsEarly(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(20, "fe-")
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendAll(docs, 4); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	err = s.ScanParallel(4, func(d *corpus.Document, _ DocRef) error {
		if d.ID != docs[n].ID {
			t.Fatalf("doc %d = %q, want %q", n, d.ID, docs[n].ID)
		}
		n++
		if n == 7 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom unchanged", err)
	}
	if n != 7 {
		t.Fatalf("fn ran %d times after its error, want 7", n)
	}
}

// TestScanIgnoresUncommittedTail is the torn-tail regression: bytes
// past the manifest's committed SegBytes — the in-progress tail of a
// crashed or concurrent append — must be invisible to every read path,
// never a decode input and never a spurious "trailing bytes" corrupt
// error.
func TestScanIgnoresUncommittedTail(t *testing.T) {
	openArms(t, func(t *testing.T, opt OpenOptions) {
		dir := t.TempDir()
		docs := testDocs(9, "tail-")
		s0, err := Create(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := s0.AppendAll(docs, 4); err != nil { // 3 segments
			t.Fatal(err)
		}
		s0.Close()

		s, err := OpenWith(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Grow the last segment past its committed extent before any
		// reader opens, the way a live appender's in-flight write would.
		f, err := os.OpenFile(filepath.Join(dir, "seg-00000003"+segSuffix), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(make([]byte, 123)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		docsEqual(t, docs, scanAll(t, s))
		var par []corpus.Document
		if err := s.ScanParallel(4, func(d *corpus.Document, _ DocRef) error {
			par = append(par, *d)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		docsEqual(t, docs, par)
		d, err := s.Doc(DocRef{Segment: 2, Ordinal: 0})
		if err != nil {
			t.Fatal(err)
		}
		if d.ID != docs[8].ID {
			t.Fatalf("Doc = %q, want %q", d.ID, docs[8].ID)
		}
	})
}

// scanWhileAppend is the shared body of the append-while-scan race
// tests: readers scan (sequentially or in parallel) while an appender
// commits batches, and every scan must observe an exact committed
// prefix — full batches, in order, no torn reads.
func scanWhileAppend(t *testing.T, workers int) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const batch = 4
	all := testDocs(12*batch, "wa-")
	if _, err := s.Append(all[:batch]); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var fails []string
	report := func(format string, args ...any) {
		mu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := batch; off < len(all); off += batch {
			if _, err := s.Append(all[off : off+batch]); err != nil {
				report("append at %d: %v", off, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				n := 0
				err := s.ScanParallel(workers, func(d *corpus.Document, _ DocRef) error {
					if n < len(all) && d.ID != all[n].ID {
						return fmt.Errorf("doc %d = %q, want %q", n, d.ID, all[n].ID)
					}
					n++
					return nil
				})
				if err != nil {
					report("scan: %v", err)
					return
				}
				if n%batch != 0 || n == 0 || n > len(all) {
					report("scan saw %d docs, not a committed batch multiple", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, f := range fails {
		t.Error(f)
	}
	docsEqual(t, all, scanAll(t, s))
}

func TestScanWhileAppend(t *testing.T)         { scanWhileAppend(t, 1) }
func TestScanParallelWhileAppend(t *testing.T) { scanWhileAppend(t, 16) }

// TestDocConcurrentWithClose: readers hammering Doc while Close runs
// must never observe a use-after-unmap, a torn read, or anything but a
// clean document or ErrClosed — and when the dust settles every reader
// handle (mapping or fd) must be released.
func TestDocConcurrentWithClose(t *testing.T) {
	before := openReaderCount.Load()
	dir := t.TempDir()
	docs := testDocs(12, "cl-")
	s0, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s0.AppendAll(docs, 3); err != nil { // 4 segments
		t.Fatal(err)
	}
	s0.Close()

	openArms(t, func(t *testing.T, opt OpenOptions) {
		s, err := OpenWith(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		var refs []DocRef
		if err := s.Scan(func(_ *corpus.Document, ref DocRef) error {
			refs = append(refs, ref)
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		var fails []string
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 300; i++ {
					ref := refs[(g*31+i)%len(refs)]
					d, err := s.Doc(ref)
					switch {
					case err == nil:
						if d.ID == "" {
							mu.Lock()
							fails = append(fails, "Doc returned an empty document")
							mu.Unlock()
						}
					case errors.Is(err, ErrClosed):
						// expected once Close lands
					default:
						mu.Lock()
						fails = append(fails, fmt.Sprintf("Doc(%+v): %v", ref, err))
						mu.Unlock()
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := s.Close(); err != nil {
				mu.Lock()
				fails = append(fails, fmt.Sprintf("Close: %v", err))
				mu.Unlock()
			}
		}()
		close(start)
		wg.Wait()
		for _, f := range fails {
			t.Error(f)
		}

		// The store is down: every read path reports ErrClosed.
		if _, err := s.Doc(refs[0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("Doc after Close = %v, want ErrClosed", err)
		}
		if err := s.Scan(func(*corpus.Document, DocRef) error { return nil }); !errors.Is(err, ErrClosed) {
			t.Fatalf("Scan after Close = %v, want ErrClosed", err)
		}
		if err := s.ScanParallel(4, func(*corpus.Document, DocRef) error { return nil }); !errors.Is(err, ErrClosed) {
			t.Fatalf("ScanParallel after Close = %v, want ErrClosed", err)
		}
		if _, err := s.Append(docs[:1]); !errors.Is(err, ErrClosed) {
			t.Fatalf("Append after Close = %v, want ErrClosed", err)
		}
		// No leaked mappings or file handles.
		if got := openReaderCount.Load(); got != before {
			t.Fatalf("open reader count = %d, want %d (leak)", got, before)
		}
	})
}

// TestCommitManifestCleansTmpOnRenameFailure: a commit whose rename
// fails must not orphan MANIFEST.json.tmp (which a later Open would
// otherwise trip over or a backup tool would copy as half a manifest).
func TestCommitManifestCleansTmpOnRenameFailure(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Make the rename target un-renameable: a non-empty directory in the
	// manifest's place fails rename(2) with EISDIR on every platform.
	mpath := filepath.Join(dir, manifestName)
	if err := os.Remove(mpath); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(mpath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mpath, "occupied"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(testDocs(2, "mf-")); err == nil {
		t.Fatal("append committed over an un-renameable manifest")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("manifest tmp left behind after failed rename: stat = %v", err)
	}
}

// TestOpenRemovesStaleManifestTmp: a MANIFEST.json.tmp left by a crash
// between tmp write and rename is residue, not state — Open drops it
// and serves the real manifest.
func TestOpenRemovesStaleManifestTmp(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(3, "st-")
	buildStore(t, dir, docs).Close()
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(`{"version":1,"generation":`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale manifest tmp survived Open: stat = %v", err)
	}
	docsEqual(t, docs, scanAll(t, s))
}

// TestLookupDocsCorruptionKeepsChain: a fetch failure inside a lookup
// is wrapped with query context, but errors.As must still reach the
// *CorruptError underneath — and an error from the consumer fn must
// come back unchanged, never wrapped as corruption.
func TestLookupDocsCorruptionKeepsChain(t *testing.T) {
	dir := t.TempDir()
	docs := testDocs(6, "ce-")
	buildStore(t, dir, docs).Close()
	path := filepath.Join(dir, "seg-00000001"+segSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir) // sizes still match: damage surfaces on read
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// "report" and "channel" appear in every testDocs document, so each
	// lookup walks into the flipped record.
	checkCorrupt := func(name string, err error) {
		t.Helper()
		var ce *CorruptError
		if err == nil || !errors.As(err, &ce) {
			t.Fatalf("%s error = %v, want a wrapped *CorruptError", name, err)
		}
		if ce.Segment != "seg-00000001" {
			t.Fatalf("%s CorruptError.Segment = %q", name, ce.Segment)
		}
	}
	noop := func(*corpus.Document, DocRef) error { return nil }
	checkCorrupt("LookupDocs", s.LookupDocs("report", noop))
	checkCorrupt("LookupAllDocs", s.LookupAllDocs([]string{"report", "channel"}, noop))
	q, err := ParseQuery("report|channel,-no-such-token")
	if err != nil {
		t.Fatal(err)
	}
	checkCorrupt("LookupQueryDocs", s.LookupQueryDocs(q, noop))

	// Consumer errors pass through untouched on a healthy store.
	clean := t.TempDir()
	buildStore(t, clean, docs).Close()
	cs, err := Open(clean)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	boom := errors.New("boom")
	fail := func(*corpus.Document, DocRef) error { return boom }
	if err := cs.LookupDocs("report", fail); err != boom {
		t.Fatalf("LookupDocs fn error = %v, want boom unchanged", err)
	}
	if err := cs.LookupQueryDocs(q, fail); err != boom {
		t.Fatalf("LookupQueryDocs fn error = %v, want boom unchanged", err)
	}
}
