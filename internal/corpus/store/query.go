package store

import (
	"fmt"
	"sort"
	"strings"

	"harassrepro/internal/corpus"
)

// Query is a parsed boolean token query over the inverted index.
//
// The surface syntax (shared by the cthdetect/piiscan -token flags):
// comma-separated clauses are ANDed; within a clause, |-separated
// alternatives are ORed; a clause of the form -term excludes documents
// whose terms include term. So
//
//	dataset:gab,dox|doxx,-paste
//
// matches gab documents containing "dox" or "doxx" but not "paste".
// At least one positive clause is required (pure negation would match
// the whole store), and negation inside an OR group is rejected.
type Query struct {
	clauses [][]string // ANDed; each inner slice is OR alternatives
	not     []string   // excluded terms
}

// ParseQuery parses the boolean query syntax above. Terms are
// normalized the same way the index normalizes them (NormalizeToken),
// so dataset:/platform:/domain: field terms work in any clause.
func ParseQuery(spec string) (*Query, error) {
	q := &Query{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if alts := strings.Split(part, "|"); len(alts) > 1 {
			clause := make([]string, 0, len(alts))
			for _, alt := range alts {
				alt = strings.TrimSpace(alt)
				if alt == "" {
					return nil, fmt.Errorf("store: query %q: empty alternative in %q", spec, part)
				}
				if strings.HasPrefix(alt, "-") {
					return nil, fmt.Errorf("store: query %q: negation %q not allowed inside an OR group", spec, alt)
				}
				clause = append(clause, NormalizeToken(alt))
			}
			q.clauses = append(q.clauses, clause)
			continue
		}
		if rest, ok := strings.CutPrefix(part, "-"); ok {
			rest = strings.TrimSpace(rest)
			if rest == "" {
				return nil, fmt.Errorf("store: query %q: empty negation", spec)
			}
			q.not = append(q.not, NormalizeToken(rest))
			continue
		}
		q.clauses = append(q.clauses, []string{NormalizeToken(part)})
	}
	if len(q.clauses) == 0 {
		return nil, fmt.Errorf("store: query %q needs at least one positive term", spec)
	}
	return q, nil
}

// String renders the query back in its surface syntax.
func (q *Query) String() string {
	var parts []string
	for _, clause := range q.clauses {
		parts = append(parts, strings.Join(clause, "|"))
	}
	for _, tok := range q.not {
		parts = append(parts, "-"+tok)
	}
	return strings.Join(parts, ",")
}

// eval resolves the query against one segment's index, returning the
// matching ordinals (nil when nothing matches). Clause unions build
// with Bitmap.Or, the cross-clause intersection runs rarest-first like
// LookupAll, and negations subtract last with Bitmap.AndNot — all
// pure bitmap algebra, no documents decoded.
func (q *Query) eval(ix *segIndex) *Bitmap {
	clauseBMs := make([]*Bitmap, len(q.clauses))
	for i, clause := range q.clauses {
		var bm *Bitmap
		for _, tok := range clause {
			p := ix.lookup(tok)
			if p == nil {
				continue
			}
			if bm == nil && len(clause) == 1 {
				bm = p // single-alternative clause: no union needed
			} else {
				bm = bm.Or(p)
			}
		}
		if bm == nil || len(bm.containers) == 0 {
			return nil
		}
		clauseBMs[i] = bm
	}
	sort.Slice(clauseBMs, func(i, j int) bool {
		return clauseBMs[i].Cardinality() < clauseBMs[j].Cardinality()
	})
	out := clauseBMs[0]
	for _, bm := range clauseBMs[1:] {
		out = out.And(bm)
		if len(out.containers) == 0 {
			return nil
		}
	}
	for _, tok := range q.not {
		if p := ix.lookup(tok); p != nil {
			out = out.AndNot(p)
			if len(out.containers) == 0 {
				return nil
			}
		}
	}
	return out
}

// LookupQuery iterates the refs of every document matching q, in store
// order. fn returns false to stop.
func (s *Store) LookupQuery(q *Query, fn func(ref DocRef) bool) {
	_, indexes, err := s.snapshot()
	if err != nil {
		return
	}
	for segIdx, ix := range indexes {
		bm := q.eval(ix)
		if bm == nil {
			continue
		}
		stop := false
		bm.Iterate(func(ord uint32) bool {
			if !fn(DocRef{Segment: segIdx, Ordinal: ord}) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// LookupQueryDocs is LookupQuery plus document fetch, with the same
// error contract as LookupDocs: fetch failures are wrapped but keep
// their chain (errors.As finds the *CorruptError), fn errors return
// unchanged.
func (s *Store) LookupQueryDocs(q *Query, fn func(d *corpus.Document, ref DocRef) error) error {
	var ferr error
	s.LookupQuery(q, func(ref DocRef) bool {
		d, err := s.Doc(ref)
		if err != nil {
			ferr = fmt.Errorf("store: query %s: fetching segment %d record %d: %w", q, ref.Segment, ref.Ordinal, err)
			return false
		}
		if err := fn(&d, ref); err != nil {
			ferr = err
			return false
		}
		return true
	})
	return ferr
}
