package store

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Bitmap is a roaring-style compressed bitmap over uint32 document
// ordinals: values are partitioned by their high 16 bits into
// containers, each either a sorted uint16 array (sparse) or a 64Ki-bit
// bitmap (dense). Posting lists are Bitmaps, one per (token, segment).
//
// The zero value is an empty bitmap. Not safe for concurrent mutation;
// read-side methods are safe once the bitmap is built.
type Bitmap struct {
	containers []container
}

// arrayMax is the cardinality above which an array container converts
// to a bitmap container (the classic roaring threshold: 4096 uint16s =
// 8 KiB, the size of a full bitmap container).
const arrayMax = 4096

const bitmapWords = 1 << 16 / 64

type container struct {
	key   uint16 // high 16 bits of the values held
	array []uint16
	bits  []uint64 // non-nil for a bitmap container
	n     int      // cardinality (bitmap containers)
}

// find returns the index of the container for key, or the insertion
// point with ok=false.
func (b *Bitmap) find(key uint16) (int, bool) {
	i := sort.Search(len(b.containers), func(i int) bool { return b.containers[i].key >= key })
	return i, i < len(b.containers) && b.containers[i].key == key
}

// Add inserts v. Adds need not be ordered; duplicates are no-ops.
func (b *Bitmap) Add(v uint32) {
	key, low := uint16(v>>16), uint16(v)
	i, ok := b.find(key)
	if !ok {
		b.containers = append(b.containers, container{})
		copy(b.containers[i+1:], b.containers[i:])
		b.containers[i] = container{key: key}
	}
	c := &b.containers[i]
	if c.bits != nil {
		w, m := low/64, uint64(1)<<(low%64)
		if c.bits[w]&m == 0 {
			c.bits[w] |= m
			c.n++
		}
		return
	}
	j := sort.Search(len(c.array), func(j int) bool { return c.array[j] >= low })
	if j < len(c.array) && c.array[j] == low {
		return
	}
	c.array = append(c.array, 0)
	copy(c.array[j+1:], c.array[j:])
	c.array[j] = low
	if len(c.array) > arrayMax {
		words := make([]uint64, bitmapWords)
		for _, lv := range c.array {
			words[lv/64] |= uint64(1) << (lv % 64)
		}
		c.bits, c.n, c.array = words, len(c.array), nil
	}
}

// Contains reports whether v is set.
func (b *Bitmap) Contains(v uint32) bool {
	key, low := uint16(v>>16), uint16(v)
	i, ok := b.find(key)
	if !ok {
		return false
	}
	c := &b.containers[i]
	if c.bits != nil {
		return c.bits[low/64]&(uint64(1)<<(low%64)) != 0
	}
	j := sort.Search(len(c.array), func(j int) bool { return c.array[j] >= low })
	return j < len(c.array) && c.array[j] == low
}

// Cardinality returns the number of set values.
func (b *Bitmap) Cardinality() int {
	n := 0
	for i := range b.containers {
		c := &b.containers[i]
		if c.bits != nil {
			n += c.n
		} else {
			n += len(c.array)
		}
	}
	return n
}

// And returns the intersection of b and o as a new bitmap. Containers
// are walked pairwise by key (both sides keep them sorted), and within
// a shared key the cheapest pairing runs: array∩array is a two-pointer
// merge, array∩bitmap filters the array through the bitmap's words,
// and bitmap∩bitmap is a word-wise AND that collapses back to an array
// container when the result fits. Neither operand is modified.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	out := &Bitmap{}
	if b == nil || o == nil {
		return out
	}
	i, j := 0, 0
	for i < len(b.containers) && j < len(o.containers) {
		ca, co := &b.containers[i], &o.containers[j]
		switch {
		case ca.key < co.key:
			i++
		case ca.key > co.key:
			j++
		default:
			if c, ok := andContainers(ca, co); ok {
				out.containers = append(out.containers, c)
			}
			i++
			j++
		}
	}
	return out
}

// andContainers intersects two containers sharing a key, reporting
// ok=false when the result is empty (empty containers are never
// stored).
func andContainers(a, b *container) (container, bool) {
	switch {
	case a.bits == nil && b.bits == nil:
		var arr []uint16
		i, j := 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				i++
			case a.array[i] > b.array[j]:
				j++
			default:
				arr = append(arr, a.array[i])
				i++
				j++
			}
		}
		if len(arr) == 0 {
			return container{}, false
		}
		return container{key: a.key, array: arr}, true
	case a.bits != nil && b.bits != nil:
		words := make([]uint64, bitmapWords)
		n := 0
		for w := range words {
			words[w] = a.bits[w] & b.bits[w]
			n += bits.OnesCount64(words[w])
		}
		switch {
		case n == 0:
			return container{}, false
		case n <= arrayMax:
			arr := make([]uint16, 0, n)
			for w, word := range words {
				for word != 0 {
					t := bits.TrailingZeros64(word)
					arr = append(arr, uint16(w*64+t))
					word &^= 1 << t
				}
			}
			return container{key: a.key, array: arr}, true
		default:
			return container{key: a.key, bits: words, n: n}, true
		}
	default:
		sparse, dense := a, b
		if a.bits != nil {
			sparse, dense = b, a
		}
		var arr []uint16
		for _, low := range sparse.array {
			if dense.bits[low/64]&(uint64(1)<<(low%64)) != 0 {
				arr = append(arr, low)
			}
		}
		if len(arr) == 0 {
			return container{}, false
		}
		return container{key: a.key, array: arr}, true
	}
}

// Or returns the union of b and o as a new bitmap. Containers are
// walked pairwise by key like And; unmatched containers are cloned
// into the result (never aliased — the operands stay immutable), and a
// merged container that outgrows arrayMax converts to a bitmap
// container exactly as Add would.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	out := &Bitmap{}
	if b == nil {
		b = &Bitmap{}
	}
	if o == nil {
		o = &Bitmap{}
	}
	i, j := 0, 0
	for i < len(b.containers) || j < len(o.containers) {
		switch {
		case j >= len(o.containers) || (i < len(b.containers) && b.containers[i].key < o.containers[j].key):
			out.containers = append(out.containers, cloneContainer(&b.containers[i]))
			i++
		case i >= len(b.containers) || o.containers[j].key < b.containers[i].key:
			out.containers = append(out.containers, cloneContainer(&o.containers[j]))
			j++
		default:
			out.containers = append(out.containers, orContainers(&b.containers[i], &o.containers[j]))
			i++
			j++
		}
	}
	return out
}

// orContainers unions two containers sharing a key. The union of two
// non-empty containers is never empty, so there is no ok flag.
func orContainers(a, b *container) container {
	if a.bits == nil && b.bits == nil {
		arr := make([]uint16, 0, len(a.array)+len(b.array))
		i, j := 0, 0
		for i < len(a.array) && j < len(b.array) {
			switch {
			case a.array[i] < b.array[j]:
				arr = append(arr, a.array[i])
				i++
			case a.array[i] > b.array[j]:
				arr = append(arr, b.array[j])
				j++
			default:
				arr = append(arr, a.array[i])
				i++
				j++
			}
		}
		arr = append(arr, a.array[i:]...)
		arr = append(arr, b.array[j:]...)
		if len(arr) <= arrayMax {
			return container{key: a.key, array: arr}
		}
		words := make([]uint64, bitmapWords)
		for _, low := range arr {
			words[low/64] |= uint64(1) << (low % 64)
		}
		return container{key: a.key, bits: words, n: len(arr)}
	}
	words := make([]uint64, bitmapWords)
	for _, c := range []*container{a, b} {
		if c.bits != nil {
			for w, word := range c.bits {
				words[w] |= word
			}
			continue
		}
		for _, low := range c.array {
			words[low/64] |= uint64(1) << (low % 64)
		}
	}
	n := 0
	for _, word := range words {
		n += bits.OnesCount64(word)
	}
	return packContainer(a.key, words, n)
}

// AndNot returns the values of b not present in o, as a new bitmap.
// Containers unmatched in o are cloned through; matched pairs subtract
// with the cheapest pairing and collapse to an array container when
// the survivor count fits. Neither operand is modified.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	out := &Bitmap{}
	if b == nil {
		return out
	}
	if o == nil {
		o = &Bitmap{}
	}
	j := 0
	for i := range b.containers {
		ca := &b.containers[i]
		for j < len(o.containers) && o.containers[j].key < ca.key {
			j++
		}
		if j >= len(o.containers) || o.containers[j].key != ca.key {
			out.containers = append(out.containers, cloneContainer(ca))
			continue
		}
		if c, ok := andNotContainers(ca, &o.containers[j]); ok {
			out.containers = append(out.containers, c)
		}
	}
	return out
}

// andNotContainers computes a minus b for two containers sharing a
// key, reporting ok=false when nothing survives.
func andNotContainers(a, b *container) (container, bool) {
	switch {
	case a.bits == nil && b.bits == nil:
		var arr []uint16
		j := 0
		for _, low := range a.array {
			for j < len(b.array) && b.array[j] < low {
				j++
			}
			if j < len(b.array) && b.array[j] == low {
				continue
			}
			arr = append(arr, low)
		}
		if len(arr) == 0 {
			return container{}, false
		}
		return container{key: a.key, array: arr}, true
	case a.bits == nil:
		var arr []uint16
		for _, low := range a.array {
			if b.bits[low/64]&(uint64(1)<<(low%64)) == 0 {
				arr = append(arr, low)
			}
		}
		if len(arr) == 0 {
			return container{}, false
		}
		return container{key: a.key, array: arr}, true
	default:
		words := make([]uint64, bitmapWords)
		copy(words, a.bits)
		if b.bits != nil {
			for w, word := range b.bits {
				words[w] &^= word
			}
		} else {
			for _, low := range b.array {
				words[low/64] &^= uint64(1) << (low % 64)
			}
		}
		n := 0
		for _, word := range words {
			n += bits.OnesCount64(word)
		}
		if n == 0 {
			return container{}, false
		}
		return packContainer(a.key, words, n), true
	}
}

// packContainer wraps a populated word set as a container, collapsing
// to the array form when the cardinality fits (the invariant Add and
// andContainers maintain, kept here so equal sets always have equal
// representations).
func packContainer(key uint16, words []uint64, n int) container {
	if n > arrayMax {
		return container{key: key, bits: words, n: n}
	}
	arr := make([]uint16, 0, n)
	for w, word := range words {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w*64+t))
			word &^= 1 << t
		}
	}
	return container{key: key, array: arr}
}

// cloneContainer deep-copies a container so results never alias an
// operand's storage.
func cloneContainer(c *container) container {
	out := container{key: c.key, n: c.n}
	if c.bits != nil {
		out.bits = make([]uint64, bitmapWords)
		copy(out.bits, c.bits)
		return out
	}
	out.array = append([]uint16(nil), c.array...)
	return out
}

// Iterate calls fn for every set value in ascending order, stopping if
// fn returns false.
func (b *Bitmap) Iterate(fn func(v uint32) bool) {
	for i := range b.containers {
		c := &b.containers[i]
		hi := uint32(c.key) << 16
		if c.bits == nil {
			for _, low := range c.array {
				if !fn(hi | uint32(low)) {
					return
				}
			}
			continue
		}
		for w, word := range c.bits {
			for word != 0 {
				t := bits.TrailingZeros64(word)
				if !fn(hi | uint32(w*64+t)) {
					return
				}
				word &^= 1 << t
			}
		}
	}
}

// Bitmap serialization, embedded inside index files:
//
//	containerCount uint32
//	per container: key uint16 | kind uint8 (0 array, 1 bitmap) |
//	  array:  n uint16 | n × uint16 values
//	  bitmap: 1024 × uint64 words
//
// The framing lives inside a CRC-protected index file, so decode
// errors here indicate either a torn file or a logic bug; both surface
// as errors, never panics or over-reads.

const (
	kindArray  = 0
	kindBitmap = 1
)

// appendTo serializes the bitmap.
func (b *Bitmap) appendTo(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.containers)))
	for i := range b.containers {
		c := &b.containers[i]
		buf = binary.LittleEndian.AppendUint16(buf, c.key)
		if c.bits != nil {
			buf = append(buf, kindBitmap)
			for _, w := range c.bits {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
			continue
		}
		buf = append(buf, kindArray)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.array)))
		for _, v := range c.array {
			buf = binary.LittleEndian.AppendUint16(buf, v)
		}
	}
	return buf
}

// decodeBitmap parses a serialized bitmap from b, returning the bitmap
// and the bytes consumed. Container keys must be strictly increasing
// and array values strictly increasing, so every valid serialization
// round-trips to identical bytes.
func decodeBitmap(b []byte) (*Bitmap, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("store: bitmap header truncated")
	}
	nc := int(binary.LittleEndian.Uint32(b))
	pos := 4
	bm := &Bitmap{}
	if nc > len(b)/3 { // each container needs >= 3 header bytes
		return nil, 0, fmt.Errorf("store: implausible container count %d", nc)
	}
	bm.containers = make([]container, 0, nc)
	for i := 0; i < nc; i++ {
		if len(b)-pos < 3 {
			return nil, 0, fmt.Errorf("store: bitmap container %d truncated", i)
		}
		key := binary.LittleEndian.Uint16(b[pos:])
		kind := b[pos+2]
		pos += 3
		if i > 0 && key <= bm.containers[i-1].key {
			return nil, 0, fmt.Errorf("store: container keys out of order")
		}
		switch kind {
		case kindArray:
			if len(b)-pos < 2 {
				return nil, 0, fmt.Errorf("store: array container %d truncated", i)
			}
			n := int(binary.LittleEndian.Uint16(b[pos:]))
			pos += 2
			if len(b)-pos < 2*n {
				return nil, 0, fmt.Errorf("store: array container %d values truncated", i)
			}
			arr := make([]uint16, n)
			for j := 0; j < n; j++ {
				arr[j] = binary.LittleEndian.Uint16(b[pos+2*j:])
				if j > 0 && arr[j] <= arr[j-1] {
					return nil, 0, fmt.Errorf("store: array container values out of order")
				}
			}
			pos += 2 * n
			bm.containers = append(bm.containers, container{key: key, array: arr})
		case kindBitmap:
			if len(b)-pos < 8*bitmapWords {
				return nil, 0, fmt.Errorf("store: bitmap container %d truncated", i)
			}
			words := make([]uint64, bitmapWords)
			n := 0
			for j := range words {
				words[j] = binary.LittleEndian.Uint64(b[pos+8*j:])
				n += bits.OnesCount64(words[j])
			}
			pos += 8 * bitmapWords
			bm.containers = append(bm.containers, container{key: key, bits: words, n: n})
		default:
			return nil, 0, fmt.Errorf("store: unknown container kind %d", kind)
		}
	}
	return bm, pos, nil
}
