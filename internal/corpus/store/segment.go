package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"harassrepro/internal/corpus"
	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/taxonomy"
)

// Segment file layout. A segment is an append-only run of checksummed,
// length-prefixed records behind a fixed header. Every record header
// starts on an 8-byte boundary so an mmap-style reader can cast headers
// at aligned offsets; the gap to the next boundary is zero-filled,
// which also guarantees that a header read from a preallocated or
// torn region (all zeros) fails validation instead of decoding as an
// empty record.
//
//	header (16 bytes): magic "HRCSSEG1" | version uint32 | flags uint32
//	record:            length uint32 | crc32c(payload) uint32 | payload | pad to 8
//
// All integers are little-endian. CRCs use the Castagnoli polynomial.

const (
	segMagic    = "HRCSSEG1"
	idxMagic    = "HRCSIDX1"
	version     = 1
	segHeaderSz = 16
	recHeaderSz = 8
	recAlign    = 8

	// maxRecordBytes bounds one record's payload. A corrupt length
	// field can therefore never drive a multi-gigabyte allocation or an
	// over-read past the mapped region.
	maxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// subRank maps each known taxonomy subcategory to its Table 11
// position, the canonical order Label.Subs() emits and decodeDoc
// therefore requires.
var subRank = func() map[taxonomy.Sub]int {
	m := make(map[taxonomy.Sub]int)
	for i, s := range taxonomy.Subs() {
		m[s] = i
	}
	return m
}()

// Decode failure causes. ErrTornRecord covers every way a record can
// fail to be fully present (short header, short payload, bad checksum,
// zeroed header); recovery treats the first torn record as the tear
// point and salvages everything before it.
var (
	ErrTornRecord = errors.New("torn or corrupt record")
	ErrBadSegment = errors.New("invalid segment header")
)

// segHeader renders the fixed segment file header.
func segHeader() []byte {
	h := make([]byte, segHeaderSz)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[8:], version)
	return h
}

// checkSegHeader validates a segment file's first bytes.
func checkSegHeader(b []byte) error {
	if len(b) < segHeaderSz || string(b[:8]) != segMagic {
		return ErrBadSegment
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != version {
		return fmt.Errorf("%w: version %d, want %d", ErrBadSegment, v, version)
	}
	return nil
}

// recordSize returns the full aligned on-disk size of a payload.
func recordSize(payloadLen int) int {
	n := recHeaderSz + payloadLen
	if rem := n % recAlign; rem != 0 {
		n += recAlign - rem
	}
	return n
}

// appendRecord frames payload into buf: header, payload, alignment pad.
func appendRecord(buf, payload []byte) []byte {
	var hdr [recHeaderSz]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	for rem := (recHeaderSz + len(payload)) % recAlign; rem != 0 && rem < recAlign; rem++ {
		buf = append(buf, 0)
	}
	return buf
}

// decodeRecord reads the record starting at b[0]. It returns the
// payload (aliasing b) and the aligned size consumed. Any structural
// problem — short data, oversized or zero length, checksum mismatch,
// nonzero padding — returns an error wrapping ErrTornRecord and never
// reads past len(b).
func decodeRecord(b []byte) (payload []byte, consumed int, err error) {
	if len(b) < recHeaderSz {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrTornRecord, len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[0:]))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > maxRecordBytes {
		return nil, 0, fmt.Errorf("%w: implausible length %d", ErrTornRecord, n)
	}
	total := recordSize(n)
	if total > len(b) {
		return nil, 0, fmt.Errorf("%w: record of %d bytes, %d available", ErrTornRecord, total, len(b))
	}
	payload = b[recHeaderSz : recHeaderSz+n]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrTornRecord)
	}
	for _, pad := range b[recHeaderSz+n : total] {
		if pad != 0 {
			return nil, 0, fmt.Errorf("%w: nonzero alignment padding", ErrTornRecord)
		}
	}
	return payload, total, nil
}

// Document payload codec: a deterministic schema of uvarint-prefixed
// strings and uvarints. Two equal Documents always encode to identical
// bytes (the property the crash-recovery byte-identity guarantee and
// the store-vs-memory golden tests rest on).

// truth flag bits.
const (
	tfCTH = 1 << iota
	tfDox
	tfHardNegative
)

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeDoc renders one document payload into buf.
func encodeDoc(buf []byte, d *corpus.Document) []byte {
	buf = appendString(buf, d.ID)
	buf = appendString(buf, string(d.Dataset))
	buf = appendString(buf, string(d.Platform))
	buf = appendString(buf, d.Domain)
	buf = appendString(buf, d.ThreadID)
	buf = binary.AppendUvarint(buf, uint64(d.PosInThread))
	buf = binary.AppendUvarint(buf, uint64(d.ThreadSize))
	buf = appendString(buf, d.Author)
	buf = appendString(buf, d.Date)
	buf = appendString(buf, d.Text)

	var flags byte
	if d.Truth.IsCTH {
		flags |= tfCTH
	}
	if d.Truth.IsDox {
		flags |= tfDox
	}
	if d.Truth.HardNegative {
		flags |= tfHardNegative
	}
	buf = append(buf, flags)
	subs := d.Truth.CTHLabel.Subs()
	buf = binary.AppendUvarint(buf, uint64(len(subs)))
	for _, s := range subs {
		buf = appendString(buf, string(s))
	}
	buf = binary.AppendUvarint(buf, uint64(len(d.Truth.DoxPII)))
	for _, t := range d.Truth.DoxPII {
		buf = appendString(buf, string(t))
	}
	buf = binary.AppendUvarint(buf, uint64(d.Truth.TargetID))
	buf = appendString(buf, string(d.Truth.TargetGender))
	return buf
}

// docDecoder walks a payload with strict bounds checks; every read
// either succeeds inside the buffer or flips err, never panics.
type docDecoder struct {
	b   []byte
	pos int
	err error
}

func (dd *docDecoder) uvarint() uint64 {
	if dd.err != nil {
		return 0
	}
	v, n := binary.Uvarint(dd.b[dd.pos:])
	if n <= 0 {
		dd.err = fmt.Errorf("store: truncated uvarint at offset %d", dd.pos)
		return 0
	}
	// Reject non-minimal encodings (a trailing zero group, e.g. 0x80 0x00
	// for 0): the encoder always emits the minimal form, and accepting
	// only it keeps decode∘encode the identity.
	if n > 1 && dd.b[dd.pos+n-1] == 0 {
		dd.err = fmt.Errorf("store: non-minimal uvarint at offset %d", dd.pos)
		return 0
	}
	dd.pos += n
	return v
}

func (dd *docDecoder) str() string {
	n := dd.uvarint()
	if dd.err != nil {
		return ""
	}
	if n > uint64(len(dd.b)-dd.pos) {
		dd.err = fmt.Errorf("store: string of %d bytes exceeds payload at offset %d", n, dd.pos)
		return ""
	}
	s := string(dd.b[dd.pos : dd.pos+int(n)])
	dd.pos += int(n)
	return s
}

func (dd *docDecoder) byte() byte {
	if dd.err != nil {
		return 0
	}
	if dd.pos >= len(dd.b) {
		dd.err = fmt.Errorf("store: truncated payload at offset %d", dd.pos)
		return 0
	}
	c := dd.b[dd.pos]
	dd.pos++
	return c
}

// maxCount bounds decoded list lengths to what the remaining payload
// could possibly hold (each element is at least one byte), so a corrupt
// count cannot drive allocation.
func (dd *docDecoder) count() int {
	n := dd.uvarint()
	if dd.err != nil {
		return 0
	}
	if n > uint64(len(dd.b)-dd.pos) {
		dd.err = fmt.Errorf("store: list of %d elements exceeds payload at offset %d", n, dd.pos)
		return 0
	}
	return int(n)
}

// decodeDoc parses one document payload. The entire payload must be
// consumed: trailing garbage is an error, so encode∘decode is exact.
func decodeDoc(payload []byte) (corpus.Document, error) {
	dd := &docDecoder{b: payload}
	var d corpus.Document
	d.ID = dd.str()
	d.Dataset = corpus.Dataset(dd.str())
	d.Platform = corpus.Platform(dd.str())
	d.Domain = dd.str()
	d.ThreadID = dd.str()
	d.PosInThread = int(dd.uvarint())
	d.ThreadSize = int(dd.uvarint())
	d.Author = dd.str()
	d.Date = dd.str()
	d.Text = dd.str()

	flags := dd.byte()
	d.Truth.IsCTH = flags&tfCTH != 0
	d.Truth.IsDox = flags&tfDox != 0
	d.Truth.HardNegative = flags&tfHardNegative != 0
	if n := dd.count(); n > 0 && dd.err == nil {
		// The encoder writes Label.Subs() output: known subcategories in
		// strictly ascending Table 11 order. Enforcing that here keeps
		// decode∘encode the identity and rejects corrupted sub lists
		// (Label would otherwise silently drop unknown subs).
		subs := make([]taxonomy.Sub, 0, n)
		prev := -1
		for i := 0; i < n; i++ {
			s := taxonomy.Sub(dd.str())
			if dd.err != nil {
				break
			}
			rank, ok := subRank[s]
			if !ok || rank <= prev {
				dd.err = fmt.Errorf("store: non-canonical label sub %q at offset %d", s, dd.pos)
				break
			}
			prev = rank
			subs = append(subs, s)
		}
		if dd.err == nil {
			d.Truth.CTHLabel = taxonomy.NewLabel(subs...)
		}
	}
	if n := dd.count(); n > 0 && dd.err == nil {
		types := make([]pii.Type, 0, n)
		for i := 0; i < n; i++ {
			types = append(types, pii.Type(dd.str()))
		}
		if dd.err == nil {
			d.Truth.DoxPII = types
		}
	}
	d.Truth.TargetID = int(dd.uvarint())
	d.Truth.TargetGender = gender.Gender(dd.str())
	if dd.err != nil {
		return corpus.Document{}, dd.err
	}
	if dd.pos != len(payload) {
		return corpus.Document{}, fmt.Errorf("store: %d trailing payload bytes", len(payload)-dd.pos)
	}
	return d, nil
}
