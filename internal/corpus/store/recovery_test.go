package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"harassrepro/internal/corpus"
)

// The crash model: Append writes seg-N.seg, then seg-N.idx, then
// commits the manifest rename. A crash at any byte of that sequence
// leaves files the manifest never committed. These tests reconstruct
// every such state — the tail segment truncated or bit-flipped at
// every byte boundary — and assert the three recovery invariants:
//
//  1. reopen succeeds and every committed record is intact;
//  2. the torn tail is quarantined, with every fully-landed record
//     salvaged;
//  3. re-appending the interrupted batch yields a store byte-identical
//     to one that never crashed.

// listStoreFiles returns relative paths of all files under dir,
// excluding the quarantine area (diagnostics, not store state).
func listStoreFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		if d.IsDir() {
			if rel == quarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		out = append(out, rel)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// compareStoreDirs asserts two store directories are byte-identical
// outside quarantine/.
func compareStoreDirs(t *testing.T, want, got string) {
	t.Helper()
	wf, gf := listStoreFiles(t, want), listStoreFiles(t, got)
	if strings.Join(wf, "\n") != strings.Join(gf, "\n") {
		t.Fatalf("file sets differ:\nwant %v\ngot  %v", wf, gf)
	}
	for _, rel := range wf {
		wb, err := os.ReadFile(filepath.Join(want, rel))
		if err != nil {
			t.Fatal(err)
		}
		gb, err := os.ReadFile(filepath.Join(got, rel))
		if err != nil {
			t.Fatal(err)
		}
		if string(wb) != string(gb) {
			t.Fatalf("%s differs (%d vs %d bytes)", rel, len(wb), len(gb))
		}
	}
}

// buildStore creates a store in dir and appends each batch.
func buildStore(t *testing.T, dir string, batches ...[]corpus.Document) *Store {
	t.Helper()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := s.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// crashState reconstructs dir as "crashed mid-append of batchB after
// committing batchA": the committed prefix plus a damaged tail segment
// file produced by damage(fullSegBytes).
func crashState(t *testing.T, dir string, batchA, batchB []corpus.Document, withIdx bool, damage func([]byte) []byte) {
	t.Helper()
	buildStore(t, dir, batchA).Close()

	// The tail segment's uninterrupted bytes, reproduced deterministically.
	tmp := t.TempDir()
	full := buildStore(t, tmp, batchA, batchB)
	full.Close()
	segBytes, err := os.ReadFile(filepath.Join(tmp, "seg-00000002"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000002"+segSuffix), damage(segBytes), 0o644); err != nil {
		t.Fatal(err)
	}
	if withIdx {
		idxBytes, err := os.ReadFile(filepath.Join(tmp, "seg-00000002"+idxSuffix))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "seg-00000002"+idxSuffix), idxBytes, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recordBoundaries returns the byte offset after each complete record
// in a segment file (header included as offset segHeaderSz).
func recordBoundaries(t *testing.T, seg []byte) []int {
	t.Helper()
	if err := checkSegHeader(seg); err != nil {
		t.Fatal(err)
	}
	bounds := []int{segHeaderSz}
	pos := segHeaderSz
	for pos < len(seg) {
		_, n, err := decodeRecord(seg[pos:])
		if err != nil {
			t.Fatal(err)
		}
		pos += n
		bounds = append(bounds, pos)
	}
	return bounds
}

// salvagedAt returns how many of batchB's records are fully present in
// a tail segment truncated at byte k.
func salvagedAt(bounds []int, k int) int {
	n := 0
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= k {
			n = i
		}
	}
	return n
}

func TestRecoveryTruncatedTailEveryByte(t *testing.T) {
	batchA := testDocs(4, "a-")
	batchB := testDocs(3, "b-")

	// Reference: the uninterrupted store, and the tail segment's bytes.
	fullDir := t.TempDir()
	buildStore(t, fullDir, batchA, batchB).Close()
	segBytes, err := os.ReadFile(filepath.Join(fullDir, "seg-00000002"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, segBytes)
	wantDocs := append(append([]corpus.Document(nil), batchA...), batchB...)

	for k := 0; k <= len(segBytes); k++ {
		k := k
		t.Run(fmt.Sprintf("trunc-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			crashState(t, dir, batchA, batchB, false, func(b []byte) []byte { return b[:k] })

			s, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			// Invariant 1: every committed record intact.
			docsEqual(t, batchA, scanAll(t, s))

			// Invariant 2: the torn tail quarantined, fully-landed
			// records salvaged. (At k == len(segBytes) the segment is
			// complete but uncommitted — still torn, all docs salvaged.)
			rec := s.Recovery()
			if len(rec.Torn) != 1 || rec.Torn[0].Name != "seg-00000002" {
				t.Fatalf("recovery = %+v", rec)
			}
			wantSalvaged := salvagedAt(bounds, k)
			if rec.Torn[0].SalvagedDocs != wantSalvaged {
				t.Fatalf("salvaged %d docs at trunc %d, want %d", rec.Torn[0].SalvagedDocs, k, wantSalvaged)
			}
			if _, err := os.Stat(filepath.Join(dir, "seg-00000002"+segSuffix)); err == nil {
				t.Fatal("torn segment file still present after quarantine")
			}

			// Invariant 3: re-appending the batch reproduces the
			// uninterrupted store byte for byte.
			if _, err := s.Append(batchB); err != nil {
				t.Fatalf("re-append: %v", err)
			}
			s.Close()
			compareStoreDirs(t, fullDir, dir)

			r, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			docsEqual(t, wantDocs, scanAll(t, r))
		})
	}
}

func TestRecoveryCorruptTailEveryByte(t *testing.T) {
	batchA := testDocs(4, "a-")
	batchB := testDocs(3, "b-")

	fullDir := t.TempDir()
	buildStore(t, fullDir, batchA, batchB).Close()
	segBytes, err := os.ReadFile(filepath.Join(fullDir, "seg-00000002"+segSuffix))
	if err != nil {
		t.Fatal(err)
	}
	bounds := recordBoundaries(t, segBytes)

	for k := 0; k < len(segBytes); k++ {
		k := k
		t.Run(fmt.Sprintf("flip-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			crashState(t, dir, batchA, batchB, true, func(b []byte) []byte {
				out := append([]byte(nil), b...)
				out[k] ^= 0xA5
				return out
			})

			s, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			docsEqual(t, batchA, scanAll(t, s))
			rec := s.Recovery()
			if len(rec.Torn) != 1 {
				t.Fatalf("recovery = %+v", rec)
			}
			// A flip inside record i destroys i (and may desynchronize
			// everything after): the salvaged prefix is exactly the
			// records strictly before the flipped byte. A flip in a
			// record's zero padding is also detected (nonzero pad fails
			// validation), so the count never over-reports.
			wantSalvaged := salvagedAt(bounds, k)
			if rec.Torn[0].SalvagedDocs > len(batchB) || rec.Torn[0].SalvagedDocs < wantSalvaged-1 {
				t.Fatalf("salvaged %d docs at flip %d (prefix bound %d)", rec.Torn[0].SalvagedDocs, k, wantSalvaged)
			}
			if k >= segHeaderSz && rec.Torn[0].SalvagedDocs > wantSalvaged {
				t.Fatalf("salvaged %d docs at flip %d, prefix has only %d intact", rec.Torn[0].SalvagedDocs, k, wantSalvaged)
			}

			if _, err := s.Append(batchB); err != nil {
				t.Fatalf("re-append: %v", err)
			}
			s.Close()
			compareStoreDirs(t, fullDir, dir)
		})
	}
}

// TestRecoveryCrashBetweenIdxAndManifest covers the widest crash
// window: both tail files fully written but never committed.
func TestRecoveryCrashBetweenIdxAndManifest(t *testing.T) {
	batchA := testDocs(4, "a-")
	batchB := testDocs(3, "b-")
	fullDir := t.TempDir()
	buildStore(t, fullDir, batchA, batchB).Close()

	dir := t.TempDir()
	crashState(t, dir, batchA, batchB, true, func(b []byte) []byte { return b })
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := s.Recovery()
	if len(rec.Torn) != 1 || rec.Torn[0].SalvagedDocs != len(batchB) || rec.Torn[0].Cause != "" {
		t.Fatalf("recovery = %+v", rec)
	}
	// Both files went to quarantine, plus the salvage dump.
	wantFiles := []string{"seg-00000002.salvaged.jsonl", "seg-00000002.idx", "seg-00000002.seg"}
	if len(rec.Torn[0].Files) != 3 {
		t.Fatalf("quarantined files = %v, want %v", rec.Torn[0].Files, wantFiles)
	}
	// The salvage dump holds the full batch, with truth.
	f, err := os.Open(filepath.Join(dir, quarantineDir, "seg-00000002.salvaged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	salvaged, err := corpus.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != len(batchB) || salvaged[0].ID != batchB[0].ID {
		t.Fatalf("salvage dump: %d docs", len(salvaged))
	}
	if !salvaged[0].Truth.IsCTH {
		t.Fatal("salvage dump lost ground truth")
	}

	if _, err := s.Append(batchB); err != nil {
		t.Fatal(err)
	}
	s.Close()
	compareStoreDirs(t, fullDir, dir)
}

// TestCommittedCorruptionIsAnError distinguishes the torn-tail path
// (recoverable) from damage to committed data (loud failure).
func TestCommittedCorruptionIsAnError(t *testing.T) {
	t.Run("seg-byte-flip", func(t *testing.T) {
		dir := t.TempDir()
		buildStore(t, dir, testDocs(5, "c-")).Close()
		path := filepath.Join(dir, "seg-00000001"+segSuffix)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir) // sizes still match: damage surfaces on read
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		err = s.Scan(func(*corpus.Document, DocRef) error { return nil })
		var ce *CorruptError
		if err == nil || !errors.As(err, &ce) || ce.Segment != "seg-00000001" {
			t.Fatalf("scan err = %v", err)
		}
	})
	t.Run("seg-truncated", func(t *testing.T) {
		dir := t.TempDir()
		buildStore(t, dir, testDocs(5, "c-")).Close()
		path := filepath.Join(dir, "seg-00000001"+segSuffix)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
			t.Fatal(err)
		}
		var ce *CorruptError
		if _, err := Open(dir); err == nil || !errors.As(err, &ce) {
			t.Fatalf("open err = %v", err)
		}
	})
	t.Run("idx-byte-flip", func(t *testing.T) {
		dir := t.TempDir()
		buildStore(t, dir, testDocs(5, "c-")).Close()
		path := filepath.Join(dir, "seg-00000001"+idxSuffix)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var ce *CorruptError
		if _, err := Open(dir); err == nil || !errors.As(err, &ce) {
			t.Fatalf("open err = %v", err)
		}
	})
}
