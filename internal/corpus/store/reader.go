package store

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"
)

// The segment read path. Every reader is bounded to the manifest's
// committed extent (SegmentInfo.SegBytes): bytes past it — the torn or
// in-progress tail of a crashed or concurrent append — are invisible,
// never a decode input and never a spurious CorruptError.
//
// Two implementations sit behind segReader: a read-only mmap of the
// committed extent (mmap_unix.go; slice is zero-copy into the mapping)
// and a portable ReadAt fallback (platforms without mmap, files mmap
// refuses, and the OpenOptions.NoMmap escape hatch tests and the
// mmap-vs-buffered benchmark use). Store code never knows which one it
// got.

// ErrClosed is returned by reads and appends after Store.Close.
var ErrClosed = errors.New("store: closed")

// openReaderCount tracks live segment readers (mapping or file
// handle) across the package — the leak check the close/race tests
// assert against zero.
var openReaderCount atomic.Int64

// segReader is random access to one committed segment's bytes.
type segReader interface {
	// slice returns the bytes [off, off+n), both bounded to the
	// committed extent. The result may alias a shared mapping: callers
	// must treat it as read-only and not retain it past the enclosing
	// segHandle release.
	slice(off, n int64) ([]byte, error)
	close() error
}

// openSegReader opens the committed extent of a segment file: an mmap
// when the platform provides one (and noMmap is unset), the buffered
// ReadAt fallback otherwise.
func openSegReader(path string, committed int64, noMmap bool) (segReader, error) {
	if !noMmap {
		if r, err := openMmapReader(path, committed); err == nil {
			openReaderCount.Add(1)
			return r, nil
		} else if !errors.Is(err, errNoMmap) {
			// A real I/O error (missing file, short file) is the same
			// failure the fallback would hit; surface it now.
			return nil, err
		}
	}
	r, err := openFileReader(path, committed)
	if err != nil {
		return nil, err
	}
	openReaderCount.Add(1)
	return r, nil
}

// errNoMmap means mmap is unavailable here (platform or map failure);
// openSegReader falls back to the file reader.
var errNoMmap = errors.New("store: mmap unavailable")

// fileReader is the portable fallback: a kept-open file handle and
// bounds-checked ReadAt calls. Each slice allocates its result.
type fileReader struct {
	f         *os.File
	committed int64
}

func openFileReader(path string, committed int64) (*fileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < committed {
		f.Close()
		return nil, fmt.Errorf("segment file is %d bytes, manifest committed %d", st.Size(), committed)
	}
	return &fileReader{f: f, committed: committed}, nil
}

func (r *fileReader) slice(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > r.committed {
		return nil, fmt.Errorf("read [%d,%d) outside the committed %d bytes", off, off+n, r.committed)
	}
	buf := make([]byte, n)
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (r *fileReader) close() error {
	openReaderCount.Add(-1)
	return r.f.Close()
}

// segHandle reference-counts a segReader so a mapping is never
// unmapped while a read aliases it: the Store's cache holds one owner
// reference, every in-flight read holds another, and the last release
// — whichever side it is — closes the reader. Close can therefore run
// concurrently with Doc/Scan without a use-after-unmap or a leaked
// handle.
type segHandle struct {
	rd   segReader
	refs atomic.Int64
}

func newSegHandle(rd segReader) *segHandle {
	h := &segHandle{rd: rd}
	h.refs.Store(1) // the cache's owner reference
	return h
}

// acquire takes a read reference; it fails once the handle is on its
// way down (refs reached zero).
func (h *segHandle) acquire() bool {
	for {
		n := h.refs.Load()
		if n <= 0 {
			return false
		}
		if h.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference, closing the reader when it was the
// last.
func (h *segHandle) release() error {
	if h.refs.Add(-1) == 0 {
		return h.rd.close()
	}
	return nil
}
