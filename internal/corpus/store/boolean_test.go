package store

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// naiveOr unions via Contains-free merge: collect both sides, sort,
// dedup — the trivially-correct oracle.
func naiveOr(a, b *Bitmap) []uint32 {
	out := append(values(a), values(b)...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	if len(dedup) == 0 {
		return nil
	}
	return dedup
}

// naiveAndNot keeps a's values absent from b, via the Contains oracle.
func naiveAndNot(a, b *Bitmap) []uint32 {
	var out []uint32
	a.Iterate(func(v uint32) bool {
		if !b.Contains(v) {
			out = append(out, v)
		}
		return true
	})
	return out
}

// scribble overwrites every word and array slot of b's containers,
// exposing any storage shared with an operand.
func scribble(b *Bitmap) {
	for i := range b.containers {
		c := &b.containers[i]
		for w := range c.bits {
			c.bits[w] = ^uint64(0)
		}
		for k := range c.array {
			c.array[k] = 0xFFFF
		}
	}
}

// booleanCases crosses sparse (array) and dense (bitmap) containers in
// every pairing, plus disjoint key ranges and empty operands — the same
// grid TestBitmapAndDifferential walks for And.
func booleanCases() []struct {
	name string
	a, b *Bitmap
} {
	rng := rand.New(rand.NewSource(43))
	build := func(n int, span, offset uint32) *Bitmap {
		b := &Bitmap{}
		for i := 0; i < n; i++ {
			b.Add(offset + rng.Uint32()%span)
		}
		return b
	}
	return []struct {
		name string
		a, b *Bitmap
	}{
		{"array-array", build(500, 1<<17, 0), build(500, 1<<17, 0)},
		{"array-bitmap", build(500, 1<<16, 0), build(20000, 1<<16, 0)},
		{"bitmap-array", build(20000, 1<<16, 0), build(500, 1<<16, 0)},
		{"bitmap-bitmap", build(20000, 1<<16, 0), build(20000, 1<<16, 0)},
		{"disjoint-keys", build(500, 1<<16, 0), build(500, 1<<16, 1<<20)},
		{"empty-side", build(500, 1<<16, 0), &Bitmap{}},
		{"multi-container", build(3000, 1<<19, 0), build(3000, 1<<19, 1<<16)},
	}
}

func TestBitmapOrDifferential(t *testing.T) {
	for _, tc := range booleanCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := naiveOr(tc.a, tc.b)
			got := values(tc.a.Or(tc.b))
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("Or: got %d values, want %d", len(got), len(want))
			}
			// Commutes.
			rev := values(tc.b.Or(tc.a))
			if !reflect.DeepEqual(want, rev) {
				t.Fatalf("Or is not commutative: %d vs %d values", len(rev), len(want))
			}
			// Operands untouched.
			if c := tc.a.Cardinality(); len(values(tc.a)) != c {
				t.Fatal("left operand mutated")
			}
			if c := tc.b.Cardinality(); len(values(tc.b)) != c {
				t.Fatal("right operand mutated")
			}
			// Result supports Contains (container invariants hold).
			res := tc.a.Or(tc.b)
			for _, v := range want {
				if !res.Contains(v) {
					t.Fatalf("result missing %d", v)
				}
			}
			// Result is detached from its operands: scribbling over its
			// storage must not change them (posting bitmaps are shared
			// across concurrent queries, so aliasing would be a data
			// race).
			wantA, wantB := values(tc.a), values(tc.b)
			scribble(res)
			if !reflect.DeepEqual(wantA, values(tc.a)) || !reflect.DeepEqual(wantB, values(tc.b)) {
				t.Fatal("result aliases an operand's storage")
			}
		})
	}
	if got := values((&Bitmap{}).Or(nil)); got != nil {
		t.Fatalf("empty Or nil = %v, want empty", got)
	}
	var nilb *Bitmap
	if got := values(nilb.Or(nil)); got != nil {
		t.Fatalf("nil Or nil = %v, want empty", got)
	}
}

func TestBitmapAndNotDifferential(t *testing.T) {
	for _, tc := range booleanCases() {
		t.Run(tc.name, func(t *testing.T) {
			want := naiveAndNot(tc.a, tc.b)
			got := values(tc.a.AndNot(tc.b))
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("AndNot: got %d values, want %d", len(got), len(want))
			}
			// Both directions (AndNot does not commute; each is checked
			// against its own oracle).
			wantRev := naiveAndNot(tc.b, tc.a)
			gotRev := values(tc.b.AndNot(tc.a))
			if !reflect.DeepEqual(wantRev, gotRev) {
				t.Fatalf("reverse AndNot: got %d values, want %d", len(gotRev), len(wantRev))
			}
			// Operands untouched.
			if c := tc.a.Cardinality(); len(values(tc.a)) != c {
				t.Fatal("left operand mutated")
			}
			if c := tc.b.Cardinality(); len(values(tc.b)) != c {
				t.Fatal("right operand mutated")
			}
			// Identity: (a AndNot b) Or (a And b) == a.
			recon := values(tc.a.AndNot(tc.b).Or(tc.a.And(tc.b)))
			if !reflect.DeepEqual(values(tc.a), recon) {
				t.Fatal("AndNot/And decomposition does not reconstruct the operand")
			}
			res := tc.a.AndNot(tc.b)
			for _, v := range want {
				if !res.Contains(v) {
					t.Fatalf("result missing %d", v)
				}
			}
			wantA, wantB := values(tc.a), values(tc.b)
			scribble(res)
			if !reflect.DeepEqual(wantA, values(tc.a)) || !reflect.DeepEqual(wantB, values(tc.b)) {
				t.Fatal("result aliases an operand's storage")
			}
		})
	}
	var nilb *Bitmap
	if got := values(nilb.AndNot(&Bitmap{})); got != nil {
		t.Fatalf("nil AndNot = %v, want empty", got)
	}
	if got := values((&Bitmap{}).AndNot(nil)); got != nil {
		t.Fatalf("empty AndNot nil = %v, want empty", got)
	}
}

// TestBitmapOrAndNotContainerKinds pins the density transitions: a
// union crossing arrayMax must promote to a bitmap container, and a
// subtraction shrinking a dense container below arrayMax must collapse
// back to an array.
func TestBitmapOrAndNotContainerKinds(t *testing.T) {
	a, b := &Bitmap{}, &Bitmap{}
	for v := uint32(0); v < 3000; v++ {
		a.Add(v)
		b.Add(v + 3000) // disjoint: union = 6000 > arrayMax
	}
	res := a.Or(b)
	if n := res.Cardinality(); n != 6000 {
		t.Fatalf("union cardinality = %d, want 6000", n)
	}
	if res.containers[0].bits == nil {
		t.Fatal("6000-value union kept an array container")
	}
	// Small union stays an array.
	small := &Bitmap{}
	for v := uint32(0); v < 100; v++ {
		small.Add(v + 10000)
	}
	res = small.Or(small)
	if res.containers[0].bits != nil {
		t.Fatal("100-value union promoted to a bitmap container")
	}

	// Dense minus dense leaving a sparse remainder collapses to array.
	c, d := &Bitmap{}, &Bitmap{}
	for v := uint32(0); v < 10000; v++ {
		c.Add(v)
		if v >= 500 {
			d.Add(v)
		}
	}
	res = c.AndNot(d) // remainder [0,500) = 500 <= arrayMax
	if n := res.Cardinality(); n != 500 {
		t.Fatalf("difference cardinality = %d, want 500", n)
	}
	if res.containers[0].bits != nil {
		t.Fatal("500-value difference kept a bitmap container")
	}
	// Total subtraction drops the container entirely.
	res = c.AndNot(c)
	if len(res.containers) != 0 {
		t.Fatalf("self-subtraction left %d containers", len(res.containers))
	}
}
