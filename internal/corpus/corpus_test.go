package corpus

import (
	"math"
	"sort"
	"testing"

	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/taxonomy"
)

// smallCfg keeps generation fast in tests while leaving enough positives
// for distributional checks.
var smallCfg = Config{Seed: 42, VolumeScale: 40_000, PositiveScale: 10}

func generateAll(t *testing.T) (*Generator, map[Dataset]*Corpus) {
	t.Helper()
	g := NewGenerator(smallCfg)
	return g, g.Generate()
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := NewGenerator(smallCfg)
	c1 := g1.Generate()
	g2 := NewGenerator(smallCfg)
	c2 := g2.Generate()
	for _, ds := range []Dataset{Boards, Chat, Gab, Pastes} {
		a, b := c1[ds], c2[ds]
		if a.Len() != b.Len() {
			t.Fatalf("%s: lengths differ: %d vs %d", ds, a.Len(), b.Len())
		}
		for i := range a.Docs {
			if a.Docs[i].Text != b.Docs[i].Text || a.Docs[i].ID != b.Docs[i].ID {
				t.Fatalf("%s: doc %d differs", ds, i)
			}
		}
	}
}

func TestGenerateVolumes(t *testing.T) {
	_, corpora := generateAll(t)
	// Relative volume ordering from Table 1 must hold: boards largest.
	if corpora[Boards].Len() <= corpora[Chat].Len() {
		t.Errorf("boards (%d) not larger than chat (%d)", corpora[Boards].Len(), corpora[Chat].Len())
	}
	if corpora[Chat].Len() <= corpora[Gab].Len() {
		t.Errorf("chat (%d) not larger than gab (%d)", corpora[Chat].Len(), corpora[Gab].Len())
	}
	for ds, c := range corpora {
		if c.Len() == 0 {
			t.Errorf("%s corpus empty", ds)
		}
	}
}

func TestPlantedPositiveCounts(t *testing.T) {
	_, corpora := generateAll(t)
	// Planted positives must track the scaled Table 4 true-positive
	// volumes (PositiveScale 10 here).
	cthBoards, doxBoards := corpora[Boards].CountTrue()
	wantCTH := int(fullScaleTruePositives.CTH[PlatformBoards] / 10)
	wantDox := int(fullScaleTruePositives.Dox[PlatformBoards] / 10)
	if math.Abs(float64(cthBoards-wantCTH)) > float64(wantCTH)*0.1+10 {
		t.Errorf("boards CTH = %d, want ~%d", cthBoards, wantCTH)
	}
	if math.Abs(float64(doxBoards-wantDox)) > float64(wantDox)*0.1+10 {
		t.Errorf("boards dox = %d, want ~%d", doxBoards, wantDox)
	}
	// Pastes has no CTH (Table 2: the CTH task does not apply).
	cthPastes, doxPastes := corpora[Pastes].CountTrue()
	if cthPastes != 0 {
		t.Errorf("pastes contains %d CTH, want 0", cthPastes)
	}
	if doxPastes == 0 {
		t.Error("pastes contains no doxes")
	}
	// Pastes carries the most doxes (Table 4 full-scale ordering).
	if doxPastes <= doxBoards {
		t.Errorf("pastes doxes (%d) not more than boards (%d)", doxPastes, doxBoards)
	}
}

func TestBoardsThreadStructure(t *testing.T) {
	_, corpora := generateAll(t)
	boards := corpora[Boards]
	threads := map[string][]*Document{}
	for i := range boards.Docs {
		d := &boards.Docs[i]
		if d.ThreadID == "" {
			t.Fatal("board doc without thread ID")
		}
		threads[d.ThreadID] = append(threads[d.ThreadID], d)
	}
	for id, docs := range threads {
		size := docs[0].ThreadSize
		if len(docs) != size {
			t.Fatalf("thread %s: %d docs but ThreadSize=%d", id, len(docs), size)
		}
		seen := map[int]bool{}
		for _, d := range docs {
			if d.PosInThread < 0 || d.PosInThread >= size {
				t.Fatalf("thread %s: position %d out of range", id, d.PosInThread)
			}
			if seen[d.PosInThread] {
				t.Fatalf("thread %s: duplicate position %d", id, d.PosInThread)
			}
			seen[d.PosInThread] = true
			if d.ThreadSize != size {
				t.Fatalf("thread %s: inconsistent sizes", id)
			}
		}
	}
	if len(threads) < 20 {
		t.Errorf("only %d threads generated", len(threads))
	}
}

func TestCTHPositionDistribution(t *testing.T) {
	// At a larger scale, CTH first-post rate should be near 3.7% and
	// positives should be spread through thread interiors.
	g := NewGenerator(Config{Seed: 7, VolumeScale: 10_000, PositiveScale: 10})
	boards := g.generateBoards()
	var first, last, total int
	for i := range boards.Docs {
		d := &boards.Docs[i]
		if !d.Truth.IsCTH {
			continue
		}
		total++
		if d.PosInThread == 0 {
			first++
		}
		if d.PosInThread == d.ThreadSize-1 {
			last++
		}
	}
	if total < 500 {
		t.Fatalf("too few CTH for position test: %d", total)
	}
	firstRate := float64(first) / float64(total)
	lastRate := float64(last) / float64(total)
	if firstRate > 0.09 {
		t.Errorf("CTH first-post rate = %.3f, want < 0.09 (paper: 0.037)", firstRate)
	}
	if lastRate > 0.09 {
		t.Errorf("CTH last-post rate = %.3f, want < 0.09 (paper: 0.027)", lastRate)
	}
}

func TestThreadOverlapStructure(t *testing.T) {
	g := NewGenerator(Config{Seed: 11, VolumeScale: 10_000, PositiveScale: 10})
	boards := g.generateBoards()
	cthThreads := map[string]bool{}
	doxThreads := map[string]bool{}
	var cthDocs, doxDocs int
	for i := range boards.Docs {
		d := &boards.Docs[i]
		if d.Truth.IsCTH {
			cthThreads[d.ThreadID] = true
			cthDocs++
		}
		if d.Truth.IsDox {
			doxThreads[d.ThreadID] = true
			doxDocs++
		}
	}
	var cthInDoxThreads int
	for i := range boards.Docs {
		d := &boards.Docs[i]
		if d.Truth.IsCTH && doxThreads[d.ThreadID] {
			cthInDoxThreads++
		}
	}
	share := float64(cthInDoxThreads) / float64(cthDocs)
	// Paper: 8.53%. Allow a generous band (dual-labelled docs add a bit).
	if share < 0.03 || share > 0.20 {
		t.Errorf("CTH-in-dox-thread share = %.3f, want ~0.085", share)
	}
}

func TestTable11MixtureRecovered(t *testing.T) {
	g := NewGenerator(Config{Seed: 13, VolumeScale: 10_000, PositiveScale: 5})
	boards := g.generateBoards()
	var labels []taxonomy.Label
	for i := range boards.Docs {
		if boards.Docs[i].Truth.IsCTH {
			labels = append(labels, boards.Docs[i].Truth.CTHLabel)
		}
	}
	dist := taxonomy.NewDistribution(labels)
	// Reporting dominates on boards (Table 5: 56.3%).
	repShare := dist.ParentShare(taxonomy.Reporting)
	if repShare < 0.40 || repShare > 0.70 {
		t.Errorf("boards reporting share = %.3f, want ~0.56", repShare)
	}
	// Content leakage around 25.6%.
	clShare := dist.ParentShare(taxonomy.ContentLeakage)
	if clShare < 0.15 || clShare > 0.40 {
		t.Errorf("boards content-leakage share = %.3f, want ~0.26", clShare)
	}
	// Lockout is rare (0.25%).
	if lo := dist.ParentShare(taxonomy.Lockout); lo > 0.02 {
		t.Errorf("boards lockout share = %.3f, want < 0.02", lo)
	}
	// Overloading is lower on boards than it will be on Gab (6% vs 20%).
	gab := g.generateFlat(PlatformGab)
	var gabLabels []taxonomy.Label
	for i := range gab.Docs {
		if gab.Docs[i].Truth.IsCTH {
			gabLabels = append(gabLabels, gab.Docs[i].Truth.CTHLabel)
		}
	}
	gabDist := taxonomy.NewDistribution(gabLabels)
	if dist.ParentShare(taxonomy.Overloading) >= gabDist.ParentShare(taxonomy.Overloading) {
		t.Errorf("overloading: boards %.3f >= gab %.3f, want boards < gab",
			dist.ParentShare(taxonomy.Overloading), gabDist.ParentShare(taxonomy.Overloading))
	}
}

func TestMultiTypeCoOccurrence(t *testing.T) {
	g := NewGenerator(Config{Seed: 17, VolumeScale: 10_000, PositiveScale: 5})
	corpora := g.Generate()
	var labels []taxonomy.Label
	for _, c := range corpora {
		for i := range c.Docs {
			if c.Docs[i].Truth.IsCTH {
				labels = append(labels, c.Docs[i].Truth.CTHLabel)
			}
		}
	}
	co := taxonomy.NewCoOccurrence(labels)
	multiShare := float64(co.MultiType) / float64(co.Total)
	if multiShare < 0.08 || multiShare > 0.20 {
		t.Errorf("multi-type share = %.3f, want ~0.13", multiShare)
	}
	// Of multi-type, two types dominate (92.3% in the paper).
	if co.BySize[2] < co.BySize[3] {
		t.Error("two-type labels should dominate three-type labels")
	}
}

func TestGenderMixture(t *testing.T) {
	g := NewGenerator(Config{Seed: 19, VolumeScale: 10_000, PositiveScale: 5})
	corpora := g.Generate()
	counts := map[gender.Gender]int{}
	total := 0
	for _, c := range corpora {
		for i := range c.Docs {
			d := &c.Docs[i]
			if d.Truth.IsCTH {
				counts[gender.Infer(d.Text)]++
				total++
			}
		}
	}
	// Table 10: unknown 43.3%, male 38.1%, female 18.5%.
	unknownShare := float64(counts[gender.Unknown]) / float64(total)
	if unknownShare < 0.30 || unknownShare > 0.60 {
		t.Errorf("unknown-gender share = %.3f, want ~0.43", unknownShare)
	}
	if counts[gender.Male] <= counts[gender.Female] {
		t.Errorf("male (%d) should exceed female (%d)", counts[gender.Male], counts[gender.Female])
	}
}

func TestPIIMixtureFollowsTable6(t *testing.T) {
	g := NewGenerator(Config{Seed: 23, VolumeScale: 10_000, PositiveScale: 5})
	pastes := g.generateFlat(PlatformPastes)
	counts := map[pii.Type]int{}
	doxes := 0
	for i := range pastes.Docs {
		d := &pastes.Docs[i]
		if !d.Truth.IsDox {
			continue
		}
		doxes++
		for _, ty := range d.Truth.DoxPII {
			counts[ty]++
		}
	}
	if doxes < 300 {
		t.Fatalf("too few pastes doxes: %d", doxes)
	}
	// Table 6 pastes column: addresses 45.67%, SSN 3.98%.
	addrShare := float64(counts[pii.Address]) / float64(doxes)
	if addrShare < 0.38 || addrShare > 0.54 {
		t.Errorf("pastes address share = %.3f, want ~0.46", addrShare)
	}
	ssnShare := float64(counts[pii.SSN]) / float64(doxes)
	if ssnShare > 0.09 {
		t.Errorf("pastes SSN share = %.3f, want ~0.04", ssnShare)
	}
	// Every dox carries at least one PII type.
	for i := range pastes.Docs {
		d := &pastes.Docs[i]
		if d.Truth.IsDox && len(d.Truth.DoxPII) == 0 {
			t.Fatal("dox with no PII")
		}
	}
}

func TestRepeatedDoxStructure(t *testing.T) {
	g := NewGenerator(Config{Seed: 29, VolumeScale: 10_000, PositiveScale: 5})
	corpora := g.Generate()
	// Count doxes per persona per dataset.
	personaDoxes := map[int][]Dataset{}
	for ds, c := range corpora {
		for i := range c.Docs {
			d := &c.Docs[i]
			if d.Truth.IsDox {
				personaDoxes[d.Truth.TargetID] = append(personaDoxes[d.Truth.TargetID], ds)
			}
		}
	}
	var totalDoxes, repeatedDoxes, crossDataset int
	for _, dss := range personaDoxes {
		totalDoxes += len(dss)
		if len(dss) > 1 {
			repeatedDoxes += len(dss)
			first := dss[0]
			for _, d := range dss[1:] {
				if d != first {
					crossDataset++
					break
				}
			}
		}
	}
	share := float64(repeatedDoxes) / float64(totalDoxes)
	// Paper: 20.1% of above-threshold doxes are linkable repeats.
	if share < 0.10 || share > 0.35 {
		t.Errorf("repeated-dox share = %.3f, want ~0.20", share)
	}
	// Cross-dataset repeats are rare (250 of 14,587 in the paper).
	if crossDataset*10 > repeatedDoxes {
		t.Errorf("cross-dataset repeats too common: %d of %d", crossDataset, repeatedDoxes)
	}
}

func TestBlogCorpus(t *testing.T) {
	g := NewGenerator(Config{Seed: 31})
	specs := DefaultBlogSpecs(10)
	blogs := g.GenerateBlogs(specs)
	perDomain := map[string][]*Document{}
	for i := range blogs.Docs {
		d := &blogs.Docs[i]
		perDomain[d.Domain] = append(perDomain[d.Domain], d)
	}
	if len(perDomain) != 3 {
		t.Fatalf("blog domains = %d, want 3", len(perDomain))
	}
	// The Torch keeps its full-scale structure: 93 posts, 33 doxes.
	torch := perDomain["torch-network.example"]
	if len(torch) != 93 {
		t.Errorf("torch posts = %d, want 93", len(torch))
	}
	torchDoxes := 0
	for _, d := range torch {
		if d.Truth.IsDox {
			torchDoxes++
		}
	}
	if torchDoxes != 33 {
		t.Errorf("torch doxes = %d, want 33", torchDoxes)
	}
	// Dox rate ordering per Table 8: torch >> noblogs > daily stormer.
	rate := func(domain string) float64 {
		docs := perDomain[domain]
		dox := 0
		for _, d := range docs {
			if d.Truth.IsDox {
				dox++
			}
		}
		return float64(dox) / float64(len(docs))
	}
	if !(rate("torch-network.example") > rate("noblogs.example")) {
		t.Error("torch dox rate should exceed noblogs")
	}
}

func TestBlogDoxPIIExtractable(t *testing.T) {
	g := NewGenerator(Config{Seed: 37})
	blogs := g.GenerateBlogs(DefaultBlogSpecs(10))
	ex := pii.NewExtractor()
	for i := range blogs.Docs {
		d := &blogs.Docs[i]
		if !d.Truth.IsDox {
			continue
		}
		if got := ex.Types(d.Text); len(got) == 0 {
			t.Fatalf("blog dox with no extractable PII:\n%s", d.Text)
		}
	}
}

func TestDatesWithinTable1Ranges(t *testing.T) {
	_, corpora := generateAll(t)
	for ds, c := range corpora {
		r := DatasetDates[ds]
		for i := range c.Docs {
			d := c.Docs[i].Date
			if d < r[0] || d > r[1] {
				t.Fatalf("%s doc date %s outside [%s, %s]", ds, d, r[0], r[1])
			}
		}
	}
}

func TestDocumentIDsUnique(t *testing.T) {
	_, corpora := generateAll(t)
	seen := map[string]bool{}
	for _, c := range corpora {
		for i := range c.Docs {
			id := c.Docs[i].ID
			if seen[id] {
				t.Fatalf("duplicate document ID %s", id)
			}
			seen[id] = true
		}
	}
}

func TestPlatformDatasetMapping(t *testing.T) {
	cases := map[Platform]Dataset{
		PlatformBoards: Boards, PlatformBlogs: Blogs, PlatformDiscord: Chat,
		PlatformTelegram: Chat, PlatformGab: Gab, PlatformPastes: Pastes,
	}
	for p, want := range cases {
		if got := p.Dataset(); got != want {
			t.Errorf("%s.Dataset() = %s, want %s", p, got, want)
		}
	}
}

func TestFilterAndCountTrue(t *testing.T) {
	_, corpora := generateAll(t)
	gab := corpora[Gab]
	cth, dox := gab.CountTrue()
	got := len(gab.Filter(func(d *Document) bool { return d.Truth.IsCTH }))
	if got != cth {
		t.Errorf("Filter CTH = %d, CountTrue = %d", got, cth)
	}
	if cth == 0 || dox == 0 {
		t.Error("gab should contain both positives")
	}
}

func BenchmarkGenerateBoards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := NewGenerator(Config{Seed: 1, VolumeScale: 40_000, PositiveScale: 20})
		g.generateBoards()
	}
}

func TestToxicConcentrationAndBoost(t *testing.T) {
	g := NewGenerator(Config{Seed: 41, VolumeScale: 10_000, PositiveScale: 10})
	boards := g.generateBoards()

	// Group board posts by thread, tracking toxic CTH presence.
	type tinfo struct {
		size     int
		cth      int
		toxicCTH int
	}
	threads := map[string]*tinfo{}
	for i := range boards.Docs {
		d := &boards.Docs[i]
		ti := threads[d.ThreadID]
		if ti == nil {
			ti = &tinfo{size: d.ThreadSize}
			threads[d.ThreadID] = ti
		}
		if d.Truth.IsCTH {
			ti.cth++
			if d.Truth.CTHLabel.HasParent(taxonomy.ToxicContent) {
				ti.toxicCTH++
			}
		}
	}

	var toxicSizes, otherCTHSizes []float64
	toxicDocs, totalCTH := 0, 0
	for _, ti := range threads {
		if ti.toxicCTH > 0 {
			// Toxic CTH concentrate: toxic threads should be all-toxic.
			if ti.toxicCTH != ti.cth {
				t.Errorf("mixed toxic thread: %d toxic of %d CTH", ti.toxicCTH, ti.cth)
			}
			for i := 0; i < ti.cth; i++ {
				toxicSizes = append(toxicSizes, float64(ti.size))
			}
		} else if ti.cth > 0 {
			for i := 0; i < ti.cth; i++ {
				otherCTHSizes = append(otherCTHSizes, float64(ti.size))
			}
		}
		toxicDocs += ti.toxicCTH
		totalCTH += ti.cth
	}
	// Toxic share near the Table 11 boards rate (7.62%).
	share := float64(toxicDocs) / float64(totalCTH)
	if share < 0.04 || share > 0.12 {
		t.Errorf("toxic CTH share = %.3f, want ~0.076", share)
	}
	// Toxic threads are response-boosted: median size clearly larger.
	ms := func(xs []float64) float64 {
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		return cp[len(cp)/2]
	}
	if len(toxicSizes) == 0 || len(otherCTHSizes) == 0 {
		t.Fatal("missing toxic or non-toxic CTH threads")
	}
	if ms(toxicSizes) < ms(otherCTHSizes)*1.5 {
		t.Errorf("toxic median %v not boosted over %v", ms(toxicSizes), ms(otherCTHSizes))
	}
}

func TestOverlapQuotaAtGeneration(t *testing.T) {
	g := NewGenerator(Config{Seed: 43, VolumeScale: 10_000, PositiveScale: 10})
	boards := g.generateBoards()
	doxThreads := map[string]bool{}
	for i := range boards.Docs {
		if boards.Docs[i].Truth.IsDox {
			doxThreads[boards.Docs[i].ThreadID] = true
		}
	}
	var cthDocs, overlapped int
	for i := range boards.Docs {
		d := &boards.Docs[i]
		if d.Truth.IsCTH {
			cthDocs++
			if doxThreads[d.ThreadID] {
				overlapped++
			}
		}
	}
	share := float64(overlapped) / float64(cthDocs)
	// The generator plants ~8.5% (§6.3); allow a band for the dual docs
	// and quota rounding.
	if share < 0.05 || share > 0.14 {
		t.Errorf("generated CTH-dox overlap = %.3f, want ~0.085", share)
	}
}

func TestRepeatedDoxPIIReuse(t *testing.T) {
	g := NewGenerator(Config{Seed: 47, VolumeScale: 20_000, PositiveScale: 10})
	pastes := g.generateFlat(PlatformPastes)
	// Group dox PII sets by target.
	byTarget := map[int][][]pii.Type{}
	for i := range pastes.Docs {
		d := &pastes.Docs[i]
		if d.Truth.IsDox {
			byTarget[d.Truth.TargetID] = append(byTarget[d.Truth.TargetID], d.Truth.DoxPII)
		}
	}
	repeats := 0
	for _, sets := range byTarget {
		if len(sets) < 2 {
			continue
		}
		repeats++
		// Later doxes of the same persona must be supersets of earlier
		// ones and must carry a linkable OSN handle.
		have := map[pii.Type]bool{}
		for _, t2 := range sets[0] {
			have[t2] = true
		}
		for _, set := range sets[1:] {
			next := map[pii.Type]bool{}
			for _, t2 := range set {
				next[t2] = true
			}
			for t2 := range have {
				if !next[t2] {
					t.Fatalf("repeated dox dropped PII type %s", t2)
				}
			}
			osn := false
			for _, t2 := range set {
				switch t2 {
				case pii.Facebook, pii.Instagram, pii.Twitter, pii.YouTube:
					osn = true
				}
			}
			if !osn {
				t.Fatal("repeated dox without OSN handle")
			}
			have = next
		}
	}
	if repeats < 20 {
		t.Fatalf("too few repeated targets to test: %d", repeats)
	}
}
