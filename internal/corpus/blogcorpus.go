package corpus

import (
	"fmt"
	"strings"

	"harassrepro/internal/pii"
	"harassrepro/internal/randx"
	"harassrepro/internal/synth"
)

// BlogStyle distinguishes the two harassment registers §8 documents:
// far-right blogs (dox + call to overload, sparse contact PII) and
// antifascist blogs (narrative dox with rich PII, location facts, and
// public/private reputational-harm goals).
type BlogStyle int

const (
	// StyleFarRight matches The Daily Stormer pattern (§8.3).
	StyleFarRight BlogStyle = iota
	// StyleAntifascist matches The Torch / NoBlogs pattern (§8.2).
	StyleAntifascist
)

// BlogSpec describes one generated blog.
type BlogSpec struct {
	Name  string
	Style BlogStyle
	// Posts is the total number of entries to generate.
	Posts int
	// Relevant is the number of entries that match the §8.1 PII keyword
	// queries ("phone", "email", "dox", "dob:").
	Relevant int
	// Doxes is the number of actual doxes among the entries.
	Doxes int
	// KeywordMissDoxes is the number of actual doxes that deliberately
	// avoid the keywords (the paper's Torch evaluation found the
	// keyword query missed 10 of 33 doxes).
	KeywordMissDoxes int
}

// DefaultBlogSpecs returns the three §8 blogs at 1/scale of their Table 8
// post volumes. Relevant and dox counts scale with posts, preserving the
// paper's relevance and dox rates; The Torch is small enough to keep at
// full scale, including its 33 doxes of which 10 are keyword-invisible.
func DefaultBlogSpecs(scale int) []BlogSpec {
	if scale <= 0 {
		scale = 10
	}
	clamp := func(v, lo int) int {
		if v < lo {
			return lo
		}
		return v
	}
	dsRelevant := clamp(3072/scale, 10)
	nbRelevant := clamp(668/scale, 10)
	return []BlogSpec{
		{
			Name:     "daily-stormer.example",
			Style:    StyleFarRight,
			Posts:    clamp(36851/scale, dsRelevant+10),
			Relevant: dsRelevant,
			Doxes:    clamp(dsRelevant*90/3072, 5), // 2.9% of relevant
		},
		{
			Name:     "noblogs.example",
			Style:    StyleAntifascist,
			Posts:    clamp(78108/scale, nbRelevant+10),
			Relevant: nbRelevant,
			Doxes:    clamp(nbRelevant*66/668, 5), // 9.8% of relevant
		},
		{
			Name:             "torch-network.example",
			Style:            StyleAntifascist,
			Posts:            93,
			Relevant:         38,
			Doxes:            33,
			KeywordMissDoxes: 10,
		},
	}
}

// GenerateBlogs produces the blogs corpus from the given specs. Blog
// entries are long-form; doxes follow the per-style §8 structure.
func (g *Generator) GenerateBlogs(specs []BlogSpec) *Corpus {
	c := &Corpus{Dataset: Blogs}
	rng := g.rng.Split("blogs")
	docN := 0
	for _, spec := range specs {
		brng := rng.Split(spec.Name)
		keywordDoxes := spec.Doxes - spec.KeywordMissDoxes
		if keywordDoxes < 0 {
			keywordDoxes = 0
		}
		relevantNonDox := spec.Relevant - keywordDoxes
		if relevantNonDox < 0 {
			relevantNonDox = 0
		}
		benign := spec.Posts - spec.Relevant - spec.KeywordMissDoxes
		if benign < 0 {
			benign = 0
		}

		kinds := make([]int, 0, spec.Posts) // 0 benign, 1 relevant non-dox, 2 dox w/ keywords, 3 dox w/o keywords
		for i := 0; i < benign; i++ {
			kinds = append(kinds, 0)
		}
		for i := 0; i < relevantNonDox; i++ {
			kinds = append(kinds, 1)
		}
		for i := 0; i < keywordDoxes; i++ {
			kinds = append(kinds, 2)
		}
		for i := 0; i < spec.KeywordMissDoxes; i++ {
			kinds = append(kinds, 3)
		}
		randx.Shuffle(brng, kinds)

		for i, kind := range kinds {
			drng := brng.SplitN("post", i)
			var text string
			var truth GroundTruth
			switch kind {
			case 1:
				text = relevantNonDoxPost(drng)
			case 2:
				text, truth = g.blogDox(spec.Style, true, drng)
			case 3:
				text, truth = g.blogDox(spec.Style, false, drng)
			default:
				text = synth.Benign(synth.FlavorBlog, drng)
			}
			c.Docs = append(c.Docs, Document{
				ID:       docID(PlatformBlogs, docN),
				Dataset:  Blogs,
				Platform: PlatformBlogs,
				Domain:   spec.Name,
				Author:   synth.SyntheticUsername(drng),
				Date:     dateFor(Blogs, drng.Float64()),
				Text:     text,
				Truth:    truth,
			})
			docN++
		}
	}
	return c
}

// relevantNonDoxPost renders a blog entry that matches the PII keyword
// query without being a dox (e.g. contact boilerplate or commentary that
// mentions doxing).
func relevantNonDoxPost(rng *randx.Source) string {
	templates := []string{
		"send tips to the editors by email, or call the tip line phone during business hours. " + blogFiller(rng),
		"another site got caught trying to dox one of our writers; statement below. " + blogFiller(rng),
		"update your subscriptions: the newsletter email changed this month. " + blogFiller(rng),
		"we never publish dob: fields or other records sent anonymously without verification. " + blogFiller(rng),
	}
	return randx.Pick(rng, templates)
}

func blogFiller(rng *randx.Source) string {
	n := 2 + rng.Intn(3)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = synth.Benign(synth.FlavorBlog, rng)
	}
	return strings.Join(parts, " ")
}

// blogDox renders a long-form blog dox. Antifascist-style doxes open with
// a narration of the target's activity, include rich PII and location
// facts, and call for alerting the community/landlord/employer (§8.2).
// Far-right-style doxes carry sparse contact PII (email or Twitter) and
// usually a call to overload the target (§8.3). withKeywords controls
// whether the §8.1 query keywords appear.
func (g *Generator) blogDox(style BlogStyle, withKeywords bool, rng *randx.Source) (string, GroundTruth) {
	targetID := g.doxTarget(PlatformBlogs, rng)
	persona := g.personas[targetID]
	subj, obj, poss := persona.Pronouns()
	var b strings.Builder
	var types []pii.Type

	switch style {
	case StyleFarRight:
		fmt.Fprintf(&b, "%s has been writing the usual screeds again, and %s thinks nobody will answer. ", persona.FullName(), subj)
		b.WriteString(blogFiller(rng) + " ")
		if withKeywords {
			fmt.Fprintf(&b, "%s email is %s. ", poss, persona.Email)
			types = append(types, pii.Email)
		} else {
			fmt.Fprintf(&b, "reach %s on twitter: @%s. ", obj, persona.TwitterHandle)
			types = append(types, pii.Twitter)
		}
		// 60% include an explicit call to overload (§8.3).
		if rng.Bool(0.6) {
			fmt.Fprintf(&b, "%s spam %s inbox until %s logs off for good.", synth.Mobilizer(rng), poss, subj)
		}
	default: // StyleAntifascist
		fmt.Fprintf(&b, "%s of %s, %s, has been identified attending the rally downtown. ", persona.FullName(), persona.City, persona.State)
		fmt.Fprintf(&b, "photos from the march match %s profile. the community deserves to know who organizes next door. ", poss)
		b.WriteString(blogFiller(rng) + " ")
		fmt.Fprintf(&b, "%s lives at %s. ", subj, persona.FullAddress())
		types = append(types, pii.Address)
		if withKeywords {
			fmt.Fprintf(&b, "phone: %s. email: %s. ", persona.FormattedPhone(), persona.Email)
			types = append(types, pii.Phone, pii.Email)
		} else {
			fmt.Fprintf(&b, "fb: %s. ", persona.FacebookHandle)
			types = append(types, pii.Facebook)
		}
		fmt.Fprintf(&b, "alert %s landlord and %s employer at %s; post flyers if you are local. readers with more information are invited to send it in.", poss, poss, persona.Employer)
	}
	g.recordDox(targetID, PlatformBlogs)
	return b.String(), GroundTruth{
		IsDox:        true,
		DoxPII:       types,
		TargetID:     targetID,
		TargetGender: persona.Gender,
	}
}
