package corpus

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, VolumeScale: 400_000, PositiveScale: 100})
	gab := g.generateFlat(PlatformGab)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, gab.Docs, true); err != nil {
		t.Fatal(err)
	}
	docs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != gab.Len() {
		t.Fatalf("round trip lost documents: %d vs %d", len(docs), gab.Len())
	}
	for i := range docs {
		orig := &gab.Docs[i]
		got := &docs[i]
		if got.ID != orig.ID || got.Text != orig.Text || got.Platform != orig.Platform || got.Date != orig.Date {
			t.Fatalf("doc %d differs after round trip", i)
		}
		if got.Truth.IsCTH != orig.Truth.IsCTH || got.Truth.IsDox != orig.Truth.IsDox {
			t.Fatalf("doc %d truth differs after round trip", i)
		}
	}
}

func TestJSONLWithoutTruth(t *testing.T) {
	g := NewGenerator(Config{Seed: 5, VolumeScale: 400_000, PositiveScale: 100})
	gab := g.generateFlat(PlatformGab)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, gab.Docs[:10], false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "is_cth") {
		t.Error("truth labels leaked without includeTruth")
	}
	docs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if docs[i].Truth.IsCTH || docs[i].Truth.IsDox {
			t.Error("truth should default to false")
		}
	}
}

func TestReadJSONLMinimal(t *testing.T) {
	in := `{"text":"hello world"}
{"text":"second doc","platform":"gab"}

{"text":"third"}`
	docs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0].ID == "" || docs[0].ID == docs[2].ID {
		t.Errorf("missing-ID docs not assigned unique IDs: %q %q", docs[0].ID, docs[2].ID)
	}
	if docs[1].Platform != PlatformGab {
		t.Errorf("platform = %q", docs[1].Platform)
	}
}

func TestReadJSONLLenientQuarantinesBadLines(t *testing.T) {
	in := strings.Join([]string{
		`{"text":"good one"}`,
		`{broken json`,
		`{"text":"good two","platform":"gab"}`,
		`{"id":"no-text"}`,
		``,
		`not json at all`,
		`{"text":"good three"}`,
	}, "\n")
	docs, bad, err := ReadJSONLLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("docs = %d, want 3", len(docs))
	}
	if docs[0].Text != "good one" || docs[1].Platform != PlatformGab || docs[2].Text != "good three" {
		t.Fatalf("wrong docs survived: %+v", docs)
	}
	wantLines := []int{2, 4, 6}
	if len(bad) != len(wantLines) {
		t.Fatalf("bad = %d lines (%v), want %v", len(bad), bad, wantLines)
	}
	for i, le := range bad {
		if le.Line != wantLines[i] {
			t.Errorf("bad[%d].Line = %d, want %d", i, le.Line, wantLines[i])
		}
		if !strings.Contains(le.Error(), "line") {
			t.Errorf("LineError message lacks line number: %v", le)
		}
	}
	if !strings.Contains(bad[1].Err.Error(), "missing text") {
		t.Errorf("bad[1] = %v, want missing text", bad[1])
	}
	if bad[0].Preview == "" {
		t.Error("quarantined line has no preview")
	}
}

func TestReadJSONLLenientOversizedLine(t *testing.T) {
	huge := `{"text":"` + strings.Repeat("a", 500) + `"}`
	in := `{"text":"ok1"}` + "\n" + huge + "\n" + `{"text":"ok2"}`
	docs, bad, err := ReadJSONLOpts(strings.NewReader(in), JSONLOptions{Lenient: true, MaxLineBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Text != "ok1" || docs[1].Text != "ok2" {
		t.Fatalf("docs = %+v", docs)
	}
	if len(bad) != 1 || bad[0].Line != 2 {
		t.Fatalf("bad = %+v, want line 2 quarantined", bad)
	}
	if !errors.Is(bad[0], ErrLineTooLong) {
		t.Fatalf("bad[0] = %v, want ErrLineTooLong", bad[0].Err)
	}
}

func TestReadJSONLStrictOversizedLineNamesLine(t *testing.T) {
	// An oversized line larger than the internal read buffer must
	// produce a clear line-numbered error, not bufio.ErrTooLong or a
	// silent truncated read.
	huge := `{"text":"` + strings.Repeat("b", 200<<10) + `"}`
	in := `{"text":"ok"}` + "\n" + huge
	_, _, err := ReadJSONLOpts(strings.NewReader(in), JSONLOptions{MaxLineBytes: 64 << 10})
	if err == nil {
		t.Fatal("oversized line should error in strict mode")
	}
	if !errors.Is(err, ErrLineTooLong) || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want ErrLineTooLong naming line 2", err)
	}
}

func TestReadJSONLLenientLineNumbersWithBlanksAndCRLF(t *testing.T) {
	in := "{\"text\":\"one\"}\r\n\r\n{bad\r\n{\"text\":\"two\"}\r\n"
	docs, bad, err := ReadJSONLLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].Text != "one" || docs[1].Text != "two" {
		t.Fatalf("docs = %+v", docs)
	}
	if len(bad) != 1 || bad[0].Line != 3 {
		t.Fatalf("bad = %+v, want only line 3", bad)
	}
	// Auto-assigned IDs embed the true line number.
	if docs[1].ID != "jsonl-00000004" {
		t.Errorf("doc 2 ID = %q, want line-4 derived", docs[1].ID)
	}
}

func TestReadJSONLStrictUnchangedOnCleanInput(t *testing.T) {
	// Strict and lenient agree on clean input.
	in := `{"text":"a"}` + "\n" + `{"text":"b"}`
	strict, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	lenient, bad, err := ReadJSONLLenient(strings.NewReader(in))
	if err != nil || len(bad) != 0 {
		t.Fatalf("lenient on clean input: bad=%v err=%v", bad, err)
	}
	if len(strict) != len(lenient) {
		t.Fatalf("strict %d docs, lenient %d", len(strict), len(lenient))
	}
	for i := range strict {
		if fmt.Sprintf("%+v", strict[i]) != fmt.Sprintf("%+v", lenient[i]) {
			t.Fatalf("doc %d differs: %+v vs %+v", i, strict[i], lenient[i])
		}
	}
}

func TestReadJSONLStrictReturnsPartialDocs(t *testing.T) {
	// Strict mode aborts on the first bad line but must not discard the
	// documents already parsed: the docs/bad/err contract matches the
	// read-error path.
	in := strings.Join([]string{
		`{"text":"one"}`,
		`{"text":"two"}`,
		`{broken`,
		`{"text":"never reached"}`,
	}, "\n")
	docs, bad, err := ReadJSONLOpts(strings.NewReader(in), JSONLOptions{})
	if err == nil {
		t.Fatal("strict mode should error on the bad line")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3 named", err)
	}
	if bad != nil {
		t.Errorf("strict mode bad = %v, want nil", bad)
	}
	if len(docs) != 2 || docs[0].Text != "one" || docs[1].Text != "two" {
		t.Fatalf("partial docs = %+v, want the two parsed before the failure", docs)
	}

	// Same contract for an oversized line.
	in = `{"text":"ok"}` + "\n" + `{"text":"` + strings.Repeat("x", 500) + `"}`
	docs, _, err = ReadJSONLOpts(strings.NewReader(in), JSONLOptions{MaxLineBytes: 100})
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
	if len(docs) != 1 || docs[0].Text != "ok" {
		t.Fatalf("partial docs on oversized line = %+v", docs)
	}
}

func TestReadJSONLFinalLineCRLFVariants(t *testing.T) {
	// A CRLF-terminated final line immediately before EOF has its CR
	// stripped like any other line.
	docs, err := ReadJSONL(strings.NewReader("{\"text\":\"a\"}\r\n{\"id\":\"last\",\"text\":\"b\"}\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[1].Text != "b" || docs[1].ID != "last" {
		t.Fatalf("docs = %+v", docs)
	}

	// A final unterminated line carrying a bare trailing CR (CRLF file
	// truncated between CR and LF) still parses: the CR lands after the
	// closing brace, where the JSON decoder treats it as whitespace.
	docs, err = ReadJSONL(strings.NewReader("{\"text\":\"a\"}\r\n{\"text\":\"b\"}\r"))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[1].Text != "b" {
		t.Fatalf("docs = %+v", docs)
	}
}

func TestReadJSONLOversizedFinalLineNoNewline(t *testing.T) {
	// An oversized line immediately followed by EOF without a trailing
	// newline must still be reported (with its line number), not dropped
	// with the read loop's empty-final-read return.
	in := `{"text":"ok"}` + "\n" + `{"text":"` + strings.Repeat("z", 300) + `"}`
	docs, bad, err := ReadJSONLOpts(strings.NewReader(in), JSONLOptions{Lenient: true, MaxLineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Text != "ok" {
		t.Fatalf("docs = %+v", docs)
	}
	if len(bad) != 1 || bad[0].Line != 2 || !errors.Is(bad[0], ErrLineTooLong) {
		t.Fatalf("bad = %+v, want line 2 ErrLineTooLong", bad)
	}

	// Same input, oversized larger than the internal 64KiB read buffer,
	// so the discard-to-end path crosses multiple fragments before EOF.
	in = `{"text":"ok"}` + "\n" + `{"text":"` + strings.Repeat("z", 200<<10) + `"}`
	docs, bad, err = ReadJSONLOpts(strings.NewReader(in), JSONLOptions{Lenient: true, MaxLineBytes: 96 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || len(bad) != 1 || bad[0].Line != 2 {
		t.Fatalf("docs=%d bad=%+v, want 1 doc and line 2 quarantined", len(docs), bad)
	}
}

func TestReadJSONLBlankLinesCountTowardLineNumbers(t *testing.T) {
	// Blank lines are skipped but still consume a line number, so a bad
	// line's reported position matches the editor's view of the file.
	in := "{\"text\":\"one\"}\n\n\n{bad\n\n{\"text\":\"two\"}\n"
	docs, bad, err := ReadJSONLLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %+v", docs)
	}
	if len(bad) != 1 || bad[0].Line != 4 {
		t.Fatalf("bad = %+v, want line 4", bad)
	}
	if docs[1].ID != "jsonl-00000006" {
		t.Errorf("doc 2 ID = %q, want derived from true line 6", docs[1].ID)
	}

	// Strict mode reports the same blank-adjusted number.
	_, _, err = ReadJSONLOpts(strings.NewReader(in), JSONLOptions{})
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("strict err = %v, want line 4 named", err)
	}
}

func TestLineErrorReportsByteOffset(t *testing.T) {
	// Every quarantined line carries the byte offset of its first byte,
	// so tooling can seek to the damage — essential for oversized lines,
	// where the line number alone can hide megabytes of data.
	l1 := `{"text":"good one"}`
	l2 := `{broken json`
	l3 := `{"text":"` + strings.Repeat("q", 400) + `"}`
	l4 := `{"text":"good two"}`
	in := strings.Join([]string{l1, l2, l3, l4}, "\n")

	docs, bad, err := ReadJSONLOpts(strings.NewReader(in), JSONLOptions{Lenient: true, MaxLineBytes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || len(bad) != 2 {
		t.Fatalf("docs=%d bad=%+v, want 2 docs and 2 quarantined", len(docs), bad)
	}
	wantOffsets := []int64{
		int64(len(l1) + 1),               // line 2 starts after l1 + "\n"
		int64(len(l1) + 1 + len(l2) + 1), // line 3: the oversized one
	}
	for i, le := range bad {
		if le.Offset != wantOffsets[i] {
			t.Errorf("bad[%d].Offset = %d, want %d", i, le.Offset, wantOffsets[i])
		}
		if !strings.Contains(le.Error(), fmt.Sprintf("byte %d", wantOffsets[i])) {
			t.Errorf("bad[%d] message lacks byte offset: %v", i, le)
		}
	}
	if !errors.Is(bad[1], ErrLineTooLong) {
		t.Fatalf("bad[1] = %v, want ErrLineTooLong", bad[1].Err)
	}

	// CRLF terminators count toward offsets (2 bytes per line break).
	in = "{\"text\":\"a\"}\r\n{bad\r\n{\"text\":\"b\"}\r\n"
	_, bad, err = ReadJSONLLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0].Offset != 14 {
		t.Fatalf("CRLF bad = %+v, want offset 14", bad)
	}

	// Strict mode reports the offset too, including for oversized lines
	// that cross the internal read buffer.
	huge := `{"text":"` + strings.Repeat("w", 200<<10) + `"}`
	in = l1 + "\n" + huge
	_, _, err = ReadJSONLOpts(strings.NewReader(in), JSONLOptions{MaxLineBytes: 64 << 10})
	if err == nil || !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	}
	var le LineError
	if !errors.As(err, &le) || le.Offset != int64(len(l1)+1) {
		t.Fatalf("strict err = %v, want LineError with offset %d", err, len(l1)+1)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed line should error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"id":"x"}`)); err == nil {
		t.Error("missing text should error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"text":"ok"}` + "\n" + `{broken`)); err == nil {
		t.Error("error should name the bad line")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}
