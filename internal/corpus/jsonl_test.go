package corpus

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, VolumeScale: 400_000, PositiveScale: 100})
	gab := g.generateFlat(PlatformGab)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, gab.Docs, true); err != nil {
		t.Fatal(err)
	}
	docs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != gab.Len() {
		t.Fatalf("round trip lost documents: %d vs %d", len(docs), gab.Len())
	}
	for i := range docs {
		orig := &gab.Docs[i]
		got := &docs[i]
		if got.ID != orig.ID || got.Text != orig.Text || got.Platform != orig.Platform || got.Date != orig.Date {
			t.Fatalf("doc %d differs after round trip", i)
		}
		if got.Truth.IsCTH != orig.Truth.IsCTH || got.Truth.IsDox != orig.Truth.IsDox {
			t.Fatalf("doc %d truth differs after round trip", i)
		}
	}
}

func TestJSONLWithoutTruth(t *testing.T) {
	g := NewGenerator(Config{Seed: 5, VolumeScale: 400_000, PositiveScale: 100})
	gab := g.generateFlat(PlatformGab)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, gab.Docs[:10], false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "is_cth") {
		t.Error("truth labels leaked without includeTruth")
	}
	docs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs {
		if docs[i].Truth.IsCTH || docs[i].Truth.IsDox {
			t.Error("truth should default to false")
		}
	}
}

func TestReadJSONLMinimal(t *testing.T) {
	in := `{"text":"hello world"}
{"text":"second doc","platform":"gab"}

{"text":"third"}`
	docs, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[0].ID == "" || docs[0].ID == docs[2].ID {
		t.Errorf("missing-ID docs not assigned unique IDs: %q %q", docs[0].ID, docs[2].ID)
	}
	if docs[1].Platform != PlatformGab {
		t.Errorf("platform = %q", docs[1].Platform)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed line should error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"id":"x"}`)); err == nil {
		t.Error("missing text should error")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"text":"ok"}` + "\n" + `{broken`)); err == nil {
		t.Error("error should name the bad line")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}
