package corpus

import (
	"harassrepro/internal/gender"
	"harassrepro/internal/taxonomy"
)

// t10 holds the Table 10 attack-type counts per inferred target gender
// (columns: unknown, female, male; column totals 2,711 / 1,160 / 2,383).
// The generator uses it to tilt the per-data-set attack mixture by target
// gender so that both Table 11 (per data set) and Table 10 (per gender)
// marginals are approximately reproduced.
var t10 = map[taxonomy.Sub][3]float64{
	taxonomy.SubDoxing:               {297, 215, 481},
	taxonomy.SubLeakedChats:          {4, 13, 10},
	taxonomy.SubNonConsensual:        {73, 75, 48},
	taxonomy.SubOutingDeadnaming:     {1, 2, 3},
	taxonomy.SubDoxPropagation:       {57, 19, 127},
	taxonomy.SubContentLeakMisc:      {5, 4, 11},
	taxonomy.SubImpersonatedProfiles: {65, 15, 16},
	taxonomy.SubSyntheticPorn:        {2, 7, 2},
	taxonomy.SubImpersonationMisc:    {5, 3, 2},
	taxonomy.SubAccountLockout:       {2, 0.1, 3},
	taxonomy.SubLockoutMisc:          {0.1, 1, 4},
	taxonomy.SubNegativeRatings:      {9, 1, 9},
	taxonomy.SubRaiding:              {283, 184, 236},
	taxonomy.SubSpamming:             {23, 7, 26},
	taxonomy.SubOverloadingMisc:      {2, 3, 22},
	taxonomy.SubHashtagHijacking:     {69, 1, 8},
	taxonomy.SubPublicOpinionMisc:    {112, 24, 41},
	taxonomy.SubFalseReporting:       {371, 169, 337},
	taxonomy.SubMassFlagging:         {818, 145, 532},
	taxonomy.SubReportingMisc:        {427, 108, 299},
	taxonomy.SubReputationPrivate:    {58, 87, 71},
	taxonomy.SubReputationPublic:     {202, 54, 142},
	taxonomy.SubReputationMisc:       {18, 17, 24},
	taxonomy.SubStalkingTracking:     {11, 7, 10},
	taxonomy.SubSurveillanceMisc:     {4, 2, 0.1},
	taxonomy.SubHateSpeech:           {60, 40, 95},
	taxonomy.SubUnwantedExplicit:     {10, 28, 18},
	taxonomy.SubToxicMisc:            {4, 5, 30},
	taxonomy.SubGeneric:              {114, 99, 155},
}

// t10Totals are the Table 10 column totals (annotated CTH per gender).
var t10Totals = [3]float64{2711, 1160, 2383}

func genderColumn(g gender.Gender) int {
	switch g {
	case gender.Female:
		return 1
	case gender.Male:
		return 2
	default:
		return 0
	}
}

// genderTilt returns the multiplicative tilt for subcategory s under
// inferred gender g: the ratio of the sub's within-gender share to its
// overall share. Values above 1 mean the attack type is over-represented
// for that gender (e.g. private reputational harm for female targets).
func genderTilt(s taxonomy.Sub, g gender.Gender) float64 {
	row, ok := t10[s]
	if !ok {
		return 1
	}
	col := genderColumn(g)
	overall := (row[0] + row[1] + row[2]) / (t10Totals[0] + t10Totals[1] + t10Totals[2])
	within := row[col] / t10Totals[col]
	if overall == 0 {
		return 1
	}
	return within / overall
}
