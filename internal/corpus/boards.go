package corpus

import (
	"fmt"
	"math"
	"sort"

	"harassrepro/internal/randx"
	"harassrepro/internal/synth"
)

// Board thread placement parameters from the paper's thread analyses:
// calls to harassment appear as the first post in 3.7% of cases and the
// last in 2.7% (§6.3); doxes appear first in 9.7% and last in 2.7%
// (§7.4); otherwise positions are "fairly evenly distributed over the
// length of the thread".
const (
	cthFirstRate = 0.037
	cthLastRate  = 0.027
	doxFirstRate = 0.097
	doxLastRate  = 0.027
)

// overlapCTHDocShare is the §6.3 thread-overlap target: ~8.5% of CTH
// documents share a thread with a dox.
const overlapCTHDocShare = 0.0853

// benignSizeSigma is the log-normal sigma of board thread sizes; mu is
// derived from the mean thread size in generateBoards.
const benignSizeSigma = 1.0

// boardsToxicRate is the share of boards CTH carrying a toxic-content
// label (Table 11 boards column: 7.62%).
const boardsToxicRate = 0.0762

// threadPlan describes one board thread before rendering.
type threadPlan struct {
	cth   int  // CTH posts to plant
	dox   int  // dox posts to plant
	size  int  // total posts including positives
	toxic bool // thread hosts toxic-content CTH (response-boosted)
}

// generateBoards produces the boards corpus: threaded posts across 43
// synthetic board domains with planted CTH/dox documents following the
// paper's position, response-size and overlap structure.
//
// Every positive document draws its thread with probability proportional
// to thread size (with replacement), exactly matching the distribution of
// a random-post baseline — so, as in §6.3, no attack type except the
// deliberately boosted toxic-content threads differs significantly in
// response volume. Because independent size-biased draws would make CTH
// and doxes co-occur in large threads far more often than the paper's
// 8.5%, dox placements are then decorrelated onto size-matched partner
// threads, and the §6.3 overlap quota is planted back explicitly.
func (g *Generator) generateBoards() *Corpus {
	p := PlatformBoards
	rng := g.rng.Split("boards")
	totalBudget := g.volumeFor(p)
	nCTH := g.plantedCTH(p)
	nDox := g.plantedDox(p)

	// Thread sizes: log-normal with a fixed mean; the budget sets the
	// thread count. When the configured volume cannot host the planted
	// positives (mismatched Volume/Positive scales), the budget grows.
	if floor := (nCTH + nDox) * 8; totalBudget < floor {
		totalBudget = floor
	}
	const meanSize = 18.0
	mu := math.Log(meanSize) - benignSizeSigma*benignSizeSigma/2
	var plans []threadPlan
	posts := 0
	for posts < totalBudget {
		size := int(rng.LogNormal(mu, benignSizeSigma)) + 2
		if size > 600 {
			size = 600
		}
		if posts+size > totalBudget {
			size = totalBudget - posts
			if size < 2 {
				break
			}
		}
		plans = append(plans, threadPlan{size: size})
		posts += size
	}
	n := len(plans)
	capOf := func(i int) int {
		c := plans[i].size - 2
		if c < 1 {
			c = 1
		}
		return c
	}

	// Per-positive size-biased thread draws.
	weights := make([]float64, n)
	for i := range plans {
		weights[i] = float64(plans[i].size)
	}
	sampler := randx.NewWeighted(weights)
	cthCount := make([]int, n)
	doxCount := make([]int, n)
	place := func(counts []int, want int) {
		placed := 0
		for tries := 0; placed < want && tries < want*400+2000; tries++ {
			i := sampler.Sample(rng)
			if cthCount[i]+doxCount[i] < capOf(i) {
				counts[i]++
				placed++
			}
		}
	}
	place(cthCount, nCTH)
	place(doxCount, nDox)

	// Decorrelate: move dox placements out of CTH threads onto the
	// nearest same-size thread free of CTH, preserving the dox
	// thread-size distribution.
	bySize := make([]int, n)
	for i := range bySize {
		bySize[i] = i
	}
	sort.Slice(bySize, func(a, b int) bool { return plans[bySize[a]].size < plans[bySize[b]].size })
	rank := make([]int, n)
	for r, i := range bySize {
		rank[i] = r
	}
	for i := 0; i < n; i++ {
		if cthCount[i] == 0 || doxCount[i] == 0 {
			continue
		}
		moved := false
		for d := 1; d < n && !moved; d++ {
			for _, r := range []int{rank[i] - d, rank[i] + d} {
				if r < 0 || r >= n {
					continue
				}
				j := bySize[r]
				if cthCount[j] == 0 && doxCount[j]+doxCount[i] <= capOf(j) {
					doxCount[j] += doxCount[i]
					doxCount[i] = 0
					moved = true
					break
				}
			}
		}
	}

	// Plant the §6.3 overlap quota: move single dox placements into
	// CTH threads until ~8.5% of CTH documents share a thread with a dox.
	targetOverlap := int(float64(nCTH) * overlapCTHDocShare)
	currentOverlap := 0
	for i := 0; i < n; i++ {
		if cthCount[i] > 0 && doxCount[i] > 0 {
			currentOverlap += cthCount[i]
		}
	}
	order := shuffledThreadIdx(n, rng)
	donors := make([]int, 0, n)
	for _, i := range order {
		if doxCount[i] > 0 && cthCount[i] == 0 {
			donors = append(donors, i)
		}
	}
	di := 0
	for _, i := range order {
		if currentOverlap >= targetOverlap || di >= len(donors) {
			break
		}
		if cthCount[i] == 0 || doxCount[i] > 0 || cthCount[i]+1 > capOf(i) {
			continue
		}
		doxCount[donors[di]]--
		di++
		doxCount[i]++
		currentOverlap += cthCount[i]
	}

	// Toxic concentration: accumulate CTH threads until they cover the
	// toxic quota; their CTH are forced toxic and their response volume
	// is boosted. Keeping toxic threads few keeps their post share small
	// so the boost does not shift the baseline distribution.
	toxicCTH := int(float64(nCTH) * boardsToxicRate)
	covered := 0
	for _, i := range order {
		if covered >= toxicCTH {
			break
		}
		if cthCount[i] > 0 && doxCount[i] == 0 && !plans[i].toxic {
			plans[i].toxic = true
			covered += cthCount[i]
		}
	}
	for i := range plans {
		plans[i].cth = cthCount[i]
		plans[i].dox = doxCount[i]
		if plans[i].toxic {
			// The §6.3 response boost (t = 2.85 in the paper).
			plans[i].size = plans[i].size*5/2 + 15
		}
	}

	domains := domainsFor(p)
	c := &Corpus{Dataset: Boards, Docs: make([]Document, 0, posts)}
	docN := 0
	for ti, plan := range plans {
		threadID := fmt.Sprintf("boards-t%06d", ti)
		trng := rng.SplitN("thread", ti)
		domain := domains[trng.Intn(len(domains))]
		dateF := trng.Float64()

		type positioned struct {
			text  string
			truth GroundTruth
		}
		var positives []positioned
		tm := toxicForbid
		if plan.toxic {
			tm = toxicForce
		}
		for i := 0; i < plan.cth; i++ {
			text, truth := g.cthDocToxic(p, trng.SplitN("cth", i), tm)
			positives = append(positives, positioned{text, truth})
		}
		for i := 0; i < plan.dox; i++ {
			text, truth := g.doxDoc(p, trng.SplitN("dox", i))
			positives = append(positives, positioned{text, truth})
		}
		size := plan.size
		if size < len(positives)+2 {
			size = len(positives) + 2
		}

		// Choose slots for positives.
		slots := make(map[int]positioned, len(positives))
		taken := make(map[int]bool, len(positives))
		for _, pos := range positives {
			slot := choosePosition(size, pos.truth, taken, trng)
			slots[slot] = pos
			taken[slot] = true
		}

		for i := 0; i < size; i++ {
			doc := Document{
				ID:          docID(p, docN),
				Dataset:     Boards,
				Platform:    p,
				Domain:      domain,
				ThreadID:    threadID,
				PosInThread: i,
				ThreadSize:  size,
				Author:      synth.SyntheticUsername(trng),
				Date:        dateFor(Boards, dateF),
			}
			if pos, ok := slots[i]; ok {
				doc.Text = pos.text
				doc.Truth = pos.truth
			} else if i == 0 {
				doc.Text = synth.Benign(synth.FlavorBoard, trng)
				doc.Truth = GroundTruth{HardNegative: looksMobilizing(doc.Text)}
			} else {
				doc.Text = synth.ThreadReply(trng)
				doc.Truth = GroundTruth{HardNegative: looksMobilizing(doc.Text)}
			}
			c.Docs = append(c.Docs, doc)
			docN++
		}
	}
	return c
}

func shuffledThreadIdx(n int, rng *randx.Source) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	randx.Shuffle(rng, idx)
	return idx
}

// choosePosition picks an unoccupied thread slot for a positive document
// following the paper's first/last/interior position rates.
func choosePosition(size int, truth GroundTruth, taken map[int]bool, rng *randx.Source) int {
	firstRate, lastRate := cthFirstRate, cthLastRate
	if truth.IsDox && !truth.IsCTH {
		firstRate, lastRate = doxFirstRate, doxLastRate
	}
	for attempt := 0; attempt < 64; attempt++ {
		var slot int
		r := rng.Float64()
		switch {
		case r < firstRate:
			slot = 0
		case r < firstRate+lastRate:
			slot = size - 1
		default:
			if size <= 2 {
				slot = rng.Intn(size)
			} else {
				slot = 1 + rng.Intn(size-2)
			}
		}
		if !taken[slot] {
			return slot
		}
	}
	// Dense thread: linear probe.
	for i := 0; i < size; i++ {
		if !taken[i] {
			return i
		}
	}
	return 0
}
