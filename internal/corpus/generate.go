package corpus

import (
	"fmt"
	"math"

	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/randx"
	"harassrepro/internal/synth"
	"harassrepro/internal/taxonomy"
)

// Config controls corpus generation scale.
type Config struct {
	// Seed drives all randomness; identical configs generate identical
	// corpora.
	Seed uint64
	// VolumeScale divides the Table 1 raw data set sizes. Default
	// 10,000 (≈70K total documents). The pastes data set is boosted 5x
	// relative to VolumeScale because its dox density at full scale is
	// far above the other platforms' (Table 4) and would otherwise not
	// fit.
	VolumeScale int
	// PositiveScale divides the paper's full-scale true-positive
	// volumes (Table 4 counts corrected for sampled annotation).
	// Default 10.
	PositiveScale int
}

func (c *Config) fillDefaults() {
	if c.VolumeScale <= 0 {
		c.VolumeScale = 10_000
	}
	if c.PositiveScale <= 0 {
		c.PositiveScale = 10
	}
}

// fullScaleTruePositives estimates the paper's full-scale true-positive
// counts per platform: for platforms where every above-threshold document
// was annotated (Table 4's * rows) this is the reported TP count; for
// sampled platforms it is aboveThreshold x measured precision.
var fullScaleTruePositives = struct {
	Dox map[Platform]float64
	CTH map[Platform]float64
}{
	Dox: map[Platform]float64{
		PlatformBoards:   14675 * (2549.0 / 3300.0),
		PlatformDiscord:  153,
		PlatformGab:      1657,
		PlatformPastes:   52849 * (3118.0 / 3241.0),
		PlatformTelegram: 948,
	},
	CTH: map[Platform]float64{
		PlatformBoards:   30685 * (2045.0 / 3016.0),
		PlatformGab:      1335,
		PlatformDiscord:  510,
		PlatformTelegram: 2364,
	},
}

// Generator produces the four machine-filtered corpora (boards, chat,
// gab, pastes). Blogs are generated separately (see GenerateBlogs) since
// the paper analyses them qualitatively.
type Generator struct {
	cfg Config
	rng *randx.Source

	// persona registry for repeated-dox structure: personaID -> persona,
	// and the platforms each persona has been doxed on. doxedAll keeps
	// insertion order so sampling is deterministic.
	personas    []synth.Persona
	doxedOn     map[int][]Platform
	doxedByPlat map[Platform][]int
	doxedAll    []int
	// lastPII remembers each doxed persona's exposed PII so that
	// repeated doxes extend rather than resample it (§7.3).
	lastPII map[int][]pii.Type
}

// NewGenerator returns a Generator for the configuration.
func NewGenerator(cfg Config) *Generator {
	cfg.fillDefaults()
	return &Generator{
		cfg:         cfg,
		rng:         randx.New(cfg.Seed).Split("corpus"),
		doxedOn:     map[int][]Platform{},
		doxedByPlat: map[Platform][]int{},
		lastPII:     map[int][]pii.Type{},
	}
}

// Generate produces all four machine-filtered corpora.
func (g *Generator) Generate() map[Dataset]*Corpus {
	out := map[Dataset]*Corpus{
		Boards: g.generateBoards(),
		Chat:   g.generateChat(),
		Gab:    g.generateFlat(PlatformGab),
		Pastes: g.generateFlat(PlatformPastes),
	}
	return out
}

// volumeFor returns the scaled corpus size for a platform.
func (g *Generator) volumeFor(p Platform) int {
	switch p {
	case PlatformPastes:
		return RawSizes[Pastes] * 5 / g.cfg.VolumeScale
	case PlatformGab:
		return RawSizes[Gab] / g.cfg.VolumeScale
	case PlatformDiscord:
		return RawSizes[Chat] * 2 / (5 * g.cfg.VolumeScale) // 40% of chat
	case PlatformTelegram:
		return RawSizes[Chat] * 3 / (5 * g.cfg.VolumeScale) // 60% of chat
	default:
		return RawSizes[Boards] / g.cfg.VolumeScale
	}
}

// plantedDox returns the number of true doxes to plant on a platform.
func (g *Generator) plantedDox(p Platform) int {
	return int(math.Round(fullScaleTruePositives.Dox[p] / float64(g.cfg.PositiveScale)))
}

// plantedCTH returns the number of true calls to harassment to plant.
// The CTH task does not apply to pastes (Table 2).
func (g *Generator) plantedCTH(p Platform) int {
	return int(math.Round(fullScaleTruePositives.CTH[p] / float64(g.cfg.PositiveScale)))
}

// newPersona mints a new persona, registering it in the target pool.
func (g *Generator) newPersona(rng *randx.Source) int {
	p := synth.NewPersona(rng)
	g.personas = append(g.personas, p)
	return len(g.personas) - 1
}

// doxTarget picks the persona for a new dox on a platform, implementing
// the repeated-dox structure of §7.3: on pastes a substantial share of
// doxes re-target already-doxed personas (same-platform re-posts
// dominate); other platforms repeat rarely; a small slice of repeats
// cross data sets.
func (g *Generator) doxTarget(p Platform, rng *randx.Source) int {
	// Rates are calibrated so that, counting both sides of each repeat
	// pair, ~20% of doxes overall are linkable repeats (§7.3), with the
	// overwhelming majority of repeats on pastes.
	repeatRate := 0.015
	if p == PlatformPastes {
		repeatRate = 0.14
	}
	if p == PlatformBoards {
		repeatRate = 0.03
	}
	if rng.Bool(repeatRate) {
		// 98% of repeated doxes are re-posts on the same data set; a
		// cross-data-set pick contaminates its whole linked group, so
		// the event rate sits well below the 2% group-level target.
		pool := g.doxedByPlat[p]
		if rng.Bool(0.004) || len(pool) == 0 {
			// Cross-data-set repeat: pick any previously doxed persona.
			if len(g.doxedAll) > 0 {
				return g.doxedAll[rng.Intn(len(g.doxedAll))]
			}
		} else {
			return pool[rng.Intn(len(pool))]
		}
	}
	return g.newPersona(rng)
}

// recordDox registers that persona id was doxed on platform p.
func (g *Generator) recordDox(id int, p Platform) {
	if len(g.doxedOn[id]) == 0 {
		g.doxedAll = append(g.doxedAll, id)
	}
	g.doxedOn[id] = append(g.doxedOn[id], p)
	g.doxedByPlat[p] = append(g.doxedByPlat[p], id)
}

// Persona returns the persona for a TargetID recorded in ground truth.
func (g *Generator) Persona(id int) synth.Persona { return g.personas[id] }

// sampleCTHLabel draws a planted taxonomy label for a platform and
// inferred-gender class, following Table 11 x Table 10 mixtures and the
// §6.2 multi-type co-occurrence structure.
func (g *Generator) sampleCTHLabel(p Platform, gcls gender.Gender, rng *randx.Source) taxonomy.Label {
	subs, base := subMixFor(p)
	weights := make([]float64, len(base))
	for i, s := range subs {
		weights[i] = base[i] * genderTilt(s, gcls)
		if weights[i] <= 0 {
			weights[i] = 1e-6
		}
	}
	w := randx.NewWeighted(weights)
	primary := subs[w.Sample(rng)]
	chosen := []taxonomy.Sub{primary}

	// Observed couplings (§6.2) apply unconditionally to their rare
	// primaries: 64% of surveillance calls also leak content; 30% of
	// impersonation calls also manipulate public opinion.
	switch primary.Parent() {
	case taxonomy.Surveillance:
		if rng.Bool(surveillanceLeakRate) {
			chosen = append(chosen, taxonomy.SubDoxing)
		}
	case taxonomy.Impersonation:
		if rng.Bool(impersonationPOMShare) {
			chosen = append(chosen, taxonomy.SubPublicOpinionMisc)
		}
	}

	// Multi-type structure: 13.3% of CTH carry >1 parent type; of those
	// 92.3% two, 6.5% three, ~1% four.
	if len(chosen) == 1 && rng.Bool(multiTypeRate) {
		extra := 1
		r := rng.Float64()
		if r < fourTypeShare {
			extra = 3
		} else if r < fourTypeShare+threeTypeShare {
			extra = 2
		}
		for len(chosen) < 1+extra {
			next := subs[w.Sample(rng)]
			dup := false
			for _, c := range chosen {
				if c.Parent() == next.Parent() {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, next)
			} else if rng.Bool(0.5) {
				// Avoid rare infinite loops on tiny mixtures.
				break
			}
		}
	}
	return taxonomy.NewLabel(chosen...)
}

// samplePII draws the PII types for a planted dox on a platform from the
// Table 6 mixture. Every dox carries at least one type; the empty draw is
// rejected and resampled so the conditional mixture keeps Table 6's
// relative shape (a fixed fallback type would inflate that type alone).
func (g *Generator) samplePII(p Platform, rng *randx.Source) []pii.Type {
	rates := piiRatesFor(p)
	for attempt := 0; attempt < 64; attempt++ {
		var out []pii.Type
		for _, t := range pii.AllTypes() {
			if rng.Bool(rates[t]) {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return []pii.Type{pii.Phone}
}

// toxicMode constrains whether a generated CTH may carry a toxic-content
// label. The boards generator concentrates toxic CTH in dedicated
// threads (whose response volume is boosted, §6.3), so it needs to force
// or forbid the toxic parent per thread.
type toxicMode int

const (
	toxicFree toxicMode = iota
	toxicForce
	toxicForbid
)

// cthDoc renders a CTH document's text and ground truth.
func (g *Generator) cthDoc(p Platform, rng *randx.Source) (string, GroundTruth) {
	return g.cthDocToxic(p, rng, toxicFree)
}

// cthDocToxic renders a CTH document under a toxic-label constraint.
func (g *Generator) cthDocToxic(p Platform, rng *randx.Source, tm toxicMode) (string, GroundTruth) {
	mode := synth.GenderedPronouns
	if rng.Bool(neutralPronounRate) {
		mode = synth.NeutralPronouns
	}
	targetID := g.newPersona(rng)
	persona := g.personas[targetID]
	gcls := persona.Gender
	if mode == synth.NeutralPronouns {
		gcls = gender.Unknown
	}
	label := g.sampleCTHLabel(p, gcls, rng)
	for tries := 0; tries < 50; tries++ {
		isToxic := label.HasParent(taxonomy.ToxicContent)
		if (tm == toxicForce && isToxic) || (tm == toxicForbid && !isToxic) || tm == toxicFree {
			break
		}
		label = g.sampleCTHLabel(p, gcls, rng)
	}
	if tm == toxicForce && !label.HasParent(taxonomy.ToxicContent) {
		label = label.Merge(taxonomy.NewLabel(taxonomy.SubHateSpeech))
	}
	text := synth.CTH(persona, label.Subs(), mode, rng)
	return text, GroundTruth{
		IsCTH:        true,
		CTHLabel:     label,
		TargetID:     targetID,
		TargetGender: persona.Gender,
	}
}

// doxDoc renders a dox document's text and ground truth. With a small
// probability (the paper found only 95 of 14,679 positives were both) the
// dox also carries an explicit call to harassment.
//
// Repeated doxes of the same persona reuse (and extend) the earlier dox's
// PII types — "an aggressor will post a partially completed dox and
// update it periodically with additional information" (§7.3) — and carry
// at least one social-network handle, the identity material by which
// reposts are recognisable.
func (g *Generator) doxDoc(p Platform, rng *randx.Source) (string, GroundTruth) {
	targetID := g.doxTarget(p, rng)
	persona := g.personas[targetID]
	types := g.samplePII(p, rng)
	if prev, ok := g.lastPII[targetID]; ok {
		types = unionPII(prev, types)
		if !hasOSN(types) {
			types = append(types, pii.Facebook)
		}
	}
	g.lastPII[targetID] = types
	text := synth.Dox(persona, types, doxStyleFor(p), rng)
	truth := GroundTruth{
		IsDox:        true,
		DoxPII:       types,
		TargetID:     targetID,
		TargetGender: persona.Gender,
	}
	// Dual-labelled posts (dox + explicit mobilizing language); excluded
	// on pastes, which the CTH task does not cover.
	if p != PlatformPastes && rng.Bool(0.012) {
		label := taxonomy.NewLabel(taxonomy.SubDoxing)
		text += ". " + synth.CTH(persona, label.Subs(), synth.GenderedPronouns, rng)
		truth.IsCTH = true
		truth.CTHLabel = label
	}
	g.recordDox(targetID, p)
	return text, truth
}

// unionPII merges two PII type sets preserving Table 6 order.
func unionPII(a, b []pii.Type) []pii.Type {
	have := map[pii.Type]bool{}
	for _, t := range a {
		have[t] = true
	}
	for _, t := range b {
		have[t] = true
	}
	var out []pii.Type
	for _, t := range pii.AllTypes() {
		if have[t] {
			out = append(out, t)
		}
	}
	return out
}

// hasOSN reports whether the set contains a linkable social handle.
func hasOSN(types []pii.Type) bool {
	for _, t := range types {
		switch t {
		case pii.Facebook, pii.Instagram, pii.Twitter, pii.YouTube:
			return true
		}
	}
	return false
}

// benignDoc renders a benign document.
func (g *Generator) benignDoc(p Platform, rng *randx.Source) (string, GroundTruth) {
	text := synth.Benign(benignFlavorFor(p), rng)
	return text, GroundTruth{HardNegative: looksMobilizing(text)}
}

// looksMobilizing flags benign text that carries mobilizing-language
// surface features (used for diagnostics on classifier false positives).
func looksMobilizing(text string) bool {
	for _, m := range []string{"we need to", "we should", "lets ", "we will", "we have to"} {
		if len(text) >= len(m) && containsFold(text, m) {
			return true
		}
	}
	return false
}

func containsFold(haystack, needle string) bool {
	// Benign generator output is already lower-case; plain substring
	// search suffices and avoids an import cycle with strings.ToLower
	// costs in hot paths.
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// generateFlat produces a flat corpus (Gab, pastes): independent posts
// with positives interleaved at random positions.
func (g *Generator) generateFlat(p Platform) *Corpus {
	rng := g.rng.Split(string(p))
	total := g.volumeFor(p)
	nDox := g.plantedDox(p)
	nCTH := g.plantedCTH(p)
	if nDox+nCTH > total {
		total = nDox + nCTH + total/10 + 1
	}

	kinds := make([]int, 0, total) // 0 benign, 1 cth, 2 dox
	for i := 0; i < nCTH; i++ {
		kinds = append(kinds, 1)
	}
	for i := 0; i < nDox; i++ {
		kinds = append(kinds, 2)
	}
	for len(kinds) < total {
		kinds = append(kinds, 0)
	}
	randx.Shuffle(rng, kinds)

	ds := p.Dataset()
	domains := domainsFor(p)
	c := &Corpus{Dataset: ds, Docs: make([]Document, 0, total)}
	for i, kind := range kinds {
		drng := rng.SplitN("doc", i)
		var text string
		var truth GroundTruth
		switch kind {
		case 1:
			text, truth = g.cthDoc(p, drng)
		case 2:
			text, truth = g.doxDoc(p, drng)
		default:
			text, truth = g.benignDoc(p, drng)
		}
		c.Docs = append(c.Docs, Document{
			ID:       docID(p, i),
			Dataset:  ds,
			Platform: p,
			Domain:   domains[drng.Intn(len(domains))],
			Author:   synth.SyntheticUsername(drng),
			Date:     dateFor(ds, drng.Float64()),
			Text:     text,
			Truth:    truth,
		})
	}
	return c
}

// generateChat produces the chat corpus: Discord and Telegram channels.
func (g *Generator) generateChat() *Corpus {
	c := &Corpus{Dataset: Chat}
	for _, p := range []Platform{PlatformDiscord, PlatformTelegram} {
		sub := g.generateFlat(p)
		c.Docs = append(c.Docs, sub.Docs...)
	}
	return c
}

// domainsFor returns the synthetic collection domains/channels for a
// platform (the paper: 43 board domains, 41 paste domains, 2,916 Telegram
// channels; we scale channel counts down with volume).
func domainsFor(p Platform) []string {
	n := 8
	prefix := string(p)
	switch p {
	case PlatformBoards:
		n = 43
		prefix = "board"
	case PlatformPastes:
		n = 41
		prefix = "paste"
	case PlatformTelegram:
		n = 30
		prefix = "tg-channel"
	case PlatformDiscord:
		n = 15
		prefix = "discord-server"
	case PlatformGab:
		return []string{"gab.example"}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%02d.example", prefix, i+1)
	}
	return out
}
