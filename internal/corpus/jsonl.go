package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONLDocument is the interchange form of a document, matching the
// format cmd/corpusgen emits. Only Text is required; platform/thread
// metadata enable the platform- and thread-aware analyses.
type JSONLDocument struct {
	ID          string `json:"id"`
	Dataset     string `json:"dataset"`
	Platform    string `json:"platform"`
	Domain      string `json:"domain"`
	ThreadID    string `json:"thread_id,omitempty"`
	PosInThread int    `json:"pos_in_thread,omitempty"`
	ThreadSize  int    `json:"thread_size,omitempty"`
	Author      string `json:"author"`
	Date        string `json:"date"`
	Text        string `json:"text"`
	IsCTH       *bool  `json:"is_cth,omitempty"`
	IsDox       *bool  `json:"is_dox,omitempty"`
}

// ReadJSONL decodes one document per line from r. Blank lines are
// skipped; a malformed line aborts with an error naming the line number.
// Documents missing an ID are assigned sequential ones.
func ReadJSONL(r io.Reader) ([]Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	var out []Document
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var jd JSONLDocument
		if err := json.Unmarshal(raw, &jd); err != nil {
			return nil, fmt.Errorf("corpus: jsonl line %d: %w", line, err)
		}
		if jd.Text == "" {
			return nil, fmt.Errorf("corpus: jsonl line %d: missing text", line)
		}
		d := Document{
			ID:          jd.ID,
			Dataset:     Dataset(jd.Dataset),
			Platform:    Platform(jd.Platform),
			Domain:      jd.Domain,
			ThreadID:    jd.ThreadID,
			PosInThread: jd.PosInThread,
			ThreadSize:  jd.ThreadSize,
			Author:      jd.Author,
			Date:        jd.Date,
			Text:        jd.Text,
		}
		if d.ID == "" {
			d.ID = fmt.Sprintf("jsonl-%08d", line)
		}
		if jd.IsCTH != nil {
			d.Truth.IsCTH = *jd.IsCTH
		}
		if jd.IsDox != nil {
			d.Truth.IsDox = *jd.IsDox
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: jsonl: %w", err)
	}
	return out, nil
}

// WriteJSONL encodes documents one per line to w. includeTruth controls
// whether the hidden labels are emitted.
func WriteJSONL(w io.Writer, docs []Document, includeTruth bool) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		d := &docs[i]
		jd := JSONLDocument{
			ID: d.ID, Dataset: string(d.Dataset), Platform: string(d.Platform),
			Domain: d.Domain, ThreadID: d.ThreadID, PosInThread: d.PosInThread,
			ThreadSize: d.ThreadSize, Author: d.Author, Date: d.Date, Text: d.Text,
		}
		if includeTruth {
			jd.IsCTH = &d.Truth.IsCTH
			jd.IsDox = &d.Truth.IsDox
		}
		if err := enc.Encode(jd); err != nil {
			return fmt.Errorf("corpus: jsonl write: %w", err)
		}
	}
	return bw.Flush()
}
