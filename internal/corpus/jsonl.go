package corpus

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// JSONLDocument is the interchange form of a document, matching the
// format cmd/corpusgen emits. Only Text is required; platform/thread
// metadata enable the platform- and thread-aware analyses.
type JSONLDocument struct {
	ID          string `json:"id"`
	Dataset     string `json:"dataset"`
	Platform    string `json:"platform"`
	Domain      string `json:"domain"`
	ThreadID    string `json:"thread_id,omitempty"`
	PosInThread int    `json:"pos_in_thread,omitempty"`
	ThreadSize  int    `json:"thread_size,omitempty"`
	Author      string `json:"author"`
	Date        string `json:"date"`
	Text        string `json:"text"`
	IsCTH       *bool  `json:"is_cth,omitempty"`
	IsDox       *bool  `json:"is_dox,omitempty"`
}

// LineError is one quarantined JSONL line from a lenient read: the
// structured dead-letter record for malformed ingest input.
type LineError struct {
	// Line is the 1-based line number in the input stream.
	Line int
	// Offset is the byte offset of the line's first byte in the input
	// stream. For oversized lines — where the line number alone cannot
	// locate anything because the offending data spans megabytes — this
	// is what lets tooling seek straight to the damage.
	Offset int64
	// Err is the parse or validation failure.
	Err error
	// Preview is a short prefix of the offending line (never more than
	// previewLen bytes), for diagnostics.
	Preview string
}

const previewLen = 80

func (e LineError) Error() string {
	if e.Preview == "" {
		return fmt.Sprintf("corpus: jsonl line %d (byte %d): %v", e.Line, e.Offset, e.Err)
	}
	return fmt.Sprintf("corpus: jsonl line %d (byte %d): %v (line starts %q)", e.Line, e.Offset, e.Err, e.Preview)
}

func (e LineError) Unwrap() error { return e.Err }

// JSONLOptions controls ReadJSONLOpts.
type JSONLOptions struct {
	// Lenient quarantines malformed or oversized lines as LineErrors
	// instead of aborting the read.
	Lenient bool
	// MaxLineBytes bounds one line; longer lines error (strict) or
	// quarantine (lenient) with the line number, never a silent
	// truncated read. 0 means 16 MiB.
	MaxLineBytes int
}

// ErrLineTooLong reports a line exceeding MaxLineBytes. It names the
// condition explicitly (unlike bufio.ErrTooLong, which a Scanner-based
// reader would surface with no line number).
var ErrLineTooLong = errors.New("line exceeds maximum length")

// ReadJSONL decodes one document per line from r. Blank lines are
// skipped; a malformed line aborts with an error naming the line number.
// Documents missing an ID are assigned sequential ones.
func ReadJSONL(r io.Reader) ([]Document, error) {
	docs, _, err := ReadJSONLOpts(r, JSONLOptions{})
	return docs, err
}

// ReadJSONLLenient decodes one document per line from r, quarantining
// malformed and oversized lines instead of aborting: the returned
// LineErrors record each skipped line's number and cause. err is
// non-nil only for I/O failures of r itself.
func ReadJSONLLenient(r io.Reader) ([]Document, []LineError, error) {
	return ReadJSONLOpts(r, JSONLOptions{Lenient: true})
}

// ReadJSONLOpts is the option-driven form of ReadJSONL. In strict mode
// (the default) the first bad line aborts the read and bad is nil, but
// the documents decoded before the failure are still returned alongside
// the error — the same partial-progress contract the read-error path
// honors. In lenient mode every bad line is returned in bad and err
// reports only I/O failures.
func ReadJSONLOpts(r io.Reader, opts JSONLOptions) (docs []Document, bad []LineError, err error) {
	if opts.MaxLineBytes <= 0 {
		opts.MaxLineBytes = 16 << 20
	}
	br := bufio.NewReaderSize(r, 64<<10)
	line := 0
	var offset int64 // byte offset of the next unread line's start
	for {
		lineStart := offset
		raw, consumed, tooLong, rerr := readLine(br, opts.MaxLineBytes)
		offset += consumed
		if rerr != nil && rerr != io.EOF {
			return docs, bad, fmt.Errorf("corpus: jsonl line %d (byte %d): read: %w", line+1, lineStart, rerr)
		}
		if len(raw) == 0 && !tooLong && rerr == io.EOF {
			return docs, bad, nil
		}
		line++
		fail := func(cause error, preview string) error {
			le := LineError{Line: line, Offset: lineStart, Err: cause, Preview: preview}
			if opts.Lenient {
				bad = append(bad, le)
				return nil
			}
			return le
		}
		switch {
		case tooLong:
			if ferr := fail(ErrLineTooLong, preview(raw)); ferr != nil {
				return docs, bad, ferr
			}
		case len(raw) > 0:
			if d, derr := decodeJSONLLine(raw, line); derr != nil {
				if ferr := fail(derr, preview(raw)); ferr != nil {
					return docs, bad, ferr
				}
			} else {
				docs = append(docs, d)
			}
		}
		if rerr == io.EOF {
			return docs, bad, nil
		}
	}
}

// preview returns a short printable prefix of a raw line.
func preview(raw []byte) string {
	if len(raw) > previewLen {
		raw = raw[:previewLen]
	}
	return string(raw)
}

// readLine reads one newline-terminated line of at most max bytes. A
// longer line is discarded to its end and reported with tooLong=true,
// returning only a short retained prefix for diagnostics. consumed is
// the exact number of input bytes this line occupied — terminator and
// discarded overflow included — so the caller can maintain byte
// offsets. err is io.EOF at end of input (the final line may be
// unterminated).
func readLine(br *bufio.Reader, max int) (line []byte, consumed int64, tooLong bool, err error) {
	for {
		frag, rerr := br.ReadSlice('\n')
		consumed += int64(len(frag))
		hasNL := len(frag) > 0 && frag[len(frag)-1] == '\n'
		if !tooLong {
			line = append(line, frag...)
			if n := len(line); hasNL {
				line = line[:n-1]
				if n >= 2 && line[n-2] == '\r' {
					line = line[:n-2]
				}
			}
			if len(line) > max {
				tooLong = true
				if len(line) > previewLen {
					line = line[:previewLen]
				}
			}
		}
		switch {
		case hasNL:
			return line, consumed, tooLong, nil
		case rerr == bufio.ErrBufferFull:
			continue
		case rerr == nil:
			// ReadSlice without delim or error cannot happen; loop.
			continue
		default:
			return line, consumed, tooLong, rerr
		}
	}
}

// decodeJSONLLine parses and validates one non-blank line.
func decodeJSONLLine(raw []byte, line int) (Document, error) {
	var jd JSONLDocument
	if err := json.Unmarshal(raw, &jd); err != nil {
		return Document{}, err
	}
	if jd.Text == "" {
		return Document{}, errors.New("missing text")
	}
	d := Document{
		ID:          jd.ID,
		Dataset:     Dataset(jd.Dataset),
		Platform:    Platform(jd.Platform),
		Domain:      jd.Domain,
		ThreadID:    jd.ThreadID,
		PosInThread: jd.PosInThread,
		ThreadSize:  jd.ThreadSize,
		Author:      jd.Author,
		Date:        jd.Date,
		Text:        jd.Text,
	}
	if d.ID == "" {
		d.ID = fmt.Sprintf("jsonl-%08d", line)
	}
	if jd.IsCTH != nil {
		d.Truth.IsCTH = *jd.IsCTH
	}
	if jd.IsDox != nil {
		d.Truth.IsDox = *jd.IsDox
	}
	return d, nil
}

// WriteJSONL encodes documents one per line to w. includeTruth controls
// whether the hidden labels are emitted.
func WriteJSONL(w io.Writer, docs []Document, includeTruth bool) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range docs {
		d := &docs[i]
		jd := JSONLDocument{
			ID: d.ID, Dataset: string(d.Dataset), Platform: string(d.Platform),
			Domain: d.Domain, ThreadID: d.ThreadID, PosInThread: d.PosInThread,
			ThreadSize: d.ThreadSize, Author: d.Author, Date: d.Date, Text: d.Text,
		}
		if includeTruth {
			jd.IsCTH = &d.Truth.IsCTH
			jd.IsDox = &d.Truth.IsDox
		}
		if err := enc.Encode(jd); err != nil {
			return fmt.Errorf("corpus: jsonl write: %w", err)
		}
	}
	return bw.Flush()
}
