// Package corpus generates and models the five platform data sets the
// paper analyses (Table 1): boards, blogs, chat (Discord + Telegram), Gab
// and pastes. Real crawls are proprietary; the generators substitute
// synthetic documents whose statistical structure is parameterized
// directly by the paper's published distributions — per-platform attack
// mixtures (Table 11), PII mixtures (Table 6), target-gender mixtures
// (Table 10), true-positive volumes (Table 4), thread-position behaviour
// (§6.3, §7.4) and repeated-dox structure (§7.3). See DESIGN.md §1.
//
// Each document carries hidden ground truth, which the pipeline never
// reads during filtering; it is used only to simulate annotators and to
// score the pipeline end-to-end.
package corpus

import (
	"fmt"
	"time"

	"harassrepro/internal/gender"
	"harassrepro/internal/pii"
	"harassrepro/internal/synth"
	"harassrepro/internal/taxonomy"
)

// Dataset identifies one of the five raw data sets of Table 1.
type Dataset string

// The five data sets.
const (
	Boards Dataset = "boards"
	Blogs  Dataset = "blogs"
	Chat   Dataset = "chat"
	Gab    Dataset = "gab"
	Pastes Dataset = "pastes"
)

// Datasets lists the data sets in Table 1 order.
func Datasets() []Dataset { return []Dataset{Boards, Blogs, Chat, Gab, Pastes} }

// Platform identifies the concrete platform within a data set; the paper
// splits "chat" into Discord and Telegram for thresholding (Table 4).
type Platform string

// Platforms. For boards, Gab, pastes and blogs the platform matches the
// data set.
const (
	PlatformBoards   Platform = "boards"
	PlatformBlogs    Platform = "blogs"
	PlatformDiscord  Platform = "discord"
	PlatformTelegram Platform = "telegram"
	PlatformGab      Platform = "gab"
	PlatformPastes   Platform = "pastes"
)

// Dataset returns the data set a platform belongs to.
func (p Platform) Dataset() Dataset {
	switch p {
	case PlatformDiscord, PlatformTelegram:
		return Chat
	case PlatformBlogs:
		return Blogs
	case PlatformGab:
		return Gab
	case PlatformPastes:
		return Pastes
	default:
		return Boards
	}
}

// GroundTruth is the hidden label set attached to generated documents.
type GroundTruth struct {
	// IsCTH marks a true call to harassment.
	IsCTH bool
	// IsDox marks a true dox.
	IsDox bool
	// CTHLabel is the planted taxonomy coding (valid when IsCTH).
	CTHLabel taxonomy.Label
	// DoxPII lists the PII types planted in the dox (valid when IsDox).
	DoxPII []pii.Type
	// TargetID identifies the persona targeted; doxes of the same
	// persona are "repeated doxes" in §7.3. Zero means no target.
	TargetID int
	// TargetGender is the persona's actual gender (which pronoun-based
	// inference may or may not recover).
	TargetGender gender.Gender
	// HardNegative marks benign text deliberately shaped like
	// mobilizing language (classifier stress content).
	HardNegative bool
}

// Document is one post or message.
type Document struct {
	ID       string
	Dataset  Dataset
	Platform Platform
	// Domain is the site/channel the document was collected from
	// (board domain, paste site, chat channel, blog).
	Domain string
	// ThreadID groups board posts into threads; empty elsewhere.
	ThreadID string
	// PosInThread is the 0-based position within the thread (boards).
	PosInThread int
	// ThreadSize is the total posts in the document's thread (boards).
	ThreadSize int
	Author     string
	// Date is the synthetic collection date, YYYY-MM-DD.
	Date string
	Text string

	Truth GroundTruth
}

// Corpus is an in-memory document collection for one data set.
type Corpus struct {
	Dataset Dataset
	Docs    []Document
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// Filter returns the documents matching pred.
func (c *Corpus) Filter(pred func(*Document) bool) []*Document {
	var out []*Document
	for i := range c.Docs {
		if pred(&c.Docs[i]) {
			out = append(out, &c.Docs[i])
		}
	}
	return out
}

// CountTrue returns the number of planted true CTH and dox documents.
func (c *Corpus) CountTrue() (cth, dox int) {
	for i := range c.Docs {
		if c.Docs[i].Truth.IsCTH {
			cth++
		}
		if c.Docs[i].Truth.IsDox {
			dox++
		}
	}
	return cth, dox
}

// DatasetDates holds the Table 1 collection date ranges.
var DatasetDates = map[Dataset][2]string{
	Boards: {"2001-06-14", "2020-08-01"},
	Blogs:  {"1999-04-23", "2020-08-14"},
	Chat:   {"2015-09-21", "2020-08-01"},
	Gab:    {"2016-08-10", "2020-08-01"},
	Pastes: {"2008-03-22", "2020-08-01"},
}

// RawSizes holds the Table 1 raw data set sizes (posts/messages).
var RawSizes = map[Dataset]int{
	Boards: 405_943_342,
	Blogs:  115_052,
	Chat:   70_273_973,
	Gab:    50_165_961,
	Pastes: 32_555_682,
}

// dateFor interpolates a YYYY-MM-DD date at fraction f within the data
// set's Table 1 range.
func dateFor(ds Dataset, f float64) string {
	r := DatasetDates[ds]
	lo, _ := time.Parse("2006-01-02", r[0])
	hi, _ := time.Parse("2006-01-02", r[1])
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	d := lo.Add(time.Duration(f * float64(hi.Sub(lo))))
	return d.Format("2006-01-02")
}

// docID builds a stable document identifier.
func docID(p Platform, n int) string { return fmt.Sprintf("%s-%08d", p, n) }

// TruePositiveTargets holds the Table 4 true-positive counts per task and
// platform at the paper's full scale. The generators plant
// TruePositives/PositiveScale positives per platform.
var TruePositiveTargets = struct {
	Dox map[Platform]int
	CTH map[Platform]int
}{
	Dox: map[Platform]int{
		PlatformBoards:   2549,
		PlatformDiscord:  153,
		PlatformGab:      1657,
		PlatformPastes:   3118,
		PlatformTelegram: 948,
	},
	CTH: map[Platform]int{
		PlatformBoards:   2045,
		PlatformGab:      1335,
		PlatformDiscord:  510,
		PlatformTelegram: 2364,
	},
}

// sub11 holds the Table 11 per-data-set subcategory prevalence (percent).
// Columns: boards, chat, gab. Used as the planted attack-type mixture.
var sub11 = map[taxonomy.Sub][3]float64{
	taxonomy.SubDoxing:               {17.46, 12.46, 20.82},
	taxonomy.SubLeakedChats:          {0.88, 0.10, 0.45},
	taxonomy.SubNonConsensual:        {5.09, 2.40, 1.72},
	taxonomy.SubOutingDeadnaming:     {0.20, 0.07, 0.001},
	taxonomy.SubDoxPropagation:       {1.42, 5.78, 0.60},
	taxonomy.SubContentLeakMisc:      {0.54, 0.28, 0.07},
	taxonomy.SubImpersonatedProfiles: {2.20, 1.32, 0.97},
	taxonomy.SubSyntheticPorn:        {0.44, 0.03, 0.07},
	taxonomy.SubImpersonationMisc:    {0.29, 0.07, 0.15},
	taxonomy.SubAccountLockout:       {0.10, 0.10, 0.001},
	taxonomy.SubLockoutMisc:          {0.15, 0.07, 0.001},
	taxonomy.SubNegativeRatings:      {0.24, 0.31, 0.37},
	taxonomy.SubRaiding:              {4.35, 12.87, 18.28},
	taxonomy.SubSpamming:             {0.88, 0.77, 1.20},
	taxonomy.SubOverloadingMisc:      {0.59, 0.52, 0.001},
	taxonomy.SubHashtagHijacking:     {0.78, 1.39, 1.65},
	taxonomy.SubPublicOpinionMisc:    {6.16, 1.74, 0.07},
	taxonomy.SubFalseReporting:       {20.00, 10.82, 11.76},
	taxonomy.SubMassFlagging:         {20.39, 31.63, 12.66},
	taxonomy.SubReportingMisc:        {15.94, 10.06, 16.40},
	taxonomy.SubReputationPrivate:    {3.13, 4.45, 1.80},
	taxonomy.SubReputationPublic:     {1.96, 8.35, 8.84},
	taxonomy.SubReputationMisc:       {2.74, 0.07, 0.07},
	taxonomy.SubStalkingTracking:     {0.49, 0.49, 0.30},
	taxonomy.SubSurveillanceMisc:     {0.24, 0.001, 0.07},
	taxonomy.SubHateSpeech:           {3.86, 1.98, 4.42},
	taxonomy.SubUnwantedExplicit:     {2.20, 0.31, 0.15},
	taxonomy.SubToxicMisc:            {1.56, 0.24, 0.001},
	taxonomy.SubGeneric:              {7.14, 5.60, 4.57},
}

// subMixFor returns the Table 11 mixture column for a platform as
// parallel (subs, weights) slices.
func subMixFor(p Platform) ([]taxonomy.Sub, []float64) {
	col := 0
	switch p {
	case PlatformDiscord, PlatformTelegram:
		col = 1
	case PlatformGab:
		col = 2
	}
	subs := taxonomy.Subs()
	weights := make([]float64, len(subs))
	for i, s := range subs {
		weights[i] = sub11[s][col]
	}
	return subs, weights
}

// pii6 holds the Table 6 per-data-set PII prevalence (percent).
// Columns: boards, chat, gab, pastes.
var pii6 = map[pii.Type][4]float64{
	pii.Address:    {29.34, 29.61, 18.04, 45.67},
	pii.CreditCard: {0.16, 4.27, 0.001, 4.94},
	pii.Email:      {14.87, 14.71, 20.04, 45.35},
	pii.Facebook:   {12.44, 6.36, 6.04, 39.32},
	pii.Instagram:  {4.20, 3.27, 0.60, 9.97},
	pii.Phone:      {22.17, 26.98, 30.24, 45.51},
	pii.SSN:        {0.71, 1.36, 0.42, 3.98},
	pii.Twitter:    {9.30, 3.45, 6.28, 13.63},
	pii.YouTube:    {8.24, 2.00, 1.09, 11.80},
}

// piiRatesFor returns the Table 6 column for a platform.
func piiRatesFor(p Platform) map[pii.Type]float64 {
	col := 0
	switch p {
	case PlatformDiscord, PlatformTelegram:
		col = 1
	case PlatformGab:
		col = 2
	case PlatformPastes:
		col = 3
	}
	out := make(map[pii.Type]float64, len(pii6))
	for t, row := range pii6 {
		out[t] = row[col] / 100
	}
	return out
}

// Gender mixture over calls to harassment (Table 10 totals):
// unknown 2,711 / female 1,160 / male 2,383 of 6,254. The generator
// realises "unknown" by neutral pronouns.
const neutralPronounRate = 2711.0 / 6254.0

// Multi-attack-type mixture (§6.2): 13% of calls to harassment carry more
// than one parent type; of those 92.3% carry two and 6.5% three.
const (
	multiTypeRate  = 831.0 / 6254.0
	threeTypeShare = 54.0 / 831.0
	fourTypeShare  = 10.0 / 831.0
)

// Observed co-occurrence couplings (§6.2): 64% of surveillance calls also
// leak content; 30% of impersonation calls also manipulate public
// opinion.
const (
	surveillanceLeakRate  = 0.64
	impersonationPOMShare = 0.30
)

// doxStyleFor maps a platform to its dox rendering style.
func doxStyleFor(p Platform) synth.DoxStyle {
	switch p {
	case PlatformPastes:
		return synth.DoxStylePaste
	case PlatformDiscord, PlatformTelegram:
		return synth.DoxStyleChat
	case PlatformGab:
		return synth.DoxStyleMicro
	default:
		return synth.DoxStyleBoard
	}
}

// benignFlavorFor maps a platform to its benign chatter flavor.
func benignFlavorFor(p Platform) synth.Flavor {
	switch p {
	case PlatformPastes:
		return synth.FlavorPaste
	case PlatformDiscord, PlatformTelegram:
		return synth.FlavorChat
	case PlatformGab:
		return synth.FlavorMicro
	case PlatformBlogs:
		return synth.FlavorBlog
	default:
		return synth.FlavorBoard
	}
}
