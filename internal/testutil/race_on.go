//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector, whose instrumentation changes allocation behaviour —
// allocation-regression tests consult it to skip themselves.
const RaceEnabled = true
