// Package taxonomy encodes the paper's call-to-harassment attack-type
// taxonomy (§6.1): 10 parent attack types and 28 subcategory attack types,
// adapted from the hate-and-harassment taxonomy of Thomas et al. with the
// paper's additions ("public opinion manipulation", "generic", per-parent
// "miscellaneous"), promotions ("reputational harm") and merges
// ("raiding"+"dogpiling").
//
// The package also provides a rule-based categorizer used to code calls to
// harassment into the taxonomy, and co-occurrence analysis over
// multi-label codings (§6.2).
package taxonomy

// Parent is one of the 10 parent attack types of §6.1.1.
type Parent string

// The 10 parent attack types, in the alphabetical order of Table 5.
const (
	ContentLeakage Parent = "Content Leakage"
	Generic        Parent = "Generic"
	Impersonation  Parent = "Impersonation"
	Lockout        Parent = "Lockout And Control"
	Overloading    Parent = "Overloading"
	PublicOpinion  Parent = "Public Opinion Manip."
	Reporting      Parent = "Reporting"
	Reputational   Parent = "Reputational Harm"
	Surveillance   Parent = "Surveillance"
	ToxicContent   Parent = "Toxic Content"
)

// Parents lists all parent attack types in Table 5 row order.
func Parents() []Parent {
	return []Parent{
		ContentLeakage, Generic, Impersonation, Lockout, Overloading,
		PublicOpinion, Reporting, Reputational, Surveillance, ToxicContent,
	}
}

// Definition returns the paper's §6.1.1 definition of the parent type.
func (p Parent) Definition() string {
	switch p {
	case ContentLeakage:
		return "Intentional leaking of personal information, media/imagery, or other PII; includes doxing."
	case Generic:
		return "Calls to harassment encouraging the crowd to bully or blackmail a target without suggesting an explicit tactic."
	case Impersonation:
		return "Intentionally pretending to represent a third party in order to do harm; includes creating false imagery presenting someone in a falsified context."
	case Lockout:
		return "Hacking or gaining unauthorized access to a target's account, device or otherwise."
	case Overloading:
		return "Attempting to put a target in a state where they are flooded with notifications, messages, or calls that they cannot manage."
	case PublicOpinion:
		return "Spreading narratives with the direct intent of manipulating public perception."
	case Reporting:
		return "Deceiving an online reporting system or institutional authority; includes SWATing and mass account reporting."
	case Reputational:
		return "Publicly or privately harassing an individual's family, employer or otherwise with the intent of damaging their reputation."
	case Surveillance:
		return "Following or monitoring an individual and reporting the results online with the intent of exposing otherwise private behavior."
	case ToxicContent:
		return "A wide range of harassment including hate speech, unwanted explicit content or otherwise inflammatory remarks unwanted by the target."
	default:
		return ""
	}
}

// Sub is one of the 28 subcategory attack types (Table 11).
type Sub string

// The 28 subcategories, grouped by parent, in Table 11 row order.
const (
	// Content Leakage (6).
	SubDoxing           Sub = "Content Leakage: Doxing"
	SubLeakedChats      Sub = "Content Leakage: Leaked Chats Profile"
	SubNonConsensual    Sub = "Content Leakage: Non-Consensual Media Exposure"
	SubOutingDeadnaming Sub = "Content Leakage: Outing/Deadnaming"
	SubDoxPropagation   Sub = "Content Leakage: Dox Propagation"
	SubContentLeakMisc  Sub = "Content Leakage (Misc.)"
	// Impersonation (3).
	SubImpersonatedProfiles Sub = "Impersonation: Impersonated Profiles"
	SubSyntheticPorn        Sub = "Impersonation: Synthetic Pornography"
	SubImpersonationMisc    Sub = "Impersonation (Misc.)"
	// Lockout And Control (2).
	SubAccountLockout Sub = "Lockout And Control: Account Lockout"
	SubLockoutMisc    Sub = "Lockout And Control (Misc.)"
	// Overloading (4).
	SubNegativeRatings Sub = "Overloading: Negative Ratings/Reviews"
	SubRaiding         Sub = "Overloading: Raiding"
	SubSpamming        Sub = "Overloading: Spamming"
	SubOverloadingMisc Sub = "Overloading (Misc.)"
	// Public Opinion Manipulation (2).
	SubHashtagHijacking  Sub = "Public Opinion Manipulation: Hashtag Hijacking"
	SubPublicOpinionMisc Sub = "Public Opinion Manipulation (Misc.)"
	// Reporting (3).
	SubFalseReporting Sub = "Reporting: False Reporting to Authorities"
	SubMassFlagging   Sub = "Reporting: Mass Flagging"
	SubReportingMisc  Sub = "Reporting (Misc.)"
	// Reputational Harm (3).
	SubReputationPrivate Sub = "Reputational Harm: Private"
	SubReputationPublic  Sub = "Reputational Harm: Public"
	SubReputationMisc    Sub = "Reputational Harm (Misc.)"
	// Surveillance (2).
	SubStalkingTracking Sub = "Surveillance: Stalking or Tracking"
	SubSurveillanceMisc Sub = "Surveillance (Misc.)"
	// Toxic Content (3).
	SubHateSpeech       Sub = "Toxic Content: Hate Speech"
	SubUnwantedExplicit Sub = "Toxic Content: Unwanted Explicit Content"
	SubToxicMisc        Sub = "Toxic Content (Misc.)"
	// Generic: the parent category has no subcategories of its own; this
	// Sub stands for the parent itself so that Labels can carry it. It is
	// NOT counted among the paper's 28 subcategory attack types.
	SubGeneric Sub = "Generic"
)

// SubcategoryCount is the number of true subcategory attack types in the
// taxonomy (the paper's "28 sub-category attack types"); the Generic
// parent row of Table 11 is excluded.
const SubcategoryCount = 28

// Subs lists the 28 subcategories in Table 11 row order, plus the
// Generic parent marker as the final element (matching Table 11's last
// row).
func Subs() []Sub {
	return []Sub{
		SubDoxing, SubLeakedChats, SubNonConsensual, SubOutingDeadnaming,
		SubDoxPropagation, SubContentLeakMisc,
		SubImpersonatedProfiles, SubSyntheticPorn, SubImpersonationMisc,
		SubAccountLockout, SubLockoutMisc,
		SubNegativeRatings, SubRaiding, SubSpamming, SubOverloadingMisc,
		SubHashtagHijacking, SubPublicOpinionMisc,
		SubFalseReporting, SubMassFlagging, SubReportingMisc,
		SubReputationPrivate, SubReputationPublic, SubReputationMisc,
		SubStalkingTracking, SubSurveillanceMisc,
		SubHateSpeech, SubUnwantedExplicit, SubToxicMisc,
		SubGeneric,
	}
}

// parentOf maps each subcategory to its parent attack type.
var parentOf = map[Sub]Parent{
	SubDoxing: ContentLeakage, SubLeakedChats: ContentLeakage,
	SubNonConsensual: ContentLeakage, SubOutingDeadnaming: ContentLeakage,
	SubDoxPropagation: ContentLeakage, SubContentLeakMisc: ContentLeakage,
	SubImpersonatedProfiles: Impersonation, SubSyntheticPorn: Impersonation,
	SubImpersonationMisc: Impersonation,
	SubAccountLockout:    Lockout, SubLockoutMisc: Lockout,
	SubNegativeRatings: Overloading, SubRaiding: Overloading,
	SubSpamming: Overloading, SubOverloadingMisc: Overloading,
	SubHashtagHijacking: PublicOpinion, SubPublicOpinionMisc: PublicOpinion,
	SubFalseReporting: Reporting, SubMassFlagging: Reporting,
	SubReportingMisc:     Reporting,
	SubReputationPrivate: Reputational, SubReputationPublic: Reputational,
	SubReputationMisc:   Reputational,
	SubStalkingTracking: Surveillance, SubSurveillanceMisc: Surveillance,
	SubHateSpeech: ToxicContent, SubUnwantedExplicit: ToxicContent,
	SubToxicMisc: ToxicContent,
	SubGeneric:   Generic,
}

// Parent returns the parent attack type of the subcategory.
func (s Sub) Parent() Parent { return parentOf[s] }

// subDescriptions summarises each subcategory, drawn from the paper's
// category discussion (§6.1) and published examples.
var subDescriptions = map[Sub]string{
	SubDoxing:               "Publishing the target's personal information (name, address, phone) to enable harassment.",
	SubLeakedChats:          "Building a target profile from leaked chat logs (e.g. leaked Discord logs).",
	SubNonConsensual:        "Exposing private or explicit media of the target without consent.",
	SubOutingDeadnaming:     "Outing the target or referring to them by a rejected former name.",
	SubDoxPropagation:       "Spreading or mirroring an existing dox to further venues.",
	SubContentLeakMisc:      "Content leakage without a specific leak modality.",
	SubImpersonatedProfiles: "Creating fake accounts or profiles posing as the target.",
	SubSyntheticPorn:        "Fabricating explicit imagery of the target (deepfakes).",
	SubImpersonationMisc:    "Impersonation without a specific modality.",
	SubAccountLockout:       "Hacking or phishing the target's accounts to lock them out.",
	SubLockoutMisc:          "Unauthorized-access attacks without a specific modality.",
	SubNegativeRatings:      "Flooding the target's business or content with negative ratings/reviews.",
	SubRaiding:              "Coordinated flooding of the target's comments, chat or stream (merged with dogpiling).",
	SubSpamming:             "Flooding the target's inboxes or mentions with messages.",
	SubOverloadingMisc:      "Overloading without a specific channel.",
	SubHashtagHijacking:     "Derailing or co-opting a hashtag to manipulate public perception.",
	SubPublicOpinionMisc:    "Spreading an admittedly false narrative about the target.",
	SubFalseReporting:       "Deceiving authorities (police, employers, agencies) with false reports; includes SWATing.",
	SubMassFlagging:         "Mass-reporting the target's accounts or content to platform moderation systems.",
	SubReportingMisc:        "Reporting-system abuse without a specific mechanism.",
	SubReputationPrivate:    "Contacting the target's personal or professional network to spread harmful information.",
	SubReputationPublic:     "Publicly posting harmful narratives, flyers or exposes about the target.",
	SubReputationMisc:       "Reputation attacks without a specific channel.",
	SubStalkingTracking:     "Following, tracking or monitoring the target and posting the results.",
	SubSurveillanceMisc:     "Surveillance without a specific modality.",
	SubHateSpeech:           "Directing slurs or hate speech at the target.",
	SubUnwantedExplicit:     "Sending the target unwanted explicit content.",
	SubToxicMisc:            "Toxic content without a specific modality.",
	SubGeneric:              "Mobilizing the crowd to bully or blackmail without naming a tactic.",
}

// Describe returns a one-line summary of the subcategory, or "".
func (s Sub) Describe() string { return subDescriptions[s] }

// SubsOf returns the subcategories of a parent, in Table 11 order.
func SubsOf(p Parent) []Sub {
	var out []Sub
	for _, s := range Subs() {
		if s.Parent() == p {
			out = append(out, s)
		}
	}
	return out
}

// Label is the multi-label coding of one call to harassment: the set of
// subcategory attack types it incites. The paper codes each call to
// harassment with one or more categories.
type Label struct {
	subs map[Sub]bool
}

// NewLabel builds a Label from subcategories, ignoring duplicates.
func NewLabel(subs ...Sub) Label {
	m := make(map[Sub]bool, len(subs))
	for _, s := range subs {
		m[s] = true
	}
	return Label{subs: m}
}

// Has reports whether the label includes the subcategory.
func (l Label) Has(s Sub) bool { return l.subs[s] }

// HasParent reports whether the label includes any subcategory of p.
func (l Label) HasParent(p Parent) bool {
	for s := range l.subs {
		if s.Parent() == p {
			return true
		}
	}
	return false
}

// Subs returns the label's subcategories in Table 11 order.
func (l Label) Subs() []Sub {
	var out []Sub
	for _, s := range Subs() {
		if l.subs[s] {
			out = append(out, s)
		}
	}
	return out
}

// Parents returns the label's distinct parent attack types in Table 5
// order.
func (l Label) Parents() []Parent {
	var out []Parent
	for _, p := range Parents() {
		if l.HasParent(p) {
			out = append(out, p)
		}
	}
	return out
}

// Size returns the number of subcategories in the label.
func (l Label) Size() int { return len(l.subs) }

// ParentCount returns the number of distinct parent attack types, the
// quantity behind the paper's co-occurrence analysis ("13% of the
// annotated calls to harassment contained more than one attack type").
func (l Label) ParentCount() int { return len(l.Parents()) }

// Empty reports whether the label carries no categories.
func (l Label) Empty() bool { return len(l.subs) == 0 }

// Merge returns the union of two labels.
func (l Label) Merge(other Label) Label {
	m := make(map[Sub]bool, len(l.subs)+len(other.subs))
	for s := range l.subs {
		m[s] = true
	}
	for s := range other.subs {
		m[s] = true
	}
	return Label{subs: m}
}
