package taxonomy

// Distribution summarises taxonomy codings over a set of calls to
// harassment: the per-parent and per-subcategory counts behind Tables 5,
// 10 and 11. Because a call to harassment can include multiple attack
// types, columns do not sum to 100%.
type Distribution struct {
	Total      int
	ParentHits map[Parent]int
	SubHits    map[Sub]int
}

// NewDistribution tallies the labels.
func NewDistribution(labels []Label) Distribution {
	d := Distribution{
		Total:      len(labels),
		ParentHits: map[Parent]int{},
		SubHits:    map[Sub]int{},
	}
	for _, l := range labels {
		for _, p := range l.Parents() {
			d.ParentHits[p]++
		}
		for _, s := range l.Subs() {
			d.SubHits[s]++
		}
	}
	return d
}

// ParentShare returns the fraction of labels that include parent p.
func (d Distribution) ParentShare(p Parent) float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.ParentHits[p]) / float64(d.Total)
}

// SubShare returns the fraction of labels that include subcategory s.
func (d Distribution) SubShare(s Sub) float64 {
	if d.Total == 0 {
		return 0
	}
	return float64(d.SubHits[s]) / float64(d.Total)
}

// CoOccurrence summarises multi-attack-type trends (§6.2).
type CoOccurrence struct {
	Total int
	// MultiType counts labels with more than one parent attack type
	// (13% / 831 in the paper).
	MultiType int
	// BySize[k] counts labels with exactly k parent attack types (the
	// paper: 767 with two, 54 with three, 10 with four or more).
	BySize map[int]int
	// Pair[a][b] counts labels containing both parents a and b.
	Pair map[Parent]map[Parent]int
}

// NewCoOccurrence computes attack-type co-occurrence over the labels.
func NewCoOccurrence(labels []Label) CoOccurrence {
	co := CoOccurrence{
		Total:  len(labels),
		BySize: map[int]int{},
		Pair:   map[Parent]map[Parent]int{},
	}
	for _, l := range labels {
		parents := l.Parents()
		k := len(parents)
		if k == 0 {
			continue
		}
		co.BySize[k]++
		if k > 1 {
			co.MultiType++
		}
		for i, a := range parents {
			for j, b := range parents {
				if i == j {
					continue
				}
				if co.Pair[a] == nil {
					co.Pair[a] = map[Parent]int{}
				}
				co.Pair[a][b]++
			}
		}
	}
	return co
}

// ConditionalShare returns the fraction of labels containing parent a that
// also contain parent b — the statistic behind "64% of the calls to
// harassment labeled as surveillance were also labeled as content
// leakage". Returns 0 when a never occurs.
func (co CoOccurrence) ConditionalShare(a, b Parent, dist Distribution) float64 {
	na := dist.ParentHits[a]
	if na == 0 {
		return 0
	}
	return float64(co.Pair[a][b]) / float64(na)
}
