package taxonomy

import (
	"regexp"
)

// Categorizer codes call-to-harassment text into taxonomy subcategories
// with keyword/phrase rules. It plays the role of the paper's domain
// expert coders for the automated reproduction: each subcategory has a
// bank of cue patterns derived from the paper's category definitions and
// published examples.
type Categorizer struct {
	rules []rule
}

type rule struct {
	sub Sub
	re  *regexp.Regexp
}

// cuePatterns defines the per-subcategory cue regular expressions. The
// phrasing is drawn from the paper's published example incitements (§6.1.1)
// and category definitions.
var cuePatterns = map[Sub][]string{
	SubDoxing: {
		`\bdox+\b`, `\bdrop (?:his|her|their) (?:info|address)\b`,
		`\b(?:get|find|post) (?:his|her|their) (?:phone number|home address|address and name|real name)\b`,
		`\bmust be harassed.{0,40}(?:phone number|address)`,
	},
	SubLeakedChats: {
		`\bleaked (?:chat|discord|telegram) logs?\b`, `\bfrom the leaked logs\b`,
	},
	SubNonConsensual: {
		`\b(?:leak|post|share) (?:his|her|their) (?:nudes|private (?:photos|pictures|pics)|explicit (?:photos|images))\b`,
		`\brevenge porn\b`,
	},
	SubOutingDeadnaming: {
		`\bdeadname\b`, `\bout (?:him|her|them) as\b`,
	},
	SubDoxPropagation: {
		`\b(?:spread|repost|share|mirror) (?:the|this|that) dox\b`, `\bpass the dox around\b`,
	},
	SubContentLeakMisc: {
		`\bleak everything (?:about|on) (?:him|her|them)\b`, `\bdig up (?:his|her|their) (?:info|information)\b`,
	},
	SubImpersonatedProfiles: {
		`\b(?:make|create|set up) (?:a )?fake (?:accounts?|profiles?) (?:of|pretending to be|as)\b`,
		`\bimpersonate (?:him|her|them)\b`,
	},
	SubSyntheticPorn: {
		`\bdeep ?fakes? of porn\b`, `\bmake deep ?fakes?\b`, `\bdeepfake (?:porn|nudes)\b`,
	},
	SubImpersonationMisc: {
		`\bpretend to (?:be|represent) (?:him|her|them)\b`, `\bpose as (?:him|her|them)\b`,
	},
	SubAccountLockout: {
		`\b(?:hack|phish|physh|hijack|take over) (?:his|her|their) (?:accounts?|emails?|password)\b`,
		`\block (?:him|her|them) out of\b`,
	},
	SubLockoutMisc: {
		`\bget into (?:his|her|their) (?:device|computer|phone)\b`, `\bbreak into (?:his|her|their)\b`,
	},
	SubNegativeRatings: {
		`\b(?:one|1)[- ]star (?:reviews?|ratings?)\b`, `\b(?:review|rating) bomb\b`, `\bdownvote (?:bomb|everything)\b`,
	},
	SubRaiding: {
		`\braid (?:his|her|their|the|this)\b`, `\bbrigade\b`, `\bdogpile\b`,
		`\bflood the (?:comments|chat|thread|stream)\b`, `\bzoom ?bomb\b`,
	},
	SubSpamming: {
		`\bspam (?:him|her|them|his|her|their)\b`, `\bflood (?:his|her|their) inbox\b`,
	},
	SubOverloadingMisc: {
		`\bflood (?:him|her|them) with (?:notifications|messages|calls)\b`,
		`\bbury (?:him|her|them) in (?:notifications|messages|calls)\b`,
	},
	SubHashtagHijacking: {
		`\bhijack the hashtag\b`, `\b(?:use|push) #\w+ (?:on twitter )?(?:to|and) (?:derail|drown|flood)\b`,
		`\bkeep pushing that\b.{0,80}#\w+`,
	},
	SubPublicOpinionMisc: {
		`\b(?:push|spread|plant) (?:the|a|that) (?:false |fake )?(?:narrative|story|rumor|rumour)\b`,
		`\bmanipulat\w+ public (?:perception|opinion)\b`, `\bmake (?:it|this) trend as if\b`,
	},
	SubFalseReporting: {
		`\b(?:call|report (?:him|her|them) to) (?:the )?(?:cops|police|feds|fbi|ice|irs|cps|immigration)\b`,
		`\bswat+(?:ing|ed)?\b`, `\bfile (?:a )?false (?:reports?|complaints?)\b`,
		`\breport (?:him|her|them) to (?:his|her|their) (?:employer|boss|school|parents|landlord)\b`,
	},
	SubMassFlagging: {
		`\bmass[- ]?(?:report|flag)\b`, `\breport (?:his|her|their) (?:channel|account|twitter|youtube|videos?) until\b`,
		`\bflag (?:all|every(?:thing)?) (?:of )?(?:his|her|their)\b`, `\bget (?:his|her|their) (?:account|channel) (?:banned|taken down|suspended)\b`,
	},
	SubReportingMisc: {
		`\breport (?:him|her|them|this|that)\b`,
	},
	SubReputationPrivate: {
		`\b(?:tell|email|call|contact|alert|write to) (?:his|her|their) (?:boss|employer|family|parents|wife|husband|landlord|neighbou?rs|school)\b`,
		`\bsend (?:it|them|this|the (?:pics|photos|screenshots)) to (?:his|her|their) (?:family|friends|parents|boss|employer|mother|father|sister|brother|wife|husband|cousin|uncle)\b`,
	},
	SubReputationPublic: {
		`\bexpose (?:him|her|them) (?:publicly|online|everywhere|to the world)\b`,
		`\bpost (?:flyers|posters) (?:about|of)\b`, `\bmake (?:a )?threads? (?:about|on) (?:him|her|them) so everyone\b`,
		`\blet the (?:whole )?(?:internet|community|neighbou?rhood) know\b`,
	},
	SubReputationMisc: {
		`\b(?:ruin|destroy|trash|wreck) (?:his|her|their) (?:reputation|name|career)\b`, `\bostracis\w+\b`, `\bostraciz\w+\b`,
	},
	SubStalkingTracking: {
		`\b(?:track|follow|stalk) (?:him|her|them)\b`, `\bstick trackers?\b`, `\btrack (?:him|her|them) on gps\b`,
		`\bpost (?:his|her|their) (?:movements|whereabouts|location) (?:daily|every)\b`,
	},
	SubSurveillanceMisc: {
		`\bwatch (?:his|her|their) every move\b`, `\bkeep (?:tabs|watch) on (?:him|her|them)\b`,
	},
	SubHateSpeech: {
		`\b(?:racial|ethnic) slurs?\b`, `\bcall (?:him|her|them) slurs\b`, `\bhate speech\b`,
	},
	SubUnwantedExplicit: {
		`\bsend (?:him|her|them) (?:explicit|graphic|obscene) (?:content|images|pictures)\b`,
		`\bsend (?:him|her|them) (?:porn|gore)\b`,
	},
	SubToxicMisc: {
		`\btell (?:him|her|them) (?:he|she|they)(?:'s| is| are) (?:trash|worthless|garbage)\b`,
		`\bsend (?:him|her|them) bleach\b`, `\bcall (?:him|her|them) out in game\b`,
	},
	// Generic cues match whenever the crowd is urged to bully/blackmail
	// without a tactic; when a specific tactic cue also matches, the
	// categorizer's suppression rule removes the Generic label.
	SubGeneric: {
		`\b(?:bully|blackmail|torment|harass) (?:him|her|them)\b`,
		`\bmake (?:his|her|their) life hell\b`, `\bgo after (?:him|her|them)\b`,
	},
}

// NewCategorizer compiles the cue rules.
func NewCategorizer() *Categorizer {
	c := &Categorizer{}
	for _, s := range Subs() {
		for _, pat := range cuePatterns[s] {
			c.rules = append(c.rules, rule{sub: s, re: regexp.MustCompile(`(?i)` + pat)})
		}
	}
	return c
}

// Categorize codes text into a multi-label taxonomy Label. Generic and
// misc. subcategories are treated as fallbacks within their parent: a
// specific subcategory suppresses its parent's misc. label, and any
// specific parent suppresses Generic, mirroring the coders' rule that
// misc./generic apply only when no more specific category fits.
func (c *Categorizer) Categorize(text string) Label {
	matched := map[Sub]bool{}
	for _, r := range c.rules {
		if matched[r.sub] {
			continue
		}
		if r.re.MatchString(text) {
			matched[r.sub] = true
		}
	}
	// Specific subcategory suppresses its parent's misc label.
	miscOf := map[Parent]Sub{
		ContentLeakage: SubContentLeakMisc,
		Impersonation:  SubImpersonationMisc,
		Lockout:        SubLockoutMisc,
		Overloading:    SubOverloadingMisc,
		PublicOpinion:  SubPublicOpinionMisc,
		Reporting:      SubReportingMisc,
		Reputational:   SubReputationMisc,
		Surveillance:   SubSurveillanceMisc,
		ToxicContent:   SubToxicMisc,
	}
	for parent, misc := range miscOf {
		if !matched[misc] {
			continue
		}
		for _, s := range SubsOf(parent) {
			if s != misc && matched[s] {
				delete(matched, misc)
				break
			}
		}
	}
	// Any specific parent suppresses the Generic fallback.
	if matched[SubGeneric] && len(matched) > 1 {
		delete(matched, SubGeneric)
	}
	subs := make([]Sub, 0, len(matched))
	for s := range matched {
		subs = append(subs, s)
	}
	return NewLabel(subs...)
}
