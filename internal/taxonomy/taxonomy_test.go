package taxonomy

import (
	"testing"
)

func TestTenParents(t *testing.T) {
	if got := len(Parents()); got != 10 {
		t.Fatalf("parents = %d, want 10", got)
	}
	seen := map[Parent]bool{}
	for _, p := range Parents() {
		if seen[p] {
			t.Fatalf("duplicate parent %q", p)
		}
		seen[p] = true
		if p.Definition() == "" {
			t.Errorf("parent %q has no definition", p)
		}
	}
	if Parent("bogus").Definition() != "" {
		t.Error("bogus parent has a definition")
	}
}

func TestTwentyEightSubcategories(t *testing.T) {
	// 28 true subcategories plus the Generic parent marker (Table 11's
	// final row).
	if got := len(Subs()); got != SubcategoryCount+1 {
		t.Fatalf("subs = %d, want %d", got, SubcategoryCount+1)
	}
	trueSubs := 0
	for _, s := range Subs() {
		if s != SubGeneric {
			trueSubs++
		}
	}
	if trueSubs != SubcategoryCount {
		t.Fatalf("true subcategories = %d, want 28", trueSubs)
	}
	seen := map[Sub]bool{}
	for _, s := range Subs() {
		if seen[s] {
			t.Fatalf("duplicate sub %q", s)
		}
		seen[s] = true
		if s.Parent() == "" {
			t.Errorf("sub %q has no parent", s)
		}
	}
}

func TestSubsOfPartition(t *testing.T) {
	total := 0
	for _, p := range Parents() {
		subs := SubsOf(p)
		if len(subs) == 0 {
			t.Errorf("parent %q has no subcategories", p)
		}
		for _, s := range subs {
			if s.Parent() != p {
				t.Errorf("sub %q assigned to wrong parent", s)
			}
		}
		total += len(subs)
	}
	if total != SubcategoryCount+1 {
		t.Fatalf("partition covers %d subs, want %d", total, SubcategoryCount+1)
	}
	// Spot-check counts against Table 11's structure.
	wantCounts := map[Parent]int{
		ContentLeakage: 6, Impersonation: 3, Lockout: 2, Overloading: 4,
		PublicOpinion: 2, Reporting: 3, Reputational: 3, Surveillance: 2,
		ToxicContent: 3, Generic: 1,
	}
	for p, want := range wantCounts {
		if got := len(SubsOf(p)); got != want {
			t.Errorf("SubsOf(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestLabelBasics(t *testing.T) {
	l := NewLabel(SubMassFlagging, SubDoxing, SubMassFlagging)
	if l.Size() != 2 {
		t.Fatalf("Size = %d, want 2 (dedupe)", l.Size())
	}
	if !l.Has(SubMassFlagging) || l.Has(SubRaiding) {
		t.Error("Has misbehaves")
	}
	if !l.HasParent(Reporting) || !l.HasParent(ContentLeakage) || l.HasParent(Overloading) {
		t.Error("HasParent misbehaves")
	}
	if l.ParentCount() != 2 {
		t.Errorf("ParentCount = %d", l.ParentCount())
	}
	if l.Empty() || !NewLabel().Empty() {
		t.Error("Empty misbehaves")
	}
}

func TestLabelOrderStable(t *testing.T) {
	l := NewLabel(SubGeneric, SubDoxing, SubRaiding)
	subs := l.Subs()
	// Table 11 order: Doxing < Raiding < Generic.
	if subs[0] != SubDoxing || subs[1] != SubRaiding || subs[2] != SubGeneric {
		t.Errorf("Subs order = %v", subs)
	}
	parents := l.Parents()
	if parents[0] != ContentLeakage || parents[1] != Generic || parents[2] != Overloading {
		t.Errorf("Parents order = %v", parents)
	}
}

func TestLabelMerge(t *testing.T) {
	a := NewLabel(SubDoxing)
	b := NewLabel(SubRaiding, SubDoxing)
	m := a.Merge(b)
	if m.Size() != 2 || !m.Has(SubDoxing) || !m.Has(SubRaiding) {
		t.Errorf("Merge = %v", m.Subs())
	}
	// Merge does not mutate inputs.
	if a.Size() != 1 || b.Size() != 2 {
		t.Error("Merge mutated inputs")
	}
}

func TestCategorizePaperExamples(t *testing.T) {
	c := NewCategorizer()
	// Examples quoted verbatim in §6.1.1 must land in their categories.
	cases := []struct {
		text string
		want Parent
	}{
		{"Jane Roe must be harassed, get her phone number and address.", ContentLeakage},
		{"make deep fakes of porn with them. send them to all their friends and parents and family.", Impersonation},
		{"Physh his emails and find any info to blackmail with.", Lockout},
		{"Post FB & Twitter accounts so we can spam him with hate.", Overloading},
		{"We need to keep pushing that the LGBT flag is now a hate symbol. Use #ColorCulture on twitter and share on #DiversityWins.", PublicOpinion},
		{"Let's mass-report his twitter and youtube...", Reporting},
		{"Report him to the neighbours, he should be more careful with his atrocious beliefs if he doesn't want ostracism.", Reputational},
		{"We should find all their yachts and stick trackers to them. And track them on gps.", Surveillance},
		{"send her bleach and tell her she's trash", ToxicContent},
	}
	for _, tc := range cases {
		label := c.Categorize(tc.text)
		if !label.HasParent(tc.want) {
			t.Errorf("Categorize(%q) = %v, want parent %q", tc.text, label.Subs(), tc.want)
		}
	}
}

func TestCategorizeSubcategories(t *testing.T) {
	c := NewCategorizer()
	cases := []struct {
		text string
		want Sub
	}{
		{"everyone mass report his channel", SubMassFlagging},
		{"call the cops on him, tell them he has weapons", SubFalseReporting},
		{"raid the stream tonight", SubRaiding},
		{"leave one star reviews on her shop", SubNegativeRatings},
		{"spread the dox to every board", SubDoxPropagation},
		{"hijack the hashtag with our memes", SubHashtagHijacking},
		{"email her boss about what she posted", SubReputationPrivate},
		{"track him on gps", SubStalkingTracking},
		{"hack his account and post from it", SubAccountLockout},
		{"bully him until he leaves", SubGeneric},
	}
	for _, tc := range cases {
		label := c.Categorize(tc.text)
		if !label.Has(tc.want) {
			t.Errorf("Categorize(%q) = %v, want %q", tc.text, label.Subs(), tc.want)
		}
	}
}

func TestCategorizeBenign(t *testing.T) {
	c := NewCategorizer()
	benign := []string{
		"anyone want to play ranked tonight?",
		"the new update is out, patch notes look good",
		"contact your local elected representative about the bill", // the paper's canonical false positive, must NOT be harassment
		"I reported my own bug on the tracker",
	}
	for _, b := range benign {
		if label := c.Categorize(b); !label.Empty() {
			t.Errorf("benign %q coded as %v", b, label.Subs())
		}
	}
}

func TestCategorizeMiscSuppression(t *testing.T) {
	c := NewCategorizer()
	// Text matching both a specific reporting cue and the generic
	// "report them" misc cue should carry only the specific label.
	label := c.Categorize("mass report them all, report them until the account is gone")
	if label.Has(SubReportingMisc) {
		t.Errorf("misc not suppressed: %v", label.Subs())
	}
	if !label.Has(SubMassFlagging) {
		t.Errorf("missing specific label: %v", label.Subs())
	}
	// Generic suppressed when specific parents matched.
	label = c.Categorize("bully him by raiding the stream, raid his chat")
	if label.Has(SubGeneric) {
		t.Errorf("generic not suppressed: %v", label.Subs())
	}
}

func TestCategorizeMultiLabel(t *testing.T) {
	c := NewCategorizer()
	text := "get her phone number and address, then raid the stream and mass report her channel"
	label := c.Categorize(text)
	if label.ParentCount() < 3 {
		t.Errorf("multi-attack text produced %d parents: %v", label.ParentCount(), label.Subs())
	}
}

func TestDistribution(t *testing.T) {
	labels := []Label{
		NewLabel(SubMassFlagging),
		NewLabel(SubMassFlagging, SubDoxing),
		NewLabel(SubRaiding),
		NewLabel(),
	}
	d := NewDistribution(labels)
	if d.Total != 4 {
		t.Fatalf("Total = %d", d.Total)
	}
	if d.ParentHits[Reporting] != 2 || d.SubHits[SubMassFlagging] != 2 {
		t.Errorf("Reporting hits = %d, MassFlagging = %d", d.ParentHits[Reporting], d.SubHits[SubMassFlagging])
	}
	if got := d.ParentShare(Reporting); got != 0.5 {
		t.Errorf("ParentShare = %v", got)
	}
	if got := d.SubShare(SubRaiding); got != 0.25 {
		t.Errorf("SubShare = %v", got)
	}
	empty := NewDistribution(nil)
	if empty.ParentShare(Reporting) != 0 || empty.SubShare(SubRaiding) != 0 {
		t.Error("empty distribution shares should be 0")
	}
}

func TestCoOccurrence(t *testing.T) {
	labels := []Label{
		NewLabel(SubStalkingTracking, SubDoxing),             // surveillance + content leakage
		NewLabel(SubStalkingTracking, SubDoxing, SubRaiding), // three types
		NewLabel(SubStalkingTracking),                        // single
		NewLabel(SubMassFlagging),                            // single
	}
	d := NewDistribution(labels)
	co := NewCoOccurrence(labels)
	if co.MultiType != 2 {
		t.Errorf("MultiType = %d", co.MultiType)
	}
	if co.BySize[1] != 2 || co.BySize[2] != 1 || co.BySize[3] != 1 {
		t.Errorf("BySize = %v", co.BySize)
	}
	// 2 of 3 surveillance labels also contain content leakage.
	got := co.ConditionalShare(Surveillance, ContentLeakage, d)
	if !floatEq(got, 2.0/3.0) {
		t.Errorf("ConditionalShare = %v", got)
	}
	if co.ConditionalShare(Lockout, ContentLeakage, d) != 0 {
		t.Error("absent parent should give 0")
	}
}

func floatEq(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func BenchmarkCategorize(b *testing.B) {
	c := NewCategorizer()
	text := "get her phone number and address, then raid the stream and mass report her channel until it is banned"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Categorize(text)
	}
}

func TestEverySubcategoryDescribed(t *testing.T) {
	for _, s := range Subs() {
		if s.Describe() == "" {
			t.Errorf("subcategory %q has no description", s)
		}
	}
	if Sub("bogus").Describe() != "" {
		t.Error("bogus subcategory has a description")
	}
}

func TestEverySubcategoryHasCues(t *testing.T) {
	// The categorizer must be able to code every subcategory: each needs
	// at least one cue pattern, and the compiled rule set must cover all.
	for _, s := range Subs() {
		if len(cuePatterns[s]) == 0 {
			t.Errorf("subcategory %q has no cue patterns", s)
		}
	}
	c := NewCategorizer()
	covered := map[Sub]bool{}
	for _, r := range c.rules {
		covered[r.sub] = true
	}
	for _, s := range Subs() {
		if !covered[s] {
			t.Errorf("subcategory %q has no compiled rules", s)
		}
	}
}

func TestCategorizeDeterministic(t *testing.T) {
	c := NewCategorizer()
	text := "we need to mass report his channel, then raid the stream, and email her boss"
	a := c.Categorize(text).Subs()
	b := c.Categorize(text).Subs()
	if len(a) != len(b) {
		t.Fatal("nondeterministic categorization")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic categorization order")
		}
	}
}
