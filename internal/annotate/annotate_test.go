package annotate

import (
	"fmt"
	"strings"
	"testing"

	"harassrepro/internal/randx"
)

// makeItems builds an item pool with the given positive prevalence.
func makeItems(n int, prevalence float64, seed uint64) []Item {
	rng := randx.New(seed)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: fmt.Sprintf("doc-%05d", i), Truth: rng.Bool(prevalence)}
	}
	return items
}

func TestPoolCreation(t *testing.T) {
	rng := randx.New(1)
	p := NewPool(CrowdConfig(TaskDox), rng)
	if got := len(p.Active()); got != 8 {
		t.Fatalf("active annotators = %d, want 8", got)
	}
	for _, a := range p.Active() {
		if a.TPR < 0.7 || a.TNR < 0.9 {
			t.Errorf("annotator %s accuracies out of band: %v/%v", a.ID, a.TPR, a.TNR)
		}
	}
}

func TestEntryTestRejectsBadAnnotators(t *testing.T) {
	rng := randx.New(2)
	// A pool of coin-flippers: nearly all should fail the 90% entry bar.
	p := NewPool(PoolConfig{Size: 5, TPR: 0.5, TNR: 0.5}, rng)
	if p.RejectedAtEntry() == 0 {
		t.Error("no candidates rejected at entry despite coin-flip accuracy")
	}
}

func TestAnnotateLabelsAccurate(t *testing.T) {
	rng := randx.New(3)
	p := NewPool(ExpertConfig(TaskDox), rng)
	items := makeItems(1000, 0.5, 4)
	decisions, _, err := p.Annotate(items)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(items, decisions); acc < 0.95 {
		t.Errorf("expert accuracy = %v, want > 0.95", acc)
	}
}

func TestCrowdKappaBands(t *testing.T) {
	// Crowd pools must land near the paper's agreement levels when
	// annotating pools at the calibration prevalences.
	cases := []struct {
		task       Task
		prevalence float64
		kappaLo    float64
		kappaHi    float64
		disagreeHi float64
	}{
		// Doxing: kappa 0.519 ("moderate"), disagreement 3.94%. The
		// calibration prevalence (~9%) matches the pipeline's dox pool.
		{TaskDox, 0.09, 0.40, 0.65, 0.09},
		// CTH: kappa 0.350 ("fair"), disagreement 18.66%; pool
		// prevalence ~4.5%.
		{TaskCTH, 0.045, 0.24, 0.47, 0.14},
	}
	for _, c := range cases {
		rng := randx.New(5)
		p := NewPool(CrowdConfig(c.task), rng)
		items := makeItems(8000, c.prevalence, 6)
		_, st, err := p.Annotate(items)
		if err != nil {
			t.Fatal(err)
		}
		if st.Kappa < c.kappaLo || st.Kappa > c.kappaHi {
			t.Errorf("%s: kappa = %.3f, want in [%.2f, %.2f]", c.task, st.Kappa, c.kappaLo, c.kappaHi)
		}
		if st.DisagreementRate > c.disagreeHi {
			t.Errorf("%s: disagreement = %.3f, want < %.2f", c.task, st.DisagreementRate, c.disagreeHi)
		}
	}
}

func TestCTHHarderThanDox(t *testing.T) {
	// The semantic-nuance gap: crowd agreement must be lower on the CTH
	// task than on doxing (the paper's core annotation observation).
	rngD := randx.New(7)
	pd := NewPool(CrowdConfig(TaskDox), rngD)
	itemsD := makeItems(6000, 0.09, 8)
	_, stD, _ := pd.Annotate(itemsD)

	rngC := randx.New(7)
	pc := NewPool(CrowdConfig(TaskCTH), rngC)
	itemsC := makeItems(6000, 0.045, 8)
	_, stC, _ := pc.Annotate(itemsC)

	if stC.Kappa >= stD.Kappa {
		t.Errorf("CTH kappa %.3f >= dox kappa %.3f", stC.Kappa, stD.Kappa)
	}
	if stC.DisagreementRate <= stD.DisagreementRate {
		t.Errorf("CTH disagreement %.3f <= dox %.3f", stC.DisagreementRate, stD.DisagreementRate)
	}
}

func TestExpertKappaStrong(t *testing.T) {
	// Expert agreement over thresholded (high-precision) pools:
	// kappa 0.893 dox / 0.845 CTH, both "strong".
	for _, task := range []Task{TaskDox, TaskCTH} {
		rng := randx.New(9)
		p := NewPool(ExpertConfig(task), rng)
		items := makeItems(4000, 0.7, 10)
		_, st, err := p.Annotate(items)
		if err != nil {
			t.Fatal(err)
		}
		if st.Kappa < 0.78 {
			t.Errorf("%s expert kappa = %.3f, want > 0.78", task, st.Kappa)
		}
		if st.KappaBand != "strong" {
			t.Errorf("%s expert kappa band = %q", task, st.KappaBand)
		}
	}
}

func TestTieBreaking(t *testing.T) {
	rng := randx.New(11)
	p := NewPool(CrowdConfig(TaskCTH), rng)
	items := makeItems(3000, 0.3, 12)
	decisions, st, err := p.Annotate(items)
	if err != nil {
		t.Fatal(err)
	}
	if st.Disagreements == 0 {
		t.Fatal("no disagreements in a noisy pool")
	}
	for _, d := range decisions {
		if d.Disagreed && d.First == d.Second {
			t.Fatal("decision marked disagreed with matching labels")
		}
		if !d.Disagreed && d.Label != d.First {
			t.Fatal("agreed decision must carry the agreed label")
		}
	}
}

func TestGatingRemovesBadAnnotators(t *testing.T) {
	rng := randx.New(13)
	// A large pool with terrible re-test behaviour: force low accuracy
	// but pass entry by configuring a pool whose jitter creates a bad
	// tail. Simplest: low TPR/TNR but wide pool and lenient entry.
	cfg := PoolConfig{Size: 10, TPR: 0.75, TNR: 0.75, EntryPassScore: 0.5, RemoveBelowScore: 0.85}
	p := NewPool(cfg, rng)
	items := makeItems(5000, 0.5, 14)
	_, st, err := p.Annotate(items)
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedAnnotators == 0 {
		t.Error("gating removed no annotators from a low-accuracy pool")
	}
	if len(p.Active()) < 3 {
		t.Error("gating left fewer than 3 active annotators")
	}
}

func TestAnnotateRequiresThreeAnnotators(t *testing.T) {
	rng := randx.New(15)
	p := NewPool(PoolConfig{Size: 2, TPR: 0.99, TNR: 0.99}, rng)
	if _, _, err := p.Annotate(makeItems(10, 0.5, 16)); err == nil {
		t.Fatal("expected error for pool smaller than 3")
	}
}

func TestAnnotateDeterministic(t *testing.T) {
	run := func() []Decision {
		rng := randx.New(17)
		p := NewPool(CrowdConfig(TaskDox), rng)
		d, _, _ := p.Annotate(makeItems(500, 0.2, 18))
		return d
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

func TestAccuracy(t *testing.T) {
	items := []Item{{ID: "a", Truth: true}, {ID: "b", Truth: false}}
	decisions := []Decision{{ID: "a", Label: true}, {ID: "b", Label: true}}
	if got := Accuracy(items, decisions); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := Accuracy(nil, nil); got != 0 {
		t.Errorf("empty Accuracy = %v", got)
	}
	if got := Accuracy(items, decisions[:1]); got != 0 {
		t.Errorf("mismatched Accuracy = %v", got)
	}
}

func TestTaskTemplate(t *testing.T) {
	for _, task := range []Task{TaskDox, TaskCTH} {
		tpl := TaskTemplate(task)
		for _, want := range []string{"Do not open URLs", "[ ] Yes", string(task)} {
			if !strings.Contains(tpl, want) {
				t.Errorf("%s template missing %q", task, want)
			}
		}
	}
	if TaskTemplate(TaskDox) == TaskTemplate(TaskCTH) {
		t.Error("task templates should differ")
	}
}

func BenchmarkAnnotate(b *testing.B) {
	rng := randx.New(1)
	p := NewPool(CrowdConfig(TaskDox), rng)
	items := makeItems(1000, 0.1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Annotate(items)
	}
}

func TestSpotCheck(t *testing.T) {
	rng := randx.New(61)
	crowd := NewPool(CrowdConfig(TaskCTH), rng)
	items := makeItems(3000, 0.1, 62)
	decisions, _, err := crowd.Annotate(items)
	if err != nil {
		t.Fatal(err)
	}
	// Count crowd false positives before review.
	fpBefore := 0
	for i := range decisions {
		if decisions[i].Label && !items[i].Truth {
			fpBefore++
		}
	}
	experts := NewPool(ExpertConfig(TaskCTH), randx.New(63))
	res, err := SpotCheck(items, decisions, experts, 300, randx.New(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleSize != 300 {
		t.Errorf("sample size = %d", res.SampleSize)
	}
	if res.SampledAccuracy < 0.7 {
		t.Errorf("sampled accuracy = %v", res.SampledAccuracy)
	}
	if res.PositivesReviewed == 0 {
		t.Fatal("no positives reviewed")
	}
	// The review must remove most crowd false positives (in place).
	fpAfter := 0
	for i := range decisions {
		if decisions[i].Label && !items[i].Truth {
			fpAfter++
		}
	}
	if fpBefore > 0 && fpAfter*2 > fpBefore {
		t.Errorf("review left %d of %d false positives", fpAfter, fpBefore)
	}
	if res.PositivesOverturned == 0 {
		t.Error("noisy crowd positives should see some overturned")
	}
}

func TestSpotCheckEdgeCases(t *testing.T) {
	experts := NewPool(ExpertConfig(TaskDox), randx.New(65))
	if _, err := SpotCheck([]Item{{}}, nil, experts, 1, randx.New(66)); err == nil {
		t.Error("mismatched lengths should error")
	}
	res, err := SpotCheck(nil, nil, experts, 10, randx.New(67))
	if err != nil || res.SampleSize != 0 {
		t.Errorf("empty spot check: %+v, %v", res, err)
	}
}
