// Package annotate simulates the paper's annotation workforce (§5.1,
// §5.3): crowd annotators from a third-party labelling service and
// domain-expert annotators (the authors). Each annotator is a per-class
// confusion model; crowd pools are calibrated so that the measured
// inter-annotator agreement lands near the paper's Cohen's kappa values
// (0.519 doxing / 0.350 CTH for the crowd; 0.893 / 0.845 for experts).
//
// The package implements the paper's quality-control protocol: a 10-item
// entry test with a 90% passing bar, a re-test every tenth document with
// removal below 85%, two annotators per document, and a third annotator
// breaking ties.
package annotate

import (
	"fmt"

	"harassrepro/internal/randx"
	"harassrepro/internal/stats"
)

// Task identifies the annotation task.
type Task string

// The two annotation tasks.
const (
	TaskDox Task = "doxing"
	TaskCTH Task = "call-to-harassment"
)

// Item is one document to annotate; Truth is the hidden ground-truth
// label the simulated annotator perceives through its confusion model.
type Item struct {
	ID    string
	Truth bool
}

// Decision is the protocol outcome for one item.
type Decision struct {
	ID    string
	Label bool
	// Disagreed reports whether the first two annotators disagreed and a
	// third broke the tie.
	Disagreed bool
	// First and Second are the first two annotators' labels (used for
	// agreement statistics).
	First, Second bool
}

// Annotator is a simulated labeller with per-class accuracy.
type Annotator struct {
	ID string
	// TPR is the probability of labelling a true positive as positive;
	// TNR the probability of labelling a true negative as negative.
	TPR, TNR float64

	goldSeen    int
	goldCorrect int
	removed     bool
}

// Label produces the annotator's label for an item.
func (a *Annotator) Label(truth bool, rng *randx.Source) bool {
	if truth {
		return rng.Bool(a.TPR)
	}
	return !rng.Bool(a.TNR)
}

// Removed reports whether the annotator was removed by quality gating.
func (a *Annotator) Removed() bool { return a.removed }

// PoolConfig configures an annotator pool.
type PoolConfig struct {
	// Size is the number of annotators. Defaults to 8.
	Size int
	// TPR/TNR are the pool's nominal per-class accuracies.
	TPR, TNR float64
	// Jitter perturbs each annotator's accuracies uniformly in
	// [-Jitter, +Jitter], producing the worker heterogeneity the
	// spot-checking process exists to catch. Defaults to 0.02.
	Jitter float64
	// EntryPassScore is the minimum score on the 10-item entry test
	// (fraction). Defaults to 0.9 (the paper's 90%).
	EntryPassScore float64
	// RetestEvery inserts a gold test question every Nth document.
	// Defaults to 10 (the paper re-tested every tenth document).
	RetestEvery int
	// RemoveBelowScore removes annotators whose rolling gold score
	// falls below this fraction. Defaults to 0.85 (the paper's 85%).
	RemoveBelowScore float64
}

func (c *PoolConfig) fillDefaults() {
	if c.Size <= 0 {
		c.Size = 8
	}
	if c.Jitter == 0 {
		c.Jitter = 0.02
	}
	if c.EntryPassScore == 0 {
		c.EntryPassScore = 0.9
	}
	if c.RetestEvery <= 0 {
		c.RetestEvery = 10
	}
	if c.RemoveBelowScore == 0 {
		c.RemoveBelowScore = 0.85
	}
}

// CrowdConfig returns the calibrated crowd-pool configuration for a task.
// The accuracies are tuned so that two-rater agreement over a thresholded
// annotation pool reproduces the paper's kappa and disagreement levels:
// doxing annotation is the easier task (kappa 0.519, 3.94% disagreement),
// CTH the harder one (kappa 0.350, 18.66% disagreement).
func CrowdConfig(task Task) PoolConfig {
	if task == TaskCTH {
		return PoolConfig{TPR: 0.85, TNR: 0.95}
	}
	return PoolConfig{TPR: 0.72, TNR: 0.98}
}

// ExpertConfig returns the domain-expert configuration for a task
// (kappa 0.893 doxing / 0.845 CTH over high-precision pools).
func ExpertConfig(task Task) PoolConfig {
	if task == TaskCTH {
		return PoolConfig{Size: 3, TPR: 0.965, TNR: 0.965, Jitter: 0.005}
	}
	return PoolConfig{Size: 3, TPR: 0.975, TNR: 0.975, Jitter: 0.005}
}

// Pool is a gated annotator pool.
type Pool struct {
	cfg        PoolConfig
	annotators []*Annotator
	rng        *randx.Source
	// rejectedAtEntry counts candidates who failed the entry test.
	rejectedAtEntry int
}

// NewPool creates a pool, running each candidate annotator through the
// 10-item entry test; candidates failing the 90% bar are replaced until
// the pool reaches its configured size (or a candidate budget runs out).
func NewPool(cfg PoolConfig, rng *randx.Source) *Pool {
	cfg.fillDefaults()
	p := &Pool{cfg: cfg, rng: rng.Split("pool")}
	candidateBudget := cfg.Size * 20
	n := 0
	for len(p.annotators) < cfg.Size && candidateBudget > 0 {
		candidateBudget--
		n++
		a := &Annotator{
			ID:  fmt.Sprintf("annotator-%03d", n),
			TPR: clampProb(cfg.TPR + (p.rng.Float64()*2-1)*cfg.Jitter),
			TNR: clampProb(cfg.TNR + (p.rng.Float64()*2-1)*cfg.Jitter),
		}
		if p.entryTest(a) {
			p.annotators = append(p.annotators, a)
		} else {
			p.rejectedAtEntry++
		}
	}
	return p
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// entryTest administers the 10 synthetic training/test questions
// (balanced truth) and applies the entry bar.
func (p *Pool) entryTest(a *Annotator) bool {
	correct := 0
	for i := 0; i < 10; i++ {
		truth := i%2 == 0
		if a.Label(truth, p.rng) == truth {
			correct++
		}
	}
	return float64(correct)/10 >= p.cfg.EntryPassScore
}

// RejectedAtEntry returns the number of candidates who failed onboarding.
func (p *Pool) RejectedAtEntry() int { return p.rejectedAtEntry }

// Active returns the annotators not removed by gating.
func (p *Pool) Active() []*Annotator {
	var out []*Annotator
	for _, a := range p.annotators {
		if !a.removed {
			out = append(out, a)
		}
	}
	return out
}

// Removed returns the annotators removed by the rolling re-test gate.
func (p *Pool) Removed() []*Annotator {
	var out []*Annotator
	for _, a := range p.annotators {
		if a.removed {
			out = append(out, a)
		}
	}
	return out
}

// Stats summarises an annotation run.
type Stats struct {
	Items            int
	Disagreements    int
	DisagreementRate float64
	// Kappa is Cohen's kappa over the first two annotators' labels.
	Kappa float64
	// KappaBand is the qualitative agreement band for Kappa.
	KappaBand string
	// RemovedAnnotators counts annotators removed mid-run by re-testing.
	RemovedAnnotators int
}

// Annotate runs the two-annotator + tie-break protocol over the items,
// inserting a gold re-test question for each annotator every RetestEvery
// documents and removing annotators whose rolling score drops below the
// removal bar (as long as at least three annotators remain).
func (p *Pool) Annotate(items []Item) ([]Decision, Stats, error) {
	if len(p.Active()) < 3 {
		return nil, Stats{}, fmt.Errorf("annotate: pool has %d active annotators, need at least 3", len(p.Active()))
	}
	decisions := make([]Decision, 0, len(items))
	var firstLabels, secondLabels []string
	removedDuringRun := 0

	for i, item := range items {
		active := p.Active()
		if len(active) < 3 {
			// Keep the protocol runnable: reinstate the least-bad
			// removed annotator (in practice the service replaces
			// workers; reinstating keeps the simulation closed).
			for _, a := range p.annotators {
				if a.removed {
					a.removed = false
					a.goldSeen, a.goldCorrect = 0, 0
					active = p.Active()
					break
				}
			}
		}
		// Rotate annotator assignment deterministically.
		a1 := active[i%len(active)]
		a2 := active[(i+1)%len(active)]

		// Gold re-test questions.
		if p.cfg.RetestEvery > 0 && i > 0 && i%p.cfg.RetestEvery == 0 {
			for _, a := range []*Annotator{a1, a2} {
				truth := p.rng.Bool(0.5)
				a.goldSeen++
				if a.Label(truth, p.rng) == truth {
					a.goldCorrect++
				}
				if a.goldSeen >= 4 && float64(a.goldCorrect)/float64(a.goldSeen) < p.cfg.RemoveBelowScore {
					if len(p.Active()) > 3 {
						a.removed = true
						removedDuringRun++
					}
				}
			}
		}

		l1 := a1.Label(item.Truth, p.rng)
		l2 := a2.Label(item.Truth, p.rng)
		d := Decision{ID: item.ID, First: l1, Second: l2}
		if l1 == l2 {
			d.Label = l1
		} else {
			d.Disagreed = true
			// Third annotator breaks the tie.
			a3 := active[(i+2)%len(active)]
			d.Label = a3.Label(item.Truth, p.rng)
		}
		decisions = append(decisions, d)
		firstLabels = append(firstLabels, boolLabel(l1))
		secondLabels = append(secondLabels, boolLabel(l2))
	}

	st := Stats{Items: len(items), RemovedAnnotators: removedDuringRun}
	for _, d := range decisions {
		if d.Disagreed {
			st.Disagreements++
		}
	}
	if len(items) > 0 {
		st.DisagreementRate = float64(st.Disagreements) / float64(len(items))
		if k, err := stats.CohensKappa(firstLabels, secondLabels); err == nil {
			st.Kappa = k
			st.KappaBand = stats.KappaInterpretation(k)
		}
	}
	return decisions, st, nil
}

func boolLabel(b bool) string {
	if b {
		return "positive"
	}
	return "negative"
}

// Accuracy scores decisions against ground truth, returning the fraction
// of correct final labels (used by spot checks, §5.3).
func Accuracy(items []Item, decisions []Decision) float64 {
	if len(items) == 0 || len(items) != len(decisions) {
		return 0
	}
	correct := 0
	for i, item := range items {
		if decisions[i].Label == item.Truth {
			correct++
		}
	}
	return float64(correct) / float64(len(items))
}

// SpotCheckResult reports a §5.3-style quality pass over delivered
// crowd annotations: "We established a spot-checking process ...
// reviewing random samples of annotations in order to keep track of poor
// annotator performance. In addition, one of the authors reviewed all
// positive labeled annotations from the third-party annotation service
// after data set delivery."
type SpotCheckResult struct {
	// SampledAccuracy is the expert-measured accuracy on the random
	// spot-check sample.
	SampledAccuracy float64
	SampleSize      int
	// PositivesReviewed is the number of positive-labelled decisions
	// re-reviewed by the expert pass.
	PositivesReviewed int
	// PositivesOverturned counts positives the review flipped to
	// negative (crowd false positives).
	PositivesOverturned int
}

// SpotCheck reviews crowd decisions: a random sample of size sampleN is
// re-annotated to estimate accuracy, and every positive-labelled decision
// is re-reviewed (and corrected in place) by the expert pool. items and
// decisions must be parallel.
func SpotCheck(items []Item, decisions []Decision, experts *Pool, sampleN int, rng *randx.Source) (SpotCheckResult, error) {
	var res SpotCheckResult
	if len(items) != len(decisions) {
		return res, fmt.Errorf("annotate: spot check: %d items vs %d decisions", len(items), len(decisions))
	}
	if len(items) == 0 {
		return res, nil
	}

	// Random sample accuracy estimate.
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	randx.Shuffle(rng, idx)
	if sampleN <= 0 || sampleN > len(idx) {
		sampleN = len(idx)
	}
	sampleItems := make([]Item, sampleN)
	for j := 0; j < sampleN; j++ {
		sampleItems[j] = items[idx[j]]
	}
	sampleDecisions, _, err := experts.Annotate(sampleItems)
	if err != nil {
		return res, err
	}
	agree := 0
	for j := 0; j < sampleN; j++ {
		if sampleDecisions[j].Label == decisions[idx[j]].Label {
			agree++
		}
	}
	res.SampleSize = sampleN
	res.SampledAccuracy = float64(agree) / float64(sampleN)

	// Author review of every positive label, correcting in place.
	var posIdx []int
	var posItems []Item
	for i := range decisions {
		if decisions[i].Label {
			posIdx = append(posIdx, i)
			posItems = append(posItems, items[i])
		}
	}
	if len(posItems) > 0 {
		reviewed, _, err := experts.Annotate(posItems)
		if err != nil {
			return res, err
		}
		for j, i := range posIdx {
			res.PositivesReviewed++
			if !reviewed[j].Label {
				decisions[i].Label = false
				res.PositivesOverturned++
			}
		}
	}
	return res, nil
}

// TaskTemplate renders the crowdsourcing task template of Figure 3: the
// question, the label options, and the annotation guide extract shown to
// workers. It is a structural artifact (the paper redacts the content).
func TaskTemplate(task Task) string {
	definition := "a third party posts, broadcasts or publishes personal information about an individual without their consent and with the intention to do harm"
	question := "Does the text contain a dox?"
	if task == TaskCTH {
		definition = "an individual attempts to mobilize others online to collaborate to conduct online harassment"
		question = "Does the text contain a call to harassment?"
	}
	return fmt.Sprintf(`ANNOTATION TASK: %s
Definition: %q.
Instructions: read only the text below. Do not open URLs. Do not search
for any names, handles or other information contained in the post.
%s
  [ ] Yes   [ ] No   [ ] Unsure
`, task, definition, question)
}
