package engine

// The compiler lowers a pattern AST into a flat instruction program
// for the backtracking VM in backtrack.go and the NFA simulation the
// lazy DFA (dfa.go) determinises on demand. The instruction set and
// split ordering mirror Go's regexp bytecode closely enough that the
// VM's leftmost-first search reproduces regexp match extents exactly.

type opcode uint8

const (
	opClass opcode = iota // consume one char matching inst.cls
	opSplit               // try x first, then y (preference order)
	opJmp                 // jump to x
	opBound               // assert ASCII word boundary (zero-width)
	opSaveS               // record capture-group start = current pos
	opSaveE               // record capture-group end = current pos
	opMatch               // accept
)

type inst struct {
	op   opcode
	cls  class
	x, y int32 // split targets / jump target
}

// Program is a compiled pattern.
type Program struct {
	insts []inst
	// first is the set of bytes (plus fold flags) that can begin a
	// match: the union of classes reachable from instruction 0 through
	// zero-width instructions.
	first class
	// minLen is a lower bound on matched bytes (ASCII view).
	minLen int
}

type compiler struct {
	insts []inst
}

func (c *compiler) emit(i inst) int32 {
	c.insts = append(c.insts, i)
	return int32(len(c.insts) - 1)
}

// compile emits code for n; on return, all emitted code falls through
// to the next instruction to be emitted.
func (c *compiler) compile(n *Node) {
	switch n.kind {
	case nkClass:
		c.emit(inst{op: opClass, cls: n.cls})
	case nkSeq:
		for _, s := range n.subs {
			c.compile(s)
		}
	case nkAlt:
		// branch[i]: split -> (body_i, next alternative); last body
		// falls through, earlier bodies jump to the common end.
		var jumps []int32
		for i, s := range n.subs {
			if i == len(n.subs)-1 {
				c.compile(s)
				break
			}
			sp := c.emit(inst{op: opSplit})
			c.insts[sp].x = int32(len(c.insts))
			c.compile(s)
			jumps = append(jumps, c.emit(inst{op: opJmp}))
			c.insts[sp].y = int32(len(c.insts))
		}
		for _, j := range jumps {
			c.insts[j].x = int32(len(c.insts))
		}
	case nkRep:
		c.compileRep(n)
	case nkBound:
		c.emit(inst{op: opBound})
	case nkCap:
		c.emit(inst{op: opSaveS})
		c.compile(n.sub)
		c.emit(inst{op: opSaveE})
	}
}

// compileRep expands X{min,max} into min copies of X followed by
// either optional copies (bounded) or a star loop (unbounded). Greedy
// preference puts the body on the split's x branch; lazy reverses it.
func (c *compiler) compileRep(n *Node) {
	for i := 0; i < n.min; i++ {
		c.compile(n.sub)
	}
	extra := -1
	if n.max >= 0 {
		extra = n.max - n.min
		if extra == 0 {
			return
		}
	}
	if extra < 0 {
		// star loop: L: split (body, out); body; jmp L
		l := int32(len(c.insts))
		sp := c.emit(inst{op: opSplit})
		body := int32(len(c.insts))
		c.compile(n.sub)
		c.emit(inst{op: opJmp, x: l})
		out := int32(len(c.insts))
		if n.lazy {
			c.insts[sp].x, c.insts[sp].y = out, body
		} else {
			c.insts[sp].x, c.insts[sp].y = body, out
		}
		return
	}
	// bounded: nested optionals — (X(X(...)?)?)? — so each extra copy
	// is individually optional and preference order is preserved.
	var splits []int32
	for i := 0; i < extra; i++ {
		sp := c.emit(inst{op: opSplit})
		body := int32(len(c.insts))
		if n.lazy {
			c.insts[sp].y = body
		} else {
			c.insts[sp].x = body
		}
		splits = append(splits, sp)
		c.compile(n.sub)
	}
	out := int32(len(c.insts))
	for _, sp := range splits {
		if n.lazy {
			c.insts[sp].x = out
		} else {
			c.insts[sp].y = out
		}
	}
}

// Compile lowers an AST into an executable Program.
func Compile(n *Node) *Program {
	c := &compiler{}
	c.compile(n)
	c.emit(inst{op: opMatch})
	p := &Program{insts: c.insts}
	p.first = firstSet(c.insts)
	p.minLen = minLen(n)
	return p
}

// firstSet unions every class reachable from pc 0 through zero-width
// instructions: the bytes a match can start with.
func firstSet(insts []inst) class {
	var f class
	seen := make([]bool, len(insts))
	var walk func(pc int32)
	walk = func(pc int32) {
		for {
			if seen[pc] {
				return
			}
			seen[pc] = true
			in := &insts[pc]
			switch in.op {
			case opClass:
				f.bits[0] |= in.cls.bits[0]
				f.bits[1] |= in.cls.bits[1]
				f.foldS = f.foldS || in.cls.foldS
				f.foldK = f.foldK || in.cls.foldK
				return
			case opSplit:
				walk(in.x)
				pc = in.y
			case opJmp:
				pc = in.x
			case opBound, opSaveS, opSaveE:
				pc++
			case opMatch:
				return
			}
		}
	}
	walk(0)
	return f
}

// minLen computes a lower bound on the number of characters (ASCII
// view) a match must consume.
func minLen(n *Node) int {
	switch n.kind {
	case nkClass:
		return 1
	case nkSeq:
		t := 0
		for _, s := range n.subs {
			t += minLen(s)
		}
		return t
	case nkAlt:
		m := minLen(n.subs[0])
		for _, s := range n.subs[1:] {
			if l := minLen(s); l < m {
				m = l
			}
		}
		return m
	case nkRep:
		return n.min * minLen(n.sub)
	case nkCap:
		return minLen(n.sub)
	}
	return 0
}
