package engine

// A Teddy-style multi-literal prefilter: all gate literals are packed
// into four 64-bit "lanes" and matched simultaneously with a
// bit-parallel Shift-And automaton (the SWAR formulation of Teddy's
// bucketed fingerprint idea — each lane is a bucket whose per-byte
// masks overlay its members' fingerprints; the lanes here are wide
// enough that matches are exact, not candidates needing verification;
// the one-bit carry that can leak from a literal into its lane
// neighbour is absorbed by the init mask, which sets that first-char
// bit whenever the byte matches anyway). One pass over the document
// computes, simultaneously:
//
//   - which gate literals occur (LitMask over the registered set),
//   - the ASCII digit count and every maximal digit run,
//   - the end offsets of every occurrence of "tracked" literals
//     ('@' for email, the host/mention site names for handles),
//   - whether either non-ASCII fold rune (U+017F, U+212A) occurred.
//
// The scan is over the case-folded view: A-Z fold to a-z, U+017F
// folds to 's', U+212A folds to 'k', all other non-ASCII bytes reset
// the automaton (no literal contains them). The hot loop keeps all
// four lanes in registers; per byte it is one 32-byte table load,
// four shift/or/and triples, and one accept test.

import "math/bits"

// laneWords is the number of 64-bit lanes literals are packed into:
// 256 characters of total literal text.
const laneWords = 4

type laneVec [laneWords]uint64

// LitEvent records one occurrence of a tracked literal: End is the
// byte offset just past the occurrence in the original text.
type LitEvent struct {
	ID  int // tracked-literal ID (registration order)
	End int32
}

// Run is one maximal ASCII digit run [Start, End).
type Run struct {
	Start, End int32
}

// Facts is everything one scan establishes about a document.
type Facts struct {
	LitMask uint64 // which gate literals occur (bit = registration order)
	Digits  int    // total ASCII digit count
	HasFold bool   // a non-ASCII fold rune occurred
	Events  []LitEvent
	Runs    []Run
}

// Reset clears f for reuse without freeing its slices.
func (f *Facts) Reset() {
	f.LitMask = 0
	f.Digits = 0
	f.HasFold = false
	f.Events = f.Events[:0]
	f.Runs = f.Runs[:0]
}

// teddyLit is one packed literal.
type teddyLit struct {
	text    string
	gateBit int // bit in LitMask, -1 if not a gate literal
	trackID int // tracked-literal ID, -1 if not tracked
}

// TeddyLiteral registers one literal for compilation. Gate literals
// contribute a bit to Facts.LitMask; tracked literals additionally
// emit LitEvents with their end offsets.
type TeddyLiteral struct {
	Text    string
	GateBit int // -1: not a gate
	TrackID int // -1: not tracked
}

// Teddy is the compiled prefilter.
type Teddy struct {
	lits []teddyLit
	// tab[c] has, for each lane, a 1 bit at position i iff some packed
	// literal has byte c at (lane-relative) position i.
	tab [128]laneVec
	// initMask has a 1 at every literal's first-char position: the
	// Shift-And "new match may start here" injection.
	initMask laneVec
	// fin has a 1 at every literal's last-char position.
	fin laneVec
	// litAt maps (lane, end bit) -> literal index for accept dispatch.
	litAt [laneWords][64]int16
}

// NewTeddy compiles the literal set. Literals must be non-empty
// lowercase ASCII (the scan folds input to lowercase first).
func NewTeddy(literals []TeddyLiteral) *Teddy {
	t := &Teddy{}
	for w := 0; w < laneWords; w++ {
		for b := 0; b < 64; b++ {
			t.litAt[w][b] = -1
		}
	}
	// First-fit pack each literal into a lane with enough free bits.
	used := [laneWords]uint{}
	for _, l := range literals {
		if l.Text == "" {
			panic("engine: empty teddy literal")
		}
		n := uint(len(l.Text))
		lane := -1
		for w := 0; w < laneWords; w++ {
			if used[w]+n <= 64 {
				lane = w
				break
			}
		}
		if lane < 0 {
			panic("engine: teddy literal set exceeds lane capacity")
		}
		base := used[lane]
		used[lane] += n
		for i := uint(0); i < n; i++ {
			c := l.Text[i]
			if c >= 0x80 || ('A' <= c && c <= 'Z') {
				panic("engine: teddy literal must be lowercase ASCII: " + l.Text)
			}
			t.tab[c][lane] |= 1 << (base + i)
		}
		t.initMask[lane] |= 1 << base
		endBit := base + n - 1
		t.fin[lane] |= 1 << endBit
		t.litAt[lane][endBit] = int16(len(t.lits))
		t.lits = append(t.lits, teddyLit{text: l.Text, gateBit: l.GateBit, trackID: l.TrackID})
	}
	return t
}

// Scan runs the prefilter over text, filling facts (which is Reset
// first). Allocation-free once facts' slices have grown.
func (t *Teddy) Scan(text string, facts *Facts) {
	facts.Reset()
	var d0, d1, d2, d3 uint64
	i0, i1, i2, i3 := t.initMask[0], t.initMask[1], t.initMask[2], t.initMask[3]
	f0, f1, f2, f3 := t.fin[0], t.fin[1], t.fin[2], t.fin[3]
	digits := 0
	runStart := int32(-1)
	for i := 0; i < len(text); i++ {
		c := text[i]
		end := int32(i + 1)
		if c >= 0x80 {
			if c == 0xC5 && i+1 < len(text) && text[i+1] == 0xBF {
				c, i = 's', i+1 // U+017F -> 's'
				end = int32(i + 1)
				facts.HasFold = true
			} else if c == 0xE2 && i+2 < len(text) && text[i+1] == 0x84 && text[i+2] == 0xAA {
				c, i = 'k', i+2 // U+212A -> 'k'
				end = int32(i + 1)
				facts.HasFold = true
			} else {
				// Non-ASCII: no literal continues, no digit run continues.
				if runStart >= 0 {
					facts.Runs = append(facts.Runs, Run{Start: runStart, End: int32(i)})
					runStart = -1
				}
				d0, d1, d2, d3 = 0, 0, 0, 0
				continue
			}
		} else if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if '0' <= c && c <= '9' {
			digits++
			if runStart < 0 {
				runStart = end - 1
			}
		} else if runStart >= 0 {
			facts.Runs = append(facts.Runs, Run{Start: runStart, End: end - 1})
			runStart = -1
		}
		// Shift-And step across all lanes.
		tc := &t.tab[c]
		d0 = ((d0 << 1) | i0) & tc[0]
		d1 = ((d1 << 1) | i1) & tc[1]
		d2 = ((d2 << 1) | i2) & tc[2]
		d3 = ((d3 << 1) | i3) & tc[3]
		if d0&f0|d1&f1|d2&f2|d3&f3 != 0 {
			t.accept(&laneVec{d0 & f0, d1 & f1, d2 & f2, d3 & f3}, end, facts)
		}
	}
	if runStart >= 0 {
		facts.Runs = append(facts.Runs, Run{Start: runStart, End: int32(len(text))})
	}
	facts.Digits = digits
}

// accept dispatches every literal whose end bit is set.
func (t *Teddy) accept(hits *laneVec, end int32, facts *Facts) {
	for w := 0; w < laneWords; w++ {
		h := hits[w]
		for h != 0 {
			bit := uint(bits.TrailingZeros64(h))
			h &= h - 1
			l := &t.lits[t.litAt[w][bit]]
			if l.gateBit >= 0 {
				facts.LitMask |= 1 << uint(l.gateBit)
			}
			if l.trackID >= 0 {
				facts.Events = append(facts.Events, LitEvent{ID: l.trackID, End: end})
			}
		}
	}
}
