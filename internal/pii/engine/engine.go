package engine

// Engine/Session: the one-pass orchestration. An Engine is compiled
// once from a Spec (literals, per-type gates, per-pattern programs,
// candidate strategies and verify hooks) and shared read-only across
// sessions; a Session owns all mutable scratch (prefilter facts, the
// backtracking machine, the lazy-DFA state cache, the span arena) and
// is reused call-to-call, so steady-state extraction performs zero
// heap allocations.
//
// Extraction per document:
//
//  1. one Teddy scan -> literal mask, digit count/runs, tracked
//     literal events, fold flag;
//  2. per-type gates (same necessary-condition gates as the legacy
//     prefilter) decide which families run at all;
//  3. digit families are additionally gated per digit region by the
//     lazy DFA's accept mask;
//  4. admitted families enumerate candidate start positions (a
//     proven superset of real match starts) and run the exact
//     backtracker with per-pattern resume positions, reproducing
//     FindAll's non-overlapping leftmost-first semantics;
//  5. verify hooks normalise values into the session arena; spans
//     are sorted by (type, value) and de-duplicated.

// CandKind selects a pattern's candidate-enumeration strategy.
type CandKind uint8

const (
	// CandDigitRun anchors candidates on ASCII digit runs: each run's
	// start, optionally a prefix byte just before the run, and
	// optionally interior digits from a designated set.
	CandDigitRun CandKind = iota
	// CandEvent anchors candidates on tracked-literal occurrences at
	// fixed (or windowed) offsets before the occurrence end.
	CandEvent
	// CandEmail is the '@'-event strategy: walk back over the
	// pattern's first-byte class to enumerate boundary starts.
	CandEmail
)

// TrackRef binds a pattern to one tracked literal: for an occurrence
// ending at e, the candidate base is e-Back, and starts
// base-Window..base are tried in ascending order.
type TrackRef struct {
	ID     int
	Back   int
	Window int
}

// VerifyFunc validates and normalises a raw match, appending the
// normalised value to arena. It returns the (possibly grown) arena,
// the value's offset and length within it, and whether the match is
// admitted. capS/capE are -1 when the pattern has no capture group.
type VerifyFunc func(text string, start, end, capS, capE int32, arena []byte) ([]byte, int32, int32, bool)

// TypeSpec is one PII family's gate: every Groups mask must intersect
// the document's literal mask, and the digit count must reach
// MinDigits.
type TypeSpec struct {
	Name      string
	Groups    []uint64
	MinDigits int
}

// PatternSpec is one compiled pattern within a family.
type PatternSpec struct {
	Type        int // index into Spec.Types
	AST         *Node
	Kind        CandKind
	DigitFamily bool   // gate per digit region through the lazy DFA
	Prefix      string // CandDigitRun: bytes allowed at runStart-1
	Interior    string // CandDigitRun: digits valid as interior starts
	Track       []TrackRef
	Verify      VerifyFunc
}

// Spec is the full engine specification.
type Spec struct {
	Literals []TeddyLiteral
	Types    []TypeSpec
	Patterns []PatternSpec
}

type pattern struct {
	spec     PatternSpec
	prog     *Program
	dfaBit   int
	prefix   class
	interior class
}

// Engine is the compiled, immutable engine. Safe for concurrent use
// through per-goroutine Sessions.
type Engine struct {
	spec       Spec
	teddy      *Teddy
	pats       []pattern
	patsByType [][]int
	dfa        *DFA
}

// New compiles a Spec.
func New(spec Spec) *Engine {
	if len(spec.Types) > 32 {
		panic("engine: too many types")
	}
	e := &Engine{spec: spec, teddy: NewTeddy(spec.Literals)}
	e.patsByType = make([][]int, len(spec.Types))
	var dfaProgs []*Program
	for _, ps := range spec.Patterns {
		p := pattern{spec: ps, prog: Compile(ps.AST), dfaBit: -1}
		if ps.DigitFamily {
			p.dfaBit = len(dfaProgs)
			dfaProgs = append(dfaProgs, p.prog)
		}
		p.prefix = parseClassSpec(ps.Prefix)
		p.interior = parseClassSpec(ps.Interior)
		e.patsByType[ps.Type] = append(e.patsByType[ps.Type], len(e.pats))
		e.pats = append(e.pats, p)
	}
	e.dfa = NewDFA(dfaProgs)
	return e
}

// Span is one extracted, verified, normalised match. Value aliases
// the session arena: valid until the next Extract on that session.
type Span struct {
	Type       int
	Start, End int
	Value      []byte
}

// Stats describes one Extract call for observability wiring.
type Stats struct {
	Admitted uint32     // bitmask over type indices whose gate admitted
	Matches  [32]uint32 // verified raw match count per type (pre-dedupe)
}

// rec is the internal span record; values are arena offsets so arena
// regrowth cannot invalidate them.
type rec struct {
	typ            int32
	start, end     int32
	valOff, valLen int32
}

// Session holds all mutable scan state. Not safe for concurrent use;
// create one per goroutine (they are cheap and internally reused).
type Session struct {
	e     *Engine
	facts Facts
	m     Machine
	dfa   *dfaRun

	recs  []rec
	arena []byte
	out   []Span

	resume     []int32
	regions    []Run
	regionMask []uint16
	runRegion  []int32
	haveReg    bool
	cands      []int32

	Stats Stats
}

// NewSession creates a session for e.
func (e *Engine) NewSession() *Session {
	return &Session{
		e:      e,
		dfa:    newDFARun(e.dfa),
		resume: make([]int32, len(e.pats)),
	}
}

// Facts exposes the most recent scan's facts (for gate-equivalence
// tests and wrappers).
func (s *Session) Facts() *Facts { return &s.facts }

// ScanFacts runs only the prefilter scan into f — the facts half of
// Extract, for callers that need gate decisions without extraction.
func (e *Engine) ScanFacts(text string, f *Facts) {
	e.teddy.Scan(text, f)
}

// Extract scans text and returns all verified spans, sorted by
// (type, value) and de-duplicated. The returned slice and the Values
// it holds are valid until the next call on this session.
func (s *Session) Extract(text string) []Span {
	s.e.teddy.Scan(text, &s.facts)
	s.recs = s.recs[:0]
	s.arena = s.arena[:0]
	s.Stats = Stats{}
	s.haveReg = false
	for i := range s.resume {
		s.resume[i] = 0
	}
	for ti := range s.e.spec.Types {
		if !s.admits(ti) {
			continue
		}
		s.Stats.Admitted |= 1 << uint(ti)
		for _, pi := range s.e.patsByType[ti] {
			s.runPattern(text, pi)
		}
	}
	return s.finalize()
}

func (s *Session) admits(ti int) bool {
	t := &s.e.spec.Types[ti]
	if s.facts.Digits < t.MinDigits {
		return false
	}
	for _, g := range t.Groups {
		if s.facts.LitMask&g == 0 {
			return false
		}
	}
	return true
}

func (s *Session) runPattern(text string, pi int) {
	p := &s.e.pats[pi]
	switch p.spec.Kind {
	case CandDigitRun:
		s.runDigitPattern(text, pi, p)
	case CandEvent:
		if s.facts.HasFold {
			s.runFoldFallback(text, pi, p)
			return
		}
		s.runEventPattern(text, pi, p)
	case CandEmail:
		s.runEmailPattern(text, pi, p)
	}
}

// runDigitPattern enumerates digit-run candidates, consulting the
// lazy DFA's per-region accept mask for DFA-gated families.
func (s *Session) runDigitPattern(text string, pi int, p *pattern) {
	if p.dfaBit >= 0 && !s.haveReg {
		s.buildRegions(text)
	}
	for ri := range s.facts.Runs {
		run := s.facts.Runs[ri]
		if p.dfaBit >= 0 {
			if s.regionMask[s.runRegion[ri]]&(1<<uint(p.dfaBit)) == 0 {
				continue
			}
		}
		if run.Start > 0 && p.prefix.has(text[run.Start-1]) {
			s.try(text, pi, run.Start-1)
		}
		s.try(text, pi, run.Start)
		if p.interior.bits[0] != 0 {
			for j := run.Start + 1; j < run.End; j++ {
				if p.interior.has(text[j]) {
					s.try(text, pi, j)
				}
			}
		}
	}
}

// buildRegions merges digit runs separated by small gaps into scan
// regions (no pattern crosses more than 2 non-digit bytes between
// digits), extends each region to cover legal prefix bytes, and runs
// the lazy DFA once per region to compute the family accept mask.
func (s *Session) buildRegions(text string) {
	const mergeGap = 8
	s.regions = s.regions[:0]
	s.regionMask = s.regionMask[:0]
	s.runRegion = s.runRegion[:0]
	for _, run := range s.facts.Runs {
		if n := len(s.regions); n > 0 && run.Start-s.regions[n-1].End <= mergeGap {
			s.regions[n-1].End = run.End
		} else {
			lo := run.Start - 2
			if lo < 0 {
				lo = 0
			}
			s.regions = append(s.regions, Run{Start: lo, End: run.End})
		}
		s.runRegion = append(s.runRegion, int32(len(s.regions)-1))
	}
	for _, reg := range s.regions {
		s.regionMask = append(s.regionMask, s.dfa.ScanRegion(text, reg.Start, reg.End))
	}
	s.haveReg = true
}

// runEventPattern turns tracked-literal occurrences into candidate
// windows. Candidates for multi-literal patterns are collected and
// sorted so per-pattern attempts stay in ascending order.
func (s *Session) runEventPattern(text string, pi int, p *pattern) {
	if len(p.spec.Track) == 1 {
		tr := p.spec.Track[0]
		for _, ev := range s.facts.Events {
			if ev.ID != tr.ID {
				continue
			}
			s.tryWindow(text, pi, ev.End-int32(tr.Back), int32(tr.Window))
		}
		return
	}
	s.cands = s.cands[:0]
	for _, ev := range s.facts.Events {
		for _, tr := range p.spec.Track {
			if ev.ID == tr.ID {
				s.cands = append(s.cands, ev.End-int32(tr.Back))
			}
		}
	}
	sortI32(s.cands)
	for _, c := range s.cands {
		s.try(text, pi, c)
	}
}

// tryWindow attempts starts base-window..base ascending.
func (s *Session) tryWindow(text string, pi int, base, window int32) {
	lo := base - window
	if lo < 0 {
		lo = 0
	}
	for c := lo; c <= base; c++ {
		s.try(text, pi, c)
	}
}

// runFoldFallback handles documents containing a non-ASCII fold rune
// (U+017F / U+212A): literal byte-offset arithmetic no longer maps
// folded-view positions to byte positions, so event-anchored
// patterns degrade to trying every position whose byte can begin a
// match. Rare by construction; the differential fuzz corpus pins it.
func (s *Session) runFoldFallback(text string, pi int, p *pattern) {
	first := &p.prog.first
	for i := 0; i < len(text); i++ {
		b := text[i]
		if b < 0x80 {
			if first.has(b) {
				s.try(text, pi, int32(i))
			}
			continue
		}
		if (first.foldS && b == 0xC5) || (first.foldK && b == 0xE2) {
			s.try(text, pi, int32(i))
		}
	}
}

// runEmailPattern: for each '@' occurrence, walk back over the
// pattern's first-byte class (the local-part class) and try the
// first word-boundary start; the domain half is independent of the
// start, so one failed attempt rules out the whole run.
func (s *Session) runEmailPattern(text string, pi int, p *pattern) {
	tr := p.spec.Track[0]
	local := &p.prog.first
	for _, ev := range s.facts.Events {
		if ev.ID != tr.ID {
			continue
		}
		at := ev.End - 1 // position of '@'
		if at < s.resume[pi] {
			continue
		}
		r := at
		for r > 0 && r > s.resume[pi] && local.has(text[r-1]) {
			r--
		}
		for c := r; c < at; c++ {
			if !atBoundary(text, c) {
				continue
			}
			if !s.try(text, pi, c) {
				break // domain failure: no later start in this run can match
			}
			break
		}
	}
}

// try attempts pattern pi at start c, honouring the per-pattern
// resume position, and reports whether the machine matched (whether
// or not verification admitted the span).
func (s *Session) try(text string, pi int, c int32) bool {
	if c < s.resume[pi] || int(c) >= len(text) {
		return false
	}
	p := &s.e.pats[pi]
	end, capS, capE, ok := s.m.Run(p.prog, text, c)
	if !ok {
		return false
	}
	s.resume[pi] = end
	arena, off, n, admit := p.spec.Verify(text, c, end, capS, capE, s.arena)
	s.arena = arena
	if admit {
		s.recs = append(s.recs, rec{
			typ: int32(p.spec.Type), start: c, end: end, valOff: off, valLen: n,
		})
		s.Stats.Matches[p.spec.Type]++
	}
	return true
}

// finalize sorts recs by (type, value), removes duplicates, and
// materialises the public span slice.
func (s *Session) finalize() []Span {
	for i := 1; i < len(s.recs); i++ {
		for j := i; j > 0 && s.recLess(j, j-1); j-- {
			s.recs[j], s.recs[j-1] = s.recs[j-1], s.recs[j]
		}
	}
	s.out = s.out[:0]
	for i := range s.recs {
		if i > 0 && s.recEq(i, i-1) {
			continue
		}
		r := &s.recs[i]
		s.out = append(s.out, Span{
			Type:  int(r.typ),
			Start: int(r.start),
			End:   int(r.end),
			Value: s.arena[r.valOff : r.valOff+r.valLen],
		})
	}
	return s.out
}

func (s *Session) recLess(i, j int) bool {
	a, b := &s.recs[i], &s.recs[j]
	if a.typ != b.typ {
		return a.typ < b.typ
	}
	av := s.arena[a.valOff : a.valOff+a.valLen]
	bv := s.arena[b.valOff : b.valOff+b.valLen]
	n := len(av)
	if len(bv) < n {
		n = len(bv)
	}
	for k := 0; k < n; k++ {
		if av[k] != bv[k] {
			return av[k] < bv[k]
		}
	}
	return len(av) < len(bv)
}

func (s *Session) recEq(i, j int) bool {
	a, b := &s.recs[i], &s.recs[j]
	if a.typ != b.typ || a.valLen != b.valLen {
		return false
	}
	av := s.arena[a.valOff : a.valOff+a.valLen]
	bv := s.arena[b.valOff : b.valOff+b.valLen]
	for k := range av {
		if av[k] != bv[k] {
			return false
		}
	}
	return true
}

func sortI32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
