package engine

// A small backtracking VM executing compiled Programs with Go-regexp
// leftmost-first preference. Patterns here are tiny (tens of
// instructions, bounded repetition), inputs are candidate windows a
// few dozen bytes long, and catastrophic blowup is impossible for the
// pattern shapes the pii package compiles (no nested unbounded
// repetition of overlapping classes with shared suffixes reachable on
// the hot path; a step budget guards the rest), so a backtracker is
// both exact and fast. The Machine is reusable and allocation-free
// after warm-up.

// frame is one backtracking choice point: resume at pc with position
// pos, restoring capture state.
type frame struct {
	pc         int32
	pos        int32
	capS, capE int32
}

// Machine executes Programs over a string. The zero value is ready;
// all scratch is reused across runs.
type Machine struct {
	stack []frame
	steps int
	// Visited-split memo, engaged only past memoThreshold steps:
	// revisiting a split at the same position always re-derives the
	// same failure (captures never steer control flow and the first
	// success returns immediately), so pruning revisits makes the
	// search linear in pattern-size x text-size, like Go's regexp,
	// while costing the hot path nothing.
	memo      map[uint64]uint64
	memoEpoch uint64
	memoOn    bool
}

// memoThreshold is the step count past which the visited memo turns
// on. Real candidate attempts finish in tens of steps; only
// pathological ambiguity (adjacent unbounded repetitions over long
// homogeneous runs) crosses it.
const memoThreshold = 1 << 13

// maxSteps bounds a single run. With the memo engaged, work is
// bounded by (split instructions x text length) and stays far below
// this; the cap is a safety net, never a correctness mechanism
// (differential fuzz would catch it firing).
const maxSteps = 1 << 28

// engageMemo turns the visited memo on for the rest of this run.
// Entries from earlier epochs stay in the map harmlessly (epoch
// mismatch); the map is dropped if it ever grows very large.
func (m *Machine) engageMemo() {
	if m.memo == nil || len(m.memo) > 1<<21 {
		m.memo = make(map[uint64]uint64)
	}
	m.memoEpoch++
	m.memoOn = true
}

// isWordByte reports ASCII wordness for \b. Bytes >= 0x80 are
// non-word, matching regexp's ASCII-only \b semantics.
func isWordByte(b byte) bool {
	return b == '_' ||
		('0' <= b && b <= '9') ||
		('A' <= b && b <= 'Z') ||
		('a' <= b && b <= 'z')
}

// atBoundary reports whether a \b assertion holds between text[pos-1]
// and text[pos].
func atBoundary(text string, pos int32) bool {
	var before, after bool
	if pos > 0 {
		before = isWordByte(text[pos-1])
	}
	if int(pos) < len(text) {
		after = isWordByte(text[pos])
	}
	return before != after
}

// stepClass attempts to consume one character of text at pos against
// cls, returning the new position and whether it matched. One
// "character" is one ASCII byte, or one of the two multi-byte fold
// runes when the class carries the corresponding flag.
func stepClass(cls *class, text string, pos int32) (int32, bool) {
	if int(pos) >= len(text) {
		return pos, false
	}
	b := text[pos]
	if b < 0x80 {
		if cls.has(b) {
			return pos + 1, true
		}
		return pos, false
	}
	if cls.foldS && b == 0xC5 && int(pos)+1 < len(text) && text[pos+1] == 0xBF {
		return pos + 2, true // U+017F folds to 's'
	}
	if cls.foldK && b == 0xE2 && int(pos)+2 < len(text) &&
		text[pos+1] == 0x84 && text[pos+2] == 0xAA {
		return pos + 3, true // U+212A folds to 'k'
	}
	return pos, false
}

// Run attempts an anchored match of p at start. It returns the match
// end, the capture-group extent (capS/capE, -1 if the group did not
// participate), and whether a match was found. Leftmost-first: the
// first accepting path in preference order wins, exactly like
// regexp's FindString extent at a fixed start.
func (m *Machine) Run(p *Program, text string, start int32) (end, capS, capE int32, ok bool) {
	m.stack = m.stack[:0]
	m.steps = 0
	m.memoOn = false
	pc, pos := int32(0), start
	cs, ce := int32(-1), int32(-1)
	insts := p.insts
	for {
		m.steps++
		if m.steps > maxSteps {
			return 0, 0, 0, false
		}
		if m.steps == memoThreshold {
			m.engageMemo()
		}
		in := &insts[pc]
		switch in.op {
		case opClass:
			if np, hit := stepClass(&in.cls, text, pos); hit {
				pos = np
				pc++
				continue
			}
		case opSplit:
			if m.memoOn {
				key := uint64(pc)<<32 | uint64(uint32(pos))
				if m.memo[key] == m.memoEpoch {
					break // already explored from here: it failed
				}
				m.memo[key] = m.memoEpoch
			}
			m.stack = append(m.stack, frame{pc: in.y, pos: pos, capS: cs, capE: ce})
			pc = in.x
			continue
		case opJmp:
			pc = in.x
			continue
		case opBound:
			if atBoundary(text, pos) {
				pc++
				continue
			}
		case opSaveS:
			cs = pos
			pc++
			continue
		case opSaveE:
			ce = pos
			pc++
			continue
		case opMatch:
			return pos, cs, ce, true
		}
		// failed: backtrack
		n := len(m.stack)
		if n == 0 {
			return 0, 0, 0, false
		}
		f := m.stack[n-1]
		m.stack = m.stack[:n-1]
		pc, pos, cs, ce = f.pc, f.pos, f.capS, f.capE
	}
}
