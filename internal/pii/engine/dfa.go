package engine

// A lazy multi-pattern DFA over the digit-bearing pattern families
// (phone, SSN, the four card networks). It answers one question per
// digit region of a document: which of those patterns have at least
// one match inside the region. Candidate enumeration + the exact
// backtracker then run only for families the DFA admits, so a
// pathological digit wall that matches nothing costs one DFA pass in
// O(n) table lookups instead of per-candidate backtracking for every
// family.
//
// Construction is classic lazy determinization: a DFA state is the
// set of NFA positions parked on character instructions (encoded
// compactly and interned), transitions are computed on first use per
// (state, byte-class) and cached, and accept bits are recorded on the
// transition (a pattern accepts while resolving zero-width
// instructions between two bytes, so acceptance belongs to the edge,
// not the node). \b is resolved exactly by folding the previous
// byte's wordness into state identity and the next byte's wordness
// into the byte class. The cache is bounded: if determinization ever
// exceeds maxDFAStates the whole cache is flushed and the in-flight
// state re-interned, preserving the scan position (never restarting
// the region), so adversarial inputs degrade to re-determinization,
// never to wrong answers or unbounded memory.

// maxDFAStates bounds the per-session transition cache.
const maxDFAStates = 512

// DFA is the immutable compiled half, shared by all sessions.
type DFA struct {
	progs   []*Program
	classOf [256]uint8
	rep     []byte // representative input byte per class
	isWordC []bool // wordness per class
	nclass  int
}

// NewDFA compiles the byte-class alphabet for the given programs.
// Pattern i's matches are reported as bit i of the accept mask.
func NewDFA(progs []*Program) *DFA {
	if len(progs) > 16 {
		panic("engine: too many DFA patterns")
	}
	d := &DFA{progs: progs}
	// Fingerprint each byte by its membership across every distinct
	// class in every program, plus ASCII wordness; equal fingerprints
	// share a byte class.
	type fp struct {
		bits uint64
		word bool
	}
	fps := make([]fp, 256)
	seen := map[[2]uint64]bool{}
	nc := 0
	for _, p := range progs {
		for i := range p.insts {
			if p.insts[i].op != opClass {
				continue
			}
			cls := &p.insts[i].cls
			if seen[cls.bits] {
				continue
			}
			seen[cls.bits] = true
			if nc >= 64 {
				panic("engine: too many distinct DFA classes")
			}
			for b := 0; b < 128; b++ {
				if cls.has(byte(b)) {
					fps[b].bits |= 1 << uint(nc)
				}
			}
			nc++
		}
	}
	for b := 0; b < 256; b++ {
		fps[b].word = b < 128 && isWordByte(byte(b))
	}
	assigned := map[fp]uint8{}
	for b := 0; b < 256; b++ {
		id, ok := assigned[fps[b]]
		if !ok {
			id = uint8(len(d.rep))
			assigned[fps[b]] = id
			d.rep = append(d.rep, byte(b))
			d.isWordC = append(d.isWordC, fps[b].word)
		}
		d.classOf[b] = id
	}
	d.nclass = len(d.rep)
	return d
}

// pcKey packs (pattern, pc) into one uint16 for state-set encoding.
func pcKey(pid, pc int32) uint16 { return uint16(pid)<<11 | uint16(pc) }

// dfaRun is the mutable per-session half: the bounded state cache.
type dfaRun struct {
	d      *DFA
	ids    map[string]int32
	sets   [][]uint16 // parked NFA set per state (prevW excluded)
	prevW  []bool     // prevW flag per state
	next   [][]int32  // transition table, -1 = not yet computed
	acc    [][]uint16 // accept mask per transition
	gen int // bumped on every flush
	// scratch for closure
	work    []uint16
	parked  []uint16
	visited []int32
	epoch   int32
	keyBuf  []byte
}

func newDFARun(d *DFA) *dfaRun {
	r := &dfaRun{d: d}
	r.reset()
	return r
}

// reset flushes the entire state cache.
func (r *dfaRun) reset() {
	r.gen++
	r.ids = make(map[string]int32, 64)
	r.sets = r.sets[:0]
	r.prevW = r.prevW[:0]
	r.next = r.next[:0]
	r.acc = r.acc[:0]
}

// intern returns the state id for (set, prevW), creating it if new.
// set must be sorted and deduplicated.
func (r *dfaRun) intern(set []uint16, prevW bool) int32 {
	r.keyBuf = r.keyBuf[:0]
	if prevW {
		r.keyBuf = append(r.keyBuf, 1)
	} else {
		r.keyBuf = append(r.keyBuf, 0)
	}
	for _, k := range set {
		r.keyBuf = append(r.keyBuf, byte(k), byte(k>>8))
	}
	if id, ok := r.ids[string(r.keyBuf)]; ok {
		return id
	}
	if len(r.sets) >= maxDFAStates {
		// Bounded cache: flush everything and re-intern just this
		// state so the caller's scan position survives.
		r.reset()
	}
	id := int32(len(r.sets))
	r.ids[string(r.keyBuf)] = id
	r.sets = append(r.sets, append([]uint16(nil), set...))
	r.prevW = append(r.prevW, prevW)
	nt := make([]int32, r.d.nclass)
	for i := range nt {
		nt[i] = -1
	}
	r.next = append(r.next, nt)
	r.acc = append(r.acc, make([]uint16, r.d.nclass))
	return id
}

// seen reports (and records) whether (pid,pc) was visited this epoch.
func (r *dfaRun) seen(k uint16) bool {
	for int(k) >= len(r.visited) {
		r.visited = append(r.visited, 0)
	}
	if r.visited[k] == r.epoch {
		return true
	}
	r.visited[k] = r.epoch
	return false
}

// step computes (or fetches) the transition from state id on byte
// class cl, returning the next state id and the accept mask for
// matches completing on this edge.
func (r *dfaRun) step(id int32, cl uint8) (int32, uint16) {
	if n := r.next[id][cl]; n >= 0 {
		return n, r.acc[id][cl]
	}
	d := r.d
	before := r.prevW[id]
	b := d.rep[cl]
	after := d.isWordC[cl]

	r.epoch++
	r.work = r.work[:0]
	r.parked = r.parked[:0]
	// Seed: the parked set, plus an unanchored start injection for
	// every pattern at the current position.
	src := r.sets[id]
	for _, k := range src {
		r.work = append(r.work, k)
	}
	for pid := range d.progs {
		r.work = append(r.work, pcKey(int32(pid), 0))
	}
	var accept uint16
	// Closure: resolve zero-width instructions with (before, after),
	// consume b at character instructions, park survivors at their
	// next pc for the following byte.
	for len(r.work) > 0 {
		k := r.work[len(r.work)-1]
		r.work = r.work[:len(r.work)-1]
		if r.seen(k) {
			continue
		}
		pid, pc := int32(k>>11), int32(k&0x7ff)
		in := &d.progs[pid].insts[pc]
		switch in.op {
		case opClass:
			if in.cls.has(b) {
				r.parked = append(r.parked, pcKey(pid, pc+1))
			}
		case opSplit:
			r.work = append(r.work, pcKey(pid, in.y), pcKey(pid, in.x))
		case opJmp:
			r.work = append(r.work, pcKey(pid, in.x))
		case opBound:
			if before != after {
				r.work = append(r.work, pcKey(pid, pc+1))
			}
		case opSaveS, opSaveE:
			r.work = append(r.work, pcKey(pid, pc+1))
		case opMatch:
			accept |= 1 << uint(pid)
		}
	}
	sortU16(r.parked)
	r.parked = dedupU16(r.parked)
	// intern may flush the whole cache (bounded-size eviction), which
	// invalidates id's row; only cache the edge if no flush happened.
	gen := r.gen
	nid := r.intern(r.parked, after)
	if r.gen == gen {
		r.next[id][cl] = nid
		r.acc[id][cl] = accept
	}
	return nid, accept
}

// ScanRegion runs the DFA over text[lo:hi) and returns the mask of
// patterns with at least one match wholly inside the region
// (boundary context taken from the surrounding bytes).
func (r *dfaRun) ScanRegion(text string, lo, hi int32) uint16 {
	prevW := false
	if lo > 0 {
		prevW = isWordByte(text[lo-1])
	}
	r.parked = r.parked[:0]
	id := r.intern(r.parked, prevW)
	var mask uint16
	for i := lo; i < hi; i++ {
		nid, acc := r.step(id, r.d.classOf[text[i]])
		mask |= acc
		id = nid
	}
	// One finalization edge resolves trailing \b for matches ending
	// exactly at hi. Byte 0 is a safe end-of-text sentinel: non-word
	// and in no pattern class.
	var sentinel byte
	if int(hi) < len(text) {
		sentinel = text[hi]
	}
	_, acc := r.step(id, r.d.classOf[sentinel])
	return mask | acc
}

func sortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func dedupU16(s []uint16) []uint16 {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
