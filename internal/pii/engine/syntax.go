// Package engine implements a one-pass multi-pattern scanner for the
// PII extractors: a Teddy-style bit-parallel multi-literal prefilter
// (bucketed fingerprint lanes over the gate-literal set) feeding a
// lazy-DFA multi-pattern automaton plus exact anchored matchers, so a
// document is classified and its PII spans extracted in a single
// streaming scan instead of twelve independent regex passes.
//
// The package is generic: the pii package supplies a Spec describing
// the pattern set (as ASTs built with the combinators in this file),
// the literal gates, the per-family candidate strategy and the
// verify/normalise hooks. Matching semantics are exactly Go's
// regexp semantics — leftmost-first preference, ASCII word
// boundaries, simple case folding under (?i) including the two
// non-ASCII runes (U+017F LATIN SMALL LETTER LONG S and U+212A KELVIN
// SIGN) whose fold orbits reach ASCII letters — which is what lets
// the differential fuzz targets hold this engine byte-identical to
// the legacy regexp cascade.
package engine

// class is an ASCII character class plus acceptance flags for the two
// non-ASCII runes Go's simple case folding maps onto ASCII letters.
type class struct {
	bits  [2]uint64
	foldS bool // also accepts U+017F (folds with 's')
	foldK bool // also accepts U+212A (folds with 'k')
}

func (c *class) add(b byte) { c.bits[b>>6] |= 1 << (b & 63) }

func (c *class) has(b byte) bool {
	return b < 128 && c.bits[b>>6]&(1<<(b&63)) != 0
}

// nodeKind discriminates AST nodes.
type nodeKind uint8

const (
	nkClass nodeKind = iota
	nkSeq
	nkAlt
	nkRep
	nkBound
	nkCap
)

// Node is one AST node of a pattern. Build trees with the combinators
// below; Compile turns a tree into an executable Program.
type Node struct {
	kind     nodeKind
	cls      class
	subs     []*Node
	sub      *Node
	min, max int // rep bounds; max < 0 means unbounded
	lazy     bool
}

// parseClassSpec parses a compact class spec like "A-Za-z0-9.'-" into
// an ASCII bitset. A '-' is a range only when sandwiched between two
// chars with at least one char following the range; otherwise it is a
// literal. Specs are ASCII-only.
func parseClassSpec(spec string) class {
	var c class
	for i := 0; i < len(spec); {
		if spec[i] >= 0x80 {
			panic("engine: non-ASCII class spec " + spec)
		}
		if i+2 < len(spec) && spec[i+1] == '-' {
			lo, hi := spec[i], spec[i+2]
			if lo > hi {
				panic("engine: inverted range in class spec " + spec)
			}
			for b := lo; ; b++ {
				c.add(b)
				if b == hi {
					break
				}
			}
			i += 3
			continue
		}
		c.add(spec[i])
		i++
	}
	return c
}

// foldClass closes a class under ASCII simple case folding and sets
// the non-ASCII fold flags. This is what (?i) does to a class: any
// character whose fold orbit intersects the class matches.
func foldClass(c class) class {
	for b := byte('a'); b <= 'z'; b++ {
		up := b - 'a' + 'A'
		if c.has(b) || c.has(up) {
			c.add(b)
			c.add(up)
		}
	}
	c.foldS = c.has('s')
	c.foldK = c.has('k')
	return c
}

// Cls returns a case-sensitive character class node from a spec like
// "A-Za-z0-9._%+-".
func Cls(spec string) *Node {
	return &Node{kind: nkClass, cls: parseClassSpec(spec)}
}

// ClsFold returns a class node closed under (?i) simple case folding.
func ClsFold(spec string) *Node {
	return &Node{kind: nkClass, cls: foldClass(parseClassSpec(spec))}
}

// Lit returns a case-sensitive literal node.
func Lit(s string) *Node {
	subs := make([]*Node, 0, len(s))
	for i := 0; i < len(s); i++ {
		var c class
		c.add(s[i])
		subs = append(subs, &Node{kind: nkClass, cls: c})
	}
	return seqOf(subs)
}

// LitFold returns a literal node matched case-insensitively
// (per-character fold closure, as (?i) compiles literals).
func LitFold(s string) *Node {
	subs := make([]*Node, 0, len(s))
	for i := 0; i < len(s); i++ {
		var c class
		c.add(s[i])
		subs = append(subs, &Node{kind: nkClass, cls: foldClass(c)})
	}
	return seqOf(subs)
}

func seqOf(subs []*Node) *Node {
	if len(subs) == 1 {
		return subs[0]
	}
	return &Node{kind: nkSeq, subs: subs}
}

// Seq concatenates nodes.
func Seq(ns ...*Node) *Node { return seqOf(ns) }

// Alt is ordered alternation: earlier branches are preferred, exactly
// like regexp alternation.
func Alt(ns ...*Node) *Node {
	if len(ns) == 1 {
		return ns[0]
	}
	return &Node{kind: nkAlt, subs: ns}
}

// Opt is greedy X? — prefers matching X.
func Opt(n *Node) *Node { return &Node{kind: nkRep, sub: n, min: 0, max: 1} }

// Star is greedy X* and Plus greedy X+.
func Star(n *Node) *Node { return &Node{kind: nkRep, sub: n, min: 0, max: -1} }

// Plus is greedy X+.
func Plus(n *Node) *Node { return &Node{kind: nkRep, sub: n, min: 1, max: -1} }

// Rep is greedy X{min,max}; max < 0 means no upper bound.
func Rep(n *Node, min, max int) *Node {
	return &Node{kind: nkRep, sub: n, min: min, max: max}
}

// RepLazy is lazy X{min,max}? — prefers the fewest repetitions.
func RepLazy(n *Node, min, max int) *Node {
	return &Node{kind: nkRep, sub: n, min: min, max: max, lazy: true}
}

// Bnd is \b: an ASCII word boundary (zero-width).
func Bnd() *Node { return &Node{kind: nkBound} }

// Cap marks the pattern's single capturing group (group 1).
func Cap(n *Node) *Node { return &Node{kind: nkCap, sub: n} }
