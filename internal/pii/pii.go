// Package pii implements the paper's 12 regular-expression extractors for
// personally identifiable information in doxes and calls to harassment
// (§5.6): US street addresses, per-network credit card numbers, email
// addresses, Facebook profiles, Instagram profiles, US phone numbers, US
// Social Security Numbers, Twitter handles, and YouTube channels.
//
// Following the paper, the extractors are optimised for precision: only US
// formats are detected for phones, addresses and SSNs; credit cards use a
// separate pattern per card network (validated with the Luhn checksum);
// and social-media extractors combine profile-URL patterns (with reserved
// path stoplists) and "site: username"-style mentions constrained by each
// platform's username rules.
package pii

import (
	"regexp"
	"sort"
	"strings"
)

// Type identifies a category of personally identifiable information.
type Type string

// The PII types extracted by the pipeline, matching Table 6's rows.
const (
	Address    Type = "address"
	CreditCard Type = "card"
	Email      Type = "email"
	Facebook   Type = "facebook"
	Instagram  Type = "instagram"
	Phone      Type = "phone"
	SSN        Type = "ssn"
	Twitter    Type = "twitter"
	YouTube    Type = "youtube"
)

// AllTypes lists every extractable PII type in Table 6 order.
func AllTypes() []Type {
	return []Type{Address, CreditCard, Email, Facebook, Instagram, Phone, SSN, Twitter, YouTube}
}

// Match is one extracted PII instance.
type Match struct {
	Type  Type
	Value string // normalised matched text
}

var (
	// US street address: number + street name + suffix, optionally
	// followed by a city/state/ZIP tail. Adapted (as the paper adapted
	// CommonRegex) to favour precision.
	reAddress = regexp.MustCompile(`(?i)\b\d{1,6}\s+(?:[A-Za-z0-9.'-]+\s){0,3}?(?:street|st|avenue|ave|road|rd|boulevard|blvd|drive|dr|lane|ln|court|ct|circle|cir|way|place|pl|terrace|ter)\.?(?:\s*,?\s*(?:apt|apartment|unit|suite|ste|#)\s*\.?\s*[A-Za-z0-9-]+)?(?:\s*,\s*[A-Za-z .]+,\s*[A-Z]{2}\s*,?\s*\d{5}(?:-\d{4})?)?\b`)

	// US phone numbers: optional +1, separators, area code required.
	// The area-code parentheses are a single alternation so they only
	// match as a balanced pair: the earlier independent `\(?`/`\)?`
	// optionals accepted unbalanced forms like "(555 123-4567".
	rePhone = regexp.MustCompile(`(?:\+?1[-.\s]?)?(?:\(\b[2-9]\d{2}\)|\b[2-9]\d{2})[-.\s]\d{3}[-.\s]\d{4}\b`)

	// US SSN: strict AAA-GG-SSSS with the invalid prefixes excluded.
	reSSN = regexp.MustCompile(`\b(?:\d{3}-\d{2}-\d{4})\b`)

	reEmail = regexp.MustCompile(`\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b`)

	// Per-network credit card patterns (the paper used "a different
	// regular expression for each type of card company" for precision).
	reCardVisa       = regexp.MustCompile(`\b4\d{3}[ -]?\d{4}[ -]?\d{4}[ -]?\d{4}\b`)
	reCardMastercard = regexp.MustCompile(`\b5[1-5]\d{2}[ -]?\d{4}[ -]?\d{4}[ -]?\d{4}\b`)
	reCardAmex       = regexp.MustCompile(`\b3[47]\d{2}[ -]?\d{6}[ -]?\d{5}\b`)
	reCardDiscover   = regexp.MustCompile(`\b6(?:011|5\d{2})[ -]?\d{4}[ -]?\d{4}[ -]?\d{4}\b`)

	// Profile URL patterns.
	reFacebookURL  = regexp.MustCompile(`(?i)(?:https?://)?(?:www\.|m\.)?facebook\.com/([A-Za-z0-9.]{5,50})\b`)
	reInstagramURL = regexp.MustCompile(`(?i)(?:https?://)?(?:www\.)?instagram\.com/([A-Za-z0-9._]{1,30})\b`)
	reTwitterURL   = regexp.MustCompile(`(?i)(?:https?://)?(?:www\.|mobile\.)?twitter\.com/([A-Za-z0-9_]{1,15})\b`)
	reYouTubeURL   = regexp.MustCompile(`(?i)(?:https?://)?(?:www\.)?youtube\.com/(?:(?:c|channel|user)/)?(@?[A-Za-z0-9_-]{3,60})\b`)

	// "site: username" mention patterns (case-insensitive site name or
	// abbreviation, optional colon/space, username per platform rules).
	reFacebookMention  = regexp.MustCompile(`(?i)\b(?:facebook|fb)\s*:\s*([A-Za-z0-9.]{5,50})\b`)
	reInstagramMention = regexp.MustCompile(`(?i)\b(?:instagram|ig|insta)\s*:\s*(@?[A-Za-z0-9._]{1,30})\b`)
	reTwitterMention   = regexp.MustCompile(`(?i)\b(?:twitter|twtr)\s*:\s*(@?[A-Za-z0-9_]{1,15})\b`)
	reYouTubeMention   = regexp.MustCompile(`(?i)\b(?:youtube|yt)\s*:\s*(@?[A-Za-z0-9_-]{3,60})\b`)
)

// reservedPaths holds per-platform path components that follow the same
// URL shape as user profiles but are site functionality, not accounts —
// the paper's "stopwords ... reserved for site functionalities".
var reservedPaths = map[Type]map[string]bool{
	Facebook: toSet("marketplace", "groups", "events", "pages", "watch",
		"gaming", "stories", "photos", "settings", "login", "sharer",
		"profile.php", "help", "policies", "privacy", "business"),
	Instagram: toSet("explore", "accounts", "about", "developer", "reels",
		"stories", "direct", "legal", "p"),
	Twitter: toSet("home", "explore", "search", "notifications", "messages",
		"settings", "i", "intent", "share", "hashtag", "login", "signup",
		"privacy", "tos", "following", "followers"),
	YouTube: toSet("watch", "results", "playlist", "feed", "shorts",
		"premium", "gaming", "music", "about", "ads", "creators", "t",
		"embed", "live"),
}

func toSet(items ...string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, it := range items {
		m[it] = true
	}
	return m
}

// Extractor extracts PII matches from text. Extractors are stateless
// unless metrics are attached (see SetMetrics in obs.go); a zero-value
// Extractor is ready to use.
type Extractor struct {
	m *extractorMetrics
}

// NewExtractor returns a ready-to-use Extractor. The zero value is also
// usable; the constructor exists for API symmetry and future options.
func NewExtractor() *Extractor { return &Extractor{} }

// Extract returns all PII matches in text, de-duplicated per (type,
// normalised value), in deterministic order.
//
// Extraction runs on the one-pass engine (internal/pii/engine): a
// Teddy-style multi-literal prefilter classifies the document and
// yields candidate windows in a single scan, a lazy DFA gates the
// digit families per digit region, and an exact backtracker extracts
// spans with the legacy verify steps (Luhn, NANP, SSA ranges, handle
// stoplists). Output is byte-identical to running every legacy regex
// unconditionally (extractDirect, fuzz-verified). Documents without
// PII cost a single linear pass and no allocations.
func (e *Extractor) Extract(text string) []Match {
	s := sessionPool.Get().(*Session)
	spans := s.es.Extract(text)
	var out []Match
	if len(spans) > 0 {
		out = make([]Match, len(spans))
		for i := range spans {
			out[i] = Match{Type: typeOfIndex[spans[i].Type], Value: string(spans[i].Value)}
		}
	}
	e.record(&s.es.Stats)
	sessionPool.Put(s)
	return out
}

// extractDirect runs every extraction plan unconditionally — the
// prefilter-free reference path the differential fuzz target compares
// Extract against.
func extractDirect(text string) []Match {
	var out []Match
	for _, p := range plans {
		out = append(out, p.extract(text)...)
	}
	return dedupe(out)
}

// Types returns the distinct PII types present in text, in Table 6 order.
func (e *Extractor) Types(text string) []Type {
	return e.AppendTypes(nil, text)
}

// AppendTypes appends the distinct PII types present in text to dst,
// in Table 6 order. Allocation-free when dst has capacity (at most
// len(AllTypes()) entries are ever appended).
func (e *Extractor) AppendTypes(dst []Type, text string) []Type {
	s := sessionPool.Get().(*Session)
	dst = s.AppendTypes(dst, text)
	e.record(&s.es.Stats)
	sessionPool.Put(s)
	return dst
}

func extractSimple(t Type, re *regexp.Regexp, text string, norm func(string) string) []Match {
	var out []Match
	for _, m := range re.FindAllString(text, -1) {
		out = append(out, Match{Type: t, Value: norm(m)})
	}
	return out
}

func extractPhones(text string) []Match {
	var out []Match
	for _, m := range rePhone.FindAllString(text, -1) {
		digits := digitsOnly(m)
		if len(digits) == 11 && digits[0] == '1' {
			digits = digits[1:]
		}
		if len(digits) != 10 {
			continue
		}
		// Exchange code cannot start with 0 or 1 in NANP.
		if digits[3] == '0' || digits[3] == '1' {
			continue
		}
		out = append(out, Match{Type: Phone, Value: digits})
	}
	return out
}

func extractSSNs(text string) []Match {
	var out []Match
	for _, m := range reSSN.FindAllString(text, -1) {
		area := m[:3]
		group := m[4:6]
		serial := m[7:]
		// SSA-invalid ranges: area 000, 666, 900-999; group 00; serial 0000.
		if area == "000" || area == "666" || area[0] == '9' {
			continue
		}
		if group == "00" || serial == "0000" {
			continue
		}
		out = append(out, Match{Type: SSN, Value: m})
	}
	return out
}

// cardPatterns is built once: the per-network patterns tried in order.
var cardPatterns = []*regexp.Regexp{reCardVisa, reCardMastercard, reCardAmex, reCardDiscover}

func extractCards(text string) []Match {
	var out []Match
	for _, re := range cardPatterns {
		for _, m := range re.FindAllString(text, -1) {
			digits := digitsOnly(m)
			if !luhnValid(digits) {
				continue
			}
			out = append(out, Match{Type: CreditCard, Value: digits})
		}
	}
	return out
}

func extractHandles(t Type, urlRe, mentionRe *regexp.Regexp, text string) []Match {
	out := appendHandles(nil, t, urlRe, text)
	return appendHandles(out, t, mentionRe, text)
}

func appendHandles(out []Match, t Type, re *regexp.Regexp, text string) []Match {
	stop := reservedPaths[t]
	for _, sub := range re.FindAllStringSubmatch(text, -1) {
		handle := strings.ToLower(strings.TrimPrefix(sub[1], "@"))
		if handle == "" || stop[handle] {
			continue
		}
		out = append(out, Match{Type: t, Value: handle})
	}
	return out
}

func digitsOnly(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// luhnValid reports whether the digit string passes the Luhn checksum.
func luhnValid(digits string) bool {
	if len(digits) < 12 {
		return false
	}
	sum := 0
	double := false
	for i := len(digits) - 1; i >= 0; i-- {
		d := int(digits[i] - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}

// LuhnChecksumDigit returns the check digit that makes payload+digit pass
// the Luhn test. Used by the synthetic data generator to mint valid (but
// fictional) card numbers.
func LuhnChecksumDigit(payload string) byte {
	sum := 0
	double := true
	for i := len(payload) - 1; i >= 0; i-- {
		d := int(payload[i] - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return byte('0' + (10-sum%10)%10)
}

func normaliseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

func dedupe(ms []Match) []Match {
	seen := map[Match]bool{}
	var out []Match
	for _, m := range ms {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Value < out[j].Value
	})
	return out
}
