package pii

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func types(t *testing.T, text string) []Type {
	t.Helper()
	return NewExtractor().Types(text)
}

func values(t *testing.T, text string, want Type) []string {
	t.Helper()
	var out []string
	for _, m := range NewExtractor().Extract(text) {
		if m.Type == want {
			out = append(out, m.Value)
		}
	}
	return out
}

func TestAddresses(t *testing.T) {
	positives := []string{
		"he lives at 123 Main Street, Springfield, IL, 62704",
		"apartment at 4567 Oak Ave apt 3B",
		"1 Elm Rd",
		"dropping by 99 Sunset Boulevard tonight",
		"address: 742 Evergreen Terrace, Springfield, OR, 97475",
	}
	for _, p := range positives {
		if got := values(t, p, Address); len(got) == 0 {
			t.Errorf("no address found in %q", p)
		}
	}
	negatives := []string{
		"I walked 5 miles today",
		"chapter 12 section 3",
		"we should all go",
	}
	for _, n := range negatives {
		if got := values(t, n, Address); len(got) != 0 {
			t.Errorf("false address %v in %q", got, n)
		}
	}
}

func TestPhones(t *testing.T) {
	cases := map[string]string{
		"call him at 212-555-0142":    "2125550142",
		"phone: (415) 555-2671":       "4155552671",
		"+1 646.555.3888 cell":        "6465553888",
		"dial 1-212-555-0100 anytime": "2125550100",
	}
	for text, want := range cases {
		got := values(t, text, Phone)
		if len(got) != 1 || got[0] != want {
			t.Errorf("phones in %q = %v, want [%s]", text, got, want)
		}
	}
	negatives := []string{
		"the year 2021-2022 was",   // not a phone shape
		"item 123-456-7890x is od", // exchange starts with 4: valid shape though...
		"only 555-0142 here",       // no area code
		"112-555-0142",             // area code starts with 1
	}
	for _, n := range negatives[2:] {
		if got := values(t, n, Phone); len(got) != 0 {
			t.Errorf("false phone %v in %q", got, n)
		}
	}
	// Exchange code starting with 0/1 is rejected.
	if got := values(t, "212-155-0142", Phone); len(got) != 0 {
		t.Errorf("NANP-invalid exchange accepted: %v", got)
	}
}

// TestPhoneParenBalance is the regression test for the unbalanced
// area-code parentheses: the earlier pattern used independent `\(?`
// and `\)?` optionals, so "(555 123-4567" matched with a dangling
// open paren. The parens must only match as a balanced pair.
func TestPhoneParenBalance(t *testing.T) {
	balanced := map[string]string{
		"(212) 555-0142":        "2125550142",
		"+1 (415) 555-2671 now": "4155552671",
	}
	for text, want := range balanced {
		got := values(t, text, Phone)
		if len(got) != 1 || got[0] != want {
			t.Errorf("balanced parens %q = %v, want [%s]", text, got, want)
		}
	}
	unbalanced := []string{
		"555) 234-5678",  // stray close paren: the old `\)?` consumed it
		"(212( 555-0142", // open paren never closed
	}
	for _, text := range unbalanced {
		if got := values(t, text, Phone); len(got) != 0 {
			t.Errorf("unbalanced parens %q matched: %v", text, got)
		}
	}
	// An unclosed open paren does not invalidate the bare number after
	// it: the digits still match via the parenthesis-free alternative.
	if got := values(t, "(555 234-5678", Phone); len(got) != 1 || got[0] != "5552345678" {
		t.Errorf("bare number after stray open paren = %v, want [5552345678]", got)
	}
}

func TestSSNs(t *testing.T) {
	if got := values(t, "ssn: 219-09-9999", SSN); !reflect.DeepEqual(got, []string{"219-09-9999"}) {
		t.Errorf("ssn = %v", got)
	}
	invalid := []string{"000-12-3456", "666-12-3456", "912-34-5678", "219-00-9999", "219-09-0000"}
	for _, s := range invalid {
		if got := values(t, "ssn "+s+" end", SSN); len(got) != 0 {
			t.Errorf("invalid SSN %s accepted", s)
		}
	}
	// Phone-shaped numbers must not be SSNs.
	if got := values(t, "212-555-0142", SSN); len(got) != 0 {
		t.Errorf("phone matched as SSN: %v", got)
	}
}

func TestEmails(t *testing.T) {
	got := values(t, "contact Target.Name+spam@example-mail.org or x@y.co now", Email)
	want := []string{"target.name+spam@example-mail.org", "x@y.co"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("emails = %v, want %v", got, want)
	}
	if got := values(t, "no at sign here example.org", Email); len(got) != 0 {
		t.Errorf("false email %v", got)
	}
}

func TestCreditCards(t *testing.T) {
	// Luhn-valid test numbers (standard public test card numbers).
	valid := map[string]string{
		"visa 4111 1111 1111 1111 on file": "4111111111111111",
		"mc 5500-0000-0000-0004 leaked":    "5500000000000004",
		"amex 340000000000009 was posted":  "340000000000009",
		"discover 6011000000000004 too":    "6011000000000004",
	}
	for text, want := range valid {
		got := values(t, text, CreditCard)
		if len(got) != 1 || got[0] != want {
			t.Errorf("cards in %q = %v, want [%s]", text, got, want)
		}
	}
	// Correct shape but bad Luhn checksum must be rejected.
	if got := values(t, "4111 1111 1111 1112", CreditCard); len(got) != 0 {
		t.Errorf("Luhn-invalid card accepted: %v", got)
	}
	// 16 digits not matching any network prefix.
	if got := values(t, "9999 9999 9999 9995", CreditCard); len(got) != 0 {
		t.Errorf("unknown network accepted: %v", got)
	}
}

func TestLuhnChecksumDigitProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		// Build a random 15-digit payload; append computed check digit.
		payload := make([]byte, 15)
		s := seed
		for i := range payload {
			s = s*6364136223846793005 + 1442695040888963407
			payload[i] = byte('0' + (s>>33)%10)
		}
		full := string(payload) + string(LuhnChecksumDigit(string(payload)))
		return luhnValid(full)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacebook(t *testing.T) {
	cases := map[string][]string{
		"profile https://www.facebook.com/john.smith.9981": {"john.smith.9981"},
		"facebook: johnsmith88":                            {"johnsmith88"},
		"fb: target.person":                                {"target.person"},
		"https://facebook.com/marketplace is busy":         nil, // reserved
		"https://m.facebook.com/real.user.name":            {"real.user.name"},
	}
	for text, want := range cases {
		got := values(t, text, Facebook)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("facebook in %q = %v, want %v", text, got, want)
		}
	}
}

func TestInstagram(t *testing.T) {
	cases := map[string][]string{
		"https://instagram.com/target_user":    {"target_user"},
		"ig: @some.handle":                     {"some.handle"},
		"insta: another_one":                   {"another_one"},
		"https://www.instagram.com/explore ok": nil,
	}
	for text, want := range cases {
		got := values(t, text, Instagram)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("instagram in %q = %v, want %v", text, got, want)
		}
	}
}

func TestTwitter(t *testing.T) {
	cases := map[string][]string{
		"https://twitter.com/TargetUser":    {"targetuser"},
		"twitter: @handle_01":               {"handle_01"},
		"https://twitter.com/hashtag/x yes": nil,
		"https://mobile.twitter.com/realp":  {"realp"},
	}
	for text, want := range cases {
		got := values(t, text, Twitter)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("twitter in %q = %v, want %v", text, got, want)
		}
	}
}

func TestYouTube(t *testing.T) {
	cases := map[string][]string{
		"https://youtube.com/c/TargetChannel":              {"targetchannel"},
		"https://www.youtube.com/channel/UC12345abcdef":    {"uc12345abcdef"},
		"https://youtube.com/user/oldstyle99":              {"oldstyle99"},
		"yt: @newhandle":                                   {"newhandle"},
		"https://www.youtube.com/watch?v=dQw4w9WgXcQ play": nil, // reserved
	}
	for text, want := range cases {
		got := values(t, text, YouTube)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("youtube in %q = %v, want %v", text, got, want)
		}
	}
}

func TestExtractDedupes(t *testing.T) {
	text := "fb: repeat.user and again fb: repeat.user"
	got := values(t, text, Facebook)
	if !reflect.DeepEqual(got, []string{"repeat.user"}) {
		t.Errorf("dedupe failed: %v", got)
	}
}

func TestExtractDeterministicOrder(t *testing.T) {
	text := "twitter: bbb twitter: aaa email z@x.co email a@b.co"
	e := NewExtractor()
	m1 := e.Extract(text)
	m2 := e.Extract(text)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("extraction order unstable")
	}
	for i := 1; i < len(m1); i++ {
		if m1[i-1].Type > m1[i].Type {
			t.Fatal("matches not sorted by type")
		}
	}
}

func TestTypesTable6Order(t *testing.T) {
	text := "yt: somechannel / 219-09-9999 / 123 Main St / a@b.co"
	got := types(t, text)
	want := []Type{Address, Email, SSN, YouTube}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Types = %v, want %v", got, want)
	}
}

func TestFullDoxDocument(t *testing.T) {
	dox := strings.Join([]string{
		"DOX: John Target",
		"Address: 123 Main Street, Springfield, IL, 62704",
		"Phone: (212) 555-0142",
		"Email: john.target@example.org",
		"SSN: 219-09-9999",
		"fb: john.target.77",
		"twitter: @jtarget",
		"https://instagram.com/j_target",
		"https://youtube.com/c/JTargetVlogs",
		"Card: 4111 1111 1111 1111",
	}, "\n")
	got := types(t, dox)
	if len(got) != 9 {
		t.Errorf("full dox types = %v (%d), want all 9", got, len(got))
	}
}

func TestBenignTextNoPII(t *testing.T) {
	benign := []string{
		"just played the new game, anyone up for a raid in-game tonight?",
		"the weather is 72 degrees and sunny",
		"meeting moved to room 1204 at 3pm",
		"I scored 100-90 in the match",
	}
	for _, b := range benign {
		if got := NewExtractor().Extract(b); len(got) != 0 {
			t.Errorf("benign text %q produced %v", b, got)
		}
	}
}

func TestAccuracyHarness(t *testing.T) {
	// The paper evaluated its regexes on 98 true-positive doxes and found
	// >= 95% accuracy. Mirror that check shape: every planted field must
	// be found, nothing else.
	type planted struct {
		text string
		want map[Type]bool
	}
	docs := []planted{
		{"target: 456 Oak Avenue / 415-555-2671", map[Type]bool{Address: true, Phone: true}},
		{"email a@b.org ssn 219-09-9999", map[Type]bool{Email: true, SSN: true}},
		{"fb: some.person twitter: @someone", map[Type]bool{Facebook: true, Twitter: true}},
	}
	correct := 0
	for _, d := range docs {
		got := map[Type]bool{}
		for _, ty := range types(t, d.text) {
			got[ty] = true
		}
		if reflect.DeepEqual(got, d.want) {
			correct++
		} else {
			t.Logf("doc %q: got %v want %v", d.text, got, d.want)
		}
	}
	if correct != len(docs) {
		t.Errorf("accuracy %d/%d", correct, len(docs))
	}
}

func BenchmarkExtract(b *testing.B) {
	text := "John lives at 123 Main Street, call 212-555-0142, fb: john.t email j@x.org card 4111 1111 1111 1111"
	e := NewExtractor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(text)
	}
}
