package pii

// spec.go compiles the legacy regex cascade into the one-pass engine
// (internal/pii/engine). Every AST below mirrors its regexp in pii.go
// exactly — same classes, same alternation order, same greedy/lazy
// preference — so the engine's leftmost-first backtracker reproduces
// FindAll extents byte-for-byte; FuzzExtractPrefilterEquivalence
// holds the two implementations equal. The verify funcs are the
// legacy post-filters (NANP, SSA ranges, Luhn, handle stoplists)
// rewritten to append normalised values into the session arena
// instead of allocating strings.

import (
	"harassrepro/internal/pii/engine"
)

// Tracked-literal IDs (engine LitEvents), in registration order.
const (
	trAt = iota
	trFacebookCom
	trInstagramCom
	trTwitterCom
	trYouTubeCom
	trFacebook
	trFB
	trInstagram
	trIG
	trInsta
	trTwitter
	trTwtr
	trYouTube
	trYT
)

// trackOf maps prefilter literal text to its tracked-literal ID.
var trackOf = map[string]int{
	"@":             trAt,
	"facebook.com":  trFacebookCom,
	"instagram.com": trInstagramCom,
	"twitter.com":   trTwitterCom,
	"youtube.com":   trYouTubeCom,
	"facebook":      trFacebook,
	"fb":            trFB,
	"instagram":     trInstagram,
	"ig":            trIG,
	"insta":         trInsta,
	"twitter":       trTwitter,
	"twtr":          trTwtr,
	"youtube":       trYouTube,
	"yt":            trYT,
}

// Type indices in plan order (see plans in prefilter.go).
const (
	tiAddress = iota
	tiCards
	tiEmail
	tiFacebook
	tiInstagram
	tiPhone
	tiSSN
	tiTwitter
	tiYouTube
)

// typeOfIndex maps engine type indices back to PII types.
var typeOfIndex = [...]Type{
	Address, CreditCard, Email, Facebook, Instagram, Phone, SSN, Twitter, YouTube,
}

// buildEngine compiles the full engine spec. Called at the end of
// the package init in prefilter.go, after the plans (and with them
// the gate-literal bit assignments) exist.
func buildEngine() *engine.Engine {
	lits := make([]engine.TeddyLiteral, len(acLiterals))
	for i, l := range acLiterals {
		tid := -1
		if t, ok := trackOf[l]; ok {
			tid = t
		}
		lits[i] = engine.TeddyLiteral{Text: l, GateBit: i, TrackID: tid}
	}
	types := make([]engine.TypeSpec, len(plans))
	for i, p := range plans {
		types[i] = engine.TypeSpec{Name: p.name, Groups: p.groups, MinDigits: p.minDigits}
	}
	return engine.New(engine.Spec{
		Literals: lits,
		Types:    types,
		Patterns: buildPatterns(),
	})
}

func buildPatterns() []engine.PatternSpec {
	var (
		d   = engine.Cls("0-9")
		ws  = engine.Cls(" \t\n\f\r") // Go regexp \s
		sep = engine.Cls("-. \t\n\f\r")
		gsp = engine.Opt(engine.Cls(" -")) // card group separator [ -]?
	)
	d3 := engine.Rep(d, 3, 3)
	d4 := engine.Rep(d, 4, 4)

	// (?i)\b\d{1,6}\s+(?:[A-Za-z0-9.'-]+\s){0,3}?(suffixes)\.?
	//   (?:\s*,?\s*(?:apt|...)\s*\.?\s*[A-Za-z0-9-]+)?
	//   (?:\s*,\s*[A-Za-z .]+,\s*[A-Z]{2}\s*,?\s*\d{5}(?:-\d{4})?)?\b
	address := engine.Seq(
		engine.Bnd(), engine.Rep(d, 1, 6), engine.Plus(ws),
		engine.RepLazy(engine.Seq(engine.Plus(engine.ClsFold("A-Za-z0-9.'-")), ws), 0, 3),
		engine.Alt(
			engine.LitFold("street"), engine.LitFold("st"),
			engine.LitFold("avenue"), engine.LitFold("ave"),
			engine.LitFold("road"), engine.LitFold("rd"),
			engine.LitFold("boulevard"), engine.LitFold("blvd"),
			engine.LitFold("drive"), engine.LitFold("dr"),
			engine.LitFold("lane"), engine.LitFold("ln"),
			engine.LitFold("court"), engine.LitFold("ct"),
			engine.LitFold("circle"), engine.LitFold("cir"),
			engine.LitFold("way"), engine.LitFold("place"), engine.LitFold("pl"),
			engine.LitFold("terrace"), engine.LitFold("ter"),
		),
		engine.Opt(engine.Lit(".")),
		engine.Opt(engine.Seq(
			engine.Star(ws), engine.Opt(engine.Lit(",")), engine.Star(ws),
			engine.Alt(
				engine.LitFold("apt"), engine.LitFold("apartment"),
				engine.LitFold("unit"), engine.LitFold("suite"),
				engine.LitFold("ste"), engine.Lit("#"),
			),
			engine.Star(ws), engine.Opt(engine.Lit(".")), engine.Star(ws),
			engine.Plus(engine.ClsFold("A-Za-z0-9-")),
		)),
		engine.Opt(engine.Seq(
			engine.Star(ws), engine.Lit(","), engine.Star(ws),
			engine.Plus(engine.ClsFold("A-Za-z .")),
			engine.Lit(","), engine.Star(ws),
			engine.Rep(engine.ClsFold("A-Z"), 2, 2),
			engine.Star(ws), engine.Opt(engine.Lit(",")), engine.Star(ws),
			engine.Rep(d, 5, 5),
			engine.Opt(engine.Seq(engine.Lit("-"), d4)),
		)),
		engine.Bnd(),
	)

	// (?:\+?1[-.\s]?)?(?:\(\b[2-9]\d{2}\)|\b[2-9]\d{2})[-.\s]\d{3}[-.\s]\d{4}\b
	// (the balanced-parentheses form; see rePhone in pii.go)
	phone := engine.Seq(
		engine.Opt(engine.Seq(
			engine.Opt(engine.Lit("+")), engine.Lit("1"), engine.Opt(sep),
		)),
		engine.Alt(
			engine.Seq(engine.Lit("("), engine.Bnd(), engine.Cls("2-9"), engine.Rep(d, 2, 2), engine.Lit(")")),
			engine.Seq(engine.Bnd(), engine.Cls("2-9"), engine.Rep(d, 2, 2)),
		),
		sep, d3, sep, d4, engine.Bnd(),
	)

	// \b(?:\d{3}-\d{2}-\d{4})\b
	ssn := engine.Seq(
		engine.Bnd(), d3, engine.Lit("-"), engine.Rep(d, 2, 2), engine.Lit("-"), d4, engine.Bnd(),
	)

	// \b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b
	email := engine.Seq(
		engine.Bnd(), engine.Plus(engine.Cls("A-Za-z0-9._%+-")),
		engine.Lit("@"), engine.Plus(engine.Cls("A-Za-z0-9.-")),
		engine.Lit("."), engine.Rep(engine.Cls("A-Za-z"), 2, -1),
		engine.Bnd(),
	)

	visa := engine.Seq(engine.Bnd(), engine.Lit("4"), d3, gsp, d4, gsp, d4, gsp, d4, engine.Bnd())
	mc := engine.Seq(engine.Bnd(), engine.Lit("5"), engine.Cls("1-5"), engine.Rep(d, 2, 2),
		gsp, d4, gsp, d4, gsp, d4, engine.Bnd())
	amex := engine.Seq(engine.Bnd(), engine.Lit("3"), engine.Cls("47"), engine.Rep(d, 2, 2),
		gsp, engine.Rep(d, 6, 6), gsp, engine.Rep(d, 5, 5), engine.Bnd())
	discover := engine.Seq(engine.Bnd(), engine.Lit("6"),
		engine.Alt(engine.Lit("011"), engine.Seq(engine.Lit("5"), engine.Rep(d, 2, 2))),
		gsp, d4, gsp, d4, gsp, d4, engine.Bnd())

	// (?i)(?:https?://)? prefix shared by the URL patterns.
	httpOpt := engine.Opt(engine.Seq(
		engine.LitFold("http"), engine.Opt(engine.LitFold("s")), engine.Lit("://"),
	))

	fbURL := engine.Seq(httpOpt,
		engine.Opt(engine.Alt(engine.LitFold("www."), engine.LitFold("m."))),
		engine.LitFold("facebook.com/"),
		engine.Cap(engine.Rep(engine.ClsFold("A-Za-z0-9."), 5, 50)),
		engine.Bnd(),
	)
	igURL := engine.Seq(httpOpt,
		engine.Opt(engine.LitFold("www.")),
		engine.LitFold("instagram.com/"),
		engine.Cap(engine.Rep(engine.ClsFold("A-Za-z0-9._"), 1, 30)),
		engine.Bnd(),
	)
	twURL := engine.Seq(httpOpt,
		engine.Opt(engine.Alt(engine.LitFold("www."), engine.LitFold("mobile."))),
		engine.LitFold("twitter.com/"),
		engine.Cap(engine.Rep(engine.ClsFold("A-Za-z0-9_"), 1, 15)),
		engine.Bnd(),
	)
	ytURL := engine.Seq(httpOpt,
		engine.Opt(engine.LitFold("www.")),
		engine.LitFold("youtube.com/"),
		engine.Opt(engine.Seq(
			engine.Alt(engine.LitFold("c"), engine.LitFold("channel"), engine.LitFold("user")),
			engine.Lit("/"),
		)),
		engine.Cap(engine.Seq(engine.Opt(engine.Lit("@")), engine.Rep(engine.ClsFold("A-Za-z0-9_-"), 3, 60))),
		engine.Bnd(),
	)

	mention := func(sites *engine.Node, handle *engine.Node) *engine.Node {
		return engine.Seq(
			engine.Bnd(), sites,
			engine.Star(ws), engine.Lit(":"), engine.Star(ws),
			engine.Cap(handle), engine.Bnd(),
		)
	}
	atOpt := engine.Opt(engine.Lit("@"))
	fbM := mention(
		engine.Alt(engine.LitFold("facebook"), engine.LitFold("fb")),
		engine.Rep(engine.ClsFold("A-Za-z0-9."), 5, 50),
	)
	igM := mention(
		engine.Alt(engine.LitFold("instagram"), engine.LitFold("ig"), engine.LitFold("insta")),
		engine.Seq(atOpt, engine.Rep(engine.ClsFold("A-Za-z0-9._"), 1, 30)),
	)
	twM := mention(
		engine.Alt(engine.LitFold("twitter"), engine.LitFold("twtr")),
		engine.Seq(atOpt, engine.Rep(engine.ClsFold("A-Za-z0-9_"), 1, 15)),
	)
	ytM := mention(
		engine.Alt(engine.LitFold("youtube"), engine.LitFold("yt")),
		engine.Seq(atOpt, engine.Rep(engine.ClsFold("A-Za-z0-9_-"), 3, 60)),
	)

	// URL windows: candidate base is the host start (event end minus
	// host length); the window reaches back over the longest legal
	// scheme+subdomain prefix ("https://" + "www."/"m."/"mobile.").
	urlTrack := func(id, hostLen, maxSub int) []engine.TrackRef {
		return []engine.TrackRef{{ID: id, Back: hostLen, Window: 8 + maxSub}}
	}
	mentionTrack := func(refs ...engine.TrackRef) []engine.TrackRef { return refs }

	return []engine.PatternSpec{
		{Type: tiAddress, AST: address, Kind: engine.CandDigitRun, Verify: verifyAddress},
		{Type: tiCards, AST: visa, Kind: engine.CandDigitRun, DigitFamily: true, Verify: verifyCard},
		{Type: tiCards, AST: mc, Kind: engine.CandDigitRun, DigitFamily: true, Verify: verifyCard},
		{Type: tiCards, AST: amex, Kind: engine.CandDigitRun, DigitFamily: true, Verify: verifyCard},
		{Type: tiCards, AST: discover, Kind: engine.CandDigitRun, DigitFamily: true, Verify: verifyCard},
		{Type: tiEmail, AST: email, Kind: engine.CandEmail,
			Track: []engine.TrackRef{{ID: trAt, Back: 1}}, Verify: verifyEmail},
		{Type: tiFacebook, AST: fbURL, Kind: engine.CandEvent,
			Track: urlTrack(trFacebookCom, 12, 4), Verify: verifyHandle(Facebook)},
		{Type: tiFacebook, AST: fbM, Kind: engine.CandEvent,
			Track: mentionTrack(
				engine.TrackRef{ID: trFacebook, Back: 8},
				engine.TrackRef{ID: trFB, Back: 2},
			), Verify: verifyHandle(Facebook)},
		{Type: tiInstagram, AST: igURL, Kind: engine.CandEvent,
			Track: urlTrack(trInstagramCom, 13, 4), Verify: verifyHandle(Instagram)},
		{Type: tiInstagram, AST: igM, Kind: engine.CandEvent,
			Track: mentionTrack(
				engine.TrackRef{ID: trInstagram, Back: 9},
				engine.TrackRef{ID: trIG, Back: 2},
				engine.TrackRef{ID: trInsta, Back: 5},
			), Verify: verifyHandle(Instagram)},
		{Type: tiPhone, AST: phone, Kind: engine.CandDigitRun, DigitFamily: true,
			Prefix: "+(", Interior: "1", Verify: verifyPhone},
		{Type: tiSSN, AST: ssn, Kind: engine.CandDigitRun, DigitFamily: true, Verify: verifySSN},
		{Type: tiTwitter, AST: twURL, Kind: engine.CandEvent,
			Track: urlTrack(trTwitterCom, 11, 7), Verify: verifyHandle(Twitter)},
		{Type: tiTwitter, AST: twM, Kind: engine.CandEvent,
			Track: mentionTrack(
				engine.TrackRef{ID: trTwitter, Back: 7},
				engine.TrackRef{ID: trTwtr, Back: 4},
			), Verify: verifyHandle(Twitter)},
		{Type: tiYouTube, AST: ytURL, Kind: engine.CandEvent,
			Track: urlTrack(trYouTubeCom, 11, 4), Verify: verifyHandle(YouTube)},
		{Type: tiYouTube, AST: ytM, Kind: engine.CandEvent,
			Track: mentionTrack(
				engine.TrackRef{ID: trYouTube, Back: 7},
				engine.TrackRef{ID: trYT, Back: 2},
			), Verify: verifyHandle(YouTube)},
	}
}

// --- verify / normalise hooks (the legacy post-filters, arena-based) ---

func verifyPhone(text string, s, e, _, _ int32, arena []byte) ([]byte, int32, int32, bool) {
	off := int32(len(arena))
	for i := s; i < e; i++ {
		if c := text[i]; '0' <= c && c <= '9' {
			arena = append(arena, c)
		}
	}
	n := int32(len(arena)) - off
	if n == 11 && arena[off] == '1' {
		copy(arena[off:], arena[off+1:])
		arena = arena[:len(arena)-1]
		n--
	}
	if n != 10 || arena[off+3] == '0' || arena[off+3] == '1' {
		return arena[:off], 0, 0, false
	}
	return arena, off, n, true
}

func verifySSN(text string, s, e, _, _ int32, arena []byte) ([]byte, int32, int32, bool) {
	m := text[s:e] // exactly \d{3}-\d{2}-\d{4}: 11 bytes
	area, group, serial := m[:3], m[4:6], m[7:]
	if area == "000" || area == "666" || area[0] == '9' {
		return arena, 0, 0, false
	}
	if group == "00" || serial == "0000" {
		return arena, 0, 0, false
	}
	off := int32(len(arena))
	arena = append(arena, m...)
	return arena, off, int32(len(m)), true
}

func verifyCard(text string, s, e, _, _ int32, arena []byte) ([]byte, int32, int32, bool) {
	off := int32(len(arena))
	for i := s; i < e; i++ {
		if c := text[i]; '0' <= c && c <= '9' {
			arena = append(arena, c)
		}
	}
	if !luhnValidBytes(arena[off:]) {
		return arena[:off], 0, 0, false
	}
	return arena, off, int32(len(arena)) - off, true
}

func verifyEmail(text string, s, e, _, _ int32, arena []byte) ([]byte, int32, int32, bool) {
	off := int32(len(arena))
	for i := s; i < e; i++ {
		b := text[i]
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		arena = append(arena, b)
	}
	return arena, off, e - s, true
}

// verifyAddress normalises whitespace exactly like normaliseSpace:
// runs of ASCII whitespace collapse to one space. The match can
// neither start nor end with whitespace (it starts with a digit and
// ends at a word boundary after a non-space), so no trimming arises.
func verifyAddress(text string, s, e, _, _ int32, arena []byte) ([]byte, int32, int32, bool) {
	off := int32(len(arena))
	pending := false
	for i := s; i < e; i++ {
		b := text[i]
		if b == ' ' || b == '\t' || b == '\n' || b == '\f' || b == '\r' {
			pending = true
			continue
		}
		if pending {
			arena = append(arena, ' ')
			pending = false
		}
		arena = append(arena, b)
	}
	return arena, off, int32(len(arena)) - off, true
}

// verifyHandle lowercases the captured handle (trimming one leading
// "@") into the arena and applies the platform's reserved-path
// stoplist. ASCII letters fold in place; U+212A (Kelvin) folds to
// 'k' and U+017F (long s) stays itself, matching strings.ToLower.
func verifyHandle(t Type) engine.VerifyFunc {
	stop := reservedPaths[t]
	return func(text string, _, _, cs, ce int32, arena []byte) ([]byte, int32, int32, bool) {
		off := int32(len(arena))
		i := cs
		if i < ce && text[i] == '@' {
			i++
		}
		for i < ce {
			b := text[i]
			switch {
			case 'A' <= b && b <= 'Z':
				arena = append(arena, b+'a'-'A')
				i++
			case b == 0xE2 && i+2 < ce && text[i+1] == 0x84 && text[i+2] == 0xAA:
				arena = append(arena, 'k')
				i += 3
			default:
				arena = append(arena, b)
				i++
			}
		}
		h := arena[off:]
		if len(h) == 0 || stop[string(h)] {
			return arena[:off], 0, 0, false
		}
		return arena, off, int32(len(h)), true
	}
}

// luhnValidBytes is luhnValid over arena bytes (no string conversion).
func luhnValidBytes(digits []byte) bool {
	if len(digits) < 12 {
		return false
	}
	sum := 0
	double := false
	for i := len(digits) - 1; i >= 0; i-- {
		d := int(digits[i] - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return sum%10 == 0
}
