package pii

// Soundness and performance-contract tests for the literal prefilter:
// the gated Extract must equal the regex-only path on every input, the
// hand-folded non-ASCII characters must be the only ones Go's (?i)
// simple case folding maps onto ASCII, and PII-free documents must not
// allocate.

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"harassrepro/internal/testutil"
)

// prefilterCorpus concentrates inputs on and around the gate
// boundaries: every family present, every family almost-present.
var prefilterCorpus = []string{
	"",
	"anyone up for ranked tonight, patch notes are out",
	"we need to mass-report his twitter and youtube, spread the word", // site names, no ':'
	"meet at 12 Oak Street tomorrow",
	"meet at Oak Street tomorrow",     // suffix but no digit
	"call 212-555-0142 or 2125550142", // phone digits
	"only nine 123-45-678",            // 8 digits + '-'
	"ssn 219-09-9999 leaked",
	"219 09 9999",         // ssn digits, no '-'
	"4111 1111 1111 1111", // valid visa shape
	"4111 1111 1111",      // 12 digits: below card gate
	"378282246310005",     // amex, 15 digits exactly
	"mail me: j.doe@example.org",
	"j.doe at example org", // no '@'
	"j@doe",                // '@' but no '.'
	"fb: some.person and ig: other_person",
	"facebook.com/someone.real instagram.com/other",
	"FACEBOOK.COM/LOUD.PERSON", // case-insensitive host
	"twitter.com/someuser yt: clipchannel",
	"twtr: short_handle youtube.com/c/somechannel",
	"his handle is facebooK.com/kelvin.case", // Kelvin sign folds to 'k'
	"12 oak ſtreet",                          // long s folds to 's'
	"Ünïcode 日本語 text with no pii at all",
	"a\xffb\xfe invalid \xc3( bytes 99 Cedar Lane",
	strings.Repeat("lorem ipsum 123 ", 50),
	"Address: 99 Cedar Lane, Springfield, IL, 62704 phone 555-867-5309",
}

func TestExtractMatchesDirectOnCorpus(t *testing.T) {
	e := NewExtractor()
	for _, text := range prefilterCorpus {
		got := e.Extract(text)
		want := extractDirect(text)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Extract(%q) = %v, direct = %v", text, got, want)
		}
	}
}

func TestExtractMatchesDirectQuick(t *testing.T) {
	e := NewExtractor()
	err := quick.Check(func(s string) bool {
		return reflect.DeepEqual(e.Extract(s), extractDirect(s))
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScannerFoldExceptionsComplete proves the scanner's hand-folded
// set is exhaustive: U+017F and U+212A are the only runes outside ASCII
// whose simple case-fold orbit reaches an ASCII letter, so no other
// character can make a (?i) regex match a literal the scanner missed.
func TestScannerFoldExceptionsComplete(t *testing.T) {
	handled := map[rune]bool{0x017F: true, 0x212A: true}
	for r := rune(0x80); r <= unicode.MaxRune; r++ {
		for f := unicode.SimpleFold(r); f != r; f = unicode.SimpleFold(f) {
			if f < 0x80 && !handled[r] {
				t.Errorf("rune %U folds to ASCII %q but the scanner does not map it", r, f)
			}
		}
	}
}

// TestScanFacts pins the scanner's literal and digit accounting.
func TestScanFacts(t *testing.T) {
	cases := []struct {
		text      string
		wantLit   string // a literal that must be seen ("" = none)
		absentLit string
		digits    int
	}{
		{"12 Oak Street", "street", "", 2},
		{"12 Oak STREET", "street", "", 2},
		{"constant", "st", "street", 0}, // substring semantics
		{"check facebook.com now", "facebook.com", "twitter", 0},
		{"no digits here", "", "", 0},
		{"ſtreet", "street", "", 0},
		{"facebooK", "facebook", "", 0},
		{"日本語str日本eet", "st", "street", 0}, // non-ASCII resets the automaton
		{"1234567890", "", "", 10},
	}
	for _, c := range cases {
		f := scan(c.text)
		if c.wantLit != "" && f.lits&acMaskOf[c.wantLit] == 0 {
			t.Errorf("scan(%q): literal %q not seen", c.text, c.wantLit)
		}
		if c.absentLit != "" && f.lits&acMaskOf[c.absentLit] != 0 {
			t.Errorf("scan(%q): literal %q wrongly seen", c.text, c.absentLit)
		}
		if f.digits != c.digits {
			t.Errorf("scan(%q): digits = %d, want %d", c.text, f.digits, c.digits)
		}
	}
}

// TestExtractCleanPathZeroAllocs is the allocation-regression gate for
// the prefilter: a document whose gate literals are absent must be
// rejected by the scan alone, with no allocations at all.
func TestExtractCleanPathZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	e := NewExtractor()
	clean := "anyone up for ranked tonight, patch notes are out, new map is wild"
	if got := e.Extract(clean); got != nil {
		t.Fatalf("clean text produced matches: %v", got)
	}
	if n := testing.AllocsPerRun(100, func() {
		e.Extract(clean)
	}); n != 0 {
		t.Errorf("Extract on clean text allocates %v per op, want 0", n)
	}
}

// TestExtractDenseAllocBudget documents the allocation budget for
// PII-bearing inputs: the regex engine and the match/dedupe machinery
// allocate (FindAll result slices, normalised values, the dedupe map),
// so extraction from a dense dox is not free — but it must stay within
// a small fixed budget rather than regressing silently.
func TestExtractDenseAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	e := NewExtractor()
	dense := "John lives at 123 Maple Street, Fairview, OH, 44120, call (212) 555-0142, fb: john.t.99, email j@example.org, card 4111 1111 1111 1111, ssn 219-09-9999"
	if got := e.Extract(dense); len(got) < 6 {
		t.Fatalf("dense dox produced only %d matches: %v", len(got), got)
	}
	// Measured at 40 allocs/op; 64 leaves headroom for regexp-internal
	// variation without masking a real regression.
	if n := testing.AllocsPerRun(50, func() {
		e.Extract(dense)
	}); n > 64 {
		t.Errorf("Extract on dense dox allocates %v per op, budget 64", n)
	}
}

// TestPlanGates spot-checks that gating actually skips families: texts
// built to fail exactly one gate condition admit no plan of that name.
func TestPlanGates(t *testing.T) {
	planByName := map[string]plan{}
	for _, p := range plans {
		planByName[p.name] = p
	}
	cases := []struct {
		text  string
		name  string
		admit bool
	}{
		{"99 Cedar Lane", "address", true},
		{"Cedar Lane no number", "address", false},
		{"12345678901234", "cards", false}, // 14 digits
		{"123456789012345", "cards", true},
		{"a@b", "email", false},
		{"a@b.co", "email", true},
		{"facebook is down", "facebook", false}, // no ':' and no host
		{"facebook: someone", "facebook", true},
		{"123456789", "ssn", false}, // 9 digits, no '-'
		{"123-45-6789", "ssn", true},
		{"yt is fun", "youtube", false},
		{"youtube.com/c/x", "youtube", true},
	}
	for _, c := range cases {
		f := scan(c.text)
		if got := f.admits(planByName[c.name]); got != c.admit {
			t.Errorf("admits(%q, %s) = %v, want %v", c.text, c.name, got, c.admit)
		}
	}
}
