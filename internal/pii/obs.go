package pii

// Extractor instrumentation. SetMetrics registers prefilter and
// extraction counters on an obs.Registry and makes every subsequent
// Extract on that Extractor report into them:
//
//	pii_docs_scanned_total            Extract calls (one prefilter scan each)
//	pii_docs_clean_total              scans where no regex family was admitted
//	pii_family_admitted_total{family} prefilter admissions: the family's
//	                                  regexes actually ran on the document
//	pii_family_matches_total{family}  raw matches those runs produced
//	                                  (pre-dedupe)
//
// so scanned*families - sum(admitted) is the number of regex-family
// executions the prefilter saved. An Extractor without metrics (the
// zero value, or NewExtractor unadorned) pays a single nil check.

import "harassrepro/internal/obs"

// extractorMetrics holds the pre-resolved instrument handles.
type extractorMetrics struct {
	scanned  *obs.Counter
	clean    *obs.Counter
	admitted []*obs.Counter // aligned with plans
	matches  []*obs.Counter
}

// SetMetrics attaches reg to the extractor. Not safe to call
// concurrently with Extract; attach before use.
func (e *Extractor) SetMetrics(reg *obs.Registry) {
	m := &extractorMetrics{
		scanned: reg.NewCounter("pii_docs_scanned_total",
			"documents run through the PII prefilter scan"),
		clean: reg.NewCounter("pii_docs_clean_total",
			"documents the prefilter cleared without running any regex family"),
	}
	for _, p := range plans {
		l := obs.L("family", p.name)
		m.admitted = append(m.admitted, reg.NewCounter("pii_family_admitted_total",
			"documents admitted to a regex family by the prefilter", l))
		m.matches = append(m.matches, reg.NewCounter("pii_family_matches_total",
			"raw PII matches per regex family, before dedupe", l))
	}
	e.m = m
}
