package pii

// Session: the pooled zero-allocation extraction API over the
// one-pass engine. A Session owns all scratch (prefilter facts,
// backtracker, lazy-DFA cache, value arena); steady-state Extract
// performs no heap allocations. Extractor keeps a pool of sessions
// so the legacy allocating API and the scorer hot path share warm
// state.

import (
	"sync"

	"harassrepro/internal/pii/engine"
)

// eng is the compiled one-pass engine, built at the end of package
// init (after the plans assign gate-literal bits).
var eng *engine.Engine

// Span is one extracted PII instance with its byte extent in the
// scanned document. Value aliases the session arena and is only
// valid until the session's next Extract call; copy it to retain.
type Span struct {
	Type       Type
	Start, End int
	Value      []byte
}

// Session is a reusable extraction context. Not safe for concurrent
// use; use one per goroutine (Extractor pools them internally).
type Session struct {
	es    *engine.Session
	spans []Span
}

// NewSession returns a warm, reusable extraction session.
func NewSession() *Session { return &Session{es: eng.NewSession()} }

// Extract scans text and returns verified, normalised, de-duplicated
// spans sorted by (type, value) — the same match set as
// Extractor.Extract, without allocating. The returned slice is valid
// until the next call on this session.
func (s *Session) Extract(text string) []Span {
	out := s.es.Extract(text)
	s.spans = s.spans[:0]
	for i := range out {
		s.spans = append(s.spans, Span{
			Type:  typeOfIndex[out[i].Type],
			Start: out[i].Start,
			End:   out[i].End,
			Value: out[i].Value,
		})
	}
	return s.spans
}

// AppendTypes extracts text and appends the distinct PII types
// present to dst, in Table 6 order. Allocation-free when dst has
// capacity.
func (s *Session) AppendTypes(dst []Type, text string) []Type {
	out := s.es.Extract(text)
	last := -1
	for i := range out {
		if out[i].Type != last {
			dst = append(dst, typeOfIndex[out[i].Type])
			last = out[i].Type
		}
	}
	return dst
}

// stats exposes the engine stats of the session's last Extract.
func (s *Session) stats() *engine.Stats { return &s.es.Stats }

var sessionPool = sync.Pool{New: func() any { return NewSession() }}

// record folds one scan's engine stats into the extractor metrics,
// preserving the legacy counter semantics: scanned per document,
// clean when no gate admitted, admitted per admitted plan, matches
// counting verified raw (pre-dedupe) matches.
func (e *Extractor) record(st *engine.Stats) {
	if e.m == nil {
		return
	}
	e.m.scanned.Inc()
	if st.Admitted == 0 {
		e.m.clean.Inc()
		return
	}
	for i := range plans {
		if st.Admitted&(1<<uint(i)) != 0 {
			e.m.admitted[i].Inc()
			if n := st.Matches[i]; n > 0 {
				e.m.matches[i].Add(uint64(n))
			}
		}
	}
}
