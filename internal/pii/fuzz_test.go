package pii

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// TestExtractNeverPanicsOnRandomInput drives the extractors with
// arbitrary strings: no panic, deterministic output, values drawn from
// the input's alphabet.
func TestExtractNeverPanicsOnRandomInput(t *testing.T) {
	e := NewExtractor()
	err := quick.Check(func(s string) bool {
		m1 := e.Extract(s)
		m2 := e.Extract(s)
		if len(m1) != len(m2) {
			return false
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExtractValidUTF8 checks that normalised values remain valid UTF-8
// even when the input contains multi-byte runes.
func TestExtractValidUTF8(t *testing.T) {
	e := NewExtractor()
	inputs := []string{
		"Ünïcode text with phone 212-555-0142 and more",
		"日本語 email: user@example.org 中文",
		strings.Repeat("é", 100) + " fb: some.person ",
	}
	for _, in := range inputs {
		for _, m := range e.Extract(in) {
			if !utf8.ValidString(m.Value) {
				t.Errorf("invalid UTF-8 value %q from %q", m.Value, in)
			}
		}
	}
}

// TestExtractAdversarialShapes probes inputs engineered to sit on
// pattern boundaries.
func TestExtractAdversarialShapes(t *testing.T) {
	e := NewExtractor()
	cases := []struct {
		text     string
		wantType Type
		want     bool
	}{
		// 17-digit run: the 16-digit card pattern must not fire inside it.
		{"41111111111111117", CreditCard, false},
		// Card split across lines is not matched (precision choice).
		{"4111 1111\n1111 1111", CreditCard, false},
		// SSN-like but part of a longer digit run.
		{"1219-09-99993", SSN, false},
		// Email inside angle brackets.
		{"contact <j.doe@example.org> today", Email, true},
		// Phone glued to a word boundary via punctuation.
		{"call:212-555-0142.", Phone, true},
		// Handle at end of string.
		{"fb: final.handle", Facebook, true},
		// URL with query string after the handle.
		{"https://twitter.com/someuser?ref=abc", Twitter, true},
	}
	for _, c := range cases {
		found := false
		for _, m := range e.Extract(c.text) {
			if m.Type == c.wantType {
				found = true
			}
		}
		if found != c.want {
			t.Errorf("Extract(%q) %s: got %v, want %v", c.text, c.wantType, found, c.want)
		}
	}
}

// FuzzExtractPrefilterEquivalence is the differential fuzz target for
// the literal prefilter: on every input, the gated Extract must return
// exactly what running the regexes unconditionally returns. Any
// divergence means a gate is not a necessary condition for its regex
// family — a soundness bug, not a tuning issue.
func FuzzExtractPrefilterEquivalence(f *testing.F) {
	for _, s := range []string{
		"",
		"we need to mass-report his twitter and youtube",
		"fb: some.person and ig: other_person",
		"Address: 99 Cedar Lane, phone 555-867-5309, j.doe@example.org",
		"4111 1111 1111 1111 ssn 219-09-9999",
		"facebooK.com/kelvin 12 oak ſtreet",
		"twtr: a yt: abc twitter.com/someuser",
		"\xff\xfe\xc5\xbf\xe2\x84\xaa 123-45-6789",
	} {
		f.Add(s)
	}
	e := NewExtractor()
	f.Fuzz(func(t *testing.T, s string) {
		got := e.Extract(s)
		want := extractDirect(s)
		if len(got) != len(want) {
			t.Fatalf("prefiltered Extract(%q) = %v, direct = %v", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("prefiltered Extract(%q) = %v, direct = %v", s, got, want)
			}
		}
	})
}

// TestExtractLargeInput exercises a pathological large document.
func TestExtractLargeInput(t *testing.T) {
	e := NewExtractor()
	big := strings.Repeat("lorem ipsum 123 ", 20000) // ~320KB
	if got := e.Extract(big); len(got) != 0 {
		t.Errorf("noise input produced %d matches", len(got))
	}
	// Large input with one needle.
	needle := big + " ssn 219-09-9999 " + big
	got := e.Extract(needle)
	if len(got) != 1 || got[0].Type != SSN {
		t.Errorf("needle not found in large input: %v", got)
	}
}
