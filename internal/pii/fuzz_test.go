package pii

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

// TestExtractNeverPanicsOnRandomInput drives the extractors with
// arbitrary strings: no panic, deterministic output, values drawn from
// the input's alphabet.
func TestExtractNeverPanicsOnRandomInput(t *testing.T) {
	e := NewExtractor()
	err := quick.Check(func(s string) bool {
		m1 := e.Extract(s)
		m2 := e.Extract(s)
		if len(m1) != len(m2) {
			return false
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExtractValidUTF8 checks that normalised values remain valid UTF-8
// even when the input contains multi-byte runes.
func TestExtractValidUTF8(t *testing.T) {
	e := NewExtractor()
	inputs := []string{
		"Ünïcode text with phone 212-555-0142 and more",
		"日本語 email: user@example.org 中文",
		strings.Repeat("é", 100) + " fb: some.person ",
	}
	for _, in := range inputs {
		for _, m := range e.Extract(in) {
			if !utf8.ValidString(m.Value) {
				t.Errorf("invalid UTF-8 value %q from %q", m.Value, in)
			}
		}
	}
}

// TestExtractAdversarialShapes probes inputs engineered to sit on
// pattern boundaries.
func TestExtractAdversarialShapes(t *testing.T) {
	e := NewExtractor()
	cases := []struct {
		text     string
		wantType Type
		want     bool
	}{
		// 17-digit run: the 16-digit card pattern must not fire inside it.
		{"41111111111111117", CreditCard, false},
		// Card split across lines is not matched (precision choice).
		{"4111 1111\n1111 1111", CreditCard, false},
		// SSN-like but part of a longer digit run.
		{"1219-09-99993", SSN, false},
		// Email inside angle brackets.
		{"contact <j.doe@example.org> today", Email, true},
		// Phone glued to a word boundary via punctuation.
		{"call:212-555-0142.", Phone, true},
		// Handle at end of string.
		{"fb: final.handle", Facebook, true},
		// URL with query string after the handle.
		{"https://twitter.com/someuser?ref=abc", Twitter, true},
	}
	for _, c := range cases {
		found := false
		for _, m := range e.Extract(c.text) {
			if m.Type == c.wantType {
				found = true
			}
		}
		if found != c.want {
			t.Errorf("Extract(%q) %s: got %v, want %v", c.text, c.wantType, found, c.want)
		}
	}
}

// FuzzExtractPrefilterEquivalence is the differential fuzz target for
// the literal prefilter: on every input, the gated Extract must return
// exactly what running the regexes unconditionally returns. Any
// divergence means a gate is not a necessary condition for its regex
// family — a soundness bug, not a tuning issue.
func FuzzExtractPrefilterEquivalence(f *testing.F) {
	for _, s := range []string{
		"",
		"we need to mass-report his twitter and youtube",
		"fb: some.person and ig: other_person",
		"Address: 99 Cedar Lane, phone 555-867-5309, j.doe@example.org",
		"4111 1111 1111 1111 ssn 219-09-9999",
		"facebooK.com/kelvin 12 oak ſtreet",
		"twtr: a yt: abc twitter.com/someuser",
		"\xff\xfe\xc5\xbf\xe2\x84\xaa 123-45-6789",
		// Dense multi-family dox: every digit family plus handles in one
		// document, so the engine's per-region DFA admits several
		// patterns over shared digit runs.
		"DOX 123 Maple Street, Fairview, OH, 44120 (212) 555-0142 219-09-9999 " +
			"4111111111111111 5500 0000 0000 0004 j@example.org fb: j.doe.99 " +
			"instagram.com/j_doe twtr: jdoe youtube.com/c/jdoe",
		// Overlapping digit runs: a 16-digit card whose interior also
		// shapes like phone and SSN — non-overlap resume positions must
		// agree with the per-pattern FindAll semantics.
		"4111 1111 1111 1111 111-11-1111 1234567890 212-555-0142-19",
		"30569309025904 3782 822463 10005 6011111111111117",
		// URLs split across mention prefixes: the site literal appears
		// both as a host and as a bare mention name in close quarters.
		"twitter: twitter.com/realuser yt: youtube.com/@clip fb:facebook.com/p.q.r.s.t",
		"https://www.instagram.com/insta: ig:instagram.com/x._.y",
		// Digit walls: long runs where no pattern can match but the DFA
		// and run enumeration must stay linear.
		strings.Repeat("1234567890", 64),
		strings.Repeat("9", 512) + " 219-09-9999 " + strings.Repeat("0", 512),
	} {
		f.Add(s)
	}
	// A 64KB digit wall with embedded needles: too big to minimise well
	// as a seed literal, so build it here and fuzz it once directly.
	wall := strings.Repeat("5", 16*1024) + " (415) 555-2671 " +
		strings.Repeat("1 ", 16*1024) + "ssn 219-09-9999 " + strings.Repeat("42", 8*1024)
	f.Add(wall)
	e := NewExtractor()
	s2 := NewSession()
	f.Fuzz(func(t *testing.T, s string) {
		got := e.Extract(s)
		want := extractDirect(s)
		if len(got) != len(want) {
			t.Fatalf("prefiltered Extract(%q) = %v, direct = %v", s, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("prefiltered Extract(%q) = %v, direct = %v", s, got, want)
			}
		}
		// The zero-alloc span API must agree with the allocating one:
		// same (type, value) sequence, spans inside the document.
		spans := s2.Extract(s)
		if len(spans) != len(want) {
			t.Fatalf("Session.Extract(%q) = %d spans, direct = %d matches", s, len(spans), len(want))
		}
		for i := range spans {
			if spans[i].Type != want[i].Type || string(spans[i].Value) != want[i].Value {
				t.Fatalf("Session.Extract(%q)[%d] = (%s,%q), direct = (%s,%q)",
					s, i, spans[i].Type, spans[i].Value, want[i].Type, want[i].Value)
			}
			if spans[i].Start < 0 || spans[i].End > len(s) || spans[i].Start >= spans[i].End {
				t.Fatalf("Session.Extract(%q)[%d] span [%d,%d) out of bounds", s, i, spans[i].Start, spans[i].End)
			}
		}
	})
}

// TestSessionExtractZeroAllocsDenseDox is the allocation gate for the
// one-pass engine on the dense-dox workload: after warmup, the pooled
// session path (the scorer hot path) must not allocate even when every
// family matches. The clean-path gate is TestExtractCleanPathZeroAllocs.
func TestSessionExtractZeroAllocsDenseDox(t *testing.T) {
	const dense = "John lives at 123 Maple Street, Fairview, OH, 44120, call (212) 555-0142, fb: john.t.99, email j@example.org, card 4111 1111 1111 1111, ssn 219-09-9999"
	s := NewSession()
	spans := s.Extract(dense) // warm arena, DFA cache, scratch
	if len(spans) == 0 {
		t.Fatal("dense dox produced no spans")
	}
	if avg := testing.AllocsPerRun(100, func() {
		if len(s.Extract(dense)) == 0 {
			t.Fatal("dense dox produced no spans")
		}
	}); avg != 0 {
		t.Errorf("Session.Extract allocs/run = %v, want 0", avg)
	}
	var dst [16]Type
	if avg := testing.AllocsPerRun(100, func() {
		if len(s.AppendTypes(dst[:0], dense)) == 0 {
			t.Fatal("dense dox produced no types")
		}
	}); avg != 0 {
		t.Errorf("Session.AppendTypes allocs/run = %v, want 0", avg)
	}
}

// TestExtractLargeInput exercises a pathological large document.
func TestExtractLargeInput(t *testing.T) {
	e := NewExtractor()
	big := strings.Repeat("lorem ipsum 123 ", 20000) // ~320KB
	if got := e.Extract(big); len(got) != 0 {
		t.Errorf("noise input produced %d matches", len(got))
	}
	// Large input with one needle.
	needle := big + " ssn 219-09-9999 " + big
	got := e.Extract(needle)
	if len(got) != 1 || got[0].Type != SSN {
		t.Errorf("needle not found in large input: %v", got)
	}
}
