package pii

// The literal prefilter for PII extraction. The twelve extractor
// regexes are precise but expensive, and the overwhelming majority of
// streamed documents (§5.6 runs the extractors over every collected
// message) contain no PII at all. Each regex family only ever matches
// when certain fixed byte literals are present — an address needs a
// digit and a street suffix, an email needs '@' and '.', a profile URL
// needs its host name — so one linear scan that records which literals
// occur lets clean documents skip every regex without changing any
// output.
//
// The scan is a byte-level Aho-Corasick automaton over all gate
// literals at once (dense transitions, output bitmasks merged through
// the fail links), plus an ASCII digit count. Matching is substring
// matching over an ASCII-lowered view of the text; the only non-ASCII
// characters Go's (?i) simple case folding maps onto ASCII letters —
// U+017F (long s -> 's') and U+212A (Kelvin sign -> 'k') — are folded
// by hand so a regex can never match where the scanner saw nothing.
// All other non-ASCII bytes reset the automaton; they cannot occur
// inside any literal.
//
// Gates are conservative by construction: every gate is a *necessary*
// condition for its regex family, never an exact one, so a gated
// Extract is always a superset-safe rewrite of running the regexes
// directly. FuzzExtractPrefilterEquivalence holds the two paths equal.

import "strings"

// Literal registration: lit interns a literal and returns its bitmask;
// masks combine into anyOf-groups below.
var (
	acLiterals []string
	acMaskOf   = map[string]uint64{}
)

func lit(s string) uint64 {
	if m, ok := acMaskOf[s]; ok {
		return m
	}
	if len(acLiterals) >= 64 {
		panic("pii: more than 64 prefilter literals")
	}
	m := uint64(1) << uint(len(acLiterals))
	acLiterals = append(acLiterals, s)
	acMaskOf[s] = m
	return m
}

func anyOf(ss ...string) uint64 {
	var m uint64
	for _, s := range ss {
		m |= lit(s)
	}
	return m
}

// plan is one compiled extraction step: the literal gate plus the
// extractor to run when the gate admits the document. groups is a
// conjunction of anyOf-masks — every group must have at least one
// literal present — and minDigits bounds the document's ASCII digit
// count from below.
type plan struct {
	name      string
	groups    []uint64
	minDigits int
	extract   func(string) []Match
}

// plans holds the extraction plans in the fixed legacy Extract order
// (address, cards, email, facebook, instagram, phone, ssn, twitter,
// youtube) so gating never reorders matches fed into dedupe.
var plans []plan

// pf is the compiled literal automaton, built once from every literal
// the plans registered.
var pf *acMatcher

func init() {
	streetSuffix := anyOf(
		"street", "st", "avenue", "ave", "road", "rd", "boulevard", "blvd",
		"drive", "dr", "lane", "ln", "court", "ct", "circle", "cir", "way",
		"place", "pl", "terrace", "ter",
	)
	// For the handle families, a URL match implies its host literal and a
	// mention match implies a site name plus ':'. Since each ".com" host
	// literal contains the bare site name, the disjunction
	// (url-match OR mention-match) relaxes to the two groups below.
	plans = []plan{
		{
			name: "address", groups: []uint64{streetSuffix}, minDigits: 1,
			extract: func(t string) []Match { return extractSimple(Address, reAddress, t, normaliseSpace) },
		},
		{
			// Shortest card format is Amex's 15 digits.
			name: "cards", minDigits: 15,
			extract: extractCards,
		},
		{
			name: "email", groups: []uint64{lit("@"), lit(".")},
			extract: func(t string) []Match { return extractSimple(Email, reEmail, t, strings.ToLower) },
		},
		{
			name:   "facebook",
			groups: []uint64{anyOf("facebook", "fb"), anyOf("facebook.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(Facebook, reFacebookURL, reFacebookMention, t)
			},
		},
		{
			name:   "instagram",
			groups: []uint64{anyOf("instagram", "ig", "insta"), anyOf("instagram.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(Instagram, reInstagramURL, reInstagramMention, t)
			},
		},
		{
			name: "phone", minDigits: 10,
			extract: extractPhones,
		},
		{
			name: "ssn", groups: []uint64{lit("-")}, minDigits: 9,
			extract: extractSSNs,
		},
		{
			name:   "twitter",
			groups: []uint64{anyOf("twitter", "twtr"), anyOf("twitter.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(Twitter, reTwitterURL, reTwitterMention, t)
			},
		},
		{
			name:   "youtube",
			groups: []uint64{anyOf("youtube", "yt"), anyOf("youtube.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(YouTube, reYouTubeURL, reYouTubeMention, t)
			},
		},
	}
	pf = buildACMatcher(acLiterals)
}

// scanFacts is what one pass over a document establishes: the set of
// gate literals present (as a bitmask over acLiterals) and the ASCII
// digit count.
type scanFacts struct {
	lits   uint64
	digits int
}

// admits reports whether the facts satisfy a plan's gate.
func (f scanFacts) admits(p plan) bool {
	if f.digits < p.minDigits {
		return false
	}
	for _, g := range p.groups {
		if f.lits&g == 0 {
			return false
		}
	}
	return true
}

// scan runs the automaton over text. Allocation-free.
func scan(text string) scanFacts {
	var f scanFacts
	s := int16(0)
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c < 0x80 {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			} else if '0' <= c && c <= '9' {
				f.digits++
			}
		} else if c == 0xC5 && i+1 < len(text) && text[i+1] == 0xBF {
			c, i = 's', i+1 // U+017F LATIN SMALL LETTER LONG S folds to 's'
		} else if c == 0xE2 && i+2 < len(text) && text[i+1] == 0x84 && text[i+2] == 0xAA {
			c, i = 'k', i+2 // U+212A KELVIN SIGN folds to 'k'
		} else {
			s = 0 // non-ASCII byte: no literal continues through it
			continue
		}
		s = pf.next[s][c]
		f.lits |= pf.out[s]
	}
	return f
}

// acMatcher is a dense-transition Aho-Corasick automaton over ASCII
// bytes. next[s][c] is the goto-or-fail transition; out[s] is the
// bitmask of literals ending at (or at a suffix of) state s.
type acMatcher struct {
	next [][128]int16
	out  []uint64
}

// buildACMatcher compiles the literal set. Literals must be non-empty
// ASCII; the automaton is tiny (a few hundred states) and built once at
// package init.
func buildACMatcher(lits []string) *acMatcher {
	type node struct {
		child map[byte]int16
		out   uint64
	}
	nodes := []node{{child: map[byte]int16{}}}
	for i, l := range lits {
		s := int16(0)
		for j := 0; j < len(l); j++ {
			c := l[j]
			if c >= 0x80 {
				panic("pii: non-ASCII prefilter literal " + l)
			}
			nxt, ok := nodes[s].child[c]
			if !ok {
				nxt = int16(len(nodes))
				nodes = append(nodes, node{child: map[byte]int16{}})
				nodes[s].child[c] = nxt
			}
			s = nxt
		}
		nodes[s].out |= 1 << uint(i)
	}

	m := &acMatcher{next: make([][128]int16, len(nodes)), out: make([]uint64, len(nodes))}
	for i := range nodes {
		m.out[i] = nodes[i].out
	}
	fail := make([]int16, len(nodes))
	var queue []int16
	for c, nxt := range nodes[0].child {
		m.next[0][c] = nxt
		queue = append(queue, nxt)
	}
	// BFS order guarantees fail[s] is fully resolved before s.
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		m.out[s] |= m.out[fail[s]]
		for c := 0; c < 128; c++ {
			if nxt, ok := nodes[s].child[byte(c)]; ok {
				fail[nxt] = m.next[fail[s]][c]
				queue = append(queue, nxt)
				m.next[s][c] = nxt
			} else {
				m.next[s][c] = m.next[fail[s]][c]
			}
		}
	}
	return m
}
