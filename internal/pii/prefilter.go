package pii

// The literal gates for PII extraction. The twelve extractor families
// are precise but expensive, and the overwhelming majority of streamed
// documents (§5.6 runs the extractors over every collected message)
// contain no PII at all. Each family only ever matches when certain
// fixed byte literals are present — an address needs a digit and a
// street suffix, an email needs '@' and '.', a profile URL needs its
// host name — so one linear scan that records which literals occur
// lets clean documents skip every family without changing any output.
//
// The scan itself lives in the one-pass engine's Teddy-style
// multi-literal prefilter (internal/pii/engine): all gate literals are
// matched simultaneously by a bit-parallel Shift-And automaton over an
// ASCII-lowered view of the text, alongside the digit count/runs and
// tracked-literal events the engine's candidate enumeration consumes.
// The only non-ASCII characters Go's (?i) simple case folding maps
// onto ASCII letters — U+017F (long s -> 's') and U+212A (Kelvin sign
// -> 'k') — are folded by hand so a regex can never match where the
// scanner saw nothing. All other non-ASCII bytes reset the automaton;
// they cannot occur inside any literal.
//
// Gates are conservative by construction: every gate is a *necessary*
// condition for its regex family, never an exact one, so a gated
// Extract is always a superset-safe rewrite of running the regexes
// directly. FuzzExtractPrefilterEquivalence holds the two paths equal.

import (
	"strings"
	"sync"

	"harassrepro/internal/pii/engine"
)

// Literal registration: lit interns a literal and returns its bitmask;
// masks combine into anyOf-groups below.
var (
	acLiterals []string
	acMaskOf   = map[string]uint64{}
)

func lit(s string) uint64 {
	if m, ok := acMaskOf[s]; ok {
		return m
	}
	if len(acLiterals) >= 64 {
		panic("pii: more than 64 prefilter literals")
	}
	m := uint64(1) << uint(len(acLiterals))
	acLiterals = append(acLiterals, s)
	acMaskOf[s] = m
	return m
}

func anyOf(ss ...string) uint64 {
	var m uint64
	for _, s := range ss {
		m |= lit(s)
	}
	return m
}

// plan is one compiled extraction step: the literal gate plus the
// extractor to run when the gate admits the document. groups is a
// conjunction of anyOf-masks — every group must have at least one
// literal present — and minDigits bounds the document's ASCII digit
// count from below.
type plan struct {
	name      string
	groups    []uint64
	minDigits int
	extract   func(string) []Match
}

// plans holds the extraction plans in the fixed legacy Extract order
// (address, cards, email, facebook, instagram, phone, ssn, twitter,
// youtube) so gating never reorders matches fed into dedupe. The
// extract closures are the legacy regex path, kept as the
// differential-fuzz oracle (extractDirect).
var plans []plan

func init() {
	streetSuffix := anyOf(
		"street", "st", "avenue", "ave", "road", "rd", "boulevard", "blvd",
		"drive", "dr", "lane", "ln", "court", "ct", "circle", "cir", "way",
		"place", "pl", "terrace", "ter",
	)
	// For the handle families, a URL match implies its host literal and a
	// mention match implies a site name plus ':'. Since each ".com" host
	// literal contains the bare site name, the disjunction
	// (url-match OR mention-match) relaxes to the two groups below.
	plans = []plan{
		{
			name: "address", groups: []uint64{streetSuffix}, minDigits: 1,
			extract: func(t string) []Match { return extractSimple(Address, reAddress, t, normaliseSpace) },
		},
		{
			// Shortest card format is Amex's 15 digits.
			name: "cards", minDigits: 15,
			extract: extractCards,
		},
		{
			name: "email", groups: []uint64{lit("@"), lit(".")},
			extract: func(t string) []Match { return extractSimple(Email, reEmail, t, strings.ToLower) },
		},
		{
			name:   "facebook",
			groups: []uint64{anyOf("facebook", "fb"), anyOf("facebook.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(Facebook, reFacebookURL, reFacebookMention, t)
			},
		},
		{
			name:   "instagram",
			groups: []uint64{anyOf("instagram", "ig", "insta"), anyOf("instagram.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(Instagram, reInstagramURL, reInstagramMention, t)
			},
		},
		{
			name: "phone", minDigits: 10,
			extract: extractPhones,
		},
		{
			name: "ssn", groups: []uint64{lit("-")}, minDigits: 9,
			extract: extractSSNs,
		},
		{
			name:   "twitter",
			groups: []uint64{anyOf("twitter", "twtr"), anyOf("twitter.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(Twitter, reTwitterURL, reTwitterMention, t)
			},
		},
		{
			name:   "youtube",
			groups: []uint64{anyOf("youtube", "yt"), anyOf("youtube.com", ":")},
			extract: func(t string) []Match {
				return extractHandles(YouTube, reYouTubeURL, reYouTubeMention, t)
			},
		},
	}
	eng = buildEngine()
}

// scanFacts is what one pass over a document establishes: the set of
// gate literals present (as a bitmask over acLiterals) and the ASCII
// digit count.
type scanFacts struct {
	lits   uint64
	digits int
}

// admits reports whether the facts satisfy a plan's gate.
func (f scanFacts) admits(p plan) bool {
	if f.digits < p.minDigits {
		return false
	}
	for _, g := range p.groups {
		if f.lits&g == 0 {
			return false
		}
	}
	return true
}

// factsPool recycles engine fact buffers for the package-level scan
// helper (Extract itself scans inside its pooled engine session).
var factsPool = sync.Pool{New: func() any { return &engine.Facts{} }}

// scan runs the engine's Teddy prefilter over text and reduces the
// result to the gate facts. Allocation-free in steady state.
func scan(text string) scanFacts {
	f := factsPool.Get().(*engine.Facts)
	eng.ScanFacts(text, f)
	sf := scanFacts{lits: f.LitMask, digits: f.Digits}
	factsPool.Put(f)
	return sf
}
