package features

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVectorizeCountsAndDeterminism(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 16})
	v1 := h.Vectorize([]string{"a", "b", "a"})
	v2 := h.Vectorize([]string{"a", "b", "a"})
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("hashing is not deterministic")
	}
	// Two distinct tokens, one repeated: expect 2 buckets (absent an
	// unlucky collision in 65536 buckets) with counts {2, 1}.
	if v1.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", v1.NNZ())
	}
	total := 0.0
	for _, x := range v1.Values {
		total += x
	}
	if total != 3 {
		t.Fatalf("total count = %v, want 3", total)
	}
}

func TestVectorizeEmpty(t *testing.T) {
	h := NewHasher(HasherConfig{})
	v := h.Vectorize(nil)
	if v.NNZ() != 0 {
		t.Fatalf("empty input NNZ = %d", v.NNZ())
	}
	if v.L2Norm() != 0 {
		t.Fatalf("empty norm = %v", v.L2Norm())
	}
}

func TestVectorizeBigrams(t *testing.T) {
	uni := NewHasher(HasherConfig{Buckets: 1 << 16})
	bi := NewHasher(HasherConfig{Buckets: 1 << 16, Bigrams: true})
	toks := []string{"we", "should", "report", "him"}
	vu := uni.Vectorize(toks)
	vb := bi.Vectorize(toks)
	sum := func(v Vector) float64 {
		s := 0.0
		for _, x := range v.Values {
			s += x
		}
		return s
	}
	if sum(vu) != 4 {
		t.Fatalf("unigram mass = %v", sum(vu))
	}
	if sum(vb) != 7 { // 4 unigrams + 3 bigrams
		t.Fatalf("unigram+bigram mass = %v", sum(vb))
	}
}

func TestVectorIndicesSortedUnique(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 64}) // force collisions
	err := quick.Check(func(words []string) bool {
		v := h.Vectorize(words)
		for i := 1; i < len(v.Indices); i++ {
			if v.Indices[i] <= v.Indices[i-1] {
				return false
			}
		}
		for _, idx := range v.Indices {
			if idx >= 64 {
				return false
			}
		}
		return len(v.Indices) == len(v.Values)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDot(t *testing.T) {
	v := Vector{Indices: []uint32{1, 3}, Values: []float64{2, -1}}
	w := []float64{10, 20, 30, 40}
	if got := v.Dot(w); got != 2*20-1*40 {
		t.Fatalf("Dot = %v", got)
	}
	// Out-of-range indices are ignored.
	v2 := Vector{Indices: []uint32{1, 100}, Values: []float64{1, 5}}
	if got := v2.Dot(w); got != 20 {
		t.Fatalf("Dot with OOR index = %v", got)
	}
}

func TestScaleAndNorm(t *testing.T) {
	v := Vector{Indices: []uint32{0, 1}, Values: []float64{3, 4}}
	if got := v.L2Norm(); got != 5 {
		t.Fatalf("L2Norm = %v", got)
	}
	v.Scale(2)
	if v.Values[0] != 6 || v.Values[1] != 8 {
		t.Fatalf("Scale: %v", v.Values)
	}
}

func TestSignedHashing(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 10, SignedHashing: true})
	// With signed hashing some features should get negative values; scan
	// a decent number of tokens to find one of each sign.
	sawNeg, sawPos := false, false
	for i := 0; i < 200 && !(sawNeg && sawPos); i++ {
		v := h.Vectorize([]string{string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))})
		for _, x := range v.Values {
			if x < 0 {
				sawNeg = true
			}
			if x > 0 {
				sawPos = true
			}
		}
	}
	if !sawNeg || !sawPos {
		t.Errorf("signed hashing signs: neg=%v pos=%v", sawNeg, sawPos)
	}
}

func TestTFIDFDownWeightsCommonTerms(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 16})
	// "the" appears in every doc; "dox" in one.
	corpus := []Vector{
		h.Vectorize([]string{"the", "cat"}),
		h.Vectorize([]string{"the", "dog"}),
		h.Vectorize([]string{"the", "dox"}),
	}
	tfidf := FitTFIDF(corpus)
	if tfidf.Docs() != 3 {
		t.Fatalf("Docs = %d", tfidf.Docs())
	}
	v := tfidf.Transform(h.Vectorize([]string{"the", "dox"}))
	// Find values: the rarer term must out-weigh the common one.
	theBucket := h.Vectorize([]string{"the"}).Indices[0]
	doxBucket := h.Vectorize([]string{"dox"}).Indices[0]
	var theW, doxW float64
	for i, idx := range v.Indices {
		switch idx {
		case theBucket:
			theW = v.Values[i]
		case doxBucket:
			doxW = v.Values[i]
		}
	}
	if doxW <= theW {
		t.Fatalf("rare term weight %v <= common term weight %v", doxW, theW)
	}
	// Transformed vectors are unit-norm.
	if math.Abs(v.L2Norm()-1) > 1e-12 {
		t.Fatalf("norm = %v", v.L2Norm())
	}
}

func TestTFIDFUnseenBucket(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 16})
	tfidf := FitTFIDF([]Vector{h.Vectorize([]string{"seen"})})
	v := tfidf.Transform(h.Vectorize([]string{"never-seen-token"}))
	if v.NNZ() != 1 || v.Values[0] <= 0 {
		t.Fatalf("unseen bucket transform = %+v", v)
	}
}

func TestTFIDFDoesNotMutateInput(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 16})
	orig := h.Vectorize([]string{"a", "a", "b"})
	origCopy := Vector{
		Indices: append([]uint32(nil), orig.Indices...),
		Values:  append([]float64(nil), orig.Values...),
	}
	tfidf := FitTFIDF([]Vector{orig})
	tfidf.Transform(orig)
	if !reflect.DeepEqual(orig, origCopy) {
		t.Fatal("Transform mutated its input")
	}
}

func TestPipeline(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 16, Bigrams: true})
	corpusTokens := [][]string{{"we", "report"}, {"we", "dox"}}
	var corpus []Vector
	for _, toks := range corpusTokens {
		corpus = append(corpus, h.Vectorize(toks))
	}
	p := &Pipeline{Hasher: h, TFIDF: FitTFIDF(corpus)}
	v := p.Vectorize([]string{"we", "report"})
	if v.NNZ() == 0 {
		t.Fatal("pipeline produced empty vector")
	}
	if math.Abs(v.L2Norm()-1) > 1e-12 {
		t.Fatalf("pipeline norm = %v", v.L2Norm())
	}
	// Without TFIDF, raw counts.
	p2 := &Pipeline{Hasher: h}
	v2 := p2.Vectorize([]string{"we", "report"})
	if v2.L2Norm() == 1 {
		t.Log("raw count vector coincidentally unit norm; acceptable")
	}
	if v2.NNZ() != 3 { // 2 unigrams + 1 bigram
		t.Fatalf("raw NNZ = %d", v2.NNZ())
	}
}

func BenchmarkVectorize(b *testing.B) {
	h := NewHasher(HasherConfig{Bigrams: true})
	toks := make([]string, 128)
	for i := range toks {
		toks[i] = "token" + string(rune('a'+i%26))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Vectorize(toks)
	}
}
