// Package features converts token sequences into sparse feature vectors
// for the filtering classifiers: hashed unigram/bigram counts with
// optional TF-IDF weighting. Feature hashing keeps the model memory
// footprint fixed regardless of vocabulary size, which is what lets the
// classifiers score hundreds of thousands of documents per pipeline run —
// the same "small memory footprint that can process large amounts of
// data" constraint the paper faced (§5.2).
package features

import (
	"math"
	"slices"
)

// Vector is a sparse feature vector: parallel index/value slices sorted by
// index with no duplicate indices.
type Vector struct {
	Indices []uint32
	Values  []float64
}

// Dot returns the dot product of the vector with a dense weight slice.
// Indices beyond len(weights) are ignored.
func (v Vector) Dot(weights []float64) float64 {
	sum := 0.0
	n := uint32(len(weights))
	for i, idx := range v.Indices {
		if idx < n {
			sum += v.Values[i] * weights[idx]
		}
	}
	return sum
}

// L2Norm returns the Euclidean norm of the vector.
func (v Vector) L2Norm() float64 {
	sum := 0.0
	for _, x := range v.Values {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Scale multiplies all values in place by alpha and returns the vector.
func (v Vector) Scale(alpha float64) Vector {
	for i := range v.Values {
		v.Values[i] *= alpha
	}
	return v
}

// NNZ returns the number of non-zero entries.
func (v Vector) NNZ() int { return len(v.Indices) }

// HasherConfig configures a feature Hasher.
type HasherConfig struct {
	// Buckets is the hashed feature space size. Defaults to 1<<18.
	Buckets uint32
	// Bigrams includes token bigrams in addition to unigrams.
	Bigrams bool
	// SignedHashing flips the sign of half the collisions, making hash
	// collisions cancel in expectation (Weinberger et al.). Off by
	// default because logistic regression handles unsigned counts fine
	// at our scales.
	SignedHashing bool
}

func (c *HasherConfig) fillDefaults() {
	if c.Buckets == 0 {
		c.Buckets = 1 << 18
	}
}

// Hasher maps token sequences to sparse hashed count vectors.
type Hasher struct {
	cfg HasherConfig
}

// NewHasher returns a Hasher with the given configuration.
func NewHasher(cfg HasherConfig) *Hasher {
	cfg.fillDefaults()
	return &Hasher{cfg: cfg}
}

// Buckets returns the feature space size.
func (h *Hasher) Buckets() uint32 { return h.cfg.Buckets }

// Vectorize maps tokens to a sparse vector of hashed feature counts.
// Unlike Featurizer.Vectorize, the returned vector owns fresh storage;
// prefer a pooled Featurizer on scoring hot paths.
func (h *Hasher) Vectorize(tokens []string) Vector {
	counts := map[uint32]float64{}
	for _, t := range tokens {
		bucket, sign := h.bucketSign(fnvAddString(unigramSeed, t))
		counts[bucket] += sign
	}
	if h.cfg.Bigrams {
		for i := 0; i+1 < len(tokens); i++ {
			sum := fnvAddString(bigramSeed, tokens[i])
			sum = fnvAddByte(sum, 0)
			sum = fnvAddString(sum, tokens[i+1])
			bucket, sign := h.bucketSign(sum)
			counts[bucket] += sign
		}
	}
	return fromMap(counts)
}

func fromMap(counts map[uint32]float64) Vector {
	idx := make([]uint32, 0, len(counts))
	for i, v := range counts {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	slices.Sort(idx)
	vals := make([]float64, len(idx))
	for i, ix := range idx {
		vals[i] = counts[ix]
	}
	return Vector{Indices: idx, Values: vals}
}

// TFIDF reweights hashed count vectors by inverse document frequency
// learned from a fitting corpus.
type TFIDF struct {
	idf  map[uint32]float64
	docs int
	// defaultIDF is applied to buckets never seen during fitting.
	defaultIDF float64
}

// FitTFIDF learns IDF weights from the given vectorized corpus.
func FitTFIDF(corpus []Vector) *TFIDF {
	df := map[uint32]int{}
	for _, v := range corpus {
		for _, idx := range v.Indices {
			df[idx]++
		}
	}
	n := len(corpus)
	idf := make(map[uint32]float64, len(df))
	for idx, d := range df {
		idf[idx] = math.Log(float64(1+n)/float64(1+d)) + 1
	}
	return &TFIDF{
		idf:        idf,
		docs:       n,
		defaultIDF: math.Log(float64(1+n)) + 1,
	}
}

// Transform returns a new vector with sub-linear TF scaling
// (1 + log count) multiplied by the learned IDF, L2-normalised.
func (t *TFIDF) Transform(v Vector) Vector {
	out := Vector{
		Indices: append([]uint32(nil), v.Indices...),
		Values:  make([]float64, len(v.Values)),
	}
	for i, c := range v.Values {
		tf := c
		if tf > 0 {
			tf = 1 + math.Log(tf)
		} else if tf < 0 {
			tf = -(1 + math.Log(-tf))
		}
		idf, ok := t.idf[v.Indices[i]]
		if !ok {
			idf = t.defaultIDF
		}
		out.Values[i] = tf * idf
	}
	if norm := out.L2Norm(); norm > 0 {
		out.Scale(1 / norm)
	}
	return out
}

// Docs returns the number of documents the TF-IDF model was fit on.
func (t *TFIDF) Docs() int { return t.docs }

// Pipeline bundles hashing plus optional TF-IDF into one text-to-vector
// transform shared by training and inference.
type Pipeline struct {
	Hasher *Hasher
	TFIDF  *TFIDF // nil disables IDF weighting
}

// Vectorize converts tokens into the final model input vector.
func (p *Pipeline) Vectorize(tokens []string) Vector {
	v := p.Hasher.Vectorize(tokens)
	if p.TFIDF != nil {
		v = p.TFIDF.Transform(v)
	}
	return v
}
