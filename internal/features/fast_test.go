package features

// Golden equivalence and allocation-regression tests for the inline
// FNV-1a fast path. referenceVectorize is a verbatim copy of the
// pre-optimisation implementation (string-built features hashed with
// hash/fnv); both Hasher.Vectorize and Featurizer.Vectorize must match
// it bit for bit.

import (
	"hash/fnv"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"harassrepro/internal/testutil"
)

// referenceVectorize is the legacy Hasher.Vectorize: per-feature string
// concatenation fed to a heap-allocated fnv.New64a hasher.
func referenceVectorize(h *Hasher, tokens []string) Vector {
	bucketAndSign := func(feature string) (uint32, float64) {
		hash := fnv.New64a()
		hash.Write([]byte(feature))
		sum := hash.Sum64()
		bucket := uint32((sum >> 1) % uint64(h.cfg.Buckets))
		sign := 1.0
		if h.cfg.SignedHashing && sum&1 != 0 {
			sign = -1
		}
		return bucket, sign
	}
	counts := map[uint32]float64{}
	add := func(feature string) {
		bucket, sign := bucketAndSign(feature)
		counts[bucket] += sign
	}
	for _, t := range tokens {
		add("u\x00" + t)
	}
	if h.cfg.Bigrams {
		for i := 0; i+1 < len(tokens); i++ {
			add("b\x00" + tokens[i] + "\x00" + tokens[i+1])
		}
	}
	idx := make([]uint32, 0, len(counts))
	for i, v := range counts {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	vals := make([]float64, len(idx))
	for i, ix := range idx {
		vals[i] = counts[ix]
	}
	return Vector{Indices: idx, Values: vals}
}

var goldenTokenSets = [][]string{
	nil,
	{},
	{"a"},
	{"we", "should", "report", "him"},
	{"dox", "her", "address", "now", "dox", "her"},
	{"tok\x00with", "nul", "bytes\x00"},
	{"ünïcode", "日本語", "tokens"},
	{"", "", "empty", ""},
	{"x", "y", "x", "y", "x", "y", "x", "y"},
}

func hasherVariants() []*Hasher {
	return []*Hasher{
		NewHasher(HasherConfig{Buckets: 1 << 16}),
		NewHasher(HasherConfig{Buckets: 1 << 16, Bigrams: true}),
		NewHasher(HasherConfig{Buckets: 64, Bigrams: true}),
		NewHasher(HasherConfig{Buckets: 1 << 10, Bigrams: true, SignedHashing: true}),
	}
}

func TestVectorizeMatchesReference(t *testing.T) {
	for _, h := range hasherVariants() {
		f := h.NewFeaturizer()
		for _, toks := range goldenTokenSets {
			want := referenceVectorize(h, toks)
			if got := h.Vectorize(toks); !reflect.DeepEqual(got, want) {
				t.Errorf("Vectorize(%q, buckets=%d) = %+v, want %+v", toks, h.Buckets(), got, want)
			}
			got := f.Vectorize(toks)
			if !equalVec(got, want) {
				t.Errorf("Featurizer.Vectorize(%q, buckets=%d) = %+v, want %+v", toks, h.Buckets(), got, want)
			}
		}
	}
}

func TestFeaturizerMatchesReferenceQuick(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 128, Bigrams: true, SignedHashing: true})
	f := h.NewFeaturizer()
	err := quick.Check(func(tokens []string) bool {
		return equalVec(f.Vectorize(tokens), referenceVectorize(h, tokens))
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFeaturizerScratchReuse documents the aliasing contract: the next
// Vectorize call invalidates the previous result.
func TestFeaturizerScratchReuse(t *testing.T) {
	h := NewHasher(HasherConfig{Buckets: 1 << 16, Bigrams: true})
	f := h.NewFeaturizer()
	v1 := f.Vectorize([]string{"we", "report", "him"})
	snapshot := Vector{
		Indices: append([]uint32(nil), v1.Indices...),
		Values:  append([]float64(nil), v1.Values...),
	}
	f.Vectorize([]string{"completely", "different", "tokens", "here"})
	want := referenceVectorize(h, []string{"we", "report", "him"})
	if !equalVec(snapshot, want) {
		t.Fatal("snapshot of first vector is wrong — Vectorize output incorrect before reuse")
	}
}

// TestFeaturizerZeroAllocs is the allocation-regression gate for the
// featurization fast path: steady-state vectorization must not allocate.
func TestFeaturizerZeroAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	h := NewHasher(HasherConfig{Bigrams: true})
	f := h.NewFeaturizer()
	tokens := []string{"we", "need", "to", "mass", "-", "report", "his", "twitter", "and", "youtube", ",", "spread", "the", "word"}
	f.Vectorize(tokens) // warm the scratch
	if n := testing.AllocsPerRun(100, func() {
		f.Vectorize(tokens)
	}); n != 0 {
		t.Errorf("Featurizer.Vectorize allocates %v per op, want 0", n)
	}
}

func equalVec(a, b Vector) bool {
	if len(a.Indices) != len(b.Indices) || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] || a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func BenchmarkFeaturizerVectorize(b *testing.B) {
	h := NewHasher(HasherConfig{Bigrams: true})
	f := h.NewFeaturizer()
	toks := make([]string, 128)
	for i := range toks {
		toks[i] = "token" + string(rune('a'+i%26))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Vectorize(toks)
	}
}
