package features

// The zero-allocation featurization fast path. Hasher.Vectorize
// historically built one feature string per n-gram ("u\x00"+tok,
// "b\x00"+a+"\x00"+b), fed it to a heap-allocated hash/fnv hasher, and
// materialised a fresh map plus two fresh slices per document. At
// paper scale (hundreds of millions of scored documents, §5.2's "small
// memory footprint" constraint) that is pure GC pressure. FNV-1a is a
// byte-serial hash, so hashing the prefix, separator and token bytes in
// sequence produces exactly the sum of hashing their concatenation —
// no feature string needs to exist.
//
// Featurizer goes further and replaces the per-document Go map with a
// reusable open-addressing accumulator: inserts are a couple of array
// probes, and a touched-slot list makes both reset and output gathering
// proportional to the number of distinct features in the document, not
// the table capacity (iterating a Go map visits every bucket group,
// which profiling showed was the single largest scoring cost).
//
// Golden tests assert bit-identical vectors against the legacy
// string-building implementation.

import "slices"

// FNV-1a constants, matching hash/fnv.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvAddByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

// Hashing each n-gram starts from the hash of its marker prefix
// ("u\x00" for unigrams, "b\x00" for bigrams), precomputed once.
var (
	unigramSeed = fnvAddByte(fnvAddByte(fnvOffset64, 'u'), 0)
	bigramSeed  = fnvAddByte(fnvAddByte(fnvOffset64, 'b'), 0)
)

// bucketSign maps a finished FNV-1a sum to (bucket, sign), identically
// to the legacy bucketAndSign.
func (h *Hasher) bucketSign(sum uint64) (uint32, float64) {
	// FNV-1a's high bits are biased for short inputs, so take the sign
	// from the lowest bit and the bucket from the remaining bits.
	bucket := uint32((sum >> 1) % uint64(h.cfg.Buckets))
	sign := 1.0
	if h.cfg.SignedHashing && sum&1 != 0 {
		sign = -1
	}
	return bucket, sign
}

// accumEmpty marks a free accumulator slot. Buckets is at most
// 1<<32 - 1, so a real bucket id can never equal it.
const accumEmpty = ^uint32(0)

// mix32 is a 32-bit finalizer (Prospector constants) spreading bucket
// ids across the probe table.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// Featurizer maps token sequences to sparse hashed count vectors using
// reusable scratch space: an open-addressing count accumulator and one
// index/value pair are recycled across documents.
//
// Not safe for concurrent use; pool one Featurizer per worker. The
// returned Vector aliases the scratch and is only valid until the next
// Vectorize call — consume it (Dot, model scoring) before reuse.
type Featurizer struct {
	h       *Hasher
	keys    []uint32 // probe table: bucket id or accumEmpty
	vals    []float64
	mask    uint32
	touched []int32 // occupied slots, for reset and gathering
	idx     []uint32
	out     []float64
}

// NewFeaturizer returns a Featurizer sharing the hasher's configuration.
func (h *Hasher) NewFeaturizer() *Featurizer {
	f := &Featurizer{h: h}
	f.resize(512)
	return f
}

func (f *Featurizer) resize(n int) {
	f.keys = make([]uint32, n)
	for i := range f.keys {
		f.keys[i] = accumEmpty
	}
	f.vals = make([]float64, n)
	f.mask = uint32(n - 1)
}

// rehash doubles the table and reinserts the live entries.
func (f *Featurizer) rehash() {
	oldKeys, oldVals, oldTouched := f.keys, f.vals, f.touched
	f.resize(2 * len(oldKeys))
	f.touched = f.touched[:0]
	for _, slot := range oldTouched {
		f.insert(oldKeys[slot], oldVals[slot])
	}
}

// insert adds delta to bucket's count without a load-factor check.
func (f *Featurizer) insert(bucket uint32, delta float64) {
	slot := mix32(bucket) & f.mask
	for {
		switch f.keys[slot] {
		case bucket:
			f.vals[slot] += delta
			return
		case accumEmpty:
			f.keys[slot] = bucket
			f.vals[slot] = delta
			f.touched = append(f.touched, int32(slot))
			return
		}
		slot = (slot + 1) & f.mask
	}
}

// add accumulates one n-gram occurrence, growing the table when the
// load factor would exceed 1/2.
func (f *Featurizer) add(bucket uint32, sign float64) {
	if 2*(len(f.touched)+1) > len(f.keys) {
		f.rehash()
	}
	f.insert(bucket, sign)
}

// count returns the accumulated count for a bucket known to be present.
func (f *Featurizer) count(bucket uint32) float64 {
	slot := mix32(bucket) & f.mask
	for f.keys[slot] != bucket {
		slot = (slot + 1) & f.mask
	}
	return f.vals[slot]
}

// Vectorize maps tokens to a sparse vector of hashed feature counts —
// identical values to Hasher.Vectorize, minus the allocations.
func (f *Featurizer) Vectorize(tokens []string) Vector {
	for _, slot := range f.touched {
		f.keys[slot] = accumEmpty
	}
	f.touched = f.touched[:0]

	h := f.h
	for _, t := range tokens {
		bucket, sign := h.bucketSign(fnvAddString(unigramSeed, t))
		f.add(bucket, sign)
	}
	if h.cfg.Bigrams {
		for i := 0; i+1 < len(tokens); i++ {
			sum := fnvAddString(bigramSeed, tokens[i])
			sum = fnvAddByte(sum, 0)
			sum = fnvAddString(sum, tokens[i+1])
			bucket, sign := h.bucketSign(sum)
			f.add(bucket, sign)
		}
	}

	f.idx = f.idx[:0]
	for _, slot := range f.touched {
		if f.vals[slot] != 0 { // signed hashing can cancel to zero
			f.idx = append(f.idx, f.keys[slot])
		}
	}
	slices.Sort(f.idx)
	f.out = f.out[:0]
	for _, bucket := range f.idx {
		f.out = append(f.out, f.count(bucket))
	}
	return Vector{Indices: f.idx, Values: f.out}
}
