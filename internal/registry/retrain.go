package registry

import (
	"errors"
	"fmt"
	"sort"

	"harassrepro/internal/active"
	"harassrepro/internal/annotate"
	"harassrepro/internal/core"
	"harassrepro/internal/corpus"
	"harassrepro/internal/corpus/store"
	"harassrepro/internal/model"
	"harassrepro/internal/randx"
	"harassrepro/internal/threshold"
)

// Feedback is one operator-labelled live document, the raw material of
// a retrain round (the serve layer's POST /v1/feedback items).
type Feedback struct {
	ID       string
	Platform string
	Text     string
	Task     annotate.Task
	// Label is the operator's ground-truth call on the document.
	Label bool
}

// RetrainConfig controls one feedback-driven retrain round.
type RetrainConfig struct {
	// Seed drives every random decision of the round (sampling,
	// simulated annotators, span selection). Same seed + same feedback
	// = same candidate detector.
	Seed uint64
	// Bins / PerBin / Iterations shape the active-learning loop;
	// defaults are sized for live feedback batches, far smaller than
	// the paper's offline runs.
	Bins       int
	PerBin     int
	Iterations int
	// Epochs for classifier training. Defaults to the model package's
	// default.
	Epochs int
	// Progress, when set, observes active-learning iterations live.
	Progress func(active.IterationStats)
	// ReplayStore, when set, augments the feedback batch's training
	// seed with historical documents replayed from the corpus store:
	// documents carrying ground truth for the round's task, balanced
	// positive/negative and streamed at store scan speed. Replay is
	// deterministic — store order at any worker count — so the same
	// store, feedback and seed still produce the same candidate.
	ReplayStore *store.Store
	// ReplayLimit caps the replayed examples. Defaults to 256.
	ReplayLimit int
	// ReplayWorkers is the replay scan's segment decode parallelism
	// (0 = GOMAXPROCS, 1 = sequential).
	ReplayWorkers int
}

func (c *RetrainConfig) fillDefaults() {
	if c.Bins <= 0 {
		c.Bins = 5
	}
	if c.PerBin <= 0 {
		c.PerBin = 8
	}
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
}

// RetrainResult describes the candidate detector a retrain produced.
type RetrainResult struct {
	// Task is the classifier that was retrained (the dominant task in
	// the feedback batch).
	Task annotate.Task
	// Feedback is the number of feedback items consumed.
	Feedback int
	// Replayed is the number of historical store documents folded into
	// the training seed (0 without a ReplayStore).
	Replayed int
	// Labelled is the final training-set size.
	Labelled int
	// History is the active-learning iteration trail.
	History []active.IterationStats
	// Thresholds are the recalibrated per-platform thresholds folded
	// into the candidate (platforms absent from feedback keep the
	// base detector's values).
	Thresholds map[string]float64
}

// Retrain runs the paper's iterative loop over a live feedback batch:
// the feedback labels seed an active-learning round in the base
// detector's feature space (§5.3), and the resulting classifier's
// thresholds are recalibrated per platform with the §5.5 procedure
// before being folded into a candidate detector. The base detector is
// not modified; the candidate shares its vocabulary and feature space,
// so it can shadow-score the same traffic for divergence measurement
// before promotion.
func Retrain(base *core.Detector, fb []Feedback, cfg RetrainConfig) (*core.Detector, RetrainResult, error) {
	cfg.fillDefaults()
	if base == nil {
		return nil, RetrainResult{}, fmt.Errorf("registry: retrain: nil base detector")
	}
	if len(fb) == 0 {
		return nil, RetrainResult{}, fmt.Errorf("registry: retrain: no feedback")
	}

	// The batch's dominant task picks which classifier retrains; ties
	// go to dox (the paper's primary task).
	counts := map[annotate.Task]int{}
	for _, f := range fb {
		counts[f.Task]++
	}
	task := annotate.TaskDox
	if counts[annotate.TaskCTH] > counts[annotate.TaskDox] {
		task = annotate.TaskCTH
	}
	batch := fb[:0:0]
	for _, f := range fb {
		if f.Task == task {
			batch = append(batch, f)
		}
	}

	rng := randx.New(cfg.Seed).Split("retrain")
	vecRng := rng.Split("vectorize")
	seed := make([]model.Example, 0, len(batch))
	pool := make([]active.Instance, 0, len(batch))
	for _, f := range batch {
		x := base.VectorizeTask(task, f.Text, vecRng)
		seed = append(seed, model.Example{X: x, Y: f.Label})
		pool = append(pool, active.Instance{ID: f.ID, X: x, Truth: f.Label})
	}

	// Historical replay vectorizes after the feedback batch on the same
	// rng stream, so a round without a ReplayStore is bit-identical to
	// the pre-replay behavior.
	replayed := 0
	if cfg.ReplayStore != nil {
		ex, err := replayExamples(base, task, vecRng, cfg)
		if err != nil {
			return nil, RetrainResult{}, fmt.Errorf("registry: retrain: replay: %w", err)
		}
		seed = append(seed, ex...)
		replayed = len(ex)
	}

	crowd := annotate.NewPool(annotate.CrowdConfig(task), rng.Split("crowd"))
	res, err := active.Run(seed, pool, crowd, active.Config{
		Bins:       cfg.Bins,
		PerBin:     cfg.PerBin,
		Iterations: cfg.Iterations,
		Model:      model.LogRegConfig{Buckets: base.Buckets(), Epochs: cfg.Epochs},
		Seed:       rng.Split("active").Uint64(),
		Progress:   cfg.Progress,
	})
	if err != nil {
		return nil, RetrainResult{}, fmt.Errorf("registry: retrain: %w", err)
	}

	// Recalibrate thresholds per platform present in the batch (§5.5);
	// platforms whose candidate set is empty keep the base thresholds.
	byPlat := map[string][]threshold.ScoredDoc{}
	for i, f := range batch {
		byPlat[f.Platform] = append(byPlat[f.Platform], threshold.ScoredDoc{
			ID:    f.ID,
			Score: res.Model.Score(pool[i].X),
			Truth: f.Label,
		})
	}
	plats := make([]string, 0, len(byPlat))
	for p := range byPlat {
		plats = append(plats, p)
	}
	sort.Strings(plats)
	thresholds := map[string]float64{}
	for _, p := range plats {
		experts := annotate.NewPool(annotate.ExpertConfig(task), rng.Split("experts-"+p))
		sel, err := threshold.Select(byPlat[p], experts, threshold.Config{
			SampleSize: 64,
			Seed:       rng.Split("threshold-" + p).Uint64(),
		})
		if err == threshold.ErrNoCandidates {
			continue // keep the base threshold for this platform
		}
		if err != nil {
			return nil, RetrainResult{}, fmt.Errorf("registry: retrain: threshold %s: %w", p, err)
		}
		thresholds[p] = sel.Threshold
	}

	cand, err := base.Retrained(task, res.Model, thresholds)
	if err != nil {
		return nil, RetrainResult{}, err
	}
	return cand, RetrainResult{
		Task:       task,
		Feedback:   len(batch),
		Replayed:   replayed,
		Labelled:   len(res.Labelled),
		History:    res.History,
		Thresholds: thresholds,
	}, nil
}

// errReplayDone stops the replay scan early once both label caps are
// full — no reason to decode the rest of the store.
var errReplayDone = errors.New("registry: replay complete")

// replayExamples streams historical documents out of the corpus store
// and turns the ones carrying ground truth for task into labelled
// training examples: at most limit/2 positives, negatives filling the
// remainder, both taken in store order (ScanParallel delivers store
// order at any worker count, so replay is deterministic). The selected
// documents are vectorized after the scan, negatives first, in one
// fixed order on the shared rng stream.
func replayExamples(base *core.Detector, task annotate.Task, vecRng *randx.Source, cfg RetrainConfig) ([]model.Example, error) {
	limit := cfg.ReplayLimit
	if limit <= 0 {
		limit = 256
	}
	maxPos := limit / 2
	maxNeg := limit - maxPos
	type labelled struct {
		text string
		y    bool
	}
	var pos, neg []labelled
	err := cfg.ReplayStore.ScanParallel(cfg.ReplayWorkers, func(d *corpus.Document, _ store.DocRef) error {
		y := d.Truth.IsDox
		if task == annotate.TaskCTH {
			y = d.Truth.IsCTH
		}
		switch {
		case y && len(pos) < maxPos:
			pos = append(pos, labelled{text: d.Text, y: true})
		case !y && len(neg) < maxNeg:
			neg = append(neg, labelled{text: d.Text, y: false})
		}
		if len(pos) >= maxPos && len(neg) >= maxNeg {
			return errReplayDone
		}
		return nil
	})
	if err != nil && !errors.Is(err, errReplayDone) {
		return nil, err
	}
	picked := append(neg, pos...)
	examples := make([]model.Example, 0, len(picked))
	for _, l := range picked {
		examples = append(examples, model.Example{X: base.VectorizeTask(task, l.text, vecRng), Y: l.y})
	}
	return examples, nil
}
