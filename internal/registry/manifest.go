// Package registry is the on-disk versioned model registry: every
// trained or retrained detector is committed as an immutable
// generation directory (the SaveModels layout) and a single MANIFEST
// names the committed generations, the active one serving traffic and
// the previous one kept warm for rollback. It reuses the corpus
// store's proven commit idiom — write and fsync the generation's
// files, then tmp+rename+fsync the manifest — so a crash at any byte
// boundary leaves either the old registry state or the new one, never
// a torn mix. Open validates every committed generation and
// quarantines damage instead of serving it.
package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

const (
	manifestName  = "MANIFEST.json"
	manifestVer   = 1
	genDirPattern = "gen-%08d"
	quarantineDir = "quarantine"
)

// Entry describes one committed model generation.
type Entry struct {
	// Generation is the monotonic identity of the model directory.
	Generation uint64 `json:"generation"`
	// Seed is the training seed the generation was produced with.
	Seed uint64 `json:"seed"`
	// Source records how the generation came to be ("train",
	// "retrain", "import").
	Source string `json:"source,omitempty"`
	// Note is a free-form operator annotation.
	Note string `json:"note,omitempty"`
}

// manifest is the registry's serialised root state.
type manifest struct {
	Version int `json:"version"`
	// Counter is the high-water generation number; it only grows, so
	// generation identities are never reused even after quarantine.
	Counter uint64 `json:"counter"`
	// Active is the generation serving traffic (0 = none yet).
	Active uint64 `json:"active"`
	// Previous is the generation Active replaced (0 = none), the
	// rollback target.
	Previous uint64  `json:"previous"`
	Entries  []Entry `json:"entries"`
}

// encodeManifest renders the manifest in its canonical byte form:
// entries sorted by generation, two-space indent, trailing newline.
func encodeManifest(m *manifest) ([]byte, error) {
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Generation < m.Entries[j].Generation })
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("registry: manifest: %w", err)
	}
	return append(data, '\n'), nil
}

// decodeManifest parses and validates manifest bytes. It rejects
// unknown fields, non-monotonic or duplicate generations, counters
// behind the newest entry, and active/previous pointers that name no
// committed entry — the shapes a torn or hand-edited manifest takes.
func decodeManifest(data []byte) (*manifest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("registry: manifest: %w", err)
	}
	// Trailing content after the document is a framing error.
	if dec.More() {
		return nil, fmt.Errorf("registry: manifest: trailing data after document")
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("registry: manifest: %w", err)
	}
	return &m, nil
}

func (m *manifest) validate() error {
	if m.Version != manifestVer {
		return fmt.Errorf("unsupported version %d", m.Version)
	}
	var prev uint64
	for i, e := range m.Entries {
		if e.Generation == 0 {
			return fmt.Errorf("entry %d: generation 0 is reserved", i)
		}
		if e.Generation <= prev {
			return fmt.Errorf("entry %d: generations not strictly increasing (%d after %d)", i, e.Generation, prev)
		}
		prev = e.Generation
	}
	if len(m.Entries) > 0 && m.Counter < prev {
		return fmt.Errorf("counter %d behind newest generation %d", m.Counter, prev)
	}
	for name, g := range map[string]uint64{"active": m.Active, "previous": m.Previous} {
		if g != 0 && m.entry(g) == nil {
			return fmt.Errorf("%s generation %d not committed", name, g)
		}
	}
	if m.Active != 0 && m.Active == m.Previous {
		return fmt.Errorf("active and previous are both generation %d", m.Active)
	}
	return nil
}

// entry returns the committed entry for gen, or nil.
func (m *manifest) entry(gen uint64) *Entry {
	for i := range m.Entries {
		if m.Entries[i].Generation == gen {
			return &m.Entries[i]
		}
	}
	return nil
}

// drop removes gen's entry, returning whether it was present.
func (m *manifest) drop(gen uint64) bool {
	for i := range m.Entries {
		if m.Entries[i].Generation == gen {
			m.Entries = append(m.Entries[:i], m.Entries[i+1:]...)
			return true
		}
	}
	return false
}

// genDirName returns the directory name for a generation.
func genDirName(gen uint64) string {
	return fmt.Sprintf(genDirPattern, gen)
}
