package registry

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRegistryManifest pins the manifest codec's identity contract:
// any bytes decodeManifest accepts must re-encode to a canonical form
// that decodes back to the same manifest, and the canonical form must
// be a fixed point (encode(decode(encode(m))) == encode(m)). Rejection
// must always be an error, never a panic — a hand-edited or torn
// MANIFEST can contain anything.
func FuzzRegistryManifest(f *testing.F) {
	f.Add([]byte(`{"version":1,"counter":0,"active":0,"previous":0,"entries":[]}`))
	f.Add([]byte(`{"version":1,"counter":3,"active":3,"previous":1,"entries":[
		{"generation":1,"seed":7,"source":"train"},
		{"generation":3,"seed":9,"source":"retrain","note":"gated"}]}`))
	f.Add([]byte(`{"version":1,"counter":2,"active":0,"previous":0,"entries":[{"generation":2,"seed":0}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return // rejected without panic: fine
		}
		enc, err := encodeManifest(m)
		if err != nil {
			t.Fatalf("accepted manifest failed to encode: %v", err)
		}
		m2, err := decodeManifest(enc)
		if err != nil {
			t.Fatalf("canonical encoding rejected by decoder: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode/encode/decode not identity:\n%+v\n%+v", m, m2)
		}
		enc2, err := encodeManifest(m2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not byte-stable:\n%s\n%s", enc, enc2)
		}
	})
}
